module merlin

go 1.22
