// Batch campaigns: evaluate one workload across all of its target
// structures — RF, SQ and L1D, the per-structure columns of the paper's
// §4.4 tables — over a single shared golden run.
//
// A standalone Session per structure would re-trace the same fault-free
// run three times. StartBatch traces every structure in one pass, shares
// the artifact-cache entry, clone pool and checkpoint-snapshot ladder
// across the per-structure injections, and still produces per-structure
// reports bit-identical to standalone sessions with the same seed.
//
//	go run ./examples/batch_structures
package main

import (
	"context"
	"fmt"
	"log"

	"merlin"
)

func main() {
	ctx := context.Background()
	batch, err := merlin.StartBatch(ctx, "qsort",
		// The batch targets; omitting WithStructures evaluates all
		// structures. Every other option is shared: each structure's
		// fault list is sampled with the same seed a standalone session
		// would use.
		merlin.WithStructures(merlin.RF, merlin.SQ, merlin.L1D),
		merlin.WithFaults(2000), // per structure (paper: 60000)
		merlin.WithSeed(42),
		merlin.WithStrategy(merlin.StrategyForked),
	)
	if err != nil {
		log.Fatal(err)
	}

	report, err := batch.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(report)
	fmt.Printf("\none golden run (%d cycles) shared by %d structures (golden runs performed: %d)\n",
		report.GoldenCycles, len(report.Reports), report.GoldenRuns)
	for _, r := range report.Reports {
		fmt.Printf("  %-3v AVF %.4f  FIT %7.3f  (%d representatives injected for %d faults, %.0fx)\n",
			r.Structure, r.AVF, r.FIT, r.Injected, r.InitialFaults, r.FinalSpeedup)
	}
	fmt.Printf("cross-structure: AVF %.4f (bit-weighted over %d bits)  FIT %.3f\n",
		report.AVF, report.TotalBits, report.FIT)
}
