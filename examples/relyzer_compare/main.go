// Relyzer-heuristic comparison (paper §4.4.4): both MeRLiN and Relyzer's
// control-equivalence prune the same post-ACE fault list, but Relyzer
// groups by forward control-flow path with one random pilot per group,
// while MeRLiN groups by (reader RIP, uPC, byte) with instance-diverse
// representatives. This example measures both reductions against the
// ground truth of injecting the entire post-ACE list.
//
//	go run ./examples/relyzer_compare
package main

import (
	"context"
	"fmt"
	"log"

	"merlin"

	"merlin/internal/campaign"
	"merlin/internal/relyzer"
)

func main() {
	const seed = 3
	ctx := context.Background()
	s, err := merlin.Start(ctx, "stringsearch",
		merlin.WithStructure(merlin.RF),
		merlin.WithFaults(4000),
		merlin.WithSeed(seed),
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := s.Preprocess(ctx); err != nil {
		log.Fatal(err)
	}
	red, err := s.Reduce()
	if err != nil {
		log.Fatal(err)
	}
	a := s.Artifacts()

	// Ground truth: inject every fault that survives ACE-like pruning.
	full := make([]merlin.Fault, len(red.HitFaults))
	for i, fi := range red.HitFaults {
		full[i] = a.Faults[fi]
	}
	fullRes, err := a.Runner.RunAll(ctx, full, &a.Golden.Result)
	if err != nil {
		log.Fatal(err)
	}
	outcomes := make([]merlin.Outcome, len(a.Faults))
	for i, fi := range red.HitFaults {
		outcomes[fi] = fullRes.Outcomes[i]
	}

	show := func(name string, r *merlin.Reduction) {
		var reps []merlin.Outcome
		for _, g := range r.Groups {
			for _, rep := range g.Reps {
				reps = append(reps, outcomes[rep])
			}
		}
		dist := r.PostACEExtrapolate(reps)
		worst := 0.0
		for o := merlin.Outcome(0); o < campaign.NumOutcomes; o++ {
			d := 100 * (dist.Share(o) - fullRes.Dist.Share(o))
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
		fmt.Printf("%-22s injected %4d of %4d (%.1fx)  worst-class error %.2f pp\n",
			name, r.ReducedCount(), len(full),
			float64(len(a.Faults))/float64(r.ReducedCount()), worst)
		fmt.Printf("%-22s %v\n", "", dist)
	}

	fmt.Printf("ground truth (%d injections): %v\n\n", len(full), fullRes.Dist)
	show("MeRLiN", red)
	rel := relyzer.Reduce(a.Analysis, a.Faults, a.Golden.Tracer.Branches, relyzer.DefaultDepth, seed)
	show("Relyzer heuristic", rel)

	large, single := relyzer.SinglePilotLargeGroups(rel, 20)
	mlarge, msingle := relyzer.SinglePilotLargeGroups(red, 20)
	fmt.Printf("\nlarge groups (>20 faults) represented by a single pilot: Relyzer %d/%d, MeRLiN %d/%d\n",
		single, large, msingle, mlarge)
	fmt.Println("(the paper attributes Relyzer's residual inaccuracy to exactly these groups)")
}
