// Quickstart: run one MeRLiN campaign end to end with the Session API.
//
// The pipeline is the paper's Fig 2: a single fault-free profiling run
// records the vulnerable intervals of the physical register file, a
// statistical fault list is drawn, MeRLiN prunes and groups it, and only
// the group representatives are injected.
//
//	go run ./examples/quickstart
//
// merlin.Start validates the campaign up front; Session.Run executes it
// under a context, so long campaigns can be cancelled or deadlined. For
// many campaigns, run the service instead: cmd/merlind keeps a golden-run
// artifact cache so campaigns sharing a (workload, core config) pair skip
// the profiling run entirely — or pass merlin.WithCache (see
// merlin.OpenCache) to get the same amortization here.
package main

import (
	"context"
	"fmt"
	"log"

	"merlin"
)

func main() {
	ctx := context.Background()
	session, err := merlin.Start(ctx, "qsort", // MiBench-style quicksort kernel
		merlin.WithStructure(merlin.RF), // inject the physical integer register file
		merlin.WithFaults(2000),         // initial statistical fault list (paper: 60000)
		merlin.WithSeed(42),
		// Fork per-fault clones off a single golden sweep instead of
		// replaying every injection from reset; replay, checkpointed and
		// forked classify every fault identically.
		merlin.WithStrategy(merlin.StrategyForked),
	)
	if err != nil {
		log.Fatal(err)
	}

	report, err := session.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(report)
	fmt.Printf("\nMeRLiN injected %d of %d faults (%.0fx faster than the comprehensive campaign)\n",
		report.Injected, report.InitialFaults, report.FinalSpeedup)
	fmt.Printf("SDC probability per transient fault: %.2f%%\n", 100*report.Dist.Share(merlin.SDC))
}
