// Register-file protection study: the early design decision the paper's
// introduction motivates. Sweeping the physical register file size, it
// compares the FIT rate measured by MeRLiN-accelerated injection against
// the pessimistic ACE-like bound, showing where ACE analysis alone would
// overprovision protection (the paper reports ACE over-estimating AVF by
// 3-7x vs injection).
//
//	go run ./examples/regfile_protection
package main

import (
	"context"
	"fmt"
	"log"

	"merlin"

	"merlin/internal/cpu"
)

func main() {
	ctx := context.Background()
	const fitBudget = 5.0 // max FIT the design allocates to the RF

	fmt.Println("Physical register file soft-error study (workload mix: sha, qsort, fft)")
	fmt.Printf("%-8s %-10s %-12s %-12s %-14s %s\n",
		"regs", "inj. AVF", "inj. FIT", "ACE-like FIT", "within budget", "injections")

	for _, regs := range []int{256, 128, 64} {
		var avf, fit, aceFit float64
		injections := 0
		for _, wl := range []string{"sha", "qsort", "fft"} {
			s, err := merlin.Start(ctx, wl,
				merlin.WithCPU(cpu.DefaultConfig().WithRF(regs)),
				merlin.WithStructure(merlin.RF),
				merlin.WithFaults(2000),
				merlin.WithSeed(7),
			)
			if err != nil {
				log.Fatal(err)
			}
			rep, err := s.Run(ctx)
			if err != nil {
				log.Fatal(err)
			}
			avf += rep.AVF / 3
			fit += rep.FIT / 3
			aceFit += rep.ACELikeFIT / 3
			injections += rep.Injected
		}
		verdict := "yes - no ECC needed"
		if fit > fitBudget {
			verdict = "NO - protect"
		}
		fmt.Printf("%-8d %-10.4f %-12.3f %-12.3f %-14s %d\n",
			regs, avf, fit, aceFit, verdict, injections)
	}

	fmt.Println("\nSmaller register files keep values live longer (higher AVF), while the")
	fmt.Println("ACE-like bound is uniformly pessimistic: decisions taken from it alone")
	fmt.Println("would overprovision protection, which is exactly the paper's motivation")
	fmt.Println("for fast *injection-based* assessment.")
}
