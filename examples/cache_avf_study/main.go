// L1 data cache vulnerability study: MeRLiN's fine-grained fault-effect
// classes (unavailable from ACE analysis, which only yields a gross AVF)
// identify which workloads are SDC-prone — the paper's third contribution,
// used e.g. to choose between parity (detects) and ECC (corrects).
//
//	go run ./examples/cache_avf_study
package main

import (
	"context"
	"fmt"
	"log"

	"merlin"

	"merlin/internal/cpu"
)

func main() {
	ctx := context.Background()
	workloads := []string{"sha", "stringsearch", "djpeg", "fft", "caes"}

	fmt.Println("L1D (32KB) per-workload fault-effect profile, MeRLiN-accelerated")
	fmt.Printf("%-14s %-9s %-9s %-9s %-9s %-10s %s\n",
		"workload", "Masked", "SDC", "DUE", "Crash", "AVF", "speedup")

	type scored struct {
		name string
		sdc  float64
	}
	var worst scored
	for _, wl := range workloads {
		s, err := merlin.Start(ctx, wl,
			merlin.WithCPU(cpu.DefaultConfig().WithL1D(32<<10)),
			merlin.WithStructure(merlin.L1D),
			merlin.WithFaults(1500),
			merlin.WithSeed(11),
		)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := s.Run(ctx)
		if err != nil {
			log.Fatal(err)
		}
		sdc := rep.Dist.Share(merlin.SDC)
		fmt.Printf("%-14s %-9.2f %-9.2f %-9.2f %-9.2f %-10.4f %.0fx\n",
			wl,
			100*rep.Dist.Share(merlin.Masked), 100*sdc,
			100*rep.Dist.Share(merlin.DUE), 100*rep.Dist.Share(merlin.Crash),
			rep.AVF, rep.FinalSpeedup)
		if sdc > worst.sdc {
			worst = scored{wl, sdc}
		}
	}
	fmt.Printf("\nMost SDC-prone workload: %s (%.2f%% silent corruptions).\n", worst.name, 100*worst.sdc)
	fmt.Println("A symptom-based detector would miss these; the cache needs ECC rather")
	fmt.Println("than parity if this workload class dominates deployment.")
}
