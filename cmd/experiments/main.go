// Command experiments regenerates the paper's tables and figures on the
// simulated substrate.
//
//	experiments -experiment all
//	experiments -experiment fig8 -faults 5000
//	experiments -experiment accuracy -workloads sha,qsort -faults 2000
//	experiments -experiment fig13 -structures RF,SQ
//
// Experiments: table1 table3 table4 fig6..fig17 accuracy speedups theory
// ablation all.
// "accuracy" runs the shared heavy pass behind figs 6/7/14/15/16/17+theory;
// "speedups" covers figs 8/9/10/12/13.
//
// Every experiment runs under a signal-aware context: Ctrl-C cancels the
// in-flight campaign between injections instead of killing the process
// mid-simulation.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"merlin"

	"merlin/internal/experiments"
)

// csvOut, when set, receives machine-readable copies of the results.
var csvOut string

func writeCSV(name, content string) {
	if csvOut == "" {
		return
	}
	if err := os.MkdirAll(csvOut, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "experiments: csv:", err)
		return
	}
	path := filepath.Join(csvOut, name+".csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "experiments: csv:", err)
	}
}

func main() {
	var (
		experiment = flag.String("experiment", "all", "which experiment to run")
		faults     = flag.Int("faults", 2000, "initial fault list per campaign (paper: 60000)")
		scale      = flag.Int("scale", 10, "fig13 list multiplier (paper: 10)")
		workloads  = flag.String("workloads", "", "comma-separated workload subset (default: the suite's ten)")
		structures = flag.String("structures", "", "comma-separated structure subset of RF,SQ,L1D (default: all three)")
		seed       = flag.Int64("seed", 1, "fault sampling seed")
		workers    = flag.Int("workers", 0, "injection parallelism (0 = all cores)")
		strategy   = flag.String("strategy", "replay", "injection strategy for every campaign: replay, checkpointed, or forked")
		fullBase   = flag.Bool("full-baseline", false, "inject ACE-pruned faults too in accuracy experiments")
		quiet      = flag.Bool("quiet", false, "suppress progress lines")
		csvDir     = flag.String("csv", "", "also write machine-readable CSVs into this directory")
	)
	flag.Parse()

	strat, err := merlin.ParseStrategy(*strategy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}

	o := experiments.Options{
		Faults:       *faults,
		ScaleFactor:  *scale,
		Seed:         *seed,
		Workers:      *workers,
		Strategy:     strat,
		FullBaseline: *fullBase,
	}
	if *workloads != "" {
		o.Workloads = strings.Split(*workloads, ",")
	}
	for _, name := range strings.Split(*structures, ",") {
		if name == "" {
			continue
		}
		s, err := merlin.ParseStructure(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(2)
		}
		o.Structures = append(o.Structures, s)
	}
	if !*quiet {
		o.Log = os.Stderr
	}
	csvOut = *csvDir

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if err := run(ctx, *experiment, o); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, name string, o experiments.Options) error {
	speedupFig := func(f func(context.Context, experiments.Options) (*experiments.SpeedupResult, error)) error {
		r, err := f(ctx, o)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
		writeCSV(strings.ToLower(strings.ReplaceAll(r.Figure, " ", "")), r.CSV())
		return nil
	}
	accuracy := func(renders ...func(*experiments.AccuracyResult) string) error {
		r, err := experiments.RunAccuracy(ctx, o)
		if err != nil {
			return err
		}
		for _, render := range renders {
			fmt.Println(render(r))
		}
		writeCSV("accuracy", r.CSV())
		return nil
	}

	switch name {
	case "table1":
		fmt.Println(experiments.Table1())
	case "table3":
		fmt.Println(experiments.Table3())
	case "table4":
		r, err := experiments.Table4(ctx, o)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	case "fig6":
		return accuracy((*experiments.AccuracyResult).RenderFig6)
	case "fig7":
		return accuracy((*experiments.AccuracyResult).RenderFig7)
	case "fig8":
		return speedupFig(experiments.Fig8)
	case "fig9":
		return speedupFig(experiments.Fig9)
	case "fig10":
		return speedupFig(experiments.Fig10)
	case "fig11":
		r, err := experiments.Fig11(ctx, o)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	case "fig12":
		return speedupFig(experiments.Fig12)
	case "fig13":
		r, err := experiments.Fig13(ctx, o)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
		writeCSV("fig13", r.CSV())
	case "fig14":
		return accuracy((*experiments.AccuracyResult).RenderFig14)
	case "fig15":
		return accuracy((*experiments.AccuracyResult).RenderFig15)
	case "fig16":
		return accuracy((*experiments.AccuracyResult).RenderFig16)
	case "fig17":
		return accuracy((*experiments.AccuracyResult).RenderFig17)
	case "theory":
		return accuracy((*experiments.AccuracyResult).RenderTheory)
	case "ablation":
		r, err := experiments.Ablation(ctx, o)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
	case "speedups":
		for _, f := range []func(context.Context, experiments.Options) (*experiments.SpeedupResult, error){
			experiments.Fig8, experiments.Fig9, experiments.Fig10, experiments.Fig12,
		} {
			if err := speedupFig(f); err != nil {
				return err
			}
		}
		r, err := experiments.Fig13(ctx, o)
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
		return nil
	case "accuracy":
		return accuracy(
			(*experiments.AccuracyResult).RenderFig6,
			(*experiments.AccuracyResult).RenderFig7,
			(*experiments.AccuracyResult).RenderFig14,
			(*experiments.AccuracyResult).RenderFig15,
			(*experiments.AccuracyResult).RenderFig16,
			(*experiments.AccuracyResult).RenderFig17,
			(*experiments.AccuracyResult).RenderTheory,
		)
	case "all":
		fmt.Println(experiments.Table1())
		fmt.Println(experiments.Table3())
		for _, sub := range []string{"speedups", "fig11", "accuracy", "table4", "ablation"} {
			if err := run(ctx, sub, o); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}
