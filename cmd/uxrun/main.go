// Command uxrun assembles and executes a µx64 assembly file on the
// simulated out-of-order core (or the in-order architectural interpreter),
// printing the committed output stream and pipeline statistics. It is the
// quickest way to experiment with the simulation substrate directly.
//
//	uxrun prog.s
//	uxrun -interp -v prog.s
//	echo 'li r1, 42
//	out r1
//	halt' | uxrun -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"merlin/internal/asm"
	"merlin/internal/cpu"
	"merlin/internal/interp"
)

func main() {
	var (
		useInterp = flag.Bool("interp", false, "run on the architectural interpreter instead of the core")
		verbose   = flag.Bool("v", false, "print pipeline statistics")
		dis       = flag.Bool("d", false, "print the disassembly and exit")
		maxCycles = flag.Uint64("max-cycles", 100_000_000, "cycle budget")
		regs      = flag.Int("regs", 256, "physical registers")
		trace     = flag.Bool("trace", false, "print every committed instruction")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: uxrun [flags] prog.s  (or - for stdin)")
		os.Exit(2)
	}

	var src []byte
	var err error
	name := flag.Arg(0)
	if name == "-" {
		src, err = io.ReadAll(os.Stdin)
		name = "stdin"
	} else {
		src, err = os.ReadFile(name)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "uxrun:", err)
		os.Exit(1)
	}

	prog, err := asm.Assemble(name, string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "uxrun:", err)
		os.Exit(1)
	}

	if *dis {
		for i, in := range prog.Text {
			fmt.Printf("%4d:  %s\n", i, in)
		}
		return
	}

	if *useInterp {
		res := interp.Run(prog, *maxCycles)
		for _, v := range res.Output {
			fmt.Printf("%d\t(%#x)\n", int64(v), v)
		}
		fmt.Printf("-- halt: %v after %d instructions, %d exceptions\n",
			[...]string{"ok", "crash-pagefault", "crash-badfetch", "crash-divzero", "step-limit"}[res.Halt],
			res.Steps, len(res.ExcLog))
		return
	}

	core := cpu.New(cpu.DefaultConfig().WithRF(*regs), prog)
	if *trace {
		core.SetCommitTrace(os.Stderr)
	}
	res := core.Run(*maxCycles)
	for _, v := range res.Output {
		fmt.Printf("%d\t(%#x)\n", int64(v), v)
	}
	fmt.Printf("-- halt: %v after %d cycles, %d instructions (IPC %.2f), %d exceptions\n",
		res.Halt, res.Cycles, res.Stats.CommittedInsts,
		float64(res.Stats.CommittedUops)/float64(max(res.Cycles, 1)), len(res.ExcLog))
	if *verbose {
		s := res.Stats
		fmt.Printf("   branches %d (%.1f%% mispredicted)  loads %d  stores %d  forwards %d  squashed µops %d\n",
			s.Branches, 100*float64(s.Mispredicts)/float64(max(s.Branches, 1)),
			s.Loads, s.Stores, s.SQForwards, s.SquashedUops)
		fmt.Printf("   L1I %d/%d hits  L1D %d/%d hits  L2 %d/%d hits  L1D writebacks %d\n",
			s.L1IStats.Hits, s.L1IStats.Hits+s.L1IStats.Misses,
			s.L1DStats.Hits, s.L1DStats.Hits+s.L1DStats.Misses,
			s.L2Stats.Hits, s.L2Stats.Hits+s.L2Stats.Misses,
			s.L1DStats.Writebacks)
	}
}
