// Command merlinvet runs the project-specific static-analysis pass over
// the module: five analyzers (detrand, walltime, maporder, testhook,
// ctxflow) that machine-check the determinism and simulator invariants
// every campaign guarantee rests on. See internal/lint for what each
// analyzer enforces and why it is load-bearing for bit-identical
// reports and content-addressed artifact reuse.
//
// Usage:
//
//	merlinvet [-v] [-list] [packages]
//
// With no arguments (or `./...`) the whole module is checked. Package
// arguments restrict *reporting* to the named directories; the whole
// module is still loaded so cross-package facts stay complete.
//
// Exit status: 0 when clean; 1 on any finding, unused //lint:allow
// directive or malformed directive; 2 when the module fails to load or
// type-check.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"merlin/internal/lint"
)

func main() {
	verbose := flag.Bool("v", false, "also print every suppressed finding and allowlisted wall-clock site")
	list := flag.Bool("list", false, "list analyzers and their diagnostic codes, then exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: merlinvet [-v] [-list] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-10s %-40s %s\n", a.Name, strings.Join(a.Codes, ","), a.Doc)
		}
		return
	}

	moduleDir, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "merlinvet:", err)
		os.Exit(2)
	}

	only, err := reportScope(moduleDir, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "merlinvet:", err)
		os.Exit(2)
	}

	res, err := lint.Run(moduleDir, lint.Analyzers(), only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "merlinvet:", err)
		os.Exit(2)
	}

	rel := func(path string) string {
		if r, err := filepath.Rel(moduleDir, path); err == nil && !strings.HasPrefix(r, "..") {
			return r
		}
		return path
	}

	for _, d := range res.Findings {
		fmt.Printf("%s:%d:%d: %s: %s\n", rel(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Code, d.Message)
	}
	for _, u := range res.Unused {
		fmt.Printf("%s:%d:%d: %s: unused //lint:allow %s (%s): the finding it suppressed is gone — delete the directive\n",
			rel(u.Pos.Filename), u.Pos.Line, u.Pos.Column, "lintdir001", u.Code, u.Reason)
	}
	if *verbose {
		for _, s := range res.Suppressed {
			d := s.Diagnostic
			fmt.Printf("%s:%d: suppressed %s: %s (reason: %s)\n", rel(d.Pos.Filename), d.Pos.Line, d.Code, d.Message, s.Reason)
		}
		for _, a := range res.Allowlisted {
			fmt.Printf("%s:%d: allowlisted %s in %s: %s\n", rel(a.Pos.Filename), a.Pos.Line, a.Code, a.Where, a.Reason)
		}
	}

	fmt.Fprintf(os.Stderr, "merlinvet: %d packages, %d findings, %d suppressed by //lint:allow, %d allowlisted sites\n",
		res.Packages, len(res.Findings)+len(res.Unused), len(res.Suppressed), len(res.Allowlisted))
	if !res.Clean() {
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the enclosing
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// reportScope converts package arguments into absolute directory
// prefixes for filtering findings. `./...`, `all` or no arguments mean
// the whole module.
func reportScope(moduleDir string, args []string) ([]string, error) {
	var only []string
	for _, a := range args {
		if a == "./..." || a == "all" {
			return nil, nil
		}
		a = strings.TrimSuffix(a, "/...")
		abs := a
		if !filepath.IsAbs(a) {
			wd, err := os.Getwd()
			if err != nil {
				return nil, err
			}
			abs = filepath.Join(wd, a)
		}
		if _, err := os.Stat(abs); err != nil {
			return nil, fmt.Errorf("package argument %q: %w", a, err)
		}
		only = append(only, abs)
	}
	return only, nil
}
