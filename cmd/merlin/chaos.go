package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"merlin"
)

// runChaos implements `merlin chaos`: certify the campaign fleet against
// seeded fault schedules. An in-process coordinator+worker fleet runs
// one chaos campaign per scenario — stalled and crashed shard streams,
// corrupted artifact transfers, torn registry writes, 5xx storms,
// stragglers and duplicates — and every surviving run must produce a
// merged report bit-identical to a clean run of the same request.
//
//	merlin chaos -seed 1 -scenarios 25
//	merlin chaos -seed 7 -scenarios 8 -workers 3 -v
func runChaos(args []string) int {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	var (
		seed      = fs.Uint64("seed", 1, "chaos seed; scenario i draws from an independent stream derived from (seed, i)")
		scenarios = fs.Int("scenarios", 25, "number of seeded chaos schedules to run")
		workers   = fs.Int("workers", 2, "fleet workers per scenario")
		verbose   = fs.Bool("v", false, "print one line per scenario")
	)
	fs.Parse(args)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	opt := merlin.ChaosOptions{Seed: *seed, Scenarios: *scenarios, Workers: *workers}
	if *verbose {
		opt.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	res, err := merlin.RunChaos(ctx, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, "merlin chaos: FAIL:", err)
		return 1
	}
	fmt.Printf("chaos: %d scenarios (%d workers each) survived with bit-identical reports; %d injected faults, %d requeues\n",
		res.Scenarios, res.Workers, res.Faults, res.Requeues)
	overhead := 0.0
	if res.CleanWall > 0 {
		overhead = float64(res.ChaosMean) / float64(res.CleanWall)
	}
	fmt.Printf("chaos-summary: scenarios=%d requeues=%d faults=%d clean_ms=%d chaos_mean_ms=%d overhead_x=%.2f suite_ms=%d result=PASS\n",
		res.Scenarios, res.Requeues, res.Faults,
		res.CleanWall.Milliseconds(), res.ChaosMean.Milliseconds(), overhead,
		res.SuiteWall.Milliseconds())
	return 0
}
