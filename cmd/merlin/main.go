// Command merlin runs one fault-injection campaign — MeRLiN-reduced,
// comprehensive baseline, or both — for a chosen workload, structure and
// configuration, and prints the resulting fault-effect classification,
// AVF, FIT and speedup.
//
// Examples:
//
//	merlin -workload qsort -structure RF -faults 2000
//	merlin -workload bzip2 -structure L1D -l1d 16384 -faults 5000 -baseline
//	merlin -workload sha -structure SQ -strategy forked
//	merlin -workload qsort -structure RF -cache ./merlind-cache
//	merlin -workload qsort -structures RF,SQ,L1D -faults 2000
//	merlin -list
//
// -structures runs a batch campaign: every listed structure is evaluated
// over a single shared golden run (one profiling pass, one artifact-cache
// entry, one checkpoint ladder), with per-structure reports bit-identical
// to standalone runs and cross-structure AVF/FIT totals at the end.
//
// -strategy selects how injection runs reproduce the pre-fault execution
// prefix: replay (from reset), checkpointed (from k frozen snapshots), or
// forked (fork-on-fault scheduling off a single golden sweep). Outcomes
// are bit-identical across strategies; only wall-clock differs.
// -checkpoints implies -strategy checkpointed; combining it with an
// explicit different strategy is an error.
//
// -cache points at a golden-run artifact cache directory (shareable with a
// running merlind): repeated one-shot invocations on the same workload and
// core configuration skip the golden run and ACE-like analysis entirely.
//
// The campaign runs under a signal-aware context: Ctrl-C cancels it
// between injections and prints the partial classification instead of
// discarding the work.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"

	"merlin"

	"merlin/internal/cpu"
)

// main delegates to run so deferred profile writers execute before the
// process exits with run's status code.
func main() { os.Exit(run()) }

func run() int {
	// Subcommands take over before campaign flag parsing; everything else
	// is the original campaign interface.
	if len(os.Args) > 1 && os.Args[1] == "conformance" {
		return runConformance(os.Args[2:])
	}
	if len(os.Args) > 1 && os.Args[1] == "chaos" {
		return runChaos(os.Args[2:])
	}
	if len(os.Args) > 1 && os.Args[1] == "analyze" {
		return runAnalyze(os.Args[2:])
	}
	var (
		workload   = flag.String("workload", "qsort", "workload name (see -list)")
		structure  = flag.String("structure", "RF", "injection target: RF, SQ, or L1D")
		structures = flag.String("structures", "", "comma-separated batch targets (e.g. RF,SQ,L1D): run one batch campaign whose structures share a single golden run; overrides -structure, incompatible with -baseline")
		faults     = flag.Int("faults", 2000, "initial statistical fault list size (0 = derive from -confidence/-margin; the paper uses 60000)")
		conf       = flag.Float64("confidence", 0.998, "statistical confidence level")
		margin     = flag.Float64("margin", 0.0063, "statistical error margin")
		seed       = flag.Int64("seed", 1, "fault sampling seed")
		regs       = flag.Int("regs", 256, "physical integer registers (256/128/64)")
		sq         = flag.Int("sq", 64, "store-queue (and load-queue) entries (64/32/16)")
		l1d        = flag.Int("l1d", 32<<10, "L1 data cache bytes (65536/32768/16384)")
		reps       = flag.Int("reps", 1, "representatives injected per final group")
		baseline   = flag.Bool("baseline", false, "also run the comprehensive baseline campaign for comparison")
		workers    = flag.Int("workers", 0, "injection parallelism (0 = all cores)")
		strategy   = flag.String("strategy", "replay", "injection strategy: replay, checkpointed, or forked (bit-identical outcomes, different wall-clock)")
		ckpts      = flag.Int("checkpoints", 0, "snapshot count (>0 implies -strategy checkpointed)")
		cacheDir   = flag.String("cache", "", "golden-run artifact cache directory (empty disables; shareable with merlind)")
		cpuProf    = flag.String("cpuprofile", "", "write a pprof CPU profile of the campaign to this file")
		memProf    = flag.String("memprofile", "", "write a pprof heap profile (after the campaign) to this file")
		verbose    = flag.Bool("v", false, "print phase progress to stderr")
		list       = flag.Bool("list", false, "list available workloads and exit")
	)
	flag.Parse()

	// The heap-profile defer is registered before CPU profiling starts:
	// defers run LIFO, so StopCPUProfile executes first and the GC +
	// heap-profile encoding never pollute the CPU profile's tail.
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "merlin:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile shows live state
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "merlin:", err)
			}
		}()
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "merlin:", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "merlin:", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	if *list {
		fmt.Println("mibench:", strings.Join(merlin.Workloads("mibench"), " "))
		fmt.Println("spec:   ", strings.Join(merlin.Workloads("spec"), " "))
		return 0
	}

	// -structures selects batch mode: one campaign per listed structure
	// over a single shared golden run. Batch targets replace -structure.
	var batchTargets []merlin.Structure
	if *structures != "" {
		if *baseline {
			fmt.Fprintln(os.Stderr, "merlin: -baseline is a single-structure mode; drop -structures (or run per structure)")
			return 2
		}
		for _, name := range strings.Split(*structures, ",") {
			t, err := merlin.ParseStructure(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			batchTargets = append(batchTargets, t)
		}
	}

	opts := []merlin.Option{
		merlin.WithCPU(cpu.DefaultConfig().WithRF(*regs).WithSQ(*sq).WithL1D(*l1d)),
		merlin.WithFaults(*faults),
		merlin.WithSampling(*conf, *margin),
		merlin.WithSeed(*seed),
		merlin.WithRepsPerGroup(*reps),
		merlin.WithWorkers(*workers),
	}
	// Only an explicitly spelled -strategy counts as explicit: the flag
	// default must not turn -checkpoints into a conflict.
	strategySet := false
	flag.Visit(func(f *flag.Flag) { strategySet = strategySet || f.Name == "strategy" })
	if strategySet {
		strat, err := merlin.ParseStrategy(*strategy)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		opts = append(opts, merlin.WithStrategy(strat))
	}
	if *ckpts > 0 {
		opts = append(opts, merlin.WithCheckpoints(*ckpts))
	}
	if *cacheDir != "" {
		cache, err := merlin.OpenCache(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "merlin:", err)
			return 1
		}
		opts = append(opts, merlin.WithCache(cache))
	}
	if *verbose {
		opts = append(opts, merlin.WithProgress(func(p merlin.Progress) {
			if p.Kind == merlin.ProgressPhaseDone {
				fmt.Fprintf(os.Stderr, "merlin: %s: %s\n", p.Phase, p.Msg)
			}
		}))
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if len(batchTargets) > 0 {
		return runBatch(ctx, *workload, append(opts, merlin.WithStructures(batchTargets...)))
	}

	// -structure is only consulted in single-campaign mode; batch mode
	// takes its targets from -structures and ignores it entirely.
	target, err := merlin.ParseStructure(*structure)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	s, err := merlin.Start(ctx, *workload, append(opts, merlin.WithStructure(target))...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "merlin:", err)
		return 2
	}

	rep, err := s.Run(ctx)
	if errors.Is(err, context.Canceled) && rep != nil {
		fmt.Fprintf(os.Stderr, "merlin: campaign cancelled with %d of %d representatives injected\n",
			rep.Injected, rep.Injected+rep.Cancelled)
		fmt.Printf("partial dist (%d classified): %v\n", rep.Dist.Total(), rep.Dist)
		return 130
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "merlin:", err)
		return 1
	}
	fmt.Println(rep)
	goldenSrc := ""
	if rep.CacheHit {
		goldenSrc = " (served from artifact cache)"
	}
	snapSrc := ""
	if rep.SnapshotHit {
		snapSrc = ", snapshot cache hit"
	}
	fmt.Printf("  golden run: %d cycles%s; MeRLiN injection wall %v (serial %v)\n",
		rep.GoldenCycles, goldenSrc, rep.Wall.Round(1000000), rep.Serial.Round(1000000))
	fmt.Printf("  throughput: %.2fM cycles/s across workers; %d clones in %v%s\n",
		rep.CyclesPerSec/1e6, rep.Clones, rep.CloneTime.Round(1000000), snapSrc)

	if *baseline {
		// The session reuses the golden run and fault list, so the
		// baseline injects exactly the faults the reduced campaign was
		// sampled from.
		base, err := s.Baseline(ctx)
		if errors.Is(err, context.Canceled) && base != nil {
			fmt.Fprintf(os.Stderr, "merlin: baseline cancelled with %d of %d faults injected\n",
				base.Dist.Total(), base.Faults)
			fmt.Printf("partial baseline dist (%d classified): %v\n", base.Dist.Total(), base.Dist)
			return 130
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "merlin baseline:", err)
			return 1
		}
		fmt.Printf("baseline (%d injections): %v\n  AVF %.4f FIT %.3f; wall %v (serial %v)\n",
			base.Faults, base.Dist, base.AVF, base.FIT,
			base.Wall.Round(1000000), base.Serial.Round(1000000))
		fmt.Printf("observed speedup: %.1fx fewer injections, %.1fx less injection time\n",
			float64(base.Faults)/float64(rep.Injected),
			base.Serial.Seconds()/rep.Serial.Seconds())
	}
	return 0
}

// runBatch runs the -structures batch mode: one shared golden run, one
// report per structure, cross-structure totals.
func runBatch(ctx context.Context, workload string, opts []merlin.Option) int {
	b, err := merlin.StartBatch(ctx, workload, opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "merlin:", err)
		return 2
	}
	rep, err := b.Run(ctx)
	if errors.Is(err, context.Canceled) && rep != nil {
		fmt.Fprintf(os.Stderr, "merlin: batch cancelled with %d of %d structures reporting\n",
			len(rep.Reports), len(rep.Structures))
		for _, r := range rep.Reports {
			fmt.Printf("%s/%s partial dist (%d classified): %v\n", r.Workload, r.Structure, r.Dist.Total(), r.Dist)
		}
		return 130
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "merlin:", err)
		return 1
	}
	fmt.Println(rep)
	goldenSrc := "simulated once"
	if rep.CacheHit {
		goldenSrc = "served from artifact cache"
	}
	fmt.Printf("  golden run: %d cycles, %s, shared by %d structures; batch wall %v\n",
		rep.GoldenCycles, goldenSrc, len(rep.Reports), rep.Wall.Round(1000000))
	for i, v := range rep.Variance {
		fmt.Printf("  %v §4.4.5 variance: baseline %.3g, MeRLiN %.3g (orders below mean: %.1f / %.1f)\n",
			rep.Reports[i].Structure, v.VarBaseline, v.VarMerlin, v.OrdersBaseline, v.OrdersMerlin)
	}
	return 0
}
