// Command merlin runs one fault-injection campaign — MeRLiN-reduced,
// comprehensive baseline, or both — for a chosen workload, structure and
// configuration, and prints the resulting fault-effect classification,
// AVF, FIT and speedup.
//
// Examples:
//
//	merlin -workload qsort -structure RF -faults 2000
//	merlin -workload bzip2 -structure L1D -l1d 16384 -faults 5000 -baseline
//	merlin -workload sha -structure SQ -strategy forked
//	merlin -workload qsort -structure RF -cache ./merlind-cache
//	merlin -list
//
// -strategy selects how injection runs reproduce the pre-fault execution
// prefix: replay (from reset), checkpointed (from k frozen snapshots), or
// forked (fork-on-fault scheduling off a single golden sweep). Outcomes
// are bit-identical across strategies; only wall-clock differs.
//
// -cache points at a golden-run artifact cache directory (shareable with a
// running merlind): repeated one-shot invocations on the same workload and
// core configuration skip the golden run and ACE-like analysis entirely.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"merlin"

	"merlin/internal/cpu"
)

func main() {
	var (
		workload  = flag.String("workload", "qsort", "workload name (see -list)")
		structure = flag.String("structure", "RF", "injection target: RF, SQ, or L1D")
		faults    = flag.Int("faults", 2000, "initial statistical fault list size (0 = derive from -confidence/-margin; the paper uses 60000)")
		conf      = flag.Float64("confidence", 0.998, "statistical confidence level")
		margin    = flag.Float64("margin", 0.0063, "statistical error margin")
		seed      = flag.Int64("seed", 1, "fault sampling seed")
		regs      = flag.Int("regs", 256, "physical integer registers (256/128/64)")
		sq        = flag.Int("sq", 64, "store-queue (and load-queue) entries (64/32/16)")
		l1d       = flag.Int("l1d", 32<<10, "L1 data cache bytes (65536/32768/16384)")
		reps      = flag.Int("reps", 1, "representatives injected per final group")
		baseline  = flag.Bool("baseline", false, "also run the comprehensive baseline campaign for comparison")
		workers   = flag.Int("workers", 0, "injection parallelism (0 = all cores)")
		strategy  = flag.String("strategy", "replay", "injection strategy: replay, checkpointed, or forked (bit-identical outcomes, different wall-clock)")
		ckpts     = flag.Int("checkpoints", 0, "snapshot count for -strategy checkpointed (>0 also implies that strategy)")
		cacheDir  = flag.String("cache", "", "golden-run artifact cache directory (empty disables; shareable with merlind)")
		list      = flag.Bool("list", false, "list available workloads and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("mibench:", strings.Join(merlin.Workloads("mibench"), " "))
		fmt.Println("spec:   ", strings.Join(merlin.Workloads("spec"), " "))
		return
	}

	strat, err := merlin.ParseStrategy(*strategy)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var target merlin.Structure
	switch strings.ToUpper(*structure) {
	case "RF":
		target = merlin.RF
	case "SQ":
		target = merlin.SQ
	case "L1D":
		target = merlin.L1D
	default:
		fmt.Fprintf(os.Stderr, "unknown structure %q (want RF, SQ, or L1D)\n", *structure)
		os.Exit(2)
	}

	cfg := merlin.Config{
		Workload:     *workload,
		CPU:          cpu.DefaultConfig().WithRF(*regs).WithSQ(*sq).WithL1D(*l1d),
		Structure:    target,
		Faults:       *faults,
		Confidence:   *conf,
		ErrorMargin:  *margin,
		Seed:         *seed,
		RepsPerGroup: *reps,
		Workers:      *workers,
		Strategy:     strat,
		Checkpoints:  *ckpts,
	}
	if *cacheDir != "" {
		cache, err := merlin.OpenCache(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "merlin:", err)
			os.Exit(1)
		}
		cfg.Cache = cache
	}

	rep, err := merlin.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "merlin:", err)
		os.Exit(1)
	}
	fmt.Println(rep)
	goldenSrc := ""
	if rep.CacheHit {
		goldenSrc = " (served from artifact cache)"
	}
	fmt.Printf("  golden run: %d cycles%s; MeRLiN injection wall %v (serial %v)\n",
		rep.GoldenCycles, goldenSrc, rep.Wall.Round(1000000), rep.Serial.Round(1000000))

	if *baseline {
		base, err := merlin.RunBaseline(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "merlin baseline:", err)
			os.Exit(1)
		}
		fmt.Printf("baseline (%d injections): %v\n  AVF %.4f FIT %.3f; wall %v (serial %v)\n",
			base.Faults, base.Dist, base.AVF, base.FIT,
			base.Wall.Round(1000000), base.Serial.Round(1000000))
		fmt.Printf("observed speedup: %.1fx fewer injections, %.1fx less injection time\n",
			float64(base.Faults)/float64(rep.Injected),
			base.Serial.Seconds()/rep.Serial.Seconds())
	}
}
