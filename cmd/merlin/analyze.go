package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"merlin/internal/campaign"
	"merlin/internal/conformance/gen"
	"merlin/internal/cpu"
	"merlin/internal/guestflow"
	"merlin/internal/isa"
	"merlin/internal/lifetime"
	"merlin/internal/sampling"
	"merlin/internal/workloads"
)

// runAnalyze implements `merlin analyze`: run the guestflow static
// dataflow engine (CFG recovery, dominators, liveness, reaching
// definitions) over guest programs, cross-check its may-live bounds
// against the dynamic ACE tracer's vulnerable intervals, and report how
// many sampled RF fault sites the static must-dead pre-pruner would
// classify masked without a dynamic interval lookup.
//
//	merlin analyze                         # every registered workload
//	merlin analyze -workload qsort -v
//	merlin analyze -crosscheck -gen 100    # CI gate: built-ins + 100 stress kernels
//
// With -crosscheck any static/dynamic disagreement is fatal (exit 1): a
// dynamic read outside the static may-live bound means one of
// internal/guestflow or internal/lifetime is wrong, and the diagnostic
// names the interval, the reading instruction and a disassembly window.
func runAnalyze(args []string) int {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	var (
		workload = fs.String("workload", "", "analyze a single workload (default: every registered workload)")
		genN     = fs.Int("gen", 0, "also analyze N conformance/gen stress kernels (classes round-robin, seeds seed..seed+N-1)")
		seed     = fs.Int64("seed", 1, "base seed for -gen kernels and RF fault-site sampling")
		faults   = fs.Int("faults", 1000, "RF fault sites sampled per program to measure the statically prunable fraction")
		crossck  = fs.Bool("crosscheck", false, "fail (exit 1) on any static/dynamic cross-check violation")
		regs     = fs.Int("regs", 256, "physical integer registers")
		sq       = fs.Int("sq", 64, "store-queue (and load-queue) entries")
		l1d      = fs.Int("l1d", 32<<10, "L1 data cache bytes")
		verbose  = fs.Bool("v", false, "print one line per program")
	)
	fs.Parse(args)

	cfg := cpu.DefaultConfig().WithRF(*regs).WithSQ(*sq).WithL1D(*l1d)

	type job struct {
		name string
		prog *isa.Program
	}
	var jobs []job
	if *workload != "" {
		w, err := workloads.Get(*workload)
		if err != nil {
			fmt.Fprintln(os.Stderr, "analyze:", err)
			return 2
		}
		jobs = append(jobs, job{w.Name, w.Program()})
	} else {
		for _, name := range workloads.Names("") {
			jobs = append(jobs, job{name, workloads.MustGet(name).Program()})
		}
	}
	classes := gen.Classes()
	for k := 0; k < *genN; k++ {
		prog := gen.Kernel(classes[k%len(classes)], uint64(*seed)+uint64(k))
		jobs = append(jobs, job{prog.Name, prog})
	}

	var (
		totIntervals, totViolations int
		totFaults, totPruned        int
		analysisWall                time.Duration
		start                       = time.Now()
	)
	for _, j := range jobs {
		runner := campaign.NewRunner(campaign.Target{Cfg: cfg, Prog: j.prog})
		golden, err := runner.RunGolden(lifetime.StructRF)
		if err != nil {
			fmt.Fprintf(os.Stderr, "analyze: %s: %v\n", j.name, err)
			return 1
		}
		core := runner.NewCore()
		entries := core.StructureEntries(lifetime.StructRF)
		entryBits := core.StructureEntryBits(lifetime.StructRF)
		log := golden.Tracer.Log(lifetime.StructRF)
		dyn := lifetime.Build(log, lifetime.StructRF, entries, entryBits/8, golden.Result.Cycles)

		// The timed region is exactly what WithStaticPrune adds to a
		// campaign: the static analysis plus the per-fault prune pass.
		t0 := time.Now()
		g := guestflow.Analyze(j.prog)
		sites := sampling.Generate(lifetime.StructRF, entries, entryBits,
			golden.Result.Cycles, *faults, *seed)
		premasked, ps := guestflow.PruneRF(g, log, sites)
		analysisWall += time.Since(t0)

		violations := guestflow.CrossCheck(g, dyn, log)
		st := g.ComputeStats()

		totIntervals += len(dyn.Intervals)
		totViolations += len(violations)
		totFaults += len(sites)
		totPruned += ps.Pruned()

		if *verbose || len(violations) > 0 {
			fmt.Printf("%-14s insts %4d reach %4d branches %3d jumps %2d indirect %2d (fan %3d) defs %4d mayLive %4.1f mustDead %4.1f | intervals %5d violations %d | prunable %4d/%d (%.1f%%)\n",
				j.name, st.Instructions, st.Reachable, st.Branches, st.DirectJumps,
				st.IndirectOps, st.IndirectFan, st.Defs, st.AvgMayLive, st.AvgMustDead,
				len(dyn.Intervals), len(violations),
				ps.Pruned(), len(sites), 100*float64(ps.Pruned())/float64(max(1, len(sites))))
		}
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "analyze: %s: %v\n", j.name, &v)
		}
		// Sanity: every statically pruned fault must also be dynamically
		// masked — this is the same invariant the session verifies before
		// trusting the pruner, checked here over the sampled sites.
		for i, pm := range premasked {
			if !pm {
				continue
			}
			f := sites[i]
			if _, ok := dyn.Find(f.Entry, f.Byte(), f.Cycle); ok {
				totViolations++
				fmt.Fprintf(os.Stderr,
					"analyze: %s: static pruner disagrees with dynamic analysis on fault %v (statically must-dead, dynamically vulnerable)\n",
					j.name, f)
			}
		}
	}

	pct := 100 * float64(totPruned) / float64(max(1, totFaults))
	result := "PASS"
	if totViolations > 0 {
		result = "FAIL"
	}
	fmt.Printf("analyze: %d programs, %d dynamic intervals cross-checked, %d violations; %d/%d sampled RF fault sites statically prunable (%.1f%%) in %v\n",
		len(jobs), totIntervals, totViolations, totPruned, totFaults, pct, time.Since(start).Round(time.Millisecond))
	fmt.Printf("staticprune-summary: programs=%d intervals=%d violations=%d faults=%d pruned=%d pct=%.2f analysis_ms=%.3f result=%s\n",
		len(jobs), totIntervals, totViolations, totFaults, totPruned, pct,
		float64(analysisWall.Nanoseconds())/1e6, result)

	if *crossck && totViolations > 0 {
		return 1
	}
	return 0
}
