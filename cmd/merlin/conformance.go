package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"merlin/internal/conformance"
	"merlin/internal/conformance/gen"
	"merlin/internal/cpu"
)

// runConformance implements `merlin conformance`: certify a core
// configuration by running seeded stress kernels through the lockstep
// differential oracle, kernel classes × -kernels seeds each. Any
// divergence prints a first-divergence report (retiring PC, disassembly
// window, both register files) and fails the run.
//
//	merlin conformance -seed 1 -kernels 50
//	merlin conformance -classes sq,l1d -regs 64 -sq 16 -l1d 16384
//	merlin conformance -selftest
func runConformance(args []string) int {
	fs := flag.NewFlagSet("conformance", flag.ExitOnError)
	var (
		seed     = fs.Uint64("seed", 1, "base kernel seed; kernel k of a class uses seed+k")
		kernels  = fs.Int("kernels", 50, "kernels per structure class")
		classes  = fs.String("classes", "", "comma-separated kernel classes (default: all of "+strings.Join(gen.Classes(), ",")+")")
		regs     = fs.Int("regs", 256, "physical integer registers")
		sq       = fs.Int("sq", 64, "store-queue (and load-queue) entries")
		l1d      = fs.Int("l1d", 32<<10, "L1 data cache bytes")
		cycles   = fs.Uint64("max-cycles", 10_000_000, "per-kernel core cycle budget")
		selftest = fs.Bool("selftest", false, "also sabotage the core (bit-flipped µop results) and require the oracle to catch it")
		verbose  = fs.Bool("v", false, "print one line per kernel")
	)
	fs.Parse(args)

	list := gen.Classes()
	if *classes != "" {
		list = strings.Split(*classes, ",")
		known := make(map[string]bool)
		for _, c := range gen.Classes() {
			known[c] = true
		}
		for _, c := range list {
			if !known[c] {
				fmt.Fprintf(os.Stderr, "conformance: unknown class %q (have %s)\n", c, strings.Join(gen.Classes(), ","))
				return 2
			}
		}
	}
	cfg := conformance.Config{
		CPU:       cpu.DefaultConfig().WithRF(*regs).WithSQ(*sq).WithL1D(*l1d),
		MaxCycles: *cycles,
	}

	start := time.Now()
	var totalKernels, totalRetired, totalCycles uint64
	for _, class := range list {
		classStart := time.Now()
		var retired, cyc uint64
		for k := 0; k < *kernels; k++ {
			prog := gen.Kernel(class, *seed+uint64(k))
			rep := conformance.Run(prog, cfg)
			if rep.Divergence != nil {
				fmt.Fprintf(os.Stderr, "FAIL %s (class %s):\n%s", prog.Name, class, rep.Divergence)
				return 1
			}
			if rep.Timeout {
				fmt.Fprintf(os.Stderr, "FAIL %s (class %s): inconclusive, cycle budget %d exhausted\n", prog.Name, class, *cycles)
				return 1
			}
			if *verbose {
				fmt.Printf("  %-12s retired %6d insts in %8d cycles: ok\n", prog.Name, rep.Retired, rep.Cycles)
			}
			retired += rep.Retired
			cyc += rep.Cycles
		}
		totalKernels += uint64(*kernels)
		totalRetired += retired
		totalCycles += cyc
		fmt.Printf("%-6s %3d kernels, %8d insts retired, %9d cycles, 0 divergences (%.2fs)\n",
			class, *kernels, retired, cyc, time.Since(classStart).Seconds())
	}
	fmt.Printf("conformance: %d kernels, %d instructions lockstep-verified in %.2fs: PASS\n",
		totalKernels, totalRetired, time.Since(start).Seconds())

	if *selftest {
		return conformanceSelftest(cfg)
	}
	return 0
}

// conformanceSelftest proves the oracle can fail: it re-runs one kernel
// per class on a core whose µop results are bit-flipped from mid-run
// onward, and requires a first-divergence report naming a retiring PC.
// A sabotaged core that passes means the oracle is blind — that is the
// failure.
func conformanceSelftest(cfg conformance.Config) int {
	fmt.Println("selftest: injecting µop result corruption into the core...")
	for _, class := range gen.Classes() {
		prog := gen.Kernel(class, 1)
		clean := conformance.Run(prog, cfg)
		if !clean.Conformant() {
			fmt.Fprintf(os.Stderr, "selftest FAIL: clean %s run not conformant\n", prog.Name)
			return 1
		}
		bad := cfg
		bad.SabotageSeq = clean.LastSeq / 2
		bad.SabotageMask = 1 << 13
		rep := conformance.Run(prog, bad)
		if rep.Divergence == nil {
			fmt.Fprintf(os.Stderr, "selftest FAIL: sabotaged core passed %s — the oracle is blind\n", prog.Name)
			return 1
		}
		fmt.Printf("  %-12s caught: %s divergence at retiring pc %d (seq %d)\n",
			prog.Name, rep.Divergence.Kind, rep.Divergence.RIP, rep.Divergence.Seq)
	}
	fmt.Println("selftest: all sabotaged runs caught: PASS")
	return 0
}
