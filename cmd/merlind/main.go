// Command merlind is the MeRLiN campaign service: a long-running daemon
// that accepts fault-injection campaigns over an HTTP+JSON API, runs them
// on a sharded worker pool with bounded queues, streams per-fault progress
// to clients, and amortizes golden runs across campaigns (and across
// daemon restarts) through the on-disk golden-run artifact cache.
//
// Start it and submit a campaign:
//
//	merlind -addr :7411 -cache ./merlind-cache &
//	curl -s localhost:7411/healthz
//	curl -s -X POST localhost:7411/campaigns \
//	    -d '{"workload":"qsort","structure":"RF","faults":2000,"strategy":"forked"}'
//	curl -s localhost:7411/campaigns/c000001            # status + report
//	curl -sN localhost:7411/campaigns/c000001/events    # live NDJSON progress
//	curl -s -X DELETE localhost:7411/campaigns/c000001  # cancel queued or running
//	curl -s localhost:7411/statsz                       # queues + cache hits/misses
//
// Batch campaigns evaluate one workload across several structures over a
// single shared golden run (one profiling pass, one artifact, one
// checkpoint ladder), streaming structure-tagged events; DELETE cancels
// the whole batch:
//
//	curl -s -X POST localhost:7411/batches \
//	    -d '{"workload":"qsort","structures":["RF","SQ","L1D"],"faults":2000,"strategy":"forked"}'
//	curl -s localhost:7411/batches/b000002              # status + batch report
//	curl -sN localhost:7411/batches/b000002/events      # NDJSON tagged by structure
//	curl -s -X DELETE localhost:7411/batches/b000002    # cancel all structures
//
// Campaigns that share (workload, core config, structure set) reuse one
// golden run: the first campaign pays for Preprocess, every later one —
// different fault budget, seed, strategy, grouping ablation — skips it
// entirely.
//
// Campaigns are first-class, interruptible objects: DELETE cancels a
// queued campaign instantly and stops a running one between injections
// (terminal status "cancelled", worker shard freed), and a submission may
// carry "deadline_ms" to bound its execution time.
//
// merlind also scales out. A coordinator (the default role) shards each
// campaign's fault groups across fleet workers that joined it, merges
// their streamed outcomes, and — with -registry — persists campaign state
// so a restart resumes in-flight campaigns from their last checkpoint.
// Workers are the same binary pointed at the coordinator:
//
//	merlind -addr :7411 -registry ./merlind-registry &      # coordinator
//	merlind -role worker -addr :7412 -join http://localhost:7411 &
//	merlind -role worker -addr :7413 -join http://localhost:7411 &
//	curl -s localhost:7411/fleet/workers                    # the fleet
//
// Campaigns submit to the coordinator exactly as before; with no workers
// joined it degrades to the single-process pipeline, and a worker lost
// mid-campaign has its unfinished fault groups requeued onto survivors.
package main

import (
	"context"
	"flag"
	"log"
	"os/signal"
	"syscall"

	"merlin"
)

func main() {
	var (
		addr      = flag.String("addr", ":7411", "listen address")
		cache     = flag.String("cache", "merlind-cache", "golden-run artifact cache directory (empty disables caching)")
		shards    = flag.Int("shards", 0, "independent campaign worker pools (0 = default 4)")
		shardW    = flag.Int("shard-workers", 0, "concurrent campaigns per shard (0 = default 1)")
		queue     = flag.Int("queue", 0, "pending-campaign bound per shard, beyond which submissions get 429 (0 = default 64)")
		retain    = flag.Int("retain", 0, "finished campaigns kept queryable before the oldest are evicted (0 = default 1024)")
		maxEvents = flag.Int("max-events", 0, "per-campaign event log cap before the oldest entries are dropped (0 = default 8192)")
		snapMB    = flag.Int64("snapshot-budget", 0, "in-memory checkpoint-snapshot cache budget in MB, shared across campaigns (0 = default 512, negative disables)")

		role      = flag.String("role", "coordinator", `"coordinator" accepts campaigns and shards them over joined workers; "worker" joins a coordinator and executes shards`)
		join      = flag.String("join", "", "coordinator base URL to join (worker role; setting it implies -role worker)")
		advertise = flag.String("advertise", "", "base URL the coordinator reaches this worker at (worker role; default http://127.0.0.1<addr>)")
		workerID  = flag.String("worker-id", "", "worker name in the coordinator's pool (worker role; default derived from the advertise URL)")
		registry  = flag.String("registry", "", "durable campaign registry directory: campaigns survive and resume across restarts (coordinator role; empty disables)")
		fleetTTL  = flag.Duration("worker-ttl", 0, "heartbeat window before a silent worker is considered dead (coordinator role; 0 = default 10s, negative disables the fleet endpoints)")
	)
	flag.Parse()

	snapBudget := *snapMB
	if snapBudget > 0 {
		snapBudget <<= 20
	}
	var artifacts *merlin.Cache
	if *cache != "" {
		c, err := merlin.OpenCache(*cache)
		if err != nil {
			log.Fatalf("merlind: %v", err)
		}
		artifacts = c
		st := c.Stats()
		log.Printf("artifact cache at %s (%d artifacts, %d bytes)", c.Dir(), st.Entries, st.Bytes)
	} else {
		log.Printf("artifact cache disabled; every campaign will repeat its golden run")
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *join != "" || *role == "worker" {
		if *join == "" {
			log.Fatalf("merlind: -role worker requires -join <coordinator URL>")
		}
		log.Printf("merlind worker listening on %s, joining %s", *addr, *join)
		err := merlin.ServeWorker(ctx, *addr, merlin.WorkerOptions{
			Coordinator:    *join,
			ID:             *workerID,
			Advertise:      *advertise,
			Cache:          artifacts,
			SnapshotBudget: snapBudget,
			Logf:           log.Printf,
		})
		if err != nil {
			log.Fatalf("merlind: %v", err)
		}
		log.Printf("worker shut down cleanly")
		return
	}
	if *role != "coordinator" {
		log.Fatalf("merlind: unknown -role %q (want coordinator or worker)", *role)
	}

	opt := merlin.ServeOptions{
		Cache:                artifacts,
		Shards:               *shards,
		WorkersPerShard:      *shardW,
		QueueDepth:           *queue,
		RetainFinished:       *retain,
		MaxEventsPerCampaign: *maxEvents,
		SnapshotBudget:       snapBudget,
		FleetTTL:             *fleetTTL,
	}
	if *registry != "" {
		reg, err := merlin.OpenRegistry(*registry)
		if err != nil {
			log.Fatalf("merlind: %v", err)
		}
		opt.Registry = reg
		st := reg.Stats()
		log.Printf("campaign registry at %s (%d records, %d bytes): campaigns survive restarts", *registry, st.Records, st.Bytes)
	}

	log.Printf("merlind listening on %s", *addr)
	if err := merlin.Serve(ctx, *addr, opt); err != nil {
		log.Fatalf("merlind: %v", err)
	}
	if opt.Cache != nil {
		st := opt.Cache.Stats()
		log.Printf("shut down cleanly; cache served %d hits / %d misses this run", st.Hits, st.Misses)
	} else {
		log.Printf("shut down cleanly")
	}
}
