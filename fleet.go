package merlin

// This file wires the distributed campaign fleet: the coordinator side
// (durable registry adapter, the shard-merge RunFunc that spreads a
// campaign's fault groups over internal/fleet workers and recombines
// their outcome streams) and the worker side (ServeWorker, which joins a
// coordinator, heartbeats, and executes shard jobs against the local
// pipeline). MeRLiN's determinism keeps the protocol thin: a worker
// re-derives Preprocess and Reduce bit-identically from the campaign
// request, so shard jobs carry only the request JSON and global
// representative indices, and golden artifacts travel separately by
// content address.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"merlin/internal/campaign"
	"merlin/internal/fault"
	"merlin/internal/fleet"
	"merlin/internal/server"
	"merlin/internal/store"
)

// CampaignRegistry is the durable campaign registry: per-record
// checksummed files under one directory, written atomically, holding
// everything a restarted coordinator needs to restore finished campaigns
// and resume interrupted ones from their last outcome checkpoint. Open
// one with OpenRegistry and pass it in ServeOptions.Registry.
type CampaignRegistry = store.Registry

// CampaignRegistryStats is a point-in-time snapshot of registry activity.
type CampaignRegistryStats = store.RegistryStats

// OpenRegistry creates (if needed) and opens a durable campaign registry
// rooted at dir.
func OpenRegistry(dir string) (*CampaignRegistry, error) { return store.OpenRegistry(dir) }

// registryAdapter bridges the pipeline-agnostic server.Registry interface
// to the store's durable registry. server.Record and store.CampaignRecord
// are deliberately struct-identical, so the bridge is a plain conversion.
type registryAdapter struct{ reg *store.Registry }

func (a registryAdapter) Put(rec server.Record) error {
	return a.reg.Put(store.CampaignRecord(rec))
}

func (a registryAdapter) List() ([]server.Record, error) {
	recs, err := a.reg.List()
	if err != nil {
		return nil, err
	}
	out := make([]server.Record, len(recs))
	for i, r := range recs {
		out[i] = server.Record(r)
	}
	return out, nil
}

func (a registryAdapter) Delete(id string) error { return a.reg.Delete(id) }

// ErrDeterminismViolation is the merge point's loudest failure: two
// sources classified the same representative differently. MeRLiN's whole
// fleet protocol rests on a rep's outcome being a pure function of the
// campaign request, so a contradiction means a worker (or the local
// pipeline) is broken or Byzantine — the campaign must fail rather than
// silently prefer either answer.
var ErrDeterminismViolation = errors.New("merlin: determinism violation")

// outcomeLedger is the coordinator's merge point: per-shard outcome
// streams, resumed checkpoints and local fallback runs all land here,
// deduplicated by representative index (a rep that streamed just before
// its worker died may be re-injected elsewhere; by determinism the
// duplicate carries the same outcome, and the first write wins). A
// duplicate carrying a *different* outcome trips the determinism
// violation, which fails the campaign. Every fresh outcome is forwarded
// to the campaign's event log and the durable checkpoint.
type outcomeLedger struct {
	mu        sync.Mutex
	outcomes  []campaign.Outcome // indexed by rep; Cancelled = unclassified
	done      []bool
	violation error

	structure  string
	emit       func(CampaignEvent)
	checkpoint func(map[int]string)
}

func newOutcomeLedger(total int, structure string, emit func(CampaignEvent), checkpoint func(map[int]string)) *outcomeLedger {
	l := &outcomeLedger{
		outcomes:   make([]campaign.Outcome, total),
		done:       make([]bool, total),
		structure:  structure,
		emit:       emit,
		checkpoint: checkpoint,
	}
	for i := range l.outcomes {
		l.outcomes[i] = campaign.Cancelled
	}
	return l
}

// resume seeds the ledger with a previous incarnation's checkpointed
// outcomes, returning how many applied. Unknown outcome names and
// out-of-range indices are dropped — a corrupted checkpoint degrades to
// re-injecting, never to a wrong report.
func (l *outcomeLedger) resume(resume map[int]string) int {
	n := 0
	for rep, name := range resume {
		o, err := campaign.ParseOutcome(name)
		if err != nil || o == campaign.Cancelled || rep < 0 || rep >= len(l.outcomes) {
			continue
		}
		l.outcomes[rep] = o
		l.done[rep] = true
		n++
	}
	return n
}

// record merges one classified representative. Verbatim duplicates are
// no-ops; a duplicate with a different outcome records a determinism
// violation (surfaced by err) and is not merged.
func (l *outcomeLedger) record(rep int, faultStr string, o campaign.Outcome) {
	l.mu.Lock()
	if rep < 0 || rep >= len(l.outcomes) {
		l.mu.Unlock()
		return
	}
	if l.done[rep] {
		prev := l.outcomes[rep]
		if o != prev && l.violation == nil {
			l.violation = fmt.Errorf("%w: representative %d classified %q, then %q",
				ErrDeterminismViolation, rep, prev.String(), o.String())
			v := l.violation
			l.mu.Unlock()
			l.emit(CampaignEvent{Type: "error", Structure: l.structure, Msg: v.Error()})
			return
		}
		l.mu.Unlock()
		return
	}
	l.done[rep] = true
	l.outcomes[rep] = o
	l.mu.Unlock()
	l.emit(CampaignEvent{Type: "fault", Structure: l.structure, Index: rep,
		Fault: faultStr, Outcome: o.String()})
	l.checkpoint(map[int]string{rep: o.String()})
}

// err reports the first determinism violation the merge observed, nil if
// none.
func (l *outcomeLedger) err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.violation
}

func (l *outcomeLedger) pendingCount() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, d := range l.done {
		if !d {
			n++
		}
	}
	return n
}

// pendingShards partitions the unclassified representatives into shards
// along group boundaries: the reduction's deterministic whole-group
// sharding, filtered down to what is still pending (resumed campaigns
// only re-inject the remainder).
func (l *outcomeLedger) pendingShards(red *Reduction, n int) [][]int {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out [][]int
	for _, shard := range red.ShardReps(n) {
		var keep []int
		for _, rep := range shard {
			if !l.done[rep] {
				keep = append(keep, rep)
			}
		}
		if len(keep) > 0 {
			out = append(out, keep)
		}
	}
	return out
}

// result assembles the merged campaign Result; entries still carrying the
// Cancelled sentinel count as never-injected.
func (l *outcomeLedger) result() *campaign.Result {
	l.mu.Lock()
	defer l.mu.Unlock()
	return campaign.NewResultFrom(l.outcomes)
}

// runFleetCampaign is the coordinator's durable, shardable execution of a
// single-structure campaign: Preprocess and Reduce run once here, the
// representative space is sharded along group boundaries, shards stream
// from live workers (or run in-process when none are alive — the
// degradation path is exactly the single-node pipeline), lost workers'
// reps requeue onto survivors, and every classified outcome is
// checkpointed through the job so a coordinator restart resumes instead
// of restarting. The merged report is bit-identical to a single-node
// run's in everything but the timing counters, because the outcomes are.
func runFleetCampaign(ctx context.Context, job server.Job, emit func(CampaignEvent), cache *Cache, snapshots *SnapshotCache, pool *fleet.Pool, client *http.Client, stall time.Duration) (any, error) {
	req := job.Request
	opts, err := requestOptions(req, cache)
	if err != nil {
		return nil, err
	}
	if snapshots != nil {
		opts = append(opts, WithSnapshotCache(snapshots))
	}
	opts = append(opts, WithProgress(func(p Progress) {
		if ev, ok := progressEvent(p); ok {
			emit(ev)
		}
	}))
	s, err := Start(ctx, req.Workload, opts...)
	if err != nil {
		return nil, err
	}
	if err := s.Preprocess(ctx); err != nil {
		return nil, err
	}
	red, err := s.Reduce()
	if err != nil {
		return nil, err
	}
	art := s.Artifacts()

	led := newOutcomeLedger(red.ReducedCount(), art.Config.Structure.String(), emit, job.Checkpoint)
	if n := led.resume(job.Resume); n > 0 {
		emit(CampaignEvent{Type: "shard", Structure: led.structure,
			Msg: fmt.Sprintf("%d of %d representatives already classified by checkpoint; injecting the remainder", n, red.ReducedCount())})
	}

	reqJSON, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	artifactID := ""
	if cache != nil {
		artifactID = store.NewKey(art.Config.Workload, art.Config.CPU, art.Runner.GoldenBudget, art.Config.Structure).ID()
	}
	local := func(ctx context.Context, reps []int) error {
		return art.injectSubset(ctx, reps, func(rep int, f fault.Fault, o campaign.Outcome) {
			led.record(rep, f.String(), o)
		})
	}

	start := time.Now()
	var runErr error
	if led.pendingCount() > 0 {
		workers := 0
		if pool != nil {
			workers = len(pool.Alive())
		}
		// Two shards per worker keep everyone busy even when group sizes
		// skew, and give the work-stealing rounds units to requeue.
		shardCount := 2 * workers
		if shardCount < 1 {
			shardCount = 1
		}
		shards := led.pendingShards(red, shardCount)
		if pool == nil {
			for _, reps := range shards {
				if runErr = local(ctx, reps); runErr != nil {
					break
				}
			}
		} else {
			disp := &fleet.Dispatcher{
				Pool:         pool,
				Client:       client,
				StallTimeout: stall,
				Job: func(reps []int) fleet.ShardJob {
					sj := fleet.ShardJob{Campaign: job.ID, Request: reqJSON, Reps: reps}
					if artifactID != "" {
						sj.ArtifactID = artifactID
						sj.ArtifactURL = "/artifacts/" + artifactID
					}
					return sj
				},
				OnOutcome: func(o fleet.Outcome) {
					out, err := campaign.ParseOutcome(o.Outcome)
					if err != nil || out == campaign.Cancelled {
						return
					}
					led.record(o.Rep, o.Fault, out)
				},
				Local: local,
				Emit: func(typ, msg string) {
					emit(CampaignEvent{Type: typ, Structure: led.structure, Msg: msg})
				},
			}
			runErr = disp.Run(ctx, shards)
		}
	}

	// A determinism violation observed at the merge point outranks any
	// dispatch error: the report cannot be trusted either way.
	if verr := led.err(); verr != nil {
		runErr = verr
	}

	res := led.result()
	res.Wall = time.Since(start)
	complete := runErr == nil && res.Cancelled == 0
	rep := art.reportFrom(res, complete)
	if runErr != nil {
		// A cancelled or interrupted campaign keeps its partial report (raw
		// representative distribution, Cancelled count set), matching the
		// local pipeline's cancellation contract.
		return rep, runErr
	}
	if res.Cancelled > 0 {
		return rep, fmt.Errorf("merlin: fleet dispatch left %d representatives unclassified", res.Cancelled)
	}
	emit(CampaignEvent{Type: "inject", Structure: led.structure,
		Msg: fmt.Sprintf("merged %d representative outcomes in %v: %v",
			res.Injected, res.Wall.Round(time.Millisecond), res.Dist)})
	return rep, nil
}

// WorkerOptions configures a fleet worker process (see ServeWorker).
type WorkerOptions struct {
	// Coordinator is the coordinator's base URL (required), e.g.
	// "http://coordinator:7411".
	Coordinator string
	// ID names the worker in the coordinator's pool; empty derives it from
	// the advertise address.
	ID string
	// Advertise is the base URL the coordinator reaches this worker at;
	// empty derives "http://127.0.0.1<addr>" — fine for same-host fleets,
	// set it explicitly across machines.
	Advertise string
	// Interval is the heartbeat period (0 = a third of the coordinator's
	// TTL).
	Interval time.Duration

	// Cache is the worker's golden-run artifact cache; with one attached
	// the worker prefetches the campaign's golden artifact from the
	// coordinator by content address and skips its own golden run. Nil
	// disables (the worker recomputes — slower, still correct).
	Cache *Cache
	// SnapshotBudget bounds the worker's in-memory snapshot cache
	// (0 = default 512 MB, negative disables), as in ServeOptions.
	SnapshotBudget int64
	// Logf, when non-nil, receives worker lifecycle log lines.
	Logf func(format string, args ...any)
	// Client, when non-nil, replaces the worker's artifact-prefetch HTTP
	// client — the chaos harness's injection point for transfer faults.
	Client *http.Client
}

// maxArtifactBytes bounds one artifact transfer; the raw payload is
// checksum-validated before it enters the cache, so a truncated fetch is
// rejected, not served.
const maxArtifactBytes = 256 << 20

// artifactDigestHeader carries the sha256 of an artifact's raw bytes on
// the transfer, giving the receiving worker an end-to-end integrity
// check that is independent of the artifact's own embedded checksum.
const artifactDigestHeader = "X-Merlin-Artifact-Digest"

// prefetchArtifact pulls the campaign's golden artifact by content
// address into the worker's cache, best-effort: any failure just means
// the worker recomputes its golden run. Received bytes are verified
// against the coordinator's advertised sha256 before they may enter the
// cache — an in-transit bit flip is dropped here, not discovered later
// as a mysterious decode failure.
func prefetchArtifact(ctx context.Context, client *http.Client, cache *Cache, coordinator string, job fleet.ShardJob) {
	if cache == nil || job.ArtifactID == "" || cache.HasRaw(job.ArtifactID) {
		return
	}
	url := job.ArtifactURL
	if url == "" {
		url = "/artifacts/" + job.ArtifactID
	}
	if strings.HasPrefix(url, "/") {
		url = coordinator + url
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return
	}
	resp, err := client.Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxArtifactBytes))
	if err != nil {
		return
	}
	if want := resp.Header.Get(artifactDigestHeader); want != "" {
		sum := sha256.Sum256(raw)
		if got := hex.EncodeToString(sum[:]); got != want {
			return // corrupted in transit; recompute rather than cache damage
		}
	}
	cache.PutRaw(job.ArtifactID, raw)
}

// workerShardRun executes one shard job against the local pipeline: the
// worker re-derives Preprocess (served from its artifact cache when the
// prefetch landed) and Reduce deterministically from the request, then
// injects exactly the job's representatives, streaming each outcome back.
// client is the artifact-prefetch HTTP client; nil takes a 60s-bounded
// default (the chaos harness injects a fault-wrapped one).
func workerShardRun(cache *Cache, snapshots *SnapshotCache, coordinator string, client *http.Client) fleet.ShardRunFunc {
	if client == nil {
		client = &http.Client{Timeout: 60 * time.Second}
	}
	return func(ctx context.Context, job fleet.ShardJob, emit func(fleet.Outcome)) error {
		var req CampaignRequest
		if err := json.Unmarshal(job.Request, &req); err != nil {
			return fmt.Errorf("merlin: bad shard request: %w", err)
		}
		if len(req.Structures) > 0 {
			return fmt.Errorf("merlin: batch campaigns are not sharded across workers")
		}
		prefetchArtifact(ctx, client, cache, coordinator, job)
		opts, err := requestOptions(req, cache)
		if err != nil {
			return err
		}
		if snapshots != nil {
			opts = append(opts, WithSnapshotCache(snapshots))
		}
		s, err := Start(ctx, req.Workload, opts...)
		if err != nil {
			return err
		}
		if err := s.Preprocess(ctx); err != nil {
			return err
		}
		if _, err := s.Reduce(); err != nil {
			return err
		}
		return s.Artifacts().injectSubset(ctx, job.Reps, func(rep int, f fault.Fault, o campaign.Outcome) {
			emit(fleet.Outcome{Rep: rep, Fault: f.String(), Outcome: o.String()})
		})
	}
}

// ServeWorker runs a fleet worker on addr until ctx is cancelled: it
// joins the coordinator (retrying until it answers), heartbeats, and
// serves shard jobs over HTTP. A coordinator restart is absorbed
// transparently — heartbeats auto-register against the fresh pool. The
// worker's listener carries the same header/idle timeouts and drain
// deadline as the coordinator's.
func ServeWorker(ctx context.Context, addr string, opt WorkerOptions) error {
	if opt.Coordinator == "" {
		return fmt.Errorf("merlin: ServeWorker requires a coordinator URL")
	}
	coordinator := strings.TrimSuffix(opt.Coordinator, "/")
	advertise := strings.TrimSuffix(opt.Advertise, "/")
	if advertise == "" {
		if strings.HasPrefix(addr, ":") {
			advertise = "http://127.0.0.1" + addr
		} else {
			advertise = "http://" + addr
		}
	}
	id := opt.ID
	if id == "" {
		id = "worker-" + strings.TrimPrefix(strings.TrimPrefix(advertise, "http://"), "https://")
	}
	var snapshots *SnapshotCache
	if opt.SnapshotBudget >= 0 {
		snapshots = NewSnapshotCache(opt.SnapshotBudget)
	}
	agent := &fleet.Agent{
		ID:          id,
		Coordinator: coordinator,
		Advertise:   advertise,
		Interval:    opt.Interval,
		Logf:        opt.Logf,
		Run:         workerShardRun(opt.Cache, snapshots, coordinator, opt.Client),
	}

	mux := http.NewServeMux()
	mux.Handle("/fleet/", agent.Handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"ok":true,"worker":%q,"coordinator":%q}`+"\n", id, coordinator)
	})
	hs := &http.Server{
		Addr:              addr,
		Handler:           mux,
		ReadHeaderTimeout: readHeaderTimeout,
		IdleTimeout:       idleTimeout,
	}
	errc := make(chan error, 2)
	go func() { errc <- hs.ListenAndServe() }()
	go func() { errc <- agent.Start(ctx) }()
	select {
	case err := <-errc:
		if ctx.Err() == nil { // listener died or the join never succeeded
			hs.Close()
			return err
		}
	case <-ctx.Done():
	}
	//lint:allow ctxflow002 shutdown drain: the caller's ctx is already done, this bounds the drain
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	return hs.Shutdown(shutdownCtx)
}
