package merlin

// This file is the chaos certification harness behind `merlin chaos`: an
// in-process coordinator+worker fleet subjected to seeded fault
// schedules — dropped and stalled shard streams, crashing and straggling
// workers, corrupted artifact transfers, torn registry writes — with
// MeRLiN's own determinism as the oracle. Every schedule here is
// sub-lethal by construction: the hardened fleet must absorb it and
// produce a merged report bit-identical (timing counters aside) to a
// chaos-free run of the same request. Lethal schedules (Byzantine
// mismatched outcomes, poison shards) are exercised by the test suite,
// which asserts they fail loudly with their named errors.
//
// Chaos is reproducible in distribution, not in placement: a seed fixes
// every fault draw, but goroutine interleaving decides which shard a
// given draw lands on. Re-running a seed replays the same fault mix and
// intensities, and the oracle must hold either way.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"merlin/internal/chaos"
	"merlin/internal/fleet"
	"merlin/internal/store"
)

// chaosCampaignBody is the fixed campaign every scenario runs: small
// enough to finish in ~a second locally, rich enough to shard across
// workers and exercise the artifact transfer.
const chaosCampaignBody = `{"workload":"sha","structure":"RF","faults":300,"seed":9,"strategy":"forked"}`

// chaosKinds are the scenario schedules, cycled over the scenario index.
var chaosKinds = []string{
	"worker-stall",
	"mid-stream-crash",
	"corrupt-artifact",
	"torn-registry",
	"http-5xx",
	"duplicate-outcomes",
	"straggler",
	"mixed",
}

// ChaosOptions configures RunChaos.
type ChaosOptions struct {
	// Seed fixes every fault draw; scenario i derives its own independent
	// stream from (Seed, i).
	Seed uint64
	// Scenarios is how many seeded schedules to run (0 = 25), cycling
	// through the schedule kinds.
	Scenarios int
	// Workers is the fleet size per scenario (0 = 2).
	Workers int
	// Logf, when non-nil, receives one line per scenario.
	Logf func(format string, args ...any)
}

// ChaosResult summarizes a chaos certification run.
type ChaosResult struct {
	Scenarios int            `json:"scenarios"`
	Workers   int            `json:"workers"`
	Requeues  int            `json:"requeues"`
	Faults    int            `json:"faults"` // transport/fs faults injected
	Kinds     map[string]int `json:"kinds"`
	CleanWall time.Duration  `json:"clean_wall"`
	ChaosMean time.Duration  `json:"chaos_mean"`
	SuiteWall time.Duration  `json:"suite_wall"`
}

// chaosSchedule is one scenario's fault configuration across the three
// injection points: the coordinator's shard-stream client, each worker's
// behavior and artifact-fetch client, and the registry filesystem.
type chaosSchedule struct {
	kind     string
	behavior *chaos.Behavior
	fleet    []chaos.Faults // coordinator → worker shard streams
	artifact []chaos.Faults // worker → coordinator artifact fetches
	fs       *chaos.FSFaults
	stall    time.Duration // dispatcher watchdog override (0 = default)
}

// chaosScheduleFor builds the schedule for one scenario kind, drawing
// all its future decisions from r.
func chaosScheduleFor(kind string, r *chaos.Rand) chaosSchedule {
	s := chaosSchedule{kind: kind}
	switch kind {
	case "worker-stall":
		// Half the shards stall mid-stream while the worker keeps
		// heartbeating; only the dispatcher's progress watchdog (tightened
		// here so the run stays fast) gets the reps back.
		s.behavior = &chaos.Behavior{R: r, Stall: 0.5, StallFor: 10 * time.Second}
		s.stall = 1500 * time.Millisecond
	case "mid-stream-crash":
		s.behavior = &chaos.Behavior{R: r, Crash: 0.6}
	case "corrupt-artifact":
		// Bit flips on the artifact transfer: the digest check must drop
		// them and the worker falls back to recomputing its golden run.
		s.artifact = []chaos.Faults{{PathPrefix: "/artifacts/", Corrupt: 0.7}}
	case "torn-registry":
		// Checkpoint writes tear or rot at rest; the registry's read-side
		// checksum must quarantine, never wedge or corrupt a resume.
		s.fs = &chaos.FSFaults{TornWrite: 0.25, BitFlip: 0.25}
	case "http-5xx":
		s.fleet = []chaos.Faults{{PathPrefix: "/fleet/run", Drop: 0.25, HTTP500: 0.25}}
	case "duplicate-outcomes":
		s.behavior = &chaos.Behavior{R: r, Duplicate: 0.5}
	case "straggler":
		s.behavior = &chaos.Behavior{R: r, Straggle: 1, MaxLag: 20 * time.Millisecond}
	case "mixed":
		s.behavior = &chaos.Behavior{R: r, Crash: 0.25, Stall: 0.2, StallFor: 10 * time.Second,
			Duplicate: 0.3, Straggle: 0.5, MaxLag: 10 * time.Millisecond}
		s.fleet = []chaos.Faults{{PathPrefix: "/fleet/run", Drop: 0.15, HTTP500: 0.15}}
		s.artifact = []chaos.Faults{{PathPrefix: "/artifacts/", Corrupt: 0.3}}
		s.stall = 1500 * time.Millisecond
	}
	return s
}

// normalizeChaosReport strips the timing and locality counters that
// legitimately differ between runs; everything left must be bit-identical
// by determinism. Mirrors the fleet tests' normalization.
func normalizeChaosReport(r *Report) Report {
	n := *r
	n.Wall, n.Serial, n.CloneTime = 0, 0, 0
	n.Clones, n.SimCycles = 0, 0
	n.CyclesPerSec = 0
	n.SnapshotHit, n.CacheHit = false, false
	return n
}

// RunChaos runs the chaos certification suite: one clean fleet run to
// fix the reference report (and warm the shared artifact cache), then
// opt.Scenarios seeded chaos schedules, each of which must complete and
// match the reference bit-identically. The first scenario that fails —
// campaign error or report divergence — aborts the suite with a
// diagnostic naming the scenario index, kind and seed, which is all a
// reproduction needs.
func RunChaos(ctx context.Context, opt ChaosOptions) (*ChaosResult, error) {
	if opt.Scenarios <= 0 {
		opt.Scenarios = 25
	}
	if opt.Workers <= 0 {
		opt.Workers = 2
	}
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}

	root, err := os.MkdirTemp("", "merlin-chaos-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(root)
	cache, err := OpenCache(filepath.Join(root, "coordinator-cache"))
	if err != nil {
		return nil, err
	}

	suiteStart := time.Now()

	// Clean reference: the same fleet topology with no chaos. Its
	// normalized report is the oracle every chaos run is held to, and its
	// golden run warms the shared coordinator cache.
	cleanStart := time.Now()
	ref, err := runChaosScenario(ctx, cache, root, -1, chaosSchedule{kind: "clean"}, nil, opt.Workers, nil)
	if err != nil {
		return nil, fmt.Errorf("merlin: chaos reference run: %w", err)
	}
	cleanWall := time.Since(cleanStart)
	logf("chaos: clean reference run in %v (%d workers)", cleanWall.Round(time.Millisecond), opt.Workers)

	res := &ChaosResult{
		Scenarios: opt.Scenarios,
		Workers:   opt.Workers,
		Kinds:     make(map[string]int),
		CleanWall: cleanWall,
	}
	var chaosTotal time.Duration
	for i := 0; i < opt.Scenarios; i++ {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		kind := chaosKinds[i%len(chaosKinds)]
		r := chaos.NewRand(chaos.Derive(opt.Seed, i))
		sched := chaosScheduleFor(kind, r)
		scStart := time.Now()
		sc, err := runChaosScenario(ctx, cache, root, i, sched, r, opt.Workers, ref.reportJSON)
		if err != nil {
			return nil, fmt.Errorf("merlin: chaos scenario %d/%d (%s, seed %d): %w",
				i+1, opt.Scenarios, kind, opt.Seed, err)
		}
		wall := time.Since(scStart)
		chaosTotal += wall
		res.Kinds[kind]++
		res.Requeues += sc.requeues
		res.Faults += sc.faults
		logf("chaos: scenario %2d/%d %-18s ok in %6v (faults=%d requeues=%d)",
			i+1, opt.Scenarios, kind, wall.Round(time.Millisecond), sc.faults, sc.requeues)
	}
	res.ChaosMean = chaosTotal / time.Duration(opt.Scenarios)
	res.SuiteWall = time.Since(suiteStart)
	return res, nil
}

// chaosScenarioResult is one scenario's observable summary.
type chaosScenarioResult struct {
	reportJSON []byte // normalized report bytes (the bit-identity oracle)
	requeues   int
	faults     int
}

// runChaosScenario stands up one coordinator + workers fleet under the
// given schedule, runs the fixed campaign through it, and checks the
// merged report against wantJSON (nil = reference run: just return the
// bytes). The whole fleet is torn down before returning.
func runChaosScenario(ctx context.Context, cache *Cache, root string, idx int, sched chaosSchedule, r *chaos.Rand, workers int, wantJSON []byte) (*chaosScenarioResult, error) {
	var faults atomic.Int64
	onFault := func(kind, path string) { faults.Add(1) }

	// A short fleet TTL keeps the scenario's recovery clocks fast: the
	// circuit-breaker cooldown is a multiple of it, and a quarantined
	// worker should be readmitted within the scenario, not minutes later.
	srvOpt := ServeOptions{Cache: cache, FleetTTL: 2 * time.Second, FleetStallTimeout: sched.stall}
	if sched.fleet != nil {
		srvOpt.FleetClient = &http.Client{
			Transport: &chaos.Transport{R: r, Rules: sched.fleet, OnFault: onFault},
		}
	}
	if sched.fs != nil {
		reg, err := store.OpenRegistryOn(
			&chaos.FS{R: r, Faults: *sched.fs, OnFault: onFault},
			filepath.Join(root, fmt.Sprintf("registry-%d", idx)))
		if err != nil {
			return nil, err
		}
		srvOpt.Registry = reg
	}
	srv, err := NewServer(srvOpt)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	coordURL := "http://" + ln.Addr().String()
	defer func() { hs.Close(); srv.Close() }()

	// Workers: each with its own fresh artifact cache (so the prefetch
	// path is exercised every scenario), chaos behavior wrapping the real
	// shard pipeline, and a chaos artifact-fetch client when scheduled.
	wctx, wcancel := context.WithCancel(ctx)
	defer wcancel()
	for w := 0; w < workers; w++ {
		wcache, err := OpenCache(filepath.Join(root, fmt.Sprintf("s%d-w%d", idx, w)))
		if err != nil {
			return nil, err
		}
		var artClient *http.Client
		if sched.artifact != nil {
			artClient = &http.Client{
				Timeout:   60 * time.Second,
				Transport: &chaos.Transport{R: r, Rules: sched.artifact, OnFault: onFault},
			}
		}
		run := workerShardRun(wcache, nil, coordURL, artClient)
		if sched.behavior != nil {
			run = sched.behavior.Wrap(run)
		}
		wln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		agent := &fleet.Agent{
			ID:          fmt.Sprintf("chaos-w%d", w),
			Coordinator: coordURL,
			Advertise:   "http://" + wln.Addr().String(),
			Interval:    300 * time.Millisecond,
			Run:         run,
		}
		mux := http.NewServeMux()
		mux.Handle("/fleet/", agent.Handler())
		ws := &http.Server{Handler: mux}
		go ws.Serve(wln)
		go agent.Start(wctx)
		defer ws.Close()
	}
	if err := chaosAwaitWorkers(ctx, coordURL, workers); err != nil {
		return nil, err
	}

	id, err := chaosSubmit(ctx, coordURL)
	if err != nil {
		return nil, err
	}
	rep, err := chaosAwait(ctx, coordURL, id)
	if err != nil {
		return nil, err
	}
	norm := normalizeChaosReport(rep)
	gotJSON, err := json.Marshal(norm)
	if err != nil {
		return nil, err
	}
	if wantJSON != nil && string(gotJSON) != string(wantJSON) {
		return nil, fmt.Errorf("merged report diverged from the clean run under sub-lethal chaos:\n got %s\nwant %s",
			gotJSON, wantJSON)
	}
	requeues, err := chaosCountRequeues(ctx, coordURL, id)
	if err != nil {
		return nil, err
	}
	return &chaosScenarioResult{
		reportJSON: gotJSON,
		requeues:   requeues,
		faults:     int(faults.Load()),
	}, nil
}

// chaosAwaitWorkers polls the coordinator's fleet listing until the
// expected worker count has joined.
func chaosAwaitWorkers(ctx context.Context, base string, want int) error {
	if want == 0 {
		return nil
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		resp, err := http.Get(base + "/fleet/workers")
		if err == nil {
			var list struct {
				Workers []fleet.WorkerInfo `json:"workers"`
			}
			err := json.NewDecoder(resp.Body).Decode(&list)
			resp.Body.Close()
			if err == nil && len(list.Workers) >= want {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("only some of the %d workers joined within 15s", want)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// chaosSubmit posts the fixed chaos campaign and returns its id.
func chaosSubmit(ctx context.Context, base string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		base+"/campaigns", strings.NewReader(chaosCampaignBody))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var out struct {
		ID    string `json:"id"`
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusAccepted || out.ID == "" {
		return "", fmt.Errorf("submit: status %d: %s", resp.StatusCode, out.Error)
	}
	return out.ID, nil
}

// chaosAwait polls the campaign until it terminates. A campaign that
// fails (or never finishes) under a sub-lethal schedule is the
// certification failure this harness exists to catch.
func chaosAwait(ctx context.Context, base, id string) (*Report, error) {
	deadline := time.Now().Add(180 * time.Second)
	for {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		resp, err := http.Get(base + "/campaigns/" + id)
		if err != nil {
			return nil, err
		}
		var st struct {
			Status string          `json:"status"`
			Error  string          `json:"error"`
			Report json.RawMessage `json:"report"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		switch st.Status {
		case "done":
			rep := new(Report)
			if err := json.Unmarshal(st.Report, rep); err != nil {
				return nil, fmt.Errorf("decoding report: %w", err)
			}
			return rep, nil
		case "failed", "cancelled":
			return nil, fmt.Errorf("campaign %s under a sub-lethal schedule: %s", st.Status, st.Error)
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("campaign still %q after 180s: the fleet is wedged", st.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// chaosCountRequeues drains the campaign's event stream and counts the
// requeue events — the visible trace of the recovery machinery working.
func chaosCountRequeues(ctx context.Context, base, id string) (int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		base+"/campaigns/"+id+"/events", nil)
	if err != nil {
		return 0, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	n := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		var ev CampaignEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue
		}
		if ev.Type == "requeue" {
			n++
		}
	}
	if err := sc.Err(); err != nil && err != io.EOF {
		return n, err
	}
	return n, nil
}
