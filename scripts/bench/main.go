// Command bench runs the repository's key performance benchmarks with a
// fixed -benchtime and records the results as machine-readable trajectory
// files: the clone-cost / scheduler-throughput suite (BENCH_PR4.json by
// default), the batch-vs-3x-sequential wall-clock comparison
// (BENCH_PR5.json by default), the two-worker-fleet-vs-local wall-clock
// comparison (BENCH_PR6.json by default), the lockstep conformance
// suite wall-clock (BENCH_PR7.json by default), the merlinvet
// static-analysis wall-clock over the full module (BENCH_PR8.json by
// default), the fleet chaos certification suite (BENCH_PR9.json by
// default) and the guest static-dataflow analyze/prune pass
// (BENCH_PR10.json by default), so regressions in any of them are
// visible across PRs.
//
// Usage:
//
//	go run ./scripts/bench                     # full run, writes BENCH_PR4/.../PR8.json
//	go run ./scripts/bench -benchtime 1x -out /tmp/b.json -batch-out /tmp/b5.json -fleet-out /tmp/b6.json -conformance-out /tmp/b7.json   # CI smoke
//
// If an output file already exists, its "baseline" object is preserved
// verbatim: record the pre-change numbers once, then re-run the tool after
// every optimization to refresh "current" while keeping the comparison
// anchor. Derived speedups (baseline/current) are recomputed on every run.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// metrics is one benchmark's parsed result: ns/op plus every custom
// `-benchmem`/ReportMetric unit keyed by its name.
type metrics map[string]float64

type benchFile struct {
	PR                int                `json:"pr"`
	Generated         string             `json:"generated"`
	Benchtime         string             `json:"benchtime"`
	Host              map[string]any     `json:"host"`
	Baseline          map[string]metrics `json:"baseline,omitempty"`
	Current           map[string]metrics `json:"current"`
	SpeedupVsBaseline map[string]float64 `json:"speedup_vs_baseline,omitempty"`
}

func main() {
	out := flag.String("out", "BENCH_PR4.json", "output JSON file")
	batchOut := flag.String("batch-out", "BENCH_PR5.json", "batch-vs-sequential comparison output (empty disables)")
	fleetOut := flag.String("fleet-out", "BENCH_PR6.json", "two-worker-fleet-vs-local comparison output (empty disables)")
	confOut := flag.String("conformance-out", "BENCH_PR7.json", "lockstep conformance-suite wall-clock output (empty disables)")
	vetOut := flag.String("merlinvet-out", "BENCH_PR8.json", "merlinvet full-module analysis wall-clock output (empty disables)")
	chaosOut := flag.String("chaos-out", "BENCH_PR9.json", "chaos certification suite wall-clock output (empty disables)")
	chaosScenarios := flag.Int("chaos-scenarios", 25, "scenario count for the chaos suite run")
	staticpruneOut := flag.String("staticprune-out", "BENCH_PR10.json", "guest static analyze/prune pass output (empty disables)")
	benchtime := flag.String("benchtime", "3x", "benchtime for the campaign-scale strategy benchmarks")
	microtime := flag.String("microtime", "200x", "benchtime for the clone/simulator microbenchmarks")
	flag.Parse()

	runs := []struct {
		pkg, pattern, benchtime string
	}{
		{".", "BenchmarkStrategy_(Replay|Checkpointed|Forked)$", *benchtime},
		{".", "BenchmarkStrategy_Speedup$", "1x"},
		{"./internal/cpu/", "BenchmarkClone$|BenchmarkClonePool$|BenchmarkCloneAfterSteps$|BenchmarkSimSpeed$", *microtime},
	}

	current := make(map[string]metrics)
	for _, r := range runs {
		if err := runBench(r.pkg, r.pattern, r.benchtime, current); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %s %s: %v\n", r.pkg, r.pattern, err)
			os.Exit(1)
		}
	}
	// Simulator throughput in cycles/s falls out of SimSpeed's two metrics.
	if m, ok := current["SimSpeed"]; ok && m["ns/op"] > 0 {
		m["cycles/s"] = m["cycles/run"] / (m["ns/op"] / 1e9)
	}

	if err := writeTrajectory(*out, 4, *benchtime, current, func(baseline map[string]metrics) map[string]float64 {
		return speedups(baseline, current)
	}); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}

	if *batchOut != "" {
		if err := writeBatchComparison(*batchOut, *benchtime); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
	}

	if *fleetOut != "" {
		if err := writeFleetComparison(*fleetOut, *benchtime); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
	}

	if *confOut != "" {
		if err := writeConformance(*confOut, *microtime); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
	}

	if *vetOut != "" {
		if err := writeMerlinvet(*vetOut); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
	}

	if *chaosOut != "" {
		if err := writeChaos(*chaosOut, *chaosScenarios); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
	}

	if *staticpruneOut != "" {
		if err := writeStaticPrune(*staticpruneOut); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
	}
}

// writeStaticPrune runs the guest static-dataflow pass (`merlin
// analyze`) over every built-in kernel plus 20 generated ones and
// records its parsed staticprune-summary line — programs analyzed,
// dynamic intervals cross-checked, statically prunable fraction,
// analysis wall-clock — as its own trajectory file. The cross-check
// must report zero violations: a disagreement fails the bench exactly
// as it fails CI, because the number being tracked is the cost of an
// oracle that is required to hold.
func writeStaticPrune(out string) error {
	args := []string{"run", "./cmd/merlin", "analyze", "-crosscheck", "-gen", "20", "-seed", "1"}
	fmt.Fprintf(os.Stderr, "bench: go %s\n", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("analyze pass failed: %w\n%s", err, buf.String())
	}
	m := metrics{}
	var programs, intervals, violations, faults, pruned int
	var pct, analysisMS float64
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "staticprune-summary:") {
			continue
		}
		if _, err := fmt.Sscanf(line,
			"staticprune-summary: programs=%d intervals=%d violations=%d faults=%d pruned=%d pct=%f analysis_ms=%f result=PASS",
			&programs, &intervals, &violations, &faults, &pruned, &pct, &analysisMS); err != nil {
			return fmt.Errorf("unparseable staticprune-summary line %q: %w", line, err)
		}
		m["programs"] = float64(programs)
		m["intervals"] = float64(intervals)
		m["faults"] = float64(faults)
		m["pruned"] = float64(pruned)
		m["pruned-pct"] = pct
		m["analysis-ms"] = analysisMS
	}
	if len(m) == 0 {
		return fmt.Errorf("analyze run printed no staticprune-summary line:\n%s", buf.String())
	}
	results := map[string]metrics{"StaticPrune": m}
	return writeTrajectory(out, 10, "1x", results, func(baseline map[string]metrics) map[string]float64 {
		b, okB := baseline["StaticPrune"]
		c, okC := results["StaticPrune"]
		if !okB || !okC || b["analysis-ms"] <= 0 || c["analysis-ms"] <= 0 {
			return nil
		}
		return map[string]float64{"analysis_wall_x": b["analysis-ms"] / c["analysis-ms"]}
	})
}

// writeChaos runs the fleet chaos certification suite (`merlin chaos`)
// and records its parsed chaos-summary line — scenario count, requeues,
// injected faults, clean-vs-chaos wall overhead — as its own trajectory
// file. The suite must pass: a chaos failure fails the bench exactly as
// it fails CI, because the number being tracked is the cost of recovery
// machinery that is required to work.
func writeChaos(out string, scenarios int) error {
	args := []string{"run", "./cmd/merlin", "chaos", "-seed", "1", "-scenarios", strconv.Itoa(scenarios)}
	fmt.Fprintf(os.Stderr, "bench: go %s\n", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("chaos suite failed: %w\n%s", err, buf.String())
	}
	m := metrics{}
	var nScen, requeues, faults, cleanMS, meanMS, suiteMS int
	var overhead float64
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "chaos-summary:") {
			continue
		}
		if _, err := fmt.Sscanf(line,
			"chaos-summary: scenarios=%d requeues=%d faults=%d clean_ms=%d chaos_mean_ms=%d overhead_x=%f suite_ms=%d result=PASS",
			&nScen, &requeues, &faults, &cleanMS, &meanMS, &overhead, &suiteMS); err != nil {
			return fmt.Errorf("unparseable chaos-summary line %q: %w", line, err)
		}
		m["scenarios"] = float64(nScen)
		m["requeues"] = float64(requeues)
		m["faults"] = float64(faults)
		m["clean-ms"] = float64(cleanMS)
		m["chaos-mean-ms"] = float64(meanMS)
		m["overhead-x"] = overhead
		m["suite-ms"] = float64(suiteMS)
	}
	if len(m) == 0 {
		return fmt.Errorf("chaos run printed no chaos-summary line:\n%s", buf.String())
	}
	results := map[string]metrics{"ChaosSuite": m}
	return writeTrajectory(out, 9, "1x", results, func(baseline map[string]metrics) map[string]float64 {
		b, okB := baseline["ChaosSuite"]
		c, okC := results["ChaosSuite"]
		if !okB || !okC || b["suite-ms"] <= 0 || c["suite-ms"] <= 0 {
			return nil
		}
		return map[string]float64{"chaos_suite_wall_x": b["suite-ms"] / c["suite-ms"]}
	})
}

// writeMerlinvet times the static-analysis pass over the full module
// (build excluded, analysis only) and records it as its own trajectory
// file: merlinvet gates CI, so its cost is tracked like every other
// tool's. The run must come back clean — a finding fails the bench the
// same way it fails the build.
func writeMerlinvet(out string) error {
	tmp, err := os.MkdirTemp("", "merlinvet-bench")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	bin := tmp + "/merlinvet"
	build := exec.Command("go", "build", "-o", bin, "./cmd/merlinvet")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("build merlinvet: %w", err)
	}
	fmt.Fprintln(os.Stderr, "bench: merlinvet ./...")
	cmd := exec.Command(bin, "./...")
	var stderr bytes.Buffer
	cmd.Stdout = os.Stdout
	cmd.Stderr = &stderr
	start := time.Now()
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("merlinvet not clean: %w\n%s", err, stderr.String())
	}
	wall := time.Since(start)
	m := metrics{"wall-ms": float64(wall.Nanoseconds()) / 1e6}
	// The summary line carries the analysis surface; keep it with the
	// timing so cost scales are readable ("N packages in X ms").
	var pkgs, findings, suppressed, allowlisted int
	if _, err := fmt.Sscanf(strings.TrimSpace(stderr.String()),
		"merlinvet: %d packages, %d findings, %d suppressed by //lint:allow, %d allowlisted sites",
		&pkgs, &findings, &suppressed, &allowlisted); err == nil {
		m["packages"] = float64(pkgs)
		m["suppressed"] = float64(suppressed)
		m["allowlisted"] = float64(allowlisted)
	}
	results := map[string]metrics{"Merlinvet": m}
	return writeTrajectory(out, 8, "1x", results, func(baseline map[string]metrics) map[string]float64 {
		b, okB := baseline["Merlinvet"]
		c, okC := results["Merlinvet"]
		if !okB || !okC || b["wall-ms"] <= 0 || c["wall-ms"] <= 0 {
			return nil
		}
		return map[string]float64{"merlinvet_wall_x": b["wall-ms"] / c["wall-ms"]}
	})
}

// writeConformance runs the lockstep conformance-suite benchmark (every
// generated-kernel class through the differential oracle on the default
// core) and records its wall-clock as its own trajectory file, tracking
// what a CI-sized certification pass costs as the core and the kernel
// generator grow.
func writeConformance(out, benchtime string) error {
	results := make(map[string]metrics)
	if err := runBench("./internal/conformance/", "BenchmarkConformanceSuite$", benchtime, results); err != nil {
		return err
	}
	return writeTrajectory(out, 7, benchtime, results, func(baseline map[string]metrics) map[string]float64 {
		b, okB := baseline["ConformanceSuite"]
		c, okC := results["ConformanceSuite"]
		if !okB || !okC || b["wall-ms"] <= 0 || c["wall-ms"] <= 0 {
			return nil
		}
		return map[string]float64{"conformance_wall_x": b["wall-ms"] / c["wall-ms"]}
	})
}

// writeTrajectory assembles and writes one trajectory file: host info,
// the current results, the previously recorded baseline (preserved
// verbatim so the pre-optimization anchor survives refreshes), and the
// derived speedup ratios computed by speedup from that baseline.
func writeTrajectory(out string, pr int, benchtime string, current map[string]metrics,
	speedup func(baseline map[string]metrics) map[string]float64) error {
	f := benchFile{
		PR:        pr,
		Generated: time.Now().UTC().Format(time.RFC3339),
		Benchtime: benchtime,
		Host: map[string]any{
			"goos":   runtime.GOOS,
			"goarch": runtime.GOARCH,
			"cpus":   runtime.NumCPU(),
			"go":     runtime.Version(),
		},
		Current: current,
	}
	if old, err := os.ReadFile(out); err == nil {
		var prev benchFile
		if json.Unmarshal(old, &prev) == nil && prev.Baseline != nil {
			f.Baseline = prev.Baseline
		}
	}
	f.SpeedupVsBaseline = speedup(f.Baseline)

	enc, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(enc, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("bench: wrote %s (%d benchmarks)\n", out, len(current))
	return nil
}

// writeBatchComparison runs the batch-vs-3x-sequential benchmarks (one
// shared golden run for three structures versus three standalone
// campaigns) and records the wall-clock comparison as its own trajectory
// file. The headline ratio says how much wall-clock the shared golden
// run saves over running the structures as standalone campaigns.
func writeBatchComparison(out, benchtime string) error {
	results := make(map[string]metrics)
	if err := runBench(".", "BenchmarkBatch_(SharedGolden|Sequential3x)$", benchtime, results); err != nil {
		return err
	}
	return writeTrajectory(out, 5, benchtime, results, func(map[string]metrics) map[string]float64 {
		batch, okB := results["Batch_SharedGolden"]
		seq, okS := results["Batch_Sequential3x"]
		if !okB || !okS || batch["wall-ms"] <= 0 || seq["wall-ms"] <= 0 {
			return nil
		}
		return map[string]float64{"batch_vs_sequential_x": seq["wall-ms"] / batch["wall-ms"]}
	})
}

// writeFleetComparison runs the two-worker-fleet-vs-local benchmarks
// (the same replay campaign on a plain daemon versus sharded across two
// fleet workers, per-node parallelism pinned to one thread) and records
// the wall-clock comparison as its own trajectory file. The headline
// ratio says what sharding buys at fixed per-node compute; on a
// single-core host the two in-process "nodes" share that core, so the
// ratio degenerates to pure coordination overhead — read it on multicore
// hardware for the scale-out signal.
func writeFleetComparison(out, benchtime string) error {
	results := make(map[string]metrics)
	if err := runBench(".", "BenchmarkFleet_(Local|TwoWorkers)$", benchtime, results); err != nil {
		return err
	}
	return writeTrajectory(out, 6, benchtime, results, func(map[string]metrics) map[string]float64 {
		local, okL := results["Fleet_Local"]
		two, okT := results["Fleet_TwoWorkers"]
		if !okL || !okT || local["wall-ms"] <= 0 || two["wall-ms"] <= 0 {
			return nil
		}
		return map[string]float64{"fleet_vs_local_x": local["wall-ms"] / two["wall-ms"]}
	})
}

// runBench executes one `go test -bench` invocation and folds its parsed
// results into dst.
func runBench(pkg, pattern, benchtime string, dst map[string]metrics) error {
	args := []string{"test", "-run", "^$", "-bench", pattern, "-benchtime", benchtime, "-benchmem", pkg}
	fmt.Fprintf(os.Stderr, "bench: go %s\n", strings.Join(args, " "))
	cmd := exec.Command("go", args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("%w\n%s", err, buf.String())
	}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		name, m, ok := parseBenchLine(sc.Text())
		if ok {
			dst[name] = m
		}
	}
	return sc.Err()
}

// parseBenchLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkClone-8   100   55447 ns/op   183072 B/op   27 allocs/op
//
// returning the trimmed name ("Clone") and its value/unit pairs.
func parseBenchLine(line string) (string, metrics, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", nil, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 { // strip -GOMAXPROCS suffix
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	// fields[1] is the iteration count; value/unit pairs follow it.
	m := make(metrics)
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		m[fields[i+1]] = v
	}
	if len(m) == 0 {
		return "", nil, false
	}
	return name, m, true
}

// speedups derives baseline/current ratios for the headline metrics (so
// >1 means the current tree is faster / lighter than the baseline).
func speedups(baseline, current map[string]metrics) map[string]float64 {
	if baseline == nil {
		return nil
	}
	out := make(map[string]float64)
	ratio := func(key, bench, unit string) {
		b, okB := baseline[bench]
		c, okC := current[bench]
		if okB && okC && b[unit] > 0 && c[unit] > 0 {
			out[key] = b[unit] / c[unit]
		}
	}
	ratio("forked_wall_x", "Strategy_Forked", "wall-ms")
	ratio("checkpointed_wall_x", "Strategy_Checkpointed", "wall-ms")
	ratio("replay_wall_x", "Strategy_Replay", "wall-ms")
	ratio("forked_bytes_x", "Strategy_Forked", "B/op")
	ratio("clone_ns_x", "Clone", "ns/op")
	ratio("clone_bytes_x", "Clone", "B/op")
	ratio("clone_allocs_x", "Clone", "allocs/op")
	// The schedulers take their clones through the shell pool, so the
	// per-clone cost they actually pay is baseline Clone vs ClonePool.
	cross := func(key, bBench, cBench, unit string) {
		b, okB := baseline[bBench]
		c, okC := current[cBench]
		if okB && okC && b[unit] > 0 && c[unit] > 0 {
			out[key] = b[unit] / c[unit]
		}
	}
	cross("pooled_clone_ns_x", "Clone", "ClonePool", "ns/op")
	cross("pooled_clone_bytes_x", "Clone", "ClonePool", "B/op")
	cross("pooled_clone_allocs_x", "Clone", "ClonePool", "allocs/op")
	if len(out) == 0 {
		return nil
	}
	return out
}
