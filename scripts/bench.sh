#!/usr/bin/env sh
# Runs the repository's key performance benchmarks with a fixed -benchtime
# and refreshes the trajectory files (BENCH_PR4.json for clone/scheduler
# cost, BENCH_PR5.json for the batch-vs-3x-sequential comparison,
# BENCH_PR6.json for the two-worker-fleet-vs-local comparison,
# BENCH_PR7.json for the conformance-suite wall-clock, BENCH_PR8.json for
# the merlinvet full-module analysis wall-clock, BENCH_PR9.json for the
# fleet chaos certification suite, BENCH_PR10.json for the guest
# static-dataflow analyze/prune pass), preserving their
# recorded pre-optimization baselines. Pass flags through to the Go
# tool, e.g.:
#
#   scripts/bench.sh                       # full run
#   scripts/bench.sh -benchtime 1x -microtime 10x -out /tmp/b.json -batch-out /tmp/b5.json -fleet-out /tmp/b6.json   # CI smoke
set -eu
cd "$(dirname "$0")/.."
exec go run ./scripts/bench "$@"
