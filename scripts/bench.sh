#!/usr/bin/env sh
# Runs the repository's key performance benchmarks with a fixed -benchtime
# and refreshes the BENCH_PR4.json trajectory file (preserving its recorded
# pre-optimization baseline). Pass flags through to the Go tool, e.g.:
#
#   scripts/bench.sh                       # full run
#   scripts/bench.sh -benchtime 1x -microtime 10x -out /tmp/b.json   # CI smoke
set -eu
cd "$(dirname "$0")/.."
exec go run ./scripts/bench "$@"
