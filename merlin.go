// Package merlin is a Go reproduction of "MeRLiN: Exploiting Dynamic
// Instruction Behavior for Fast and Accurate Microarchitecture Level
// Reliability Assessment" (Kaliorakis, Gizopoulos, Canal, Gonzalez —
// ISCA 2017).
//
// It bundles a deterministic out-of-order core simulator with bit-accurate
// physical register file, store queue and L1D data arrays (the substrate
// the paper obtains from Gem5 + GeFIN), a statistical fault-injection
// campaign engine, and the MeRLiN methodology itself: ACE-like vulnerable
// interval pruning followed by (RIP, uPC, byte) fault grouping, so that
// only a handful of representatives per group are injected.
//
// The three phases of the paper's Fig 2 map to Session.Preprocess (golden
// run + ACE-like analysis + initial fault list), Session.Reduce (two-step
// grouping) and Session.Inject (representative injection + extrapolated
// classification). Session.Run chains all three.
//
// The primary API is the Session: merlin.Start(ctx, workload, opts...)
// validates a campaign built from functional options and returns a
// Session whose phase methods are context-aware and report typed Progress
// events. The flat Config struct and the package-level Run, RunBaseline
// and Preprocess entry points are the deprecated v1 surface, kept as thin
// wrappers over the same pipeline.
package merlin

import (
	"context"
	"fmt"
	"sort"
	"time"

	"merlin/internal/campaign"
	"merlin/internal/cpu"
	"merlin/internal/fault"
	"merlin/internal/guestflow"
	"merlin/internal/lifetime"
	reduction "merlin/internal/merlin"
	"merlin/internal/sampling"
	"merlin/internal/store"
	"merlin/internal/workloads"
)

// Structure identifies an injection target.
type Structure = lifetime.StructureID

// The structures evaluated in the paper.
const (
	RF  = lifetime.StructRF
	SQ  = lifetime.StructSQ
	L1D = lifetime.StructL1D
	// NumStructures bounds the Structure space (valid targets are < it).
	NumStructures = lifetime.NumStructures
)

// AllStructures returns the paper's three injection targets in their
// canonical order (RF, SQ, L1D): the default target list of StartBatch.
func AllStructures() []Structure { return []Structure{RF, SQ, L1D} }

// Re-exported result types.
type (
	// Outcome is a fault-effect class (paper Table 2).
	Outcome = campaign.Outcome
	// Dist is a distribution over fault-effect classes.
	Dist = campaign.Dist
	// Fault is a single-bit transient fault.
	Fault = fault.Fault
	// Reduction is the output of MeRLiN's fault-list reduction.
	Reduction = reduction.Reduction
	// HomogeneityReport quantifies within-group effect uniformity.
	HomogeneityReport = reduction.HomogeneityReport
	// Strategy selects how injection runs reproduce the pre-fault
	// execution prefix (bit-identical outcomes, different wall-clock).
	Strategy = campaign.Strategy
)

// Injection strategies, fastest last.
const (
	// StrategyReplay re-executes every injection from reset.
	StrategyReplay = campaign.Replay
	// StrategyCheckpointed replays from the nearest of k frozen snapshots.
	StrategyCheckpointed = campaign.Checkpointed
	// StrategyForked forks per-fault clones off a single golden sweep.
	StrategyForked = campaign.Forked
)

// ParseStrategy maps a flag value ("replay", "checkpointed", "forked",
// case-insensitively) to a Strategy.
func ParseStrategy(name string) (Strategy, error) { return campaign.ParseStrategy(name) }

// ParseStructure maps a structure name ("RF", "SQ", "L1D",
// case-insensitively) to a Structure. It is the single parser behind the
// CLI flags, daemon requests and experiment filters.
func ParseStructure(name string) (Structure, error) { return lifetime.ParseStructure(name) }

// ParseOutcome maps a fault-effect class name ("Masked", "SDC", ...,
// case-insensitively) to an Outcome.
func ParseOutcome(name string) (Outcome, error) { return campaign.ParseOutcome(name) }

// Fault-effect classes (paper Table 2, plus Unknown for truncated runs
// and Cancelled for faults a cancelled campaign never injected).
const (
	Masked    = campaign.Masked
	SDC       = campaign.SDC
	DUE       = campaign.DUE
	Timeout   = campaign.Timeout
	Crash     = campaign.Crash
	Assert    = campaign.Assert
	Unknown   = campaign.Unknown
	Cancelled = campaign.Cancelled
)

// RawFITPerBit is the raw failure rate the paper assumes (§4.4.3.3).
const RawFITPerBit = 0.01

// Cache is a golden-run artifact cache: an on-disk, content-addressed
// repository of Preprocess products (golden result, lifetime trace,
// ACE-like vulnerable intervals, checkpoint schedule) keyed by (workload,
// core config, cycle budget, structure). Campaigns that share those —
// regardless of fault count, seed, strategy, or grouping knobs — reuse one
// golden run across processes. Safe for concurrent use; share one Cache
// across all campaigns of a process (the daemon does).
type Cache = store.Store

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats = store.Stats

// OpenCache creates (if needed) and opens a golden-run artifact cache
// rooted at dir.
func OpenCache(dir string) (*Cache, error) { return store.Open(dir) }

// SnapshotCache is an in-memory, byte-budgeted LRU of checkpoint ladders
// (the frozen machine snapshots the checkpointed and forked schedulers
// clone injection runs from). Campaigns sharing one SnapshotCache and
// agreeing on (workload, CPU config, golden cycles) reuse one immutable
// ladder instead of each replaying the golden run to rebuild it — the
// in-memory complement of the on-disk artifact Cache, which cannot hold
// machine snapshots because they are not serializable. Safe for
// concurrent use; the daemon shares one across all campaigns.
type SnapshotCache = store.SnapshotCache

// SnapshotCacheStats is a point-in-time snapshot of snapshot-cache
// effectiveness.
type SnapshotCacheStats = store.SnapshotStats

// NewSnapshotCache returns a snapshot cache bounded to budgetBytes of
// (conservatively estimated) resident snapshot memory; <= 0 means the
// default budget (512 MB).
func NewSnapshotCache(budgetBytes int64) *SnapshotCache {
	return store.NewSnapshotCache(budgetBytes)
}

// Config describes one MeRLiN campaign.
//
// Deprecated: Config is the v1 knob-struct surface. New code should build
// a Session with Start and functional options (WithStructure, WithFaults,
// WithStrategy, ...), which validate at Start time and support
// cancellation and progress streaming. Config remains fully functional
// for the deprecated Run/RunBaseline/Preprocess wrappers.
type Config struct {
	// Workload names a registered benchmark (see Workloads).
	Workload string
	// CPU is the core configuration; zero value means the paper's
	// baseline (Table 1).
	CPU cpu.Config
	// Structure is the injection target.
	Structure Structure

	// Faults sets the initial statistical fault list size directly.
	// When 0, the size is derived from Confidence and ErrorMargin over
	// the structure's (bits x cycles) population, per Leveugle et al.
	Faults      int
	Confidence  float64 // default 0.998
	ErrorMargin float64 // default 0.0063 (the paper's 60K-fault setup)

	// Seed drives fault sampling (and nothing else; the simulator is
	// deterministic).
	Seed int64

	// RepsPerGroup >1 injects extra representatives per final group
	// (accuracy/cost ablation); 0 or 1 reproduces the paper.
	RepsPerGroup int
	// DisableByteGrouping turns off step 2 of the grouping algorithm
	// (ablation).
	DisableByteGrouping bool

	// Workers bounds injection parallelism; 0 = GOMAXPROCS.
	Workers int

	// Strategy selects the injection scheduler: StrategyReplay (default),
	// StrategyCheckpointed, or StrategyForked. All three classify every
	// fault identically; they differ only in how much of the pre-fault
	// prefix is re-simulated.
	Strategy Strategy

	// StaticPrune enables the guestflow static pre-pruner: register-file
	// fault sites landing in statically must-dead windows (the governing
	// write's value is overwritten before any read on every path) are
	// classified masked before Reduce, skipping their dynamic interval
	// lookups. Every statically pruned fault is cross-verified against the
	// dynamic analysis — a disagreement aborts the campaign loudly — so
	// reports stay bit-identical to unpruned runs. Structures other than
	// RF ignore the option (their entries hold no architectural registers).
	StaticPrune bool
	// Checkpoints > 0 sets the snapshot count of StrategyCheckpointed
	// (and, for backward compatibility, selects that strategy when
	// Strategy is left at the default).
	Checkpoints int

	// Cache, when non-nil, short-circuits Preprocess: on a hit the golden
	// run and ACE-like analysis are loaded instead of simulated (the
	// campaign's outcomes are bit-identical either way); on a miss they
	// run once and are stored for every later campaign on the same
	// (Workload, CPU) pair. Open one with OpenCache.
	Cache *Cache

	// Snapshots, when non-nil, shares checkpoint ladders across campaigns:
	// the checkpointed and forked schedulers serve their frozen machine
	// snapshots from it instead of rebuilding them per campaign. Create
	// one with NewSnapshotCache; the daemon wires a process-wide instance.
	Snapshots *SnapshotCache
}

// fillDefaults replaces zero knobs with their documented defaults. It is
// shared by the v1 and v2 paths and deliberately does NOT touch the
// strategy: under the Session API the checkpoints/strategy implication is
// resolved explicitly by Start.
func (c Config) fillDefaults() Config {
	if c.CPU.PhysRegs == 0 {
		c.CPU = cpu.DefaultConfig()
	}
	if c.Confidence == 0 {
		c.Confidence = sampling.Baseline.Confidence
	}
	if c.ErrorMargin == 0 {
		c.ErrorMargin = sampling.Baseline.ErrorMargin
	}
	if c.RepsPerGroup == 0 {
		c.RepsPerGroup = 1
	}
	return c
}

// withDefaults is the v1 defaulting rule: fillDefaults plus the historic
// behaviour of Checkpoints > 0 silently selecting the checkpointed
// strategy when Strategy was left at the default. The legacy wrappers
// keep it so existing Config callers see unchanged semantics; Start does
// not use it.
func (c Config) withDefaults() Config {
	if c.Strategy == StrategyReplay && c.Checkpoints > 0 {
		c.Strategy = StrategyCheckpointed
	}
	return c.fillDefaults()
}

// validate rejects knob values the pipeline would otherwise silently
// misread (applied after withDefaults, so zeros have already been replaced
// by documented defaults and anything invalid left is a caller error).
// Campaign requests arriving over the daemon's HTTP API funnel through
// this same check.
func (c Config) validate() error {
	switch {
	case c.Structure >= lifetime.NumStructures:
		return fmt.Errorf("merlin: unknown structure %d", c.Structure)
	case c.Faults < 0:
		return fmt.Errorf("merlin: Faults is %d; want >= 0 (0 = derive from Confidence/ErrorMargin)", c.Faults)
	case c.Workers < 0:
		return fmt.Errorf("merlin: Workers is %d; want >= 0 (0 = all host cores)", c.Workers)
	case c.RepsPerGroup < 0:
		return fmt.Errorf("merlin: RepsPerGroup is %d; want >= 0 (0 = the paper's 1)", c.RepsPerGroup)
	case c.Checkpoints < 0:
		return fmt.Errorf("merlin: Checkpoints is %d; want >= 0", c.Checkpoints)
	case c.Confidence <= 0 || c.Confidence >= 1:
		return fmt.Errorf("merlin: Confidence %v outside (0, 1)", c.Confidence)
	case c.ErrorMargin <= 0 || c.ErrorMargin >= 1:
		return fmt.Errorf("merlin: ErrorMargin %v outside (0, 1)", c.ErrorMargin)
	}
	return nil
}

// Artifacts carries the intermediate products of the pipeline between
// phases, mirroring the repositories of the paper's Fig 2.
type Artifacts struct {
	// Config is the campaign configuration after defaults were applied.
	Config Config
	// Runner executes the injection runs of phase 3.
	Runner *campaign.Runner
	// Golden is the fault-free reference run (result + lifetime tracer).
	Golden *campaign.Golden
	// Analysis holds the structure's ACE-like vulnerable intervals.
	Analysis *lifetime.Analysis
	// Faults is the initial statistical fault list.
	Faults []fault.Fault
	// Red is the fault-list reduction; nil until Reduce runs.
	Red *reduction.Reduction

	// Premasked marks the faults the guestflow static pre-pruner proved
	// masked (nil unless Config.StaticPrune ran); StaticPruned is its
	// true-count, surfaced through Progress and the Report.
	Premasked    []bool
	StaticPruned int

	// CacheHit reports that Golden and Analysis were loaded from
	// Config.Cache instead of simulated: Preprocess skipped the golden
	// run entirely.
	CacheHit bool
	// CacheErr records a non-fatal failure to persist the artifacts on a
	// cache miss (the campaign itself is unaffected).
	CacheErr error
}

// Workloads lists the registered benchmark names for a suite ("mibench",
// "spec", or "" for all).
func Workloads(suite string) []string { return workloads.Names(suite) }

// Preprocess runs phase 1: the single fault-free profiling run that records
// the structure's vulnerable intervals, plus the creation of the initial
// statistical fault list.
//
// With Config.Cache set, the profiling run is served from the golden-run
// artifact cache when a previous campaign already profiled the same
// (workload, core config, structure): the golden run and analysis build
// are skipped and their products loaded instead, bit-identically. On a
// miss the products are stored after the run.
func Preprocess(cfg Config) (*Artifacts, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	arts, err := preprocessStructures(cfg, []Structure{cfg.Structure})
	if err != nil {
		return nil, err
	}
	return arts[0], nil
}

// preprocessStructures is the shared core of phase 1: one golden run (or
// one artifact-cache load) tracing every listed structure, yielding one
// *Artifacts per structure — all sharing the same Runner (and therefore
// clone pool and snapshot source) and the same Golden. A single-structure
// campaign passes its one target; a batch passes its whole list and pays
// for exactly one golden run.
//
// cfg must already have defaults applied and be validated; structures must
// be non-empty and duplicate-free (Start and StartBatch guarantee both).
func preprocessStructures(cfg Config, structures []Structure) ([]*Artifacts, error) {
	w, err := workloads.Get(cfg.Workload)
	if err != nil {
		return nil, err
	}
	runner := campaign.NewRunner(campaign.Target{Cfg: cfg.CPU, Prog: w.Program()})
	runner.Workers = cfg.Workers
	if cfg.Snapshots != nil {
		// Explicit nil check: assigning a typed nil pointer would make the
		// SnapshotSource interface non-nil and panic on use.
		runner.Snapshots = cfg.Snapshots
	}
	if err := runner.Validate(); err != nil {
		return nil, err
	}

	key := store.NewKey(cfg.Workload, cfg.CPU, runner.GoldenBudget, structures...)
	if cfg.Cache != nil {
		if art, ok := cfg.Cache.Get(key); ok {
			return rehydrateArtifacts(cfg, runner, structures, art)
		}
	}

	golden, err := runner.RunGolden(structures...)
	if err != nil {
		return nil, err
	}

	core := runner.NewCore()
	cycles := golden.Result.Cycles
	out := make([]*Artifacts, len(structures))
	traces := make([]store.StructureTrace, 0, len(structures))
	for i, s := range structures {
		entries := core.StructureEntries(s)
		entryBits := core.StructureEntryBits(s)
		analysis := lifetime.Build(golden.Tracer.Log(s), s, entries, entryBits/8, cycles)
		cfgS := cfg
		cfgS.Structure = s
		out[i] = &Artifacts{
			Config:   cfgS,
			Runner:   runner,
			Golden:   golden,
			Analysis: analysis,
			Faults:   sampleFaults(cfgS, entries, entryBits, cycles),
		}
		traces = append(traces, store.StructureTrace{
			Structure:  s,
			Entries:    entries,
			EntryBytes: entryBits / 8,
			Events:     golden.Tracer.Log(s).Events,
			Intervals:  analysis.Intervals,
		})
	}
	if cfg.Cache != nil {
		// Artifact traces are stored in canonical (ascending StructureID)
		// order, matching the key's canonical structure set.
		sort.Slice(traces, func(i, j int) bool { return traces[i].Structure < traces[j].Structure })
		cacheErr := cfg.Cache.Put(key, &store.Artifact{
			Workload:         cfg.Workload,
			Structures:       traces,
			Golden:           golden.Result,
			Branches:         golden.Tracer.Branches,
			CheckpointCycles: campaign.CheckpointSchedule(campaign.ForkSyncPoints, cycles),
		})
		for _, a := range out {
			a.CacheErr = cacheErr
		}
	}
	return out, nil
}

// rehydrateArtifacts rebuilds the per-structure Preprocess products from a
// cached artifact. The fault lists are regenerated rather than cached:
// sampling is deterministic in (structure geometry, cycles, seed) — all
// cached — and different campaigns over one artifact want different lists.
func rehydrateArtifacts(cfg Config, runner *campaign.Runner, structures []Structure, art *store.Artifact) ([]*Artifacts, error) {
	var logs [lifetime.NumStructures]*lifetime.Log
	for _, s := range structures {
		tr, ok := art.Trace(s)
		if !ok {
			// Get verified the structure set, so this is unreachable; fail
			// loudly rather than serving a half-rehydrated campaign.
			return nil, fmt.Errorf("merlin: cached artifact is missing the %v trace", s)
		}
		logs[s] = &lifetime.Log{Events: tr.Events}
	}
	golden := &campaign.Golden{
		Result: art.Golden,
		Tracer: lifetime.RehydrateTracerLogs(logs, art.Branches, art.Golden.Cycles),
	}
	out := make([]*Artifacts, len(structures))
	for i, s := range structures {
		tr, _ := art.Trace(s)
		analysis, _ := art.Analysis(s)
		cfgS := cfg
		cfgS.Structure = s
		out[i] = &Artifacts{
			Config:   cfgS,
			Runner:   runner,
			Golden:   golden,
			Analysis: analysis,
			Faults:   sampleFaults(cfgS, tr.Entries, tr.EntryBytes*8, art.Golden.Cycles),
			CacheHit: true,
		}
	}
	return out, nil
}

// sampleFaults draws the initial statistical fault list for a structure of
// the given geometry, deriving the size from (Confidence, ErrorMargin)
// when Faults is 0.
func sampleFaults(cfg Config, entries, entryBits int, cycles uint64) []fault.Fault {
	n := cfg.Faults
	if n == 0 {
		p := sampling.Params{Confidence: cfg.Confidence, ErrorMargin: cfg.ErrorMargin}
		n = p.SampleSize(sampling.Population(entries, entryBits, cycles))
	}
	return sampling.Generate(cfg.Structure, entries, entryBits, cycles, n, cfg.Seed)
}

// Reduce runs phase 2: ACE-like pruning plus the two-step grouping
// algorithm, populating a.Red.
func (a *Artifacts) Reduce() *reduction.Reduction {
	opts := reduction.Options{
		RepsPerGroup: a.Config.RepsPerGroup,
		ByteGrouping: !a.Config.DisableByteGrouping,
		Premasked:    a.Premasked,
	}
	a.Red = reduction.Reduce(a.Analysis, a.Faults, opts)
	return a.Red
}

// staticPrune runs the guestflow static pre-pruner over the campaign's
// fault list, populating Premasked/StaticPruned. Only register-file
// campaigns carry architectural values, so other structures are a no-op.
// Before any verdict is used, every statically pruned fault is
// cross-verified against the dynamic ACE-like analysis: a fault the
// static analysis calls must-dead but the dynamic analysis finds inside a
// vulnerable interval means one of the two engines is wrong, and the
// campaign fails loudly instead of risking a silently different report.
func (a *Artifacts) staticPrune() error {
	if a.Config.Structure != RF {
		return nil
	}
	log := a.Golden.Tracer.Log(lifetime.StructRF)
	if log == nil {
		return fmt.Errorf("merlin: static prune requested but the golden run carries no RF event log")
	}
	g := guestflow.Analyze(a.Runner.Prog)
	premasked, _ := guestflow.PruneRF(g, log, a.Faults)
	for i, pm := range premasked {
		if !pm {
			continue
		}
		f := a.Faults[i]
		if id, ok := a.Analysis.Find(f.Entry, f.Byte(), f.Cycle); ok {
			iv := a.Analysis.Intervals[id]
			return fmt.Errorf("merlin: static/dynamic liveness disagreement on %s fault %d (entry=%d bit=%d cycle=%d): "+
				"statically must-dead, but dynamically vulnerable in (%d,%d] read by rip=%d upc=%d — "+
				"one of internal/guestflow or internal/lifetime is wrong; run `merlin analyze -crosscheck -workload %s`",
				a.Config.Structure, i, f.Entry, f.Bit, f.Cycle, iv.Start, iv.End, iv.RIP, iv.UPC, a.Config.Workload)
		}
	}
	a.Premasked = premasked
	a.StaticPruned = 0
	for _, pm := range premasked {
		if pm {
			a.StaticPruned++
		}
	}
	return nil
}

// inject is the context-aware core of phase 3, shared by Session.Inject
// and the deprecated Artifacts.Inject. onOutcome, when non-nil, is
// installed as the scheduler's per-fault hook for the duration of the
// call. On cancellation the partial *Report (raw representative Dist, no
// extrapolation, Cancelled count set) is returned together with
// ctx.Err().
func (a *Artifacts) inject(ctx context.Context, onOutcome func(int, fault.Fault, campaign.Outcome)) (*Report, error) {
	if a.Red == nil {
		a.Reduce()
	}
	if onOutcome != nil {
		a.Runner.OnOutcome = onOutcome
		defer func() { a.Runner.OnOutcome = nil }()
	}
	reduced := a.Red.Reduced()
	res, err := a.Runner.RunAllWith(ctx, a.Config.Strategy, reduced, &a.Golden.Result, a.Config.Checkpoints)
	return a.reportFrom(res, err == nil), err
}

// reportFrom assembles the campaign Report from a reduction and an
// injection Result. It is the merge point shared by the local pipeline
// (inject) and the distributed coordinator, whose Result recombines
// per-shard outcome streams and resumed checkpoints via
// campaign.NewResultFrom. extrapolate selects the complete-campaign view
// (group extrapolation over the full initial list); false leaves Dist as
// the raw distribution of the classified representatives, the partial
// view of a cancelled or interrupted campaign.
func (a *Artifacts) reportFrom(res *campaign.Result, extrapolate bool) *Report {
	core := a.Runner.NewCore()
	bits := core.StructureEntries(a.Config.Structure) * core.StructureEntryBits(a.Config.Structure)
	dist := res.Dist
	if extrapolate {
		dist = a.Red.Extrapolate(res.Outcomes)
	}
	return &Report{
		Workload:      a.Config.Workload,
		Structure:     a.Config.Structure,
		GoldenCycles:  a.Golden.Result.Cycles,
		InitialFaults: len(a.Faults),
		ACEMasked:     a.Red.ACEMasked,
		StaticPruned:  a.StaticPruned,
		PostACE:       len(a.Red.HitFaults),
		Injected:      res.Injected,
		Cancelled:     res.Cancelled,
		StepOneGroups: a.Red.StepOneGroups,
		FinalGroups:   len(a.Red.Groups),
		ACESpeedup:    a.Red.ACESpeedup(),
		FinalSpeedup:  a.Red.FinalSpeedup(),
		Dist:          dist,
		AVF:           dist.AVF(),
		FIT:           dist.FIT(bits, RawFITPerBit),
		ACELikeAVF:    a.Analysis.AVF(),
		ACELikeFIT:    a.Analysis.AVF() * RawFITPerBit * float64(bits),
		RepOutcomes:   res.Outcomes,
		Wall:          res.Wall,
		Serial:        res.Serial,
		CacheHit:      a.CacheHit,
		SnapshotHit:   res.SnapshotHit,
		Clones:        res.Clones,
		CloneTime:     res.CloneTime,
		SimCycles:     res.SimCycles,
		CyclesPerSec:  res.CyclesPerSec(),
	}
}

// injectSubset injects only the representatives at the given positions of
// the reduced list (the coordinate system shard jobs and durable
// checkpoints are keyed by), reporting each through onOutcome with its
// global representative index. It is the execution primitive of the
// distributed path: a worker runs its shard through it, and the
// coordinator runs requeued remainders through it as the local fallback.
// Reduce must have run. Calls must not overlap (they share the Runner's
// outcome hook); the fleet dispatcher serializes its Local calls.
func (a *Artifacts) injectSubset(ctx context.Context, reps []int, onOutcome func(rep int, f fault.Fault, o campaign.Outcome)) error {
	reduced := a.Red.Reduced()
	subset := make([]fault.Fault, len(reps))
	for i, r := range reps {
		if r < 0 || r >= len(reduced) {
			return fmt.Errorf("merlin: representative index %d outside the reduced list (%d reps)", r, len(reduced))
		}
		subset[i] = reduced[r]
	}
	if onOutcome != nil {
		a.Runner.OnOutcome = func(i int, f fault.Fault, o campaign.Outcome) { onOutcome(reps[i], f, o) }
		defer func() { a.Runner.OnOutcome = nil }()
	}
	_, err := a.Runner.RunAllWith(ctx, a.Config.Strategy, subset, &a.Golden.Result, a.Config.Checkpoints)
	return err
}

// baseline is the context-aware core of the comprehensive campaign,
// shared by Session.Baseline and the deprecated RunBaseline; it has
// inject's cancellation contract.
func (a *Artifacts) baseline(ctx context.Context, onOutcome func(int, fault.Fault, campaign.Outcome)) (*BaselineReport, error) {
	if onOutcome != nil {
		a.Runner.OnOutcome = onOutcome
		defer func() { a.Runner.OnOutcome = nil }()
	}
	res, err := a.Runner.RunAllWith(ctx, a.Config.Strategy, a.Faults, &a.Golden.Result, a.Config.Checkpoints)
	core := a.Runner.NewCore()
	bits := core.StructureEntries(a.Config.Structure) * core.StructureEntryBits(a.Config.Structure)
	rep := &BaselineReport{
		Workload:     a.Config.Workload,
		Structure:    a.Config.Structure,
		GoldenCycles: a.Golden.Result.Cycles,
		Faults:       len(a.Faults),
		Cancelled:    res.Cancelled,
		Outcomes:     res.Outcomes,
		Dist:         res.Dist,
		AVF:          res.Dist.AVF(),
		FIT:          res.Dist.FIT(bits, RawFITPerBit),
		Wall:         res.Wall,
		Serial:       res.Serial,
		SnapshotHit:  res.SnapshotHit,
		Clones:       res.Clones,
		CloneTime:    res.CloneTime,
		SimCycles:    res.SimCycles,
		CyclesPerSec: res.CyclesPerSec(),
		Artifacts:    a,
	}
	return rep, err
}

// Inject runs phase 3: the representatives of the reduced fault list are
// injected and their outcomes extrapolated over the full initial list.
//
// Deprecated: use Session.Inject, which is cancellable and streams
// per-fault progress. Inject runs under context.Background().
func (a *Artifacts) Inject() *Report {
	//lint:allow ctxflow002 deprecated v1 wrapper, documented to run uncancellable
	rep, _ := a.inject(context.Background(), nil)
	return rep
}

// Run executes the full MeRLiN pipeline for one campaign.
//
// Deprecated: use Start and Session.Run, which validate options at Start
// time, are cancellable, and stream typed progress. Run delegates to the
// same pipeline and produces bit-identical reports.
func Run(cfg Config) (*Report, error) {
	a, err := Preprocess(cfg)
	if err != nil {
		return nil, err
	}
	a.Reduce()
	//lint:allow ctxflow002 deprecated v1 wrapper, documented to run uncancellable
	rep, _ := a.inject(context.Background(), nil)
	return rep, nil
}

// RunBaseline injects the entire initial fault list (the comprehensive
// campaign MeRLiN is compared against) and reports its distribution.
//
// Deprecated: use Session.Baseline, which additionally reuses the
// session's preprocessing products instead of repeating the golden run.
func RunBaseline(cfg Config) (*BaselineReport, error) {
	a, err := Preprocess(cfg)
	if err != nil {
		return nil, err
	}
	//lint:allow ctxflow002 deprecated v1 wrapper, documented to run uncancellable
	return a.baseline(context.Background(), nil)
}

// Report is the outcome of one MeRLiN campaign.
type Report struct {
	// Workload and Structure identify the campaign.
	Workload  string
	Structure Structure
	// GoldenCycles is the fault-free run length in cycles.
	GoldenCycles uint64
	// InitialFaults is the statistical fault list size before reduction.
	InitialFaults int
	// ACEMasked counts faults pruned as provably masked by the ACE-like
	// analysis (phase 1).
	ACEMasked int
	// StaticPruned counts the ACEMasked faults classified by the guestflow
	// static pre-pruner without a dynamic interval lookup (0 unless the
	// campaign ran with WithStaticPrune; always a subset of ACEMasked).
	StaticPruned int
	// PostACE counts faults surviving the ACE-like pruning.
	PostACE int
	// Injected counts the group representatives actually injected.
	Injected int
	// Cancelled counts representatives a cancelled campaign never
	// injected (0 for campaigns that ran to completion). When non-zero,
	// Dist is the raw distribution of the classified representatives —
	// not an extrapolation — and the corresponding RepOutcomes entries
	// carry the Cancelled sentinel.
	Cancelled int
	// StepOneGroups and FinalGroups count groups after (RIP, uPC)
	// grouping and after byte sub-grouping respectively.
	StepOneGroups int
	FinalGroups   int
	// ACESpeedup and FinalSpeedup are injection-count reduction factors
	// after phase 1 alone and after both phases (the paper's Figs 8-10).
	ACESpeedup   float64
	FinalSpeedup float64
	// Dist is the extrapolated fault-effect distribution over the full
	// initial fault list.
	Dist Dist
	// AVF and FIT are the injection-based vulnerability estimates; the
	// ACELike variants are the analysis-only upper bounds (§4.4.3.3).
	AVF        float64
	FIT        float64
	ACELikeAVF float64
	ACELikeFIT float64
	// RepOutcomes are the representatives' raw outcomes, in reduced-list
	// order.
	RepOutcomes []Outcome
	// Wall and Serial time the injection phase: parallel wall-clock and
	// summed per-injection (single-machine-equivalent) time.
	Wall   time.Duration
	Serial time.Duration
	// CacheHit reports that Preprocess was served from the golden-run
	// artifact cache (no golden run was simulated for this campaign).
	CacheHit bool
	// SnapshotHit reports that the injection phase's checkpoint ladder was
	// served from a shared SnapshotCache instead of rebuilt (always false
	// for StrategyReplay, which uses no ladder).
	SnapshotHit bool
	// Clones counts the machine snapshots the scheduler took and CloneTime
	// the wall-clock spent taking them.
	Clones    int64
	CloneTime time.Duration
	// SimCycles is the total number of machine cycles simulated during
	// injection (shared pre-fault work plus every faulty continuation);
	// CyclesPerSec divides it by Wall — the campaign's effective
	// simulation throughput across all workers.
	SimCycles    uint64
	CyclesPerSec float64
}

// String renders a one-campaign summary.
func (r *Report) String() string {
	return fmt.Sprintf(
		"%s/%s: %d faults -> ACE-like %d masked (%.1fx) -> %d groups -> %d injected (%.1fx total)\n"+
			"  dist: %v\n  AVF %.4f (ACE-like bound %.4f)  FIT %.3f (ACE-like %.3f)",
		r.Workload, r.Structure, r.InitialFaults, r.ACEMasked, r.ACESpeedup,
		r.FinalGroups, r.Injected, r.FinalSpeedup,
		r.Dist, r.AVF, r.ACELikeAVF, r.FIT, r.ACELikeFIT)
}

// BaselineReport is the outcome of a comprehensive campaign.
type BaselineReport struct {
	// Workload and Structure identify the campaign.
	Workload  string
	Structure Structure
	// GoldenCycles is the fault-free run length in cycles.
	GoldenCycles uint64
	// Faults is the number of injections (the whole initial list).
	Faults int
	// Cancelled counts faults a cancelled campaign never injected; their
	// Outcomes entries carry the Cancelled sentinel and Dist excludes
	// them.
	Cancelled int
	// Outcomes are the per-fault classifications, in fault-list order.
	Outcomes []Outcome
	// Dist aggregates Outcomes; AVF and FIT derive from it.
	Dist Dist
	AVF  float64
	FIT  float64
	// Wall and Serial time the injection phase: parallel wall-clock and
	// summed per-injection (single-machine-equivalent) time.
	Wall   time.Duration
	Serial time.Duration
	// SnapshotHit, Clones, CloneTime, SimCycles and CyclesPerSec mirror
	// Report's injection-phase performance counters.
	SnapshotHit  bool
	Clones       int64
	CloneTime    time.Duration
	SimCycles    uint64
	CyclesPerSec float64

	// Artifacts retains the preprocessing products so MeRLiN and the
	// Relyzer heuristic can be evaluated on the identical fault list.
	Artifacts *Artifacts
}
