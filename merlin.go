// Package merlin is a Go reproduction of "MeRLiN: Exploiting Dynamic
// Instruction Behavior for Fast and Accurate Microarchitecture Level
// Reliability Assessment" (Kaliorakis, Gizopoulos, Canal, Gonzalez —
// ISCA 2017).
//
// It bundles a deterministic out-of-order core simulator with bit-accurate
// physical register file, store queue and L1D data arrays (the substrate
// the paper obtains from Gem5 + GeFIN), a statistical fault-injection
// campaign engine, and the MeRLiN methodology itself: ACE-like vulnerable
// interval pruning followed by (RIP, uPC, byte) fault grouping, so that
// only a handful of representatives per group are injected.
//
// The three phases of the paper's Fig 2 map to Preprocess (golden run +
// ACE-like analysis + initial fault list), Artifacts.Reduce (two-step
// grouping) and Artifacts.Inject (representative injection + extrapolated
// classification). Run chains all three.
package merlin

import (
	"fmt"
	"time"

	"merlin/internal/campaign"
	"merlin/internal/cpu"
	"merlin/internal/fault"
	"merlin/internal/lifetime"
	reduction "merlin/internal/merlin"
	"merlin/internal/sampling"
	"merlin/internal/workloads"
)

// Structure identifies an injection target.
type Structure = lifetime.StructureID

// The structures evaluated in the paper.
const (
	RF  = lifetime.StructRF
	SQ  = lifetime.StructSQ
	L1D = lifetime.StructL1D
)

// Re-exported result types.
type (
	// Outcome is a fault-effect class (paper Table 2).
	Outcome = campaign.Outcome
	// Dist is a distribution over fault-effect classes.
	Dist = campaign.Dist
	// Fault is a single-bit transient fault.
	Fault = fault.Fault
	// Reduction is the output of MeRLiN's fault-list reduction.
	Reduction = reduction.Reduction
	// HomogeneityReport quantifies within-group effect uniformity.
	HomogeneityReport = reduction.HomogeneityReport
	// Strategy selects how injection runs reproduce the pre-fault
	// execution prefix (bit-identical outcomes, different wall-clock).
	Strategy = campaign.Strategy
)

// Injection strategies, fastest last.
const (
	// StrategyReplay re-executes every injection from reset.
	StrategyReplay = campaign.Replay
	// StrategyCheckpointed replays from the nearest of k frozen snapshots.
	StrategyCheckpointed = campaign.Checkpointed
	// StrategyForked forks per-fault clones off a single golden sweep.
	StrategyForked = campaign.Forked
)

// ParseStrategy maps a flag value ("replay", "checkpointed", "forked") to
// a Strategy.
func ParseStrategy(name string) (Strategy, error) { return campaign.ParseStrategy(name) }

// Fault-effect classes (paper Table 2, plus Unknown for truncated runs).
const (
	Masked  = campaign.Masked
	SDC     = campaign.SDC
	DUE     = campaign.DUE
	Timeout = campaign.Timeout
	Crash   = campaign.Crash
	Assert  = campaign.Assert
	Unknown = campaign.Unknown
)

// RawFITPerBit is the raw failure rate the paper assumes (§4.4.3.3).
const RawFITPerBit = 0.01

// Config describes one MeRLiN campaign.
type Config struct {
	// Workload names a registered benchmark (see Workloads).
	Workload string
	// CPU is the core configuration; zero value means the paper's
	// baseline (Table 1).
	CPU cpu.Config
	// Structure is the injection target.
	Structure Structure

	// Faults sets the initial statistical fault list size directly.
	// When 0, the size is derived from Confidence and ErrorMargin over
	// the structure's (bits x cycles) population, per Leveugle et al.
	Faults      int
	Confidence  float64 // default 0.998
	ErrorMargin float64 // default 0.0063 (the paper's 60K-fault setup)

	// Seed drives fault sampling (and nothing else; the simulator is
	// deterministic).
	Seed int64

	// RepsPerGroup >1 injects extra representatives per final group
	// (accuracy/cost ablation); 0 or 1 reproduces the paper.
	RepsPerGroup int
	// DisableByteGrouping turns off step 2 of the grouping algorithm
	// (ablation).
	DisableByteGrouping bool

	// Workers bounds injection parallelism; 0 = GOMAXPROCS.
	Workers int

	// Strategy selects the injection scheduler: StrategyReplay (default),
	// StrategyCheckpointed, or StrategyForked. All three classify every
	// fault identically; they differ only in how much of the pre-fault
	// prefix is re-simulated.
	Strategy Strategy
	// Checkpoints > 0 sets the snapshot count of StrategyCheckpointed
	// (and, for backward compatibility, selects that strategy when
	// Strategy is left at the default).
	Checkpoints int
}

func (c Config) withDefaults() Config {
	if c.CPU.PhysRegs == 0 {
		c.CPU = cpu.DefaultConfig()
	}
	if c.Confidence == 0 {
		c.Confidence = sampling.Baseline.Confidence
	}
	if c.ErrorMargin == 0 {
		c.ErrorMargin = sampling.Baseline.ErrorMargin
	}
	if c.RepsPerGroup == 0 {
		c.RepsPerGroup = 1
	}
	if c.Strategy == StrategyReplay && c.Checkpoints > 0 {
		c.Strategy = StrategyCheckpointed
	}
	return c
}

// Artifacts carries the intermediate products of the pipeline between
// phases, mirroring the repositories of the paper's Fig 2.
type Artifacts struct {
	Config   Config
	Runner   *campaign.Runner
	Golden   *campaign.Golden
	Analysis *lifetime.Analysis
	Faults   []fault.Fault
	Red      *reduction.Reduction
}

// Workloads lists the registered benchmark names for a suite ("mibench",
// "spec", or "" for all).
func Workloads(suite string) []string { return workloads.Names(suite) }

// Preprocess runs phase 1: the single fault-free profiling run that records
// the structure's vulnerable intervals, plus the creation of the initial
// statistical fault list.
func Preprocess(cfg Config) (*Artifacts, error) {
	cfg = cfg.withDefaults()
	w, err := workloads.Get(cfg.Workload)
	if err != nil {
		return nil, err
	}
	runner := campaign.NewRunner(campaign.Target{Cfg: cfg.CPU, Prog: w.Program()})
	runner.Workers = cfg.Workers
	golden, err := runner.RunGolden(cfg.Structure)
	if err != nil {
		return nil, err
	}

	core := runner.NewCore()
	entries := core.StructureEntries(cfg.Structure)
	entryBits := core.StructureEntryBits(cfg.Structure)
	cycles := golden.Result.Cycles

	analysis := lifetime.Build(golden.Tracer.Log(cfg.Structure), cfg.Structure,
		entries, entryBits/8, cycles)

	n := cfg.Faults
	if n == 0 {
		p := sampling.Params{Confidence: cfg.Confidence, ErrorMargin: cfg.ErrorMargin}
		n = p.SampleSize(sampling.Population(entries, entryBits, cycles))
	}
	faults := sampling.Generate(cfg.Structure, entries, entryBits, cycles, n, cfg.Seed)

	return &Artifacts{
		Config:   cfg,
		Runner:   runner,
		Golden:   golden,
		Analysis: analysis,
		Faults:   faults,
	}, nil
}

// Reduce runs phase 2: ACE-like pruning plus the two-step grouping
// algorithm, populating a.Red.
func (a *Artifacts) Reduce() *reduction.Reduction {
	opts := reduction.Options{
		RepsPerGroup: a.Config.RepsPerGroup,
		ByteGrouping: !a.Config.DisableByteGrouping,
	}
	a.Red = reduction.Reduce(a.Analysis, a.Faults, opts)
	return a.Red
}

// Inject runs phase 3: the representatives of the reduced fault list are
// injected and their outcomes extrapolated over the full initial list.
func (a *Artifacts) Inject() *Report {
	if a.Red == nil {
		a.Reduce()
	}
	reduced := a.Red.Reduced()
	res := a.Runner.RunAllWith(a.Config.Strategy, reduced, &a.Golden.Result, a.Config.Checkpoints)
	dist := a.Red.Extrapolate(res.Outcomes)
	core := a.Runner.NewCore()
	bits := core.StructureEntries(a.Config.Structure) * core.StructureEntryBits(a.Config.Structure)
	return &Report{
		Workload:      a.Config.Workload,
		Structure:     a.Config.Structure,
		GoldenCycles:  a.Golden.Result.Cycles,
		InitialFaults: len(a.Faults),
		ACEMasked:     a.Red.ACEMasked,
		PostACE:       len(a.Red.HitFaults),
		Injected:      a.Red.ReducedCount(),
		StepOneGroups: a.Red.StepOneGroups,
		FinalGroups:   len(a.Red.Groups),
		ACESpeedup:    a.Red.ACESpeedup(),
		FinalSpeedup:  a.Red.FinalSpeedup(),
		Dist:          dist,
		AVF:           dist.AVF(),
		FIT:           dist.FIT(bits, RawFITPerBit),
		ACELikeAVF:    a.Analysis.AVF(),
		ACELikeFIT:    a.Analysis.AVF() * RawFITPerBit * float64(bits),
		RepOutcomes:   res.Outcomes,
		Wall:          res.Wall,
		Serial:        res.Serial,
	}
}

// Run executes the full MeRLiN pipeline for one campaign.
func Run(cfg Config) (*Report, error) {
	a, err := Preprocess(cfg)
	if err != nil {
		return nil, err
	}
	a.Reduce()
	return a.Inject(), nil
}

// RunBaseline injects the entire initial fault list (the comprehensive
// campaign MeRLiN is compared against) and reports its distribution.
func RunBaseline(cfg Config) (*BaselineReport, error) {
	a, err := Preprocess(cfg)
	if err != nil {
		return nil, err
	}
	res := a.Runner.RunAllWith(a.Config.Strategy, a.Faults, &a.Golden.Result, a.Config.Checkpoints)
	core := a.Runner.NewCore()
	bits := core.StructureEntries(cfg.Structure) * core.StructureEntryBits(cfg.Structure)
	return &BaselineReport{
		Workload:     a.Config.Workload,
		Structure:    a.Config.Structure,
		GoldenCycles: a.Golden.Result.Cycles,
		Faults:       len(a.Faults),
		Outcomes:     res.Outcomes,
		Dist:         res.Dist,
		AVF:          res.Dist.AVF(),
		FIT:          res.Dist.FIT(bits, RawFITPerBit),
		Wall:         res.Wall,
		Serial:       res.Serial,
		Artifacts:    a,
	}, nil
}

// Report is the outcome of one MeRLiN campaign.
type Report struct {
	Workload      string
	Structure     Structure
	GoldenCycles  uint64
	InitialFaults int
	ACEMasked     int
	PostACE       int
	Injected      int
	StepOneGroups int
	FinalGroups   int
	ACESpeedup    float64
	FinalSpeedup  float64
	Dist          Dist
	AVF           float64
	FIT           float64
	ACELikeAVF    float64
	ACELikeFIT    float64
	RepOutcomes   []Outcome
	Wall          time.Duration
	Serial        time.Duration
}

// String renders a one-campaign summary.
func (r *Report) String() string {
	return fmt.Sprintf(
		"%s/%s: %d faults -> ACE-like %d masked (%.1fx) -> %d groups -> %d injected (%.1fx total)\n"+
			"  dist: %v\n  AVF %.4f (ACE-like bound %.4f)  FIT %.3f (ACE-like %.3f)",
		r.Workload, r.Structure, r.InitialFaults, r.ACEMasked, r.ACESpeedup,
		r.FinalGroups, r.Injected, r.FinalSpeedup,
		r.Dist, r.AVF, r.ACELikeAVF, r.FIT, r.ACELikeFIT)
}

// BaselineReport is the outcome of a comprehensive campaign.
type BaselineReport struct {
	Workload     string
	Structure    Structure
	GoldenCycles uint64
	Faults       int
	Outcomes     []Outcome
	Dist         Dist
	AVF          float64
	FIT          float64
	Wall         time.Duration
	Serial       time.Duration

	// Artifacts retains the preprocessing products so MeRLiN and the
	// Relyzer heuristic can be evaluated on the identical fault list.
	Artifacts *Artifacts
}
