package merlin

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"merlin/internal/chaos"
	"merlin/internal/fleet"
)

// TestRunChaosSmoke runs a short chaos certification — one stalling and
// one crashing schedule — end to end through the public entry point, the
// same path `merlin chaos` takes.
func TestRunChaosSmoke(t *testing.T) {
	res, err := RunChaos(context.Background(), ChaosOptions{
		Seed:      1,
		Scenarios: 2, // worker-stall, mid-stream-crash
		Workers:   2,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scenarios != 2 || res.CleanWall <= 0 || res.ChaosMean <= 0 {
		t.Fatalf("implausible result: %+v", res)
	}
	if res.Requeues == 0 {
		t.Fatal("stall and crash schedules produced no requeues: the chaos never landed")
	}
}

// TestChaosLethalMismatchFailsLoudly: a Byzantine worker contradicting
// its own classifications is a lethal schedule — the campaign must fail
// with the determinism violation named in its error, never silently pick
// one of the answers.
func TestChaosLethalMismatchFailsLoudly(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	coord := daemon(t, ServeOptions{Cache: cache})

	wcache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	byz := &chaos.Behavior{R: chaos.NewRand(1), MismatchDuplicate: 1}
	agent := &fleet.Agent{ID: "byz", Run: byz.Wrap(workerShardRun(wcache, nil, coord.URL, nil))}
	hs := httptest.NewServer(agent.Handler())
	defer hs.Close()
	joinFleet(t, coord.URL, "byz", hs.URL)

	id := postCampaign(t, coord.URL,
		`{"workload":"sha","structure":"RF","faults":300,"seed":9,"strategy":"forked"}`)
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(coord.URL + "/campaigns/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		switch st.Status {
		case "failed":
			if !strings.Contains(st.Error, "determinism violation") {
				t.Fatalf("lethal schedule failed without naming the violation: %q", st.Error)
			}
			return
		case "done":
			t.Fatal("campaign with a Byzantine worker reported success")
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign still %q: the lethal schedule neither failed nor finished", st.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
