package merlin

import (
	"context"
	"reflect"
	"testing"
)

// TestWithStaticPruneBitIdentical: a campaign run with the guestflow
// static pre-pruner must produce a bit-identical report to the plain
// campaign — same distribution, same groups, same representatives, same
// extrapolation — while actually pruning a nonzero fraction of the RF
// fault list statically. The pruner is an optimisation with a proof
// obligation, not a new estimator.
func TestWithStaticPruneBitIdentical(t *testing.T) {
	ctx := context.Background()
	for _, wl := range []string{"qsort", "sha"} {
		plain := mustRunSession(t, ctx, wl, WithStructure(RF), WithFaults(400), WithSeed(7))
		pruned := mustRunSession(t, ctx, wl, WithStructure(RF), WithFaults(400), WithSeed(7), WithStaticPrune())

		if pruned.StaticPruned == 0 {
			t.Errorf("%s: static pruner classified 0 of %d faults — the option did nothing", wl, pruned.InitialFaults)
		}
		if plain.StaticPruned != 0 {
			t.Errorf("%s: plain campaign reports StaticPruned=%d", wl, plain.StaticPruned)
		}

		// Everything deterministic must match exactly; only the wall-clock
		// fields and the StaticPruned counter itself may differ.
		a, b := *plain, *pruned
		a.StaticPruned, b.StaticPruned = 0, 0
		a.Wall, b.Wall = 0, 0
		a.Serial, b.Serial = 0, 0
		a.CyclesPerSec, b.CyclesPerSec = 0, 0
		a.Clones, b.Clones = 0, 0
		a.CloneTime, b.CloneTime = 0, 0
		a.SimCycles, b.SimCycles = 0, 0
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: pruned report diverged from plain:\nplain  %+v\npruned %+v", wl, a, b)
		}
		if pruned.StaticPruned > pruned.ACEMasked {
			t.Errorf("%s: StaticPruned %d exceeds ACEMasked %d — pruned faults must be a subset",
				wl, pruned.StaticPruned, pruned.ACEMasked)
		}
	}
}

func mustRunSession(t *testing.T, ctx context.Context, wl string, opts ...Option) *Report {
	t.Helper()
	s, err := Start(ctx, wl, opts...)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestStaticPruneProgress: the reduce phase-done event carries the prune
// count so the CLI, NDJSON stream and /statsz all see the same number.
func TestStaticPruneProgress(t *testing.T) {
	ctx := context.Background()
	var got int
	s, err := Start(ctx, "qsort",
		WithStructure(RF), WithFaults(200), WithSeed(3), WithStaticPrune(),
		WithProgress(func(p Progress) {
			if p.Kind == ProgressPhaseDone && p.Phase == PhaseReduce {
				got = p.StaticPruned
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got != rep.StaticPruned || got == 0 {
		t.Errorf("reduce progress carried StaticPruned=%d, report says %d", got, rep.StaticPruned)
	}
}
