package merlin

// This file is the campaign service's pipeline adapter: it wires the
// MeRLiN pipeline (Preprocess → Reduce → Inject) and the golden-run
// artifact cache into the pipeline-agnostic HTTP service of
// internal/server. cmd/merlind is a thin flag wrapper around Serve.

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"time"

	"merlin/internal/campaign"
	"merlin/internal/cpu"
	"merlin/internal/fault"
	"merlin/internal/server"
	"merlin/internal/workloads"
)

// Server is the long-running campaign service behind cmd/merlind: an
// HTTP+JSON API (POST /campaigns, GET /campaigns/{id}, streamed
// /campaigns/{id}/events, /healthz, /statsz) over a sharded worker pool
// with bounded queues. Construct with NewServer, or let Serve manage the
// whole lifecycle.
type Server = server.Server

// CampaignRequest is the wire form of one campaign submission.
type CampaignRequest = server.Request

// CampaignEvent is one entry of a campaign's streamed progress log.
type CampaignEvent = server.Event

// ServeOptions configures the campaign service.
type ServeOptions struct {
	// Cache is the golden-run artifact cache shared by every campaign
	// the service runs; nil disables caching (each campaign then repeats
	// its own golden run). Open one with OpenCache.
	Cache *Cache

	// Shards is the number of independent worker pools (campaigns are
	// assigned by id hash), WorkersPerShard how many campaigns one shard
	// runs concurrently, and QueueDepth the pending-campaign bound per
	// shard (submissions beyond it get 429). Zero values take the
	// server defaults (4 / 1 / 64).
	Shards          int
	WorkersPerShard int
	QueueDepth      int
	// RetainFinished bounds how many finished campaigns (reports + event
	// logs) stay queryable; the oldest are evicted beyond it so a
	// long-running daemon's memory tracks load, not lifetime. 0 takes
	// the server default (1024).
	RetainFinished int
}

// NewServer starts the campaign service's worker pools and returns the
// service. Expose it over HTTP with (*Server).Handler; stop it with
// (*Server).Close.
func NewServer(opt ServeOptions) (*Server, error) {
	cfg := server.Config{
		Run:             runCampaign(opt.Cache),
		Validate:        validateRequest,
		Shards:          opt.Shards,
		WorkersPerShard: opt.WorkersPerShard,
		QueueDepth:      opt.QueueDepth,
		RetainFinished:  opt.RetainFinished,
	}
	if opt.Cache != nil {
		cache := opt.Cache
		cfg.CacheStats = func() any { return cache.Stats() }
	}
	return server.New(cfg)
}

// Serve runs the campaign service on addr until ctx is cancelled, then
// shuts the HTTP listener down gracefully and drains the worker pools.
func Serve(ctx context.Context, addr string, opt ServeOptions) error {
	srv, err := NewServer(opt)
	if err != nil {
		return err
	}
	defer srv.Close()

	hs := &http.Server{Addr: addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return hs.Shutdown(shutdownCtx)
	}
}

// campaignConfig translates a wire request into a pipeline Config,
// rejecting unknown names and negative knobs.
func campaignConfig(req CampaignRequest) (Config, error) {
	var zero Config
	if _, err := workloads.Get(req.Workload); err != nil {
		return zero, err
	}
	var target Structure
	switch strings.ToUpper(req.Structure) {
	case "RF":
		target = RF
	case "SQ":
		target = SQ
	case "L1D":
		target = L1D
	default:
		return zero, fmt.Errorf("unknown structure %q (want RF, SQ, or L1D)", req.Structure)
	}
	strat := StrategyReplay
	if req.Strategy != "" {
		var err error
		if strat, err = ParseStrategy(req.Strategy); err != nil {
			return zero, err
		}
	}
	if req.PhysRegs < 0 || req.SQEntries < 0 || req.L1DBytes < 0 {
		return zero, fmt.Errorf("core configuration knobs must be >= 0 (0 = paper baseline)")
	}
	cpuCfg := cpu.DefaultConfig()
	if req.PhysRegs > 0 {
		cpuCfg = cpuCfg.WithRF(req.PhysRegs)
	}
	if req.SQEntries > 0 {
		cpuCfg = cpuCfg.WithSQ(req.SQEntries)
	}
	if req.L1DBytes > 0 {
		cpuCfg = cpuCfg.WithL1D(req.L1DBytes)
	}
	cfg := Config{
		Workload:            req.Workload,
		CPU:                 cpuCfg,
		Structure:           target,
		Faults:              req.Faults,
		Confidence:          req.Confidence,
		ErrorMargin:         req.ErrorMargin,
		Seed:                req.Seed,
		RepsPerGroup:        req.RepsPerGroup,
		DisableByteGrouping: req.DisableByteGrouping,
		Workers:             req.Workers,
		Strategy:            strat,
		Checkpoints:         req.Checkpoints,
	}
	return cfg, nil
}

// validateRequest vets a submission synchronously so malformed campaigns
// fail the POST with 400 instead of failing later in the queue.
func validateRequest(req CampaignRequest) error {
	cfg, err := campaignConfig(req)
	if err != nil {
		return err
	}
	return cfg.withDefaults().validate()
}

// runCampaign adapts the three-phase pipeline to the service's RunFunc,
// emitting one event per phase and one per injected fault.
func runCampaign(cache *Cache) server.RunFunc {
	return func(ctx context.Context, req CampaignRequest, emit func(CampaignEvent)) (any, error) {
		cfg, err := campaignConfig(req)
		if err != nil {
			return nil, err
		}
		cfg.Cache = cache
		if err := ctx.Err(); err != nil {
			return nil, err
		}

		a, err := Preprocess(cfg)
		if err != nil {
			return nil, err
		}
		hit := a.CacheHit
		src := "golden run simulated and cached"
		if hit {
			src = "golden run served from artifact cache"
		} else if cache == nil {
			src = "golden run simulated (no cache)"
		}
		if a.CacheErr != nil {
			src += " (cache write failed: " + a.CacheErr.Error() + ")"
		}
		emit(CampaignEvent{Type: "preprocess", CacheHit: &hit,
			Msg: fmt.Sprintf("%s: %d cycles, %d vulnerable intervals, %d faults sampled",
				src, a.Golden.Result.Cycles, len(a.Analysis.Intervals), len(a.Faults))})

		// Phase boundaries are the shutdown points: a cancelled server
		// stops before starting the next phase, bounding drain latency to
		// the current phase instead of the whole campaign.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		red := a.Reduce()
		emit(CampaignEvent{Type: "reduce",
			Msg: fmt.Sprintf("%d faults -> %d ACE-masked -> %d groups -> %d representatives",
				len(a.Faults), red.ACEMasked, len(red.Groups), red.ReducedCount())})

		if err := ctx.Err(); err != nil {
			return nil, err
		}
		a.Runner.OnOutcome = func(idx int, f fault.Fault, o campaign.Outcome) {
			emit(CampaignEvent{Type: "fault", Index: idx, Fault: f.String(), Outcome: o.String()})
		}
		return a.Inject(), nil
	}
}
