package merlin

// This file is the campaign service's pipeline adapter: it wires the
// Session API (Start → Session.Run with a progress subscription) and the
// golden-run artifact cache into the pipeline-agnostic HTTP service of
// internal/server. cmd/merlind is a thin flag wrapper around Serve.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"merlin/internal/cpu"
	"merlin/internal/fleet"
	"merlin/internal/server"
)

// HTTP hardening knobs shared by the coordinator and worker listeners.
// ReadHeaderTimeout bounds how long a connection may dribble its request
// headers (the slowloris vector); IdleTimeout reclaims keep-alive
// connections. There is deliberately no WriteTimeout: event and shard
// streams are long-lived by design, and their liveness comes from
// cancellation and heartbeats instead.
const (
	readHeaderTimeout = 5 * time.Second
	idleTimeout       = 2 * time.Minute
	drainTimeout      = 10 * time.Second
)

// Server is the long-running campaign service behind cmd/merlind: an
// HTTP+JSON API (POST /campaigns, GET /campaigns/{id}, DELETE
// /campaigns/{id}, streamed /campaigns/{id}/events, the mirrored
// /batches tree for multi-structure batch campaigns over one shared
// golden run, /healthz, /statsz) over a sharded worker pool with bounded
// queues. Campaigns and batches are cancellable — DELETE cancels queued
// and running submissions alike, and cancelling a batch cancels all of
// its structures — and may carry a per-request deadline. Construct with
// NewServer, or let Serve manage the whole lifecycle.
type Server = server.Server

// CampaignRequest is the wire form of one campaign submission.
type CampaignRequest = server.Request

// CampaignEvent is one entry of a campaign's streamed progress log.
type CampaignEvent = server.Event

// ServeOptions configures the campaign service.
type ServeOptions struct {
	// Cache is the golden-run artifact cache shared by every campaign
	// the service runs; nil disables caching (each campaign then repeats
	// its own golden run). Open one with OpenCache.
	Cache *Cache

	// SnapshotBudget bounds the in-memory snapshot cache that shares
	// checkpoint ladders (frozen machine snapshots) across concurrent and
	// repeat campaigns: on a warm golden-artifact hit, a campaign skips
	// the ladder rebuild entirely. 0 means the default budget (512 MB);
	// negative disables snapshot sharing.
	SnapshotBudget int64

	// Shards is the number of independent worker pools (campaigns are
	// assigned by id hash), WorkersPerShard how many campaigns one shard
	// runs concurrently, and QueueDepth the pending-campaign bound per
	// shard (submissions beyond it get 429). Zero values take the
	// server defaults (4 / 1 / 64).
	Shards          int
	WorkersPerShard int
	QueueDepth      int
	// RetainFinished bounds how many finished campaigns (reports + event
	// logs) stay queryable; the oldest are evicted beyond it so a
	// long-running daemon's memory tracks load, not lifetime. 0 takes
	// the server default (1024).
	RetainFinished int
	// MaxEventsPerCampaign caps one campaign's in-memory event log: beyond
	// it the oldest quarter is dropped and streamers resuming into the
	// dropped range receive an explicit "truncated" marker. 0 takes the
	// server default (8192).
	MaxEventsPerCampaign int

	// Registry, when non-nil, makes campaign state durable: submissions,
	// checkpointed per-representative outcomes and terminal reports are
	// persisted, finished campaigns survive a daemon restart, and
	// interrupted ones resume from their last checkpoint instead of
	// restarting. Open one with OpenRegistry. Nil keeps the in-memory-only
	// behavior.
	Registry *CampaignRegistry

	// FleetTTL is the heartbeat liveness window for fleet workers joining
	// this daemon as a coordinator: a worker silent for longer stops
	// receiving shards. 0 means the default (10s); negative disables the
	// fleet endpoints entirely (pure single-process daemon). With no
	// workers joined the coordinator runs campaigns in-process exactly as
	// a single-node daemon would.
	FleetTTL time.Duration

	// FleetClient, when non-nil, replaces the dispatcher's hardened shard-
	// stream HTTP client — the chaos harness's injection point for
	// coordinator-side transfer faults.
	FleetClient *http.Client
	// FleetStallTimeout is the dispatcher's per-shard progress watchdog: a
	// worker stream producing no outcome line for this long is abandoned
	// and its remaining reps requeued, even while the worker heartbeats.
	// 0 means the default (2 minutes); negative disables the watchdog.
	FleetStallTimeout time.Duration
}

// NewServer starts the campaign service's worker pools and returns the
// service. Expose it over HTTP with (*Server).Handler; stop it with
// (*Server).Close.
func NewServer(opt ServeOptions) (*Server, error) {
	var snapshots *SnapshotCache
	if opt.SnapshotBudget >= 0 {
		snapshots = NewSnapshotCache(opt.SnapshotBudget)
	}
	var pool *fleet.Pool
	if opt.FleetTTL >= 0 {
		pool = fleet.NewPool(opt.FleetTTL)
	}
	// Running total of statically pre-pruned fault sites across every
	// campaign this daemon ran, surfaced on /statsz. Local to the server
	// instance (not package state), fed by observing reduce events on
	// their way to the record log — which covers the local, batch and
	// fleet-coordinated paths alike.
	var staticPruned atomic.Int64
	run := runCampaign(opt.Cache, snapshots, pool, opt.Registry != nil, opt.FleetClient, opt.FleetStallTimeout)
	cfg := server.Config{
		Run: func(ctx context.Context, job server.Job, emit func(CampaignEvent)) (any, error) {
			return run(ctx, job, func(ev CampaignEvent) {
				if ev.Type == "reduce" && ev.StaticPruned > 0 {
					staticPruned.Add(int64(ev.StaticPruned))
				}
				emit(ev)
			})
		},
		Validate:             validateRequest(opt.Cache),
		Shards:               opt.Shards,
		WorkersPerShard:      opt.WorkersPerShard,
		QueueDepth:           opt.QueueDepth,
		RetainFinished:       opt.RetainFinished,
		MaxEventsPerCampaign: opt.MaxEventsPerCampaign,
		PruneStats: func() any {
			return map[string]int64{"static_pruned_faults": staticPruned.Load()}
		},
	}
	if opt.Cache != nil {
		cache := opt.Cache
		cfg.CacheStats = func() any { return cache.Stats() }
	}
	if snapshots != nil {
		cfg.SnapshotStats = func() any { return snapshots.Stats() }
	}
	if opt.Registry != nil {
		reg := opt.Registry
		cfg.Registry = registryAdapter{reg}
		cfg.RegistryStats = func() any { return reg.Stats() }
	}
	if pool != nil || opt.Cache != nil {
		cache := opt.Cache
		cfg.Routes = func(mux *http.ServeMux) {
			if pool != nil {
				// Worker registration, heartbeats and the fleet listing.
				mux.Handle("/fleet/", pool.Handler())
			}
			if cache != nil {
				// Content-addressed golden-artifact transfer: workers
				// prefetch by the same key the cache stores under, skipping
				// their own golden runs.
				mux.HandleFunc("GET /artifacts/{id}", func(w http.ResponseWriter, r *http.Request) {
					raw, ok := cache.GetRaw(r.PathValue("id"))
					if !ok {
						http.Error(w, `{"error":"unknown artifact"}`, http.StatusNotFound)
						return
					}
					// Advertise the payload digest so the worker can verify
					// the bytes end to end before caching them.
					sum := sha256.Sum256(raw)
					w.Header().Set(artifactDigestHeader, hex.EncodeToString(sum[:]))
					w.Header().Set("Content-Type", "application/octet-stream")
					w.Write(raw)
				})
			}
		}
	}
	return server.New(cfg)
}

// Serve runs the campaign service on addr until ctx is cancelled, then
// shuts down gracefully: the campaign service stops first (with a durable
// registry the in-flight campaigns checkpoint and stay resumable; without
// one they fail, as before), which completes every live event stream, and
// only then the HTTP listener drains under a deadline. The listener
// carries header-read and idle timeouts so a slowloris peer cannot pin
// connections open indefinitely.
func Serve(ctx context.Context, addr string, opt ServeOptions) error {
	srv, err := NewServer(opt)
	if err != nil {
		return err
	}

	hs := &http.Server{
		Addr:              addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: readHeaderTimeout,
		IdleTimeout:       idleTimeout,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		srv.Close()
		return err
	case <-ctx.Done():
	}
	// Order matters: closing the campaign service first terminates every
	// campaign and therefore every NDJSON event stream; shutting the
	// listener down first would leave Shutdown waiting out its whole drain
	// deadline behind streams that only end when the campaigns do.
	srv.Close()
	//lint:allow ctxflow002 shutdown drain: the caller's ctx is already done, this bounds the drain
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	return hs.Shutdown(shutdownCtx)
}

// requestOptions translates a wire request into Session (or Batch)
// options, rejecting unknown names and negative knobs. A request carrying
// a structures list yields batch options (WithStructures); one carrying a
// single structure yields WithStructure. The returned options do not
// include the progress subscription — runCampaign appends its own.
func requestOptions(req CampaignRequest, cache *Cache) ([]Option, error) {
	var opts []Option
	if len(req.Structures) > 0 {
		targets := make([]Structure, len(req.Structures))
		for i, name := range req.Structures {
			t, err := ParseStructure(name)
			if err != nil {
				return nil, err
			}
			targets[i] = t
		}
		opts = append(opts, WithStructures(targets...))
	} else {
		target, err := ParseStructure(req.Structure)
		if err != nil {
			return nil, err
		}
		opts = append(opts, WithStructure(target))
	}
	if req.PhysRegs < 0 || req.SQEntries < 0 || req.L1DBytes < 0 {
		return nil, fmt.Errorf("core configuration knobs must be >= 0 (0 = paper baseline)")
	}
	cpuCfg := cpu.DefaultConfig()
	if req.PhysRegs > 0 {
		cpuCfg = cpuCfg.WithRF(req.PhysRegs)
	}
	if req.SQEntries > 0 {
		cpuCfg = cpuCfg.WithSQ(req.SQEntries)
	}
	if req.L1DBytes > 0 {
		cpuCfg = cpuCfg.WithL1D(req.L1DBytes)
	}
	opts = append(opts,
		WithCPU(cpuCfg),
		WithSeed(req.Seed),
	)
	if req.Faults != 0 {
		opts = append(opts, WithFaults(req.Faults))
	}
	if req.Confidence != 0 || req.ErrorMargin != 0 {
		opts = append(opts, WithSampling(req.Confidence, req.ErrorMargin))
	}
	if req.RepsPerGroup != 0 {
		opts = append(opts, WithRepsPerGroup(req.RepsPerGroup))
	}
	if req.DisableByteGrouping {
		opts = append(opts, WithoutByteGrouping())
	}
	if req.StaticPrune {
		opts = append(opts, WithStaticPrune())
	}
	if req.Workers != 0 {
		opts = append(opts, WithWorkers(req.Workers))
	}
	if req.Strategy != "" {
		strat, err := ParseStrategy(req.Strategy)
		if err != nil {
			return nil, err
		}
		opts = append(opts, WithStrategy(strat))
	}
	if req.Checkpoints != 0 {
		opts = append(opts, WithCheckpoints(req.Checkpoints))
	}
	if cache != nil {
		opts = append(opts, WithCache(cache))
	}
	return opts, nil
}

// validateRequest vets a submission synchronously — Start and StartBatch
// perform the full option validation without simulating anything — so
// malformed campaigns fail the POST with 400 instead of failing later in
// the queue.
func validateRequest(cache *Cache) func(CampaignRequest) error {
	return func(req CampaignRequest) error {
		opts, err := requestOptions(req, cache)
		if err != nil {
			return err
		}
		if len(req.Structures) > 0 {
			//lint:allow ctxflow002 synchronous option validation only; Start simulates nothing at Start time
			_, err = StartBatch(context.Background(), req.Workload, opts...)
		} else {
			//lint:allow ctxflow002 synchronous option validation only; Start simulates nothing at Start time
			_, err = Start(context.Background(), req.Workload, opts...)
		}
		return err
	}
}

// progressEvent maps one typed progress event onto the service's wire
// event log, carrying the structure tag through (batch logs interleave
// several structures). Phase-start events are internal pacing and not
// logged.
func progressEvent(p Progress) (CampaignEvent, bool) {
	switch p.Kind {
	case ProgressPhaseDone:
		switch p.Phase {
		case PhasePreprocess:
			hit := p.CacheHit
			return CampaignEvent{Type: "preprocess", Structure: p.Structure, CacheHit: &hit, Msg: p.Msg}, true
		case PhaseReduce:
			return CampaignEvent{Type: "reduce", Structure: p.Structure, Msg: p.Msg,
				StaticPruned: p.StaticPruned}, true
		case PhaseBatch:
			return CampaignEvent{Type: "batch", Msg: p.Msg}, true
		default:
			snapHit := p.SnapshotHit
			return CampaignEvent{Type: "inject", Structure: p.Structure, Msg: p.Msg,
				SnapshotHit: &snapHit, CyclesPerSec: p.CyclesPerSec}, true
		}
	case ProgressFault:
		return CampaignEvent{Type: "fault", Structure: p.Structure, Index: p.Index,
			Fault: p.Fault.String(), Outcome: p.Outcome.String()}, true
	}
	return CampaignEvent{}, false
}

// runCampaign adapts the Session and Batch APIs to the service's RunFunc:
// one Session (or Batch, when the request carries a structures list) per
// record, its progress stream forwarded to the event log, its context
// wired to the service's per-record cancellation — for a batch that
// context covers every structure, so one DELETE cancels the whole batch.
// A cancelled record returns ctx.Err(), which the service records as the
// "cancelled" terminal state. All campaigns share the process-wide
// snapshot cache, so repeat and concurrent campaigns (and the structures
// of one batch) reuse one frozen checkpoint ladder instead of each
// rebuilding it.
//
// Single-structure campaigns take the fleet merge path — sharded over
// live workers, outcomes checkpointed, resumable — whenever there is
// someone or something to merge for: live workers in the pool, a durable
// registry, or checkpointed outcomes from a previous incarnation. With
// none of those (today's plain single-process daemon) they run the local
// Session pipeline unchanged. Batches always run locally: they already
// amortize one golden run across structures in-process.
func runCampaign(cache *Cache, snapshots *SnapshotCache, pool *fleet.Pool, durable bool, client *http.Client, stall time.Duration) server.RunFunc {
	return func(ctx context.Context, job server.Job, emit func(CampaignEvent)) (any, error) {
		req := job.Request
		if len(req.Structures) == 0 {
			fleetAlive := pool != nil && len(pool.Alive()) > 0
			if fleetAlive || durable || len(job.Resume) > 0 {
				return runFleetCampaign(ctx, job, emit, cache, snapshots, pool, client, stall)
			}
		}
		opts, err := requestOptions(req, cache)
		if err != nil {
			return nil, err
		}
		if snapshots != nil {
			opts = append(opts, WithSnapshotCache(snapshots))
		}
		opts = append(opts, WithProgress(func(p Progress) {
			if ev, ok := progressEvent(p); ok {
				emit(ev)
			}
		}))
		// On cancellation Run returns a partial report together with
		// ctx.Err(); both are handed to the service, which retains the
		// report on the cancelled record — for a batch, the structures
		// that finished before the DELETE keep their results. The
		// explicit nil returns avoid wrapping a typed nil pointer in the
		// RunFunc's any.
		if len(req.Structures) > 0 {
			b, err := StartBatch(ctx, req.Workload, opts...)
			if err != nil {
				return nil, err
			}
			rep, err := b.Run(ctx)
			if rep == nil {
				return nil, err
			}
			return rep, err
		}
		s, err := Start(ctx, req.Workload, opts...)
		if err != nil {
			return nil, err
		}
		rep, err := s.Run(ctx)
		if rep == nil {
			return nil, err
		}
		return rep, err
	}
}
