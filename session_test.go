package merlin

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestStartOptionValidation: option conflicts and bad values fail Start,
// and the checkpoints/strategy implication is explicit.
func TestStartOptionValidation(t *testing.T) {
	ctx := context.Background()

	// WithCheckpoints alone implies the checkpointed strategy.
	s, err := Start(ctx, "sha", WithCheckpoints(6))
	if err != nil {
		t.Fatal(err)
	}
	if cfg := s.Config(); cfg.Strategy != StrategyCheckpointed || cfg.Checkpoints != 6 {
		t.Fatalf("WithCheckpoints(6): strategy %v checkpoints %d", cfg.Strategy, cfg.Checkpoints)
	}

	// Explicitly checkpointed + checkpoints is fine.
	if _, err := Start(ctx, "sha", WithStrategy(StrategyCheckpointed), WithCheckpoints(4)); err != nil {
		t.Fatalf("checkpointed + checkpoints rejected: %v", err)
	}

	// A conflicting explicit strategy is rejected, in either option order.
	for name, opts := range map[string][]Option{
		"replay then checkpoints": {WithStrategy(StrategyReplay), WithCheckpoints(4)},
		"checkpoints then replay": {WithCheckpoints(4), WithStrategy(StrategyReplay)},
		"forked + checkpoints":    {WithStrategy(StrategyForked), WithCheckpoints(4)},
	} {
		if _, err := Start(ctx, "sha", opts...); err == nil {
			t.Errorf("%s: Start accepted the conflict", name)
		}
	}

	for name, opts := range map[string][]Option{
		"negative faults":  {WithFaults(-1)},
		"zero checkpoints": {WithCheckpoints(0)},
		"negative workers": {WithWorkers(-2)},
		"zero reps":        {WithRepsPerGroup(0)},
		"bad confidence":   {WithSampling(1.5, 0.01)},
		"bad strategy":     {WithStrategy(Strategy(99))},
	} {
		if _, err := Start(ctx, "sha", opts...); err == nil {
			t.Errorf("%s: Start accepted the option", name)
		}
	}
	if _, err := Start(ctx, "nope"); err == nil {
		t.Error("Start accepted an unknown workload")
	}

	cancelled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := Start(cancelled, "sha"); !errors.Is(err, context.Canceled) {
		t.Errorf("Start on a cancelled context: %v", err)
	}
}

// TestLegacyCheckpointFlipPreserved: the deprecated Config path keeps the
// historic Checkpoints>0 strategy flip the v2 API rejects.
func TestLegacyCheckpointFlipPreserved(t *testing.T) {
	cfg := Config{Workload: "sha", Structure: RF, Faults: 10, Checkpoints: 3}.withDefaults()
	if cfg.Strategy != StrategyCheckpointed {
		t.Fatalf("legacy flip lost: strategy %v", cfg.Strategy)
	}
	// An explicit non-default strategy is never flipped.
	cfg = Config{Workload: "sha", Structure: RF, Strategy: StrategyForked, Checkpoints: 3}.withDefaults()
	if cfg.Strategy != StrategyForked {
		t.Fatalf("legacy flip overrode an explicit strategy: %v", cfg.Strategy)
	}
}

// TestSessionMatchesLegacyRun: the acceptance criterion that existing
// merlin.Run(cfg) callers produce bit-identical reports through the
// deprecated wrapper, and that the Session pipeline agrees with it.
func TestSessionMatchesLegacyRun(t *testing.T) {
	cfg := Config{Workload: "sha", Structure: RF, Faults: 300, Seed: 11, Strategy: StrategyForked}
	legacy, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	s, err := Start(ctx, "sha",
		WithStructure(RF), WithFaults(300), WithSeed(11), WithStrategy(StrategyForked))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dist != legacy.Dist || rep.AVF != legacy.AVF || rep.FIT != legacy.FIT ||
		rep.GoldenCycles != legacy.GoldenCycles || rep.Injected != legacy.Injected ||
		rep.FinalGroups != legacy.FinalGroups {
		t.Fatalf("Session report diverged from legacy Run:\nlegacy %+v\nv2     %+v", legacy, rep)
	}

	// Phases are idempotent: re-running returns the same products.
	red1, _ := s.Reduce()
	red2, _ := s.Reduce()
	if red1 != red2 {
		t.Error("Reduce is not memoized")
	}
	if err := s.Preprocess(ctx); err != nil {
		t.Errorf("second Preprocess: %v", err)
	}
}

// TestSessionProgressStream: the typed stream carries phase transitions,
// the cache outcome and one event per injected fault, in phase order.
func TestSessionProgressStream(t *testing.T) {
	var mu sync.Mutex
	var events []Progress
	ctx := context.Background()
	s, err := Start(ctx, "sha",
		WithStructure(RF), WithFaults(200), WithSeed(3),
		WithProgress(func(p Progress) {
			mu.Lock()
			defer mu.Unlock()
			events = append(events, p)
		}))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	var phases []string
	faults := 0
	for _, p := range events {
		switch p.Kind {
		case ProgressPhaseStart:
			phases = append(phases, "start:"+string(p.Phase))
		case ProgressPhaseDone:
			phases = append(phases, "done:"+string(p.Phase))
			if p.Phase == PhasePreprocess && p.Msg == "" {
				t.Error("preprocess done event without summary")
			}
		case ProgressFault:
			faults++
			if p.Phase != PhaseInject || p.Outcome >= Cancelled {
				t.Fatalf("bad fault event: %+v", p)
			}
		}
	}
	want := "start:preprocess,done:preprocess,start:reduce,done:reduce,start:inject,done:inject"
	if got := strings.Join(phases, ","); got != want {
		t.Fatalf("phase events = %s, want %s", got, want)
	}
	if faults != rep.Injected {
		t.Fatalf("stream carried %d fault events, report injected %d", faults, rep.Injected)
	}
}

// TestSessionInjectCancellation: cancelling mid-injection returns
// ctx.Err() plus a partial report with a consistent Cancelled count —
// the Session-level acceptance criterion.
func TestSessionInjectCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var seen atomic.Int64
	s, err := Start(ctx, "sha",
		WithStructure(RF), WithFaults(4000), WithSeed(7), WithWorkers(1),
		WithProgress(func(p Progress) {
			if p.Kind == ProgressFault && seen.Add(1) == 3 {
				cancel()
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep == nil {
		t.Fatal("cancelled Run returned no partial report")
	}
	if rep.Cancelled == 0 {
		t.Fatal("partial report has no Cancelled count")
	}
	if got := rep.Dist.Total() + rep.Cancelled; got != rep.Injected+rep.Cancelled || rep.Dist.Total() != rep.Injected {
		t.Fatalf("inconsistent partial report: dist %d injected %d cancelled %d",
			rep.Dist.Total(), rep.Injected, got)
	}

	// A fresh session over the same campaign completes and classifies
	// every representative the partial run left cancelled.
	full, err := Start(context.Background(), "sha",
		WithStructure(RF), WithFaults(4000), WithSeed(7), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	done, err := full.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if done.Cancelled != 0 || done.Injected != rep.Injected+rep.Cancelled {
		t.Fatalf("resubmitted campaign: injected %d cancelled %d, partial was %d+%d",
			done.Injected, done.Cancelled, rep.Injected, rep.Cancelled)
	}
}

// TestReportJSONCarriesNames: the text-marshaling satellite — structures,
// strategies and outcomes serialize as names, and the report round-trips.
func TestReportJSONCarriesNames(t *testing.T) {
	rep, err := Run(Config{Workload: "sha", Structure: RF, Faults: 120, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"Structure":"RF"`) {
		t.Errorf("report JSON carries no structure name: %s", raw)
	}
	if strings.Contains(string(raw), `"RepOutcomes":[0`) {
		t.Error("report JSON carries bare-int outcomes")
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.Structure != rep.Structure || len(back.RepOutcomes) != len(rep.RepOutcomes) {
		t.Fatal("round-tripped report diverged")
	}
	for i := range back.RepOutcomes {
		if back.RepOutcomes[i] != rep.RepOutcomes[i] {
			t.Fatalf("outcome %d diverged after round trip", i)
		}
	}

	// ParseStructure is the shared, case-insensitive structure parser.
	for name, want := range map[string]Structure{"rf": RF, "Sq": SQ, "L1D": L1D} {
		got, err := ParseStructure(name)
		if err != nil || got != want {
			t.Errorf("ParseStructure(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseStructure("ROB"); err == nil {
		t.Error("ParseStructure accepted an unknown structure")
	}
}

// TestSessionBaselineReusesGolden: Session.Baseline after Run must not
// repeat the golden run (one Artifacts, same golden cycles) and agrees
// with the deprecated RunBaseline.
func TestSessionBaselineReusesGolden(t *testing.T) {
	ctx := context.Background()
	s, err := Start(ctx, "fft", WithStructure(SQ), WithFaults(200), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	art := s.Artifacts()
	base, err := s.Baseline(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if s.Artifacts() != art {
		t.Error("Baseline re-ran Preprocess")
	}
	if base.GoldenCycles != rep.GoldenCycles || base.Faults != rep.InitialFaults {
		t.Fatalf("baseline diverged from session campaign: %+v", base)
	}

	legacy, err := RunBaseline(Config{Workload: "fft", Structure: SQ, Faults: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Dist != base.Dist {
		t.Fatalf("legacy baseline %v != session baseline %v", legacy.Dist, base.Dist)
	}
}
