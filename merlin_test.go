package merlin

import (
	"context"
	"math"
	"testing"

	"merlin/internal/campaign"
)

func TestPipelinePhases(t *testing.T) {
	cfg := Config{Workload: "sha", Structure: RF, Faults: 400, Seed: 1}
	a, err := Preprocess(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Faults) != 400 {
		t.Fatalf("faults = %d", len(a.Faults))
	}
	if a.Analysis == nil || len(a.Analysis.Intervals) == 0 {
		t.Fatal("no vulnerable intervals recorded")
	}
	red := a.Reduce()
	if red.ACEMasked+len(red.HitFaults) != 400 {
		t.Fatal("pruning does not partition the list")
	}
	if red.ReducedCount() > len(red.HitFaults) {
		t.Fatal("grouping increased the fault count")
	}
	rep := a.Inject()
	if rep.Dist.Total() != 400 {
		t.Fatalf("extrapolated total = %d", rep.Dist.Total())
	}
	if rep.FinalSpeedup < rep.ACESpeedup {
		t.Errorf("final speedup %.1f < ACE speedup %.1f", rep.FinalSpeedup, rep.ACESpeedup)
	}
	if rep.String() == "" {
		t.Error("empty report rendering")
	}
}

func TestRunEndToEnd(t *testing.T) {
	rep, err := Run(Config{Workload: "fft", Structure: SQ, Faults: 300, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.InitialFaults != 300 || rep.Injected == 0 {
		t.Fatalf("report: %+v", rep)
	}
	if rep.AVF < 0 || rep.AVF > 1 {
		t.Errorf("AVF = %v", rep.AVF)
	}
	// The ACE-like AVF upper-bounds the injection AVF up to sampling
	// noise (the paper's central conservative-bound observation).
	if rep.AVF > rep.ACELikeAVF+0.1 {
		t.Errorf("injection AVF %.4f exceeds ACE-like bound %.4f by too much", rep.AVF, rep.ACELikeAVF)
	}
}

func TestDerivedSampleSize(t *testing.T) {
	// With no explicit fault count, the Leveugle formula sizes the list.
	cfg := Config{Workload: "fft", Structure: SQ, Confidence: 0.95, ErrorMargin: 0.05, Seed: 3}
	a, err := Preprocess(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 95%/5% needs ~384 faults for large populations.
	if n := len(a.Faults); n < 350 || n > 420 {
		t.Errorf("derived sample size = %d, want ~384", n)
	}
}

// TestACELikePruningSound samples pruned faults and verifies by actual
// injection that every one of them is Masked: the guarantee MeRLiN's first
// phase rests on.
func TestACELikePruningSound(t *testing.T) {
	for _, wl := range []string{"sha", "qsort"} {
		for _, s := range []Structure{RF, SQ, L1D} {
			cfg := Config{Workload: wl, Structure: s, Faults: 300, Seed: 9}
			a, err := Preprocess(cfg)
			if err != nil {
				t.Fatal(err)
			}
			red := a.Reduce()
			checked := 0
			for i, f := range a.Faults {
				if red.IntervalOf[i] >= 0 {
					continue // not pruned
				}
				if checked++; checked > 25 {
					break // bound the cost per combination
				}
				if got := a.Runner.RunFault(f, &a.Golden.Result); got != Masked {
					t.Errorf("%s/%v: pruned fault %v injected as %v", wl, s, f, got)
				}
			}
			if checked == 0 {
				t.Errorf("%s/%v: no pruned faults to verify", wl, s)
			}
		}
	}
}

// TestExtrapolationMatchesFullInjection is the accuracy claim in miniature
// (paper Fig 14): injecting only representatives and extrapolating must
// closely match injecting the entire post-ACE list.
func TestExtrapolationMatchesFullInjection(t *testing.T) {
	cfg := Config{Workload: "stringsearch", Structure: RF, Faults: 500, Seed: 4}
	a, err := Preprocess(cfg)
	if err != nil {
		t.Fatal(err)
	}
	red := a.Reduce()

	// Full injection of the post-ACE list.
	full := make([]Fault, len(red.HitFaults))
	for i, fi := range red.HitFaults {
		full[i] = a.Faults[fi]
	}
	fullRes, err := a.Runner.RunAll(context.Background(), full, &a.Golden.Result)
	if err != nil {
		t.Fatal(err)
	}

	// MeRLiN path.
	repRes, err := a.Runner.RunAll(context.Background(), red.Reduced(), &a.Golden.Result)
	if err != nil {
		t.Fatal(err)
	}
	extra := red.PostACEExtrapolate(repRes.Outcomes)

	for o := Outcome(0); o < campaign.NumOutcomes; o++ {
		diff := math.Abs(extra.Share(o) - fullRes.Dist.Share(o))
		if diff > 0.10 {
			t.Errorf("class %v: extrapolated %.3f vs full %.3f (diff %.3f)",
				o, extra.Share(o), fullRes.Dist.Share(o), diff)
		}
	}
	t.Logf("full: %v", fullRes.Dist)
	t.Logf("merlin (%d of %d injected): %v", red.ReducedCount(), len(full), extra)

	// Homogeneity per the paper's eq. (1): must be high.
	outcomes := make([]Outcome, len(a.Faults))
	for i, fi := range red.HitFaults {
		outcomes[fi] = fullRes.Outcomes[i]
	}
	h := red.Homogeneity(outcomes)
	if h.Fine < 0.75 {
		t.Errorf("fine homogeneity %.3f implausibly low", h.Fine)
	}
	t.Logf("homogeneity: fine %.3f coarse %.3f perfect %.2f (%d groups, avg size %.1f)",
		h.Fine, h.Coarse, h.PerfectShare, h.Groups, h.AvgGroupSize)
}

func TestWorkloadsList(t *testing.T) {
	if len(Workloads("")) != 20 {
		t.Errorf("workloads = %d, want 20", len(Workloads("")))
	}
}

func TestUnknownWorkload(t *testing.T) {
	if _, err := Run(Config{Workload: "nope", Structure: RF, Faults: 10}); err == nil {
		t.Error("expected error for unknown workload")
	}
}
