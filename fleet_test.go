package merlin

import (
	"bufio"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"merlin/internal/campaign"
	"merlin/internal/fleet"
)

// normalizedReport strips the timing and locality counters that
// legitimately differ between a single-node run and a distributed or
// resumed one; everything left — outcomes, distributions, AVF/FIT, group
// accounting — must be bit-identical by determinism.
func normalizedReport(r *Report) Report {
	n := *r
	n.Wall, n.Serial, n.CloneTime = 0, 0, 0
	n.Clones, n.SimCycles = 0, 0
	n.CyclesPerSec = 0
	n.SnapshotHit, n.CacheHit = false, false
	return n
}

// campaignEvents drains a finished campaign's NDJSON event stream.
func campaignEvents(t *testing.T, base, id string) []CampaignEvent {
	t.Helper()
	resp, err := http.Get(base + "/campaigns/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var evs []CampaignEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 1<<20)
	for sc.Scan() {
		var ev CampaignEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		evs = append(evs, ev)
	}
	return evs
}

func countEvents(evs []CampaignEvent, typ string) int {
	n := 0
	for _, ev := range evs {
		if ev.Type == typ {
			n++
		}
	}
	return n
}

// joinFleet registers a worker with a coordinator, as the agent's join
// call would.
func joinFleet(t *testing.T, coordURL, id, addr string) {
	t.Helper()
	body := fmt.Sprintf(`{"id":%q,"addr":%q}`, id, addr)
	resp, err := http.Post(coordURL+"/fleet/join", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join %s: status %d", id, resp.StatusCode)
	}
}

// fleetWorker serves the real worker pipeline behind an httptest
// listener. dieAfter >= 0 turns it into a crashing worker: every shard
// request streams that many outcomes and then aborts the connection
// without a done marker — exactly what the coordinator sees when a
// worker process is killed mid-shard.
func fleetWorker(t *testing.T, coordURL string, cache *Cache, dieAfter int) *httptest.Server {
	t.Helper()
	run := workerShardRun(cache, nil, coordURL, nil)
	if dieAfter >= 0 {
		inner := run
		run = func(ctx context.Context, job fleet.ShardJob, emit func(fleet.Outcome)) error {
			var n atomic.Int32
			inner(ctx, job, func(o fleet.Outcome) {
				if int(n.Add(1)) <= dieAfter {
					emit(o)
				}
			})
			panic(http.ErrAbortHandler) // abort the response stream: no done marker
		}
	}
	agent := &fleet.Agent{ID: "test-worker", Run: run}
	hs := httptest.NewServer(agent.Handler())
	t.Cleanup(hs.Close)
	return hs
}

// TestFleetWorkerLossRequeue is the distributed acceptance test: a
// campaign sharded over two workers, one of which dies mid-shard, still
// completes — the lost reps requeue onto the survivor — and the merged
// report matches a single-node run of the same request bit-identically
// (timing counters aside).
func TestFleetWorkerLossRequeue(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const body = `{"workload":"sha","structure":"RF","faults":300,"seed":9,"strategy":"forked"}`

	// Single-node reference.
	ref := daemon(t, ServeOptions{Cache: cache})
	_, want := campaignWait(t, ref.URL, postCampaign(t, ref.URL, body))

	// Coordinator plus two workers; w1 streams two outcomes per shard and
	// then drops the connection, every time.
	coord := daemon(t, ServeOptions{Cache: cache})
	w1Cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w2Cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w1 := fleetWorker(t, coord.URL, w1Cache, 2)
	w2 := fleetWorker(t, coord.URL, w2Cache, -1)
	joinFleet(t, coord.URL, "w1", w1.URL)
	joinFleet(t, coord.URL, "w2", w2.URL)

	id := postCampaign(t, coord.URL, body)
	_, got := campaignWait(t, coord.URL, id)

	if !reflect.DeepEqual(normalizedReport(got), normalizedReport(want)) {
		t.Fatalf("distributed report diverged from single-node run:\n got %+v\nwant %+v",
			normalizedReport(got), normalizedReport(want))
	}
	if got.Injected != want.Injected || got.Dist != want.Dist {
		t.Fatalf("merged outcomes differ: got %v (%d injected), want %v (%d)",
			got.Dist, got.Injected, want.Dist, want.Injected)
	}

	evs := campaignEvents(t, coord.URL, id)
	if countEvents(evs, "requeue") == 0 {
		t.Fatal("no requeue event despite the worker dying mid-shard")
	}
	if n := countEvents(evs, "fault"); n != want.Injected {
		t.Fatalf("fault events = %d, want exactly %d (one per representative, duplicates merged)",
			n, want.Injected)
	}

	// The dead worker was dropped from the pool; the survivor remains.
	resp, err := http.Get(coord.URL + "/fleet/workers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Workers []fleet.WorkerInfo `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Workers) != 1 || list.Workers[0].ID != "w2" {
		t.Fatalf("pool after worker loss = %+v, want only w2", list.Workers)
	}

	// The survivor prefetched the golden artifact by content address
	// instead of repeating the golden run.
	if st := w2Cache.Stats(); st.Entries == 0 {
		t.Fatal("surviving worker never received the golden artifact")
	}
}

// TestFleetCoordinatorRestartResume is the durability acceptance test: a
// coordinator killed mid-campaign leaves a resumable record in the
// registry; its successor re-enqueues the campaign, re-injects only the
// unclassified remainder, and the final report matches an uninterrupted
// single-node run bit-identically.
func TestFleetCoordinatorRestartResume(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// replay over qsort is the slowest per-representative pipeline in the
	// suite (~7ms each over ~24 reps), which gives the poll below a wide,
	// deterministic window to kill the coordinator mid-injection.
	const body = `{"workload":"qsort","structure":"RF","faults":800,"seed":5,"strategy":"replay","workers":1}`

	// Uninterrupted reference.
	ref := daemon(t, ServeOptions{Cache: cache})
	_, want := campaignWait(t, ref.URL, postCampaign(t, ref.URL, body))

	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv1, err := NewServer(ServeOptions{Cache: cache, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	hs1 := httptest.NewServer(srv1.Handler())
	id := postCampaign(t, hs1.URL, body)

	// Wait for a few checkpointed outcomes, then kill the coordinator
	// mid-injection.
	type liveStatus struct {
		Status       string `json:"status"`
		Checkpointed int    `json:"checkpointed"`
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(hs1.URL + "/campaigns/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st liveStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.Status == "running" && st.Checkpointed >= 3 {
			break
		}
		if st.Status == "done" || st.Status == "failed" {
			t.Fatalf("campaign reached %q before the coordinator could be killed; raise the fault count", st.Status)
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign never checkpointed (status %q, %d outcomes)", st.Status, st.Checkpointed)
		}
		time.Sleep(time.Millisecond)
	}
	srv1.Close() // the "crash": in-flight campaign interrupted, record stays resumable
	hs1.Close()

	// Registry holds a running record with its checkpoint.
	rec, ok := reg.Get(id)
	if !ok {
		t.Fatal("interrupted record missing from registry")
	}
	if rec.Status != "running" || len(rec.Outcomes) < 3 {
		t.Fatalf("interrupted record = status %q with %d outcomes, want a resumable running record",
			rec.Status, len(rec.Outcomes))
	}
	checkpointed := len(rec.Outcomes)

	// Successor coordinator over the same registry: the campaign resumes
	// and completes.
	srv2, err := NewServer(ServeOptions{Cache: cache, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	hs2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(func() { hs2.Close(); srv2.Close() })
	_, got := campaignWait(t, hs2.URL, id)

	if !reflect.DeepEqual(normalizedReport(got), normalizedReport(want)) {
		t.Fatalf("resumed report diverged from uninterrupted run:\n got %+v\nwant %+v",
			normalizedReport(got), normalizedReport(want))
	}

	// The second incarnation resumed rather than restarted: its log opens
	// with the resume marker and re-injects only the remainder.
	evs := campaignEvents(t, hs2.URL, id)
	if len(evs) == 0 || evs[0].Type != "resumed" {
		t.Fatalf("restored log does not open with a resumed event: %+v", evs[:min(len(evs), 3)])
	}
	if n := countEvents(evs, "fault"); n > want.Injected-checkpointed {
		t.Fatalf("resumed incarnation injected %d faults, want <= %d (%d were checkpointed)",
			n, want.Injected-checkpointed, checkpointed)
	}

	// The finished record is durable too: it survives into a third
	// incarnation as a queryable report without re-running anything.
	srv3, err := NewServer(ServeOptions{Cache: cache, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	hs3 := httptest.NewServer(srv3.Handler())
	t.Cleanup(func() { hs3.Close(); srv3.Close() })
	_, restored := campaignWait(t, hs3.URL, id)
	if !reflect.DeepEqual(normalizedReport(restored), normalizedReport(want)) {
		t.Fatal("restored report diverged from the original")
	}
}

// benchSubmitAndWait drives one campaign through a daemon and blocks
// until it finishes, failing the benchmark on any non-done terminal.
func benchSubmitAndWait(b *testing.B, base, body string) {
	b.Helper()
	resp, err := http.Post(base+"/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	var submitted struct {
		ID string `json:"id"`
	}
	err = json.NewDecoder(resp.Body).Decode(&submitted)
	resp.Body.Close()
	if err != nil || submitted.ID == "" {
		b.Fatalf("submit: id=%q err=%v", submitted.ID, err)
	}
	deadline := time.Now().Add(120 * time.Second)
	for {
		resp, err := http.Get(base + "/campaigns/" + submitted.ID)
		if err != nil {
			b.Fatal(err)
		}
		var st struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
		switch st.Status {
		case "done":
			return
		case "failed", "cancelled":
			b.Fatalf("benchmark campaign %s: %s", st.Status, st.Error)
		}
		if time.Now().After(deadline) {
			b.Fatal("benchmark campaign never finished")
		}
		time.Sleep(time.Millisecond)
	}
}

// benchFleetWall is the shared harness of the fleet benchmarks: a
// single-structure replay campaign with per-node parallelism pinned to
// one worker thread ("workers":1), so the wall-clock ratio between the
// local daemon and a two-worker fleet isolates what sharding buys at
// fixed per-node compute. The golden artifact is warmed outside the
// timer (one throwaway campaign, which also prefetches it into every
// fleet worker's cache), leaving the measured loop dominated by the
// injection phase plus coordination overhead.
func benchFleetWall(b *testing.B, nWorkers int) {
	b.Helper()
	cache, err := OpenCache(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	srv, err := NewServer(ServeOptions{Cache: cache})
	if err != nil {
		b.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer func() { hs.Close(); srv.Close() }()

	for i := 0; i < nWorkers; i++ {
		wc, err := OpenCache(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		agent := &fleet.Agent{ID: fmt.Sprintf("bench-w%d", i), Run: workerShardRun(wc, nil, hs.URL, nil)}
		ws := httptest.NewServer(agent.Handler())
		defer ws.Close()
		resp, err := http.Post(hs.URL+"/fleet/join", "application/json",
			strings.NewReader(fmt.Sprintf(`{"id":"bench-w%d","addr":%q}`, i, ws.URL)))
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
	}

	const body = `{"workload":"qsort","structure":"L1D","faults":3000,"seed":5,"strategy":"replay","workers":1}`
	benchSubmitAndWait(b, hs.URL, body) // warm golden artifact + worker caches
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		benchSubmitAndWait(b, hs.URL, body)
	}
	b.ReportMetric(time.Since(start).Seconds()*1000/float64(b.N), "wall-ms")
}

// BenchmarkFleet_Local times the campaign on a plain single-process
// daemon — the baseline the fleet is measured against.
func BenchmarkFleet_Local(b *testing.B) { benchFleetWall(b, 0) }

// BenchmarkFleet_TwoWorkers times the same campaign sharded across two
// fleet workers.
func BenchmarkFleet_TwoWorkers(b *testing.B) { benchFleetWall(b, 2) }

// TestLedgerMismatchedDuplicate: the merge point tolerates verbatim
// duplicates but turns a contradicting one into ErrDeterminismViolation —
// recorded once, surfaced as an error event, never merged.
func TestLedgerMismatchedDuplicate(t *testing.T) {
	var evs []CampaignEvent
	led := newOutcomeLedger(4, "RF",
		func(ev CampaignEvent) { evs = append(evs, ev) },
		func(map[int]string) {})

	led.record(0, "f0", campaign.Masked)
	led.record(0, "f0", campaign.Masked) // verbatim duplicate: benign
	if err := led.err(); err != nil {
		t.Fatalf("verbatim duplicate tripped the violation: %v", err)
	}

	led.record(0, "f0", campaign.SDC) // contradiction
	err := led.err()
	if !errors.Is(err, ErrDeterminismViolation) {
		t.Fatalf("err = %v, want ErrDeterminismViolation", err)
	}
	for _, frag := range []string{"representative 0", `"Masked"`, `"SDC"`} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("violation diagnostic %q lacks %q", err, frag)
		}
	}
	if led.outcomes[0] != campaign.Masked {
		t.Fatalf("contradiction overwrote the merged outcome: %v", led.outcomes[0])
	}

	led.record(0, "f0", campaign.Crash) // repeat offender: no event spam
	nerr := 0
	for _, ev := range evs {
		if ev.Type == "error" {
			nerr++
		}
	}
	if nerr != 1 {
		t.Fatalf("%d error events for one violation, want exactly 1", nerr)
	}
}

// TestPrefetchArtifactDigestMismatch: a worker rejects artifact bytes
// whose sha256 disagrees with the coordinator's advertised digest — the
// in-transit bit flip never enters the cache — while intact bytes under
// the same protocol land normally.
func TestPrefetchArtifactDigestMismatch(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Populate the coordinator cache with one real golden artifact.
	ref := daemon(t, ServeOptions{Cache: cache})
	campaignWait(t, ref.URL, postCampaign(t, ref.URL,
		`{"workload":"sha","structure":"RF","faults":300,"seed":9,"strategy":"forked"}`))
	files, err := filepath.Glob(filepath.Join(dir, "*.artifact"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no artifact landed in the cache: %v (%v)", files, err)
	}
	id := strings.TrimSuffix(filepath.Base(files[0]), ".artifact")
	raw, ok := cache.GetRaw(id)
	if !ok {
		t.Fatalf("artifact %s unreadable", id)
	}
	sum := sha256.Sum256(raw)
	digest := hex.EncodeToString(sum[:])

	// A chaos coordinator: advertises the true digest, serves the bytes
	// with one bit flipped when corrupt is set.
	var corrupt atomic.Bool
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body := raw
		if corrupt.Load() {
			body = append([]byte(nil), raw...)
			body[len(body)/2] ^= 0x40
		}
		w.Header().Set(artifactDigestHeader, digest)
		w.Write(body)
	}))
	defer hs.Close()

	wcache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	job := fleet.ShardJob{ArtifactID: id, ArtifactURL: "/artifacts/" + id}

	corrupt.Store(true)
	prefetchArtifact(context.Background(), hs.Client(), wcache, hs.URL, job)
	if wcache.HasRaw(id) {
		t.Fatal("corrupted artifact bytes entered the worker cache past the digest check")
	}

	corrupt.Store(false)
	prefetchArtifact(context.Background(), hs.Client(), wcache, hs.URL, job)
	if !wcache.HasRaw(id) {
		t.Fatal("intact artifact bytes rejected despite a matching digest")
	}
}
