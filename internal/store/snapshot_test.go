package store

import (
	"sync"
	"testing"

	"merlin/internal/campaign"
	"merlin/internal/cpu"
	"merlin/internal/workloads"
)

func snapRunner(t *testing.T, workload string) (*campaign.Runner, uint64) {
	t.Helper()
	w, err := workloads.Get(workload)
	if err != nil {
		t.Fatal(err)
	}
	r := campaign.NewRunner(campaign.Target{Cfg: cpu.DefaultConfig(), Prog: w.Program()})
	g, err := r.RunGolden()
	if err != nil {
		t.Fatal(err)
	}
	return r, g.Result.Cycles
}

// TestSnapshotCacheHitMiss: first build misses, repeats hit and return the
// identical immutable set; stats track both.
func TestSnapshotCacheHitMiss(t *testing.T) {
	r, cycles := snapRunner(t, "sha")
	c := NewSnapshotCache(0)
	r.Snapshots = c

	key := campaign.SnapshotKey{Workload: "sha", CPU: r.Cfg, K: 4, GoldenCycles: cycles}
	builds := 0
	build := func() *campaign.CheckpointSet {
		builds++
		return r.BuildCheckpoints(4, cycles)
	}

	set1, hit := c.GetOrBuild(key, build)
	if hit || set1 == nil || builds != 1 {
		t.Fatalf("first GetOrBuild: hit=%v builds=%d", hit, builds)
	}
	set2, hit := c.GetOrBuild(key, build)
	if !hit || set2 != set1 || builds != 1 {
		t.Fatalf("second GetOrBuild: hit=%v same=%v builds=%d", hit, set2 == set1, builds)
	}

	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes <= 0 {
		t.Errorf("stats after hit+miss: %+v", st)
	}
	if st.Bytes != set1.MemBytes() {
		t.Errorf("accounted bytes %d != set estimate %d", st.Bytes, set1.MemBytes())
	}
}

// TestSnapshotCacheLRUBudget: a budget big enough for one ladder must
// evict the least recently used when a second arrives, and always retain
// the newest even when it alone exceeds the budget.
func TestSnapshotCacheLRUBudget(t *testing.T) {
	r, cycles := snapRunner(t, "sha")
	one := r.BuildCheckpoints(3, cycles)
	c := NewSnapshotCache(one.MemBytes() + one.MemBytes()/2) // fits one, not two

	keyK := func(k int) campaign.SnapshotKey {
		return campaign.SnapshotKey{Workload: "sha", CPU: r.Cfg, K: k, GoldenCycles: cycles}
	}
	c.GetOrBuild(keyK(3), func() *campaign.CheckpointSet { return r.BuildCheckpoints(3, cycles) })
	c.GetOrBuild(keyK(5), func() *campaign.CheckpointSet { return r.BuildCheckpoints(5, cycles) })

	st := c.Stats()
	if st.Entries != 1 || st.Evictions != 1 {
		t.Fatalf("after exceeding budget: %+v", st)
	}
	// The newest key must be the survivor: re-requesting it hits...
	if _, hit := c.GetOrBuild(keyK(5), func() *campaign.CheckpointSet { t.Fatal("unexpected rebuild"); return nil }); !hit {
		t.Error("most recent ladder was evicted")
	}
	// ...and the evicted one rebuilds.
	rebuilt := false
	if _, hit := c.GetOrBuild(keyK(3), func() *campaign.CheckpointSet {
		rebuilt = true
		return r.BuildCheckpoints(3, cycles)
	}); hit || !rebuilt {
		t.Error("evicted ladder was not rebuilt")
	}
}

// TestSnapshotCacheConcurrentBuild: concurrent GetOrBuild calls for one
// key must produce exactly one build, with latecomers reporting hits on
// the shared set.
func TestSnapshotCacheConcurrentBuild(t *testing.T) {
	r, cycles := snapRunner(t, "sha")
	c := NewSnapshotCache(0)
	key := campaign.SnapshotKey{Workload: "sha", CPU: r.Cfg, K: 6, GoldenCycles: cycles}

	var mu sync.Mutex
	builds := 0
	var wg sync.WaitGroup
	sets := make([]*campaign.CheckpointSet, 8)
	for i := range sets {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			set, _ := c.GetOrBuild(key, func() *campaign.CheckpointSet {
				mu.Lock()
				builds++
				mu.Unlock()
				return r.BuildCheckpoints(6, cycles)
			})
			sets[i] = set
		}(i)
	}
	wg.Wait()
	if builds != 1 {
		t.Fatalf("concurrent GetOrBuild built %d ladders, want 1", builds)
	}
	for i, set := range sets {
		if set != sets[0] {
			t.Fatalf("caller %d received a different set", i)
		}
	}
}
