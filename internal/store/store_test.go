package store

import (
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"merlin/internal/cpu"
	"merlin/internal/lifetime"
)

func sampleKey() Key {
	return NewKey("qsort", cpu.DefaultConfig(), 500_000_000, lifetime.StructRF)
}

func sampleArtifact() *Artifact {
	return &Artifact{
		Workload: "qsort",
		Structures: []StructureTrace{{
			Structure:  lifetime.StructRF,
			Entries:    256,
			EntryBytes: 64,
			Events: []lifetime.Event{
				{Seq: 1, Cycle: 10, Entry: 3, Mask: 0xff, Kind: lifetime.EvWrite},
				{Seq: 2, Cycle: 20, CommitSeq: 5, Entry: 3, Mask: 0xff, RIP: 42, Kind: lifetime.EvRead, UPC: 1},
			},
			Intervals: []lifetime.Interval{
				{Entry: 3, Mask: 0xff, Start: 10, End: 20, EndSeq: 5, RIP: 42, UPC: 1},
			},
		}},
		Golden: cpu.RunResult{
			Halt:   cpu.HaltOK,
			Cycles: 12345,
			Output: []uint64{1, 2, 3, 0xdeadbeef},
			ExcLog: []uint32{7, 9},
		},
		Branches: []lifetime.BranchRec{
			{CommitSeq: 5, RIP: 42, Target: 43, Taken: true},
		},
		CheckpointCycles: []uint64{0, 4096, 8192},
	}
}

// TestRoundTrip is the core cache guarantee: what Preprocess stored is
// what a later campaign reads back, bit for bit.
func TestRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := sampleKey()
	want := sampleArtifact()

	if _, ok := s.Get(k); ok {
		t.Fatal("Get on empty store reported a hit")
	}
	if err := s.Put(k, want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(k)
	if !ok {
		t.Fatal("Get after Put missed")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip not bit-identical:\n got %+v\nwant %+v", got, want)
	}

	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Errors != 0 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 put / 0 errors", st)
	}
	if st.Entries != 1 || st.Bytes == 0 {
		t.Fatalf("stats disk totals = %+v, want 1 entry with nonzero bytes", st)
	}
}

// TestKeyID checks that the content address separates every key dimension
// and is stable for equal keys.
func TestKeyID(t *testing.T) {
	base := sampleKey()
	if base.ID() != sampleKey().ID() {
		t.Fatal("equal keys produced different IDs")
	}
	variants := []Key{
		NewKey("sha", base.CPU, base.Budget, lifetime.StructRF),
		NewKey(base.Workload, base.CPU.WithRF(128), base.Budget, lifetime.StructRF),
		NewKey(base.Workload, base.CPU, 1000, lifetime.StructRF),
		NewKey(base.Workload, base.CPU, base.Budget, lifetime.StructSQ),
		NewKey(base.Workload, base.CPU, base.Budget, lifetime.StructRF, lifetime.StructSQ),
		NewKey(base.Workload, base.CPU, base.Budget, lifetime.StructRF, lifetime.StructSQ, lifetime.StructL1D),
	}
	seen := map[string]bool{base.ID(): true}
	for _, v := range variants {
		if seen[v.ID()] {
			t.Fatalf("key %+v collides with a prior key", v)
		}
		seen[v.ID()] = true
	}
}

// TestKeyStructureSetCanonical: the structure set is a set — request
// order and duplicates must not split the cache, and hand-built keys must
// address the same artifact as NewKey-built ones.
func TestKeyStructureSetCanonical(t *testing.T) {
	base := NewKey("qsort", cpu.DefaultConfig(), 1000, lifetime.StructRF, lifetime.StructSQ, lifetime.StructL1D)
	same := []Key{
		NewKey("qsort", cpu.DefaultConfig(), 1000, lifetime.StructL1D, lifetime.StructSQ, lifetime.StructRF),
		NewKey("qsort", cpu.DefaultConfig(), 1000, lifetime.StructSQ, lifetime.StructRF, lifetime.StructL1D, lifetime.StructRF),
		{Workload: "qsort", CPU: cpu.DefaultConfig(), Budget: 1000,
			Structures: []lifetime.StructureID{lifetime.StructL1D, lifetime.StructRF, lifetime.StructSQ}},
	}
	for i, k := range same {
		if k.ID() != base.ID() {
			t.Fatalf("variant %d (%v) maps to a different ID than the canonical key", i, k.Structures)
		}
	}
}

// TestCorruptionIsAMiss: a flipped payload byte, a truncated file, and a
// wrong-magic file must all read as misses, never as wrong data.
func TestCorruptionIsAMiss(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	k := sampleKey()
	if err := s.Put(k, sampleArtifact()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, k.ID()+".artifact")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := map[string][]byte{
		"bit flip":  append(append([]byte{}, raw[:len(raw)-1]...), raw[len(raw)-1]^1),
		"truncated": raw[:len(raw)/2],
		"bad magic": append([]byte("not-an-artifact\n"), raw...),
		"empty":     {},
	}
	for name, mutated := range cases {
		if err := os.WriteFile(path, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get(k); ok {
			t.Errorf("%s: corrupt artifact reported as a hit", name)
		}
	}
	if st := s.Stats(); st.Errors != uint64(len(cases)) {
		t.Errorf("stats errors = %d, want %d (every corrupt read counted)", st.Errors, len(cases))
	}

	// A fresh Put repairs the slot.
	if err := s.Put(k, sampleArtifact()); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); !ok {
		t.Fatal("Get after repair Put missed")
	}
}

// TestMismatchedKeyEcho: an artifact whose embedded workload/structure
// disagree with the key it is filed under is rejected.
func TestMismatchedKeyEcho(t *testing.T) {
	s, _ := Open(t.TempDir())
	k := sampleKey()
	a := sampleArtifact()
	a.Workload = "sha" // embedded echo disagrees with k
	if err := s.Put(k, a); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("key-mismatched artifact reported as a hit")
	}
}

// TestAnalysisRehydration: the Analysis rebuilt from cached intervals
// answers Find and AVF exactly like one built from the live trace.
func TestAnalysisRehydration(t *testing.T) {
	a := sampleArtifact()
	an, ok := a.Analysis(lifetime.StructRF)
	if !ok {
		t.Fatal("artifact lost its RF trace")
	}
	if got := an.AVF(); got == 0 {
		t.Fatal("rehydrated analysis has zero AVF despite a vulnerable interval")
	}
	if _, ok := an.Find(3, 0, 15); !ok {
		t.Fatal("rehydrated analysis misses a covered flip")
	}
	if _, ok := an.Find(3, 0, 25); ok {
		t.Fatal("rehydrated analysis covers a flip outside all intervals")
	}
	if _, ok := a.Analysis(lifetime.StructSQ); ok {
		t.Fatal("artifact served an analysis for a structure it never traced")
	}
}

// TestMultiStructureRoundTrip: a batch artifact carries one trace per
// structure and serves each back bit-identically under one key.
func TestMultiStructureRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	a := sampleArtifact()
	a.Structures = append(a.Structures, StructureTrace{
		Structure:  lifetime.StructSQ,
		Entries:    64,
		EntryBytes: 8,
		Events: []lifetime.Event{
			{Seq: 3, Cycle: 30, Entry: 1, Mask: 0x0f, Kind: lifetime.EvWrite},
		},
		Intervals: []lifetime.Interval{
			{Entry: 1, Mask: 0x0f, Start: 30, End: 40, EndSeq: 9, RIP: 50},
		},
	})
	k := NewKey("qsort", cpu.DefaultConfig(), 500_000_000, lifetime.StructSQ, lifetime.StructRF)
	if err := s.Put(k, a); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(k)
	if !ok {
		t.Fatal("multi-structure Get after Put missed")
	}
	if !reflect.DeepEqual(got, a) {
		t.Fatalf("multi-structure round trip not bit-identical:\n got %+v\nwant %+v", got, a)
	}
	for _, want := range []lifetime.StructureID{lifetime.StructRF, lifetime.StructSQ} {
		if _, ok := got.Trace(want); !ok {
			t.Fatalf("round-tripped artifact lost the %v trace", want)
		}
	}
	// The single-structure key must not be served the batch artifact: its
	// structure set differs.
	if _, ok := s.Get(NewKey("qsort", cpu.DefaultConfig(), 500_000_000, lifetime.StructRF)); ok {
		t.Fatal("single-structure key hit a multi-structure artifact")
	}
}

// TestOldFormatVersionIsACleanMiss: a version-1 (pre-batch) artifact file
// sitting at a current key's path reads as a miss — the format bump
// invalidates it — and a fresh Put repairs the slot.
func TestOldFormatVersionIsACleanMiss(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	k := sampleKey()
	if err := s.Put(k, sampleArtifact()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, k.ID()+".artifact")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite the file under the previous format's magic line, keeping the
	// (now version-skewed) payload intact.
	old := append([]byte("merlin-artifact/1\n"), raw[len(fileMagic):]...)
	if err := os.WriteFile(path, old, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); ok {
		t.Fatal("version-1 artifact served as a hit under the version-2 reader")
	}
	if st := s.Stats(); st.Errors == 0 {
		t.Fatal("version skew not counted as a read error")
	}
	if err := s.Put(k, sampleArtifact()); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(k); !ok {
		t.Fatal("Get after repair Put missed")
	}
}

// TestConcurrentAccess hammers one slot from many goroutines; the race
// detector plus the atomic-rename protocol guarantee readers only ever
// see complete artifacts.
func TestConcurrentAccess(t *testing.T) {
	s, _ := Open(t.TempDir())
	k := sampleKey()
	want := sampleArtifact()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				if err := s.Put(k, want); err != nil {
					t.Error(err)
					return
				}
				if got, ok := s.Get(k); ok && !reflect.DeepEqual(got, want) {
					t.Error("reader observed a partial or mutated artifact")
					return
				}
			}
		}()
	}
	wg.Wait()
}
