// Snapshot cache: the in-memory sibling of the on-disk artifact store.
// Machine snapshots (checkpoint ladders) are not serializable — they are
// rebuilt deterministically — but rebuilding still costs one golden-run
// replay per campaign. The SnapshotCache keeps built ladders in memory,
// keyed by everything they depend on, so concurrent and repeat campaigns
// over the same (workload, CPU config, golden length) share one immutable
// CheckpointSet and skip the rebuild entirely.
package store

import (
	"container/list"
	"sync"

	"merlin/internal/campaign"
)

// DefaultSnapshotBudget bounds the resident bytes of cached checkpoint
// ladders: roughly a handful of full-size ladders on the paper's baseline
// configuration, small next to the daemon's working set.
const DefaultSnapshotBudget = 512 << 20

// SnapshotCache is a byte-budgeted LRU of checkpoint ladders implementing
// campaign.SnapshotSource. It is safe for concurrent use; concurrent
// GetOrBuild calls for one key are deduplicated so the ladder is built
// once and shared (every CheckpointSet is immutable and safe to clone
// from any number of goroutines).
//
// Sizes are estimated by CheckpointSet.MemBytes, a conservative
// (over-counting) bound, so heavy multi-tenant traffic cannot hold
// unbounded snapshots: the least-recently-used ladders are dropped once
// the budget is exceeded. The most recently built ladder is always
// retained even if it alone exceeds the budget — repeat campaigns must be
// able to hit. Evicted sets still in use by running campaigns stay valid;
// eviction only drops the cache's reference.
type SnapshotCache struct {
	mu       sync.Mutex
	budget   int64
	bytes    int64
	entries  map[campaign.SnapshotKey]*snapEntry
	order    *list.List // front = most recently used
	inflight map[campaign.SnapshotKey]*snapBuild

	hits, misses, evictions uint64
}

type snapEntry struct {
	key   campaign.SnapshotKey
	set   *campaign.CheckpointSet
	bytes int64
	elem  *list.Element
}

// snapBuild tracks one in-progress ladder build; latecomers wait on done
// and share the result instead of building their own.
type snapBuild struct {
	done chan struct{}
	set  *campaign.CheckpointSet
}

// NewSnapshotCache returns a cache bounded to budget resident bytes;
// budget <= 0 means DefaultSnapshotBudget.
func NewSnapshotCache(budget int64) *SnapshotCache {
	if budget <= 0 {
		budget = DefaultSnapshotBudget
	}
	return &SnapshotCache{
		budget:   budget,
		entries:  make(map[campaign.SnapshotKey]*snapEntry),
		order:    list.New(),
		inflight: make(map[campaign.SnapshotKey]*snapBuild),
	}
}

// GetOrBuild implements campaign.SnapshotSource: it returns the cached
// ladder for key, joining an in-progress build when one is underway, and
// otherwise builds, caches and returns it. hit reports that the caller
// was served without triggering a rebuild of its own. If the builder a
// waiter joined panicked (or produced nil), the waiter retries — becoming
// the next builder itself rather than handing a nil set to a scheduler.
func (c *SnapshotCache) GetOrBuild(key campaign.SnapshotKey, build func() *campaign.CheckpointSet) (*campaign.CheckpointSet, bool) {
	for {
		c.mu.Lock()
		if e, ok := c.entries[key]; ok {
			c.order.MoveToFront(e.elem)
			c.hits++
			c.mu.Unlock()
			return e.set, true
		}
		if b, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			<-b.done
			if b.set != nil {
				c.mu.Lock()
				c.hits++
				c.mu.Unlock()
				return b.set, true
			}
			continue // the build died; race to become the next builder
		}
		b := &snapBuild{done: make(chan struct{})}
		c.inflight[key] = b
		c.misses++
		c.mu.Unlock()
		return c.runBuild(key, b, build)
	}
}

// runBuild executes one ladder build outside the lock (construction
// replays a golden run and must not serialize unrelated campaigns) and
// publishes the result. On a panic the inflight slot is cleared with
// b.set still nil — waiters retry — and the panic propagates to the
// building campaign, which records it as failed.
func (c *SnapshotCache) runBuild(key campaign.SnapshotKey, b *snapBuild, build func() *campaign.CheckpointSet) (*campaign.CheckpointSet, bool) {
	defer func() {
		c.mu.Lock()
		delete(c.inflight, key)
		c.mu.Unlock()
		close(b.done)
	}()
	set := build()
	b.set = set
	if set == nil {
		return nil, false
	}

	c.mu.Lock()
	if _, ok := c.entries[key]; !ok { // a racing builder may have stored first
		e := &snapEntry{key: key, set: set, bytes: set.MemBytes()}
		e.elem = c.order.PushFront(e)
		c.entries[key] = e
		c.bytes += e.bytes
		c.evictLocked()
	}
	c.mu.Unlock()
	return set, false
}

// evictLocked drops least-recently-used ladders until the cache fits its
// budget, always retaining the most recently used entry. Caller holds mu.
func (c *SnapshotCache) evictLocked() {
	for c.bytes > c.budget && c.order.Len() > 1 {
		back := c.order.Back()
		e := back.Value.(*snapEntry)
		c.order.Remove(back)
		delete(c.entries, e.key)
		c.bytes -= e.bytes
		c.evictions++
	}
}

// SnapshotStats is a point-in-time snapshot of cache effectiveness,
// served by the daemon's /statsz endpoint.
type SnapshotStats struct {
	Hits      uint64 `json:"hits"`      // ladders served without a rebuild
	Misses    uint64 `json:"misses"`    // ladders built (once per unique key)
	Evictions uint64 `json:"evictions"` // ladders dropped by the byte budget
	Entries   int    `json:"entries"`   // ladders currently cached
	Bytes     int64  `json:"bytes"`     // estimated resident bytes (conservative)
	Budget    int64  `json:"budget"`    // configured byte budget
}

// Stats returns the cache counters.
func (c *SnapshotCache) Stats() SnapshotStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return SnapshotStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   len(c.entries),
		Bytes:     c.bytes,
		Budget:    c.budget,
	}
}
