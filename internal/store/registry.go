package store

// This file is the durable campaign registry: the on-disk complement of
// the daemon's in-memory campaign map. The artifact cache (store.go)
// already survives restarts; the registry extends the same treatment —
// gob payloads behind a magic/version header and a sha256 checksum,
// written with temp-file + atomic rename — to the campaign records
// themselves, so a coordinator restart resumes queued and running
// campaigns instead of silently forgetting them.
//
// The registry is deliberately pipeline-agnostic: Request and Report are
// opaque JSON blobs (the daemon's own wire forms), and Outcomes carries
// the per-representative classifications a restarted coordinator needs to
// resume an interrupted injection phase without repeating finished work.
// Records are small (the fault lists and traces live in the artifact
// cache, addressed by content), so one file per campaign keeps writes
// atomic and crash-safe without a log format.

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// registryVersion invalidates persisted campaign records when their
// serialized layout changes incompatibly; old files read as absent.
const registryVersion = 1

// recordMagic guards against reading non-record files, and its embedded
// version against layout skew between binaries sharing a registry dir.
var recordMagic = []byte(fmt.Sprintf("merlin-campaign/%d\n", registryVersion))

// CampaignRecord is the durable form of one daemon submission. Request
// and Report are opaque JSON (the daemon's wire forms); the registry
// never interprets them. Outcomes maps representative indices (positions
// in the campaign's reduced fault list) to fault-effect class names — the
// checkpointed partial results a restarted coordinator resumes from.
type CampaignRecord struct {
	ID        string
	Kind      string
	Status    string
	Request   []byte
	Report    []byte
	Error     string
	Submitted time.Time
	Started   time.Time
	Finished  time.Time
	Outcomes  map[int]string
}

// RegistryStats is a point-in-time snapshot of registry effectiveness,
// folded into the daemon's /statsz.
type RegistryStats struct {
	Puts        uint64 `json:"puts"`        // records written
	Deletes     uint64 `json:"deletes"`     // records removed
	Errors      uint64 `json:"errors"`      // corrupt/unreadable files skipped
	Quarantined uint64 `json:"quarantined"` // corrupt records moved aside to .corrupt

	Records int   `json:"records"` // record files on disk
	Corrupt int   `json:"corrupt"` // quarantined .corrupt files on disk
	Bytes   int64 `json:"bytes"`   // total record bytes on disk
}

// Registry is the durable campaign registry. The zero value is not
// usable; call OpenRegistry. Safe for concurrent use: writes are atomic
// renames, and concurrent writers of the same id last-write-win, which is
// benign because only one daemon process owns a record at a time.
type Registry struct {
	dir string
	fs  FS

	puts, deletes, errs, quarantined atomic.Uint64
}

// OpenRegistry creates (if needed) and opens a campaign registry rooted
// at dir on the real filesystem.
func OpenRegistry(dir string) (*Registry, error) {
	return OpenRegistryOn(OSFS{}, dir)
}

// OpenRegistryOn creates (if needed) and opens a campaign registry
// rooted at dir on the given filesystem. Fault-injection harnesses pass
// a chaos FS here; everything else uses OpenRegistry.
func OpenRegistryOn(fsys FS, dir string) (*Registry, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty registry directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Registry{dir: dir, fs: fsys}, nil
}

// Dir returns the registry root.
func (r *Registry) Dir() string { return r.dir }

// recordPath maps a campaign id to its file; ids that could escape the
// registry directory are rejected by the callers via validID.
func (r *Registry) recordPath(id string) string {
	return filepath.Join(r.dir, id+".campaign")
}

// validID accepts the daemon's generated ids (letter prefix + digits) and
// rejects anything that could traverse outside the registry directory.
func validID(id string) bool {
	if id == "" || len(id) > 128 {
		return false
	}
	for _, c := range id {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

// Put persists one campaign record atomically and durably — the temp
// file is fsynced before the rename, so a checkpoint that reported
// success survives power loss, not just process death — replacing any
// previous version of the same id.
func (r *Registry) Put(rec CampaignRecord) error {
	if !validID(rec.ID) {
		return fmt.Errorf("store: invalid campaign id %q", rec.ID)
	}
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(&rec); err != nil {
		return fmt.Errorf("store: encoding campaign record: %w", err)
	}
	sum := sha256.Sum256(body.Bytes())
	out := make([]byte, 0, len(recordMagic)+len(sum)+body.Len())
	out = append(out, recordMagic...)
	out = append(out, sum[:]...)
	out = append(out, body.Bytes()...)

	if err := r.fs.WriteFileAtomic(r.recordPath(rec.ID), out); err != nil {
		return err
	}
	r.puts.Add(1)
	return nil
}

// quarantine moves a record file the registry cannot vouch for aside to
// <name>.corrupt: out of every future scan, but preserved on disk for
// forensics (a torn write after a power cut is evidence, not garbage).
// The move-aside also keeps a persistently bad file from inflating the
// error counter on every List.
func (r *Registry) quarantine(name string) {
	src := filepath.Join(r.dir, name)
	if err := r.fs.Rename(src, src+".corrupt"); err == nil {
		r.quarantined.Add(1)
	}
}

// Get loads one record by id. A missing, corrupt or truncated file reads
// as absent (ok=false), never as an error: a record the registry cannot
// vouch for is a record it does not have. Corrupt files are quarantined
// to .corrupt so the damage is visible in Stats instead of silently
// re-read forever.
func (r *Registry) Get(id string) (CampaignRecord, bool) {
	if !validID(id) {
		return CampaignRecord{}, false
	}
	raw, err := r.fs.ReadFile(r.recordPath(id))
	if err != nil {
		return CampaignRecord{}, false
	}
	rec, err := decodeRecord(raw)
	if err != nil {
		r.errs.Add(1)
		r.quarantine(id + ".campaign")
		return CampaignRecord{}, false
	}
	return rec, true
}

// List returns every readable record, sorted by id (the daemon's ids are
// zero-padded, so id order is submission order per kind). Corrupt files
// are quarantined, counted, and skipped, not returned: a restart must
// never be wedged by one bad record, and a torn checkpoint reads exactly
// like a crash before the checkpoint — absent.
func (r *Registry) List() ([]CampaignRecord, error) {
	entries, err := r.fs.ReadDir(r.dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var recs []CampaignRecord
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".campaign") {
			continue
		}
		raw, err := r.fs.ReadFile(filepath.Join(r.dir, name))
		if err != nil {
			r.errs.Add(1)
			continue
		}
		rec, err := decodeRecord(raw)
		if err != nil || rec.ID+".campaign" != name {
			r.errs.Add(1)
			r.quarantine(name)
			continue
		}
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
	return recs, nil
}

// Delete removes one record; deleting an absent record is a no-op.
func (r *Registry) Delete(id string) error {
	if !validID(id) {
		return fmt.Errorf("store: invalid campaign id %q", id)
	}
	err := r.fs.Remove(r.recordPath(id))
	if err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("store: %w", err)
	}
	if err == nil {
		r.deletes.Add(1)
	}
	return nil
}

// Stats snapshots the registry counters and walks the directory for
// on-disk totals.
func (r *Registry) Stats() RegistryStats {
	st := RegistryStats{
		Puts:        r.puts.Load(),
		Deletes:     r.deletes.Load(),
		Errors:      r.errs.Load(),
		Quarantined: r.quarantined.Load(),
	}
	entries, _ := r.fs.ReadDir(r.dir)
	for _, e := range entries {
		switch {
		case strings.HasSuffix(e.Name(), ".corrupt"):
			st.Corrupt++
			continue
		case !strings.HasSuffix(e.Name(), ".campaign"):
			continue
		}
		st.Records++
		if info, err := e.Info(); err == nil {
			st.Bytes += info.Size()
		}
	}
	return st
}

// decodeRecord verifies magic and checksum and decodes the payload.
func decodeRecord(raw []byte) (CampaignRecord, error) {
	var rec CampaignRecord
	if !bytes.HasPrefix(raw, recordMagic) {
		return rec, fmt.Errorf("store: bad record magic or version")
	}
	raw = raw[len(recordMagic):]
	if len(raw) < sha256.Size {
		return rec, fmt.Errorf("store: truncated campaign record")
	}
	want := raw[:sha256.Size]
	body := raw[sha256.Size:]
	sum := sha256.Sum256(body)
	if !bytes.Equal(sum[:], want) {
		return rec, fmt.Errorf("store: record checksum mismatch")
	}
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&rec); err != nil {
		return rec, fmt.Errorf("store: decoding campaign record: %w", err)
	}
	return rec, nil
}
