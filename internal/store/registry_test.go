package store

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func sampleRecord(id string) CampaignRecord {
	return CampaignRecord{
		ID:        id,
		Kind:      "campaign",
		Status:    "running",
		Request:   []byte(`{"workload":"qsort","structure":"rf"}`),
		Report:    nil,
		Error:     "",
		Submitted: time.Date(2026, 8, 7, 10, 0, 0, 0, time.UTC),
		Started:   time.Date(2026, 8, 7, 10, 0, 1, 0, time.UTC),
		Outcomes:  map[int]string{0: "Masked", 7: "SDC", 12: "DUE"},
	}
}

// TestRegistryRoundTrip is the core durability guarantee: the record a
// coordinator persisted is the record its restarted self resumes from,
// bit for bit — including the partial Outcomes checkpoint.
func TestRegistryRoundTrip(t *testing.T) {
	r, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecord("c000001")
	if _, ok := r.Get(want.ID); ok {
		t.Fatal("Get on empty registry reported a record")
	}
	if err := r.Put(want); err != nil {
		t.Fatal(err)
	}
	got, ok := r.Get(want.ID)
	if !ok {
		t.Fatal("Get after Put missed")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip not bit-identical:\n got %+v\nwant %+v", got, want)
	}

	// Overwrite updates in place: one file per id, latest state wins.
	want.Status = "done"
	want.Report = []byte(`{"avf":0.25}`)
	want.Finished = time.Date(2026, 8, 7, 10, 5, 0, 0, time.UTC)
	if err := r.Put(want); err != nil {
		t.Fatal(err)
	}
	got, _ = r.Get(want.ID)
	if got.Status != "done" || string(got.Report) != `{"avf":0.25}` {
		t.Fatalf("overwrite lost the update: %+v", got)
	}
	if st := r.Stats(); st.Records != 1 || st.Puts != 2 {
		t.Fatalf("stats = %+v, want 1 record / 2 puts", st)
	}
}

// TestRegistryListOrder: List returns submission order (ids are
// zero-padded, so lexicographic id order is submission order per kind).
func TestRegistryListOrder(t *testing.T) {
	r, _ := OpenRegistry(t.TempDir())
	for _, id := range []string{"c000003", "b000001", "c000001"} {
		if err := r.Put(sampleRecord(id)); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := r.List()
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, rec := range recs {
		ids = append(ids, rec.ID)
	}
	want := []string{"b000001", "c000001", "c000003"}
	if !reflect.DeepEqual(ids, want) {
		t.Fatalf("List order = %v, want %v", ids, want)
	}
}

// TestRegistryCorruptionSkipped: a restart must never be wedged by one
// bad record — corrupt files read as absent in Get and are skipped (and
// counted) by List.
func TestRegistryCorruptionSkipped(t *testing.T) {
	dir := t.TempDir()
	r, _ := OpenRegistry(dir)
	good := sampleRecord("c000001")
	bad := sampleRecord("c000002")
	if err := r.Put(good); err != nil {
		t.Fatal(err)
	}
	if err := r.Put(bad); err != nil {
		t.Fatal(err)
	}

	badPath := filepath.Join(dir, bad.ID+".campaign")
	raw, err := os.ReadFile(badPath)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"bit flip":  append(append([]byte{}, raw[:len(raw)-1]...), raw[len(raw)-1]^1),
		"truncated": raw[:len(raw)/2],
		"bad magic": append([]byte("not-a-campaign\n"), raw...),
		"empty":     {},
	}
	for name, mutated := range cases {
		if err := os.WriteFile(badPath, mutated, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := r.Get(bad.ID); ok {
			t.Errorf("%s: corrupt record served by Get", name)
		}
		recs, err := r.List()
		if err != nil {
			t.Fatalf("%s: List failed outright: %v", name, err)
		}
		if len(recs) != 1 || recs[0].ID != good.ID {
			t.Errorf("%s: List = %d records, want only the good one", name, len(recs))
		}
	}
	if st := r.Stats(); st.Errors == 0 {
		t.Error("corrupt reads not counted in stats")
	}

	// A fresh Put repairs the slot.
	if err := r.Put(bad); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get(bad.ID); !ok {
		t.Fatal("Get after repair Put missed")
	}
}

// TestRegistryDelete: finished campaigns evicted from memory are also
// removed from disk, and deleting twice is harmless.
func TestRegistryDelete(t *testing.T) {
	r, _ := OpenRegistry(t.TempDir())
	rec := sampleRecord("c000001")
	if err := r.Put(rec); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete(rec.ID); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get(rec.ID); ok {
		t.Fatal("deleted record still readable")
	}
	if err := r.Delete(rec.ID); err != nil {
		t.Fatal("second delete errored:", err)
	}
	if st := r.Stats(); st.Records != 0 || st.Deletes != 1 {
		t.Fatalf("stats = %+v, want 0 records / 1 delete", st)
	}
}

// TestRegistryRejectsHostileIDs: ids are file names; anything that could
// traverse outside the registry directory must be rejected outright.
func TestRegistryRejectsHostileIDs(t *testing.T) {
	r, _ := OpenRegistry(t.TempDir())
	for _, id := range []string{"", "../evil", "a/b", "a\\b", "c 1", "c.1"} {
		if err := r.Put(sampleRecord(id)); err == nil {
			t.Errorf("Put accepted hostile id %q", id)
		}
		if _, ok := r.Get(id); ok {
			t.Errorf("Get accepted hostile id %q", id)
		}
		if err := r.Delete(id); err == nil {
			t.Errorf("Delete accepted hostile id %q", id)
		}
	}
}

// TestRawArtifactTransfer exercises the fleet's artifact-fetch path:
// GetRaw serves the verified encoded file, PutRaw files it on the far
// side, and the worker's ordinary Get then hits bit-identically.
func TestRawArtifactTransfer(t *testing.T) {
	src, _ := Open(t.TempDir())
	dst, _ := Open(t.TempDir())
	k := sampleKey()
	want := sampleArtifact()
	if err := src.Put(k, want); err != nil {
		t.Fatal(err)
	}

	id := k.ID()
	if dst.HasRaw(id) {
		t.Fatal("HasRaw true on empty destination cache")
	}
	raw, ok := src.GetRaw(id)
	if !ok {
		t.Fatal("GetRaw missed an artifact Put just filed")
	}
	if err := dst.PutRaw(id, raw); err != nil {
		t.Fatal(err)
	}
	if !dst.HasRaw(id) {
		t.Fatal("HasRaw false after PutRaw")
	}
	got, ok := dst.Get(k)
	if !ok {
		t.Fatal("Get missed after raw transfer")
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("raw transfer not bit-identical:\n got %+v\nwant %+v", got, want)
	}

	// PutRaw must refuse bytes it cannot verify, and both raw entry points
	// must reject non-content-address ids.
	if err := dst.PutRaw(id, raw[:len(raw)/2]); err == nil {
		t.Fatal("PutRaw accepted a truncated payload")
	}
	if err := dst.PutRaw("../evil", raw); err == nil {
		t.Fatal("PutRaw accepted a hostile id")
	}
	if _, ok := src.GetRaw("../evil"); ok {
		t.Fatal("GetRaw accepted a hostile id")
	}
}

// TestRegistryQuarantine: a corrupt record is not merely skipped — it is
// moved aside to .corrupt so the damage shows up once in Stats (and on
// disk, for forensics) instead of re-counting as an error on every scan.
func TestRegistryQuarantine(t *testing.T) {
	dir := t.TempDir()
	r, _ := OpenRegistry(dir)
	rec := sampleRecord("c000001")
	if err := r.Put(rec); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, rec.ID+".campaign")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := raw[:len(raw)/2] // a torn write: valid prefix, missing tail
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, ok := r.Get(rec.ID); ok {
		t.Fatal("torn record served by Get")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("torn record still at %s after quarantine", path)
	}
	moved, err := os.ReadFile(path + ".corrupt")
	if err != nil {
		t.Fatalf("quarantined bytes not preserved: %v", err)
	}
	if !reflect.DeepEqual(moved, torn) {
		t.Error("quarantine altered the corrupt bytes")
	}

	st := r.Stats()
	if st.Quarantined != 1 {
		t.Errorf("Stats.Quarantined = %d, want 1", st.Quarantined)
	}
	if st.Corrupt != 1 {
		t.Errorf("Stats.Corrupt = %d, want 1", st.Corrupt)
	}
	if st.Records != 0 {
		t.Errorf("Stats.Records = %d, want 0 (quarantined files must not count)", st.Records)
	}

	// Subsequent scans see a clean directory: the error counter does not
	// keep climbing for the same already-quarantined file.
	errsAfter := st.Errors
	if recs, err := r.List(); err != nil || len(recs) != 0 {
		t.Fatalf("List after quarantine = %d recs, err %v", len(recs), err)
	}
	if st := r.Stats(); st.Errors != errsAfter {
		t.Errorf("Errors climbed from %d to %d on a re-scan of a quarantined dir", errsAfter, st.Errors)
	}

	// The slot is reusable: a fresh Put repairs it.
	if err := r.Put(rec); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get(rec.ID); !ok {
		t.Fatal("Get after repair Put missed")
	}
}

// failRenameFS delegates everything to OSFS except WriteFileAtomic,
// which fails at the rename step — the seam the chaos harness drives;
// this pins the contract it relies on: a failed write surfaces an error
// AND leaves any previous version of the record intact.
type failRenameFS struct {
	OSFS
	fail bool
}

func (f *failRenameFS) WriteFileAtomic(path string, data []byte) error {
	if f.fail {
		return os.ErrPermission
	}
	return f.OSFS.WriteFileAtomic(path, data)
}

// TestRegistryPutFailureLeavesOldRecord: atomicity under write failure —
// a Put whose rename fails reports the error and the reader still sees
// the previous committed version, never a partial file.
func TestRegistryPutFailureLeavesOldRecord(t *testing.T) {
	fsys := &failRenameFS{}
	r, err := OpenRegistryOn(fsys, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := sampleRecord("c000001")
	if err := r.Put(rec); err != nil {
		t.Fatal(err)
	}

	fsys.fail = true
	rec.Status = "done"
	if err := r.Put(rec); err == nil {
		t.Fatal("Put with a failing rename reported success")
	}
	got, ok := r.Get(rec.ID)
	if !ok {
		t.Fatal("previous record lost after a failed Put")
	}
	if got.Status != "running" {
		t.Errorf("reader sees status %q after failed Put, want the old %q", got.Status, "running")
	}
}
