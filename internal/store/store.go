// Package store is the golden-run artifact cache: a content-addressed,
// on-disk repository of everything MeRLiN's Preprocess phase (paper Fig 2)
// derives from one fault-free run — the architectural golden result, the
// lifetime event trace, the ACE-like vulnerable intervals, and the
// checkpoint schedule of the injection ladder.
//
// The cache exists because Preprocess is the expensive, *reusable* part of
// a campaign: the golden run and its analysis depend only on (workload,
// core configuration, cycle budget, structure), never on the fault list,
// seed, strategy, or grouping knobs. A service answering "re-run RF with a
// different fault budget" therefore skips the golden run entirely on every
// campaign after the first — the amortization the paper's speedup argument
// is built on, extended across process lifetimes.
//
// Artifacts are addressed by the SHA-256 of the canonical encoding of
// their Key, one file per artifact, written atomically (temp file +
// rename) with an embedded payload checksum. A corrupt, truncated, or
// version-skewed file is treated as a miss and rewritten, never returned.
// The Store is safe for concurrent use by any number of goroutines and
// processes sharing the directory.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"

	"merlin/internal/cpu"
	"merlin/internal/lifetime"
)

// formatVersion invalidates all cached artifacts when the serialized
// layout (or anything that feeds it: trace semantics, interval
// derivation, simulator timing) changes incompatibly. Version 2
// introduced multi-structure artifacts (one golden run carrying the
// lifetime traces of every structure a batch campaign targets); version 3
// stamps write events with the producing µop's (RIP, UPC) for the
// guestflow static cross-check and pre-pruner. Older files read as a
// clean miss and are recomputed.
const formatVersion = 3

// Key identifies one golden-run artifact: everything the fault-free run
// depends on. Fault list size, sampling seed, injection strategy and
// grouping options are deliberately absent — campaigns differing only in
// those share the artifact.
type Key struct {
	// Workload is the registered benchmark name.
	Workload string
	// CPU is the full core configuration; any field change (register
	// count, cache geometry, predictor sizing …) changes the golden run.
	CPU cpu.Config
	// Budget is the golden-run cycle budget (Runner.GoldenBudget).
	Budget uint64
	// Structures are the traced injection targets; the lifetime event
	// logs and intervals are per-structure, and a batch campaign's single
	// golden run carries all of them. The set is canonicalized (sorted,
	// deduplicated) by NewKey and again inside ID, so request order never
	// splits the cache.
	Structures []lifetime.StructureID
}

// NewKey builds the canonical key for a golden run tracing the given
// structures: the structure set is sorted and deduplicated so campaigns
// requesting the same set in any order share one artifact.
func NewKey(workload string, cpu cpu.Config, budget uint64, structures ...lifetime.StructureID) Key {
	return Key{Workload: workload, CPU: cpu, Budget: budget,
		Structures: CanonicalStructures(structures)}
}

// CanonicalStructures returns the sorted, deduplicated copy of a
// structure list: the canonical set form used by artifact keys. Invalid
// ids (>= NumStructures) are dropped uniformly — they can never name a
// traced structure, so keeping any of them would only mint unreachable
// cache keys.
func CanonicalStructures(structures []lifetime.StructureID) []lifetime.StructureID {
	out := make([]lifetime.StructureID, 0, len(structures))
	seen := [lifetime.NumStructures]bool{}
	for _, s := range structures {
		if s < lifetime.NumStructures && !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ID returns the content address of the key: the hex SHA-256 of its
// canonical JSON encoding. JSON struct encoding is deterministic (fields
// in declaration order), so equal keys always map to equal IDs; the
// structure set is re-canonicalized here so hand-built keys address the
// same artifact as NewKey-built ones.
func (k Key) ID() string {
	k.Structures = CanonicalStructures(k.Structures)
	b, err := json.Marshal(k)
	if err != nil { // Key is a plain value type; this cannot fail
		panic(fmt.Sprintf("store: encoding key: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// StructureTrace is the per-structure slice of an artifact: the raw
// lifetime event log of one structure plus its derived vulnerable
// intervals and geometry.
type StructureTrace struct {
	// Structure names the traced injection target.
	Structure lifetime.StructureID

	// Entries and EntryBytes size the structure (needed to regenerate
	// the statistical fault list and the extrapolation denominators
	// without instantiating a core).
	Entries    int
	EntryBytes int

	// Events is the structure's golden trace: the raw lifetime event log,
	// from which the analysis can be re-derived bit-identically.
	Events []lifetime.Event

	// Intervals are the derived ACE-like vulnerable intervals, stored so
	// a cache hit skips even the analysis rebuild.
	Intervals []lifetime.Interval
}

// Artifact is one cached Preprocess product set: the fault-free golden
// run plus one StructureTrace per traced structure (a single-structure
// campaign stores one; a batch stores all of its targets, which is the
// whole point — one golden run, every structure's trace). All fields are
// plain values so the gob round trip is exact; Runner state and machine
// snapshots are deliberately excluded (cores are rebuilt deterministically
// from the workload program, which is cheap — it is the golden *run* that
// is expensive).
type Artifact struct {
	// Workload echoes the key for human inspection of cache directories;
	// Get verifies it (and the structure set) matches the requested key.
	Workload string

	// Structures carries one trace per structure of the golden run, in
	// canonical (ascending StructureID) order.
	Structures []StructureTrace

	// Golden is the architectural outcome of the fault-free run: the
	// classification reference of every injection.
	Golden cpu.RunResult

	// Branches is the committed branch trace (the Relyzer
	// control-equivalence comparison input).
	Branches []lifetime.BranchRec

	// CheckpointCycles is the snapshot schedule of the injection ladder
	// (cycles at which the checkpointed/forked strategies freeze golden
	// state). Machine snapshots themselves are not serializable; the
	// schedule lets a warm process rebuild them in one deterministic pass
	// and lets operators see where a campaign's sync points sit.
	CheckpointCycles []uint64
}

// Trace returns the artifact's trace for structure s.
func (a *Artifact) Trace(s lifetime.StructureID) (*StructureTrace, bool) {
	for i := range a.Structures {
		if a.Structures[i].Structure == s {
			return &a.Structures[i], true
		}
	}
	return nil, false
}

// Analysis rehydrates the ACE-like analysis of structure s from its
// cached intervals; ok is false when the artifact does not trace s.
func (a *Artifact) Analysis(s lifetime.StructureID) (*lifetime.Analysis, bool) {
	t, ok := a.Trace(s)
	if !ok {
		return nil, false
	}
	return lifetime.Rehydrate(t.Structure, t.Entries, t.EntryBytes, a.Golden.Cycles, t.Intervals), true
}

// structureSet returns the artifact's traced structures in canonical form
// (Get compares it against the key's set).
func (a *Artifact) structureSet() []lifetime.StructureID {
	ss := make([]lifetime.StructureID, len(a.Structures))
	for i := range a.Structures {
		ss[i] = a.Structures[i].Structure
	}
	return CanonicalStructures(ss)
}

// Stats is a point-in-time snapshot of cache effectiveness, served by the
// daemon's /statsz endpoint.
type Stats struct {
	Hits   uint64 `json:"hits"`   // Get found a valid artifact
	Misses uint64 `json:"misses"` // Get found nothing usable
	Puts   uint64 `json:"puts"`   // artifacts written
	Errors uint64 `json:"errors"` // corrupt/unreadable files encountered (each also counts as a miss)

	Entries int   `json:"entries"` // artifact files on disk
	Bytes   int64 `json:"bytes"`   // total artifact bytes on disk
}

// Store is the on-disk cache. The zero value is not usable; call Open.
type Store struct {
	dir string
	fs  FS

	hits, misses, puts, errs atomic.Uint64
}

// Open creates (if needed) and opens a cache rooted at dir on the real
// filesystem.
func Open(dir string) (*Store, error) {
	return OpenOn(OSFS{}, dir)
}

// OpenOn creates (if needed) and opens a cache rooted at dir on the
// given filesystem. Fault-injection harnesses pass a chaos FS here;
// everything else uses Open.
func OpenOn(fsys FS, dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir, fs: fsys}, nil
}

// Dir returns the cache root.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(k Key) string {
	return filepath.Join(s.dir, k.ID()+".artifact")
}

// fileMagic guards against reading non-artifact files; the version after
// it guards against layout skew between binaries sharing a cache dir.
var fileMagic = []byte(fmt.Sprintf("merlin-artifact/%d\n", formatVersion))

// Get loads the artifact for k. A missing, corrupt, truncated or
// key-mismatched file is a miss (ok=false), never an error: the caller's
// recovery — recompute and Put — is identical in every case.
func (s *Store) Get(k Key) (*Artifact, bool) {
	raw, err := s.fs.ReadFile(s.path(k))
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	a, err := decode(raw)
	if err == nil && !artifactMatches(a, k) {
		err = fmt.Errorf("store: artifact key mismatch")
	}
	if err != nil {
		s.errs.Add(1)
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return a, true
}

// artifactMatches verifies the artifact's embedded echo against the key it
// was filed under: same workload, same canonical structure set.
func artifactMatches(a *Artifact, k Key) bool {
	if a.Workload != k.Workload {
		return false
	}
	want := CanonicalStructures(k.Structures)
	got := a.structureSet()
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

// Put writes the artifact for k atomically and durably (temp file,
// fsync, rename): concurrent writers of the same key race benignly (both
// payloads are bit-identical by determinism) and readers never observe a
// partial file.
func (s *Store) Put(k Key, a *Artifact) error {
	payload, err := encode(a)
	if err != nil {
		return err
	}
	if err := s.fs.WriteFileAtomic(s.path(k), payload); err != nil {
		return err
	}
	s.puts.Add(1)
	return nil
}

// validArtifactID reports whether id has the shape of a content address
// (lowercase hex sha256) — anything else could escape the cache dir.
func validArtifactID(id string) bool {
	if len(id) != 2*sha256.Size {
		return false
	}
	for _, c := range id {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// GetRaw returns the encoded file (magic + checksum + gob) for the
// artifact addressed by id, for serving over the fleet's artifact-fetch
// endpoint. The payload is verified before it is handed out, so a worker
// never receives a corrupt file the coordinator would itself have treated
// as a miss.
func (s *Store) GetRaw(id string) ([]byte, bool) {
	if !validArtifactID(id) {
		return nil, false
	}
	raw, err := s.fs.ReadFile(filepath.Join(s.dir, id+".artifact"))
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	if _, err := decode(raw); err != nil {
		s.errs.Add(1)
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return raw, true
}

// HasRaw reports whether a file exists for id without reading it (the
// fleet uses it to skip redundant artifact fetches).
func (s *Store) HasRaw(id string) bool {
	if !validArtifactID(id) {
		return false
	}
	_, err := s.fs.Stat(filepath.Join(s.dir, id+".artifact"))
	return err == nil
}

// PutRaw files an encoded artifact received over the wire under id,
// validating magic and checksum first — a worker cache never accepts
// bytes it could not itself have produced. The caller is trusted on the
// id↔content binding (the fleet derives both from the same request).
func (s *Store) PutRaw(id string, raw []byte) error {
	if !validArtifactID(id) {
		return fmt.Errorf("store: invalid artifact id %q", id)
	}
	if _, err := decode(raw); err != nil {
		return err
	}
	if err := s.fs.WriteFileAtomic(filepath.Join(s.dir, id+".artifact"), raw); err != nil {
		return err
	}
	s.puts.Add(1)
	return nil
}

// Stats snapshots the cache counters and walks the directory for on-disk
// totals.
func (s *Store) Stats() Stats {
	st := Stats{
		Hits:   s.hits.Load(),
		Misses: s.misses.Load(),
		Puts:   s.puts.Load(),
		Errors: s.errs.Load(),
	}
	entries, _ := s.fs.ReadDir(s.dir)
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".artifact") {
			continue
		}
		st.Entries++
		if info, err := e.Info(); err == nil {
			st.Bytes += info.Size()
		}
	}
	return st
}

// encode renders magic || sha256(gob) || gob.
func encode(a *Artifact) ([]byte, error) {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(a); err != nil {
		return nil, fmt.Errorf("store: encoding artifact: %w", err)
	}
	sum := sha256.Sum256(body.Bytes())
	out := make([]byte, 0, len(fileMagic)+len(sum)+body.Len())
	out = append(out, fileMagic...)
	out = append(out, sum[:]...)
	out = append(out, body.Bytes()...)
	return out, nil
}

// decode verifies magic and checksum and decodes the payload.
func decode(raw []byte) (*Artifact, error) {
	if !bytes.HasPrefix(raw, fileMagic) {
		return nil, fmt.Errorf("store: bad magic or version")
	}
	raw = raw[len(fileMagic):]
	if len(raw) < sha256.Size {
		return nil, fmt.Errorf("store: truncated artifact")
	}
	want := raw[:sha256.Size]
	body := raw[sha256.Size:]
	sum := sha256.Sum256(body)
	if !bytes.Equal(sum[:], want) {
		return nil, fmt.Errorf("store: checksum mismatch")
	}
	a := new(Artifact)
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(a); err != nil {
		return nil, fmt.Errorf("store: decoding artifact: %w", err)
	}
	return a, nil
}
