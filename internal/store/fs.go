package store

// The cache and the registry touch the filesystem through the narrow FS
// surface below instead of calling the os package directly. Production
// code always runs on OSFS; the seam exists so a fault-injection harness
// (internal/chaos) can substitute an implementation that tears writes,
// fails renames, reports ENOSPC, or flips payload bits — the disk-failure
// modes a durable coordinator must survive. The interface is deliberately
// small: five operations cover every way store code touches disk.

import (
	"fmt"
	"os"
	"path/filepath"
)

// FS is the filesystem surface the Store and Registry are written
// against. Implementations must be safe for concurrent use.
type FS interface {
	// ReadFile reads the whole file at path.
	ReadFile(path string) ([]byte, error)
	// WriteFileAtomic durably replaces path with data: temp file in the
	// same directory, write, fsync, atomic rename. On success, readers see
	// either the complete old content or the complete new content, and the
	// new content survives power loss, not just process death.
	WriteFileAtomic(path string, data []byte) error
	// Rename atomically moves oldpath to newpath (same directory).
	Rename(oldpath, newpath string) error
	// Remove deletes path.
	Remove(path string) error
	// ReadDir lists dir.
	ReadDir(dir string) ([]os.DirEntry, error)
	// Stat stats path without reading it.
	Stat(path string) (os.FileInfo, error)
}

// OSFS is the production FS: the real filesystem with the durability
// contract implemented in full.
type OSFS struct{}

func (OSFS) ReadFile(path string) ([]byte, error)      { return os.ReadFile(path) }
func (OSFS) Rename(oldpath, newpath string) error      { return os.Rename(oldpath, newpath) }
func (OSFS) Remove(path string) error                  { return os.Remove(path) }
func (OSFS) ReadDir(dir string) ([]os.DirEntry, error) { return os.ReadDir(dir) }
func (OSFS) Stat(path string) (os.FileInfo, error)     { return os.Stat(path) }

// WriteFileAtomic writes data next to path, fsyncs, and renames into
// place. The fsync before the rename is what upgrades the guarantee from
// "survives a crash of this process" to "survives power loss": without
// it, the rename can reach the journal before the data blocks do, and a
// badly timed outage leaves a complete-looking file full of zeros.
func (OSFS) WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".put-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}
