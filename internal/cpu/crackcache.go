package cpu

import (
	"sync"

	"merlin/internal/isa"
)

// Programs are immutable once assembled, and injection campaigns build
// thousands of Cores for the same program; cache the µop decomposition per
// program so the fetch path never allocates.
var crackCache sync.Map // *isa.Program -> [][]isa.Uop

func crackedFor(p *isa.Program) [][]isa.Uop {
	//lint:allow globmut001 pure memoization of isa.Crack keyed by program identity; cached bytes are a deterministic function of the key and never reach report state
	if v, ok := crackCache.Load(p); ok {
		return v.([][]isa.Uop)
	}
	cracked := make([][]isa.Uop, len(p.Text))
	for i, in := range p.Text {
		cracked[i] = isa.Crack(in)
	}
	//lint:allow globmut001 pure memoization of isa.Crack keyed by program identity; cached bytes are a deterministic function of the key and never reach report state
	v, _ := crackCache.LoadOrStore(p, cracked)
	return v.([][]isa.Uop)
}
