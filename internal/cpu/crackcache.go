package cpu

import (
	"sync"

	"merlin/internal/isa"
)

// Programs are immutable once assembled, and injection campaigns build
// thousands of Cores for the same program; cache the µop decomposition per
// program so the fetch path never allocates.
var crackCache sync.Map // *isa.Program -> [][]isa.Uop

func crackedFor(p *isa.Program) [][]isa.Uop {
	if v, ok := crackCache.Load(p); ok {
		return v.([][]isa.Uop)
	}
	cracked := make([][]isa.Uop, len(p.Text))
	for i, in := range p.Text {
		cracked[i] = isa.Crack(in)
	}
	v, _ := crackCache.LoadOrStore(p, cracked)
	return v.([][]isa.Uop)
}
