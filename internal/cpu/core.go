package cpu

import (
	"fmt"
	"io"

	"merlin/internal/isa"
	"merlin/internal/lifetime"
	"merlin/internal/mem"
)

// HaltReason describes how a run ended.
type HaltReason uint8

// Run outcomes. The Crash* reasons model the simulated process dying
// (paper Table 2, "Crash": abnormal termination of the simulated program).
const (
	Running        HaltReason = iota
	HaltOK                    // program executed HALT
	CrashPageFault            // committed access outside mapped memory
	CrashBadFetch             // committed control transfer to invalid code
	CrashDivZero              // committed division by zero
	CycleLimit                // exceeded the caller's cycle budget
)

var haltNames = [...]string{"running", "halt", "crash-pagefault", "crash-badfetch", "crash-divzero", "cycle-limit"}

func (h HaltReason) String() string {
	if int(h) < len(haltNames) {
		return haltNames[h]
	}
	return "?"
}

// ExcKind is a precise exception raised at commit.
type ExcKind uint8

// Exceptions. Misaligned accesses are fixed up by the simulated kernel and
// logged (they surface as DUEs when the program output is still correct);
// the others kill the simulated process.
const (
	ExcNone ExcKind = iota
	ExcMisalign
	ExcPageFault
	ExcDivZero
	ExcBadFetch
)

// AssertError is panicked by internal invariant checks; the campaign
// classifies it as the paper's "Assert" outcome.
type AssertError struct{ Msg string }

func (e *AssertError) Error() string { return "cpu assert: " + e.Msg }

func assertf(cond bool, format string, args ...any) {
	if !cond {
		panic(&AssertError{Msg: fmt.Sprintf(format, args...)})
	}
}

type uopState uint8

const (
	stWaiting uopState = iota
	stExecuting
	stDone
)

// pendingRead is a speculative structure read buffered on a ROB entry and
// published to the lifetime tracer only if the reader commits (squashed
// reads must not end vulnerable intervals; paper Fig 3).
type pendingRead struct {
	structID lifetime.StructureID
	entry    int32
	mask     uint64
	cycle    uint64
	seq      uint64
}

type robEntry struct {
	seq  uint64
	rip  int64
	uop  isa.Uop
	last bool // final µop of its macro-instruction

	state    uopState
	doneAt   uint64
	exc      ExcKind
	physDest int16
	oldPhys  int16
	archDest int8
	src1     int16
	src2     int16
	src1Val  uint64
	src2Val  uint64
	result   uint64

	// Branch bookkeeping.
	predTarget int64
	actTarget  int64
	actTaken   bool
	isCond     bool
	ghrSnap    uint64

	// Memory bookkeeping.
	addr   uint64
	sqSlot int16

	freeT1, freeT2 int16 // temp physical registers to release at commit

	nReads uint8
	reads  [4]pendingRead
}

type sqEntry struct {
	valid  bool
	seq    uint64
	addr   uint64
	size   uint8
	addrOK bool
	dataOK bool
	data   uint64 // the injected "data field of the store queue" (§4.1)

	// Post-commit drain state: a committed store occupies its slot until
	// the data-cache write completes (one drain port, in order), which is
	// when the SQ data field is finally read.
	committed bool
	drainRIP  int64
	drainUPC  uint8
	drainSeq  uint64
}

type pendingUop struct {
	rip  int64
	uop  isa.Uop
	last bool
	bad  bool // invalid-fetch pseudo µop

	// Branch prediction made at fetch.
	predTarget int64
	ghrSnap    uint64
	isCond     bool
}

// Stats counts pipeline activity over a run.
type Stats struct {
	Cycles         uint64
	CommittedInsts uint64
	CommittedUops  uint64
	Branches       uint64
	Mispredicts    uint64
	Loads          uint64
	Stores         uint64
	SQForwards     uint64
	SquashedUops   uint64
	L1DStats       mem.CacheStats
	L1IStats       mem.CacheStats
	L2Stats        mem.CacheStats
}

// RunResult is the architectural outcome of a run: everything the campaign
// needs to classify a fault's effect.
type RunResult struct {
	Halt   HaltReason
	Cycles uint64
	Output []uint64 // committed OUT values, in order
	ExcLog []uint32 // committed recoverable exceptions (kind | rip<<3)
	Stats  Stats
}

// Core is one instance of the simulated machine. It is single-goroutine;
// campaigns parallelise by running independent Cores.
type Core struct {
	Cfg     Config
	prog    *isa.Program
	cracked [][]isa.Uop // per-RIP µop decomposition, computed once

	dmem *mem.Memory
	imem *mem.Memory
	l1i  *mem.Cache
	l1d  *mem.Cache
	l2   *mem.Cache

	cycle  uint64
	seqGen uint64
	halted HaltReason

	// Physical register file (the injected RF) and rename state.
	regVal   []uint64
	regReady []bool
	rat      [isa.NumArchRegs]int16
	freeList []int16

	rob     []robEntry
	robHead int
	robLen  int

	iq []int32 // ROB slot indexes of waiting µops, program order

	sq             []sqEntry
	sqHead         int
	sqLen          int
	lqLen          int
	drainBusyUntil uint64

	// Frontend.
	fetchPC      int64
	fetchHalted  bool
	fetchReadyAt uint64
	chargedLine  int64
	decodeQ      []pendingUop
	dqHead       int
	pred         *predictor

	// Rename scratch: temps of the macro-instruction being renamed.
	curTemps     [2]int16
	tempAcc      [2]int16
	curTempCount int
	lastSQ       int16

	output         []uint64
	excLog         []uint32
	committedInsts uint64
	committedUops  uint64
	lastCommitAt   uint64

	// archRegs is the committed (retirement) architectural register file,
	// updated as µops retire. It is derived state — always equal to
	// regVal at the last committed mapping — kept so retire-boundary
	// witnesses and ArchRegs cost one array copy instead of a RAT walk.
	archRegs [isa.NumArchRegs]uint64

	// witness and mutate are observation/test hooks (SetRetireWitness,
	// SetResultMutator); they are not machine state and are not cloned.
	witness func(RetireEvent)
	mutate  func(seq uint64, op isa.Op, result uint64) uint64

	tracer *lifetime.Tracer
	traceW io.Writer
	stats  Stats
}

// New builds a core for prog with the given configuration. The program's
// data segment is loaded at isa.DataBase and the stack pointer initialised
// to isa.StackTop.
func New(cfg Config, prog *isa.Program) *Core {
	assertf(cfg.PhysRegs > isa.NumArchRegs, "PhysRegs %d must exceed %d architectural registers", cfg.PhysRegs, isa.NumArchRegs)
	c := &Core{
		Cfg:  cfg,
		prog: prog,
		dmem: mem.NewMemory(isa.DataBase, isa.MemTop, cfg.MemLatency),
		imem: mem.NewMemory(0, uint64(len(prog.Text)+1)*8, cfg.MemLatency),

		regVal:   make([]uint64, cfg.PhysRegs),
		regReady: make([]bool, cfg.PhysRegs),
		rob:      make([]robEntry, cfg.ROBEntries),
		sq:       make([]sqEntry, cfg.SQEntries),
		iq:       make([]int32, 0, cfg.IQEntries),

		fetchPC:     int64(prog.Entry),
		chargedLine: -1,
		lastSQ:      -1,
		pred:        newPredictor(cfg),
	}
	c.cracked = crackedFor(prog)
	c.l2 = mem.NewCache(cfg.L2, c.dmem)
	c.l1d = mem.NewCache(cfg.L1D, c.l2)
	c.l1i = mem.NewCache(cfg.L1I, c.imem)

	c.l1d.OnFill = func(set, way int, cycle uint64) {
		c.emitL1D(lifetime.EvWrite, set, way, ^uint64(0))
	}
	c.l1d.OnEvict = func(set, way int, kind mem.EvictKind, cycle uint64) {
		if kind == mem.EvictDirty {
			c.emitL1D(lifetime.EvWBRead, set, way, ^uint64(0))
		} else {
			c.emitL1D(lifetime.EvInvalidate, set, way, ^uint64(0))
		}
	}

	c.dmem.WriteBytes(isa.DataBase, prog.Data)
	for i := 0; i < isa.NumArchRegs; i++ {
		c.rat[i] = int16(i)
		c.regReady[i] = true
	}
	c.regVal[isa.RegSP] = isa.StackTop
	c.archRegs[isa.RegSP] = isa.StackTop
	c.freeList = make([]int16, 0, cfg.PhysRegs)
	for p := cfg.PhysRegs - 1; p >= isa.NumArchRegs; p-- {
		c.freeList = append(c.freeList, int16(p))
	}
	return c
}

// WriteData initialises simulated memory before the run starts (workload
// inputs). It must not be called after Step.
func (c *Core) WriteData(addr uint64, data []byte) {
	assertf(c.cycle == 0, "WriteData after the run started")
	assertf(c.dmem.InRange(addr, len(data)), "WriteData outside mapped memory: %#x+%d", addr, len(data))
	c.dmem.WriteBytes(addr, data)
}

// AttachTracer enables lifetime tracking for the golden ACE-like run. The
// initial architectural register values count as cycle-0 writes.
func (c *Core) AttachTracer(t *lifetime.Tracer) {
	assertf(c.cycle == 0, "AttachTracer after the run started")
	c.tracer = t
	if l := t.Log(lifetime.StructRF); l != nil {
		for p := 0; p < isa.NumArchRegs; p++ {
			l.Append(lifetime.Event{Seq: t.NextSeq(), Cycle: 0, Entry: int32(p), Mask: 0xff, Kind: lifetime.EvWrite, RIP: lifetime.InitRip})
		}
	}
}

// Cycle returns the current cycle number.
func (c *Core) Cycle() uint64 { return c.cycle }

// Halted returns the current halt state.
func (c *Core) Halted() HaltReason { return c.halted }

// Step advances the machine one cycle. Stages run in reverse pipeline
// order so same-cycle structural effects flow oldest-first.
func (c *Core) Step() {
	if c.halted != Running {
		return
	}
	c.cycle++
	c.drainStage()
	c.commitStage()
	if c.halted != Running {
		return
	}
	c.writebackStage()
	c.issueStage()
	c.renameStage()
	c.fetchStage()
	if c.cycle-c.lastCommitAt > c.Cfg.CommitWatchdog {
		assertf(false, "commit starvation: no commit since cycle %d", c.lastCommitAt)
	}
}

// Run executes until the program halts, crashes, or maxCycles elapses.
func (c *Core) Run(maxCycles uint64) RunResult {
	for c.halted == Running && c.cycle < maxCycles {
		c.Step()
	}
	if c.halted == Running {
		c.halted = CycleLimit
	}
	return c.Result()
}

// Result snapshots the architectural outcome so far.
func (c *Core) Result() RunResult {
	s := c.stats
	s.Cycles = c.cycle
	s.CommittedInsts = c.committedInsts
	s.CommittedUops = c.committedUops
	s.L1DStats = c.l1d.Stats
	s.L1IStats = c.l1i.Stats
	s.L2Stats = c.l2.Stats
	if c.tracer != nil {
		c.tracer.Cycles = c.cycle
	}
	return RunResult{Halt: c.halted, Cycles: c.cycle, Output: c.output, ExcLog: c.excLog, Stats: s}
}

// StructureEntries returns how many injectable entries structure s has
// under this core's configuration.
func (c *Core) StructureEntries(s lifetime.StructureID) int {
	switch s {
	case lifetime.StructRF:
		return c.Cfg.PhysRegs
	case lifetime.StructSQ:
		return c.Cfg.SQEntries
	case lifetime.StructL1D:
		return c.l1d.Entries()
	}
	return 0
}

// StructureEntryBits returns the entry width in bits of structure s.
func (c *Core) StructureEntryBits(s lifetime.StructureID) int {
	switch s {
	case lifetime.StructRF, lifetime.StructSQ:
		return 64
	case lifetime.StructL1D:
		return c.l1d.LineSize() * 8
	}
	return 0
}

// FlipBit injects a single-bit transient fault into structure s: entry
// selects the physical slot (register, SQ slot, or cache (set,way) line)
// and bit the flipped bit. The flip lands in the physical storage
// regardless of the slot's current architectural meaning, exactly like a
// particle strike.
func (c *Core) FlipBit(s lifetime.StructureID, entry, bit int) {
	switch s {
	case lifetime.StructRF:
		c.regVal[entry] ^= 1 << uint(bit)
	case lifetime.StructSQ:
		c.sq[entry].data ^= 1 << uint(bit)
	case lifetime.StructL1D:
		c.l1d.FlipBit(entry, bit)
	default:
		assertf(false, "FlipBit: unknown structure %d", s)
	}
}

// FlushDataCaches writes all dirty cached data back to memory without
// emitting lifetime events (used for end-state comparison of truncated
// runs, Table 4).
func (c *Core) FlushDataCaches() {
	evict, fill := c.l1d.OnEvict, c.l1d.OnFill
	c.l1d.OnEvict, c.l1d.OnFill = nil, nil
	c.l1d.FlushAll(c.cycle)
	c.l2.FlushAll(c.cycle)
	c.l1d.OnEvict, c.l1d.OnFill = evict, fill
}

// fnvPrime is the 64-bit FNV-1a prime; fnvZeroPageMul is the effect of
// hashing one full page of zero bytes: each zero byte XORs in nothing and
// multiplies the state by the prime, so a whole zero page is a single
// multiplication by prime^PageSize (mod 2^64). StateHash uses it to skip
// unmapped pages without changing the digest.
const fnvPrime = 1099511628211

var fnvZeroPageMul = func() uint64 {
	m := uint64(1)
	for i := 0; i < mem.PageSize; i++ {
		m *= fnvPrime
	}
	return m
}()

// StateHash returns a deterministic FNV-1a digest of the architecturally
// reachable state: mapped data memory (call FlushDataCaches first), the
// architectural registers, resident cache lines, and valid store-queue
// data. Table 4's truncated-run classification compares it against the
// golden run at the same cut cycle: equal means the fault vanished
// (Masked), different means it is still live (Unknown).
//
// Resident memory pages are hashed in place and unmapped (all-zero) pages
// folded in with one precomputed multiplication, so the walk over
// [DataBase, MemTop) costs O(resident bytes) instead of O(address space);
// the digest is bit-identical to hashing the zero-filled range byte by
// byte (pinned by TestStateHashPinned).
func (c *Core) StateHash() uint64 {
	h := uint64(14695981039346656037)
	byteIn := func(b byte) { h = (h ^ uint64(b)) * fnvPrime }
	u64In := func(v uint64) {
		for i := 0; i < 8; i++ {
			byteIn(byte(v >> (8 * i)))
		}
	}
	if isa.DataBase%mem.PageSize == 0 && isa.MemTop%mem.PageSize == 0 {
		for addr := uint64(isa.DataBase); addr < isa.MemTop; addr += mem.PageSize {
			p := c.dmem.PageData(addr)
			if p == nil {
				h *= fnvZeroPageMul
				continue
			}
			for _, b := range p {
				byteIn(b)
			}
		}
	} else { // unaligned mapping: generic chunked walk
		buf := make([]byte, mem.PageSize)
		for addr := uint64(isa.DataBase); addr < isa.MemTop; addr += uint64(len(buf)) {
			c.dmem.ReadBytes(addr, buf)
			for _, b := range buf {
				byteIn(b)
			}
		}
	}
	for a := 0; a < isa.NumArchRegs; a++ {
		u64In(c.regVal[c.rat[a]])
	}
	for _, cache := range []*mem.Cache{c.l1d, c.l2} {
		for e := 0; e < cache.Entries(); e++ {
			if !cache.Valid(e) {
				continue
			}
			u64In(uint64(e))
			for _, b := range cache.PeekEntryData(e) {
				byteIn(b)
			}
		}
	}
	for i := 0; i < c.sqLen; i++ {
		s := &c.sq[(c.sqHead+i)%len(c.sq)]
		if s.dataOK {
			u64In(s.data)
		}
	}
	return h
}

// --- lifetime event plumbing ---

// emitWrite records a write event stamped with the producing µop's static
// location (rip, upc), so the guestflow cross-check and static pre-pruner
// can reason about which architectural value a physical entry holds.
func (c *Core) emitWrite(s lifetime.StructureID, entry int32, mask uint64, rip int32, upc uint8) {
	if c.tracer == nil {
		return
	}
	l := c.tracer.Log(s)
	if l == nil {
		return
	}
	l.Append(lifetime.Event{Seq: c.tracer.NextSeq(), Cycle: c.cycle, Entry: entry, Mask: mask, Kind: lifetime.EvWrite, RIP: rip, UPC: upc})
}

func (c *Core) emitL1D(kind lifetime.EventKind, set, way int, mask uint64) {
	if c.tracer == nil {
		return
	}
	l := c.tracer.Log(lifetime.StructL1D)
	if l == nil {
		return
	}
	entry := int32(set*c.l1d.Cfg.Ways + way)
	rip := int32(0)
	if kind == lifetime.EvWBRead {
		rip = lifetime.WBRip
	}
	l.Append(lifetime.Event{Seq: c.tracer.NextSeq(), Cycle: c.cycle, Entry: entry, Mask: mask, Kind: kind, RIP: rip})
}

// emitInvalidate records that an entry's contents left the structure
// unread: a freed physical register (no future µop can read it before the
// next producer overwrites it) or a drained / squashed store-queue slot.
// Without these events, truncated-run analysis (Table 4) would treat dead
// storage as live at the cut.
func (c *Core) emitInvalidate(s lifetime.StructureID, entry int32, mask uint64) {
	if c.tracer == nil {
		return
	}
	l := c.tracer.Log(s)
	if l == nil {
		return
	}
	l.Append(lifetime.Event{Seq: c.tracer.NextSeq(), Cycle: c.cycle, Entry: entry, Mask: mask, Kind: lifetime.EvInvalidate})
}

// freePhys returns a physical register to the free list, closing its
// lifetime.
func (c *Core) freePhys(p int16) {
	c.freeList = append(c.freeList, p)
	c.emitInvalidate(lifetime.StructRF, int32(p), 0xff)
}

// pendRead buffers a structure read on the reading µop; it is published at
// commit and dropped on squash.
func (c *Core) pendRead(e *robEntry, s lifetime.StructureID, entry int32, mask uint64) {
	if c.tracer == nil || c.tracer.Log(s) == nil {
		return
	}
	assertf(int(e.nReads) < len(e.reads), "too many pending reads on one µop")
	e.reads[e.nReads] = pendingRead{structID: s, entry: entry, mask: mask, cycle: c.cycle, seq: c.tracer.NextSeq()}
	e.nReads++
}

func (c *Core) flushReads(e *robEntry) {
	if c.tracer == nil || e.nReads == 0 {
		return
	}
	for i := uint8(0); i < e.nReads; i++ {
		r := &e.reads[i]
		l := c.tracer.Log(r.structID)
		if l == nil {
			continue
		}
		rip := int32(e.rip)
		l.Append(lifetime.Event{
			Seq: r.seq, Cycle: r.cycle, CommitSeq: e.seq, Entry: r.entry,
			Mask: r.mask, Kind: lifetime.EvRead, RIP: rip, UPC: e.uop.UPC,
		})
	}
}

// SetCommitTrace streams one line per committed macro-instruction to w:
// cycle, sequence number, RIP and disassembly. Intended for debugging
// workloads and the pipeline itself (uxrun -trace); unset (nil) in
// campaigns.
func (c *Core) SetCommitTrace(w io.Writer) { c.traceW = w }

func (c *Core) traceCommit(e *robEntry) {
	if c.traceW == nil || !e.last {
		return
	}
	fmt.Fprintf(c.traceW, "%8d  #%-6d %4d: %s\n", c.cycle, e.seq, e.rip, c.prog.Text[e.rip])
}
