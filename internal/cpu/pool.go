package cpu

import (
	"sync"

	"merlin/internal/isa"
)

// poolKey identifies the shells that can serve a clone of a given core:
// same configuration (so every fixed-size array matches) and same program
// (so the shared cracked µop table and text are interchangeable).
type poolKey struct {
	cfg  Config
	prog *isa.Program
}

// ClonePool recycles retired machine snapshots. Injection schedulers take
// thousands of short-lived clones — one per fault — whose slices (register
// file, ROB, store queue, queues, predictor tables) are identical in shape;
// the pool keeps released Core shells on a free list keyed by configuration
// and rebuilds each clone by copy-over instead of reallocation.
//
// A released shell is never trusted: Clone overwrites every field of the
// shell from the source core (see Core.cloneInto), so a shell that died
// mid-panic or carries stale state is indistinguishable from a fresh
// allocation. The pool is safe for concurrent use; cloning the same
// *frozen* source from many goroutines is safe exactly as Core.Clone is.
type ClonePool struct {
	mu   sync.Mutex
	free map[poolKey][]*Core
	max  int // free shells retained per key
}

// DefaultPoolShells bounds the free shells retained per (config, program)
// key: enough to serve every worker of a saturated scheduler with headroom,
// small enough that an idle pool holds only a few MB of arrays.
const DefaultPoolShells = 64

// NewClonePool returns a pool retaining up to max free shells per
// configuration; max <= 0 means DefaultPoolShells.
func NewClonePool(max int) *ClonePool {
	if max <= 0 {
		max = DefaultPoolShells
	}
	return &ClonePool{free: make(map[poolKey][]*Core), max: max}
}

// Clone returns a snapshot of src, recycling a retired shell when one of
// matching shape is free and falling back to Core.Clone otherwise.
func (p *ClonePool) Clone(src *Core) *Core {
	k := poolKey{cfg: src.Cfg, prog: src.prog}
	p.mu.Lock()
	var shell *Core
	if l := p.free[k]; len(l) > 0 {
		shell = l[len(l)-1]
		l[len(l)-1] = nil
		p.free[k] = l[:len(l)-1]
	}
	p.mu.Unlock()
	if shell == nil {
		return src.Clone()
	}
	src.cloneInto(shell)
	return shell
}

// Release returns a clone to the pool once its run is classified. The
// caller must not use c afterwards: its slices will back a future clone.
// Shells beyond the per-key bound are dropped for the GC. Retained
// shells have their copy-on-write state stripped first, so an idle pool
// holds only fixed-size microarchitectural arrays — never the privatised
// cache blocks or frozen snapshot lineage of the campaign that retired
// them.
func (p *ClonePool) Release(c *Core) {
	if c == nil {
		return
	}
	c.dropSnapshotState()
	k := poolKey{cfg: c.Cfg, prog: c.prog}
	p.mu.Lock()
	if len(p.free[k]) < p.max {
		p.free[k] = append(p.free[k], c)
	}
	p.mu.Unlock()
}

// dropSnapshotState releases every reference a retired shell holds into
// shared copy-on-write state (memory pages, cache blocks and their frozen
// generations), keeping only the allocations cloneInto will reuse. The
// shell is unusable until its next cloneInto.
func (c *Core) dropSnapshotState() {
	c.dmem.Reset()
	c.imem.Reset()
	c.l1i.Reset()
	c.l1d.Reset()
	c.l2.Reset()
}
