package cpu

import (
	"unsafe"

	"merlin/internal/lifetime"
	"merlin/internal/mem"
)

// Clone returns a snapshot of the whole machine state that can be stepped
// independently of the original. Campaigns use clones as checkpoints so
// each injection run replays only from the nearest snapshot before its
// fault cycle instead of from reset (the run-acceleration idea of
// Chatzidimitriou & Gizopoulos [12], orthogonal to MeRLiN itself).
//
// Memory and all three cache levels are copy-on-write: cloning freezes
// their current state into shared generations and copies pointers, not
// bytes; each machine privatises a page or cache set only when it next
// touches it. Cloning a frozen snapshot (one not stepped since its last
// Clone) never mutates it, so any number of goroutines may Clone one
// frozen snapshot concurrently — the checkpoint ladders rely on this.
//
// The lifetime tracer is not cloned: snapshots serve injection runs, which
// are never traced. Cloning a core with an attached tracer panics.
func (c *Core) Clone() *Core {
	n := new(Core)
	c.cloneInto(n)
	return n
}

// cloneInto copies the complete machine state of c into n, reusing n's
// existing allocations (slices, maps, predictor tables) wherever the
// capacities fit. It overwrites every field — a recycled shell from a
// ClonePool is scrubbed by copy-over, never trusted. n must not be c.
func (c *Core) cloneInto(n *Core) {
	assertf(c.tracer == nil, "Clone of a traced core")
	n.Cfg = c.Cfg
	n.prog = c.prog
	n.cracked = c.cracked // immutable, shared

	n.cycle = c.cycle
	n.seqGen = c.seqGen
	n.halted = c.halted

	n.regVal = append(n.regVal[:0], c.regVal...)
	n.regReady = append(n.regReady[:0], c.regReady...)
	n.rat = c.rat
	n.freeList = append(n.freeList[:0], c.freeList...)

	n.rob = append(n.rob[:0], c.rob...)
	n.robHead = c.robHead
	n.robLen = c.robLen
	n.iq = append(n.iq[:0], c.iq...)

	n.sq = append(n.sq[:0], c.sq...)
	n.sqHead = c.sqHead
	n.sqLen = c.sqLen
	n.lqLen = c.lqLen
	n.drainBusyUntil = c.drainBusyUntil

	n.fetchPC = c.fetchPC
	n.fetchHalted = c.fetchHalted
	n.fetchReadyAt = c.fetchReadyAt
	n.chargedLine = c.chargedLine
	n.decodeQ = append(n.decodeQ[:0], c.decodeQ...)
	n.dqHead = c.dqHead
	n.pred = c.pred.cloneInto(n.pred)

	n.curTemps = c.curTemps
	n.tempAcc = c.tempAcc
	n.curTempCount = c.curTempCount
	n.lastSQ = c.lastSQ

	n.output = append(n.output[:0], c.output...)
	n.excLog = append(n.excLog[:0], c.excLog...)
	n.committedInsts = c.committedInsts
	n.committedUops = c.committedUops
	n.lastCommitAt = c.lastCommitAt

	n.archRegs = c.archRegs

	n.stats = c.stats
	n.tracer = nil
	n.traceW = nil
	n.witness = nil
	n.mutate = nil

	if n.dmem == nil {
		n.dmem = c.dmem.Clone()
	} else {
		c.dmem.CloneInto(n.dmem)
	}
	if n.imem == nil {
		n.imem = c.imem.Clone()
	} else {
		c.imem.CloneInto(n.imem)
	}
	if n.l2 == nil {
		n.l2 = c.l2.Clone(n.dmem)
	} else {
		c.l2.CloneInto(n.l2, n.dmem)
	}
	if n.l1d == nil {
		n.l1d = c.l1d.Clone(n.l2)
	} else {
		c.l1d.CloneInto(n.l1d, n.l2)
	}
	if n.l1i == nil {
		n.l1i = c.l1i.Clone(n.imem)
	} else {
		c.l1i.CloneInto(n.l1i, n.imem)
	}
	// Event hooks fire only when a tracer is attached; clones are
	// untraced, so the rewired hooks stay dormant but keep the invariant
	// that every core's hooks point at itself.
	n.l1d.OnFill = func(set, way int, cycle uint64) {
		n.emitL1D(lifetime.EvWrite, set, way, ^uint64(0))
	}
	n.l1d.OnEvict = func(set, way int, kind mem.EvictKind, cycle uint64) {
		if kind == mem.EvictDirty {
			n.emitL1D(lifetime.EvWBRead, set, way, ^uint64(0))
		} else {
			n.emitL1D(lifetime.EvInvalidate, set, way, ^uint64(0))
		}
	}
}

// cloneInto copies the predictor state into dst, reusing its tables when
// the sizes match; it returns dst (or a fresh predictor when dst is nil or
// differently sized).
func (p *predictor) cloneInto(dst *predictor) *predictor {
	if dst == nil || len(dst.localHist) != len(p.localHist) ||
		len(dst.localPred) != len(p.localPred) || len(dst.globalPred) != len(p.globalPred) ||
		len(dst.btbTag) != len(p.btbTag) || len(dst.ras) != len(p.ras) {
		dst = &predictor{
			localHist:  make([]uint16, len(p.localHist)),
			localPred:  make([]uint8, len(p.localPred)),
			globalPred: make([]uint8, len(p.globalPred)),
			chooser:    make([]uint8, len(p.chooser)),
			btbTag:     make([]int64, len(p.btbTag)),
			btbTarget:  make([]int64, len(p.btbTarget)),
			ras:        make([]int64, len(p.ras)),
		}
	}
	copy(dst.localHist, p.localHist)
	copy(dst.localPred, p.localPred)
	copy(dst.globalPred, p.globalPred)
	copy(dst.chooser, p.chooser)
	copy(dst.btbTag, p.btbTag)
	copy(dst.btbTarget, p.btbTarget)
	copy(dst.ras, p.ras)
	dst.ghr = p.ghr
	dst.commitGHR = p.commitGHR
	dst.rasTop = p.rasTop
	return dst
}

// Footprint estimates the machine snapshot's resident bytes: the fixed
// microarchitectural arrays at their allocated sizes, caches at their full
// geometry, and memory at its reachable page count. Copy-on-write sharing
// with other clones is not discounted, so summing Footprint over a
// snapshot lineage is a conservative (over-counting) bound — exactly what
// a byte-budgeted snapshot cache wants.
func (c *Core) Footprint() int64 {
	const shellBytes = 4096 // Core struct + map headers, order of magnitude
	f := int64(shellBytes)
	f += int64(len(c.regVal))*8 + int64(len(c.regReady))
	f += int64(len(c.rob)) * int64(unsafe.Sizeof(robEntry{}))
	f += int64(len(c.sq)) * int64(unsafe.Sizeof(sqEntry{}))
	f += int64(cap(c.decodeQ)) * int64(unsafe.Sizeof(pendingUop{}))
	f += int64(cap(c.iq))*4 + int64(cap(c.freeList))*2
	f += int64(cap(c.output))*8 + int64(cap(c.excLog))*4
	p := c.pred
	f += int64(len(p.localHist))*2 + int64(len(p.localPred)) + int64(len(p.globalPred)) +
		int64(len(p.chooser)) + int64(len(p.btbTag))*8 + int64(len(p.btbTarget))*8 + int64(len(p.ras))*8
	f += c.l1i.FootprintBytes() + c.l1d.FootprintBytes() + c.l2.FootprintBytes()
	f += c.dmem.ResidentBytes() + c.imem.ResidentBytes()
	return f
}
