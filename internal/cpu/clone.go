package cpu

import (
	"merlin/internal/lifetime"
	"merlin/internal/mem"
)

// Clone returns a deep copy of the whole machine state: a snapshot that
// can be stepped independently of the original. Campaigns use clones as
// checkpoints so each injection run replays only from the nearest snapshot
// before its fault cycle instead of from reset (the run-acceleration idea
// of Chatzidimitriou & Gizopoulos [12], orthogonal to MeRLiN itself).
//
// The lifetime tracer is not cloned: snapshots serve injection runs, which
// are never traced. Cloning a core with an attached tracer panics.
func (c *Core) Clone() *Core {
	assertf(c.tracer == nil, "Clone of a traced core")
	n := &Core{
		Cfg:     c.Cfg,
		prog:    c.prog,
		cracked: c.cracked, // immutable, shared

		cycle:  c.cycle,
		seqGen: c.seqGen,
		halted: c.halted,

		regVal:   append([]uint64(nil), c.regVal...),
		regReady: append([]bool(nil), c.regReady...),
		rat:      c.rat,
		freeList: append([]int16(nil), c.freeList...),

		rob:     append([]robEntry(nil), c.rob...),
		robHead: c.robHead,
		robLen:  c.robLen,
		iq:      append([]int32(nil), c.iq...),

		sq:             append([]sqEntry(nil), c.sq...),
		sqHead:         c.sqHead,
		sqLen:          c.sqLen,
		lqLen:          c.lqLen,
		drainBusyUntil: c.drainBusyUntil,

		fetchPC:      c.fetchPC,
		fetchHalted:  c.fetchHalted,
		fetchReadyAt: c.fetchReadyAt,
		chargedLine:  c.chargedLine,
		decodeQ:      append([]pendingUop(nil), c.decodeQ...),
		dqHead:       c.dqHead,
		pred:         c.pred.clone(),

		curTemps:     c.curTemps,
		tempAcc:      c.tempAcc,
		curTempCount: c.curTempCount,
		lastSQ:       c.lastSQ,

		output:         append([]uint64(nil), c.output...),
		excLog:         append([]uint32(nil), c.excLog...),
		committedInsts: c.committedInsts,
		committedUops:  c.committedUops,
		lastCommitAt:   c.lastCommitAt,

		stats: c.stats,
	}
	n.dmem = c.dmem.Clone()
	n.imem = c.imem.Clone()
	n.l2 = c.l2.Clone(n.dmem)
	n.l1d = c.l1d.Clone(n.l2)
	n.l1i = c.l1i.Clone(n.imem)
	// Event hooks fire only when a tracer is attached; clones are
	// untraced, so the rewired hooks stay dormant but keep the invariant
	// that every core's hooks point at itself.
	n.l1d.OnFill = func(set, way int, cycle uint64) {
		n.emitL1D(lifetime.EvWrite, set, way, ^uint64(0))
	}
	n.l1d.OnEvict = func(set, way int, kind mem.EvictKind, cycle uint64) {
		if kind == mem.EvictDirty {
			n.emitL1D(lifetime.EvWBRead, set, way, ^uint64(0))
		} else {
			n.emitL1D(lifetime.EvInvalidate, set, way, ^uint64(0))
		}
	}
	return n
}

func (p *predictor) clone() *predictor {
	return &predictor{
		localHist:  append([]uint16(nil), p.localHist...),
		localPred:  append([]uint8(nil), p.localPred...),
		globalPred: append([]uint8(nil), p.globalPred...),
		chooser:    append([]uint8(nil), p.chooser...),
		ghr:        p.ghr,
		commitGHR:  p.commitGHR,
		btbTag:     append([]int64(nil), p.btbTag...),
		btbTarget:  append([]int64(nil), p.btbTarget...),
		ras:        append([]int64(nil), p.ras...),
		rasTop:     p.rasTop,
	}
}
