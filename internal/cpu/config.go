// Package cpu implements the simulated out-of-order x86-like core the
// reliability experiments run on: the substrate the paper obtains from Gem5.
//
// The core is deterministic and bit-accurate in the structures that matter
// to fault injection: the physical register file, the store-queue data
// field and the L1 data cache hold the program's actual values, and the
// fault injector flips exactly one stored bit at a chosen cycle. The model
// covers fetch with a tournament branch predictor / BTB / return address
// stack, decode into µops, register renaming with a free list, a unified
// issue queue, split load/store queues with store-to-load forwarding,
// wrong-path execution with full squash recovery, precise exceptions at
// commit, and a write-back two-level cache hierarchy.
package cpu

import "merlin/internal/mem"

// Config sizes the core. The zero value is not usable; start from
// DefaultConfig.
type Config struct {
	// Pipeline widths.
	FetchWidth  int
	RenameWidth int
	IssueWidth  int
	CommitWidth int
	DecodeQCap  int

	// Structure capacities (paper Table 1).
	PhysRegs   int // physical integer register file: 256 / 128 / 64
	IQEntries  int // issue queue: 32
	ROBEntries int // reorder buffer: 100
	SQEntries  int // store queue: 64 / 32 / 16
	LQEntries  int // load queue: 64 / 32 / 16

	// Functional units (paper Table 1).
	IntALUs    int // 6 (also used for address generation and branches)
	IntMulDiv  int // 2 complex integer units
	LoadPorts  int
	StorePorts int

	// Execution latencies in cycles.
	MulLatency int
	DivLatency int

	// Memory hierarchy.
	L1I        mem.CacheConfig
	L1D        mem.CacheConfig
	L2         mem.CacheConfig
	MemLatency int

	// Branch prediction.
	BTBEntries      int // direct-mapped BTB for indirect targets
	RASEntries      int
	LocalHistTable  int // entries of the per-PC history table
	LocalPredTable  int // entries of the local pattern table
	GlobalPredTable int // entries of the gshare table and chooser

	// CommitWatchdog raises a simulator assertion if no µop commits for
	// this many cycles; a healthy core never triggers it.
	CommitWatchdog uint64
}

// DefaultConfig returns the paper's baseline configuration (Table 1):
// out-of-order x86-style core, 256 integer physical registers, 32-entry
// issue queue, 100-entry ROB, 64+64 LSQ, 6 int ALUs + 2 complex units,
// 32KB 4-way L1 caches, 1MB 16-way L2, tournament predictor, 4K-entry BTB.
func DefaultConfig() Config {
	return Config{
		FetchWidth:  4,
		RenameWidth: 4,
		IssueWidth:  8,
		CommitWidth: 4,
		DecodeQCap:  24,

		PhysRegs:   256,
		IQEntries:  32,
		ROBEntries: 100,
		SQEntries:  64,
		LQEntries:  64,

		IntALUs:    6,
		IntMulDiv:  2,
		LoadPorts:  2,
		StorePorts: 2,

		MulLatency: 3,
		DivLatency: 20,

		L1I:        mem.CacheConfig{Name: "L1I", Size: 32 << 10, LineSize: 64, Ways: 4, HitLatency: 1},
		L1D:        mem.CacheConfig{Name: "L1D", Size: 32 << 10, LineSize: 64, Ways: 4, HitLatency: 2},
		L2:         mem.CacheConfig{Name: "L2", Size: 1 << 20, LineSize: 64, Ways: 16, HitLatency: 12},
		MemLatency: 80,

		BTBEntries:      4096,
		RASEntries:      16,
		LocalHistTable:  1024,
		LocalPredTable:  1024,
		GlobalPredTable: 4096,

		CommitWatchdog: 200_000,
	}
}

// WithRF returns the config with n physical integer registers.
func (c Config) WithRF(n int) Config { c.PhysRegs = n; return c }

// WithSQ returns the config with n store (and n load) queue entries.
func (c Config) WithSQ(n int) Config { c.SQEntries, c.LQEntries = n, n; return c }

// WithL1D returns the config with an L1 data cache of size bytes
// (64B lines, 4 ways, per Table 1).
func (c Config) WithL1D(size int) Config {
	c.L1D = mem.CacheConfig{Name: "L1D", Size: size, LineSize: 64, Ways: 4, HitLatency: 2}
	return c
}
