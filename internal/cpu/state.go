package cpu

import "slices"

// StateEqual reports whether two cores of the same configuration and
// program are in bit-identical machine states: every microarchitectural
// structure (registers, rename state, ROB, IQ, SQ, frontend, predictor),
// the full cache hierarchy including metadata and statistics, both
// memories, and the architectural results so far (output, exception log).
//
// The simulator is deterministic, so two state-equal cores evolve
// identically forever. Neither core may have a tracer attached.
func StateEqual(a, b *Core) bool {
	return controlEqual(a, b) &&
		slices.Equal(a.regVal, b.regVal) &&
		slices.Equal(a.sq, b.sq) &&
		a.l1d.Equal(b.l1d) && a.l1i.Equal(b.l1i) && a.l2.Equal(b.l2) &&
		a.dmem.Equal(b.dmem) && a.imem.Equal(b.imem)
}

// MaskedEquivalent reports whether faulty core c, compared against the
// fault-free core g at the same cycle, is guaranteed to finish the run
// with g's exact architectural outcome — i.e. the injected fault is
// already Masked. It is StateEqual relaxed in exactly one way: bits are
// allowed to differ inside storage that is provably dead, because the
// machine always fully overwrites it before its next read:
//
//   - values of free physical registers: a register returns to the free
//     list only when no in-flight µop references it, and its next
//     allocation writes the whole word (gated by regReady) before any
//     consumer issues;
//   - the data field of invalid store-queue slots: drain/squash clear
//     valid and dataOK together, forwarding and drain read data only when
//     dataOK, and the next STD rewrites the whole field;
//   - data bytes of invalid cache lines: lookup only hits valid lines and
//     a fill overwrites the entire line before validating it.
//
// Dead bits are never read, so they influence neither timing nor
// architectural results: both machines run on identically forever (dead
// locations are later overwritten with identical values or stay dead).
// The fork-on-fault scheduler uses this as its convergence early-exit.
func MaskedEquivalent(c, g *Core) bool {
	if !controlEqual(c, g) {
		return false
	}
	// Physical registers: differences only in dead (free, unreferenced)
	// registers.
	for i := range c.regVal {
		if c.regVal[i] != g.regVal[i] && !c.regDead(int16(i)) {
			return false
		}
	}
	// Store queue: data differences only in invalid slots.
	for i := range c.sq {
		a, b := c.sq[i], g.sq[i]
		if a.data != b.data && !a.valid {
			a.data, b.data = 0, 0
		}
		if a != b {
			return false
		}
	}
	return c.l1d.EqualLive(g.l1d) && c.l1i.EqualLive(g.l1i) && c.l2.EqualLive(g.l2) &&
		c.dmem.Equal(g.dmem) && c.imem.Equal(g.imem)
}

// regDead reports whether physical register p holds no live value: it is
// on the free list and no in-flight ROB entry or rename scratch register
// references it. (The free-list check alone is sufficient under the
// rename invariants; the reference scan is defence in depth.)
func (c *Core) regDead(p int16) bool {
	for _, a := range c.rat {
		if a == p {
			return false
		}
	}
	if !slices.Contains(c.freeList, p) {
		return false
	}
	for i := 0; i < c.robLen; i++ {
		e := &c.rob[(c.robHead+i)%len(c.rob)]
		if e.physDest == p || e.oldPhys == p || e.src1 == p || e.src2 == p ||
			e.freeT1 == p || e.freeT2 == p {
			return false
		}
	}
	if c.curTemps[0] == p || c.curTemps[1] == p || c.tempAcc[0] == p || c.tempAcc[1] == p {
		return false
	}
	return true
}

// controlEqual compares everything outside the fault-injectable data
// arrays: all scalar pipeline state, rename tables, ROB/IQ/decode
// contents, the predictor, and the architectural results so far. Cheap
// scalar state is compared first so diverged machines fail fast.
func controlEqual(a, b *Core) bool {
	assertf(a.tracer == nil && b.tracer == nil, "state comparison of a traced core")
	if a.cycle != b.cycle || a.seqGen != b.seqGen || a.halted != b.halted ||
		a.robHead != b.robHead || a.robLen != b.robLen ||
		a.sqHead != b.sqHead || a.sqLen != b.sqLen || a.lqLen != b.lqLen ||
		a.drainBusyUntil != b.drainBusyUntil ||
		a.fetchPC != b.fetchPC || a.fetchHalted != b.fetchHalted ||
		a.fetchReadyAt != b.fetchReadyAt || a.chargedLine != b.chargedLine ||
		a.dqHead != b.dqHead || a.rat != b.rat || a.archRegs != b.archRegs ||
		a.curTemps != b.curTemps || a.tempAcc != b.tempAcc ||
		a.curTempCount != b.curTempCount || a.lastSQ != b.lastSQ ||
		a.committedInsts != b.committedInsts || a.committedUops != b.committedUops ||
		a.lastCommitAt != b.lastCommitAt || a.stats != b.stats {
		return false
	}
	if !slices.Equal(a.regReady, b.regReady) ||
		!slices.Equal(a.freeList, b.freeList) || !slices.Equal(a.iq, b.iq) ||
		!slices.Equal(a.output, b.output) || !slices.Equal(a.excLog, b.excLog) ||
		!slices.Equal(a.rob, b.rob) || !slices.Equal(a.decodeQ, b.decodeQ) {
		return false
	}
	p, q := a.pred, b.pred
	return p.ghr == q.ghr && p.commitGHR == q.commitGHR && p.rasTop == q.rasTop &&
		slices.Equal(p.localHist, q.localHist) && slices.Equal(p.localPred, q.localPred) &&
		slices.Equal(p.globalPred, q.globalPred) && slices.Equal(p.chooser, q.chooser) &&
		slices.Equal(p.btbTag, q.btbTag) && slices.Equal(p.btbTarget, q.btbTarget) &&
		slices.Equal(p.ras, q.ras)
}
