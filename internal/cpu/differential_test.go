package cpu

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"merlin/internal/asm"
	"merlin/internal/interp"
)

// genProgram emits a random but always-terminating µx64 program: straight-
// line ALU blocks, aligned and (occasionally) misaligned memory traffic on
// a scratch buffer, bounded counted loops, data-dependent branches and
// outputs. Registers r1-r10 carry data; r11 = buffer base, r12 = zero,
// r13 = loop counter are reserved.
func genProgram(rng *rand.Rand) string {
	var b strings.Builder
	b.WriteString("\t.data\nbuf:\t.space 512\n\t.text\n")
	b.WriteString("\tli r11, buf\n\tli r12, 0\n")
	for r := 1; r <= 10; r++ {
		fmt.Fprintf(&b, "\tli r%d, %d\n", r, rng.Int63n(1<<20)-1<<19)
	}
	reg := func() int { return 1 + rng.Intn(10) }
	aluOps := []string{"add", "sub", "and", "or", "xor", "mul", "slt", "sltu"}
	immOps := []string{"addi", "andi", "ori", "xori", "slli", "srli", "srai", "muli"}
	label := 0

	emitOp := func() {
		switch rng.Intn(10) {
		case 0, 1, 2:
			fmt.Fprintf(&b, "\t%s r%d, r%d, r%d\n", aluOps[rng.Intn(len(aluOps))], reg(), reg(), reg())
		case 3, 4:
			imm := rng.Int63n(64)
			op := immOps[rng.Intn(len(immOps))]
			if strings.HasPrefix(op, "s") && op != "slti" {
				imm = rng.Int63n(63)
			}
			fmt.Fprintf(&b, "\t%s r%d, r%d, %d\n", op, reg(), reg(), imm)
		case 5:
			fmt.Fprintf(&b, "\tsd [r11+%d], r%d\n", 8*rng.Intn(32), reg())
		case 6:
			fmt.Fprintf(&b, "\tld r%d, [r11+%d]\n", reg(), 8*rng.Intn(32))
		case 7:
			sub := []string{"lw", "lhu", "lbu", "lb"}[rng.Intn(4)]
			// Possibly misaligned: exercises the fixup/DUE path.
			fmt.Fprintf(&b, "\t%s r%d, [r11+%d]\n", sub, reg(), rng.Intn(240))
		case 8:
			if rng.Intn(2) == 0 {
				fmt.Fprintf(&b, "\tldadd r%d, r%d, [r11+%d]\n", reg(), reg(), 8*rng.Intn(32))
			} else {
				fmt.Fprintf(&b, "\tstadd [r11+%d], r%d\n", 8*rng.Intn(32), reg())
			}
		case 9:
			fmt.Fprintf(&b, "\tout r%d\n", reg())
		}
	}

	for block := 0; block < 12; block++ {
		switch rng.Intn(4) {
		case 0: // counted loop
			n := 1 + rng.Intn(8)
			fmt.Fprintf(&b, "\tli r13, %d\nL%d:\n", n, label)
			for i := 0; i < 1+rng.Intn(3); i++ {
				emitOp()
			}
			fmt.Fprintf(&b, "\taddi r13, r13, -1\n\tbne r13, r12, L%d\n", label)
			label++
		case 1: // data-dependent skip
			fmt.Fprintf(&b, "\tblt r%d, r%d, L%d\n", reg(), reg(), label)
			emitOp()
			fmt.Fprintf(&b, "L%d:\n", label)
			label++
		default:
			for i := 0; i < 2+rng.Intn(3); i++ {
				emitOp()
			}
		}
	}
	for r := 1; r <= 5; r++ {
		fmt.Fprintf(&b, "\tout r%d\n", r)
	}
	b.WriteString("\thalt\n")
	return b.String()
}

// TestDifferentialAgainstInterpreter compares the out-of-order core against
// the in-order architectural interpreter on randomly generated programs:
// committed outputs, exception logs and halt causes must match exactly.
func TestDifferentialAgainstInterpreter(t *testing.T) {
	iterations := 150
	if testing.Short() {
		iterations = 25
	}
	for seed := 0; seed < iterations; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		src := genProgram(rng)
		prog, err := asm.Assemble(fmt.Sprintf("fuzz%d", seed), src)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		ref := interp.Run(prog, 2_000_000)
		if ref.Halt == interp.StepLimit {
			continue // unbounded by construction shouldn't happen; skip
		}

		for _, cfgName := range []string{"default", "small"} {
			cfg := DefaultConfig()
			if cfgName == "small" {
				cfg = cfg.WithRF(32).WithSQ(16).WithL1D(16 << 10)
				cfg.IQEntries = 8
				cfg.ROBEntries = 24
			}
			got := New(cfg, prog).Run(10_000_000)

			wantHalt := map[interp.HaltReason]HaltReason{
				interp.HaltOK:         HaltOK,
				interp.CrashPageFault: CrashPageFault,
				interp.CrashBadFetch:  CrashBadFetch,
				interp.CrashDivZero:   CrashDivZero,
			}[ref.Halt]
			if got.Halt != wantHalt {
				t.Fatalf("seed %d (%s): halt %v, interpreter says %v\n%s", seed, cfgName, got.Halt, wantHalt, src)
			}
			if !reflect.DeepEqual(got.Output, ref.Output) {
				t.Fatalf("seed %d (%s): output %v, interpreter says %v\n%s", seed, cfgName, got.Output, ref.Output, src)
			}
			if !reflect.DeepEqual(got.ExcLog, ref.ExcLog) {
				t.Fatalf("seed %d (%s): exceptions %v vs %v\n%s", seed, cfgName, got.ExcLog, ref.ExcLog, src)
			}
		}
	}
}
