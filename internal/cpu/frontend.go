package cpu

import "merlin/internal/isa"

// fetchStage fetches macro-instructions at fetchPC, predicts control flow,
// cracks into µops and appends them to the decode queue. Instruction cache
// latency is charged once per fetched line.
func (c *Core) fetchStage() {
	if c.fetchHalted || c.cycle < c.fetchReadyAt {
		return
	}
	if c.dqHead == len(c.decodeQ) {
		c.decodeQ = c.decodeQ[:0]
		c.dqHead = 0
	}
	fetched := 0
	for fetched < c.Cfg.FetchWidth {
		if len(c.decodeQ)-c.dqHead+4 > c.Cfg.DecodeQCap {
			return
		}
		pc := c.fetchPC
		if pc < 0 || pc >= int64(len(c.prog.Text)) {
			// Control flow left the text segment. Emit a poisoned µop
			// that crashes the process if it commits; if it is on the
			// wrong path the squash will clean it up.
			c.decodeQ = append(c.decodeQ, pendingUop{rip: pc, bad: true, last: true})
			c.fetchHalted = true
			return
		}
		line := pc * 8 / int64(c.Cfg.L1I.LineSize)
		if line != c.chargedLine {
			_, lat := c.l1i.Access(uint64(pc)*8, 8, false, c.cycle)
			c.chargedLine = line
			if lat > c.Cfg.L1I.HitLatency {
				c.fetchReadyAt = c.cycle + uint64(lat)
				return
			}
		}

		inst := c.prog.Text[pc]
		uops := c.cracked[pc]
		nextPC := pc + 1
		stop := false

		var pred pendingUop // branch prediction metadata for the branch µop
		switch {
		case isa.IsCondBranch(inst.Op):
			taken, snap := c.pred.predictCond(pc)
			pred.isCond = true
			pred.ghrSnap = snap
			if taken {
				pred.predTarget = inst.Imm
				nextPC = inst.Imm
				stop = true
			} else {
				pred.predTarget = pc + 1
			}
		case inst.Op == isa.JAL:
			pred.predTarget = inst.Imm
			nextPC = inst.Imm
			stop = true
			if inst.Rd == isa.RegLR {
				c.pred.push(pc + 1)
			}
		case inst.Op == isa.JALR:
			var target int64
			if inst.Rs1 == isa.RegLR && inst.Rd == isa.NoReg {
				target = c.pred.pop()
			} else if t, ok := c.pred.predictIndirect(pc); ok {
				target = t
			} else {
				target = pc + 1
			}
			pred.predTarget = target
			nextPC = target
			stop = true
		case inst.Op == isa.HALT:
			c.fetchHalted = true
			stop = true
		}

		for i, u := range uops {
			pu := pendingUop{rip: pc, uop: u, last: i == len(uops)-1}
			if u.Kind == isa.UopBr || u.Kind == isa.UopJmp {
				pu.predTarget = pred.predTarget
				pu.ghrSnap = pred.ghrSnap
				pu.isCond = pred.isCond
			}
			c.decodeQ = append(c.decodeQ, pu)
		}
		c.fetchPC = nextPC
		fetched++
		if stop {
			return
		}
	}
}

func needsIssue(k isa.UopKind) bool {
	return k != isa.UopNop && k != isa.UopHalt
}

// renameStage moves µops from the decode queue into the ROB, renaming
// architectural and temp registers onto the physical register file and
// allocating LSQ slots.
func (c *Core) renameStage() {
	for n := 0; n < c.Cfg.RenameWidth && c.dqHead < len(c.decodeQ); n++ {
		pu := &c.decodeQ[c.dqHead]
		if c.robLen == len(c.rob) {
			return
		}
		u := pu.uop
		if !pu.bad {
			if needsIssue(u.Kind) && len(c.iq) >= c.Cfg.IQEntries {
				return
			}
			if (u.Rd >= 0 || u.TempDst >= 0) && len(c.freeList) == 0 {
				return
			}
			if u.Kind == isa.UopSTA && c.sqLen == len(c.sq) {
				return
			}
			if u.Kind == isa.UopLoad && c.lqLen >= c.Cfg.LQEntries {
				return
			}
		}

		c.seqGen++
		idx := (c.robHead + c.robLen) % len(c.rob)
		c.robLen++
		e := &c.rob[idx]
		*e = robEntry{
			seq:      c.seqGen,
			rip:      pu.rip,
			uop:      u,
			last:     pu.last,
			physDest: -1, oldPhys: -1, archDest: -1,
			src1: -1, src2: -1, sqSlot: -1,
			freeT1: -1, freeT2: -1,
			predTarget: pu.predTarget,
			isCond:     pu.isCond,
			ghrSnap:    pu.ghrSnap,
		}

		if pu.bad {
			e.state = stDone
			e.exc = ExcBadFetch
			c.dqHead++
			continue
		}

		if u.UPC == 0 {
			c.curTempCount = 0
		}
		// Rename sources before allocating the destination: an
		// instruction may read and write the same architectural register.
		if u.TempSrc >= 0 {
			e.src1 = c.curTemps[u.TempSrc]
		} else if u.Rs1 >= 0 {
			e.src1 = c.rat[u.Rs1]
		}
		if u.Rs2 >= 0 {
			e.src2 = c.rat[u.Rs2]
		}

		if u.Rd >= 0 {
			p := c.allocPhys()
			e.physDest = p
			e.oldPhys = c.rat[u.Rd]
			e.archDest = u.Rd
			c.rat[u.Rd] = p
		} else if u.TempDst >= 0 {
			p := c.allocPhys()
			e.physDest = p
			c.curTemps[u.TempDst] = p
			assertf(c.curTempCount < len(c.tempAcc), "macro-op with more than %d temps", len(c.tempAcc))
			c.tempAcc[c.curTempCount] = p
			c.curTempCount++
		}
		if pu.last && c.curTempCount > 0 {
			e.freeT1 = c.tempAcc[0]
			if c.curTempCount > 1 {
				e.freeT2 = c.tempAcc[1]
			}
			c.curTempCount = 0
		}

		switch u.Kind {
		case isa.UopSTA:
			slot := int16((c.sqHead + c.sqLen) % len(c.sq))
			c.sqLen++
			c.sq[slot] = sqEntry{valid: true, seq: e.seq, size: u.MemSize}
			e.sqSlot = slot
			c.lastSQ = slot
		case isa.UopSTD:
			assertf(c.lastSQ >= 0, "STD with no preceding STA")
			e.sqSlot = c.lastSQ
		case isa.UopLoad:
			c.lqLen++
		}

		if needsIssue(u.Kind) {
			e.state = stWaiting
			c.iq = append(c.iq, int32(idx))
		} else {
			e.state = stDone
			e.doneAt = c.cycle
		}
		c.dqHead++
	}
}

func (c *Core) allocPhys() int16 {
	assertf(len(c.freeList) > 0, "free list underflow")
	p := c.freeList[len(c.freeList)-1]
	c.freeList = c.freeList[:len(c.freeList)-1]
	c.regReady[p] = false
	return p
}
