package cpu

import (
	"reflect"
	"strings"
	"testing"

	"merlin/internal/asm"
	"merlin/internal/lifetime"
)

func run(t *testing.T, src string) RunResult {
	t.Helper()
	p, err := asm.Assemble("test", src)
	if err != nil {
		t.Fatal(err)
	}
	c := New(DefaultConfig(), p)
	res := c.Run(2_000_000)
	return res
}

func wantOutput(t *testing.T, res RunResult, want ...uint64) {
	t.Helper()
	if res.Halt != HaltOK {
		t.Fatalf("halt = %v, want clean halt", res.Halt)
	}
	if !reflect.DeepEqual(res.Output, want) {
		t.Fatalf("output = %v, want %v", res.Output, want)
	}
}

func TestArithmetic(t *testing.T) {
	res := run(t, `
		li r1, 7
		li r2, 5
		add r3, r1, r2
		sub r4, r1, r2
		mul r5, r1, r2
		div r6, r1, r2
		rem r7, r1, r2
		out r3
		out r4
		out r5
		out r6
		out r7
		halt
	`)
	wantOutput(t, res, 12, 2, 35, 1, 2)
}

func TestNegativeArithmetic(t *testing.T) {
	res := run(t, `
		li r1, -7
		li r2, 2
		div r3, r1, r2
		rem r4, r1, r2
		sra r5, r1, r2
		srl r6, r1, r2
		slt r7, r1, r2
		sltu r8, r1, r2
		out r3
		out r4
		out r5
		out r6
		out r7
		out r8
		halt
	`)
	wantOutput(t, res,
		uint64(0xFFFFFFFFFFFFFFFD), // -3
		uint64(0xFFFFFFFFFFFFFFFF), // -1
		uint64(0xFFFFFFFFFFFFFFFE), // -7>>2 arithmetic = -2
		uint64(0x3FFFFFFFFFFFFFFE), // logical shift
		1, 0)
}

func TestLogicAndShifts(t *testing.T) {
	res := run(t, `
		li r1, 0xf0f0
		li r2, 0x0ff0
		and r3, r1, r2
		or  r4, r1, r2
		xor r5, r1, r2
		slli r6, r1, 4
		srli r7, r1, 4
		andi r8, r1, 0xff
		ori  r9, r1, 0x0f
		xori r10, r1, 0xffff
		out r3
		out r4
		out r5
		out r6
		out r7
		out r8
		out r9
		out r10
		halt
	`)
	wantOutput(t, res, 0x0f0, 0xfff0, 0xff00, 0xf0f00, 0xf0f, 0xf0, 0xf0ff, 0x0f0f)
}

func TestLoopSum(t *testing.T) {
	// sum 1..100 = 5050
	res := run(t, `
		li r1, 0
		li r2, 1
		li r3, 100
	loop:
		add r1, r1, r2
		addi r2, r2, 1
		ble r2, r3, loop
		out r1
		halt
	`)
	wantOutput(t, res, 5050)
}

func TestMemoryOps(t *testing.T) {
	res := run(t, `
		.data
	arr:	.word 10, 20, 30
	buf:	.space 32
		.text
		li r1, arr
		ld r2, [r1]
		ld r3, [r1+8]
		ld r4, [r1+16]
		add r5, r2, r3
		add r5, r5, r4
		li r6, buf
		sd [r6], r5
		ld r7, [r6]
		out r7
		; sub-word accesses
		li r8, 0x1122334455667788
		sd [r6+8], r8
		lw r9, [r6+8]
		lwu r10, [r6+8]
		lh r11, [r6+8]
		lb r12, [r6+8]
		lbu r13, [r6+12]
		out r9
		out r10
		out r11
		out r12
		out r13
		halt
	`)
	wantOutput(t, res, 60,
		0x55667788, // lw sign bit clear
		0x55667788,
		0x7788,
		uint64(0xFFFFFFFFFFFFFF88), // lb sign-extends 0x88
		0x44,                       // byte at offset 4 of the little-endian dword
	)
}

func TestStoreToLoadForwarding(t *testing.T) {
	// The load directly follows the store; the value must forward from the
	// SQ before the store drains.
	res := run(t, `
		.data
	buf:	.space 8
		.text
		li r1, buf
		li r2, 777
		sd [r1], r2
		ld r3, [r1]
		out r3
		halt
	`)
	wantOutput(t, res, 777)
}

func TestSubWordForwarding(t *testing.T) {
	res := run(t, `
		.data
	buf:	.space 8
		.text
		li r1, buf
		li r2, 0xcafebabe
		sd [r1], r2
		lh r3, [r1+2]   ; bytes 2..3 of the stored dword: 0xcafe -> sign-extends
		lbu r4, [r1+3]
		out r3
		out r4
		halt
	`)
	wantOutput(t, res, uint64(0xFFFFFFFFFFFFCAFE), 0xca)
}

func TestReadModifyWriteMacroOps(t *testing.T) {
	res := run(t, `
		.data
	cell:	.word 100
		.text
		li r1, cell
		li r2, 11
		ldadd r3, r2, [r1]   ; r3 = 100+11
		stadd [r1], r2       ; cell = 111... no: cell was 100, becomes 111
		ld r4, [r1]
		ldxor r5, r2, [r1]   ; 111 ^ 11
		out r3
		out r4
		out r5
		halt
	`)
	wantOutput(t, res, 111, 111, 111^11)
}

func TestCallRet(t *testing.T) {
	res := run(t, `
		li r1, 6
		call double
		out r1
		li r1, 21
		call double
		out r1
		halt
	double:
		add r1, r1, r1
		ret
	`)
	wantOutput(t, res, 12, 42)
}

func TestRecursion(t *testing.T) {
	// fib(10) = 55 with a recursive function using the simulated stack.
	res := run(t, `
		li r1, 10
		call fib
		out r2
		halt
	fib:	; r1 = n, returns r2
		li r3, 2
		blt r1, r3, base
		addi sp, sp, -24
		sd [sp], lr
		sd [sp+8], r1
		addi r1, r1, -1
		call fib
		ld r1, [sp+8]
		sd [sp+16], r2
		addi r1, r1, -2
		call fib
		ld r3, [sp+16]
		add r2, r2, r3
		ld lr, [sp]
		addi sp, sp, 24
		ret
	base:
		mv r2, r1
		ret
	`)
	wantOutput(t, res, 55)
}

func TestBranchKinds(t *testing.T) {
	res := run(t, `
		li r1, -1
		li r2, 1
		li r9, 0
		bltu r2, r1, a   ; unsigned: 1 < huge -> taken
		j fail
	a:	blt r1, r2, b    ; signed: -1 < 1 -> taken
		j fail
	b:	bge r2, r1, c    ; signed: 1 >= -1 -> taken
		j fail
	c:	bgeu r1, r2, d   ; unsigned: huge >= 1 -> taken
		j fail
	d:	beq r9, r9, e
		j fail
	e:	bne r1, r2, ok
		j fail
	fail:	li r9, 666
	ok:	out r9
		halt
	`)
	wantOutput(t, res, 0)
}

func TestIndirectJump(t *testing.T) {
	res := run(t, `
		li r1, target
		jalr r2, r1, 0
		out r2        ; skipped
		halt
	target:
		li r3, 9
		out r3
		halt
	`)
	wantOutput(t, res, 9)
}

func TestCrashBadFetch(t *testing.T) {
	res := run(t, `
		li r1, 123456
		jalr r2, r1, 0
		halt
	`)
	if res.Halt != CrashBadFetch {
		t.Fatalf("halt = %v, want bad-fetch crash", res.Halt)
	}
}

func TestCrashPageFaultLoad(t *testing.T) {
	res := run(t, `
		li r1, 0
		ld r2, [r1]   ; null pointer
		out r2
		halt
	`)
	if res.Halt != CrashPageFault {
		t.Fatalf("halt = %v, want page-fault crash", res.Halt)
	}
	if len(res.Output) != 0 {
		t.Errorf("output %v leaked past the fault", res.Output)
	}
}

func TestCrashPageFaultStore(t *testing.T) {
	res := run(t, `
		li r1, 0x7fffffff0000
		li r2, 1
		sd [r1], r2   ; wild store
		halt
	`)
	if res.Halt != CrashPageFault {
		t.Fatalf("halt = %v, want page-fault crash", res.Halt)
	}
}

func TestCrashDivZero(t *testing.T) {
	res := run(t, `
		li r1, 10
		li r2, 0
		div r3, r1, r2
		out r3
		halt
	`)
	if res.Halt != CrashDivZero {
		t.Fatalf("halt = %v, want div-zero crash", res.Halt)
	}
}

func TestDivMinByMinusOne(t *testing.T) {
	res := run(t, `
		li r1, -9223372036854775808
		li r2, -1
		div r3, r1, r2
		rem r4, r1, r2
		out r3
		out r4
		halt
	`)
	// Two's-complement wrap, like hardware.
	wantOutput(t, res, 0x8000000000000000, 0)
}

func TestMisalignedAccessIsDUENotCrash(t *testing.T) {
	res := run(t, `
		.data
	buf:	.space 16
		.text
		li r1, buf
		li r2, 0x1234567890
		sd [r1+1], r2   ; misaligned store: kernel fixup + exception log
		ld r3, [r1+1]   ; wait: misaligned load too
		out r3
		halt
	`)
	if res.Halt != HaltOK {
		t.Fatalf("halt = %v, want clean halt with fixups", res.Halt)
	}
	if len(res.ExcLog) == 0 {
		t.Fatal("misaligned accesses must log exceptions")
	}
	if res.Output[0] != 0x1234567890 {
		t.Fatalf("fixed-up misaligned access returned %#x", res.Output[0])
	}
}

func TestWrongPathFaultSuppressed(t *testing.T) {
	// The load of [r0-ish garbage] sits on the not-taken path of a branch
	// that is always taken; after the (initially mispredicted-as-not-taken
	// or predicted) branch resolves, the wrong-path load must be squashed
	// without crashing the machine.
	res := run(t, `
		li r1, 0
		li r5, 1
		li r6, 50
	loop:
		beq r5, r5, skip   ; always taken
		ld r9, [r1]        ; wild load on the never-taken path
	skip:
		addi r1, r1, 1
		blt r1, r6, loop
		out r1
		halt
	`)
	wantOutput(t, res, 50)
}

func TestCycleLimit(t *testing.T) {
	p, err := asm.Assemble("spin", `
	spin:	j spin
	`)
	if err != nil {
		t.Fatal(err)
	}
	c := New(DefaultConfig(), p)
	res := c.Run(10_000)
	if res.Halt != CycleLimit {
		t.Fatalf("halt = %v, want cycle limit", res.Halt)
	}
}

func TestDeterminism(t *testing.T) {
	src := `
		.data
	arr:	.space 256
		.text
		li r1, arr
		li r2, 0
		li r3, 32
	fill:
		mul r4, r2, r2
		sd [r1], r4
		addi r1, r1, 8
		addi r2, r2, 1
		blt r2, r3, fill
		li r1, arr
		li r2, 0
		li r5, 0
	sum:
		ld r4, [r1]
		add r5, r5, r4
		addi r1, r1, 8
		addi r2, r2, 1
		blt r2, r3, sum
		out r5
		halt
	`
	p, err := asm.Assemble("det", src)
	if err != nil {
		t.Fatal(err)
	}
	a := New(DefaultConfig(), p).Run(1_000_000)
	b := New(DefaultConfig(), p).Run(1_000_000)
	if a.Cycles != b.Cycles || !reflect.DeepEqual(a.Output, b.Output) || a.Stats != b.Stats {
		t.Fatalf("nondeterministic runs:\n%+v\n%+v", a, b)
	}
	var want uint64
	for i := uint64(0); i < 32; i++ {
		want += i * i
	}
	wantOutput(t, a, want)
}

func TestSmallConfigsStillWork(t *testing.T) {
	cfg := DefaultConfig().WithRF(64).WithSQ(16).WithL1D(16 << 10)
	p, err := asm.Assemble("small", `
		li r1, 0
		li r2, 200
		li r3, 0
	loop:
		addi sp, sp, -8
		sd [sp], r1
		ld r4, [sp]
		addi sp, sp, 8
		add r3, r3, r4
		addi r1, r1, 1
		blt r1, r2, loop
		out r3
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	res := New(cfg, p).Run(2_000_000)
	if res.Halt != HaltOK || res.Output[0] != 199*200/2 {
		t.Fatalf("small config run: halt=%v out=%v", res.Halt, res.Output)
	}
}

func TestFaultInjectionRF(t *testing.T) {
	// Flip a bit in the physical register holding a live value right
	// before it is read: the output must change by exactly that bit.
	src := `
		li r1, 100
		li r2, 0
		li r3, 1000
	loop:
		addi r2, r2, 1
		blt r2, r3, loop
		out r1
		halt
	`
	p, err := asm.Assemble("inj", src)
	if err != nil {
		t.Fatal(err)
	}
	golden := New(DefaultConfig(), p).Run(1_000_000)
	if golden.Halt != HaltOK {
		t.Fatal("golden run failed")
	}

	c := New(DefaultConfig(), p)
	// r1 is renamed once at the start; its physical register keeps the
	// value 100 until the out reads it near the end. Find the phys reg by
	// flipping in the architectural map after the rename settled.
	for c.Cycle() < 200 {
		c.Step()
	}
	phys := c.rat[1]
	c.FlipBit(lifetime.StructRF, int(phys), 3)
	res := c.Run(1_000_000)
	if res.Halt != HaltOK {
		t.Fatalf("halt = %v", res.Halt)
	}
	if res.Output[0] != golden.Output[0]^8 {
		t.Fatalf("output %d, want %d (bit 3 flipped)", res.Output[0], golden.Output[0]^8)
	}
}

func TestFaultInjectionL1D(t *testing.T) {
	// Write a value, evict nothing, flip a cache bit, read it back.
	src := `
		.data
	buf:	.space 8
		.text
		li r1, buf
		li r2, 0
		sd [r1], r2
		li r3, 0
		li r4, 2000
	spin:	addi r3, r3, 1
		blt r3, r4, spin
		ld r5, [r1]
		out r5
		halt
	`
	p, err := asm.Assemble("injc", src)
	if err != nil {
		t.Fatal(err)
	}
	c := New(DefaultConfig(), p)
	for c.Cycle() < 500 {
		c.Step()
	}
	entry, hit := c.l1d.Probe(uint64(p.Symbol("buf")))
	if !hit {
		t.Fatal("buf line not resident after the store")
	}
	off := c.l1d.Offset(uint64(p.Symbol("buf")))
	c.FlipBit(lifetime.StructL1D, entry, off*8+5)
	res := c.Run(1_000_000)
	if res.Halt != HaltOK || res.Output[0] != 32 {
		t.Fatalf("halt=%v output=%v, want [32]", res.Halt, res.Output)
	}
}

func TestStatsSanity(t *testing.T) {
	res := run(t, `
		li r1, 0
		li r2, 64
	loop:
		addi r1, r1, 1
		blt r1, r2, loop
		out r1
		halt
	`)
	if res.Stats.CommittedInsts == 0 || res.Stats.CommittedUops < res.Stats.CommittedInsts {
		t.Errorf("stats: %+v", res.Stats)
	}
	if res.Stats.Branches < 63 {
		t.Errorf("branches = %d, want >= 63", res.Stats.Branches)
	}
	if res.Cycles == 0 {
		t.Error("cycles = 0")
	}
}

func TestMispredictRecovery(t *testing.T) {
	// A data-dependent unpredictable branch pattern; correctness must
	// survive heavy misprediction.
	res := run(t, `
		li r1, 0     ; i
		li r2, 0     ; acc
		li r3, 1     ; lfsr-ish state
		li r4, 200
	loop:
		; pseudo-random decision: state = state*1103515245+12345; bit 16
		muli r3, r3, 1103515245
		addi r3, r3, 12345
		srli r5, r3, 16
		andi r5, r5, 1
		beq r5, r0, even
		addi r2, r2, 3
		j next
	even:
		addi r2, r2, 5
	next:
		addi r1, r1, 1
		blt r1, r4, loop
		out r2
		halt
	`)
	if res.Halt != HaltOK {
		t.Fatalf("halt = %v", res.Halt)
	}
	// Reference: compute the same in Go.
	state, acc := int64(1), uint64(0)
	for i := 0; i < 200; i++ {
		state = state*1103515245 + 12345
		if (state>>16)&1 != 0 {
			acc += 3
		} else {
			acc += 5
		}
	}
	if res.Output[0] != acc {
		t.Fatalf("output %d, want %d", res.Output[0], acc)
	}
	if res.Stats.Mispredicts == 0 {
		t.Error("expected mispredictions on a random pattern")
	}
}

func TestOutOnWrongPathSuppressed(t *testing.T) {
	res := run(t, `
		li r1, 1
		beq r1, r1, over  ; always taken
		out r1            ; must never appear
	over:
		li r2, 2
		out r2
		halt
	`)
	wantOutput(t, res, 2)
}

func TestTracerLifecycleEvents(t *testing.T) {
	p, err := asm.Assemble("tr", `
		.data
	buf:	.space 8
		.text
		li r1, buf
		li r2, 42
		sd [r1], r2
		ld r3, [r1]
		out r3
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	c := New(DefaultConfig(), p)
	tr := lifetime.NewTracer(lifetime.StructRF, lifetime.StructSQ, lifetime.StructL1D)
	c.AttachTracer(tr)
	res := c.Run(1_000_000)
	if res.Halt != HaltOK {
		t.Fatal(res.Halt)
	}
	if len(tr.Log(lifetime.StructRF).Events) == 0 {
		t.Error("no RF events recorded")
	}
	sqEvents := tr.Log(lifetime.StructSQ).Events
	var sqWrites, sqReads int
	for _, ev := range sqEvents {
		switch ev.Kind {
		case lifetime.EvWrite:
			sqWrites++
		case lifetime.EvRead:
			sqReads++
		}
	}
	if sqWrites == 0 {
		t.Error("no SQ write events")
	}
	// The store's data is read at least twice: forwarded to the load and
	// drained to the cache at commit.
	if sqReads < 2 {
		t.Errorf("SQ reads = %d, want >= 2 (forward + drain)", sqReads)
	}
	if len(tr.Log(lifetime.StructL1D).Events) == 0 {
		t.Error("no L1D events recorded")
	}
	// Event sequence numbers must be unique and increasing per log append
	// order is not guaranteed, but Seq values must be distinct.
	seen := map[uint64]bool{}
	for _, s := range []lifetime.StructureID{lifetime.StructRF, lifetime.StructSQ, lifetime.StructL1D} {
		for _, ev := range tr.Log(s).Events {
			if seen[ev.Seq] {
				t.Fatalf("duplicate event seq %d", ev.Seq)
			}
			seen[ev.Seq] = true
		}
	}
}

func TestPartialOverlapStoreLoadStalls(t *testing.T) {
	// A narrow store followed by a wider load overlapping it: the load
	// must wait for the store to drain and then read merged data.
	res := run(t, `
		.data
	buf:	.word 0
		.text
		li r1, buf
		li r2, 0x1111111111111111
		sd [r1], r2
		li r3, 0xff
		sb [r1+2], r3
		ld r4, [r1]    ; overlaps the byte store partially
		out r4
		halt
	`)
	wantOutput(t, res, 0x1111111111ff1111)
}

func TestRegisterReuseAcrossRename(t *testing.T) {
	// Write the same architectural register repeatedly; physical registers
	// must recycle without corruption even with a tiny register file.
	cfg := DefaultConfig().WithRF(24)
	p, err := asm.Assemble("reuse", `
		li r1, 0
		li r2, 0
		li r3, 500
	loop:
		addi r4, r1, 7
		addi r4, r4, 9
		add r2, r2, r4
		addi r1, r1, 1
		blt r1, r3, loop
		out r2
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	res := New(cfg, p).Run(2_000_000)
	var want uint64
	for i := uint64(0); i < 500; i++ {
		want += i + 16
	}
	if res.Halt != HaltOK || res.Output[0] != want {
		t.Fatalf("halt=%v out=%v want=%d", res.Halt, res.Output, want)
	}
}

func TestCommitTrace(t *testing.T) {
	p, err := asm.Assemble("tr", `
		li r1, 3
		out r1
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	c := New(DefaultConfig(), p)
	c.SetCommitTrace(&buf)
	if res := c.Run(10_000); res.Halt != HaltOK {
		t.Fatal(res.Halt)
	}
	trace := buf.String()
	for _, want := range []string{"li r1, 3", "out r1"} {
		if !strings.Contains(trace, want) {
			t.Errorf("trace missing %q:\n%s", want, trace)
		}
	}
	// Squashed wrong-path instructions must never appear in the trace.
	if n := strings.Count(trace, "\n"); n != 2 {
		t.Errorf("trace has %d lines, want 2 (halt commits without tracing)\n%s", n, trace)
	}
}

// TestNoPhysRegLeak verifies rename bookkeeping: after a clean halt, every
// physical register is either architecturally mapped or back on the free
// list — across heavy renaming, recursion, read-modify-write macro-ops and
// misprediction squashes, on a deliberately tiny register file.
func TestNoPhysRegLeak(t *testing.T) {
	srcs := map[string]string{
		"rename-churn": `
			li r1, 0
			li r2, 300
		loop:	addi r3, r1, 1
			addi r3, r3, 1
			addi r3, r3, 1
			addi r1, r1, 1
			blt r1, r2, loop
			out r3
			halt`,
		"rmw-and-calls": `
			.data
		cell:	.word 5
			.text
			li r1, cell
			li r2, 0
			li r4, 60
		loop:	stadd [r1], r2
			ldadd r3, r2, [r1]
			call bump
			addi r2, r2, 1
			blt r2, r4, loop
			out r3
			halt
		bump:	addi r3, r3, 1
			ret`,
		"mispredict-heavy": `
			li r1, 1
			li r2, 0
			li r4, 150
		loop:	muli r1, r1, 1103515245
			addi r1, r1, 12345
			srli r3, r1, 16
			andi r3, r3, 1
			beq r3, r0, even
			addi r2, r2, 1
		even:	addi r4, r4, -1
			li r3, 0
			bgt r4, r3, loop
			out r2
			halt`,
	}
	cfg := DefaultConfig().WithRF(24).WithSQ(16)
	cfg.ROBEntries = 20
	for name, src := range srcs {
		p, err := asm.Assemble(name, src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		c := New(cfg, p)
		if res := c.Run(5_000_000); res.Halt != HaltOK {
			t.Fatalf("%s: halt = %v", name, res.Halt)
		}
		mapped := map[int16]bool{}
		for _, phys := range c.rat {
			if mapped[phys] {
				t.Fatalf("%s: two architectural registers map to phys %d", name, phys)
			}
			mapped[phys] = true
		}
		// Any ROB residue (the HALT µop itself) holds no destinations.
		inFlight := 0
		for i := 0; i < c.robLen; i++ {
			e := &c.rob[(c.robHead+i)%len(c.rob)]
			if e.physDest >= 0 {
				inFlight++
			}
		}
		free := len(c.freeList)
		if free+len(mapped)+inFlight != cfg.PhysRegs {
			t.Errorf("%s: leak: %d free + %d mapped + %d in-flight != %d physical registers",
				name, free, len(mapped), inFlight, cfg.PhysRegs)
		}
		for _, f := range c.freeList {
			if mapped[f] {
				t.Errorf("%s: phys %d both free and architecturally mapped", name, f)
			}
		}
	}
}
