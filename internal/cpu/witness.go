package cpu

import "merlin/internal/isa"

// RetireEvent describes one macro-instruction leaving the pipeline: the
// committed architectural register file after the instruction's effects,
// plus the instruction's memory/output side effects. It is the
// state-witness the conformance engine diffs against the architectural
// reference interpreter at every retire boundary — not just at halt — so
// a wrong value is caught at the instruction that produced it, with the
// retiring PC, instead of surfacing thousands of instructions later as a
// bad output stream.
type RetireEvent struct {
	Seq  uint64   // global µop sequence number of the final µop
	RIP  int64    // macro-instruction index that retired
	Inst isa.Inst // the retired instruction

	// Regs is the committed architectural register file after this
	// instruction retired (the retirement RAT view, not the speculative
	// rename table).
	Regs [isa.NumArchRegs]uint64

	// Store effect: set when the instruction wrote memory (SD/SW/SH/SB/
	// STADD), captured from the store-queue entry at STD commit.
	HasStore  bool
	StoreAddr uint64
	StoreSize uint8
	StoreData uint64

	// Output effect: set when the instruction was an OUT.
	HasOut bool
	Out    uint64

	// Architectural log lengths after this retire, for incremental
	// comparison of the output stream and exception log.
	OutputLen int
	ExcLogLen int
}

// SetRetireWitness installs a hook called once per retired
// macro-instruction, at the retire boundary, with the committed
// architectural state. HALT and crashing instructions do not retire and
// are not witnessed. The hook must not mutate the core. Clones do not
// inherit the witness (like the lifetime tracer, it is an observation
// harness, not machine state). Pass nil to detach.
func (c *Core) SetRetireWitness(fn func(RetireEvent)) { c.witness = fn }

// SetResultMutator installs a test-only corruption hook applied to every
// µop result at execute. The conformance suite uses it to emulate a buggy
// core — a silent ALU error the lockstep oracle must catch — and campaign
// code never sets it. Clones do not inherit it. Pass nil to remove.
func (c *Core) SetResultMutator(fn func(seq uint64, op isa.Op, result uint64) uint64) {
	c.mutate = fn
}

// ArchRegs returns the committed architectural register file: the value
// each architectural register held after the most recent instruction to
// write it retired. Unlike the rename-table view, it is unaffected by
// in-flight speculation.
func (c *Core) ArchRegs() [isa.NumArchRegs]uint64 { return c.archRegs }

// Output returns the committed OUT stream so far. The slice is live;
// callers must not mutate it.
func (c *Core) Output() []uint64 { return c.output }

// ExcLog returns the committed recoverable-exception log so far. The
// slice is live; callers must not mutate it.
func (c *Core) ExcLog() []uint32 { return c.excLog }

// DrainPendingStores writes every committed-but-undrained store queue
// entry to the data cache immediately, ignoring drain-port timing. After
// a clean halt the SQ holds only committed stores awaiting the single
// drain port; conformance runs call this (followed by FlushDataCaches)
// before diffing memory against the reference interpreter. Campaigns
// never call it — timing-accurate draining is part of what they measure.
func (c *Core) DrainPendingStores() {
	for c.sqLen > 0 {
		s := &c.sq[c.sqHead]
		if !s.committed {
			break
		}
		c.dcacheWrite(s.addr, s.size, s.data, int32(s.drainRIP), s.drainUPC)
		s.valid, s.addrOK, s.dataOK, s.committed = false, false, false, false
		c.sqHead = (c.sqHead + 1) % len(c.sq)
		c.sqLen--
	}
}

// PageData exposes the 4KB page of simulated main memory backing addr
// read-only (nil when the page was never written). Conformance memory
// diffs walk resident pages instead of the whole address space; call
// DrainPendingStores and FlushDataCaches first so the memory image is
// architecturally complete.
func (c *Core) PageData(addr uint64) []byte { return c.dmem.PageData(addr) }
