package cpu

// predictor implements an Alpha-21264-style tournament predictor plus a
// direct-mapped BTB for indirect targets and a return address stack.
// Direction predictions use a speculative global history (repaired from the
// per-branch snapshot on squash); the pattern tables, local histories and
// the BTB are updated non-speculatively at commit.
type predictor struct {
	localHist  []uint16 // per-PC branch history, indexed by RIP
	localPred  []uint8  // 2-bit counters indexed by local history
	globalPred []uint8  // 2-bit counters indexed by global history
	chooser    []uint8  // 2-bit: >=2 selects the global component
	ghr        uint64   // speculative global history (fetch)
	commitGHR  uint64   // architectural global history (commit)

	btbTag    []int64
	btbTarget []int64

	ras    []int64
	rasTop int
}

func newPredictor(cfg Config) *predictor {
	p := &predictor{
		localHist:  make([]uint16, cfg.LocalHistTable),
		localPred:  make([]uint8, cfg.LocalPredTable),
		globalPred: make([]uint8, cfg.GlobalPredTable),
		chooser:    make([]uint8, cfg.GlobalPredTable),
		btbTag:     make([]int64, cfg.BTBEntries),
		btbTarget:  make([]int64, cfg.BTBEntries),
		ras:        make([]int64, cfg.RASEntries),
	}
	for i := range p.btbTag {
		p.btbTag[i] = -1
	}
	// Weakly taken: loops predict well from the start.
	for i := range p.localPred {
		p.localPred[i] = 2
	}
	for i := range p.globalPred {
		p.globalPred[i] = 2
	}
	for i := range p.chooser {
		p.chooser[i] = 2
	}
	return p
}

func (p *predictor) localIdx(rip int64) int {
	return int(uint64(rip)) % len(p.localHist)
}

// predictCond returns the taken/not-taken prediction for a conditional
// branch at rip and the pre-prediction GHR snapshot used for recovery. The
// speculative GHR is advanced with the prediction.
func (p *predictor) predictCond(rip int64) (taken bool, snap uint64) {
	snap = p.ghr
	lh := p.localHist[p.localIdx(rip)]
	local := p.localPred[int(lh)%len(p.localPred)] >= 2
	global := p.globalPred[p.ghr%uint64(len(p.globalPred))] >= 2
	taken = local
	if p.chooser[p.ghr%uint64(len(p.chooser))] >= 2 {
		taken = global
	}
	p.ghr = p.ghr<<1 | b2u(taken)
	return taken, snap
}

// repair restores the speculative GHR after a mispredicted branch whose
// pre-prediction snapshot and actual outcome are given.
func (p *predictor) repair(snap uint64, taken bool) {
	p.ghr = snap<<1 | b2u(taken)
}

// updateCond trains the direction tables with a committed conditional
// branch outcome.
func (p *predictor) updateCond(rip int64, taken bool) {
	li := p.localIdx(rip)
	lh := p.localHist[li]
	lpi := int(lh) % len(p.localPred)
	gpi := p.commitGHR % uint64(len(p.globalPred))
	chi := p.commitGHR % uint64(len(p.chooser))

	localSays := p.localPred[lpi] >= 2
	globalSays := p.globalPred[gpi] >= 2
	if localSays != globalSays {
		if globalSays == taken {
			sat(&p.chooser[chi], true)
		} else {
			sat(&p.chooser[chi], false)
		}
	}
	sat(&p.localPred[lpi], taken)
	sat(&p.globalPred[gpi], taken)
	p.localHist[li] = (lh<<1 | uint16(b2u(taken))) & 0x3ff
	p.commitGHR = p.commitGHR<<1 | b2u(taken)
}

// predictIndirect looks up the BTB for an indirect jump at rip; ok reports
// a tag hit.
func (p *predictor) predictIndirect(rip int64) (target int64, ok bool) {
	i := int(uint64(rip)) % len(p.btbTag)
	if p.btbTag[i] != rip {
		return 0, false
	}
	return p.btbTarget[i], true
}

// updateIndirect trains the BTB with a committed indirect target.
func (p *predictor) updateIndirect(rip, target int64) {
	i := int(uint64(rip)) % len(p.btbTag)
	p.btbTag[i] = rip
	p.btbTarget[i] = target
}

// push records a return address on the RAS (speculative, not repaired on
// squash: a cold or clobbered RAS only costs mispredictions).
func (p *predictor) push(ret int64) {
	p.ras[p.rasTop] = ret
	p.rasTop = (p.rasTop + 1) % len(p.ras)
}

// pop predicts a return target from the RAS.
func (p *predictor) pop() int64 {
	p.rasTop = (p.rasTop - 1 + len(p.ras)) % len(p.ras)
	return p.ras[p.rasTop]
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// sat moves a 2-bit saturating counter toward (up=true) or away from taken.
func sat(c *uint8, up bool) {
	if up {
		if *c < 3 {
			*c++
		}
	} else if *c > 0 {
		*c--
	}
}
