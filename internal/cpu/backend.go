package cpu

import (
	"merlin/internal/isa"
	"merlin/internal/lifetime"
)

// issueStage selects ready µops oldest-first up to the issue width and
// functional-unit limits and begins their execution. Operand values are
// captured (and their register-file reads recorded) at issue.
func (c *Core) issueStage() {
	alu, mul, ld, st := c.Cfg.IntALUs, c.Cfg.IntMulDiv, c.Cfg.LoadPorts, c.Cfg.StorePorts
	issued := 0
	kept := c.iq[:0]
	for _, idx := range c.iq {
		e := &c.rob[idx]
		keep := true
		if issued < c.Cfg.IssueWidth && c.srcsReady(e) {
			var fu *int
			switch e.uop.Kind {
			case isa.UopALU, isa.UopBr, isa.UopJmp, isa.UopOut, isa.UopSTA:
				fu = &alu
			case isa.UopMul:
				fu = &mul
			case isa.UopLoad:
				fu = &ld
			case isa.UopSTD:
				fu = &st
			default:
				assertf(false, "unissuable µop kind %d in IQ", e.uop.Kind)
			}
			if *fu > 0 && !(e.uop.Kind == isa.UopLoad && c.loadBlocked(e)) {
				*fu--
				issued++
				c.execute(e)
				keep = false
			}
		}
		if keep {
			kept = append(kept, idx)
		}
	}
	c.iq = kept
}

func (c *Core) srcsReady(e *robEntry) bool {
	return (e.src1 < 0 || c.regReady[e.src1]) && (e.src2 < 0 || c.regReady[e.src2])
}

// loadBlocked resolves memory disambiguation for a load about to issue.
// It computes the effective address, and reports true when the load must
// wait: an older store's address is still unknown, or an older overlapping
// store cannot fully forward yet. On false, e.addr holds the address and
// e.sqSlot the forwarding SQ slot (or -1 for a cache access).
func (c *Core) loadBlocked(e *robEntry) bool {
	var s1 uint64
	if e.src1 >= 0 {
		s1 = c.regVal[e.src1]
	}
	addr := s1 + uint64(e.uop.Imm)
	e.addr = addr
	e.sqSlot = -1
	if !c.dmem.InRange(addr, int(e.uop.MemSize)) {
		return false // faults at commit; nothing to disambiguate
	}
	size := uint64(e.uop.MemSize)
	var bestSeq uint64
	fwd := int16(-1)
	for i := 0; i < c.sqLen; i++ {
		slot := (c.sqHead + i) % len(c.sq)
		s := &c.sq[slot]
		if s.seq >= e.seq {
			break // SQ is in program order: the rest are younger
		}
		if !s.addrOK {
			return true // conservative: unknown older store address
		}
		if s.addr+uint64(s.size) <= addr || addr+size <= s.addr {
			continue
		}
		bestSeq = s.seq
		if s.addr <= addr && addr+size <= s.addr+uint64(s.size) && s.dataOK {
			fwd = int16(slot)
		} else {
			fwd = -1 // partial overlap or data not yet captured
		}
	}
	if bestSeq != 0 && fwd < 0 {
		return true // wait until the store drains or its data arrives
	}
	e.sqSlot = fwd
	return false
}

// execute captures operands, computes the µop's result and schedules its
// completion. Loads access the cache (or forward from the SQ) here; the
// cycle of these reads is the cycle the stored bits are consumed, which is
// what the vulnerable-interval analysis records.
func (c *Core) execute(e *robEntry) {
	e.state = stExecuting
	if e.src1 >= 0 {
		e.src1Val = c.regVal[e.src1]
		c.pendRead(e, lifetime.StructRF, int32(e.src1), 0xff)
	}
	if e.src2 >= 0 {
		e.src2Val = c.regVal[e.src2]
		c.pendRead(e, lifetime.StructRF, int32(e.src2), 0xff)
	}
	u := &e.uop
	switch u.Kind {
	case isa.UopALU:
		e.result = aluResult(u.Op, e.src1Val, e.src2Val, u.Imm)
		e.doneAt = c.cycle + 1
	case isa.UopMul:
		lat := c.Cfg.MulLatency
		if u.Op == isa.DIV || u.Op == isa.REM {
			lat = c.Cfg.DivLatency
			if e.src2Val == 0 {
				e.exc = ExcDivZero
				e.result = 0
			} else if u.Op == isa.DIV {
				e.result = uint64(int64(e.src1Val) / int64(e.src2Val))
			} else {
				e.result = uint64(int64(e.src1Val) % int64(e.src2Val))
			}
		} else {
			e.result = aluResult(u.Op, e.src1Val, e.src2Val, u.Imm)
		}
		e.doneAt = c.cycle + uint64(lat)
	case isa.UopOut:
		e.result = e.src1Val
		e.doneAt = c.cycle + 1
	case isa.UopBr:
		c.stats.Branches++
		if u.Op == isa.JAL {
			e.actTaken = true
			e.actTarget = u.Imm
		} else {
			e.actTaken = condTaken(u.Op, e.src1Val, e.src2Val)
			if e.actTaken {
				e.actTarget = u.Imm
			} else {
				e.actTarget = e.rip + 1
			}
		}
		e.result = uint64(e.rip + 1) // link value (JAL with a destination)
		e.doneAt = c.cycle + 1
	case isa.UopJmp:
		c.stats.Branches++
		e.actTaken = true
		e.actTarget = int64(e.src1Val) + u.Imm
		e.result = uint64(e.rip + 1)
		e.doneAt = c.cycle + 1
	case isa.UopSTA:
		addr := e.src1Val + uint64(u.Imm)
		e.addr = addr
		if !c.dmem.InRange(addr, int(u.MemSize)) {
			e.exc = ExcPageFault
		} else if addr%uint64(u.MemSize) != 0 {
			e.exc = ExcMisalign
		}
		e.doneAt = c.cycle + 1
	case isa.UopSTD:
		e.result = e.src1Val
		e.doneAt = c.cycle + 1
	case isa.UopLoad:
		c.stats.Loads++
		addr, size := e.addr, u.MemSize
		switch {
		case !c.dmem.InRange(addr, int(size)):
			e.exc = ExcPageFault
			e.result = 0
			e.doneAt = c.cycle + 2
		case e.sqSlot >= 0: // store-to-load forwarding
			if addr%uint64(size) != 0 {
				e.exc = ExcMisalign // kernel fixup, architecturally visible
			}
			c.stats.SQForwards++
			s := &c.sq[e.sqSlot]
			d := addr - s.addr
			e.result = extend(s.data>>(8*d), size, u.Signed)
			c.pendRead(e, lifetime.StructSQ, int32(e.sqSlot), maskRange(int(d), int(size)))
			e.doneAt = c.cycle + 2
		default:
			if addr%uint64(size) != 0 {
				e.exc = ExcMisalign // simulated kernel fixes it up below
			}
			v, lat := c.dcacheRead(e, addr, size)
			e.result = extend(v, size, u.Signed)
			e.doneAt = c.cycle + 1 + uint64(lat)
		}
	default:
		assertf(false, "executing µop kind %d", u.Kind)
	}
	if c.mutate != nil {
		e.result = c.mutate(e.seq, u.Op, e.result)
	}
}

// writebackStage publishes completed results to the physical register file
// and store queue, wakes dependants, and resolves branches. The oldest
// mispredicted branch completing this cycle squashes everything younger.
func (c *Core) writebackStage() {
	for i := 0; i < c.robLen; i++ {
		idx := (c.robHead + i) % len(c.rob)
		e := &c.rob[idx]
		if e.state != stExecuting || e.doneAt > c.cycle {
			continue
		}
		e.state = stDone
		if e.physDest >= 0 {
			c.regVal[e.physDest] = e.result
			c.regReady[e.physDest] = true
			c.emitWrite(lifetime.StructRF, int32(e.physDest), 0xff, int32(e.rip), e.uop.UPC)
		}
		switch e.uop.Kind {
		case isa.UopSTA:
			s := &c.sq[e.sqSlot]
			assertf(s.valid, "STA writeback to invalid SQ slot")
			s.addr = e.addr
			s.addrOK = true
		case isa.UopSTD:
			s := &c.sq[e.sqSlot]
			assertf(s.valid, "STD writeback to invalid SQ slot")
			s.data = e.result
			s.dataOK = true
			c.emitWrite(lifetime.StructSQ, int32(e.sqSlot), maskRange(0, int(s.size)), int32(e.rip), e.uop.UPC)
		case isa.UopBr, isa.UopJmp:
			if e.actTarget != e.predTarget {
				c.stats.Mispredicts++
				if e.isCond {
					c.pred.repair(e.ghrSnap, e.actTaken)
				}
				c.squashYounger(e.seq)
				c.redirect(e.actTarget)
				// Everything younger is gone; older entries were already
				// visited (the walk is oldest-first).
				return
			}
		}
	}
}

// redirect restarts fetch at target on the next cycle.
func (c *Core) redirect(target int64) {
	c.fetchPC = target
	c.fetchHalted = false
	c.chargedLine = -1
	c.fetchReadyAt = c.cycle + 1
}

// squashYounger removes every µop younger than seq, undoing renaming (in
// reverse order), LSQ allocation, and issue-queue residency. Their pending
// structure reads die with them: squashed reads never end vulnerable
// intervals.
func (c *Core) squashYounger(seq uint64) {
	for c.robLen > 0 {
		tIdx := (c.robHead + c.robLen - 1) % len(c.rob)
		t := &c.rob[tIdx]
		if t.seq <= seq {
			break
		}
		if t.physDest >= 0 {
			if t.archDest >= 0 {
				c.rat[t.archDest] = t.oldPhys
			}
			c.freePhys(t.physDest)
		}
		switch t.uop.Kind {
		case isa.UopLoad:
			c.lqLen--
		case isa.UopSTA:
			tail := (c.sqHead + c.sqLen - 1) % len(c.sq)
			assertf(int16(tail) == t.sqSlot, "SQ rollback out of order: tail %d, slot %d", tail, t.sqSlot)
			s := &c.sq[tail]
			s.valid, s.addrOK, s.dataOK = false, false, false
			c.emitInvalidate(lifetime.StructSQ, int32(tail), 0xff)
			c.sqLen--
		}
		c.stats.SquashedUops++
		c.robLen--
	}
	kept := c.iq[:0]
	for _, idx := range c.iq {
		if e := &c.rob[idx]; e.seq <= seq && e.state == stWaiting {
			kept = append(kept, idx)
		}
	}
	c.iq = kept
	c.decodeQ = c.decodeQ[:0]
	c.dqHead = 0
	c.curTempCount = 0
	c.lastSQ = -1
}

// dcacheRead reads size bytes at addr through the L1D, splitting at line
// boundaries (misaligned accesses after kernel fixup), recording the byte
// positions read on the consuming µop, and returning the little-endian
// value and total latency.
func (c *Core) dcacheRead(e *robEntry, addr uint64, size uint8) (uint64, int) {
	var val uint64
	shift, lat := 0, 0
	remaining := int(size)
	for remaining > 0 {
		off := c.l1d.Offset(addr)
		n := min(remaining, c.l1d.LineSize()-off)
		entry, l := c.l1d.Access(addr, n, false, c.cycle)
		lat += l
		data := c.l1d.EntryData(entry)
		for i := 0; i < n; i++ {
			val |= uint64(data[off+i]) << shift
			shift += 8
		}
		c.pendRead(e, lifetime.StructL1D, int32(entry), maskRange(off, n))
		addr += uint64(n)
		remaining -= n
	}
	return val, lat
}

// dcacheWrite stores the low size bytes of data at addr through the L1D,
// splitting at line boundaries and emitting byte-precise write events
// stamped with the draining store's static location. It returns the total
// access latency (the drain-port occupancy).
func (c *Core) dcacheWrite(addr uint64, size uint8, data uint64, rip int32, upc uint8) int {
	remaining := int(size)
	lat := 0
	for remaining > 0 {
		off := c.l1d.Offset(addr)
		n := min(remaining, c.l1d.LineSize()-off)
		entry, l := c.l1d.Access(addr, n, true, c.cycle)
		lat += l
		arr := c.l1d.EntryData(entry)
		for i := 0; i < n; i++ {
			arr[off+i] = byte(data)
			data >>= 8
		}
		c.emitWrite(lifetime.StructL1D, int32(entry), maskRange(off, n), rip, upc)
		addr += uint64(n)
		remaining -= n
	}
	return lat
}

// maskRange returns the byte mask covering bytes [off, off+n).
func maskRange(off, n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return ((uint64(1) << n) - 1) << off
}

// extend truncates v to size bytes and zero- or sign-extends it.
func extend(v uint64, size uint8, signed bool) uint64 {
	bits := uint(size) * 8
	if bits >= 64 {
		return v
	}
	v &= (uint64(1) << bits) - 1
	if signed && v&(uint64(1)<<(bits-1)) != 0 {
		v |= ^uint64(0) << bits
	}
	return v
}

func aluResult(op isa.Op, s1, s2 uint64, imm int64) uint64 {
	switch op {
	case isa.ADD:
		return s1 + s2
	case isa.ADDI:
		return s1 + uint64(imm)
	case isa.SUB:
		return s1 - s2
	case isa.AND:
		return s1 & s2
	case isa.ANDI:
		return s1 & uint64(imm)
	case isa.OR:
		return s1 | s2
	case isa.ORI:
		return s1 | uint64(imm)
	case isa.XOR:
		return s1 ^ s2
	case isa.XORI:
		return s1 ^ uint64(imm)
	case isa.SLL:
		return s1 << (s2 & 63)
	case isa.SLLI:
		return s1 << (uint64(imm) & 63)
	case isa.SRL:
		return s1 >> (s2 & 63)
	case isa.SRLI:
		return s1 >> (uint64(imm) & 63)
	case isa.SRA:
		return uint64(int64(s1) >> (s2 & 63))
	case isa.SRAI:
		return uint64(int64(s1) >> (uint64(imm) & 63))
	case isa.MUL:
		return s1 * s2
	case isa.MULI:
		return s1 * uint64(imm)
	case isa.SLT:
		if int64(s1) < int64(s2) {
			return 1
		}
		return 0
	case isa.SLTI:
		if int64(s1) < imm {
			return 1
		}
		return 0
	case isa.SLTU:
		if s1 < s2 {
			return 1
		}
		return 0
	case isa.LI:
		return uint64(imm)
	case isa.NOP:
		return 0
	}
	assertf(false, "aluResult: unhandled op %v", op)
	return 0
}

func condTaken(op isa.Op, s1, s2 uint64) bool {
	switch op {
	case isa.BEQ:
		return s1 == s2
	case isa.BNE:
		return s1 != s2
	case isa.BLT:
		return int64(s1) < int64(s2)
	case isa.BGE:
		return int64(s1) >= int64(s2)
	case isa.BLTU:
		return s1 < s2
	case isa.BGEU:
		return s1 >= s2
	}
	assertf(false, "condTaken: unhandled op %v", op)
	return false
}
