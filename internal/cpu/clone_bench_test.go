package cpu

import (
	"testing"

	"merlin/internal/asm"
)

// cloneBenchCore assembles a store-heavy loop and steps it to the middle of
// its run, so clones carry realistic cache, ROB and register pressure.
func cloneBenchCore(b *testing.B) *Core {
	b.Helper()
	p, err := asm.Assemble("clonebench", `
		.data
	arr:	.space 8192
		.text
		li r1, 0
		li r3, 1024
		li r5, arr
	fill:	mul r4, r1, r1
		sd [r5], r4
		addi r5, r5, 8
		addi r1, r1, 1
		blt r1, r3, fill
		out r1
		halt
	`)
	if err != nil {
		b.Fatal(err)
	}
	c := New(DefaultConfig(), p)
	for i := 0; i < 2000 && c.halted == Running; i++ {
		c.Step()
	}
	if c.halted != Running {
		b.Fatal("bench program finished too early")
	}
	return c
}

// BenchmarkClone measures the cost of one machine snapshot: what every
// per-fault fork and every checkpoint replay pays before simulating
// anything. Run with -benchmem; allocs/op is the headline metric the
// copy-on-write cache layers and the clone pool attack.
func BenchmarkClone(b *testing.B) {
	c := cloneBenchCore(b)
	frozen := c.Clone() // freeze once so iterations measure the steady state
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clone := frozen.Clone()
		_ = clone
	}
}

// BenchmarkClonePool measures the steady state the schedulers run in:
// every clone is rebuilt by copy-over into a recycled shell, so the
// per-fault allocation cost collapses to the copy-on-write bookkeeping.
func BenchmarkClonePool(b *testing.B) {
	c := cloneBenchCore(b)
	frozen := c.Clone()
	pool := NewClonePool(0)
	pool.Release(frozen.Clone()) // prime one shell
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clone := pool.Clone(frozen)
		pool.Release(clone)
	}
}

// BenchmarkCloneAfterSteps measures the fork-on-fault sweep pattern: the
// original advances a few cycles between snapshots, so every Clone pays
// the freeze (generation merge) for the state the sweep just dirtied.
func BenchmarkCloneAfterSteps(b *testing.B) {
	c := cloneBenchCore(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := 0; s < 8 && c.halted == Running; s++ {
			c.Step()
		}
		if c.halted != Running {
			b.StopTimer()
			c = cloneBenchCore(b)
			b.StartTimer()
		}
		_ = c.Clone()
	}
}
