package cpu

import (
	"testing"

	"merlin/internal/asm"
	"merlin/internal/lifetime"
)

// stateTestCore assembles a store-heavy loop and steps it partway so every
// structure (RF, SQ, caches, memory) holds meaningful state.
func stateTestCore(t *testing.T) *Core {
	t.Helper()
	p, err := asm.Assemble("state", `
		.data
	buf:	.space 512
		.text
		li r1, 0
		li r2, 1
		li r3, 200
		li r4, buf
	loop:
		add r1, r1, r2
		sd [r4], r1
		ld r5, [r4]
		addi r2, r2, 1
		ble r2, r3, loop
		out r1
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	c := New(DefaultConfig(), p)
	for i := 0; i < 400 && c.halted == Running; i++ {
		c.Step()
	}
	if c.halted != Running {
		t.Fatal("test program finished too early")
	}
	return c
}

func TestStateEqualClones(t *testing.T) {
	c := stateTestCore(t)
	a, b := c.Clone(), c.Clone()
	if !StateEqual(a, b) || !MaskedEquivalent(a, b) {
		t.Fatal("identical clones compare unequal")
	}
	a.Step()
	if StateEqual(a, b) {
		t.Fatal("cores one cycle apart compare equal")
	}
}

func TestMaskedEquivalentDeadRegister(t *testing.T) {
	c := stateTestCore(t)
	a, b := c.Clone(), c.Clone()
	dead := int16(-1)
	for p := int16(0); int(p) < len(a.regVal); p++ {
		if a.regDead(p) {
			dead = p
			break
		}
	}
	if dead < 0 {
		t.Fatal("no dead physical register mid-run")
	}
	a.FlipBit(lifetime.StructRF, int(dead), 17)
	if StateEqual(a, b) {
		t.Error("StateEqual must see the flipped bit")
	}
	if !MaskedEquivalent(a, b) {
		t.Error("a flip in a free, unreferenced register is dead state")
	}
	// The claim MaskedEquivalent makes: the run still ends identically.
	ra, rb := a.Run(2_000_000), b.Run(2_000_000)
	if ra.Halt != rb.Halt || len(ra.Output) != len(rb.Output) || ra.Output[0] != rb.Output[0] {
		t.Errorf("dead-state run diverged: %v vs %v", ra, rb)
	}
}

func TestMaskedEquivalentLiveRegister(t *testing.T) {
	c := stateTestCore(t)
	a, b := c.Clone(), c.Clone()
	live := a.rat[1] // physical register currently mapped to r1
	a.FlipBit(lifetime.StructRF, int(live), 3)
	if MaskedEquivalent(a, b) {
		t.Error("a flip in a RAT-mapped register is live state")
	}
}

func TestMaskedEquivalentInvalidCacheLine(t *testing.T) {
	c := stateTestCore(t)
	a, b := c.Clone(), c.Clone()
	invalid, valid := -1, -1
	for e := 0; e < a.l1d.Entries(); e++ {
		if a.l1d.Valid(e) {
			valid = e
		} else {
			invalid = e
		}
	}
	if invalid < 0 || valid < 0 {
		t.Fatal("need both a valid and an invalid L1D line mid-run")
	}
	a.FlipBit(lifetime.StructL1D, invalid, 5)
	if StateEqual(a, b) {
		t.Error("StateEqual must see the invalid-line flip")
	}
	if !MaskedEquivalent(a, b) {
		t.Error("a flip behind an invalid line is dead state")
	}
	a.FlipBit(lifetime.StructL1D, valid, 5)
	if MaskedEquivalent(a, b) {
		t.Error("a flip in a valid line is live state")
	}
}

func TestMaskedEquivalentInvalidSQSlot(t *testing.T) {
	c := stateTestCore(t)
	a, b := c.Clone(), c.Clone()
	slot := -1
	for i := range a.sq {
		if !a.sq[i].valid {
			slot = i
			break
		}
	}
	if slot < 0 {
		t.Skip("store queue full at the sampled cycle")
	}
	a.FlipBit(lifetime.StructSQ, slot, 9)
	if StateEqual(a, b) {
		t.Error("StateEqual must see the invalid-slot flip")
	}
	if !MaskedEquivalent(a, b) {
		t.Error("a flip in an invalid SQ slot's data is dead state")
	}
}
