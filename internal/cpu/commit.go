package cpu

import (
	"merlin/internal/isa"
	"merlin/internal/lifetime"
)

// commitStage retires done µops in program order, raising precise
// exceptions, draining stores to the data cache, training the branch
// predictor, releasing renamed registers and publishing the committed
// structure reads to the lifetime tracer.
func (c *Core) commitStage() {
	for n := 0; n < c.Cfg.CommitWidth && c.robLen > 0; n++ {
		e := &c.rob[c.robHead]
		if e.state != stDone {
			return
		}
		switch e.exc {
		case ExcNone:
		case ExcMisalign:
			// The simulated kernel fixed the access up; the event is
			// architecturally visible (extra exception => potential DUE).
			c.excLog = append(c.excLog, uint32(e.rip)<<3|uint32(ExcMisalign))
		case ExcPageFault:
			c.halted = CrashPageFault
			return
		case ExcDivZero:
			c.halted = CrashDivZero
			return
		case ExcBadFetch:
			c.halted = CrashBadFetch
			return
		}

		switch e.uop.Kind {
		case isa.UopHalt:
			c.halted = HaltOK
			c.lastCommitAt = c.cycle
			return
		case isa.UopOut:
			c.output = append(c.output, e.result)
		case isa.UopSTD:
			c.commitStore(e)
		case isa.UopLoad:
			c.lqLen--
		case isa.UopBr:
			if e.isCond {
				c.pred.updateCond(e.rip, e.actTaken)
				if c.tracer != nil {
					c.tracer.RecordBranch(e.seq, int32(e.rip), int32(e.actTarget), e.actTaken)
				}
			}
		case isa.UopJmp:
			c.pred.updateIndirect(e.rip, e.actTarget)
		}

		if e.archDest >= 0 {
			c.archRegs[e.archDest] = c.regVal[e.physDest]
		}
		if e.oldPhys >= 0 {
			c.freePhys(e.oldPhys)
		}
		if e.freeT1 >= 0 {
			c.freePhys(e.freeT1)
		}
		if e.freeT2 >= 0 {
			c.freePhys(e.freeT2)
		}
		if e.last {
			c.committedInsts++
		}
		c.traceCommit(e)
		c.flushReads(e)
		c.committedUops++
		c.lastCommitAt = c.cycle
		if e.last && c.witness != nil {
			ev := RetireEvent{
				Seq: e.seq, RIP: e.rip, Inst: c.prog.Text[e.rip],
				Regs:      c.archRegs,
				OutputLen: len(c.output), ExcLogLen: len(c.excLog),
			}
			switch e.uop.Kind {
			case isa.UopSTD:
				s := &c.sq[e.sqSlot]
				ev.HasStore, ev.StoreAddr, ev.StoreSize, ev.StoreData = true, s.addr, s.size, s.data
			case isa.UopOut:
				ev.HasOut, ev.Out = true, e.result
			}
			c.witness(ev)
		}
		c.robHead = (c.robHead + 1) % len(c.rob)
		c.robLen--
	}
}

// commitStore retires the store architecturally: the entry stays in the
// store queue, marked committed, until drainStage writes it to the data
// cache (stores leave the SQ when the cache write completes, not at
// commit — the residency that makes the SQ data field vulnerable).
func (c *Core) commitStore(e *robEntry) {
	s := &c.sq[e.sqSlot]
	assertf(s.valid && s.addrOK && s.dataOK, "committing incomplete store (valid=%v addrOK=%v dataOK=%v)", s.valid, s.addrOK, s.dataOK)
	s.committed = true
	s.drainRIP = e.rip
	s.drainUPC = e.uop.UPC
	s.drainSeq = e.seq
}

// drainStage writes the oldest committed store to the data cache through a
// single drain port: the next drain may start only after the current write
// completes. Reading the SQ data field on the way out is the committed
// read that ends the entry's vulnerable interval, attributed to the
// store's STD µop.
func (c *Core) drainStage() {
	if c.sqLen == 0 || c.cycle < c.drainBusyUntil {
		return
	}
	slot := c.sqHead
	s := &c.sq[slot]
	if !s.committed {
		return
	}
	c.stats.Stores++
	lat := c.dcacheWrite(s.addr, s.size, s.data, int32(s.drainRIP), s.drainUPC)
	c.drainBusyUntil = c.cycle + uint64(lat)
	if c.tracer != nil {
		if l := c.tracer.Log(lifetime.StructSQ); l != nil {
			l.Append(lifetime.Event{
				Seq: c.tracer.NextSeq(), Cycle: c.cycle, CommitSeq: s.drainSeq,
				Entry: int32(slot), Mask: maskRange(0, int(s.size)),
				Kind: lifetime.EvRead, RIP: int32(s.drainRIP), UPC: s.drainUPC,
			})
		}
	}
	s.valid, s.addrOK, s.dataOK, s.committed = false, false, false, false
	c.emitInvalidate(lifetime.StructSQ, int32(slot), 0xff)
	c.sqHead = (c.sqHead + 1) % len(c.sq)
	c.sqLen--
}
