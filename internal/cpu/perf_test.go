package cpu

import (
	"testing"

	"merlin/internal/asm"
)

func BenchmarkSimSpeed(b *testing.B) {
	p, err := asm.Assemble("perf", `
		.data
	arr:	.space 8192
		.text
		li r1, 0
		li r3, 1024
		li r5, arr
	fill:	mul r4, r1, r1
		sd [r5], r4
		addi r5, r5, 8
		addi r1, r1, 1
		blt r1, r3, fill
		li r9, 0
		li r6, 0
		li r10, 100
	outer:	li r5, arr
		li r1, 0
	sum:	ld r4, [r5]
		add r9, r9, r4
		addi r5, r5, 8
		addi r1, r1, 1
		blt r1, r3, sum
		addi r6, r6, 1
		blt r6, r10, outer
		out r9
		halt
	`)
	if err != nil {
		b.Fatal(err)
	}
	var cycles uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := New(DefaultConfig(), p).Run(100_000_000)
		if res.Halt != HaltOK {
			b.Fatal(res.Halt)
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles), "cycles/run")
}
