package cpu

import (
	"fmt"
	"sync"
	"testing"

	"merlin/internal/isa"
	"merlin/internal/lifetime"
	"merlin/internal/mem"
)

// runToEnd steps a core to completion and returns its result.
func runToEnd(c *Core) RunResult { return c.Run(2_000_000) }

// TestPooledCloneDifferential: a pooled clone — including one rebuilt into
// a recycled, dirty shell — must evolve bit-identically to a plain Clone
// of the same snapshot.
func TestPooledCloneDifferential(t *testing.T) {
	src := stateTestCore(t)
	frozen := src.Clone()
	pool := NewClonePool(0)

	want := runToEnd(frozen.Clone())

	// First pooled clone: fresh shell path.
	c1 := pool.Clone(frozen)
	if !StateEqual(c1, frozen.Clone()) {
		t.Fatal("pooled clone differs from plain clone")
	}
	got1 := runToEnd(c1)

	// Release the now-dirty (run-to-halt) shell and clone again: the
	// copy-over scrub path. State and outcome must be identical.
	pool.Release(c1)
	c2 := pool.Clone(frozen)
	if !StateEqual(c2, frozen.Clone()) {
		t.Fatal("recycled-shell clone differs from plain clone")
	}
	got2 := runToEnd(c2)

	for i, got := range []RunResult{got1, got2} {
		if got.Halt != want.Halt || got.Cycles != want.Cycles ||
			len(got.Output) != len(want.Output) || got.Stats != want.Stats {
			t.Fatalf("pooled run %d diverged: %+v vs %+v", i, got, want)
		}
		for j := range got.Output {
			if got.Output[j] != want.Output[j] {
				t.Fatalf("pooled run %d output[%d] = %d, want %d", i, j, got.Output[j], want.Output[j])
			}
		}
	}
}

// TestPooledCloneScrubsFaultyShell: a shell released after a faulty run
// (injected bits, advanced state) must come back indistinguishable from a
// fresh clone.
func TestPooledCloneScrubsFaultyShell(t *testing.T) {
	src := stateTestCore(t)
	frozen := src.Clone()
	pool := NewClonePool(0)

	dirty := pool.Clone(frozen)
	dirty.FlipBit(lifetime.StructRF, 3, 17)
	dirty.FlipBit(lifetime.StructL1D, 0, 5)
	for i := 0; i < 500 && dirty.Halted() == Running; i++ {
		dirty.Step()
	}
	pool.Release(dirty)

	clean := pool.Clone(frozen)
	if clean != dirty {
		t.Fatal("pool did not recycle the released shell (test needs the scrub path)")
	}
	if !StateEqual(clean, frozen.Clone()) {
		t.Fatal("recycled shell not scrubbed to the source state")
	}
}

// TestPooledCloneConfigMismatch: shells only serve sources of identical
// configuration and program; anything else falls back to fresh clones.
func TestPooledCloneConfigMismatch(t *testing.T) {
	a := stateTestCore(t)
	pool := NewClonePool(0)
	pool.Release(a.Clone())

	cfg := DefaultConfig()
	cfg.PhysRegs = 128
	b := New(cfg, a.prog)
	for i := 0; i < 100; i++ {
		b.Step()
	}
	clone := pool.Clone(b.Clone())
	if len(clone.regVal) != 128 {
		t.Fatalf("config-mismatched shell reused: %d physical registers, want 128", len(clone.regVal))
	}
}

// TestConcurrentPooledClones: many goroutines cloning one frozen snapshot
// through one pool, stepping and releasing, must all reproduce the serial
// outcome. Under -race this also proves pooled cloning of a frozen source
// is read-only on the source.
func TestConcurrentPooledClones(t *testing.T) {
	src := stateTestCore(t)
	frozen := src.Clone()
	want := runToEnd(frozen.Clone())
	pool := NewClonePool(0)

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				c := pool.Clone(frozen)
				got := runToEnd(c)
				if got.Halt != want.Halt || got.Cycles != want.Cycles {
					errs <- fmt.Errorf("worker %d run %d: %v/%d cycles, want %v/%d",
						id, i, got.Halt, got.Cycles, want.Halt, want.Cycles)
				}
				pool.Release(c)
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestStateHashPinned: the page-skipping fast path must produce the exact
// digest of hashing the whole zero-filled [DataBase, MemTop) range byte by
// byte, as the pre-optimization implementation did.
func TestStateHashPinned(t *testing.T) {
	c := stateTestCore(t)
	c.FlushDataCaches()

	// Reference: the original implementation's memory walk, fused with
	// the same register/cache/SQ tail StateHash still performs.
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	byteIn := func(b byte) { h = (h ^ uint64(b)) * prime }
	u64In := func(v uint64) {
		for i := 0; i < 8; i++ {
			byteIn(byte(v >> (8 * i)))
		}
	}
	buf := make([]byte, 4096)
	for addr := uint64(isa.DataBase); addr < isa.MemTop; addr += uint64(len(buf)) {
		c.dmem.ReadBytes(addr, buf)
		for _, b := range buf {
			byteIn(b)
		}
	}
	for a := 0; a < isa.NumArchRegs; a++ {
		u64In(c.regVal[c.rat[a]])
	}
	for _, cache := range []*mem.Cache{c.l1d, c.l2} {
		for e := 0; e < cache.Entries(); e++ {
			if !cache.Valid(e) {
				continue
			}
			u64In(uint64(e))
			for _, b := range cache.PeekEntryData(e) {
				byteIn(b)
			}
		}
	}
	for i := 0; i < c.sqLen; i++ {
		s := &c.sq[(c.sqHead+i)%len(c.sq)]
		if s.dataOK {
			u64In(s.data)
		}
	}

	if got := c.StateHash(); got != h {
		t.Fatalf("StateHash fast path diverged: got %#x, want %#x", got, h)
	}
}

// TestStateHashSeesMemoryDiff: the zero-page fast path must not blind the
// hash to real memory differences (including a page written to all
// zeros, which hashes like an untouched one — same bytes, same digest).
func TestStateHashSeesMemoryDiff(t *testing.T) {
	a := stateTestCore(t)
	b := a.Clone()
	a.FlushDataCaches()
	b.FlushDataCaches()
	if a.StateHash() != b.StateHash() {
		t.Fatal("identical clones hash differently")
	}
	b.dmem.WriteBytes(isa.DataBase+0x3000, []byte{1})
	if a.StateHash() == b.StateHash() {
		t.Fatal("memory difference not reflected in the hash")
	}
	b.dmem.WriteBytes(isa.DataBase+0x3000, []byte{0})
	if a.StateHash() != b.StateHash() {
		t.Fatal("an explicitly zeroed page must hash like an untouched one")
	}
}
