package relyzer

import (
	"testing"

	"merlin/internal/fault"
	"merlin/internal/lifetime"
	merlingroup "merlin/internal/merlin"
)

// analysis with two entries read by the same (rip, upc) at two different
// dynamic instances (commit seqs 100 and 200).
func testAnalysis() *lifetime.Analysis {
	log := &lifetime.Log{}
	seq := uint64(0)
	add := func(ev lifetime.Event) {
		seq++
		ev.Seq = seq
		log.Append(ev)
	}
	add(lifetime.Event{Kind: lifetime.EvWrite, Entry: 0, Mask: 0xff, Cycle: 10})
	add(lifetime.Event{Kind: lifetime.EvRead, Entry: 0, Mask: 0xff, Cycle: 20, RIP: 5, UPC: 0, CommitSeq: 100})
	add(lifetime.Event{Kind: lifetime.EvWrite, Entry: 1, Mask: 0xff, Cycle: 30})
	add(lifetime.Event{Kind: lifetime.EvRead, Entry: 1, Mask: 0xff, Cycle: 40, RIP: 5, UPC: 0, CommitSeq: 200})
	return lifetime.Build(log, lifetime.StructRF, 2, 8, 100)
}

// branch trace: instance 100 is followed by taken/taken, instance 200 by
// not-taken/taken — different depth-2 control paths.
func testBranches() []lifetime.BranchRec {
	return []lifetime.BranchRec{
		{CommitSeq: 110, RIP: 6, Taken: true},
		{CommitSeq: 120, RIP: 7, Taken: true},
		{CommitSeq: 210, RIP: 6, Taken: false},
		{CommitSeq: 220, RIP: 7, Taken: true},
	}
}

func faultsAt(cycles ...uint64) []fault.Fault {
	var out []fault.Fault
	for i, c := range cycles {
		entry := int32(0)
		if c > 25 {
			entry = 1
		}
		out = append(out, fault.Fault{Structure: lifetime.StructRF, Entry: entry, Bit: int32(i % 64), Cycle: c})
	}
	return out
}

func TestControlPathsSeparateGroups(t *testing.T) {
	a := testAnalysis()
	faults := faultsAt(15, 18, 35, 38)
	r := Reduce(a, faults, testBranches(), 2, 1)
	// Same (rip, upc) but different forward control paths: two groups.
	if len(r.Groups) != 2 {
		t.Fatalf("groups = %d, want 2 (distinct control paths)", len(r.Groups))
	}
	if r.Groups[0].Key.Path == r.Groups[1].Key.Path {
		t.Error("path signatures must differ")
	}
	for _, g := range r.Groups {
		if len(g.Reps) != 1 {
			t.Errorf("relyzer picks one pilot per group, got %d", len(g.Reps))
		}
		if len(g.Members) != 2 {
			t.Errorf("group members = %d, want 2", len(g.Members))
		}
	}
}

func TestSamePathsMergeAcrossInstances(t *testing.T) {
	a := testAnalysis()
	// Make both instances share the same forward path.
	branches := []lifetime.BranchRec{
		{CommitSeq: 110, RIP: 6, Taken: true},
		{CommitSeq: 210, RIP: 6, Taken: true},
	}
	faults := faultsAt(15, 35)
	r := Reduce(a, faults, branches, 1, 1)
	if len(r.Groups) != 1 {
		t.Fatalf("groups = %d, want 1 (identical paths merge)", len(r.Groups))
	}
	// One pilot represents both dynamic instances: the paper's criticism.
	if got := r.ReducedCount(); got != 1 {
		t.Errorf("reduced = %d", got)
	}
}

func TestPilotDeterministicBySeed(t *testing.T) {
	a := testAnalysis()
	faults := faultsAt(12, 14, 16, 18)
	r1 := Reduce(a, faults, testBranches(), 5, 7)
	r2 := Reduce(a, faults, testBranches(), 5, 7)
	if r1.Groups[0].Reps[0] != r2.Groups[0].Reps[0] {
		t.Error("same seed must pick the same pilot")
	}
}

func TestSinglePilotLargeGroups(t *testing.T) {
	// Groups aggregate per static instruction (RIP, uPC): instruction 1
	// is large with a single pilot, instruction 2 is large but split into
	// two byte groups (two reps total), instruction 3 is small.
	r := &merlingroup.Reduction{
		Groups: []merlingroup.Group{
			{Key: merlingroup.GroupKey{RIP: 1}, Members: make([]int32, 30), Reps: []int32{0}},
			{Key: merlingroup.GroupKey{RIP: 2}, Byte: 0, Members: make([]int32, 15), Reps: []int32{0}},
			{Key: merlingroup.GroupKey{RIP: 2}, Byte: 1, Members: make([]int32, 15), Reps: []int32{1}},
			{Key: merlingroup.GroupKey{RIP: 3}, Members: make([]int32, 5), Reps: []int32{0}},
		},
	}
	large, single := SinglePilotLargeGroups(r, 20)
	if large != 2 || single != 1 {
		t.Errorf("large=%d single=%d, want 2/1", large, single)
	}
}

func TestReduceUsesSharedPruning(t *testing.T) {
	a := testAnalysis()
	faults := append(faultsAt(15), fault.Fault{Structure: lifetime.StructRF, Entry: 0, Bit: 0, Cycle: 90})
	r := Reduce(a, faults, testBranches(), 5, 1)
	if r.ACEMasked != 1 {
		t.Errorf("ACE-masked = %d, want 1", r.ACEMasked)
	}
}

func TestReduce(t *testing.T) {
	a := testAnalysis()
	faults := faultsAt(15, 35)
	r := Reduce(a, faults, testBranches(), 5, 1)
	if got := Reduce(a, faults, testBranches(), 0, 1); got.StepOneGroups != r.StepOneGroups {
		t.Error("depth 0 must default to DefaultDepth")
	}
}
