// Package relyzer implements Relyzer's control-equivalence heuristic (Hari
// et al., ASPLOS 2012) transplanted to microarchitecture-level injection,
// reproducing the comparison of paper §4.4.4: post-ACE faults are grouped
// by the reading static instruction plus the depth-5 forward control-flow
// path of the dynamic instance, and one randomly chosen pilot per group is
// injected.
package relyzer

import (
	"math/rand"
	"sort"

	"merlin/internal/fault"
	"merlin/internal/lifetime"
	merlingroup "merlin/internal/merlin"
)

// DefaultDepth is the control-flow path depth Relyzer uses [45].
const DefaultDepth = 5

// pathSig hashes the outcomes of the next depth committed conditional
// branches after program-order position seq.
func pathSig(branches []lifetime.BranchRec, seq uint64, depth int) uint64 {
	i := sort.Search(len(branches), func(k int) bool { return branches[k].CommitSeq > seq })
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for j := 0; j < depth && i+j < len(branches); j++ {
		b := branches[i+j]
		h = (h ^ uint64(uint32(b.RIP))) * prime
		if b.Taken {
			h = (h ^ 1) * prime
		} else {
			h = (h ^ 2) * prime
		}
	}
	return h
}

// Reduce groups the post-ACE fault list by (RIP, uPC, path signature) and
// selects one pilot per group uniformly at random (deterministic from
// seed). The result reuses the merlin.Reduction machinery so speedup,
// extrapolation and homogeneity are computed identically for both methods.
func Reduce(a *lifetime.Analysis, faults []fault.Fault, branches []lifetime.BranchRec, depth int, seed int64) *merlingroup.Reduction {
	if depth <= 0 {
		depth = DefaultDepth
	}
	r := merlingroup.Prune(a, faults)

	groups := make(map[merlingroup.GroupKey][]int32)
	for _, fi := range r.HitFaults {
		iv := &a.Intervals[r.IntervalOf[fi]]
		key := merlingroup.GroupKey{
			RIP:  iv.RIP,
			UPC:  iv.UPC,
			Path: pathSig(branches, iv.EndSeq, depth),
		}
		groups[key] = append(groups[key], fi)
	}
	r.StepOneGroups = len(groups)

	keys := make([]merlingroup.GroupKey, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.RIP != b.RIP {
			return a.RIP < b.RIP
		}
		if a.UPC != b.UPC {
			return a.UPC < b.UPC
		}
		return a.Path < b.Path
	})

	rng := rand.New(rand.NewSource(seed))
	for _, key := range keys {
		members := groups[key]
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		pilot := members[rng.Intn(len(members))]
		r.Groups = append(r.Groups, merlingroup.Group{
			Key:     key,
			Byte:    0xFF, // Relyzer has no byte-position sub-grouping
			Members: members,
			Reps:    []int32{pilot},
		})
	}
	return r
}

// SinglePilotLargeGroups counts, per static instruction (RIP, uPC), how
// many with more than threshold correlated faults end up represented by a
// single injected pilot — the inaccuracy source §4.4.4 quantifies
// (Relyzer leaves ~9% of large-population static instructions with only
// one pilot; MeRLiN's byte sub-grouping leaves <2%).
func SinglePilotLargeGroups(r *merlingroup.Reduction, threshold int) (large, singlePilot int) {
	type key struct {
		rip int32
		upc uint8
	}
	members := map[key]int{}
	reps := map[key]int{}
	for _, g := range r.Groups {
		k := key{g.Key.RIP, g.Key.UPC}
		members[k] += len(g.Members)
		reps[k] += len(g.Reps)
	}
	for k, m := range members {
		if m > threshold {
			large++
			if reps[k] == 1 {
				singlePilot++
			}
		}
	}
	return large, singlePilot
}
