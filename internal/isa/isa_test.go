package isa

import "testing"

func TestCrackSingleUop(t *testing.T) {
	tests := []struct {
		in   Inst
		kind UopKind
	}{
		{Inst{Op: ADD, Rd: 1, Rs1: 2, Rs2: 3}, UopALU},
		{Inst{Op: MUL, Rd: 1, Rs1: 2, Rs2: 3}, UopMul},
		{Inst{Op: DIV, Rd: 1, Rs1: 2, Rs2: 3}, UopMul},
		{Inst{Op: LD, Rd: 1, Rs1: 2, Imm: 8}, UopLoad},
		{Inst{Op: BEQ, Rs1: 1, Rs2: 2, Imm: 10}, UopBr},
		{Inst{Op: JAL, Rd: 14, Imm: 10}, UopBr},
		{Inst{Op: JALR, Rd: NoReg, Rs1: 14}, UopJmp},
		{Inst{Op: OUT, Rs1: 3}, UopOut},
		{Inst{Op: HALT}, UopHalt},
		{Inst{Op: NOP}, UopNop},
	}
	for _, tt := range tests {
		uops := Crack(tt.in)
		if len(uops) != 1 {
			t.Fatalf("%v: got %d uops, want 1", tt.in, len(uops))
		}
		if uops[0].Kind != tt.kind {
			t.Errorf("%v: kind = %v, want %v", tt.in, uops[0].Kind, tt.kind)
		}
		if uops[0].UPC != 0 {
			t.Errorf("%v: uPC = %d, want 0", tt.in, uops[0].UPC)
		}
	}
}

func TestCrackStore(t *testing.T) {
	uops := Crack(Inst{Op: SW, Rs1: 2, Rs2: 3, Imm: 4})
	if len(uops) != 2 {
		t.Fatalf("store cracked into %d uops, want 2", len(uops))
	}
	if uops[0].Kind != UopSTA || uops[1].Kind != UopSTD {
		t.Fatalf("store uop kinds = %v, %v; want STA, STD", uops[0].Kind, uops[1].Kind)
	}
	if uops[0].UPC != 0 || uops[1].UPC != 1 {
		t.Errorf("store uPCs = %d, %d; want 0, 1", uops[0].UPC, uops[1].UPC)
	}
	if uops[0].Rs1 != 2 {
		t.Errorf("STA reads r%d, want r2", uops[0].Rs1)
	}
	if uops[1].Rs1 != 3 {
		t.Errorf("STD reads r%d, want r3", uops[1].Rs1)
	}
	if uops[0].MemSize != 4 {
		t.Errorf("STA size = %d, want 4", uops[0].MemSize)
	}
}

func TestCrackLoadOp(t *testing.T) {
	uops := Crack(Inst{Op: LDADD, Rd: 5, Rs1: 2, Rs2: 3, Imm: 16})
	if len(uops) != 2 {
		t.Fatalf("ldadd cracked into %d uops, want 2", len(uops))
	}
	if uops[0].Kind != UopLoad || uops[0].TempDst != 0 {
		t.Fatalf("ldadd uop0 = %+v, want load writing temp 0", uops[0])
	}
	if uops[1].Kind != UopALU || uops[1].TempSrc != 0 || uops[1].Rd != 5 {
		t.Fatalf("ldadd uop1 = %+v, want ALU reading temp 0 into r5", uops[1])
	}
}

func TestCrackSTADD(t *testing.T) {
	uops := Crack(Inst{Op: STADD, Rs1: 2, Rs2: 3, Imm: 16})
	if len(uops) != 4 {
		t.Fatalf("stadd cracked into %d uops, want 4", len(uops))
	}
	kinds := []UopKind{UopLoad, UopALU, UopSTA, UopSTD}
	for i, k := range kinds {
		if uops[i].Kind != k {
			t.Errorf("stadd uop%d kind = %v, want %v", i, uops[i].Kind, k)
		}
		if int(uops[i].UPC) != i {
			t.Errorf("stadd uop%d uPC = %d", i, uops[i].UPC)
		}
	}
	if uops[3].TempSrc != 1 {
		t.Errorf("STD must read the ALU temp, got TempSrc=%d", uops[3].TempSrc)
	}
}

func TestNumUopsMatchesCrack(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		in := Inst{Op: op, Rd: 1, Rs1: 2, Rs2: 3}
		if got, want := NumUops(op), len(Crack(in)); got != want {
			t.Errorf("NumUops(%v) = %d, Crack gives %d", op, got, want)
		}
	}
}

func TestMemSizeOf(t *testing.T) {
	tests := []struct {
		op   Op
		want uint8
	}{
		{LD, 8}, {LW, 4}, {LH, 2}, {LB, 1}, {SD, 8}, {SW, 4}, {SH, 2},
		{SB, 1}, {LWU, 4}, {LHU, 2}, {LBU, 1}, {STADD, 8}, {ADD, 0},
	}
	for _, tt := range tests {
		if got := MemSizeOf(tt.op); got != tt.want {
			t.Errorf("MemSizeOf(%v) = %d, want %d", tt.op, got, tt.want)
		}
	}
}

func TestOpString(t *testing.T) {
	if ADD.String() != "add" || HALT.String() != "halt" {
		t.Errorf("opcode names wrong: %s %s", ADD, HALT)
	}
	in := Inst{Op: ADD, Rd: 1, Rs1: 2, Rs2: 3}
	if in.String() != "add r1, r2, r3" {
		t.Errorf("disassembly wrong: %s", in)
	}
}

func TestProgramSymbolPanics(t *testing.T) {
	p := &Program{Name: "x", Symbols: map[string]int64{"a": 1}}
	if p.Symbol("a") != 1 {
		t.Fatal("Symbol lookup failed")
	}
	defer func() {
		if recover() == nil {
			t.Error("Symbol of missing label should panic")
		}
	}()
	p.Symbol("missing")
}
