// Package isa defines µx64, the 64-bit load/store instruction set executed
// by the out-of-order core in internal/cpu.
//
// µx64 stands in for the paper's x86-64: macro-instructions crack into one
// or more micro-operations (µops), each addressed by the pair
// (RIP = macro-instruction index, uPC = µop index inside the macro-op).
// That pair is the grouping key of MeRLiN's fault-list reduction, so the ISA
// deliberately contains multi-µop instructions: a store cracks into a
// store-address µop (STA) and a store-data µop (STD), and the read-modify
// forms ldadd/ldxor/stadd crack into load + ALU (+ STA + STD) chains.
package isa

import "fmt"

// NumArchRegs is the number of architectural general-purpose registers.
// r15 conventionally holds the stack pointer and r14 the link register.
const NumArchRegs = 16

// Conventional register aliases used by the assembler.
const (
	RegSP = 15 // stack pointer
	RegLR = 14 // link register
)

// Op enumerates macro-instruction opcodes.
type Op uint8

// Macro-instruction opcodes.
const (
	NOP Op = iota

	// Register ALU: rd = rs1 op rs2.
	ADD
	SUB
	AND
	OR
	XOR
	SLL
	SRL
	SRA
	MUL
	DIV // signed; divide by zero raises ExcDivZero
	REM
	SLT  // rd = (rs1 < rs2) signed
	SLTU // rd = (rs1 < rs2) unsigned

	// Immediate ALU: rd = rs1 op imm.
	ADDI
	ANDI
	ORI
	XORI
	SLLI
	SRLI
	SRAI
	SLTI
	MULI

	// LI loads a full 64-bit immediate: rd = imm.
	LI

	// Loads: rd = mem[rs1+imm], zero- or sign-extended per size.
	LD  // 8 bytes
	LW  // 4 bytes, sign-extend
	LWU // 4 bytes, zero-extend
	LH  // 2 bytes, sign-extend
	LHU // 2 bytes, zero-extend
	LB  // 1 byte, sign-extend
	LBU // 1 byte, zero-extend

	// Stores: mem[rs1+imm] = rs2 (low size bytes).
	SD
	SW
	SH
	SB

	// Read-modify macro-ops (multi-µop, x86 flavour).
	LDADD // rd = mem[rs1+imm] + rs2      (LOAD, ALU)
	LDXOR // rd = mem[rs1+imm] ^ rs2      (LOAD, ALU)
	STADD // mem[rs1+imm] += rs2          (LOAD, ALU, STA, STD)

	// Control flow. Branch targets are macro-instruction indexes.
	BEQ
	BNE
	BLT
	BGE
	BLTU
	BGEU
	JAL  // rd = RIP+1; jump to Imm (rd may be NoReg)
	JALR // rd = RIP+1; jump to rs1+imm (indirect)

	// OUT appends the 64-bit value of rs1 to the architectural output
	// stream at commit. The output stream is what SDC detection compares.
	OUT

	// HALT stops the program normally.
	HALT

	numOps
)

// NoReg marks an absent register operand.
const NoReg = -1

// Inst is one macro-instruction. Programs are slices of Inst; the fetch
// stage addresses them by index (the RIP).
type Inst struct {
	Op  Op
	Rd  int8  // destination register or NoReg
	Rs1 int8  // first source or NoReg
	Rs2 int8  // second source or NoReg
	Imm int64 // immediate / branch target / address offset
}

// UopKind classifies a micro-operation for scheduling purposes.
type UopKind uint8

// Micro-operation kinds.
const (
	UopALU  UopKind = iota // single-cycle integer op
	UopMul                 // complex integer unit (mul/div/rem)
	UopLoad                // address generation + data cache read
	UopSTA                 // store address generation
	UopSTD                 // store data capture into the store queue
	UopBr                  // conditional branch / direct jump
	UopJmp                 // indirect jump (JALR)
	UopOut                 // architectural output at commit
	UopHalt                // program termination
	UopNop
)

// Uop is one micro-operation of a cracked macro-instruction. Temp registers
// connect the µops of one macro-op: TempDst/TempSrc index a per-instruction
// virtual register that the renamer maps to a fresh physical register.
type Uop struct {
	Kind    UopKind
	Op      Op // the macro opcode (selects ALU function, load size, ...)
	UPC     uint8
	Rd      int8 // architectural destination or NoReg
	Rs1     int8
	Rs2     int8
	Imm     int64
	TempDst int8  // intra-instruction temp written (or NoReg)
	TempSrc int8  // intra-instruction temp read as the first operand (or NoReg)
	MemSize uint8 // access size in bytes for memory µops
	Signed  bool  // sign-extend loads
}

// MemSizeOf returns the access size in bytes for a memory opcode.
func MemSizeOf(op Op) uint8 {
	switch op {
	case LD, SD, LDADD, LDXOR, STADD:
		return 8
	case LW, LWU, SW:
		return 4
	case LH, LHU, SH:
		return 2
	case LB, LBU, SB:
		return 1
	}
	return 0
}

// IsLoad reports whether op reads data memory.
func IsLoad(op Op) bool {
	switch op {
	case LD, LW, LWU, LH, LHU, LB, LBU, LDADD, LDXOR, STADD:
		return true
	}
	return false
}

// IsStore reports whether op writes data memory.
func IsStore(op Op) bool {
	switch op {
	case SD, SW, SH, SB, STADD:
		return true
	}
	return false
}

// IsCondBranch reports whether op is a conditional branch.
func IsCondBranch(op Op) bool {
	switch op {
	case BEQ, BNE, BLT, BGE, BLTU, BGEU:
		return true
	}
	return false
}

// Crack decomposes a macro-instruction into its µops. The returned slice is
// freshly allocated for multi-µop instructions; single-µop results reuse a
// small lookup to stay allocation-light in the fetch path.
func Crack(in Inst) []Uop {
	switch in.Op {
	case SD, SW, SH, SB:
		// STA computes the address from Rs1+Imm; STD captures Rs2 into
		// the store-queue data field.
		return []Uop{
			{Kind: UopSTA, Op: in.Op, UPC: 0, Rd: NoReg, Rs1: in.Rs1, Rs2: NoReg, Imm: in.Imm, TempDst: NoReg, TempSrc: NoReg, MemSize: MemSizeOf(in.Op)},
			{Kind: UopSTD, Op: in.Op, UPC: 1, Rd: NoReg, Rs1: in.Rs2, Rs2: NoReg, TempDst: NoReg, TempSrc: NoReg, MemSize: MemSizeOf(in.Op)},
		}
	case LDADD, LDXOR:
		alu := ADD
		if in.Op == LDXOR {
			alu = XOR
		}
		return []Uop{
			{Kind: UopLoad, Op: LD, UPC: 0, Rd: NoReg, Rs1: in.Rs1, Rs2: NoReg, Imm: in.Imm, TempDst: 0, TempSrc: NoReg, MemSize: 8},
			{Kind: UopALU, Op: alu, UPC: 1, Rd: in.Rd, Rs1: NoReg, Rs2: in.Rs2, TempDst: NoReg, TempSrc: 0},
		}
	case STADD:
		return []Uop{
			{Kind: UopLoad, Op: LD, UPC: 0, Rd: NoReg, Rs1: in.Rs1, Rs2: NoReg, Imm: in.Imm, TempDst: 0, TempSrc: NoReg, MemSize: 8},
			{Kind: UopALU, Op: ADD, UPC: 1, Rd: NoReg, Rs1: NoReg, Rs2: in.Rs2, TempDst: 1, TempSrc: 0},
			{Kind: UopSTA, Op: SD, UPC: 2, Rd: NoReg, Rs1: in.Rs1, Rs2: NoReg, Imm: in.Imm, TempDst: NoReg, TempSrc: NoReg, MemSize: 8},
			{Kind: UopSTD, Op: SD, UPC: 3, Rd: NoReg, Rs1: NoReg, Rs2: NoReg, TempDst: NoReg, TempSrc: 1, MemSize: 8},
		}
	}

	u := Uop{Op: in.Op, UPC: 0, Rd: in.Rd, Rs1: in.Rs1, Rs2: in.Rs2, Imm: in.Imm, TempDst: NoReg, TempSrc: NoReg}
	switch in.Op {
	case NOP:
		u.Kind = UopNop
	case MUL, DIV, REM, MULI:
		u.Kind = UopMul
	case LD, LW, LWU, LH, LHU, LB, LBU:
		u.Kind = UopLoad
		u.MemSize = MemSizeOf(in.Op)
		u.Signed = in.Op == LW || in.Op == LH || in.Op == LB
	case BEQ, BNE, BLT, BGE, BLTU, BGEU, JAL:
		u.Kind = UopBr
	case JALR:
		u.Kind = UopJmp
	case OUT:
		u.Kind = UopOut
	case HALT:
		u.Kind = UopHalt
	default:
		u.Kind = UopALU
	}
	return []Uop{u}
}

// NumUops returns the number of µops in the cracked form of op without
// allocating.
func NumUops(op Op) int {
	switch op {
	case SD, SW, SH, SB, LDADD, LDXOR:
		return 2
	case STADD:
		return 4
	}
	return 1
}

var opNames = [numOps]string{
	NOP: "nop", ADD: "add", SUB: "sub", AND: "and", OR: "or", XOR: "xor",
	SLL: "sll", SRL: "srl", SRA: "sra", MUL: "mul", DIV: "div", REM: "rem",
	SLT: "slt", SLTU: "sltu", ADDI: "addi", ANDI: "andi", ORI: "ori",
	XORI: "xori", SLLI: "slli", SRLI: "srli", SRAI: "srai", SLTI: "slti",
	MULI: "muli", LI: "li", LD: "ld", LW: "lw", LWU: "lwu", LH: "lh",
	LHU: "lhu", LB: "lb", LBU: "lbu", SD: "sd", SW: "sw", SH: "sh", SB: "sb",
	LDADD: "ldadd", LDXOR: "ldxor", STADD: "stadd", BEQ: "beq", BNE: "bne",
	BLT: "blt", BGE: "bge", BLTU: "bltu", BGEU: "bgeu", JAL: "jal",
	JALR: "jalr", OUT: "out", HALT: "halt",
}

// String returns the assembler mnemonic for op.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

func regName(r int8) string {
	if r == NoReg {
		return "-"
	}
	return fmt.Sprintf("r%d", r)
}

// String disassembles the instruction.
func (in Inst) String() string {
	switch {
	case in.Op == HALT || in.Op == NOP:
		return in.Op.String()
	case in.Op == OUT:
		return fmt.Sprintf("out %s", regName(in.Rs1))
	case in.Op == LI:
		return fmt.Sprintf("li %s, %d", regName(in.Rd), in.Imm)
	case IsStore(in.Op) && in.Op != STADD:
		return fmt.Sprintf("%s [%s%+d], %s", in.Op, regName(in.Rs1), in.Imm, regName(in.Rs2))
	case in.Op == STADD:
		return fmt.Sprintf("stadd [%s%+d], %s", regName(in.Rs1), in.Imm, regName(in.Rs2))
	case IsLoad(in.Op) && in.Op != LDADD && in.Op != LDXOR:
		return fmt.Sprintf("%s %s, [%s%+d]", in.Op, regName(in.Rd), regName(in.Rs1), in.Imm)
	case in.Op == LDADD || in.Op == LDXOR:
		return fmt.Sprintf("%s %s, %s, [%s%+d]", in.Op, regName(in.Rd), regName(in.Rs2), regName(in.Rs1), in.Imm)
	case IsCondBranch(in.Op):
		return fmt.Sprintf("%s %s, %s, %d", in.Op, regName(in.Rs1), regName(in.Rs2), in.Imm)
	case in.Op == JAL:
		return fmt.Sprintf("jal %s, %d", regName(in.Rd), in.Imm)
	case in.Op == JALR:
		return fmt.Sprintf("jalr %s, %s, %d", regName(in.Rd), regName(in.Rs1), in.Imm)
	case in.Rs2 == NoReg:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, regName(in.Rd), regName(in.Rs1), in.Imm)
	default:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, regName(in.Rd), regName(in.Rs1), regName(in.Rs2))
	}
}

// Program is a loaded executable image: the text segment (fetched by
// macro-instruction index), the initial data segment placed at DataBase, and
// the symbol table produced by the assembler.
type Program struct {
	Name    string
	Text    []Inst
	Data    []byte // initial bytes at DataBase
	Symbols map[string]int64
	Entry   int // starting RIP
}

// Memory layout constants shared by the assembler, loader and core. The
// region [DataBase, MemTop) is mapped; anything else faults.
const (
	DataBase = 0x1000   // data segment base address
	MemTop   = 0x200000 // top of mapped memory; initial stack pointer
	StackTop = MemTop   // stack grows down from here
)

// Symbol returns the address of an assembler label, or panics if absent —
// workload builders rely on labels they themselves defined.
func (p *Program) Symbol(name string) int64 {
	v, ok := p.Symbols[name]
	if !ok {
		panic(fmt.Sprintf("isa: program %q has no symbol %q", p.Name, name))
	}
	return v
}
