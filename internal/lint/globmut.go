package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GlobMut forbids mutable package-level state in report-affecting
// packages. Every campaign guarantee — pruned-equals-full, bit-identical
// replay/checkpointed/forked/fleet reports, content-addressed artifact
// reuse — assumes a campaign is a pure function of (workload, config,
// seed). A package-level variable that any call can mutate makes results
// depend on what else ran in the process: two campaigns in one daemon, a
// test ordering change, or a concurrent request can silently change
// report bytes. State belongs on explicit receivers threaded through the
// call graph.
//
//	globmut001  package-level var mutated (assignment, element or field
//	            write, ++/--, address taken, pointer-receiver call)
//	globmut002  exported package-level var: a mutable API surface any
//	            importer can write to
//
// Read-only lookup tables (opNames, haltNames) never trip globmut001:
// their declaration initializer is not a mutation. Error sentinels
// (`var ErrX = errors.New(...)`) are exempt from globmut002 — the
// errors.Is idiom requires an exported var and convention treats them as
// immutable. Deliberate exceptions (init-time registries, memoization
// caches that never reach report bytes) carry //lint:allow with a
// reason, so the exemption set stays audited.
var GlobMut = &Analyzer{
	Name:  "globmut",
	Doc:   "no mutable package-level state in report-affecting packages",
	Codes: []string{"globmut001", "globmut002"},
	AppliesTo: inPaths(
		"merlin",
		"merlin/internal/cpu",
		"merlin/internal/interp",
		"merlin/internal/mem",
		"merlin/internal/campaign",
		"merlin/internal/sampling",
		"merlin/internal/stats",
		"merlin/internal/lifetime",
		"merlin/internal/fault",
		"merlin/internal/isa",
		"merlin/internal/merlin",
		"merlin/internal/guestflow",
		"merlin/internal/relyzer",
		"merlin/internal/workloads",
		"merlin/internal/asm",
		"merlin/internal/conformance",
		"merlin/internal/conformance/gen",
		"merlin/internal/fleet",
		"merlin/internal/store",
		"merlin/internal/chaos",
	),
	Run: runGlobMut,
}

func runGlobMut(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		// globmut002: exported package-level vars.
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if name.Name == "_" || !name.IsExported() {
						continue
					}
					v, _ := info.Defs[name].(*types.Var)
					if v == nil || isErrorSentinel(v) {
						continue
					}
					pass.Reportf(name.Pos(), "globmut002",
						"exported package-level var %s: any importer can mutate it and change report bytes — export a function or thread it through a config struct", name.Name)
				}
			}
		}
		// globmut001: in-package mutations.
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if n.Tok == token.DEFINE {
					return true // := declares locals; it cannot target package scope
				}
				for _, lhs := range n.Lhs {
					if v := mutatedPkgVar(info, pass.Pkg.Types, lhs); v != nil {
						pass.Reportf(lhs.Pos(), "globmut001",
							"assignment mutates package-level var %s: campaign state must live on explicit receivers, not globals", v.Name())
					}
				}
			case *ast.IncDecStmt:
				if v := mutatedPkgVar(info, pass.Pkg.Types, n.X); v != nil {
					pass.Reportf(n.X.Pos(), "globmut001",
						"%s mutates package-level var %s", n.Tok, v.Name())
				}
			case *ast.UnaryExpr:
				if n.Op != token.AND {
					return true
				}
				if v := resolvePkgVar(info, pass.Pkg.Types, n.X); v != nil {
					pass.Reportf(n.Pos(), "globmut001",
						"address of package-level var %s taken: the pointer makes it mutable from anywhere it escapes to", v.Name())
				}
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				v := resolvePkgVar(info, pass.Pkg.Types, sel.X)
				if v == nil {
					return true
				}
				fn, _ := info.Uses[sel.Sel].(*types.Func)
				if fn == nil || !hasPointerReceiver(fn) {
					return true
				}
				pass.Reportf(n.Pos(), "globmut001",
					"%s.%s may mutate package-level var %s (pointer receiver)", v.Name(), fn.Name(), v.Name())
			}
			return true
		})
	}
}

// mutatedPkgVar resolves an assignment target to the package-level var
// (of the package under analysis) whose storage it mutates: the var
// itself, an element (x[i]), a field (x.f), or a dereference rooted at
// it (*p where p is the var — the pointee is global-reachable state).
func mutatedPkgVar(info *types.Info, pkg *types.Package, e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			if v := pkgVarObj(info.Uses[x.Sel], pkg); v != nil {
				return v
			}
			e = x.X
		case *ast.Ident:
			return pkgVarObj(info.Uses[x], pkg)
		default:
			return nil
		}
	}
}

// resolvePkgVar resolves e to a package-level var only when e names the
// var directly (through parens): used for address-taking and method
// calls, where descending into elements would overreach.
func resolvePkgVar(info *types.Info, pkg *types.Package, e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.Ident:
			return pkgVarObj(info.Uses[x], pkg)
		case *ast.SelectorExpr:
			return pkgVarObj(info.Uses[x.Sel], pkg)
		default:
			return nil
		}
	}
}

// pkgVarObj filters obj down to a package-scope *types.Var of pkg.
func pkgVarObj(obj types.Object, pkg *types.Package) *types.Var {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Pkg() != pkg {
		return nil
	}
	if v.Parent() != pkg.Scope() {
		return nil
	}
	return v
}

// isErrorSentinel reports whether v is an error-typed var: the exported
// `var ErrX = errors.New(...)` sentinel that errors.Is comparisons
// require. Convention treats sentinels as immutable, so they are exempt
// from globmut002 (mutating one would still trip globmut001).
func isErrorSentinel(v *types.Var) bool {
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(v.Type(), errType)
}

// hasPointerReceiver reports whether fn is a method with a pointer
// receiver — the shape that can mutate its receiver.
func hasPointerReceiver(fn *types.Func) bool {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	_, ok := sig.Recv().Type().(*types.Pointer)
	return ok
}
