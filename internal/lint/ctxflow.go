package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces cancellation plumbing in the packages that loop or
// block: campaign schedulers iterate tens of thousands of faults,
// fleet dispatch and the daemon do network I/O, and all of them learned
// (PR 3) to take a context and honor DELETE /campaigns/{id}. An
// exported entry point that loops over faults or performs HTTP I/O
// without a leading context.Context can't be cancelled; a
// context.Background() conjured mid-path silently detaches work from
// the caller's deadline.
//
//	ctxflow001  exported fault-loop/network entry point without a
//	            context.Context first parameter
//	ctxflow002  context.Background() in request-path code
//	ctxflow003  context.Context parameter not in first position
var CtxFlow = &Analyzer{
	Name:  "ctxflow",
	Doc:   "campaign/server/fleet entry points thread contexts, first",
	Codes: []string{"ctxflow001", "ctxflow002", "ctxflow003"},
	AppliesTo: inPaths(
		"merlin",
		"merlin/internal/campaign",
		"merlin/internal/server",
		"merlin/internal/fleet",
	),
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkCtxParams(pass, info, fd)
		}
		// context.Background() anywhere in the package (including
		// function literals): each surviving site must carry a
		// //lint:allow ctxflow002 stating why it detaches (shutdown
		// drains, deprecated wrappers, daemon-owned campaign roots).
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isPkgFunc(info, call.Fun, "context", "Background") {
				pass.Reportf(call.Pos(), "ctxflow002",
					"context.Background() in %s: pass the caller's ctx down instead of detaching — Background survives DELETE /campaigns/{id} and coordinator drains", pass.Pkg.Path)
			}
			return true
		})
	}
}

func checkCtxParams(pass *Pass, info *types.Info, fd *ast.FuncDecl) {
	sig, _ := info.Defs[fd.Name].(*types.Func)
	if sig == nil {
		return
	}
	st, _ := sig.Type().(*types.Signature)
	if st == nil {
		return
	}
	ctxAt := -1
	for i := 0; i < st.Params().Len(); i++ {
		if isContextType(st.Params().At(i).Type()) {
			ctxAt = i
			break
		}
	}
	if ctxAt > 0 {
		pass.Reportf(fd.Name.Pos(), "ctxflow003",
			"%s takes context.Context as parameter %d: contexts go first so every call site reads the same way", fd.Name.Name, ctxAt+1)
	}
	if !fd.Name.IsExported() || ctxAt == 0 || fd.Body == nil {
		return
	}
	// Exported and context-free: fine for getters and pure transforms,
	// a finding when the body loops over the fault list or does HTTP.
	if reason := uncancellableWork(info, fd.Body); reason != "" {
		pass.Reportf(fd.Name.Pos(), "ctxflow001",
			"exported %s %s but has no context.Context first parameter: long work must be cancellable", fd.Name.Name, reason)
	}
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// uncancellableWork scans a function body for work that must be
// cancellable: ranging over a []fault.Fault (an injection loop — the
// unit of campaign work) or issuing HTTP requests. It returns a short
// description of the first hit, or "".
func uncancellableWork(info *types.Info, body *ast.BlockStmt) string {
	reason := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // a stored callback is not this function's loop
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil && isFaultSlice(t) {
				reason = "loops over the fault list"
				return false
			}
		case *ast.CallExpr:
			if fn := funcObj(info, n.Fun); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "net/http" {
				switch fn.Name() {
				case "Get", "Post", "PostForm", "Head", "Do":
					reason = "performs HTTP I/O (http." + fn.Name() + " has no deadline without a request context)"
					return false
				}
			}
		}
		return true
	})
	return reason
}

// isFaultSlice reports whether t is []fault.Fault (possibly through a
// named slice type).
func isFaultSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	named, ok := sl.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "merlin/internal/fault" && obj.Name() == "Fault"
}
