package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// WallTime forbids wall-clock reads in simulation and campaign
// packages. Simulated time is cycle counts; a time.Now that influences
// control flow or serialized state makes two runs of the same campaign
// diverge, which breaks the differential oracles, the fleet's
// bit-identical merged reports and artifact-cache key stability.
//
// Deliberate wall-clock *metrics* — Result.Wall/Serial stamping in the
// schedulers, the clone-cost meter, the fleet's heartbeat/TTL liveness
// clock — are enumerated in a built-in allowlist with a reason each;
// the driver prints every allowlisted hit so the exemption set stays
// visible. New sites need either an allowlist entry here or a
// //lint:allow walltime001 line with a reason.
//
// The allowlist itself is checked for rot: an entry naming a function
// with no wall-clock read left in it is a finding, because a stale
// exemption silently pre-approves the next wall-clock read someone adds
// under that name.
//
//	walltime001  time.Now/Since/Until outside the allowlist
//	walltime002  built-in allowlist entry matching no wall-clock site
var WallTime = &Analyzer{
	Name:  "walltime",
	Doc:   "no wall-clock reads outside allowlisted metric sites",
	Codes: []string{"walltime001", "walltime002"},
	AppliesTo: inPaths(
		"merlin",
		"merlin/internal/cpu",
		"merlin/internal/interp",
		"merlin/internal/mem",
		"merlin/internal/campaign",
		"merlin/internal/sampling",
		"merlin/internal/stats",
		"merlin/internal/lifetime",
		"merlin/internal/fault",
		"merlin/internal/isa",
		"merlin/internal/merlin",
		"merlin/internal/guestflow",
		"merlin/internal/relyzer",
		"merlin/internal/workloads",
		"merlin/internal/asm",
		"merlin/internal/conformance",
		"merlin/internal/conformance/gen",
		"merlin/internal/fleet",
		"merlin/internal/store",
		"merlin/internal/chaos",
		// internal/server is deliberately out of scope: event
		// timestamps, uptime and queue ages are wall-clock by design
		// and never feed Report bytes. cmd/*, examples/ and scripts/
		// are operator tooling.
	),
	Run: runWallTime,
}

// wallClockFuncs are the time package reads that anchor to the wall.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// wallClockAllow is the built-in allowlist: (package, enclosing
// function) -> reason. These are the wall-clock-*metric* sites — they
// stamp durations into fields that report bit-identity explicitly
// excludes (Report.Wall et al.) or drive liveness TTLs, never simulated
// state.
var wallClockAllow = map[string]map[string]string{
	"merlin/internal/campaign": {
		"runMetrics.clone":          "clone-cost metric (Result.CloneTime); never touches simulated state",
		"Runner.RunAll":             "Result.Wall/Serial wall-clock metric stamping",
		"Runner.RunAllCheckpointed": "Result.Wall/Serial wall-clock metric stamping",
		"Runner.RunAllForked":       "Result.Wall/Serial wall-clock metric stamping",
		// Runner.RunAllTruncated was listed here until the walltime002 rot
		// check landed: it delegates its wall stamping to RunAll and never
		// read the clock itself.
	},
	"merlin": {
		"runFleetCampaign": "fleet Report.Wall metric stamping",
		"Batch.Run":        "BatchReport.Wall metric stamping",
		// The chaos harness is operator tooling over the service's HTTP
		// surface: its wall-clock reads are suite timing metrics and poll
		// deadlines, never simulated or merged state.
		"RunChaos":          "chaos suite wall-clock metrics (ChaosResult timing fields)",
		"chaosAwait":        "chaos campaign poll deadline",
		"chaosAwaitWorkers": "chaos fleet join poll deadline",
		// runChaosScenario was listed here until the walltime002 rot check
		// landed: its timing uses duration constants, not clock reads.
	},
	"merlin/internal/fleet": {
		"NewPool": "heartbeat/TTL liveness clock (injected so tests fake it)",
	},
	// The walltime fixture exercises the built-in allowlist path; the
	// merlinvet.test prefix can never collide with a module package. The
	// second entry is deliberately stale so the fixture also exercises
	// the walltime002 rot check.
	"merlinvet.test/walltime": {
		"AllowlistedMetric":      "fixture: built-in allowlist entry exercised by the lint tests",
		"StaleEntryNeverMatches": "fixture: stale allowlist entry the rot check must flag",
	},
}

func runWallTime(pass *Pass) {
	info := pass.Pkg.Info
	allow := wallClockAllow[pass.Pkg.Path]
	matched := make(map[string]bool, len(allow))
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, _ := info.Uses[sel.Sel].(*types.Func)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !wallClockFuncs[fn.Name()] {
				return true
			}
			where := enclosingFuncName(file, sel.Pos())
			if reason, ok := allow[where]; ok {
				matched[where] = true
				pass.Allowlisted(sel.Pos(), "walltime001", where, reason)
				return true
			}
			pass.Reportf(sel.Pos(), "walltime001",
				"time.%s in %s (%s): simulation and campaign state must be wall-clock free — metric sites belong on the walltime allowlist with a reason", fn.Name(), where, pass.Pkg.Path)
			return true
		})
	}
	// Allowlist rot: an entry that matched nothing pre-approves whatever
	// wall-clock read is added under that function name next. Flag it at
	// the package clause so the entry gets deleted with the code it
	// described.
	if len(pass.Pkg.Files) == 0 {
		return
	}
	stale := make([]string, 0, len(allow))
	for where := range allow {
		if !matched[where] {
			stale = append(stale, where)
		}
	}
	sort.Strings(stale)
	for _, where := range stale {
		pass.Reportf(pass.Pkg.Files[0].Name.Pos(), "walltime002",
			"stale walltime allowlist entry %q: no wall-clock read in %s matches it — delete the entry, allowlist rot hides future regressions", where, pass.Pkg.Path)
	}
}
