package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// DetRand enforces that report-affecting packages draw randomness only
// from explicit seeded state. MeRLiN's pruned-campaign-equals-full-
// injection guarantee, forked/checkpointed/fleet bit-identity and the
// sha256 artifact keys all assume a campaign is a pure function of
// (workload, config, seed); one rand.Intn on the shared global source
// makes the fault list depend on whatever else ran in the process.
//
//	detrand001  package-level math/rand function (global source)
//	detrand002  crypto/rand import (hardware entropy is never replayable)
//	detrand003  source seeded from the wall clock
var DetRand = &Analyzer{
	Name:  "detrand",
	Doc:   "no global or unseeded randomness in report-affecting packages",
	Codes: []string{"detrand001", "detrand002", "detrand003"},
	AppliesTo: inPaths(
		"merlin/internal/cpu",
		"merlin/internal/interp",
		"merlin/internal/campaign",
		"merlin/internal/sampling",
		"merlin/internal/conformance/gen",
		"merlin/internal/stats",
		// Beyond the core six: everything else a report or artifact
		// hash is derived from.
		"merlin/internal/mem",
		"merlin/internal/fault",
		"merlin/internal/isa",
		"merlin/internal/lifetime",
		"merlin/internal/merlin",
		"merlin/internal/guestflow",
		"merlin/internal/relyzer",
		"merlin/internal/workloads",
		"merlin/internal/asm",
		"merlin/internal/conformance",
		// The chaos engine's whole contract is seeded determinism: its
		// splitmix64 streams must never silently mix in global randomness.
		"merlin/internal/chaos",
	),
	Run: runDetRand,
}

// mathRandConstructors are the explicit-source constructors: building a
// seeded source is exactly the sanctioned pattern (sampling and relyzer
// do rand.New(rand.NewSource(seed))), so only consuming functions on
// the package-level source are findings.
var mathRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

func runDetRand(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		for _, imp := range file.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil && p == "crypto/rand" {
				pass.Reportf(imp.Pos(), "detrand002",
					"crypto/rand imported in report-affecting package %s: hardware entropy can never be replayed; derive randomness from the campaign seed", pass.Pkg.Path)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				fn, _ := info.Uses[n.Sel].(*types.Func)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				p := fn.Pkg().Path()
				if (p == "math/rand" || p == "math/rand/v2") && isPackageLevel(fn) && !mathRandConstructors[fn.Name()] {
					pass.Reportf(n.Pos(), "detrand001",
						"rand.%s uses the global math/rand source: campaigns must be a pure function of the seed — use rand.New(rand.NewSource(seed)) or the package's splitmix64 state", fn.Name())
				}
			case *ast.CallExpr:
				fn := funcObj(info, n.Fun)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				p := fn.Pkg().Path()
				if (p == "math/rand" || p == "math/rand/v2") && mathRandConstructors[fn.Name()] && seededFromClock(info, n) {
					pass.Reportf(n.Pos(), "detrand003",
						"rand.%s seeded from the wall clock: the seed must come from campaign configuration so runs replay bit-identically", fn.Name())
				}
			}
			return true
		})
	}
}

// isPackageLevel reports whether fn is a package-level function (not a
// method): methods on an explicit *rand.Rand are the sanctioned form.
func isPackageLevel(fn *types.Func) bool {
	sig, _ := fn.Type().(*types.Signature)
	return sig != nil && sig.Recv() == nil
}

// seededFromClock reports whether any argument of call reaches
// time.Now (directly or through a call chain in the same expression,
// e.g. time.Now().UnixNano()). Nested rand constructors are not
// descended into — rand.New(rand.NewSource(clock)) charges the inner
// call, once.
func seededFromClock(info *types.Info, call *ast.CallExpr) bool {
	clock := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if inner, ok := n.(*ast.CallExpr); ok {
				if fn := funcObj(info, inner.Fun); fn != nil && fn.Pkg() != nil &&
					(fn.Pkg().Path() == "math/rand" || fn.Pkg().Path() == "math/rand/v2") &&
					mathRandConstructors[fn.Name()] {
					return false
				}
			}
			if sel, ok := n.(*ast.SelectorExpr); ok {
				if fn, _ := info.Uses[sel.Sel].(*types.Func); fn != nil && fn.Pkg() != nil &&
					fn.Pkg().Path() == "time" && strings.HasPrefix(fn.Name(), "Now") {
					clock = true
					return false
				}
			}
			return true
		})
	}
	return clock
}
