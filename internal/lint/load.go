package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and type-checked package.
type Package struct {
	Path  string // import path, e.g. "merlin/internal/campaign"
	Dir   string
	Name  string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads module packages from source: it parses every non-test
// .go file, type-checks in dependency order with go/types, resolves
// intra-module imports itself and delegates the standard library to the
// source importer (importer.ForCompiler "source"), so the whole pass
// needs nothing beyond the Go distribution — no export data, no
// third-party loaders.
type Loader struct {
	Fset       *token.FileSet
	ModuleDir  string
	ModulePath string
	// ExtraRoots maps additional import-path prefixes to directories
	// (the fixture harness mounts testdata trees as "merlinvet.test/").
	ExtraRoots map[string]string

	std      types.ImporterFrom
	pkgs     map[string]*Package
	building map[string]bool
}

// NewLoader creates a loader rooted at the module directory, reading
// the module path from go.mod.
func NewLoader(moduleDir string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(moduleDir, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: %s is not a module root: %w", moduleDir, err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", moduleDir)
	}
	// The source importer type-checks the standard library from GOROOT
	// source; with cgo disabled it takes the pure-Go fallback files
	// (netgo etc.), which is exactly what a static pass wants.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer unavailable")
	}
	return &Loader{
		Fset:       fset,
		ModuleDir:  moduleDir,
		ModulePath: modPath,
		std:        std,
		pkgs:       make(map[string]*Package),
		building:   make(map[string]bool),
	}, nil
}

// dirFor resolves an import path this loader owns to a directory, or ""
// when the path belongs to the standard library.
func (l *Loader) dirFor(path string) string {
	if path == l.ModulePath {
		return l.ModuleDir
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleDir, filepath.FromSlash(rest))
	}
	for prefix, root := range l.ExtraRoots {
		if path == prefix {
			return root
		}
		if rest, ok := strings.CutPrefix(path, prefix+"/"); ok {
			return filepath.Join(root, filepath.FromSlash(rest))
		}
	}
	return ""
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: module and fixture paths
// are loaded by this loader, everything else goes to the source
// importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if d := l.dirFor(path); d != "" {
		pkg, err := l.load(path, d)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// Load loads (or returns the cached) package at the given import path.
func (l *Loader) Load(path string) (*Package, error) {
	d := l.dirFor(path)
	if d == "" {
		return nil, fmt.Errorf("lint: %s is not a module package", path)
	}
	return l.load(path, d)
}

func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.building[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.building[path] = true
	defer delete(l.building, path)

	names, err := goSourceFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go source files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", filepath.Join(dir, name), err)
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-check %s: %v", path, typeErrs[0])
	}
	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Name:  tpkg.Name(),
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// LoadAll loads every package in the module, in sorted import-path
// order. Directories named testdata (fixture trees holding deliberate
// violations), hidden directories and non-Go directories are skipped,
// matching the go tool's notion of the module's package set.
func (l *Loader) LoadAll() ([]*Package, error) {
	var paths []string
	err := filepath.WalkDir(l.ModuleDir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		base := filepath.Base(p)
		if p != l.ModuleDir && (base == "testdata" || strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
			return filepath.SkipDir
		}
		names, err := goSourceFiles(p)
		if err != nil {
			return err
		}
		if len(names) == 0 {
			return nil
		}
		rel, err := filepath.Rel(l.ModuleDir, p)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, l.ModulePath)
		} else {
			paths = append(paths, l.ModulePath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(paths, func(i, j int) bool { return pathLess(paths[i], paths[j]) })
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadUnder loads every package in the directory tree rooted at the
// import path (which must resolve within the module or an extra root).
func (l *Loader) LoadUnder(rootPath string) ([]*Package, error) {
	rootDir := l.dirFor(rootPath)
	if rootDir == "" {
		return nil, fmt.Errorf("lint: %s is not a loadable root", rootPath)
	}
	var pkgs []*Package
	err := filepath.WalkDir(rootDir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		names, err := goSourceFiles(p)
		if err != nil || len(names) == 0 {
			return err
		}
		rel, err := filepath.Rel(rootDir, p)
		if err != nil {
			return err
		}
		path := rootPath
		if rel != "." {
			path = rootPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.load(path, p)
		if err != nil {
			return err
		}
		pkgs = append(pkgs, pkg)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// goSourceFiles lists the non-test Go files of dir in sorted order.
// Test files are out of scope by design: every invariant merlinvet
// enforces is about production and simulation paths, and hooks/clocks
// are explicitly fair game under test.
func goSourceFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}
