package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapOrder flags `range` over a map whose body produces ordered output
// — appending to an outer slice, writing to an encoder/hasher/writer,
// printing, sending on a channel or emitting events — without an
// intervening sort. Go randomizes map iteration order per run, so any
// such loop is a latent nondeterminism bug: it is exactly the class
// that would break bit-identical reports, NDJSON event streams and the
// sha256 content addresses of gob-encoded artifacts while passing every
// single-run test.
//
// The sanctioned idiom — collect keys, sort, range the sorted slice —
// is recognized: an append target that is passed to a sort/slices call
// later in the same function is not flagged.
//
//	maporder001  append to outer slice inside map range, never sorted
//	maporder002  write/encode/hash/print inside map range
//	maporder003  channel send or event emit inside map range
var MapOrder = &Analyzer{
	Name:  "maporder",
	Doc:   "no map-iteration order leaking into ordered output",
	Codes: []string{"maporder001", "maporder002", "maporder003"},
	// Ordering bugs matter anywhere in the module: reports, wire
	// responses, CSV tables and CLI output all get diffed or hashed.
	AppliesTo: func(pkgPath string) bool { return true },
	Run:       runMapOrder,
}

// orderedWriteMethods are method names that externalize bytes in call
// order (io.Writer, encoders, hashers).
var orderedWriteMethods = map[string]bool{
	"Encode": true, "Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

func runMapOrder(pass *Pass) {
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		// Pair each map-range with its innermost enclosing function
		// body so the sort-guard search has a bounded scope.
		var funcs []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.FuncDecl, *ast.FuncLit:
				funcs = append(funcs, n)
			}
			return true
		})
		ast.Inspect(file, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRange(pass, info, rs, enclosingBody(funcs, rs))
			return true
		})
	}
}

// enclosingBody returns the body of the innermost function containing n.
func enclosingBody(funcs []ast.Node, n ast.Node) *ast.BlockStmt {
	var best ast.Node
	for _, f := range funcs {
		if f.Pos() <= n.Pos() && n.End() <= f.End() {
			if best == nil || (best.Pos() <= f.Pos() && f.End() <= best.End()) {
				best = f
			}
		}
	}
	switch f := best.(type) {
	case *ast.FuncDecl:
		return f.Body
	case *ast.FuncLit:
		return f.Body
	}
	return nil
}

func checkMapRange(pass *Pass, info *types.Info, rs *ast.RangeStmt, body *ast.BlockStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if obj := appendTarget(info, n); obj != nil && declaredOutside(obj, rs) {
				if !sortedAfter(info, body, rs, obj) {
					pass.Reportf(n.Pos(), "maporder001",
						"append to %s inside range over map with no sort before use: iteration order is randomized per run — collect keys, sort, then range the slice (or sort %s afterwards)", obj.Name(), obj.Name())
				}
				return true
			}
			if fn := funcObj(info, n.Fun); fn != nil {
				if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
					(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
					pass.Reportf(n.Pos(), "maporder002",
						"fmt.%s inside range over map: output order is randomized per run — iterate a sorted key slice instead", fn.Name())
					return true
				}
				if orderedWriteMethods[fn.Name()] && isMethodCall(info, n) && receiverOutside(info, n, rs) {
					pass.Reportf(n.Pos(), "maporder002",
						"%s call inside range over map: bytes reach the writer/encoder/hasher in randomized order — sort the keys first (this is how sha256 artifact keys and NDJSON streams go nondeterministic)", fn.Name())
					return true
				}
				if strings.Contains(strings.ToLower(fn.Name()), "emit") {
					pass.Reportf(n.Pos(), "maporder003",
						"%s inside range over map: events fire in randomized order — iterate a sorted key slice", fn.Name())
					return true
				}
			}
		case *ast.SendStmt:
			if obj := baseObject(info, n.Chan); obj == nil || declaredOutside(obj, rs) {
				pass.Reportf(n.Pos(), "maporder003",
					"channel send inside range over map: downstream consumers see randomized order — iterate a sorted key slice")
			}
		}
		return true
	})
}

// appendTarget returns the object a `x = append(x, ...)` call grows, or
// nil when call is not an append to an identifiable variable.
func appendTarget(info *types.Info, call *ast.CallExpr) types.Object {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return nil
	}
	if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	if len(call.Args) == 0 {
		return nil
	}
	return baseObject(info, call.Args[0])
}

// baseObject resolves the root identifier of e (x, x.f, x[i]) to its
// object.
func baseObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			if o := info.Uses[v]; o != nil {
				return o
			}
			return info.Defs[v]
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether obj's declaration sits outside the
// range statement (an accumulator that survives the loop).
func declaredOutside(obj types.Object, rs *ast.RangeStmt) bool {
	return !(rs.Pos() <= obj.Pos() && obj.Pos() < rs.End())
}

// isMethodCall reports whether call invokes a method (selector with a
// selection entry).
func isMethodCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s := info.Selections[sel]
	return s != nil && s.Kind() == types.MethodVal
}

// receiverOutside reports whether the method call's receiver chain
// roots at an object declared outside the loop (a per-iteration buffer
// is order-safe).
func receiverOutside(info *types.Info, call *ast.CallExpr, rs *ast.RangeStmt) bool {
	sel := call.Fun.(*ast.SelectorExpr)
	obj := baseObject(info, sel.X)
	return obj == nil || declaredOutside(obj, rs)
}

// sortedAfter reports whether, lexically after the range statement in
// the same function body, obj is passed to any sort or slices call —
// the "intervening sort" that makes collect-then-sort safe.
func sortedAfter(info *types.Info, body *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	if body == nil {
		return false
	}
	sorted := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		fn := funcObj(info, call.Fun)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			found := false
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && info.Uses[id] == obj {
					found = true
					return false
				}
				return true
			})
			if found {
				sorted = true
				break
			}
		}
		return !sorted
	})
	return sorted
}
