package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFixtures drives every analyzer over its testdata fixture package
// through the want/allowed expectation harness: each has at least one
// true positive, at least one clean (not-flagged) idiom and at least
// one suppressed-with-reason case.
func TestFixtures(t *testing.T) {
	for _, a := range Analyzers() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			problems, err := CheckFixture(filepath.Join("testdata", "src", a.Name), a)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range problems {
				t.Error(p)
			}
		})
	}
}

// TestFixturesFailTheDriver asserts the driver-level contract behind
// merlinvet's nonzero exit: running an analyzer over its fixture
// produces real findings (the fixtures are violation corpora, so a
// Result over them must not be Clean).
func TestFixturesFailTheDriver(t *testing.T) {
	for _, a := range Analyzers() {
		res := fixtureResult(t, filepath.Join("testdata", "src", a.Name), a)
		if len(res.Findings) == 0 {
			t.Errorf("%s: no findings on its violation fixture — merlinvet would exit 0", a.Name)
		}
		if len(res.Suppressed) == 0 {
			t.Errorf("%s: no suppressed finding in fixture — //lint:allow path untested", a.Name)
		}
	}
}

// TestWalltimeBuiltinAllowlist asserts the built-in allowlist path: the
// fixture's AllowlistedMetric is exempted by the analyzer's table (not
// a directive) and surfaces in Result.Allowlisted with its reason.
func TestWalltimeBuiltinAllowlist(t *testing.T) {
	res := fixtureResult(t, filepath.Join("testdata", "src", "walltime"), WallTime)
	found := false
	for _, a := range res.Allowlisted {
		if a.Where == "AllowlistedMetric" {
			found = true
			if a.Reason == "" {
				t.Error("allowlisted site carries no reason")
			}
		}
	}
	if !found {
		t.Errorf("AllowlistedMetric not in allowlisted sites: %+v", res.Allowlisted)
	}
	for _, d := range res.Findings {
		if strings.Contains(d.Message, "AllowlistedMetric") {
			t.Errorf("allowlisted site still reported: %s", d)
		}
	}
}

// TestSabotageSortGuardDeleted is the acceptance sabotage check for
// maporder: take the fixture's *sanctioned* collect-then-sort function,
// delete the sort guard, and the analyzer must catch the now-unsorted
// loop (surfacing as an unexpected maporder001 in the harness).
func TestSabotageSortGuardDeleted(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "src", "maporder", "maporder.go"))
	if err != nil {
		t.Fatal(err)
	}
	var kept []string
	removed := false
	for _, line := range strings.Split(string(src), "\n") {
		if strings.Contains(line, "sort.Strings(keys)") && !removed {
			removed = true
			continue
		}
		if strings.Contains(line, `"sort"`) {
			continue // drop the now-unused import alongside the guard
		}
		kept = append(kept, line)
	}
	if !removed {
		t.Fatal("fixture no longer contains the sort.Strings guard")
	}
	dir := writeFixture(t, map[string]string{"maporder/maporder.go": strings.Join(kept, "\n")})
	problems, err := CheckFixture(filepath.Join(dir, "maporder"), MapOrder)
	if err != nil {
		t.Fatal(err)
	}
	caught := false
	for _, p := range problems {
		if strings.Contains(p, "unexpected finding") && strings.Contains(p, "maporder001") {
			caught = true
		}
	}
	if !caught {
		t.Errorf("deleting the sort guard was not caught by maporder; problems: %q", problems)
	}
}

// TestSabotageHookFromNonTestFile is the acceptance sabotage check for
// testhook: a fresh non-test file referencing a doc-marked test-only
// hook, with no directive, must be caught.
func TestSabotageHookFromNonTestFile(t *testing.T) {
	dir := writeFixture(t, map[string]string{
		"sab/hook/hook.go": `// Package hook defines a sabotage hook.
package hook

// Corrupt installs a test-only corruption hook.
func Corrupt() {}
`,
		"sab/leak/leak.go": `// Package leak reaches the hook from production code.
package leak

import "merlinvet.test/sab/hook"

func Oops() { hook.Corrupt() }
`,
	})
	problems, err := CheckFixture(filepath.Join(dir, "sab"), TestHook)
	if err != nil {
		t.Fatal(err)
	}
	caught := false
	for _, p := range problems {
		if strings.Contains(p, "unexpected finding") && strings.Contains(p, "testhook001") {
			caught = true
		}
	}
	if !caught {
		t.Errorf("test-only hook reference from a non-test file was not caught; problems: %q", problems)
	}
}

// TestRealModuleClean is the driver test: merlinvet must run clean on
// the module as committed — every invariant holds, every deliberate
// exemption is directive- or allowlist-audited.
func TestRealModuleClean(t *testing.T) {
	res, err := Run(moduleRoot(t), Analyzers(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Findings {
		t.Errorf("finding on real module: %s", d)
	}
	for _, u := range res.Unused {
		t.Errorf("unused //lint:allow %s at %s:%d", u.Code, u.Pos.Filename, u.Pos.Line)
	}
	if res.Packages < 20 {
		t.Errorf("only %d packages analyzed — loader lost most of the module", res.Packages)
	}
	// The audited exemption surface as committed: the conformance
	// sabotage path, the deprecated v1 wrappers, the shutdown drains
	// (directives) and the Wall-stamp/heartbeat sites (allowlist).
	if len(res.Suppressed) == 0 {
		t.Error("no suppressed findings — the //lint:allow directives on the real tree stopped matching")
	}
	if len(res.Allowlisted) == 0 {
		t.Error("no allowlisted sites — the walltime allowlist stopped matching the schedulers")
	}
}

// TestScopedRunFindsViolations drives the full driver (scoping
// included) over a synthetic module that violates detrand and walltime
// inside report-affecting package paths, proving AppliesTo maps fixture
// paths the same way the real tree is scoped.
func TestScopedRunFindsViolations(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, content string) {
		p := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module merlin\n\ngo 1.22\n")
	write("internal/cpu/cpu.go", `// Package cpu stands in for the simulator core.
package cpu

import (
	"math/rand"
	"time"
)

// Tick is nondeterministic twice over.
func Tick() int64 { return rand.Int63() + time.Now().UnixNano() }
`)
	write("cmd/tool/main.go", `// Command tool is operator tooling: wall clock is fine here.
package main

import "time"

func main() { _ = time.Now() }
`)
	res, err := Run(dir, Analyzers(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var codes []string
	for _, d := range res.Findings {
		codes = append(codes, d.Code)
		if strings.Contains(d.Pos.Filename, "cmd") {
			t.Errorf("finding outside analyzer scope (cmd/ is operator tooling): %s", d)
		}
	}
	for _, want := range []string{"detrand001", "walltime001"} {
		found := false
		for _, c := range codes {
			if c == want {
				found = true
			}
		}
		if !found {
			t.Errorf("scoped run missed %s; findings: %v", want, res.Findings)
		}
	}
	if res.Clean() {
		t.Error("violating module reported clean — merlinvet would exit 0")
	}
}

// TestDirectiveHygiene covers the directive bookkeeping findings:
// missing reasons, unknown codes and stale (unused) directives are all
// failures in their own right.
func TestDirectiveHygiene(t *testing.T) {
	src := `package p

//lint:allow walltime001
func A() {}

//lint:allow nosuch001 a reason
func B() {}

//lint:allow walltime001 stale: nothing on the next line trips it
func C() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	known := map[string]bool{"walltime001": true}
	dirs, bad := collectDirectives(fset, []*ast.File{f}, known)
	if len(bad) != 2 {
		t.Fatalf("want 2 malformed-directive findings (missing reason, unknown code), got %d: %v", len(bad), bad)
	}
	for _, d := range bad {
		if d.Code != directiveSyntax {
			t.Errorf("malformed directive reported under %s, want %s", d.Code, directiveSyntax)
		}
	}
	if len(dirs) != 1 {
		t.Fatalf("want 1 well-formed directive, got %d", len(dirs))
	}
	_, _, unused := applySuppressions(dirs, nil)
	if len(unused) != 1 {
		t.Errorf("stale directive not reported unused: %v", unused)
	}
}

// fixtureResult loads a testdata fixture and returns the raw Result
// (for asserting on allowlist hits and suppression bookkeeping that
// CheckFixture folds into pass/fail).
func fixtureResult(t *testing.T, dir string, a *Analyzer) *Result {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	srcRoot := filepath.Dir(abs)
	moduleDir, err := moduleRootAbove(srcRoot)
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(moduleDir)
	if err != nil {
		t.Fatal(err)
	}
	loader.ExtraRoots = map[string]string{FixtureRoot: srcRoot}
	pkgs, err := loader.LoadUnder(FixtureRoot + "/" + filepath.Base(abs))
	if err != nil {
		t.Fatal(err)
	}
	return RunPackages(loader, pkgs, []*Analyzer{a}, false)
}

// moduleRoot locates the repository root from the test's working
// directory (internal/lint).
func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := moduleRootAbove(".")
	if err == nil {
		return root
	}
	abs, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

// writeFixture materializes an in-memory fixture tree under a temp
// testdata/src-shaped root (with a go.mod above it so the loader can
// anchor) and returns that root.
func writeFixture(t *testing.T, files map[string]string) string {
	t.Helper()
	tmp := t.TempDir()
	if err := os.WriteFile(filepath.Join(tmp, "go.mod"), []byte("module merlin\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	root := filepath.Join(tmp, "src")
	for rel, content := range files {
		p := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}
