package lint

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// A Directive is one parsed //lint:allow comment: a diagnostic code and
// a mandatory free-text reason. A directive written as a trailing
// comment applies to findings on its own line; a directive standing on
// a line of its own applies to findings on the next line.
type Directive struct {
	Pos    token.Position
	Code   string
	Reason string
	// line is the source line the directive suppresses.
	line int
}

// SuppressedFinding pairs a finding with the directive that silenced it.
type SuppressedFinding struct {
	Diagnostic Diagnostic
	Reason     string
	Directive  token.Position
}

const allowPrefix = "//lint:allow"

// directiveSyntax is the code under which malformed //lint:allow
// comments (missing code, missing reason, unknown code) are reported:
// an unexplained suppression is itself an invariant violation.
const directiveSyntax = "lintdir001"

// collectDirectives parses every //lint:allow comment in the package's
// files. Malformed directives come back as diagnostics. knownCodes maps
// valid diagnostic codes (nil disables the unknown-code check).
func collectDirectives(fset *token.FileSet, files []*ast.File, knownCodes map[string]bool) ([]Directive, []Diagnostic) {
	var dirs []Directive
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:allowance — not ours
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					bad = append(bad, Diagnostic{Pos: pos, Code: directiveSyntax,
						Message: "//lint:allow needs a diagnostic code and a reason"})
					continue
				}
				code := fields[0]
				if knownCodes != nil && !knownCodes[code] {
					bad = append(bad, Diagnostic{Pos: pos, Code: directiveSyntax,
						Message: "//lint:allow " + code + ": unknown diagnostic code"})
					continue
				}
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{Pos: pos, Code: directiveSyntax,
						Message: "//lint:allow " + code + " needs a reason — unexplained suppressions are findings"})
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), code))
				line := pos.Line
				if isOwnLineComment(fset, f, c) {
					line++ // standalone directive covers the next line
				}
				dirs = append(dirs, Directive{Pos: pos, Code: code, Reason: reason, line: line})
			}
		}
	}
	return dirs, bad
}

// isOwnLineComment reports whether c is the first thing on its source
// line (as opposed to trailing code).
func isOwnLineComment(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	cpos := fset.Position(c.Pos())
	first := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !first {
			return false
		}
		if n.Pos().IsValid() && n != ast.Node(f) {
			p := fset.Position(n.Pos())
			if p.Filename == cpos.Filename && p.Line == cpos.Line && p.Column < cpos.Column {
				first = false
				return false
			}
		}
		return true
	})
	return first
}

// applySuppressions splits diags into surviving findings and suppressed
// ones, and returns directives that matched nothing (unused directives
// are reported by the driver — stale exemptions must not linger).
func applySuppressions(dirs []Directive, diags []Diagnostic) (kept []Diagnostic, suppressed []SuppressedFinding, unused []Directive) {
	used := make([]bool, len(dirs))
	for _, d := range diags {
		matched := -1
		for i, dir := range dirs {
			if dir.Code == d.Code && dir.Pos.Filename == d.Pos.Filename && dir.line == d.Pos.Line {
				matched = i
				break
			}
		}
		if matched >= 0 {
			used[matched] = true
			suppressed = append(suppressed, SuppressedFinding{
				Diagnostic: d, Reason: dirs[matched].Reason, Directive: dirs[matched].Pos,
			})
		} else {
			kept = append(kept, d)
		}
	}
	for i, dir := range dirs {
		if !used[i] {
			unused = append(unused, dir)
		}
	}
	sort.Slice(suppressed, func(i, j int) bool {
		a, b := suppressed[i].Diagnostic, suppressed[j].Diagnostic
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return kept, suppressed, unused
}
