// Package lint implements merlinvet, the project-specific static-analysis
// pass that machine-checks the invariants every campaign guarantee rests
// on: bit-identical reports across replay/checkpointed/forked/fleet
// execution, content-addressed artifact reuse (gob+sha256), and
// reproducible pruning all require that no unseeded randomness, no
// wall-clock reads and no map-iteration order ever leak into
// report-affecting state, and that test-only sabotage hooks stay out of
// production paths.
//
// The package is stdlib-only (go/parser, go/ast, go/types + the source
// importer); the module has zero dependencies and must stay that way.
// Six analyzers run over every package in the module:
//
//	detrand   no global math/rand, crypto/rand, or wall-clock-seeded
//	          sources in report-affecting packages
//	walltime  no time.Now/Since/Until outside the allowlisted
//	          wall-clock-metric sites (Result.Wall stamping, fleet
//	          heartbeat/TTL clocks); built-in allowlist entries that no
//	          longer match a real site are findings themselves
//	maporder  no map iteration feeding slices, writers, encoders,
//	          hashers or event emits without an intervening sort
//	testhook  test-only hooks (doc-marked "test-only") referenced only
//	          from _test.go files or explicitly allowed sites
//	ctxflow   exported campaign/server/fleet entry points that loop
//	          over faults or do network I/O take a context.Context
//	          first and do not synthesize context.Background()
//	globmut   no mutable package-level state in report-affecting
//	          packages (mutated or exported package-level vars)
//
// Findings carry short codes (detrand001, ...) and can be suppressed at
// a specific line with an explanation:
//
//	//lint:allow detrand001 fixture seed, never reaches a report
//
// The driver counts and prints every suppression, and reports unused or
// malformed directives as findings in their own right, so the set of
// deliberate exemptions stays audited.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, a short stable code (e.g.
// "maporder001") and a human-readable message.
type Diagnostic struct {
	Pos     token.Position
	Code    string
	Message string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Code, d.Message)
}

// AllowlistedSite records a built-in allowlist hit: a call that an
// analyzer recognized as a deliberate, documented exemption (e.g. the
// Result.Wall stamp in a scheduler) rather than a finding.
type AllowlistedSite struct {
	Pos    token.Position
	Code   string
	Where  string // enclosing function, e.g. "Runner.RunAll"
	Reason string
}

// Pass is the per-(package, analyzer) context handed to Analyzer.Run.
type Pass struct {
	Fset *token.FileSet
	Pkg  *Package
	// All holds every package loaded in this run, in sorted path order.
	// Analyzers that need whole-program facts (testhook discovers
	// doc-marked hooks anywhere in the module) read it.
	All []*Package

	diags *[]Diagnostic
	allow *[]AllowlistedSite
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, code, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     p.Fset.Position(pos),
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	})
}

// Allowlisted records a built-in allowlist hit at pos (not a finding,
// but surfaced by the driver so exemptions stay visible).
func (p *Pass) Allowlisted(pos token.Pos, code, where, reason string) {
	*p.allow = append(*p.allow, AllowlistedSite{
		Pos:    p.Fset.Position(pos),
		Code:   code,
		Where:  where,
		Reason: reason,
	})
}

// An Analyzer is one named invariant check.
type Analyzer struct {
	Name string
	Doc  string
	// Codes lists every diagnostic code the analyzer can emit, for
	// directive validation (//lint:allow of an unknown code is itself a
	// finding).
	Codes []string
	// AppliesTo reports whether the analyzer runs on the package with
	// the given import path when driven over the real module. The
	// fixture harness bypasses it.
	AppliesTo func(pkgPath string) bool
	Run       func(*Pass)
}

// Analyzers returns every merlinvet analyzer in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{DetRand, WallTime, MapOrder, TestHook, CtxFlow, GlobMut}
}

// AnalyzerByName returns the named analyzer, or nil.
func AnalyzerByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// inPaths returns an AppliesTo matcher for an exact import-path set.
func inPaths(paths ...string) func(string) bool {
	set := make(map[string]bool, len(paths))
	for _, p := range paths {
		set[p] = true
	}
	return func(pkgPath string) bool { return set[pkgPath] }
}

// --- shared AST/type helpers used by several analyzers ---

// funcObj resolves the called/used identifier to a *types.Func from the
// given package path, or nil. It sees through selector expressions
// (pkg.Fn, recv.Method) and plain identifiers, so import renames and
// method values are all handled by type information, not text.
func funcObj(info *types.Info, e ast.Expr) *types.Func {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether e resolves to the package-level function
// pkgPath.name (not a method).
func isPkgFunc(info *types.Info, e ast.Expr, pkgPath, name string) bool {
	fn := funcObj(info, e)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() != nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// enclosingFuncName returns a short name for the innermost function
// declaration in file containing pos: "Fn" for functions,
// "Recv.Method" for methods (pointer receivers reported without the
// star), or "" when pos sits outside any function (e.g. a package-level
// var initializer).
func enclosingFuncName(file *ast.File, pos token.Pos) string {
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || pos < fd.Pos() || pos > fd.End() {
			continue
		}
		if fd.Recv == nil || len(fd.Recv.List) == 0 {
			return fd.Name.Name
		}
		return recvTypeName(fd.Recv.List[0].Type) + "." + fd.Name.Name
	}
	return ""
}

// recvTypeName extracts the base type name of a method receiver.
func recvTypeName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(e.X)
	default:
		return ""
	}
}

// sortDiagnostics orders findings by file, line, column, code — the
// tool that polices determinism must itself print deterministically
// (map-keyed type info is iterated during analysis).
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Message < b.Message
	})
}

// pathLess orders packages by import path with the module root first.
func pathLess(a, b string) bool {
	if da, db := strings.Count(a, "/"), strings.Count(b, "/"); da != db && (a == "merlin" || b == "merlin") {
		return a == "merlin"
	}
	return a < b
}
