package lint

import (
	"sort"
	"strings"
)

// Result is one merlinvet run over the module: surviving findings,
// everything that was deliberately exempted (and why), and the
// bookkeeping findings about the exemptions themselves.
type Result struct {
	// Findings are unsuppressed diagnostics — each one fails the run.
	Findings []Diagnostic
	// Suppressed are findings silenced by a //lint:allow directive,
	// with the recorded reason.
	Suppressed []SuppressedFinding
	// Unused are //lint:allow directives that matched no finding;
	// the driver treats them as findings (stale exemptions rot).
	Unused []Directive
	// Allowlisted are built-in analyzer exemptions that fired (e.g.
	// walltime's Result.Wall stamping sites).
	Allowlisted []AllowlistedSite
	// Packages is how many packages were analyzed.
	Packages int
}

// Clean reports whether the run passes: no findings and no unused
// directives.
func (r *Result) Clean() bool {
	return len(r.Findings) == 0 && len(r.Unused) == 0
}

// Run loads every package in the module rooted at moduleDir,
// type-checks it, runs each analyzer over the packages in its scope,
// and applies //lint:allow suppressions. only restricts *reporting* to
// packages whose import path has one of the given prefixes (nil/empty
// means everything); the whole module is always loaded and analyzed so
// cross-package facts (testhook's hook set) stay complete.
func Run(moduleDir string, analyzers []*Analyzer, only []string) (*Result, error) {
	loader, err := NewLoader(moduleDir)
	if err != nil {
		return nil, err
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		return nil, err
	}
	res := RunPackages(loader, pkgs, analyzers, true)
	if len(only) > 0 {
		res.filter(only)
	}
	return res, nil
}

// RunPackages runs the analyzers over already-loaded packages. When
// scoped is true each analyzer's AppliesTo gates which packages it
// sees (the real-module behaviour); the fixture harness passes false
// to drive an analyzer over any fixture package.
func RunPackages(loader *Loader, pkgs []*Package, analyzers []*Analyzer, scoped bool) *Result {
	res := &Result{Packages: len(pkgs)}
	known := make(map[string]bool)
	for _, a := range Analyzers() { // all codes are directive-valid, even when running a subset
		for _, c := range a.Codes {
			known[c] = true
		}
	}
	for _, pkg := range pkgs {
		var diags []Diagnostic
		for _, a := range analyzers {
			if scoped && a.AppliesTo != nil && !a.AppliesTo(pkg.Path) {
				continue
			}
			pass := &Pass{Fset: loader.Fset, Pkg: pkg, All: pkgs, diags: &diags, allow: &res.Allowlisted}
			a.Run(pass)
		}
		dirs, bad := collectDirectives(loader.Fset, pkg.Files, known)
		kept, suppressed, unused := applySuppressions(dirs, diags)
		res.Findings = append(res.Findings, kept...)
		res.Findings = append(res.Findings, bad...)
		res.Suppressed = append(res.Suppressed, suppressed...)
		res.Unused = append(res.Unused, unused...)
	}
	sortDiagnostics(res.Findings)
	sort.Slice(res.Allowlisted, func(i, j int) bool {
		a, b := res.Allowlisted[i], res.Allowlisted[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	sort.Slice(res.Unused, func(i, j int) bool {
		a, b := res.Unused[i], res.Unused[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return res
}

// filter drops findings/suppressions whose file path does not fall
// under any of the given directory prefixes (used for `merlinvet
// ./internal/...`-style package arguments).
func (r *Result) filter(prefixes []string) {
	match := func(filename string) bool {
		for _, p := range prefixes {
			if p == "" || strings.HasPrefix(filename, p) {
				return true
			}
		}
		return false
	}
	keepD := r.Findings[:0]
	for _, d := range r.Findings {
		if match(d.Pos.Filename) {
			keepD = append(keepD, d)
		}
	}
	r.Findings = keepD
	keepS := r.Suppressed[:0]
	for _, s := range r.Suppressed {
		if match(s.Diagnostic.Pos.Filename) {
			keepS = append(keepS, s)
		}
	}
	r.Suppressed = keepS
	keepU := r.Unused[:0]
	for _, u := range r.Unused {
		if match(u.Pos.Filename) {
			keepU = append(keepU, u)
		}
	}
	r.Unused = keepU
	keepA := r.Allowlisted[:0]
	for _, a := range r.Allowlisted {
		if match(a.Pos.Filename) {
			keepA = append(keepA, a)
		}
	}
	r.Allowlisted = keepA
}
