// Package hook hosts a doc-marked sabotage hook for the testhook
// fixture, standing in for cpu.(*Core).SetResultMutator.
package hook

var mutator func(uint64) uint64

// SetFixtureMutator installs a test-only corruption hook applied to
// every fixture result; production code must never reach it.
func SetFixtureMutator(fn func(uint64) uint64) { mutator = fn }

// Apply runs a value through the installed hook (identity when unset).
func Apply(v uint64) uint64 {
	if mutator == nil {
		return v
	}
	return mutator(v)
}
