// Package use references the doc-marked hook from a non-test file —
// the production-path leak the testhook analyzer exists to catch.
package use

import "merlinvet.test/testhook/hook"

// Sabotage reaches the test-only hook from production code.
func Sabotage() {
	hook.SetFixtureMutator(func(v uint64) uint64 { return ^v }) // want "testhook001"
}

// Sanctioned is the explicitly-allowed path, the way the conformance
// -selftest sabotage block is allowed on the real tree.
func Sanctioned() {
	//lint:allow testhook001 fixture: sanctioned selftest path
	hook.SetFixtureMutator(nil) // allowed "testhook001"
}

// Observe uses a non-hook function from the same package: fine.
func Observe(v uint64) uint64 { return hook.Apply(v) }
