// Package ctxflow is the fixture for the ctxflow analyzer: exported
// fault-loop/network entry points must take a context first, and
// request-path code must not conjure context.Background().
package ctxflow

import (
	"context"
	"net/http"

	"merlin/internal/fault"
)

// InjectAll loops over the fault list with no way to cancel.
func InjectAll(faults []fault.Fault) int { // want "ctxflow001"
	n := 0
	for range faults {
		n++
	}
	return n
}

// InjectAllCtx is the sanctioned shape: context first, loop cancellable.
func InjectAllCtx(ctx context.Context, faults []fault.Fault) int {
	n := 0
	for range faults {
		if ctx.Err() != nil {
			break
		}
		n++
	}
	return n
}

// Fetch does HTTP I/O with no deadline plumbing.
func Fetch(url string) error { // want "ctxflow001"
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	return resp.Body.Close()
}

// MisplacedCtx buries the context mid-signature.
func MisplacedCtx(n int, ctx context.Context) {} // want "ctxflow003"

// Detach synthesizes a root context on a request path.
func Detach() context.Context {
	return context.Background() // want "ctxflow002"
}

// SanctionedDetach is the deliberate, explained exemption.
func SanctionedDetach() context.Context {
	//lint:allow ctxflow002 fixture: daemon-owned root context
	return context.Background() // allowed "ctxflow002"
}
