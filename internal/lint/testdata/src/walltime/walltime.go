// Package walltime is the fixture for the walltime analyzer: wall-clock
// reads are flagged unless the site is allowlisted or carries a
// //lint:allow with a reason.
package walltime // want "walltime002"

import "time"

// Stamp reads the wall clock twice with no exemption.
func Stamp() time.Duration {
	start := time.Now()      // want "walltime001"
	return time.Since(start) // want "walltime001"
}

// Metric is the deliberate, explained exemption.
func Metric() time.Duration {
	//lint:allow walltime001 fixture: deliberate wall-clock metric stamp
	start := time.Now() // allowed "walltime001"
	//lint:allow walltime001 fixture: deliberate wall-clock metric stamp
	return time.Since(start) // allowed "walltime001"
}

// AllowlistedMetric is exempted through the analyzer's built-in
// allowlist (the lint tests inject an entry for this fixture), the way
// Result.Wall stamping and the fleet TTL clock are on the real tree.
func AllowlistedMetric() time.Time {
	return time.Now()
}

// Deadline uses monotonic arithmetic on a caller-supplied anchor — no
// wall-clock read, not flagged.
func Deadline(anchor time.Time, d time.Duration) time.Time {
	return anchor.Add(d)
}
