// Package detrand is the fixture for the detrand analyzer: global and
// clock-seeded randomness is flagged, explicit seeded state is not.
package detrand

import (
	crand "crypto/rand" // want "detrand002"
	"math/rand"
	"time"
)

// Global draws from the shared package-level source: nondeterministic.
func Global() int {
	return rand.Intn(10) // want "detrand001"
}

// ValueRef passes a global-source function around: just as bad.
func ValueRef() func() float64 {
	return rand.Float64 // want "detrand001"
}

// Seeded is the sanctioned pattern: randomness flows from an explicit
// seeded source.
func Seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// ClockSeeded builds an explicit source but seeds it from the wall
// clock, so no two runs replay.
func ClockSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "detrand003"
}

// Hardware consumes entropy that can never be replayed (flagged at the
// import above).
func Hardware(p []byte) {
	crand.Read(p)
}

// SuppressedGlobal is the deliberate, explained exemption.
func SuppressedGlobal() int64 {
	//lint:allow detrand001 fixture: deliberate global draw, never reaches a report
	return rand.Int63n(5) // allowed "detrand001"
}
