// Package maporder is the fixture for the maporder analyzer: map
// iteration feeding ordered output is flagged unless an intervening
// sort (or a //lint:allow) makes the order deterministic.
package maporder

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Unsorted leaks map order into the returned slice.
func Unsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "maporder001"
	}
	return keys
}

// Sorted is the sanctioned collect-then-sort idiom: the sort guard
// below the loop makes the append order irrelevant.
func Sorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// PrintLoop writes lines in randomized order.
func PrintLoop(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want "maporder002"
	}
}

// WriterLoop hands bytes to an io.Writer in randomized order — the
// exact shape that breaks sha256 content addresses over gob streams.
func WriterLoop(m map[string]int, w io.Writer) {
	for k := range m {
		w.Write([]byte(k)) // want "maporder002"
	}
}

// EncoderLoop serializes entries in randomized order.
func EncoderLoop(m map[string]int, enc *json.Encoder) {
	for k := range m {
		enc.Encode(k) // want "maporder002"
	}
}

// PerKeyBuffer writes into a buffer created inside the loop: each
// iteration's bytes are self-contained, so order cannot leak.
func PerKeyBuffer(m map[string]int) map[string]string {
	out := make(map[string]string, len(m))
	for k := range m {
		var b strings.Builder
		b.WriteString(k)
		out[k] = b.String()
	}
	return out
}

// ChanLoop streams values in randomized order.
func ChanLoop(m map[string]int, ch chan<- string) {
	for k := range m {
		ch <- k // want "maporder003"
	}
}

func emitEvent(string) {}

// EmitLoop fires events in randomized order.
func EmitLoop(m map[string]int) {
	for k := range m {
		emitEvent(k) // want "maporder003"
	}
}

// SuppressedCollect is the deliberate, explained exemption.
func SuppressedCollect(m map[string]int) []string {
	var keys []string
	for k := range m {
		//lint:allow maporder001 fixture: order is re-derived by the consumer
		keys = append(keys, k) // allowed "maporder001"
	}
	return keys
}
