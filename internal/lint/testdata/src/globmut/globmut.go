// Package globmut is the fixture for the globmut analyzer: mutations of
// package-level vars and exported package-level vars are flagged;
// read-only tables, error sentinels, locals and shadowing declarations
// are not.
package globmut

import "errors"

// counter is mutable package-level state: every write to it below is a
// finding.
var counter int

// Exported is a mutable API surface any importer can write to.
var Exported = 42 // want "globmut002"

// ErrSentinel is exempt from globmut002: errors.Is comparisons require
// an exported var and convention treats sentinels as immutable.
var ErrSentinel = errors.New("fixture sentinel")

// table is a read-only lookup table: the declaration initializer is not
// a mutation, so it is never flagged.
var table = [...]string{"a", "b", "c"}

// registry models the init-time registration map idiom.
var registry = map[string]int{}

type box struct{ n int }

// cell exercises field writes and pointer-receiver calls.
var cell box

func (b *box) bump() { b.n++ }

func (b box) read() int { return b.n }

// Mutate covers the direct mutation shapes.
func Mutate() {
	counter = 1       // want "globmut001"
	counter++         // want "globmut001"
	registry["k"] = 1 // want "globmut001"
	cell.n = 9        // want "globmut001"
	p := &counter     // want "globmut001"
	*p = 2
}

// Call covers the pointer-receiver shape: bump may mutate cell, read
// cannot (value receiver).
func Call() int {
	cell.bump() // want "globmut001"
	return cell.read()
}

// Register is the deliberate, explained exemption.
func Register(k string, v int) {
	//lint:allow globmut001 fixture: init-time registration, read-only afterwards
	registry[k] = v // allowed "globmut001"
}

// Clean mutates only locals: a := declaration shadows the package var
// and every write below lands on the local.
func Clean() int {
	counter := 0
	counter = len(table)
	cell := box{}
	cell.n = counter
	cell.bump()
	return cell.n
}
