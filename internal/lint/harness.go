package lint

import (
	"fmt"
	"go/ast"
	"os"
	"path/filepath"
	"regexp"
	"sort"
)

// This file is the hand-rolled expectation harness the analyzer suite
// runs over the testdata fixture packages. Fixture sources annotate the
// behaviour they expect, line by line:
//
//	x := rand.Intn(10) // want "detrand001"
//
// says an *unsuppressed* finding matching the pattern must land on this
// line, and
//
//	//lint:allow detrand001 fixture: deliberate
//	x := rand.Int63n(5) // allowed "detrand001"
//
// says a finding must land here and be *suppressed* by the directive.
// Every finding must be claimed by a marker and every marker must be
// satisfied, so a fixture fails both when an analyzer goes quiet (a
// deleted sort guard must resurface as an unmatched want) and when it
// overfires.

// FixtureRoot is the import-path prefix fixture packages live under;
// the harness mounts the testdata/src directory there so fixtures can
// import each other (testhook's hook/use pair) while staying invisible
// to the real module build.
const FixtureRoot = "merlinvet.test"

var (
	wantRx    = regexp.MustCompile(`// want "([^"]+)"`)
	allowedRx = regexp.MustCompile(`// allowed "([^"]+)"`)
)

type expectation struct {
	file       string
	line       int
	rx         *regexp.Regexp
	suppressed bool
	matched    bool
}

// CheckFixture loads the fixture tree at dir (a directory under some
// testdata/src), runs the analyzer over every package in it with
// scoping bypassed, and verifies the findings against the fixture's
// want/allowed markers. It returns one problem string per mismatch; an
// empty slice means the fixture passed.
func CheckFixture(dir string, a *Analyzer) ([]string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	srcRoot := filepath.Dir(abs)
	name := filepath.Base(abs)
	moduleDir, err := moduleRootAbove(srcRoot)
	if err != nil {
		return nil, err
	}
	loader, err := NewLoader(moduleDir)
	if err != nil {
		return nil, err
	}
	loader.ExtraRoots = map[string]string{FixtureRoot: srcRoot}
	pkgs, err := loader.LoadUnder(FixtureRoot + "/" + name)
	if err != nil {
		return nil, err
	}
	res := RunPackages(loader, pkgs, []*Analyzer{a}, false)

	var exps []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			fexps, err := parseExpectations(loader, f)
			if err != nil {
				return nil, err
			}
			exps = append(exps, fexps...)
		}
	}

	var problems []string
	claim := func(d Diagnostic, suppressed bool) {
		text := d.Code + ": " + d.Message
		for _, e := range exps {
			if e.matched || e.suppressed != suppressed || e.file != d.Pos.Filename || e.line != d.Pos.Line || !e.rx.MatchString(text) {
				continue
			}
			e.matched = true
			return
		}
		kind := "finding"
		if suppressed {
			kind = "suppressed finding"
		}
		problems = append(problems, fmt.Sprintf("unexpected %s at %s:%d: %s", kind, filepath.Base(d.Pos.Filename), d.Pos.Line, text))
	}
	for _, d := range res.Findings {
		claim(d, false)
	}
	for _, s := range res.Suppressed {
		claim(s.Diagnostic, true)
	}
	for _, e := range exps {
		if !e.matched {
			kind := "want"
			if e.suppressed {
				kind = "allowed"
			}
			problems = append(problems, fmt.Sprintf("unmatched // %s %q at %s:%d: the analyzer went quiet here", kind, e.rx, filepath.Base(e.file), e.line))
		}
	}
	for _, u := range res.Unused {
		problems = append(problems, fmt.Sprintf("unused //lint:allow %s at %s:%d", u.Code, filepath.Base(u.Pos.Filename), u.Pos.Line))
	}
	sort.Strings(problems)
	return problems, nil
}

// parseExpectations scans one fixture file's comments for want/allowed
// markers.
func parseExpectations(loader *Loader, f *ast.File) ([]*expectation, error) {
	var exps []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			pos := loader.Fset.Position(c.Pos())
			for _, kind := range []struct {
				rx         *regexp.Regexp
				suppressed bool
			}{{wantRx, false}, {allowedRx, true}} {
				for _, m := range kind.rx.FindAllStringSubmatch(c.Text, -1) {
					rx, err := regexp.Compile(m[1])
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad expectation pattern %q: %w", pos.Filename, pos.Line, m[1], err)
					}
					exps = append(exps, &expectation{file: pos.Filename, line: pos.Line, rx: rx, suppressed: kind.suppressed})
				}
			}
		}
	}
	return exps, nil
}

// moduleRootAbove walks up from dir to the enclosing go.mod.
func moduleRootAbove(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod above fixture %s", dir)
		}
		dir = parent
	}
}
