package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// TestHook keeps sabotage instrumentation out of production paths. The
// simulator exposes deliberate corruption hooks for oracle selftests —
// cpu.(*Core).SetResultMutator flips execution results so `merlin
// conformance -selftest` can prove the lockstep oracle catches a broken
// core. A hook like that reachable from a campaign path would silently
// corrupt reports, so any function whose doc comment carries the
// "test-only" marker may only be referenced from _test.go files (which
// merlinvet never loads) or from a line carrying an explicit
// //lint:allow testhook001 with the reason (the conformance selftest
// path is the one sanctioned caller today).
//
//	testhook001  test-only hook referenced outside its defining package
var TestHook = &Analyzer{
	Name:      "testhook",
	Doc:       "doc-marked test-only hooks stay out of production code",
	Codes:     []string{"testhook001"},
	AppliesTo: func(pkgPath string) bool { return true },
	Run:       runTestHook,
}

// testOnlyMarker is the doc-comment phrase that declares a function a
// sabotage/test hook. Marking is part of the hook's contract: document
// it as test-only and merlinvet enforces the claim module-wide.
const testOnlyMarker = "test-only"

func runTestHook(pass *Pass) {
	// Discover every doc-marked hook in the whole loaded set, then flag
	// references from this package when it is not the defining one.
	hooks := make(map[types.Object]string)
	for _, pkg := range pass.All {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Doc == nil {
					continue
				}
				if !strings.Contains(strings.ToLower(fd.Doc.Text()), testOnlyMarker) {
					continue
				}
				if obj := pkg.Info.Defs[fd.Name]; obj != nil {
					hooks[obj] = pkg.Path
				}
			}
		}
	}
	if len(hooks) == 0 {
		return
	}
	info := pass.Pkg.Info
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := info.Uses[id]
			defPkg, isHook := hooks[obj]
			if !isHook || defPkg == pass.Pkg.Path {
				return true
			}
			pass.Reportf(id.Pos(), "testhook001",
				"%s is a test-only hook (doc-marked in %s): production code must not reach sabotage instrumentation — call it from _test.go, or //lint:allow with the sanctioned reason", id.Name, defPkg)
			return true
		})
	}
}
