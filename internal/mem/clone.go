package mem

// freeze folds any private pages into a frozen pool shared with future
// clones. A frozen pool is never mutated (later freezes build a fresh
// merged pool), which keeps snapshots safe for concurrent readers: calling
// freeze on an already-frozen memory is a read-only no-op, so any number
// of goroutines may Clone one frozen snapshot at once.
func (m *Memory) freeze() {
	if len(m.pages) == 0 && m.shared != nil {
		return
	}
	merged := make(map[uint64]*[pageSize]byte, len(m.shared)+len(m.pages))
	for pn, p := range m.shared {
		merged[pn] = p
	}
	for pn, p := range m.pages {
		merged[pn] = p
	}
	m.shared = merged
	m.pages = make(map[uint64]*[pageSize]byte)
}

// Clone returns a copy-on-write snapshot of the memory. The current pages
// are frozen into a shared pool referenced by both the original and the
// clone; each side privatises a page only when it next writes it. A clone
// costs O(resident pages) pointer copies when the original has written
// since its last Clone (the merged pool is rebuilt) and O(1) when it has
// not — never a deep copy of the mapped bytes.
func (m *Memory) Clone() *Memory {
	m.freeze()
	return &Memory{
		pages:   make(map[uint64]*[pageSize]byte),
		shared:  m.shared,
		lo:      m.lo,
		hi:      m.hi,
		Latency: m.Latency,
	}
}

// CloneInto is Clone targeting an existing Memory shell (a retired clone
// being recycled by a pool): the shell's page map is reused instead of
// reallocated. Every field of n is overwritten; nothing about the shell's
// previous life is trusted.
func (m *Memory) CloneInto(n *Memory) {
	m.freeze()
	if n.pages == nil {
		n.pages = make(map[uint64]*[pageSize]byte)
	} else {
		clear(n.pages)
	}
	n.shared = m.shared
	n.lo, n.hi, n.Latency = m.lo, m.hi, m.Latency
}

// Reset drops every page reference — private and shared — while keeping
// the page map's allocation for reuse. A reset memory reads as unmapped;
// it is only meaningful on a retired clone shell about to be rebuilt by
// CloneInto, so an idle pooled shell does not pin a campaign's frozen
// snapshot lineage.
func (m *Memory) Reset() {
	clear(m.pages)
	m.shared = nil
}

// ResidentBytes estimates the memory's footprint: every reachable page
// counted at full page size. Pages shared with other clones are counted
// here too, so summing ResidentBytes over a snapshot lineage overestimates
// — callers budgeting memory (the daemon's snapshot cache) get a
// conservative bound, never an undercount.
func (m *Memory) ResidentBytes() int64 {
	return int64(len(m.pages)+len(m.shared)) * pageSize
}

// freeze folds any private set blocks into a frozen generation shared with
// future clones. Like Memory.freeze, it is a read-only no-op on an
// already-frozen cache, so frozen snapshots clone concurrently without
// synchronisation. Private blocks are donated to the generation by
// pointer: a freeze costs O(sets) pointer copies, never a byte copy.
func (c *Cache) freeze() {
	if c.nPriv == 0 && c.shared != nil {
		return
	}
	merged := make([]*setBlock, c.sets)
	copy(merged, c.shared)
	for s, b := range c.priv {
		if b != nil {
			merged[s] = b
		}
	}
	c.shared = merged
	c.priv = make([]*setBlock, c.sets)
	c.nPriv = 0
}

// Clone returns a copy-on-write snapshot of the cache wired to the given
// next level: the current set blocks are frozen into a generation shared
// by both caches, and each side privatises a set only when it next touches
// it. Cloning a frozen snapshot (one not written since its last Clone)
// costs O(sets) pointer slots and no byte copies. Event hooks are not
// copied; the owner must re-attach them.
func (c *Cache) Clone(below Backend) *Cache {
	c.freeze()
	return &Cache{
		Cfg:      c.Cfg,
		Stats:    c.Stats,
		sets:     c.sets,
		lineSz:   c.lineSz,
		ways:     c.ways,
		offBits:  c.offBits,
		idxBits:  c.idxBits,
		priv:     make([]*setBlock, c.sets),
		shared:   c.shared,
		below:    below,
		lruClock: c.lruClock,
	}
}

// CloneInto is Clone targeting an existing Cache shell of identical
// geometry (a retired clone being recycled by a pool): the shell's private
// slot slice is reused. Every field of n is overwritten by copy-over;
// hooks are cleared for the owner to re-attach.
func (c *Cache) CloneInto(n *Cache, below Backend) {
	c.freeze()
	n.Cfg = c.Cfg
	n.Stats = c.Stats
	n.sets, n.lineSz, n.ways = c.sets, c.lineSz, c.ways
	n.offBits, n.idxBits = c.offBits, c.idxBits
	if len(n.priv) == c.sets {
		clear(n.priv)
	} else {
		n.priv = make([]*setBlock, c.sets)
	}
	n.nPriv = 0
	n.shared = c.shared
	n.below = below
	n.lruClock = c.lruClock
	n.OnFill, n.OnEvict = nil, nil
}

// Reset drops every set-block reference — privatised and shared — while
// keeping the private slot slice for reuse, and detaches the hooks and
// backend. Like Memory.Reset it leaves the cache unusable until the next
// CloneInto: its purpose is to stop an idle pooled shell from pinning the
// blocks and generations of the campaign that retired it.
func (c *Cache) Reset() {
	clear(c.priv)
	c.nPriv = 0
	c.shared = nil
	c.below = nil
	c.OnFill, c.OnEvict = nil, nil
}

// FootprintBytes is the cache's worst-case resident size: the full data
// array plus line metadata, regardless of how much is currently shared
// with other clones. The daemon's snapshot cache budgets with it.
func (c *Cache) FootprintBytes() int64 {
	const lineMeta = 24 // tag + lru + flags, padded
	return int64(c.Cfg.Size) + int64(c.sets*c.ways)*lineMeta
}
