package mem

// Clone returns a deep copy of the memory. Snapshots taken for
// checkpoint-accelerated injection campaigns clone the page map so the
// original can keep running (or stay frozen) independently.
func (m *Memory) Clone() *Memory {
	c := &Memory{
		pages:   make(map[uint64]*[pageSize]byte, len(m.pages)),
		lo:      m.lo,
		hi:      m.hi,
		Latency: m.Latency,
	}
	for pn, p := range m.pages {
		cp := *p
		c.pages[pn] = &cp
	}
	return c
}

// Clone returns a deep copy of the cache wired to the given next level.
// Event hooks are not copied; the owner must re-attach them.
func (c *Cache) Clone(below Backend) *Cache {
	n := &Cache{
		Cfg:      c.Cfg,
		Stats:    c.Stats,
		sets:     c.sets,
		lineSz:   c.lineSz,
		ways:     c.ways,
		offBits:  c.offBits,
		idxBits:  c.idxBits,
		lines:    append([]line(nil), c.lines...),
		data:     append([]byte(nil), c.data...),
		below:    below,
		lruClock: c.lruClock,
	}
	return n
}
