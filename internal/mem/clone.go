package mem

// Clone returns a copy-on-write snapshot of the memory. The current pages
// are frozen into a shared pool referenced by both the original and the
// clone; each side privatises a page only when it next writes it. A clone
// costs O(resident pages) pointer copies when the original has written
// since its last Clone (the merged pool is rebuilt) and O(1) when it has
// not — never a deep copy of the mapped bytes. A frozen pool is never
// mutated (later Clones build a fresh merged pool), which keeps snapshots
// safe for concurrent readers in parallel injection campaigns.
func (m *Memory) Clone() *Memory {
	if len(m.pages) > 0 || m.shared == nil {
		merged := make(map[uint64]*[pageSize]byte, len(m.shared)+len(m.pages))
		for pn, p := range m.shared {
			merged[pn] = p
		}
		for pn, p := range m.pages {
			merged[pn] = p
		}
		m.shared = merged
		m.pages = make(map[uint64]*[pageSize]byte)
	}
	return &Memory{
		pages:   make(map[uint64]*[pageSize]byte),
		shared:  m.shared,
		lo:      m.lo,
		hi:      m.hi,
		Latency: m.Latency,
	}
}

// Clone returns a deep copy of the cache wired to the given next level.
// Event hooks are not copied; the owner must re-attach them.
func (c *Cache) Clone(below Backend) *Cache {
	n := &Cache{
		Cfg:      c.Cfg,
		Stats:    c.Stats,
		sets:     c.sets,
		lineSz:   c.lineSz,
		ways:     c.ways,
		offBits:  c.offBits,
		idxBits:  c.idxBits,
		lines:    append([]line(nil), c.lines...),
		data:     append([]byte(nil), c.data...),
		below:    below,
		lruClock: c.lruClock,
	}
	return n
}
