package mem

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

func TestMemoryReadWrite(t *testing.T) {
	m := NewMemory(0x1000, 0x10000, 80)
	var buf [8]byte
	m.ReadBytes(0x2000, buf[:])
	for _, b := range buf {
		if b != 0 {
			t.Fatal("untouched memory must read as zero")
		}
	}
	binary.LittleEndian.PutUint64(buf[:], 0x1122334455667788)
	m.WriteBytes(0x2000, buf[:])
	var got [8]byte
	m.ReadBytes(0x2000, got[:])
	if got != buf {
		t.Fatalf("read back % x, want % x", got, buf)
	}
}

func TestMemoryCrossPage(t *testing.T) {
	m := NewMemory(0, 1<<20, 80)
	src := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	m.WriteBytes(pageSize-4, src) // straddles a page boundary
	dst := make([]byte, 8)
	m.ReadBytes(pageSize-4, dst)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("cross-page read = % x", dst)
		}
	}
}

func TestMemoryInRange(t *testing.T) {
	m := NewMemory(0x1000, 0x2000, 80)
	tests := []struct {
		addr uint64
		size int
		want bool
	}{
		{0x1000, 8, true},
		{0x1ff8, 8, true},
		{0x1ff9, 8, false},
		{0xfff, 1, false},
		{0x2000, 1, false},
		{^uint64(0) - 3, 8, false}, // overflow
	}
	for _, tt := range tests {
		if got := m.InRange(tt.addr, tt.size); got != tt.want {
			t.Errorf("InRange(%#x, %d) = %v, want %v", tt.addr, tt.size, got, tt.want)
		}
	}
}

func TestMemoryRoundTripProperty(t *testing.T) {
	m := NewMemory(0, 1<<24, 80)
	f := func(addr uint32, val uint64) bool {
		a := uint64(addr) % (1<<24 - 8)
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], val)
		m.WriteBytes(a, b[:])
		var r [8]byte
		m.ReadBytes(a, r[:])
		return r == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCacheConfigValidate(t *testing.T) {
	good := CacheConfig{Name: "l1", Size: 32 << 10, LineSize: 64, Ways: 4, HitLatency: 2}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if good.Sets() != 128 {
		t.Errorf("sets = %d, want 128", good.Sets())
	}
	bad := []CacheConfig{
		{Name: "z", Size: 0, LineSize: 64, Ways: 4},
		{Name: "l", Size: 1 << 10, LineSize: 48, Ways: 4},
		{Name: "s", Size: 3 << 10, LineSize: 64, Ways: 4}, // 12 sets: not a power of two
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v should be invalid", c)
		}
	}
}

func newTestHierarchy() (*Cache, *Cache, *Memory) {
	m := NewMemory(0, 1<<22, 80)
	l2 := NewCache(CacheConfig{Name: "l2", Size: 64 << 10, LineSize: 64, Ways: 16, HitLatency: 12}, m)
	l1 := NewCache(CacheConfig{Name: "l1", Size: 4 << 10, LineSize: 64, Ways: 4, HitLatency: 2}, l2)
	return l1, l2, m
}

func TestCacheHitMiss(t *testing.T) {
	l1, _, _ := newTestHierarchy()
	_, lat1 := l1.Access(0x100, 8, false, 1)
	if l1.Stats.Misses != 1 || l1.Stats.Hits != 0 {
		t.Fatalf("first access: %+v", l1.Stats)
	}
	if lat1 <= l1.Cfg.HitLatency {
		t.Errorf("miss latency %d should exceed hit latency", lat1)
	}
	_, lat2 := l1.Access(0x108, 8, false, 2) // same line
	if l1.Stats.Hits != 1 {
		t.Fatalf("second access should hit: %+v", l1.Stats)
	}
	if lat2 != l1.Cfg.HitLatency {
		t.Errorf("hit latency = %d, want %d", lat2, l1.Cfg.HitLatency)
	}
}

func TestCacheWriteBackPropagation(t *testing.T) {
	l1, _, m := newTestHierarchy()
	// Write a value through L1.
	e, _ := l1.Access(0x200, 8, true, 1)
	binary.LittleEndian.PutUint64(l1.EntryData(e)[l1.Offset(0x200):], 0xdeadbeef)
	// Evict it by filling the set: 4 ways, lines mapping to the same set
	// are 4KB apart (64 sets * 64B line).
	setStride := uint64(l1.sets * l1.lineSz)
	for i := 1; i <= 4; i++ {
		l1.Access(0x200+uint64(i)*setStride, 8, false, uint64(i+1))
	}
	var buf [8]byte
	// After eviction the dirty line must have reached L2; flush L2 to memory.
	l1.FlushAll(100)
	l2 := l1.below.(*Cache)
	l2.FlushAll(100)
	m.ReadBytes(0x200, buf[:])
	if binary.LittleEndian.Uint64(buf[:]) != 0xdeadbeef {
		t.Fatalf("writeback lost: memory holds % x", buf)
	}
	if l1.Stats.Writebacks == 0 {
		t.Error("expected at least one writeback")
	}
}

func TestCacheLRU(t *testing.T) {
	l1, _, _ := newTestHierarchy()
	setStride := uint64(l1.sets * l1.lineSz)
	// Fill all 4 ways of set 0.
	for i := 0; i < 4; i++ {
		l1.Access(uint64(i)*setStride, 8, false, uint64(i+1))
	}
	// Touch line 0 to make it MRU, then bring in a 5th line.
	l1.Access(0, 8, false, 10)
	l1.Access(4*setStride, 8, false, 11)
	// Line 0 must still be resident; line 1 (LRU) must be gone.
	if _, hit := l1.Probe(0); !hit {
		t.Error("MRU line was evicted")
	}
	if _, hit := l1.Probe(setStride); hit {
		t.Error("LRU line was not evicted")
	}
}

func TestCacheFlipBit(t *testing.T) {
	l1, _, _ := newTestHierarchy()
	e, _ := l1.Access(0x300, 8, true, 1)
	l1.EntryData(e)[0] = 0x0f
	l1.FlipBit(e, 3)
	if l1.EntryData(e)[0] != 0x07 {
		t.Errorf("bit flip: got %#x, want 0x07", l1.EntryData(e)[0])
	}
	l1.FlipBit(e, 3)
	if l1.EntryData(e)[0] != 0x0f {
		t.Errorf("double flip must restore: got %#x", l1.EntryData(e)[0])
	}
}

func TestCacheEvictHooks(t *testing.T) {
	l1, _, _ := newTestHierarchy()
	var fills, cleanEv, dirtyEv int
	l1.OnFill = func(set, way int, cycle uint64) { fills++ }
	l1.OnEvict = func(set, way int, kind EvictKind, cycle uint64) {
		if kind == EvictDirty {
			dirtyEv++
		} else {
			cleanEv++
		}
	}
	setStride := uint64(l1.sets * l1.lineSz)
	l1.Access(0, 8, true, 1) // dirty line
	for i := 1; i <= 4; i++ {
		l1.Access(uint64(i)*setStride, 8, false, uint64(i+1))
	}
	if fills != 5 {
		t.Errorf("fills = %d, want 5", fills)
	}
	if dirtyEv != 1 {
		t.Errorf("dirty evictions = %d, want 1", dirtyEv)
	}
}

func TestCacheReadSeesMemoryContents(t *testing.T) {
	l1, _, m := newTestHierarchy()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], 42)
	m.WriteBytes(0x400, b[:])
	e, _ := l1.Access(0x400, 8, false, 1)
	got := binary.LittleEndian.Uint64(l1.EntryData(e)[l1.Offset(0x400):])
	if got != 42 {
		t.Fatalf("cache fill read %d, want 42", got)
	}
}

// TestCacheHierarchyMatchesFlatMemory drives a random access sequence
// through the two-level hierarchy and a flat reference memory in parallel:
// every read must return identical bytes, and after a full flush the
// backing memory must equal the reference exactly.
func TestCacheHierarchyMatchesFlatMemory(t *testing.T) {
	l1, _, m := newTestHierarchy()
	ref := NewMemory(0, 1<<22, 0)
	rnd := uint64(0x1234567)
	next := func(n uint64) uint64 {
		rnd ^= rnd << 13
		rnd ^= rnd >> 7
		rnd ^= rnd << 17
		return rnd % n
	}
	for i := 0; i < 5000; i++ {
		addr := next(1 << 18)
		size := []int{1, 2, 4, 8}[next(4)]
		addr -= addr % uint64(size) // aligned, no line crossing
		if next(2) == 0 {
			val := next(1 << 62)
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], val)
			e, _ := l1.Access(addr, size, true, uint64(i))
			copy(l1.EntryData(e)[l1.Offset(addr):], b[:size])
			ref.WriteBytes(addr, b[:size])
		} else {
			e, _ := l1.Access(addr, size, false, uint64(i))
			got := make([]byte, size)
			copy(got, l1.EntryData(e)[l1.Offset(addr):])
			want := make([]byte, size)
			ref.ReadBytes(addr, want)
			for j := range got {
				if got[j] != want[j] {
					t.Fatalf("step %d: read %#x size %d = % x, want % x", i, addr, size, got, want)
				}
			}
		}
	}
	l1.FlushAll(9999)
	l1.below.(*Cache).FlushAll(9999)
	buf := make([]byte, 4096)
	want := make([]byte, 4096)
	for addr := uint64(0); addr < 1<<18; addr += 4096 {
		m.ReadBytes(addr, buf)
		ref.ReadBytes(addr, want)
		for j := range buf {
			if buf[j] != want[j] {
				t.Fatalf("after flush: memory differs at %#x", addr+uint64(j))
			}
		}
	}
}
