package mem

import (
	"fmt"
	"sync"
	"testing"
)

func testCache(t testing.TB) (*Cache, *Memory) {
	t.Helper()
	mem := NewMemory(0, 1<<20, 4)
	for a := uint64(0); a < 1<<14; a += 8 {
		var b [8]byte
		for i := range b {
			b[i] = byte(a + uint64(i))
		}
		mem.WriteBytes(a, b[:])
	}
	return NewCache(CacheConfig{Name: "T", Size: 4 << 10, LineSize: 64, Ways: 4, HitLatency: 1}, mem), mem
}

// cloneOver clones c together with its backing memory, mirroring what
// cpu.Core.Clone does: each machine owns its whole hierarchy, and only
// frozen copy-on-write generations are shared.
func cloneOver(c *Cache, m *Memory) (*Cache, *Memory) {
	nm := m.Clone()
	return c.Clone(nm), nm
}

// touch performs a deterministic access pattern, mixing reads and writes.
func touch(c *Cache, rounds int, salt uint64) {
	cycle := uint64(0)
	for r := 0; r < rounds; r++ {
		for a := uint64(0); a < 1<<13; a += 192 {
			cycle++
			addr := (a + salt*64) & ^uint64(7)
			e, _ := c.Access(addr, 8, r%2 == 1, cycle)
			if r%2 == 1 {
				d := c.EntryData(e)
				d[c.Offset(addr)] ^= byte(salt + a)
			}
		}
	}
}

// TestCacheCloneIsolation: after a Clone, writes on either side must not
// leak into the other; the untouched side stays Equal to a deep reference.
func TestCacheCloneIsolation(t *testing.T) {
	orig, m := testCache(t)
	touch(orig, 3, 1)

	clone, _ := cloneOver(orig, m)
	if !orig.Equal(clone) || !clone.Equal(orig) {
		t.Fatal("fresh clone not equal to original")
	}

	// Snapshot the original's observable state for later comparison.
	ref, _ := cloneOver(orig, m)

	// Diverge the clone heavily; the original must be unaffected.
	touch(clone, 4, 7)
	if !orig.Equal(ref) {
		t.Fatal("writes to a clone leaked into the original")
	}
	if orig.Equal(clone) {
		t.Fatal("diverged caches compare equal")
	}

	// Diverge the original too; the ref snapshot must be unaffected.
	touch(orig, 2, 3)
	if ref.Equal(orig) {
		t.Fatal("writes to the original leaked into its frozen snapshot")
	}
}

// TestCacheCloneEqualDeep: a CoW clone must be byte-for-byte identical to
// the original under every accessor, not just Equal.
func TestCacheCloneEqualDeep(t *testing.T) {
	orig, m := testCache(t)
	touch(orig, 3, 2)
	clone, _ := cloneOver(orig, m)
	for e := 0; e < orig.Entries(); e++ {
		if orig.Valid(e) != clone.Valid(e) {
			t.Fatalf("entry %d: validity differs", e)
		}
		a, b := orig.PeekEntryData(e), clone.PeekEntryData(e)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("entry %d byte %d: %#x vs %#x", e, i, a[i], b[i])
			}
		}
	}
	if orig.Stats != clone.Stats {
		t.Error("stats not carried over")
	}
}

// TestCacheConvergedEquality: Equal must see content, not block identity —
// two caches that privatised the same set with identical writes are equal.
func TestCacheConvergedEquality(t *testing.T) {
	orig, m := testCache(t)
	touch(orig, 2, 1)
	a, _ := cloneOver(orig, m)
	b, _ := cloneOver(orig, m)
	// Identical access sequences on both sides privatise the same sets
	// with the same contents: different blocks, equal bytes.
	touch(a, 2, 5)
	touch(b, 2, 5)
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("converged clones compare unequal")
	}
	if !a.EqualLive(b) {
		t.Fatal("converged clones not live-equal")
	}
}

// TestCacheEqualLiveInvalidLine: flips behind an invalid line must fail
// Equal but pass EqualLive, across the copy-on-write boundary.
func TestCacheEqualLiveInvalidLine(t *testing.T) {
	orig, m := testCache(t)
	touch(orig, 1, 1)
	a, _ := cloneOver(orig, m)
	b, _ := cloneOver(orig, m)
	invalid := -1
	for e := 0; e < a.Entries(); e++ {
		if !a.Valid(e) {
			invalid = e
			break
		}
	}
	if invalid < 0 {
		t.Skip("no invalid line after the touch pattern")
	}
	a.FlipBit(invalid, 3)
	if a.Equal(b) {
		t.Error("Equal must see a flip behind an invalid line")
	}
	if !a.EqualLive(b) {
		t.Error("EqualLive must ignore a flip behind an invalid line")
	}
}

// TestCacheEntryDataPrivatises: writing through EntryData on a clone must
// never reach the frozen generation the siblings read.
func TestCacheEntryDataPrivatises(t *testing.T) {
	orig, m := testCache(t)
	touch(orig, 2, 1)
	a, _ := cloneOver(orig, m)
	b, _ := cloneOver(orig, m)
	e := 0
	for ; e < a.Entries() && !a.Valid(e); e++ {
	}
	if e == a.Entries() {
		t.Fatal("no valid entry")
	}
	before := b.PeekEntryData(e)[0]
	a.EntryData(e)[0] ^= 0xff
	if got := b.PeekEntryData(e)[0]; got != before {
		t.Fatalf("EntryData write on one clone reached its sibling: %#x -> %#x", before, got)
	}
	if orig.PeekEntryData(e)[0] != before {
		t.Fatal("EntryData write on a clone reached the original")
	}
}

// TestCacheConcurrentClones: many goroutines cloning one frozen snapshot
// and writing into their clones must never observe each other's writes.
// Run under -race this also proves Clone of a frozen cache is read-only.
func TestCacheConcurrentClones(t *testing.T) {
	orig, m := testCache(t)
	touch(orig, 3, 1)
	frozen, fm := cloneOver(orig, m)
	ref, _ := cloneOver(frozen, fm)

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(salt uint64) {
			defer wg.Done()
			c, _ := cloneOver(frozen, fm)
			touch(c, 2, salt)
			want, _ := cloneOver(frozen, fm)
			touch(want, 2, salt)
			if !c.Equal(want) {
				errs <- fmt.Errorf("salt %d: concurrent clone diverged from its serial twin", salt)
			}
		}(uint64(w + 2))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if !frozen.Equal(ref) {
		t.Fatal("concurrent clone writers mutated the frozen snapshot")
	}
}
