package mem

import (
	"bytes"
	"slices"
)

var zeroPage [pageSize]byte

// Equal reports whether two memories hold identical contents over
// identical mapped ranges. Pages frozen into a common copy-on-write pool
// compare by pointer, so snapshots descending from a shared golden prefix
// prove equality without rescanning bytes the runs never wrote.
func (m *Memory) Equal(o *Memory) bool {
	if m.lo != o.lo || m.hi != o.hi {
		return false
	}
	seen := make(map[uint64]struct{}, len(m.pages)+len(m.shared))
	eq := func(pn uint64) bool {
		if _, done := seen[pn]; done {
			return true
		}
		seen[pn] = struct{}{}
		a, b := m.pageByNumber(pn), o.pageByNumber(pn)
		switch {
		case a == b: // same frozen page, or both unmapped (zeros)
			return true
		case a == nil:
			return bytes.Equal(b[:], zeroPage[:])
		case b == nil:
			return bytes.Equal(a[:], zeroPage[:])
		default:
			return bytes.Equal(a[:], b[:])
		}
	}
	for _, pages := range []map[uint64]*[pageSize]byte{m.pages, m.shared, o.pages, o.shared} {
		for pn := range pages {
			if !eq(pn) {
				return false
			}
		}
	}
	return true
}

func (m *Memory) pageByNumber(pn uint64) *[pageSize]byte {
	if p := m.pages[pn]; p != nil {
		return p
	}
	return m.shared[pn]
}

// PageData returns the 4KB page backing addr read-only, or nil when the
// page was never written (its bytes read as zero). It never privatises the
// page: state hashing walks resident pages in place through it.
func (m *Memory) PageData(addr uint64) []byte {
	if p := m.readPage(addr); p != nil {
		return p[:]
	}
	return nil
}

// Equal reports whether two caches of the same geometry are in identical
// states: every line's tag/valid/dirty/LRU metadata, the full data array,
// the replacement clock and the access statistics. Sets still referencing
// the same frozen block (snapshots descending from a common clone that
// neither side touched since) compare by pointer without scanning a byte.
func (c *Cache) Equal(o *Cache) bool {
	if !c.scalarEqual(o) {
		return false
	}
	for s := 0; s < c.sets; s++ {
		a, b := c.blockRO(s), o.blockRO(s)
		if a == b {
			continue
		}
		if !slices.Equal(a.lines, b.lines) || !bytes.Equal(a.data, b.data) {
			return false
		}
	}
	return true
}

// EqualLive is Equal except that the data bytes of invalid lines are
// ignored: lookups only ever hit valid lines and a fill rewrites the
// whole line before validating it, so bytes behind an invalid tag are
// dead storage that cannot influence the machine. It shares Equal's
// shared-block pointer short-circuit.
func (c *Cache) EqualLive(o *Cache) bool {
	if !c.scalarEqual(o) {
		return false
	}
	for s := 0; s < c.sets; s++ {
		a, b := c.blockRO(s), o.blockRO(s)
		if a == b {
			continue
		}
		if !slices.Equal(a.lines, b.lines) {
			return false
		}
		for w := 0; w < c.ways; w++ {
			if a.lines[w].valid && !bytes.Equal(c.lineData(a, w), c.lineData(b, w)) {
				return false
			}
		}
	}
	return true
}

// scalarEqual compares everything outside the set blocks. Geometry is
// implied by Cfg equality (both caches derive sets/ways/lineSz from it).
func (c *Cache) scalarEqual(o *Cache) bool {
	return c.Cfg == o.Cfg && c.Stats == o.Stats && c.lruClock == o.lruClock
}
