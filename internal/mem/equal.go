package mem

import "bytes"

var zeroPage [pageSize]byte

// Equal reports whether two memories hold identical contents over
// identical mapped ranges. Pages frozen into a common copy-on-write pool
// compare by pointer, so snapshots descending from a shared golden prefix
// prove equality without rescanning bytes the runs never wrote.
func (m *Memory) Equal(o *Memory) bool {
	if m.lo != o.lo || m.hi != o.hi {
		return false
	}
	seen := make(map[uint64]struct{}, len(m.pages)+len(m.shared))
	eq := func(pn uint64) bool {
		if _, done := seen[pn]; done {
			return true
		}
		seen[pn] = struct{}{}
		a, b := m.pageByNumber(pn), o.pageByNumber(pn)
		switch {
		case a == b: // same frozen page, or both unmapped (zeros)
			return true
		case a == nil:
			return bytes.Equal(b[:], zeroPage[:])
		case b == nil:
			return bytes.Equal(a[:], zeroPage[:])
		default:
			return bytes.Equal(a[:], b[:])
		}
	}
	for _, pages := range []map[uint64]*[pageSize]byte{m.pages, m.shared, o.pages, o.shared} {
		for pn := range pages {
			if !eq(pn) {
				return false
			}
		}
	}
	return true
}

func (m *Memory) pageByNumber(pn uint64) *[pageSize]byte {
	if p := m.pages[pn]; p != nil {
		return p
	}
	return m.shared[pn]
}

// Equal reports whether two caches of the same geometry are in identical
// states: every line's tag/valid/dirty/LRU metadata, the full data array,
// the replacement clock and the access statistics.
func (c *Cache) Equal(o *Cache) bool {
	return c.metaEqual(o) && bytes.Equal(c.data, o.data)
}

// EqualLive is Equal except that the data bytes of invalid lines are
// ignored: lookups only ever hit valid lines and a fill rewrites the
// whole line before validating it, so bytes behind an invalid tag are
// dead storage that cannot influence the machine.
func (c *Cache) EqualLive(o *Cache) bool {
	if !c.metaEqual(o) {
		return false
	}
	for e := 0; e < len(c.lines); e++ {
		if c.lines[e].valid && !bytes.Equal(c.EntryData(e), o.EntryData(e)) {
			return false
		}
	}
	return true
}

func (c *Cache) metaEqual(o *Cache) bool {
	if c.Cfg != o.Cfg || c.Stats != o.Stats || c.lruClock != o.lruClock {
		return false
	}
	if len(c.lines) != len(o.lines) {
		return false
	}
	for i := range c.lines {
		if c.lines[i] != o.lines[i] {
			return false
		}
	}
	return true
}
