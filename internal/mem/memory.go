// Package mem models the memory system of the simulated machine: a sparse
// main memory and parametric set-associative write-back caches whose data
// arrays hold the program's actual bytes. Faults injected into the L1 data
// cache flip bits in those arrays, so corruption propagates architecturally
// through hits, store-to-cache writes and dirty-line writebacks, exactly as
// in the paper's Gem5 substrate.
package mem

const pageBits = 12
const pageSize = 1 << pageBits

// PageSize is the granularity of Memory's sparse pages and copy-on-write
// sharing. StateHash-style consumers walk mapped ranges page by page.
const PageSize = pageSize

// Memory is the simulated main memory: a sparse collection of 4KB pages
// inside a mapped address range. Reads of untouched pages return zeros.
//
// Clones are copy-on-write: Clone freezes the current pages into a shared
// pool referenced by both machines, and each machine privatises a page
// only when it first writes it. Frozen pools are never mutated, so a
// frozen snapshot may be read concurrently by many injection workers.
type Memory struct {
	pages   map[uint64]*[pageSize]byte // private, writable pages
	shared  map[uint64]*[pageSize]byte // frozen pages, possibly shared with clones
	lo, hi  uint64                     // mapped range [lo, hi)
	Latency int                        // access latency in cycles
}

// NewMemory returns memory mapping [lo, hi) with the given access latency.
func NewMemory(lo, hi uint64, latency int) *Memory {
	return &Memory{pages: make(map[uint64]*[pageSize]byte), lo: lo, hi: hi, Latency: latency}
}

// InRange reports whether the size-byte access at addr is fully mapped.
func (m *Memory) InRange(addr uint64, size int) bool {
	return addr >= m.lo && addr+uint64(size) <= m.hi && addr+uint64(size) >= addr
}

// readPage returns the effective page for addr (nil = all zeros): the
// private copy if this machine has written it, else the frozen shared one.
func (m *Memory) readPage(addr uint64) *[pageSize]byte {
	pn := addr >> pageBits
	if p := m.pages[pn]; p != nil {
		return p
	}
	return m.shared[pn]
}

// writePage returns a private, writable page for addr, privatising the
// frozen copy on first write after a Clone.
func (m *Memory) writePage(addr uint64) *[pageSize]byte {
	pn := addr >> pageBits
	if p := m.pages[pn]; p != nil {
		return p
	}
	p := new([pageSize]byte)
	if s := m.shared[pn]; s != nil {
		*p = *s
	}
	m.pages[pn] = p
	return p
}

// ReadBytes copies len(dst) bytes at addr into dst. The caller must have
// checked InRange.
func (m *Memory) ReadBytes(addr uint64, dst []byte) {
	for i := 0; i < len(dst); {
		p := m.readPage(addr + uint64(i))
		off := int((addr + uint64(i)) & (pageSize - 1))
		n := min(len(dst)-i, pageSize-off)
		if p == nil {
			for j := 0; j < n; j++ {
				dst[i+j] = 0
			}
		} else {
			copy(dst[i:i+n], p[off:off+n])
		}
		i += n
	}
}

// WriteBytes stores src at addr. The caller must have checked InRange.
func (m *Memory) WriteBytes(addr uint64, src []byte) {
	for i := 0; i < len(src); {
		p := m.writePage(addr + uint64(i))
		off := int((addr + uint64(i)) & (pageSize - 1))
		n := min(len(src)-i, pageSize-off)
		copy(p[off:off+n], src[i:i+n])
		i += n
	}
}

// ReadLine implements Backend.
func (m *Memory) ReadLine(addr uint64, dst []byte, cycle uint64) int {
	m.ReadBytes(addr, dst)
	return m.Latency
}

// WriteLine implements Backend.
func (m *Memory) WriteLine(addr uint64, src []byte, cycle uint64) int {
	m.WriteBytes(addr, src)
	return m.Latency
}

// Backend is the interface a cache uses to talk to the next level: line
// transfers returning their latency in cycles.
type Backend interface {
	ReadLine(addr uint64, dst []byte, cycle uint64) int
	WriteLine(addr uint64, src []byte, cycle uint64) int
}
