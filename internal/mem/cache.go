package mem

import "fmt"

// CacheConfig sizes a set-associative cache.
type CacheConfig struct {
	Name       string
	Size       int // total data bytes
	LineSize   int // bytes per line
	Ways       int
	HitLatency int
}

// Sets returns the number of sets implied by the configuration.
func (c CacheConfig) Sets() int { return c.Size / (c.LineSize * c.Ways) }

// Validate reports a configuration error, if any.
func (c CacheConfig) Validate() error {
	switch {
	case c.Size <= 0 || c.LineSize <= 0 || c.Ways <= 0:
		return fmt.Errorf("mem: cache %s: non-positive geometry", c.Name)
	case c.LineSize&(c.LineSize-1) != 0:
		return fmt.Errorf("mem: cache %s: line size %d not a power of two", c.Name, c.LineSize)
	case c.Size%(c.LineSize*c.Ways) != 0:
		return fmt.Errorf("mem: cache %s: size %d not divisible by way size", c.Name, c.Size)
	case c.Sets()&(c.Sets()-1) != 0:
		return fmt.Errorf("mem: cache %s: sets %d not a power of two", c.Name, c.Sets())
	}
	return nil
}

// CacheStats counts cache events.
type CacheStats struct {
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64 // last-touch stamp; larger = more recent
}

// EvictKind describes why a line left the cache.
type EvictKind uint8

// Eviction kinds reported to OnEvict.
const (
	EvictClean EvictKind = iota // line dropped, contents discarded
	EvictDirty                  // line's bytes were read and written back
)

// Cache is one level of a write-back, write-allocate cache with true-LRU
// replacement. The data array is physically modelled: Data()/FlipBit expose
// the storage targeted by fault injection, and the OnFill/OnEvict hooks let
// the lifetime tracker observe line turnover at (set, way) granularity.
type Cache struct {
	Cfg   CacheConfig
	Stats CacheStats

	sets     int
	lineSz   int
	ways     int
	offBits  uint
	idxBits  uint
	lines    []line // sets*ways, way-major within a set
	data     []byte // sets*ways*lineSize
	below    Backend
	lruClock uint64

	// OnFill fires after a line is filled (whole line written), OnEvict
	// when a victim leaves. Hooks may be nil.
	OnFill  func(set, way int, cycle uint64)
	OnEvict func(set, way int, kind EvictKind, cycle uint64)
}

// NewCache builds a cache over the given next level. It panics on invalid
// geometry: configurations are static and produced by trusted code.
func NewCache(cfg CacheConfig, below Backend) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Cache{
		Cfg:    cfg,
		sets:   cfg.Sets(),
		lineSz: cfg.LineSize,
		ways:   cfg.Ways,
		below:  below,
		lines:  make([]line, cfg.Sets()*cfg.Ways),
		data:   make([]byte, cfg.Size),
	}
	for c.offBits = 0; 1<<c.offBits < cfg.LineSize; c.offBits++ {
	}
	for c.idxBits = 0; 1<<c.idxBits < c.sets; c.idxBits++ {
	}
	return c
}

// Entries returns the number of (set, way) slots; the lifetime tracker and
// fault injector address lines by entry = set*ways + way.
func (c *Cache) Entries() int { return c.sets * c.ways }

// LineSize returns the line size in bytes.
func (c *Cache) LineSize() int { return c.lineSz }

// EntryData returns the live data bytes of an entry (a (set, way) slot).
// The returned slice aliases the cache's storage.
func (c *Cache) EntryData(entry int) []byte {
	return c.data[entry*c.lineSz : (entry+1)*c.lineSz]
}

// FlipBit flips one bit of the physical data array: entry selects the
// (set, way) slot and bit indexes into its line (0 .. LineSize*8-1). This is
// the L1D fault-injection primitive: the flip lands whether or not the slot
// currently holds a valid line, just as a particle strike would.
func (c *Cache) FlipBit(entry, bit int) {
	c.data[entry*c.lineSz+bit/8] ^= 1 << (bit % 8)
}

// Valid reports whether the entry currently holds a valid line.
func (c *Cache) Valid(entry int) bool { return c.lines[entry].valid }

func (c *Cache) set(addr uint64) int    { return int(addr>>c.offBits) & (c.sets - 1) }
func (c *Cache) tag(addr uint64) uint64 { return addr >> (c.offBits + c.idxBits) }
func (c *Cache) lineAddr(set int, tag uint64) uint64 {
	return tag<<(c.offBits+c.idxBits) | uint64(set)<<c.offBits
}

// lookup returns the way holding addr's line, or -1.
func (c *Cache) lookup(set int, tag uint64) int {
	base := set * c.ways
	for w := 0; w < c.ways; w++ {
		if ln := &c.lines[base+w]; ln.valid && ln.tag == tag {
			return w
		}
	}
	return -1
}

// victim picks the LRU way in a set, preferring invalid ways.
func (c *Cache) victim(set int) int {
	base := set * c.ways
	best, bestLRU := 0, ^uint64(0)
	for w := 0; w < c.ways; w++ {
		ln := &c.lines[base+w]
		if !ln.valid {
			return w
		}
		if ln.lru < bestLRU {
			best, bestLRU = w, ln.lru
		}
	}
	return best
}

// fill brings addr's line into (set, way), writing back a dirty victim.
// It returns the accumulated latency.
func (c *Cache) fill(set, way int, tag uint64, cycle uint64) int {
	e := set*c.ways + way
	ln := &c.lines[e]
	lat := 0
	if ln.valid {
		c.Stats.Evictions++
		kind := EvictClean
		if ln.dirty {
			kind = EvictDirty
			c.Stats.Writebacks++
			lat += c.below.WriteLine(c.lineAddr(set, ln.tag), c.EntryData(e), cycle)
		}
		if c.OnEvict != nil {
			c.OnEvict(set, way, kind, cycle)
		}
	}
	lat += c.below.ReadLine(c.lineAddr(set, tag), c.EntryData(e), cycle)
	ln.valid, ln.dirty, ln.tag = true, false, tag
	if c.OnFill != nil {
		c.OnFill(set, way, cycle)
	}
	return lat
}

// Probe locates addr without touching cache state; it returns the entry
// index and whether the line is resident.
func (c *Cache) Probe(addr uint64) (entry int, hit bool) {
	set, tag := c.set(addr), c.tag(addr)
	w := c.lookup(set, tag)
	if w < 0 {
		return -1, false
	}
	return set*c.ways + w, true
}

// Access performs a read or write of size bytes at addr (which must not
// cross a line boundary), allocating on miss. It returns the entry index
// that served the access and the total latency. For writes the line is
// marked dirty; data movement itself is done by the caller through
// EntryData so it can observe exact byte positions.
func (c *Cache) Access(addr uint64, size int, write bool, cycle uint64) (entry int, latency int) {
	set, tag := c.set(addr), c.tag(addr)
	way := c.lookup(set, tag)
	lat := c.Cfg.HitLatency
	if way < 0 {
		c.Stats.Misses++
		way = c.victim(set)
		lat += c.fill(set, way, tag, cycle)
	} else {
		c.Stats.Hits++
	}
	e := set*c.ways + way
	c.lruClock++
	c.lines[e].lru = c.lruClock
	if write {
		c.lines[e].dirty = true
	}
	return e, lat
}

// Offset returns addr's byte offset within its line.
func (c *Cache) Offset(addr uint64) int { return int(addr) & (c.lineSz - 1) }

// ReadLine implements Backend, letting a Cache serve as the level below
// another cache (e.g. L2 under L1).
func (c *Cache) ReadLine(addr uint64, dst []byte, cycle uint64) int {
	e, lat := c.Access(addr, c.lineSz, false, cycle)
	copy(dst, c.EntryData(e))
	return lat
}

// WriteLine implements Backend.
func (c *Cache) WriteLine(addr uint64, src []byte, cycle uint64) int {
	e, lat := c.Access(addr, c.lineSz, true, cycle)
	copy(c.EntryData(e), src)
	return lat
}

// FlushAll writes every dirty line back to the level below. Used at program
// end so that memory holds the final architectural state.
func (c *Cache) FlushAll(cycle uint64) {
	for s := 0; s < c.sets; s++ {
		for w := 0; w < c.ways; w++ {
			e := s*c.ways + w
			ln := &c.lines[e]
			if ln.valid && ln.dirty {
				c.below.WriteLine(c.lineAddr(s, ln.tag), c.EntryData(e), cycle)
				ln.dirty = false
			}
		}
	}
}
