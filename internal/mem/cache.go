package mem

import "fmt"

// CacheConfig sizes a set-associative cache.
type CacheConfig struct {
	Name       string
	Size       int // total data bytes
	LineSize   int // bytes per line
	Ways       int
	HitLatency int
}

// Sets returns the number of sets implied by the configuration.
func (c CacheConfig) Sets() int { return c.Size / (c.LineSize * c.Ways) }

// Validate reports a configuration error, if any.
func (c CacheConfig) Validate() error {
	switch {
	case c.Size <= 0 || c.LineSize <= 0 || c.Ways <= 0:
		return fmt.Errorf("mem: cache %s: non-positive geometry", c.Name)
	case c.LineSize&(c.LineSize-1) != 0:
		return fmt.Errorf("mem: cache %s: line size %d not a power of two", c.Name, c.LineSize)
	case c.Size%(c.LineSize*c.Ways) != 0:
		return fmt.Errorf("mem: cache %s: size %d not divisible by way size", c.Name, c.Size)
	case c.Sets()&(c.Sets()-1) != 0:
		return fmt.Errorf("mem: cache %s: sets %d not a power of two", c.Name, c.Sets())
	}
	return nil
}

// CacheStats counts cache events.
type CacheStats struct {
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	lru   uint64 // last-touch stamp; larger = more recent
}

// EvictKind describes why a line left the cache.
type EvictKind uint8

// Eviction kinds reported to OnEvict.
const (
	EvictClean EvictKind = iota // line dropped, contents discarded
	EvictDirty                  // line's bytes were read and written back
)

// setBlock is the copy-on-write unit of a Cache: one set's line metadata
// and data bytes. A block referenced from a frozen generation is never
// mutated — a cache privatises the block before its first write (true-LRU
// makes every access a metadata write, so a touched set is always private).
type setBlock struct {
	lines []line // ways entries
	data  []byte // ways*lineSize bytes
}

// Cache is one level of a write-back, write-allocate cache with true-LRU
// replacement. The data array is physically modelled: EntryData/FlipBit
// expose the storage targeted by fault injection, and the OnFill/OnEvict
// hooks let the lifetime tracker observe line turnover at (set, way)
// granularity.
//
// Storage is copy-on-write at set granularity, mirroring Memory's page
// scheme: Clone freezes the current blocks into a shared generation
// referenced by both caches, and each side privatises a set only when it
// next touches it. Frozen generations are never mutated, so a frozen
// snapshot may be cloned and read concurrently by many injection workers.
type Cache struct {
	Cfg   CacheConfig
	Stats CacheStats

	sets     int
	lineSz   int
	ways     int
	offBits  uint
	idxBits  uint
	priv     []*setBlock // per-set private (writable) blocks; nil = read via shared
	shared   []*setBlock // frozen generation, possibly shared with clones
	nPriv    int         // non-nil entries of priv (Clone fast path)
	below    Backend
	lruClock uint64

	// OnFill fires after a line is filled (whole line written), OnEvict
	// when a victim leaves. Hooks may be nil.
	OnFill  func(set, way int, cycle uint64)
	OnEvict func(set, way int, kind EvictKind, cycle uint64)
}

// NewCache builds a cache over the given next level. It panics on invalid
// geometry: configurations are static and produced by trusted code.
func NewCache(cfg CacheConfig, below Backend) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Cache{
		Cfg:    cfg,
		sets:   cfg.Sets(),
		lineSz: cfg.LineSize,
		ways:   cfg.Ways,
		below:  below,
	}
	for c.offBits = 0; 1<<c.offBits < cfg.LineSize; c.offBits++ {
	}
	for c.idxBits = 0; 1<<c.idxBits < c.sets; c.idxBits++ {
	}
	// One arena for the initial generation: blocks are value-disjoint
	// slices of two backing arrays, so a fresh cache costs three
	// allocations regardless of set count.
	lines := make([]line, c.sets*c.ways)
	data := make([]byte, cfg.Size)
	blocks := make([]setBlock, c.sets)
	c.priv = make([]*setBlock, c.sets)
	way := c.ways
	wayBytes := c.ways * c.lineSz
	for s := 0; s < c.sets; s++ {
		blocks[s] = setBlock{
			lines: lines[s*way : (s+1)*way : (s+1)*way],
			data:  data[s*wayBytes : (s+1)*wayBytes : (s+1)*wayBytes],
		}
		c.priv[s] = &blocks[s]
	}
	c.nPriv = c.sets
	return c
}

// blockRO returns set s's block for reading: the private copy if this
// cache owns one, else the frozen shared block.
func (c *Cache) blockRO(s int) *setBlock {
	if b := c.priv[s]; b != nil {
		return b
	}
	return c.shared[s]
}

// blockRW returns a private, writable block for set s, privatising the
// frozen copy on first touch after a Clone.
func (c *Cache) blockRW(s int) *setBlock {
	if b := c.priv[s]; b != nil {
		return b
	}
	src := c.shared[s]
	b := &setBlock{
		lines: make([]line, c.ways),
		data:  make([]byte, c.ways*c.lineSz),
	}
	copy(b.lines, src.lines)
	copy(b.data, src.data)
	c.priv[s] = b
	c.nPriv++
	return b
}

// lineData returns way w's data bytes within a block.
func (c *Cache) lineData(b *setBlock, w int) []byte {
	return b.data[w*c.lineSz : (w+1)*c.lineSz]
}

// Entries returns the number of (set, way) slots; the lifetime tracker and
// fault injector address lines by entry = set*ways + way.
func (c *Cache) Entries() int { return c.sets * c.ways }

// LineSize returns the line size in bytes.
func (c *Cache) LineSize() int { return c.lineSz }

// EntryData returns the live data bytes of an entry (a (set, way) slot).
// The returned slice aliases the cache's private storage; the entry's set
// is privatised, so writes through it never reach a shared snapshot. Use
// PeekEntryData for read-only access that leaves sharing intact.
func (c *Cache) EntryData(entry int) []byte {
	return c.lineData(c.blockRW(entry/c.ways), entry%c.ways)
}

// PeekEntryData returns the entry's data bytes read-only: the slice may
// alias a frozen generation shared with other caches and must not be
// written. State hashing and equality checks use it so that comparing
// snapshots never breaks their sharing.
func (c *Cache) PeekEntryData(entry int) []byte {
	return c.lineData(c.blockRO(entry/c.ways), entry%c.ways)
}

// FlipBit flips one bit of the physical data array: entry selects the
// (set, way) slot and bit indexes into its line (0 .. LineSize*8-1). This is
// the L1D fault-injection primitive: the flip lands whether or not the slot
// currently holds a valid line, just as a particle strike would.
func (c *Cache) FlipBit(entry, bit int) {
	c.EntryData(entry)[bit/8] ^= 1 << (bit % 8)
}

// Valid reports whether the entry currently holds a valid line.
func (c *Cache) Valid(entry int) bool {
	return c.blockRO(entry / c.ways).lines[entry%c.ways].valid
}

func (c *Cache) set(addr uint64) int    { return int(addr>>c.offBits) & (c.sets - 1) }
func (c *Cache) tag(addr uint64) uint64 { return addr >> (c.offBits + c.idxBits) }
func (c *Cache) lineAddr(set int, tag uint64) uint64 {
	return tag<<(c.offBits+c.idxBits) | uint64(set)<<c.offBits
}

// lookupIn returns the way of b holding tag's line, or -1.
func (c *Cache) lookupIn(b *setBlock, tag uint64) int {
	for w := 0; w < c.ways; w++ {
		if ln := &b.lines[w]; ln.valid && ln.tag == tag {
			return w
		}
	}
	return -1
}

// victimIn picks the LRU way in b, preferring invalid ways.
func (c *Cache) victimIn(b *setBlock) int {
	best, bestLRU := 0, ^uint64(0)
	for w := 0; w < c.ways; w++ {
		ln := &b.lines[w]
		if !ln.valid {
			return w
		}
		if ln.lru < bestLRU {
			best, bestLRU = w, ln.lru
		}
	}
	return best
}

// fill brings addr's line into (set, way) of private block b, writing back
// a dirty victim. It returns the accumulated latency.
func (c *Cache) fill(b *setBlock, set, way int, tag uint64, cycle uint64) int {
	ln := &b.lines[way]
	lat := 0
	if ln.valid {
		c.Stats.Evictions++
		kind := EvictClean
		if ln.dirty {
			kind = EvictDirty
			c.Stats.Writebacks++
			lat += c.below.WriteLine(c.lineAddr(set, ln.tag), c.lineData(b, way), cycle)
		}
		if c.OnEvict != nil {
			c.OnEvict(set, way, kind, cycle)
		}
	}
	lat += c.below.ReadLine(c.lineAddr(set, tag), c.lineData(b, way), cycle)
	ln.valid, ln.dirty, ln.tag = true, false, tag
	if c.OnFill != nil {
		c.OnFill(set, way, cycle)
	}
	return lat
}

// Probe locates addr without touching cache state; it returns the entry
// index and whether the line is resident.
func (c *Cache) Probe(addr uint64) (entry int, hit bool) {
	set, tag := c.set(addr), c.tag(addr)
	w := c.lookupIn(c.blockRO(set), tag)
	if w < 0 {
		return -1, false
	}
	return set*c.ways + w, true
}

// Access performs a read or write of size bytes at addr (which must not
// cross a line boundary), allocating on miss. It returns the entry index
// that served the access and the total latency. For writes the line is
// marked dirty; data movement itself is done by the caller through
// EntryData so it can observe exact byte positions. True-LRU stamps the
// touched line even on read hits, so every access privatises its set.
func (c *Cache) Access(addr uint64, size int, write bool, cycle uint64) (entry int, latency int) {
	set, tag := c.set(addr), c.tag(addr)
	b := c.blockRW(set)
	way := c.lookupIn(b, tag)
	lat := c.Cfg.HitLatency
	if way < 0 {
		c.Stats.Misses++
		way = c.victimIn(b)
		lat += c.fill(b, set, way, tag, cycle)
	} else {
		c.Stats.Hits++
	}
	c.lruClock++
	b.lines[way].lru = c.lruClock
	if write {
		b.lines[way].dirty = true
	}
	return set*c.ways + way, lat
}

// Offset returns addr's byte offset within its line.
func (c *Cache) Offset(addr uint64) int { return int(addr) & (c.lineSz - 1) }

// ReadLine implements Backend, letting a Cache serve as the level below
// another cache (e.g. L2 under L1).
func (c *Cache) ReadLine(addr uint64, dst []byte, cycle uint64) int {
	e, lat := c.Access(addr, c.lineSz, false, cycle)
	copy(dst, c.EntryData(e))
	return lat
}

// WriteLine implements Backend.
func (c *Cache) WriteLine(addr uint64, src []byte, cycle uint64) int {
	e, lat := c.Access(addr, c.lineSz, true, cycle)
	copy(c.EntryData(e), src)
	return lat
}

// FlushAll writes every dirty line back to the level below. Used at program
// end so that memory holds the final architectural state. Sets with no
// dirty line are left untouched (and unprivatised).
func (c *Cache) FlushAll(cycle uint64) {
	for s := 0; s < c.sets; s++ {
		ro := c.blockRO(s)
		dirty := false
		for w := 0; w < c.ways; w++ {
			if ln := &ro.lines[w]; ln.valid && ln.dirty {
				dirty = true
				break
			}
		}
		if !dirty {
			continue
		}
		b := c.blockRW(s)
		for w := 0; w < c.ways; w++ {
			ln := &b.lines[w]
			if ln.valid && ln.dirty {
				c.below.WriteLine(c.lineAddr(s, ln.tag), c.lineData(b, w), cycle)
				ln.dirty = false
			}
		}
	}
}
