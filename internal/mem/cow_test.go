package mem

import "testing"

func TestMemoryCloneCopyOnWrite(t *testing.T) {
	m := NewMemory(0, 1<<20, 1)
	m.WriteBytes(0x1000, []byte{1, 2, 3})

	c := m.Clone()
	if !m.Equal(c) || !c.Equal(m) {
		t.Fatal("fresh clone not equal to original")
	}

	// Writes after the clone must not leak in either direction.
	m.WriteBytes(0x1000, []byte{9})
	c.WriteBytes(0x1001, []byte{8})
	got := make([]byte, 3)
	m.ReadBytes(0x1000, got)
	if got[0] != 9 || got[1] != 2 || got[2] != 3 {
		t.Errorf("original after diverging writes: %v", got)
	}
	c.ReadBytes(0x1000, got)
	if got[0] != 1 || got[1] != 8 || got[2] != 3 {
		t.Errorf("clone after diverging writes: %v", got)
	}
	if m.Equal(c) {
		t.Error("diverged memories compare equal")
	}

	// Converge again: Equal must see content, not page identity.
	m.WriteBytes(0x1000, []byte{1, 8, 3})
	if !m.Equal(c) {
		t.Error("converged memories compare unequal")
	}

	// A grandchild chains through two frozen pools.
	g := c.Clone().Clone()
	if !g.Equal(c) {
		t.Error("grandchild clone not equal to its ancestor")
	}

	// An explicitly written all-zero page equals an untouched one.
	m.WriteBytes(0x40000, make([]byte, pageSize))
	if !m.Equal(c) || !c.Equal(m) {
		t.Error("all-zero page must equal an unmapped page")
	}
}
