package workloads

// h264ref: SPEC 464.h264ref analogue — full-search motion estimation: the
// sum-of-absolute-differences (SAD) of an 8x8 current block against every
// position of a 24x24 reference window, tracking the best motion vector.
// SAD loops dominate real encoder profiles.

const (
	h264Blk = 8
	h264Win = 24
)

func h264Cur() []byte { return genBytes(0x48323634, h264Blk*h264Blk) }

func h264Window() []byte {
	win := genBytes(0x57494E44, h264Win*h264Win)
	// Plant a noisy copy of the current block at offset (9, 5) so the
	// search has a meaningful minimum.
	cur := h264Cur()
	for y := 0; y < h264Blk; y++ {
		for x := 0; x < h264Blk; x++ {
			v := cur[y*h264Blk+x]
			if (x+y)%7 == 0 {
				v ^= 3
			}
			win[(y+9)*h264Win+x+5] = v
		}
	}
	return win
}

func h264Source() string {
	s := "\t.data\n"
	s += byteData("cur", h264Cur())
	s += byteData("win", h264Window())
	s += "sads:\t.space " + itoa(8*(h264Win-h264Blk+1)*(h264Win-h264Blk+1)) + "\n"
	s += `	.text
	li r11, cur
	li r12, win
	li r0, sads
	li r13, 1000000    ; best SAD
	li r14, 0          ; best motion vector (dy<<8 | dx)
	li r10, 0          ; total SAD accumulator
	li r1, 0           ; dy
hdy:
	li r2, 0           ; dx
hdx:
	li r3, 0           ; sad
	li r4, 0           ; y
hy:
	li r5, 0           ; x
hx:
	muli r6, r4, ` + itoa(h264Blk) + `
	add r6, r6, r5
	add r6, r6, r11
	lbu r7, [r6]       ; cur[y][x]
	add r6, r4, r1
	muli r6, r6, ` + itoa(h264Win) + `
	add r6, r6, r5
	add r6, r6, r2
	add r6, r6, r12
	lbu r8, [r6]       ; win[y+dy][x+dx]
	sub r7, r7, r8
	li r9, 0
	bge r7, r9, habs
	sub r7, r9, r7
habs:
	add r3, r3, r7
	addi r5, r5, 1
	li r9, ` + itoa(h264Blk) + `
	blt r5, r9, hx
	addi r4, r4, 1
	blt r4, r9, hy
	add r10, r10, r3
	; record this candidate's SAD
	muli r6, r1, ` + itoa(h264Win-h264Blk+1) + `
	add r6, r6, r2
	slli r6, r6, 3
	add r6, r6, r0
	sd [r6], r3
	bge r3, r13, hnotbest
	mv r13, r3
	slli r14, r1, 8
	or r14, r14, r2
hnotbest:
	addi r2, r2, 1
	li r9, ` + itoa(h264Win-h264Blk+1) + `
	blt r2, r9, hdx
	addi r1, r1, 1
	blt r1, r9, hdy
	; checksum the SAD surface by reading it back
	li r5, 1
	li r1, 0
hsc:
	slli r6, r1, 3
	add r6, r6, r0
	ld r7, [r6]
	muli r5, r5, 31
	add r5, r5, r7
	addi r1, r1, 1
	li r9, ` + itoa((h264Win-h264Blk+1)*(h264Win-h264Blk+1)) + `
	blt r1, r9, hsc
	out r13
	out r14
	out r10
	out r5
	halt
`
	return s
}

func h264Ref() []uint64 {
	cur := h264Cur()
	win := h264Window()
	best, bestMV, total := int64(1000000), int64(0), int64(0)
	n := h264Win - h264Blk + 1
	surface := make([]int64, n*n)
	for dy := 0; dy <= h264Win-h264Blk; dy++ {
		for dx := 0; dx <= h264Win-h264Blk; dx++ {
			sad := int64(0)
			for y := 0; y < h264Blk; y++ {
				for x := 0; x < h264Blk; x++ {
					d := int64(cur[y*h264Blk+x]) - int64(win[(y+dy)*h264Win+x+dx])
					if d < 0 {
						d = -d
					}
					sad += d
				}
			}
			total += sad
			surface[dy*n+dx] = sad
			if sad < best {
				best = sad
				bestMV = int64(dy)<<8 | int64(dx)
			}
		}
	}
	h := uint64(1)
	for _, v := range surface {
		h = mix(h, uint64(v))
	}
	return []uint64{uint64(best), uint64(bestMV), uint64(total), h}
}

var _ = register(&Workload{
	Name:        "h264ref",
	Suite:       "spec",
	Description: "full-search 8x8 SAD motion estimation in a 24x24 window",
	source:      h264Source,
	ref:         h264Ref,
})
