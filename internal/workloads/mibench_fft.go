package workloads

import "math"

// fft: MiBench telecomm/fft analogue — an in-place radix-2
// decimation-in-time FFT over 64 fixed-point (Q12) samples with baked-in
// twiddle and bit-reversal tables, as embedded integer FFTs do.

const (
	fftN    = 64
	fftLogN = 6
	fftQ    = 12
)

func fftInput() []uint64 {
	raw := genWords(0x46465431, fftN, 4096)
	for i, v := range raw {
		raw[i] = uint64(int64(v) - 2048) // signed Q12 sample in [-2048, 2048)
	}
	return raw
}

func fftTwiddles() (cos, sin []uint64) {
	cos = make([]uint64, fftN/2)
	sin = make([]uint64, fftN/2)
	for i := range cos {
		ang := 2 * math.Pi * float64(i) / fftN
		cos[i] = uint64(int64(math.Round(math.Cos(ang) * (1 << fftQ))))
		sin[i] = uint64(int64(math.Round(math.Sin(ang) * (1 << fftQ))))
	}
	return cos, sin
}

func fftBitrev() []uint64 {
	out := make([]uint64, fftN)
	for i := 0; i < fftN; i++ {
		r := 0
		for b := 0; b < fftLogN; b++ {
			if i&(1<<b) != 0 {
				r |= 1 << (fftLogN - 1 - b)
			}
		}
		out[i] = uint64(r)
	}
	return out
}

func fftSource() string {
	cos, sin := fftTwiddles()
	s := "\t.data\n"
	s += wordData("fre", fftInput())
	s += "fim:\t.space " + itoa(fftN*8) + "\n"
	s += wordData("fcos", cos)
	s += wordData("fsin", sin)
	s += wordData("fbr", fftBitrev())
	s += `	.text
	; bit-reversal permutation (swap when i < rev(i))
	li r1, 0
fbrl:
	li r2, fbr
	slli r3, r1, 3
	add r2, r2, r3
	ld r4, [r2]        ; j = rev(i)
	bge r1, r4, fbrskip
	li r2, fre
	slli r5, r4, 3
	add r5, r5, r2
	add r6, r3, r2
	ld r7, [r5]
	ld r8, [r6]
	sd [r5], r8
	sd [r6], r7
fbrskip:
	addi r1, r1, 1
	li r2, ` + itoa(fftN) + `
	blt r1, r2, fbrl

	li r13, 2          ; len
fstage:
	srli r12, r13, 1   ; half = len/2
	li r11, ` + itoa(fftN) + `
	div r11, r11, r13  ; step = N/len
	li r10, 0          ; i (block base)
fblock:
	li r9, 0           ; j within block
fbfly:
	; twiddle: wr = cos[j*step], wi = -sin[j*step]
	mul r8, r9, r11
	slli r8, r8, 3
	li r7, fcos
	add r7, r7, r8
	ld r5, [r7]
	li r7, fsin
	add r7, r7, r8
	ld r6, [r7]
	li r7, 0
	sub r6, r7, r6
	; element offsets: a = (i+j)*8, b = a + half*8
	add r4, r10, r9
	slli r4, r4, 3
	slli r8, r12, 3
	add r8, r8, r4
	; xb = (r2, r3)
	li r7, fre
	add r7, r7, r8
	ld r2, [r7]
	li r7, fim
	add r7, r7, r8
	ld r3, [r7]
	; t = w * xb in Q12: tr = r0, ti = r1
	mul r0, r5, r2
	mul r1, r6, r3
	sub r0, r0, r1
	srai r0, r0, ` + itoa(fftQ) + `
	mul r1, r5, r3
	mul r3, r6, r2
	add r1, r1, r3
	srai r1, r1, ` + itoa(fftQ) + `
	; xa = (r2, r3); write x[a] = xa + t, x[b] = xa - t
	li r7, fre
	add r7, r7, r4
	ld r2, [r7]
	li r5, fim
	add r5, r5, r4
	ld r3, [r5]
	add r6, r2, r0
	sd [r7], r6
	add r6, r3, r1
	sd [r5], r6
	li r7, fre
	add r7, r7, r8
	sub r6, r2, r0
	sd [r7], r6
	li r7, fim
	add r7, r7, r8
	sub r6, r3, r1
	sd [r7], r6
	addi r9, r9, 1
	blt r9, r12, fbfly
	add r10, r10, r13
	li r7, ` + itoa(fftN) + `
	blt r10, r7, fblock
	slli r13, r13, 1
	li r7, ` + itoa(fftN) + `
	ble r13, r7, fstage

	; checksum over the spectrum
	li r1, 1
	li r2, 0
	li r3, fre
	li r4, fim
fchk:
	ld r5, [r3]
	muli r1, r1, 31
	add r1, r1, r5
	ld r5, [r4]
	muli r1, r1, 31
	add r1, r1, r5
	addi r3, r3, 8
	addi r4, r4, 8
	addi r2, r2, 1
	li r5, ` + itoa(fftN) + `
	blt r2, r5, fchk
	out r1
	li r3, fre
	ld r5, [r3]
	out r5
	li r4, fim
	ld r5, [r4+256]
	out r5
	halt
`
	return s
}

func fftRef() []uint64 {
	re := make([]int64, fftN)
	im := make([]int64, fftN)
	for i, v := range fftInput() {
		re[i] = int64(v)
	}
	br := fftBitrev()
	for i := 0; i < fftN; i++ {
		j := int(br[i])
		if i < j {
			re[i], re[j] = re[j], re[i]
			im[i], im[j] = im[j], im[i]
		}
	}
	cosT, sinT := fftTwiddles()
	for length := 2; length <= fftN; length <<= 1 {
		half := length / 2
		step := fftN / length
		for i := 0; i < fftN; i += length {
			for j := 0; j < half; j++ {
				wr := int64(cosT[j*step])
				wi := -int64(sinT[j*step])
				a, b := i+j, i+j+half
				tr := (wr*re[b] - wi*im[b]) >> fftQ
				ti := (wr*im[b] + wi*re[b]) >> fftQ
				xar, xai := re[a], im[a]
				re[a], im[a] = xar+tr, xai+ti
				re[b], im[b] = xar-tr, xai-ti
			}
		}
	}
	h := uint64(1)
	for i := 0; i < fftN; i++ {
		h = mix(h, uint64(re[i]))
		h = mix(h, uint64(im[i]))
	}
	return []uint64{h, uint64(re[0]), uint64(im[32])}
}

var _ = register(&Workload{
	Name:        "fft",
	Suite:       "mibench",
	Description: "radix-2 fixed-point FFT of 64 Q12 samples",
	source:      fftSource,
	ref:         fftRef,
})
