package workloads

// bzip2: SPEC 401.bzip2 analogue — run-length encoding followed by
// move-to-front coding over a 4KB low-entropy input, the heart of the
// bzip2 pipeline's byte-shuffling behaviour.

const bzInputLen = 4096

func bzInput() []byte {
	rng := xorshift64(0x425A4950)
	out := make([]byte, bzInputLen)
	i := 0
	for i < bzInputLen {
		sym := byte(rng() % 16)
		run := int(rng()%12) + 1
		for j := 0; j < run && i < bzInputLen; j++ {
			out[i] = sym
			i++
		}
	}
	return out
}

func bzSource() string {
	s := "\t.data\n"
	s += byteData("bzin", bzInput())
	s += "rle:\t.space " + itoa(2*bzInputLen+16) + "\n"
	s += "mtf:\t.space 256\n"
	s += `	.text
	; --- RLE pass: emit (symbol, runlen<=255) pairs into rle ---
	li r1, bzin
	li r2, 0           ; input index
	li r3, rle
	li r4, 0           ; output length (bytes)
brle:
	li r9, ` + itoa(bzInputLen) + `
	bge r2, r9, brledone
	add r5, r1, r2
	lbu r6, [r5]       ; current symbol
	li r7, 1           ; run length
brun:
	add r8, r2, r7
	bge r8, r9, bemit
	add r5, r1, r8
	lbu r10, [r5]
	bne r10, r6, bemit
	addi r7, r7, 1
	li r10, 255
	blt r7, r10, brun
bemit:
	add r5, r3, r4
	sb [r5], r6
	sb [r5+1], r7
	addi r4, r4, 2
	add r2, r2, r7
	j brle
brledone:
	; --- init MTF table: mtf[i] = i ---
	li r1, mtf
	li r2, 0
bmtfi:
	add r5, r1, r2
	sb [r5], r2
	addi r2, r2, 1
	li r9, 256
	blt r2, r9, bmtfi
	; --- MTF over the RLE bytes, checksumming the emitted indexes ---
	li r12, 1          ; checksum
	li r2, 0           ; rle index
bmtf:
	bge r2, r4, bdone
	li r3, rle
	add r5, r3, r2
	lbu r6, [r5]       ; symbol to code
	; find its position in the table
	li r7, 0
bfind:
	add r5, r1, r7
	lbu r8, [r5]
	beq r8, r6, bfound
	addi r7, r7, 1
	j bfind
bfound:
	muli r12, r12, 31
	add r12, r12, r7
	; shift table entries [0, pos) up by one, put symbol at front
	mv r8, r7
bshift:
	li r9, 0
	ble r8, r9, bfront
	add r5, r1, r8
	lbu r10, [r5-1]
	sb [r5], r10
	addi r8, r8, -1
	j bshift
bfront:
	sb [r1], r6
	addi r2, r2, 1
	j bmtf
bdone:
	out r4
	out r12
	halt
`
	return s
}

func bzRef() []uint64 {
	in := bzInput()
	var rle []byte
	for i := 0; i < len(in); {
		sym := in[i]
		run := 1
		for i+run < len(in) && in[i+run] == sym && run < 255 {
			run++
		}
		rle = append(rle, sym, byte(run))
		i += run
	}
	var table [256]byte
	for i := range table {
		table[i] = byte(i)
	}
	h := uint64(1)
	for _, sym := range rle {
		pos := 0
		for table[pos] != sym {
			pos++
		}
		h = mix(h, uint64(pos))
		copy(table[1:pos+1], table[0:pos])
		table[0] = sym
	}
	return []uint64{uint64(len(rle)), h}
}

var _ = register(&Workload{
	Name:        "bzip2",
	Suite:       "spec",
	Description: "RLE + move-to-front coding over 4KB",
	source:      bzSource,
	ref:         bzRef,
})
