package workloads

// sha: MiBench security/sha analogue — a SHA-1-style compression over 4
// blocks (256 bytes): 16 message words extended to 80 with rotate-xor
// recurrence, 80 rounds of choice/parity/majority mixing on a 5-word
// state. Words are little-endian (the paper's substitution note: same
// round structure and operation mix, byte order simplified).

const shaBlocks = 4

func shaInput() []byte { return genBytes(0x53484131, shaBlocks*64) }

func shaSource() string {
	s := "\t.data\n"
	s += wordData("hstate", []uint64{0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0})
	s += "w:\t.space 320\n"
	s += byteData("msg", shaInput())
	s += `	.text
	li r1, 0            ; block index
	li r14, 0xffffffff  ; 32-bit mask
shblock:
	; load w[0..15] from the message block
	li r2, msg
	slli r9, r1, 6
	add r2, r2, r9      ; block base
	li r3, w
	li r12, 0
shfill:
	slli r9, r12, 2
	add r9, r9, r2
	lwu r10, [r9]
	slli r9, r12, 2
	add r9, r9, r3
	sw [r9], r10
	addi r12, r12, 1
	li r9, 16
	blt r12, r9, shfill
	; extend to w[16..79]: w[i] = rotl1(w[i-3]^w[i-8]^w[i-14]^w[i-16])
shext:
	slli r9, r12, 2
	add r9, r9, r3
	lwu r10, [r9-12]
	lwu r0, [r9-32]
	xor r10, r10, r0
	lwu r0, [r9-56]
	xor r10, r10, r0
	lwu r0, [r9-64]
	xor r10, r10, r0
	slli r0, r10, 1
	srli r10, r10, 31
	or r10, r10, r0
	and r10, r10, r14
	sw [r9], r10
	addi r12, r12, 1
	li r9, 80
	blt r12, r9, shext
	; load state a..e into r4..r8
	li r2, hstate
	ld r4, [r2]
	ld r5, [r2+8]
	ld r6, [r2+16]
	ld r7, [r2+24]
	ld r8, [r2+32]
	li r12, 0
shrounds:
	li r9, 20
	blt r12, r9, shf1
	li r9, 40
	blt r12, r9, shf2
	li r9, 60
	blt r12, r9, shf3
	; f4 = parity, k4
	xor r10, r5, r6
	xor r10, r10, r7
	li r11, 0xCA62C1D6
	j shfdone
shf1:	; choice: (b&c) | (~b & d)
	and r10, r5, r6
	xor r0, r5, r14
	and r0, r0, r7
	or r10, r10, r0
	li r11, 0x5A827999
	j shfdone
shf2:	; parity
	xor r10, r5, r6
	xor r10, r10, r7
	li r11, 0x6ED9EBA1
	j shfdone
shf3:	; majority
	and r10, r5, r6
	and r0, r5, r7
	or r10, r10, r0
	and r0, r6, r7
	or r10, r10, r0
	li r11, 0x8F1BBCDC
shfdone:
	; temp = rotl5(a) + f + e + k + w[i]
	slli r9, r4, 5
	srli r0, r4, 27
	or r9, r9, r0
	and r9, r9, r14
	add r9, r9, r10
	add r9, r9, r8
	add r9, r9, r11
	slli r0, r12, 2
	add r0, r0, r3
	lwu r10, [r0]
	add r9, r9, r10
	and r9, r9, r14
	; rotate the working state
	mv r8, r7
	mv r7, r6
	slli r10, r5, 30
	srli r0, r5, 2
	or r10, r10, r0
	and r6, r10, r14
	mv r5, r4
	mv r4, r9
	addi r12, r12, 1
	li r9, 80
	blt r12, r9, shrounds
	; h[i] = (h[i] + worked) & mask
	li r2, hstate
	ld r9, [r2]
	add r9, r9, r4
	and r9, r9, r14
	sd [r2], r9
	ld r9, [r2+8]
	add r9, r9, r5
	and r9, r9, r14
	sd [r2+8], r9
	ld r9, [r2+16]
	add r9, r9, r6
	and r9, r9, r14
	sd [r2+16], r9
	ld r9, [r2+24]
	add r9, r9, r7
	and r9, r9, r14
	sd [r2+24], r9
	ld r9, [r2+32]
	add r9, r9, r8
	and r9, r9, r14
	sd [r2+32], r9
	addi r1, r1, 1
	li r9, ` + itoa(shaBlocks) + `
	blt r1, r9, shblock
	; emit the digest
	li r2, hstate
	ld r9, [r2]
	out r9
	ld r9, [r2+8]
	out r9
	ld r9, [r2+16]
	out r9
	ld r9, [r2+24]
	out r9
	ld r9, [r2+32]
	out r9
	halt
`
	return s
}

func shaRef() []uint64 {
	msg := shaInput()
	h := [5]uint64{0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0}
	const mask = 0xffffffff
	rotl := func(v uint64, n uint) uint64 { return (v<<n | v>>(32-n)) & mask }
	var w [80]uint64
	for b := 0; b < shaBlocks; b++ {
		blk := msg[b*64:]
		for i := 0; i < 16; i++ {
			w[i] = uint64(blk[4*i]) | uint64(blk[4*i+1])<<8 |
				uint64(blk[4*i+2])<<16 | uint64(blk[4*i+3])<<24
		}
		for i := 16; i < 80; i++ {
			w[i] = rotl(w[i-3]^w[i-8]^w[i-14]^w[i-16], 1)
		}
		a, bb, c, d, e := h[0], h[1], h[2], h[3], h[4]
		for i := 0; i < 80; i++ {
			var f, k uint64
			switch {
			case i < 20:
				f = (bb & c) | ((bb ^ mask) & d)
				k = 0x5A827999
			case i < 40:
				f = bb ^ c ^ d
				k = 0x6ED9EBA1
			case i < 60:
				f = (bb & c) | (bb & d) | (c & d)
				k = 0x8F1BBCDC
			default:
				f = bb ^ c ^ d
				k = 0xCA62C1D6
			}
			tmp := (rotl(a, 5) + f + e + k + w[i]) & mask
			e, d, c, bb, a = d, c, rotl(bb, 30), a, tmp
		}
		h[0] = (h[0] + a) & mask
		h[1] = (h[1] + bb) & mask
		h[2] = (h[2] + c) & mask
		h[3] = (h[3] + d) & mask
		h[4] = (h[4] + e) & mask
	}
	return h[:]
}

var _ = register(&Workload{
	Name:        "sha",
	Suite:       "mibench",
	Description: "SHA-1-style 80-round compression over 256 bytes",
	source:      shaSource,
	ref:         shaRef,
})
