package workloads

// astar: SPEC 473.astar analogue — A* grid pathfinding on a 16x16 obstacle
// map with a Manhattan-distance heuristic and an open-set min-scan, the
// data-dependent branch pattern of pathfinding workloads.

const (
	asDim  = 16
	asInf  = int64(1) << 30
	asGoal = asDim*asDim - 1 // bottom-right corner
)

func asObstacles() []byte {
	rng := xorshift64(0x41535441)
	grid := make([]byte, asDim*asDim)
	for i := range grid {
		if rng()%5 == 0 {
			grid[i] = 1
		}
	}
	// Clear a staircase so a path always exists.
	for d := 0; d < asDim; d++ {
		grid[d*asDim+d] = 0
		if d+1 < asDim {
			grid[d*asDim+d+1] = 0
		}
	}
	grid[0] = 0
	grid[asGoal] = 0
	return grid
}

func asSource() string {
	s := "\t.data\n"
	s += byteData("grid", asObstacles())
	s += "gsc:\t.space " + itoa(asDim*asDim*8) + "\n"
	s += "closed:\t.space " + itoa(asDim*asDim) + "\n"
	s += `	.text
	li r11, grid
	li r12, gsc
	li r13, closed
	; g[i] = INF, g[0] = 0
	li r1, 0
	li r2, ` + itoa(int(asInf)) + `
ainit:
	slli r3, r1, 3
	add r3, r3, r12
	sd [r3], r2
	addi r1, r1, 1
	li r9, ` + itoa(asDim*asDim) + `
	blt r1, r9, ainit
	li r1, 0
	sd [r12], r1
	li r0, 0           ; expanded count (r14 is the link register)
aloop:
	; select the open cell with the least f = g + manhattan-to-goal
	li r4, -1          ; best cell
	li r5, ` + itoa(int(asInf)*4) + ` ; best f
	li r1, 0
ascan:
	add r3, r13, r1
	lbu r6, [r3]
	li r9, 0
	bne r6, r9, asnext ; closed
	slli r3, r1, 3
	add r3, r3, r12
	ld r6, [r3]
	li r9, ` + itoa(int(asInf)) + `
	bge r6, r9, asnext ; unreached
	; manhattan distance to the goal corner
	li r9, ` + itoa(asDim) + `
	div r7, r1, r9
	rem r8, r1, r9
	li r9, ` + itoa(asDim-1) + `
	sub r7, r9, r7
	sub r8, r9, r8
	add r7, r7, r8
	add r6, r6, r7     ; f
	bge r6, r5, asnext
	mv r5, r6
	mv r4, r1
asnext:
	addi r1, r1, 1
	li r9, ` + itoa(asDim*asDim) + `
	blt r1, r9, ascan
	li r9, 0
	blt r4, r9, adone  ; open set exhausted
	li r9, ` + itoa(asGoal) + `
	beq r4, r9, adone  ; goal expanded
	; close it and relax the four neighbours
	add r3, r13, r4
	li r9, 1
	sb [r3], r9
	addi r0, r0, 1
	slli r3, r4, 3
	add r3, r3, r12
	ld r10, [r3]
	addi r10, r10, 1   ; candidate g for neighbours
	; up
	li r9, ` + itoa(asDim) + `
	blt r4, r9, an1
	addi r2, r4, -` + itoa(asDim) + `
	call arelax
an1:	; down
	li r9, ` + itoa(asDim*asDim-asDim) + `
	bge r4, r9, an2
	addi r2, r4, ` + itoa(asDim) + `
	call arelax
an2:	; left
	li r9, ` + itoa(asDim) + `
	rem r8, r4, r9
	li r9, 0
	ble r8, r9, an3
	addi r2, r4, -1
	call arelax
an3:	; right
	li r9, ` + itoa(asDim) + `
	rem r8, r4, r9
	li r9, ` + itoa(asDim-1) + `
	bge r8, r9, an4
	addi r2, r4, 1
	call arelax
an4:
	j aloop
adone:
	li r9, ` + itoa(asGoal*8) + `
	add r9, r9, r12
	ld r1, [r9]
	out r1
	out r0
	; checksum of reached g values
	li r5, 1
	li r1, 0
achk:
	slli r3, r1, 3
	add r3, r3, r12
	ld r6, [r3]
	li r9, ` + itoa(int(asInf)) + `
	bge r6, r9, achkskip
	muli r5, r5, 31
	add r5, r5, r6
achkskip:
	addi r1, r1, 1
	li r9, ` + itoa(asDim*asDim) + `
	blt r1, r9, achk
	out r5
	halt

arelax:	; relax neighbour r2 with candidate g in r10 (clobbers r3, r6, r9)
	add r3, r11, r2
	lbu r6, [r3]
	li r9, 0
	bne r6, r9, arelret ; obstacle
	slli r3, r2, 3
	add r3, r3, r12
	ld r6, [r3]
	bge r10, r6, arelret
	sd [r3], r10
arelret:
	ret
`
	return s
}

func asRef() []uint64 {
	grid := asObstacles()
	n := asDim * asDim
	g := make([]int64, n)
	closed := make([]bool, n)
	for i := range g {
		g[i] = asInf
	}
	g[0] = 0
	expanded := uint64(0)
	for {
		best, bestF := -1, asInf*4
		for i := 0; i < n; i++ {
			if closed[i] || g[i] >= asInf {
				continue
			}
			y, x := i/asDim, i%asDim
			f := g[i] + int64(asDim-1-y) + int64(asDim-1-x)
			if f < bestF {
				bestF, best = f, i
			}
		}
		if best < 0 || best == asGoal {
			break
		}
		closed[best] = true
		expanded++
		cand := g[best] + 1
		relax := func(c int) {
			if grid[c] == 0 && cand < g[c] {
				g[c] = cand
			}
		}
		if best >= asDim {
			relax(best - asDim)
		}
		if best < n-asDim {
			relax(best + asDim)
		}
		if best%asDim > 0 {
			relax(best - 1)
		}
		if best%asDim < asDim-1 {
			relax(best + 1)
		}
	}
	h := uint64(1)
	for i := 0; i < n; i++ {
		if g[i] < asInf {
			h = mix(h, uint64(g[i]))
		}
	}
	return []uint64{uint64(g[asGoal]), expanded, h}
}

var _ = register(&Workload{
	Name:        "astar",
	Suite:       "spec",
	Description: "A* pathfinding on a 16x16 obstacle grid",
	source:      asSource,
	ref:         asRef,
})
