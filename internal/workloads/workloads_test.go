package workloads

import (
	"reflect"
	"testing"

	"merlin/internal/cpu"
)

// TestAllWorkloadsMatchReference is the end-to-end oracle: every workload,
// run on the default core configuration, must produce exactly the output
// stream its pure-Go reference model predicts, terminate cleanly, and do
// so within a sane cycle budget.
func TestAllWorkloadsMatchReference(t *testing.T) {
	for _, name := range Names("") {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			w := MustGet(name)
			c := w.NewCore(cpu.DefaultConfig())
			res := c.Run(20_000_000)
			if res.Halt != cpu.HaltOK {
				t.Fatalf("halt = %v after %d cycles", res.Halt, res.Cycles)
			}
			want := w.Reference()
			if !reflect.DeepEqual(res.Output, want) {
				t.Fatalf("output mismatch:\n got %v\nwant %v", res.Output, want)
			}
			if len(res.ExcLog) != 0 {
				t.Errorf("golden run logged %d exceptions; workloads must be exception-free", len(res.ExcLog))
			}
			t.Logf("%s: %d cycles, %d insts, IPC %.2f", name, res.Cycles,
				res.Stats.CommittedInsts, float64(res.Stats.CommittedUops)/float64(res.Cycles))
		})
	}
}

// TestWorkloadsDeterministic re-runs a sample workload and demands
// bit-identical results (cycle counts included).
func TestWorkloadsDeterministic(t *testing.T) {
	for _, name := range []string{"qsort", "sha"} {
		w, err := Get(name)
		if err != nil {
			t.Skip("workload not yet registered")
		}
		a := w.NewCore(cpu.DefaultConfig()).Run(20_000_000)
		b := w.NewCore(cpu.DefaultConfig()).Run(20_000_000)
		if a.Cycles != b.Cycles || !reflect.DeepEqual(a.Output, b.Output) {
			t.Fatalf("%s nondeterministic", name)
		}
	}
}

func TestSuites(t *testing.T) {
	if len(Names("")) != len(Names("mibench"))+len(Names("spec")) {
		t.Error("every workload must belong to mibench or spec")
	}
	if got := len(Names("mibench")); got != 10 {
		t.Errorf("mibench workloads = %d, want 10", got)
	}
	if got := len(Names("spec")); got != 10 {
		t.Errorf("spec workloads = %d, want 10", got)
	}
	if len(MiBench()) != 10 || len(SPEC()) != 10 {
		t.Error("suite accessors wrong")
	}
	if _, err := Get("nonexistent"); err == nil {
		t.Error("Get of unknown workload must fail")
	}
}
