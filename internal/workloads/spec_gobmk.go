package workloads

// gobmk: SPEC 445.gobmk analogue — Go-board analysis over a 19x19 board:
// pseudo-liberty counting for both colours and a 5x5 influence sweep for
// every empty point, the short-branchy board-scanning style of Go engines.

const gobmkDim = 19

func gobmkBoard() []byte {
	rng := xorshift64(0x474F424D)
	b := make([]byte, gobmkDim*gobmkDim)
	for i := range b {
		switch rng() % 8 {
		case 0, 1, 2:
			b[i] = 1 // black
		case 3, 4:
			b[i] = 2 // white
		default:
			b[i] = 0 // empty
		}
	}
	return b
}

func gobmkSource() string {
	s := "\t.data\n"
	s += byteData("board", gobmkBoard())
	s += "lmap:\t.space " + itoa(gobmkDim*gobmkDim) + "\n"
	s += `	.text
	li r11, board
	li r10, lmap
	li r12, 0          ; black pseudo-liberties
	li r13, 0          ; white pseudo-liberties
	li r14, 0          ; influence accumulator
	; --- pseudo-liberties: for each stone, count empty orthogonal
	;     neighbours (off-board neighbours don't count) ---
	li r1, 0           ; y
gly:
	li r2, 0           ; x
glx:
	muli r3, r1, ` + itoa(gobmkDim) + `
	add r3, r3, r2
	add r3, r3, r11
	lbu r4, [r3]       ; stone colour
	li r9, 0
	beq r4, r9, glnext ; empty point
	li r5, 0           ; liberties of this stone
	; up
	li r9, 0
	ble r1, r9, g1
	lbu r6, [r3-` + itoa(gobmkDim) + `]
	bne r6, r9, g1
	addi r5, r5, 1
g1:	; down
	li r9, ` + itoa(gobmkDim-1) + `
	bge r1, r9, g2
	lbu r6, [r3+` + itoa(gobmkDim) + `]
	li r9, 0
	bne r6, r9, g2
	addi r5, r5, 1
g2:	; left
	li r9, 0
	ble r2, r9, g3
	lbu r6, [r3-1]
	bne r6, r9, g3
	addi r5, r5, 1
g3:	; right
	li r9, ` + itoa(gobmkDim-1) + `
	bge r2, r9, g4
	lbu r6, [r3+1]
	li r9, 0
	bne r6, r9, g4
	addi r5, r5, 1
g4:
	; record the liberty count in the map
	muli r9, r1, ` + itoa(gobmkDim) + `
	add r9, r9, r2
	add r9, r9, r10
	sb [r9], r5
	li r9, 1
	bne r4, r9, gwhite
	add r12, r12, r5
	j glnext
gwhite:
	add r13, r13, r5
glnext:
	addi r2, r2, 1
	li r9, ` + itoa(gobmkDim) + `
	blt r2, r9, glx
	addi r1, r1, 1
	blt r1, r9, gly
	; --- influence: for each empty point, sum (3 - max(|dy|,|dx|)) for
	;     stones in the 5x5 window, black positive, white negative ---
	li r1, 2           ; y in [2, dim-2)
giy:
	li r2, 2           ; x
gix:
	muli r3, r1, ` + itoa(gobmkDim) + `
	add r3, r3, r2
	add r3, r3, r11
	lbu r4, [r3]
	li r9, 0
	bne r4, r9, ginext ; only empty points accumulate influence
	li r4, -2          ; dy
gidy:
	li r5, -2          ; dx
gidx:
	add r6, r1, r4
	muli r6, r6, ` + itoa(gobmkDim) + `
	add r6, r6, r2
	add r6, r6, r5
	add r6, r6, r11
	lbu r6, [r6]
	li r9, 0
	beq r6, r9, giskip
	; weight = 3 - max(|dy|, |dx|)
	mv r7, r4
	bge r7, r9, gia1
	sub r7, r9, r7
gia1:
	mv r8, r5
	bge r8, r9, gia2
	sub r8, r9, r8
gia2:
	bge r7, r8, gia3
	mv r7, r8
gia3:
	li r8, 3
	sub r8, r8, r7
	li r9, 1
	bne r6, r9, giwht
	add r14, r14, r8
	j giskip
giwht:
	sub r14, r14, r8
giskip:
	addi r5, r5, 1
	li r9, 2
	ble r5, r9, gidx
	addi r4, r4, 1
	ble r4, r9, gidy
ginext:
	addi r2, r2, 1
	li r9, ` + itoa(gobmkDim-2) + `
	blt r2, r9, gix
	addi r1, r1, 1
	blt r1, r9, giy
	; checksum the liberty map by reading it back
	li r5, 1
	li r1, 0
glc:
	add r9, r10, r1
	lbu r6, [r9]
	muli r5, r5, 31
	add r5, r5, r6
	addi r1, r1, 1
	li r9, ` + itoa(gobmkDim*gobmkDim) + `
	blt r1, r9, glc
	out r12
	out r13
	out r14
	out r5
	halt
`
	return s
}

func gobmkRef() []uint64 {
	b := gobmkBoard()
	at := func(y, x int) byte { return b[y*gobmkDim+x] }
	lmap := make([]byte, gobmkDim*gobmkDim)
	var black, white int64
	for y := 0; y < gobmkDim; y++ {
		for x := 0; x < gobmkDim; x++ {
			c := at(y, x)
			if c == 0 {
				continue
			}
			libs := int64(0)
			if y > 0 && at(y-1, x) == 0 {
				libs++
			}
			if y < gobmkDim-1 && at(y+1, x) == 0 {
				libs++
			}
			if x > 0 && at(y, x-1) == 0 {
				libs++
			}
			if x < gobmkDim-1 && at(y, x+1) == 0 {
				libs++
			}
			lmap[y*gobmkDim+x] = byte(libs)
			if c == 1 {
				black += libs
			} else {
				white += libs
			}
		}
	}
	var infl int64
	for y := 2; y < gobmkDim-2; y++ {
		for x := 2; x < gobmkDim-2; x++ {
			if at(y, x) != 0 {
				continue
			}
			for dy := -2; dy <= 2; dy++ {
				for dx := -2; dx <= 2; dx++ {
					c := at(y+dy, x+dx)
					if c == 0 {
						continue
					}
					ady, adx := dy, dx
					if ady < 0 {
						ady = -ady
					}
					if adx < 0 {
						adx = -adx
					}
					m := ady
					if adx > m {
						m = adx
					}
					wgt := int64(3 - m)
					if c == 1 {
						infl += wgt
					} else {
						infl -= wgt
					}
				}
			}
		}
	}
	h := uint64(1)
	for _, v := range lmap {
		h = mix(h, uint64(v))
	}
	return []uint64{uint64(black), uint64(white), uint64(infl), h}
}

var _ = register(&Workload{
	Name:        "gobmk",
	Suite:       "spec",
	Description: "Go-board liberty counting + 5x5 influence sweep",
	source:      gobmkSource,
	ref:         gobmkRef,
})
