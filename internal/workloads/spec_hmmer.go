package workloads

// hmmer: SPEC 456.hmmer analogue — Viterbi dynamic programming over a
// 12-state profile HMM and a 96-symbol observation sequence: the dense
// max-plus inner loops that dominate hmmsearch.

const (
	hmmStates = 12
	hmmSeqLen = 96
	hmmSyms   = 8
	hmmNegInf = -(int64(1) << 40)
)

func hmmObs() []byte {
	o := genBytes(0x484D4D52, hmmSeqLen)
	for i := range o {
		o[i] %= hmmSyms
	}
	return o
}

func hmmEmit() []uint64 {
	raw := genWords(0x454D4954, hmmStates*hmmSyms, 64)
	for i, v := range raw {
		raw[i] = uint64(int64(v) - 32)
	}
	return raw
}

func hmmTrans() []uint64 {
	raw := genWords(0x5452414E, hmmStates*hmmStates, 32)
	for i, v := range raw {
		raw[i] = uint64(int64(v) - 24) // mostly negative transition scores
	}
	return raw
}

func hmmSource() string {
	s := "\t.data\n"
	s += byteData("obs", hmmObs())
	s += wordData("emit", hmmEmit())
	s += wordData("trans", hmmTrans())
	s += "dpa:\t.space " + itoa(hmmStates*8) + "\n"
	s += "dpb:\t.space " + itoa(hmmStates*8) + "\n"
	s += `	.text
	; dp[0][s] = emit[s][obs[0]]
	li r11, dpa
	li r1, obs
	lbu r1, [r1]       ; obs[0]
	li r2, 0           ; s
hinit:
	muli r3, r2, ` + itoa(hmmSyms) + `
	add r3, r3, r1
	slli r3, r3, 3
	li r4, emit
	add r3, r3, r4
	ld r4, [r3]
	slli r3, r2, 3
	add r3, r3, r11
	sd [r3], r4
	addi r2, r2, 1
	li r9, ` + itoa(hmmStates) + `
	blt r2, r9, hinit
	; iterate t = 1..T-1, ping-ponging dpa/dpb (r11 = prev, r12 = cur)
	li r12, dpb
	li r13, 1          ; t
htime:
	li r1, obs
	add r1, r1, r13
	lbu r14, [r1]      ; obs[t]
	li r2, 0           ; s (current state)
hstate:
	li r5, ` + itoa(int(hmmNegInf)) + `
	li r3, 0           ; s' (previous state)
hprev:
	slli r4, r3, 3
	add r4, r4, r11
	ld r6, [r4]        ; dp[t-1][s']
	muli r4, r3, ` + itoa(hmmStates) + `
	add r4, r4, r2
	slli r4, r4, 3
	li r7, trans
	add r4, r4, r7
	ld r7, [r4]        ; trans[s'][s]
	add r6, r6, r7
	ble r6, r5, hnomax
	mv r5, r6
hnomax:
	addi r3, r3, 1
	li r9, ` + itoa(hmmStates) + `
	blt r3, r9, hprev
	; add emission
	muli r4, r2, ` + itoa(hmmSyms) + `
	add r4, r4, r14
	slli r4, r4, 3
	li r7, emit
	add r4, r4, r7
	ld r7, [r4]
	add r5, r5, r7
	slli r4, r2, 3
	add r4, r4, r12
	sd [r4], r5
	addi r2, r2, 1
	li r9, ` + itoa(hmmStates) + `
	blt r2, r9, hstate
	; swap buffers
	mv r4, r11
	mv r11, r12
	mv r12, r4
	addi r13, r13, 1
	li r9, ` + itoa(hmmSeqLen) + `
	blt r13, r9, htime
	; result: max over final states + checksum of the final row (in r11)
	li r5, ` + itoa(int(hmmNegInf)) + `
	li r6, 1           ; checksum
	li r2, 0
hfin:
	slli r4, r2, 3
	add r4, r4, r11
	ld r7, [r4]
	muli r6, r6, 31
	add r6, r6, r7
	ble r7, r5, hfskip
	mv r5, r7
hfskip:
	addi r2, r2, 1
	li r9, ` + itoa(hmmStates) + `
	blt r2, r9, hfin
	out r5
	out r6
	halt
`
	return s
}

func hmmRef() []uint64 {
	obs := hmmObs()
	emit := hmmEmit()
	trans := hmmTrans()
	prev := make([]int64, hmmStates)
	cur := make([]int64, hmmStates)
	for s := 0; s < hmmStates; s++ {
		prev[s] = int64(emit[s*hmmSyms+int(obs[0])])
	}
	for t := 1; t < hmmSeqLen; t++ {
		for s := 0; s < hmmStates; s++ {
			best := hmmNegInf
			for sp := 0; sp < hmmStates; sp++ {
				v := prev[sp] + int64(trans[sp*hmmStates+s])
				if v > best {
					best = v
				}
			}
			cur[s] = best + int64(emit[s*hmmSyms+int(obs[t])])
		}
		prev, cur = cur, prev
	}
	best := hmmNegInf
	h := uint64(1)
	for s := 0; s < hmmStates; s++ {
		h = mix(h, uint64(prev[s]))
		if prev[s] > best {
			best = prev[s]
		}
	}
	return []uint64{uint64(best), h}
}

var _ = register(&Workload{
	Name:        "hmmer",
	Suite:       "spec",
	Description: "Viterbi DP over a 12-state HMM and 96 observations",
	source:      hmmSource,
	ref:         hmmRef,
})
