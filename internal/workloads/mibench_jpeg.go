package workloads

// djpeg / cjpeg: MiBench consumer jpeg analogues. Both kernels process
// four 8x8 coefficient blocks with a separable 2D Walsh-Hadamard-style
// butterfly transform (the integer add/sub/shift structure of a real
// DCT/IDCT). djpeg dequantises then inverse-transforms; cjpeg transforms
// then quantises. A shared wht8 subroutine exercises call/ret and strided
// memory access.

const (
	jpegBlocks = 4
	jpegBlockN = 64
)

func jpegCoeffs() []uint64 {
	raw := genWords(0x4A504547, jpegBlocks*jpegBlockN, 256)
	for i, v := range raw {
		raw[i] = uint64(int64(v) - 128)
	}
	return raw
}

func jpegQuant() []uint64 {
	q := make([]uint64, jpegBlockN)
	for k := range q {
		q[k] = uint64(1 + k%8 + k/8)
	}
	return q
}

// whtSub is the shared 8-point butterfly subroutine: transforms 8 elements
// at base address r1 with byte stride r2. Clobbers r3-r9; r13 must be 0.
const whtSub = `
wht8:	; in-place 8-point butterfly cascade (strides 1, 2, 4)
	li r3, 1
wst:
	li r4, 0
wel:
	and r5, r4, r3
	bne r5, r13, wskip
	mul r5, r4, r2
	add r5, r5, r1
	mul r6, r3, r2
	add r6, r6, r5
	ld r7, [r5]
	ld r8, [r6]
	add r9, r7, r8
	sd [r5], r9
	sub r9, r7, r8
	sd [r6], r9
wskip:
	addi r4, r4, 1
	li r9, 8
	blt r4, r9, wel
	slli r3, r3, 1
	li r9, 8
	blt r3, r9, wst
	ret
`

// whtRef mirrors wht8 on a Go slice view with the given element stride.
func whtRef(a []int64, base, stride int) {
	for s := 1; s < 8; s <<= 1 {
		for i := 0; i < 8; i++ {
			if i&s != 0 {
				continue
			}
			p, q := base+i*stride, base+(i+s)*stride
			x, y := a[p], a[q]
			a[p], a[q] = x+y, x-y
		}
	}
}

func jpegDriver(dequantFirst bool) string {
	s := "\t.data\n"
	s += wordData("coef", jpegCoeffs())
	s += wordData("quant", jpegQuant())
	s += "\t.text\n\tli r13, 0\n"
	if dequantFirst {
		s += `	; dequantise: coef[k] *= quant[k%64]
	li r10, 0
jdq:
	li r5, coef
	slli r6, r10, 3
	add r5, r5, r6
	andi r7, r10, 63
	slli r7, r7, 3
	li r8, quant
	add r7, r7, r8
	ld r8, [r5]
	ld r9, [r7]
	mul r8, r8, r9
	sd [r5], r8
	addi r10, r10, 1
	li r9, ` + itoa(jpegBlocks*jpegBlockN) + `
	blt r10, r9, jdq
`
	}
	s += `	; per block: transform rows then columns
	li r11, 0          ; block
jblk:
	li r12, 0          ; row
jrow:
	li r1, coef
	slli r5, r11, 9    ; block * 64 words * 8 bytes
	add r1, r1, r5
	muli r5, r12, 64   ; row * 8 words * 8 bytes
	add r1, r1, r5
	li r2, 8
	call wht8
	addi r12, r12, 1
	li r5, 8
	blt r12, r5, jrow
	li r12, 0          ; column
jcol:
	li r1, coef
	slli r5, r11, 9
	add r1, r1, r5
	slli r5, r12, 3
	add r1, r1, r5
	li r2, 64
	call wht8
	addi r12, r12, 1
	li r5, 8
	blt r12, r5, jcol
	addi r11, r11, 1
	li r5, ` + itoa(jpegBlocks) + `
	blt r11, r5, jblk
`
	if !dequantFirst {
		s += `	; quantise: coef[k] /= quant[k%64] (signed)
	li r10, 0
jq:
	li r5, coef
	slli r6, r10, 3
	add r5, r5, r6
	andi r7, r10, 63
	slli r7, r7, 3
	li r8, quant
	add r7, r7, r8
	ld r8, [r5]
	ld r9, [r7]
	div r8, r8, r9
	sd [r5], r8
	addi r10, r10, 1
	li r9, ` + itoa(jpegBlocks*jpegBlockN) + `
	blt r10, r9, jq
`
	}
	s += `	; checksum
	li r1, 1
	li r2, 0
	li r3, coef
jchk:
	ld r4, [r3]
	muli r1, r1, 31
	add r1, r1, r4
	addi r3, r3, 8
	addi r2, r2, 1
	li r5, ` + itoa(jpegBlocks*jpegBlockN) + `
	blt r2, r5, jchk
	out r1
	li r3, coef
	ld r4, [r3]
	out r4
	halt
` + whtSub
	return s
}

func jpegRef(dequantFirst bool) []uint64 {
	a := make([]int64, jpegBlocks*jpegBlockN)
	for i, v := range jpegCoeffs() {
		a[i] = int64(v)
	}
	q := jpegQuant()
	if dequantFirst {
		for k := range a {
			a[k] *= int64(q[k%jpegBlockN])
		}
	}
	for b := 0; b < jpegBlocks; b++ {
		base := b * jpegBlockN
		for r := 0; r < 8; r++ {
			whtRef(a, base+r*8, 1)
		}
		for c := 0; c < 8; c++ {
			whtRef(a, base+c, 8)
		}
	}
	if !dequantFirst {
		for k := range a {
			a[k] /= int64(q[k%jpegBlockN])
		}
	}
	h := uint64(1)
	for _, v := range a {
		h = mix(h, uint64(v))
	}
	return []uint64{h, uint64(a[0])}
}

var _ = register(&Workload{
	Name:        "djpeg",
	Suite:       "mibench",
	Description: "dequantise + inverse 2D butterfly transform of 4 blocks",
	source:      func() string { return jpegDriver(true) },
	ref:         func() []uint64 { return jpegRef(true) },
})

var _ = register(&Workload{
	Name:        "cjpeg",
	Suite:       "mibench",
	Description: "forward 2D butterfly transform + quantisation of 4 blocks",
	source:      func() string { return jpegDriver(false) },
	ref:         func() []uint64 { return jpegRef(false) },
})
