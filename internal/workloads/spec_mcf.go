package workloads

// mcf: SPEC 429.mcf analogue — Bellman-Ford shortest-path relaxation over
// a 64-node / 320-edge network, the irregular pointer-light memory access
// pattern of network-simplex pricing sweeps.

const (
	mcfNodes = 64
	mcfEdges = 320
	mcfInf   = int64(1) << 40
)

func mcfGraph() (src, dst, w []uint64) {
	rng := xorshift64(0x4D434631)
	src = make([]uint64, mcfEdges)
	dst = make([]uint64, mcfEdges)
	w = make([]uint64, mcfEdges)
	// A connected backbone plus random extra arcs.
	for i := 0; i < mcfNodes-1; i++ {
		src[i] = uint64(i)
		dst[i] = uint64(i + 1)
		w[i] = rng()%100 + 1
	}
	for i := mcfNodes - 1; i < mcfEdges; i++ {
		src[i] = rng() % mcfNodes
		dst[i] = rng() % mcfNodes
		w[i] = rng()%100 + 1
	}
	return src, dst, w
}

func mcfSource() string {
	src, dst, w := mcfGraph()
	s := "\t.data\n"
	s += wordData("esrc", src)
	s += wordData("edst", dst)
	s += wordData("ew", w)
	s += "dist:\t.space " + itoa(mcfNodes*8) + "\n"
	s += `	.text
	; dist[0] = 0, dist[i>0] = INF
	li r1, dist
	li r2, 0
	sd [r1], r2
	li r3, ` + itoa(int(mcfInf)) + `
	li r2, 1
minit:
	slli r4, r2, 3
	add r4, r4, r1
	sd [r4], r3
	addi r2, r2, 1
	li r9, ` + itoa(mcfNodes) + `
	blt r2, r9, minit
	; relax all edges N-1 times, with an early-exit change flag
	li r10, 0          ; pass
mpass:
	li r11, 0          ; changed flag
	li r2, 0           ; edge index
medge:
	slli r4, r2, 3
	li r5, esrc
	add r5, r5, r4
	ld r6, [r5]        ; u
	li r5, edst
	add r5, r5, r4
	ld r7, [r5]        ; v
	li r5, ew
	add r5, r5, r4
	ld r8, [r5]        ; weight
	slli r6, r6, 3
	add r6, r6, r1
	ld r6, [r6]        ; dist[u]
	add r6, r6, r8     ; candidate
	slli r7, r7, 3
	add r7, r7, r1     ; &dist[v]
	ld r9, [r7]
	bge r6, r9, mskip
	sd [r7], r6
	li r11, 1
mskip:
	addi r2, r2, 1
	li r9, ` + itoa(mcfEdges) + `
	blt r2, r9, medge
	li r9, 0
	beq r11, r9, mdone ; no change: converged
	addi r10, r10, 1
	li r9, ` + itoa(mcfNodes-1) + `
	blt r10, r9, mpass
mdone:
	; distance checksum
	li r3, 1
	li r2, 0
mchk:
	slli r4, r2, 3
	add r4, r4, r1
	ld r5, [r4]
	muli r3, r3, 31
	add r3, r3, r5
	addi r2, r2, 1
	li r9, ` + itoa(mcfNodes) + `
	blt r2, r9, mchk
	out r3
	out r10
	halt
`
	return s
}

func mcfRef() []uint64 {
	src, dst, w := mcfGraph()
	dist := make([]int64, mcfNodes)
	for i := 1; i < mcfNodes; i++ {
		dist[i] = mcfInf
	}
	passes := uint64(0)
	for p := 0; p < mcfNodes-1; p++ {
		changed := false
		for e := 0; e < mcfEdges; e++ {
			cand := dist[src[e]] + int64(w[e])
			if cand < dist[dst[e]] {
				dist[dst[e]] = cand
				changed = true
			}
		}
		if !changed {
			break
		}
		passes++
	}
	h := uint64(1)
	for _, d := range dist {
		h = mix(h, uint64(d))
	}
	return []uint64{h, passes}
}

var _ = register(&Workload{
	Name:        "mcf",
	Suite:       "spec",
	Description: "Bellman-Ford relaxation over a 64-node network",
	source:      mcfSource,
	ref:         mcfRef,
})
