package workloads

// The three susan kernels (MiBench automotive/susan: corners, smoothing,
// edges) share one 32x32 greyscale test image and mirror the original's
// behaviour: USAN-area corner response, 3x3 mean smoothing, and a
// Sobel-style gradient edge detector.

const susanDim = 32

func susanImage() []byte { return genBytes(0x535553414E, susanDim*susanDim) }

func susanAt(img []byte, y, x int) int64 { return int64(img[y*susanDim+x]) }

// --- susan_s: 3x3 mean smoothing ---

func susanSSource() string {
	s := "\t.data\n"
	s += byteData("img", susanImage())
	s += "smap:\t.space " + itoa(susanDim*susanDim) + "\n"
	s += `	.text
	li r11, img
	li r10, smap
	li r3, 1           ; checksum
	li r1, 1           ; y
ssy:
	li r2, 1           ; x
ssx:
	li r6, 0           ; sum
	li r4, -1          ; dy
ssdy:
	li r5, -1          ; dx
ssdx:
	add r7, r1, r4
	muli r7, r7, ` + itoa(susanDim) + `
	add r7, r7, r2
	add r7, r7, r5
	add r7, r7, r11
	lbu r8, [r7]
	add r6, r6, r8
	addi r5, r5, 1
	li r9, 1
	ble r5, r9, ssdx
	addi r4, r4, 1
	ble r4, r9, ssdy
	li r9, 9
	div r6, r6, r9
	muli r3, r3, 31
	add r3, r3, r6
	; store the smoothed pixel to the output map
	muli r7, r1, ` + itoa(susanDim) + `
	add r7, r7, r2
	add r7, r7, r10
	sb [r7], r6
	addi r2, r2, 1
	li r9, ` + itoa(susanDim-1) + `
	blt r2, r9, ssx
	addi r1, r1, 1
	blt r1, r9, ssy
	; second pass: checksum the stored map by reading it back
	li r4, 1
	li r1, 1
ss2y:
	li r2, 1
ss2x:
	muli r7, r1, ` + itoa(susanDim) + `
	add r7, r7, r2
	add r7, r7, r10
	lbu r6, [r7]
	muli r4, r4, 31
	add r4, r4, r6
	addi r2, r2, 1
	li r9, ` + itoa(susanDim-1) + `
	blt r2, r9, ss2x
	addi r1, r1, 1
	blt r1, r9, ss2y
	out r3
	out r4
	halt
`
	return s
}

func susanSRef() []uint64 {
	img := susanImage()
	smap := make([]byte, susanDim*susanDim)
	h := uint64(1)
	for y := 1; y < susanDim-1; y++ {
		for x := 1; x < susanDim-1; x++ {
			var sum int64
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					sum += susanAt(img, y+dy, x+dx)
				}
			}
			h = mix(h, uint64(sum/9))
			smap[y*susanDim+x] = byte(sum / 9)
		}
	}
	h2 := uint64(1)
	for y := 1; y < susanDim-1; y++ {
		for x := 1; x < susanDim-1; x++ {
			h2 = mix(h2, uint64(smap[y*susanDim+x]))
		}
	}
	return []uint64{h, h2}
}

// --- susan_c: USAN-area corner detection ---

const (
	susanBrightThresh = 27
	susanGeomThresh   = 18
)

func susanCSource() string {
	s := "\t.data\n"
	s += byteData("img", susanImage())
	s += "cmap:\t.space " + itoa(susanDim*susanDim) + "\n"
	s += `	.text
	li r11, img
	li r10, cmap
	li r3, 1           ; checksum
	li r12, 0          ; corner count
	li r1, 2           ; y
scy:
	li r2, 2           ; x
scx:
	; centre brightness
	muli r7, r1, ` + itoa(susanDim) + `
	add r7, r7, r2
	add r7, r7, r11
	lbu r13, [r7]      ; c
	li r6, 0           ; USAN count
	li r4, -2          ; dy
scdy:
	li r5, -2          ; dx
scdx:
	bne r4, r5, scbody ; skip only the exact centre (dy==dx==0)
	bne r4, r0, scbody
	j scskip
scbody:
	add r7, r1, r4
	muli r7, r7, ` + itoa(susanDim) + `
	add r7, r7, r2
	add r7, r7, r5
	add r7, r7, r11
	lbu r8, [r7]
	sub r8, r8, r13
	li r9, 0
	bge r8, r9, scabs
	sub r8, r9, r8
scabs:
	li r9, ` + itoa(susanBrightThresh) + `
	bge r8, r9, scskip
	addi r6, r6, 1
scskip:
	addi r5, r5, 1
	li r9, 2
	ble r5, r9, scdx
	addi r4, r4, 1
	ble r4, r9, scdy
	; record the USAN area in the corner map
	muli r9, r1, ` + itoa(susanDim) + `
	add r9, r9, r2
	add r9, r9, r10
	sb [r9], r6
	; corner response: USAN area below the geometric threshold
	li r9, ` + itoa(susanGeomThresh) + `
	bge r6, r9, scnot
	addi r12, r12, 1
	muli r3, r3, 31
	muli r9, r1, ` + itoa(susanDim) + `
	add r9, r9, r2
	add r3, r3, r9
scnot:
	addi r2, r2, 1
	li r9, ` + itoa(susanDim-2) + `
	blt r2, r9, scx
	addi r1, r1, 1
	blt r1, r9, scy
	; checksum the recorded USAN map
	li r4, 1
	li r1, 2
sc2y:
	li r2, 2
sc2x:
	muli r9, r1, ` + itoa(susanDim) + `
	add r9, r9, r2
	add r9, r9, r10
	lbu r6, [r9]
	muli r4, r4, 31
	add r4, r4, r6
	addi r2, r2, 1
	li r9, ` + itoa(susanDim-2) + `
	blt r2, r9, sc2x
	addi r1, r1, 1
	blt r1, r9, sc2y
	out r12
	out r3
	out r4
	halt
`
	return s
}

func susanCRef() []uint64 {
	img := susanImage()
	cmap := make([]byte, susanDim*susanDim)
	h, corners := uint64(1), uint64(0)
	for y := 2; y < susanDim-2; y++ {
		for x := 2; x < susanDim-2; x++ {
			c := susanAt(img, y, x)
			n := int64(0)
			for dy := -2; dy <= 2; dy++ {
				for dx := -2; dx <= 2; dx++ {
					if dy == 0 && dx == 0 {
						continue
					}
					d := susanAt(img, y+dy, x+dx) - c
					if d < 0 {
						d = -d
					}
					if d < susanBrightThresh {
						n++
					}
				}
			}
			cmap[y*susanDim+x] = byte(n)
			if n < susanGeomThresh {
				corners++
				h = mix(h, uint64(y*susanDim+x))
			}
		}
	}
	h2 := uint64(1)
	for y := 2; y < susanDim-2; y++ {
		for x := 2; x < susanDim-2; x++ {
			h2 = mix(h2, uint64(cmap[y*susanDim+x]))
		}
	}
	return []uint64{corners, h, h2}
}

// --- susan_e: Sobel gradient edge detection ---

const susanEdgeThresh = 96

func susanESource() string {
	s := "\t.data\n"
	s += byteData("img", susanImage())
	s += "emap:\t.space " + itoa(2*susanDim*susanDim) + "\n"
	s += `	.text
	li r11, img
	li r10, emap
	li r3, 1           ; checksum
	li r12, 0          ; edge count
	li r1, 1           ; y
sey:
	li r2, 1           ; x
sex:
	; gx = (row stencil on x+1) - (row stencil on x-1)
	addi r4, r2, 1
	call secol
	mv r6, r5
	addi r4, r2, -1
	call secol
	sub r6, r6, r5     ; gx
	; gy = (col stencil on y+1) - (col stencil on y-1)
	addi r4, r1, 1
	call serow
	mv r7, r5
	addi r4, r1, -1
	call serow
	sub r7, r7, r5     ; gy
	; mag = |gx| + |gy|
	li r9, 0
	bge r6, r9, seax
	sub r6, r9, r6
seax:
	bge r7, r9, seay
	sub r7, r9, r7
seay:
	add r6, r6, r7
	muli r3, r3, 31
	add r3, r3, r6
	; store the magnitude in the edge map (16-bit)
	muli r9, r1, ` + itoa(susanDim) + `
	add r9, r9, r2
	slli r9, r9, 1
	add r9, r9, r10
	sh [r9], r6
	li r9, ` + itoa(susanEdgeThresh) + `
	ble r6, r9, senoedge
	addi r12, r12, 1
senoedge:
	addi r2, r2, 1
	li r9, ` + itoa(susanDim-1) + `
	blt r2, r9, sex
	addi r1, r1, 1
	blt r1, r9, sey
	; checksum the stored edge map
	li r4, 1
	li r1, 1
se2y:
	li r2, 1
se2x:
	muli r9, r1, ` + itoa(susanDim) + `
	add r9, r9, r2
	slli r9, r9, 1
	add r9, r9, r10
	lhu r6, [r9]
	muli r4, r4, 31
	add r4, r4, r6
	addi r2, r2, 1
	li r9, ` + itoa(susanDim-1) + `
	blt r2, r9, se2x
	addi r1, r1, 1
	blt r1, r9, se2y
	out r12
	out r3
	out r4
	halt

secol:	; r5 = img[y-1][r4] + 2*img[y][r4] + img[y+1][r4]
	addi r8, r1, -1
	muli r8, r8, ` + itoa(susanDim) + `
	add r8, r8, r4
	add r8, r8, r11
	lbu r5, [r8]
	lbu r9, [r8+` + itoa(susanDim) + `]
	slli r9, r9, 1
	add r5, r5, r9
	lbu r9, [r8+` + itoa(2*susanDim) + `]
	add r5, r5, r9
	ret

serow:	; r5 = img[r4][x-1] + 2*img[r4][x] + img[r4][x+1]
	muli r8, r4, ` + itoa(susanDim) + `
	add r8, r8, r2
	add r8, r8, r11
	lbu r5, [r8-1]
	lbu r9, [r8]
	slli r9, r9, 1
	add r5, r5, r9
	lbu r9, [r8+1]
	add r5, r5, r9
	ret
`
	return s
}

func susanERef() []uint64 {
	img := susanImage()
	emap := make([]uint16, susanDim*susanDim)
	h, edges := uint64(1), uint64(0)
	for y := 1; y < susanDim-1; y++ {
		for x := 1; x < susanDim-1; x++ {
			col := func(cx int) int64 {
				return susanAt(img, y-1, cx) + 2*susanAt(img, y, cx) + susanAt(img, y+1, cx)
			}
			row := func(ry int) int64 {
				return susanAt(img, ry, x-1) + 2*susanAt(img, ry, x) + susanAt(img, ry, x+1)
			}
			gx := col(x+1) - col(x-1)
			gy := row(y+1) - row(y-1)
			if gx < 0 {
				gx = -gx
			}
			if gy < 0 {
				gy = -gy
			}
			mag := gx + gy
			h = mix(h, uint64(mag))
			emap[y*susanDim+x] = uint16(mag)
			if mag > susanEdgeThresh {
				edges++
			}
		}
	}
	h2 := uint64(1)
	for y := 1; y < susanDim-1; y++ {
		for x := 1; x < susanDim-1; x++ {
			h2 = mix(h2, uint64(emap[y*susanDim+x]))
		}
	}
	return []uint64{edges, h, h2}
}

var _ = register(&Workload{
	Name:        "susan_s",
	Suite:       "mibench",
	Description: "3x3 mean smoothing of a 32x32 image",
	source:      susanSSource,
	ref:         susanSRef,
})

var _ = register(&Workload{
	Name:        "susan_c",
	Suite:       "mibench",
	Description: "USAN-area corner detection on a 32x32 image",
	source:      susanCSource,
	ref:         susanCRef,
})

var _ = register(&Workload{
	Name:        "susan_e",
	Suite:       "mibench",
	Description: "Sobel gradient edge detection on a 32x32 image",
	source:      susanESource,
	ref:         susanERef,
})
