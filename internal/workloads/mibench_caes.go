package workloads

// caes: MiBench security/rijndael analogue — an AES-structured block
// cipher: 10 rounds of SubBytes (256-byte S-box lookup), ShiftRows (fixed
// byte permutation) and a MixColumns-style xor/shift diffusion plus round
// key addition, over eight 16-byte blocks.

const (
	caesBlocks = 8
	caesRounds = 10
)

func caesSbox() []byte {
	// A deterministic permutation of 0..255 (Fisher-Yates under xorshift).
	s := make([]byte, 256)
	for i := range s {
		s[i] = byte(i)
	}
	rng := xorshift64(0x53424F58)
	for i := 255; i > 0; i-- {
		j := int(rng() % uint64(i+1))
		s[i], s[j] = s[j], s[i]
	}
	return s
}

// caesShift is AES's ShiftRows on a column-major 4x4 byte state.
func caesShift() []byte {
	p := make([]byte, 16)
	for c := 0; c < 4; c++ {
		for r := 0; r < 4; r++ {
			p[c*4+r] = byte(((c+r)%4)*4 + r)
		}
	}
	return p
}

func caesPlain() []byte { return genBytes(0x504C41494E, caesBlocks*16) }

func caesKeys() []byte { return genBytes(0x4B455953, caesRounds*16) }

func caesSource() string {
	s := "\t.data\n"
	s += byteData("state", caesPlain())
	s += byteData("sbox", caesSbox())
	s += byteData("shiftp", caesShift())
	s += byteData("rkeys", caesKeys())
	s += "tmp:\t.space 16\n"
	s += `	.text
	li r11, 0          ; block
cblk:
	li r12, 0          ; round
crnd:
	; tmp[i] = sbox[state[shiftp[i]]]
	li r1, 0
csub:
	li r2, shiftp
	add r2, r2, r1
	lbu r3, [r2]       ; source index
	li r2, state
	slli r4, r11, 4
	add r2, r2, r4
	add r2, r2, r3
	lbu r3, [r2]
	li r2, sbox
	add r2, r2, r3
	lbu r3, [r2]
	li r2, tmp
	add r2, r2, r1
	sb [r2], r3
	addi r1, r1, 1
	li r2, 16
	blt r1, r2, csub
	; state[i] = tmp[i] ^ tmp[(i+4)&15] ^ ((tmp[(i+8)&15]<<1)&0xff) ^ rk[r][i]
	li r1, 0
cmix:
	li r2, tmp
	add r3, r2, r1
	lbu r4, [r3]
	addi r5, r1, 4
	andi r5, r5, 15
	add r3, r2, r5
	lbu r6, [r3]
	xor r4, r4, r6
	addi r5, r1, 8
	andi r5, r5, 15
	add r3, r2, r5
	lbu r6, [r3]
	slli r6, r6, 1
	andi r6, r6, 255
	xor r4, r4, r6
	li r3, rkeys
	slli r5, r12, 4
	add r3, r3, r5
	add r3, r3, r1
	lbu r6, [r3]
	xor r4, r4, r6
	li r3, state
	slli r5, r11, 4
	add r3, r3, r5
	add r3, r3, r1
	sb [r3], r4
	addi r1, r1, 1
	li r2, 16
	blt r1, r2, cmix
	addi r12, r12, 1
	li r2, ` + itoa(caesRounds) + `
	blt r12, r2, crnd
	addi r11, r11, 1
	li r2, ` + itoa(caesBlocks) + `
	blt r11, r2, cblk
	; ciphertext checksum
	li r1, 1
	li r2, 0
	li r3, state
cchk:
	lbu r4, [r3]
	muli r1, r1, 31
	add r1, r1, r4
	addi r3, r3, 1
	addi r2, r2, 1
	li r5, ` + itoa(caesBlocks*16) + `
	blt r2, r5, cchk
	out r1
	halt
`
	return s
}

func caesRef() []uint64 {
	state := caesPlain()
	sbox := caesSbox()
	shiftp := caesShift()
	keys := caesKeys()
	tmp := make([]byte, 16)
	for b := 0; b < caesBlocks; b++ {
		blk := state[b*16 : b*16+16]
		for r := 0; r < caesRounds; r++ {
			for i := 0; i < 16; i++ {
				tmp[i] = sbox[blk[shiftp[i]]]
			}
			for i := 0; i < 16; i++ {
				blk[i] = tmp[i] ^ tmp[(i+4)&15] ^ (tmp[(i+8)&15] << 1) ^ keys[r*16+i]
			}
		}
	}
	h := uint64(1)
	for _, v := range state {
		h = mix(h, uint64(v))
	}
	return []uint64{h}
}

var _ = register(&Workload{
	Name:        "caes",
	Suite:       "mibench",
	Description: "AES-structured 10-round cipher over 8 blocks",
	source:      caesSource,
	ref:         caesRef,
})
