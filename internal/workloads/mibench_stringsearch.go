package workloads

// stringsearch: MiBench office/stringsearch analogue — Boyer-Moore-Horspool
// search of four 6-byte patterns over a 2KB text with planted occurrences.
// Outputs the total match count and an order-sensitive checksum of match
// positions.

const (
	ssTextLen = 2048
	ssPatLen  = 6
	ssPats    = 4
)

func ssText() []byte {
	text := genBytes(0x535452494E47, ssTextLen)
	for i := range text {
		text[i] = 'a' + text[i]%26
	}
	// Plant each pattern a few times so matches exist.
	pats := ssPatterns()
	rng := xorshift64(0xBEEF)
	for p := 0; p < ssPats; p++ {
		for k := 0; k < 3; k++ {
			pos := int(rng() % uint64(ssTextLen-ssPatLen))
			copy(text[pos:], pats[p])
		}
	}
	return text
}

func ssPatterns() [][]byte {
	rng := xorshift64(0x50415453)
	pats := make([][]byte, ssPats)
	for p := range pats {
		pat := make([]byte, ssPatLen)
		for i := range pat {
			pat[i] = 'a' + byte(rng()>>40)%26
		}
		pats[p] = pat
	}
	return pats
}

func ssSource() string {
	s := "\t.data\n"
	s += byteData("text", ssText())
	flat := make([]byte, 0, ssPats*ssPatLen)
	for _, p := range ssPatterns() {
		flat = append(flat, p...)
	}
	s += byteData("pats", flat)
	s += "shift:\t.space 256\n"
	s += `	.text
	li r1, 0            ; pattern index
	li r2, 0            ; total matches
	li r3, 1            ; position checksum
ssnext:
	li r9, ` + itoa(ssPats) + `
	bge r1, r9, ssout
	li r4, pats
	muli r9, r1, ` + itoa(ssPatLen) + `
	add r4, r4, r9      ; pattern base
	; build the bad-character shift table: default = patlen
	li r5, shift
	li r9, 0
	li r10, ` + itoa(ssPatLen) + `
ssdflt:
	add r0, r5, r9
	sb [r0], r10
	addi r9, r9, 1
	li r0, 256
	blt r9, r0, ssdflt
	; tbl[pat[i]] = patlen-1-i for i in [0, patlen-1)
	li r9, 0
ssbc:
	add r0, r4, r9
	lbu r10, [r0]
	add r10, r10, r5
	li r0, ` + itoa(ssPatLen-1) + `
	sub r0, r0, r9
	sb [r10], r0
	addi r9, r9, 1
	li r0, ` + itoa(ssPatLen-1) + `
	blt r9, r0, ssbc
	; scan
	li r6, 0            ; pos
ssscan:
	li r9, ` + itoa(ssTextLen-ssPatLen) + `
	bgt r6, r9, ssdonepat
	; compare pattern backwards
	li r9, ` + itoa(ssPatLen-1) + `
sscmp:
	li r10, text
	add r10, r10, r6
	add r10, r10, r9
	lbu r11, [r10]
	add r10, r4, r9
	lbu r12, [r10]
	bne r11, r12, ssmiss
	addi r9, r9, -1
	li r10, 0
	bge r9, r10, sscmp
	; match at pos r6
	addi r2, r2, 1
	muli r3, r3, 31
	add r3, r3, r6
ssmiss:
	; advance by shift[text[pos+patlen-1]]
	li r10, text
	add r10, r10, r6
	lbu r11, [r10+` + itoa(ssPatLen-1) + `]
	add r11, r11, r5
	lbu r12, [r11]
	add r6, r6, r12
	j ssscan
ssdonepat:
	addi r1, r1, 1
	j ssnext
ssout:
	out r2
	out r3
	halt
`
	return s
}

func ssRef() []uint64 {
	text := ssText()
	var matches, checksum uint64
	checksum = 1
	for _, pat := range ssPatterns() {
		shift := [256]int{}
		for i := range shift {
			shift[i] = ssPatLen
		}
		for i := 0; i < ssPatLen-1; i++ {
			shift[pat[i]] = ssPatLen - 1 - i
		}
		pos := 0
		for pos <= ssTextLen-ssPatLen {
			ok := true
			for i := ssPatLen - 1; i >= 0; i-- {
				if text[pos+i] != pat[i] {
					ok = false
					break
				}
			}
			if ok {
				matches++
				checksum = mix(checksum, uint64(pos))
			}
			pos += shift[text[pos+ssPatLen-1]]
		}
	}
	return []uint64{matches, checksum}
}

var _ = register(&Workload{
	Name:        "stringsearch",
	Suite:       "mibench",
	Description: "Horspool search of 4 patterns over 2KB text",
	source:      ssSource,
	ref:         ssRef,
})
