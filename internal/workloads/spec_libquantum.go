package workloads

// libquantum: SPEC 462.libquantum analogue — gate application sweeps over a
// 256-amplitude (8-qubit) fixed-point state vector: Hadamard-style
// butterflies on every qubit followed by a CNOT permutation, repeated for
// several sweeps. The strided pair-wise state updates are the kernel of
// quantum simulation.

const (
	lqQubits = 8
	lqAmps   = 1 << lqQubits
	lqSweeps = 4
	lqScale  = 724 // ~1/sqrt(2) in Q10
	lqQ      = 10
)

func lqInit() (re, im []uint64) {
	re = genWords(0x4C515245, lqAmps, 2048)
	im = genWords(0x4C51494D, lqAmps, 2048)
	for i := range re {
		re[i] = uint64(int64(re[i]) - 1024)
		im[i] = uint64(int64(im[i]) - 1024)
	}
	return re, im
}

func lqSource() string {
	re, im := lqInit()
	s := "\t.data\n"
	s += wordData("qre", re)
	s += wordData("qim", im)
	s += `	.text
	li r13, 0          ; sweep
lqsweep:
	li r12, 0          ; qubit
lqqubit:
	li r11, 1
	sll r11, r11, r12  ; bit = 1<<q
	; Hadamard-like butterfly on every pair (i, i|bit)
	li r1, 0
lqh:
	and r2, r1, r11
	li r9, 0
	bne r2, r9, lqhskip
	or r2, r1, r11     ; partner j
	; load pair
	slli r3, r1, 3
	slli r4, r2, 3
	li r5, qre
	add r6, r5, r3
	add r7, r5, r4
	ld r8, [r6]        ; ar
	ld r9, [r7]        ; br
	add r10, r8, r9
	muli r10, r10, ` + itoa(lqScale) + `
	srai r10, r10, ` + itoa(lqQ) + `
	sd [r6], r10
	sub r10, r8, r9
	muli r10, r10, ` + itoa(lqScale) + `
	srai r10, r10, ` + itoa(lqQ) + `
	sd [r7], r10
	li r5, qim
	add r6, r5, r3
	add r7, r5, r4
	ld r8, [r6]        ; ai
	ld r9, [r7]        ; bi
	add r10, r8, r9
	muli r10, r10, ` + itoa(lqScale) + `
	srai r10, r10, ` + itoa(lqQ) + `
	sd [r6], r10
	sub r10, r8, r9
	muli r10, r10, ` + itoa(lqScale) + `
	srai r10, r10, ` + itoa(lqQ) + `
	sd [r7], r10
lqhskip:
	addi r1, r1, 1
	li r9, ` + itoa(lqAmps) + `
	blt r1, r9, lqh
	; CNOT: control q, target (q+3)&7 — swap amplitudes where the
	; control bit is set and the target bit is clear
	addi r2, r12, 3
	andi r2, r2, 7
	li r10, 1
	sll r10, r10, r2   ; tbit
	li r1, 0
lqc:
	and r2, r1, r11
	li r9, 0
	beq r2, r9, lqcskip ; control clear
	and r2, r1, r10
	bne r2, r9, lqcskip ; target already set
	or r2, r1, r10      ; partner
	slli r3, r1, 3
	slli r4, r2, 3
	li r5, qre
	add r6, r5, r3
	add r7, r5, r4
	ld r8, [r6]
	ld r9, [r7]
	sd [r6], r9
	sd [r7], r8
	li r5, qim
	add r6, r5, r3
	add r7, r5, r4
	ld r8, [r6]
	ld r9, [r7]
	sd [r6], r9
	sd [r7], r8
lqcskip:
	addi r1, r1, 1
	li r9, ` + itoa(lqAmps) + `
	blt r1, r9, lqc
	addi r12, r12, 1
	li r9, ` + itoa(lqQubits) + `
	blt r12, r9, lqqubit
	addi r13, r13, 1
	li r9, ` + itoa(lqSweeps) + `
	blt r13, r9, lqsweep
	; state checksum
	li r1, 1
	li r2, 0
	li r3, qre
	li r4, qim
lqchk:
	ld r5, [r3]
	muli r1, r1, 31
	add r1, r1, r5
	ld r5, [r4]
	muli r1, r1, 31
	add r1, r1, r5
	addi r3, r3, 8
	addi r4, r4, 8
	addi r2, r2, 1
	li r9, ` + itoa(lqAmps) + `
	blt r2, r9, lqchk
	out r1
	halt
`
	return s
}

func lqRef() []uint64 {
	reU, imU := lqInit()
	re := make([]int64, lqAmps)
	im := make([]int64, lqAmps)
	for i := range reU {
		re[i], im[i] = int64(reU[i]), int64(imU[i])
	}
	for sweep := 0; sweep < lqSweeps; sweep++ {
		for q := 0; q < lqQubits; q++ {
			bit := 1 << q
			for i := 0; i < lqAmps; i++ {
				if i&bit != 0 {
					continue
				}
				j := i | bit
				ar, br := re[i], re[j]
				re[i] = (ar + br) * lqScale >> lqQ
				re[j] = (ar - br) * lqScale >> lqQ
				ai, bi := im[i], im[j]
				im[i] = (ai + bi) * lqScale >> lqQ
				im[j] = (ai - bi) * lqScale >> lqQ
			}
			tbit := 1 << ((q + 3) & 7)
			for i := 0; i < lqAmps; i++ {
				if i&bit == 0 || i&tbit != 0 {
					continue
				}
				j := i | tbit
				re[i], re[j] = re[j], re[i]
				im[i], im[j] = im[j], im[i]
			}
		}
	}
	h := uint64(1)
	for i := 0; i < lqAmps; i++ {
		h = mix(h, uint64(re[i]))
		h = mix(h, uint64(im[i]))
	}
	return []uint64{h}
}

var _ = register(&Workload{
	Name:        "libquantum",
	Suite:       "spec",
	Description: "gate sweeps over an 8-qubit fixed-point state vector",
	source:      lqSource,
	ref:         lqRef,
})
