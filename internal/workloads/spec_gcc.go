package workloads

// gcc: SPEC 403.gcc analogue — a lexer over synthetic C-like source with a
// character-class table and an open-addressing identifier hash table
// (linear probing), the pointer-chasing + branchy flavour of a compiler
// front end.

const (
	gccTextLen  = 3072
	gccHashSize = 256
)

// character classes
const (
	gccClsSpace = 0
	gccClsAlpha = 1
	gccClsDigit = 2
	gccClsOp    = 3
)

func gccText() []byte {
	rng := xorshift64(0x47434331)
	out := make([]byte, 0, gccTextLen)
	idents := []string{"if", "else", "while", "int", "ret", "x0", "y1", "tmp",
		"count", "buf", "ptr", "node", "next", "val", "size", "len"}
	for len(out) < gccTextLen-16 {
		switch rng() % 4 {
		case 0, 1:
			out = append(out, idents[rng()%uint64(len(idents))]...)
		case 2:
			for n := int(rng()%4) + 1; n > 0; n-- {
				out = append(out, byte('0'+rng()%10))
			}
		default:
			out = append(out, "+-*/=<>(){};"[rng()%12])
		}
		out = append(out, ' ')
	}
	for len(out) < gccTextLen {
		out = append(out, ' ')
	}
	return out[:gccTextLen]
}

func gccClassTable() []byte {
	t := make([]byte, 256)
	for c := 'a'; c <= 'z'; c++ {
		t[c] = gccClsAlpha
	}
	for c := '0'; c <= '9'; c++ {
		t[c] = gccClsDigit
	}
	for _, c := range "+-*/=<>(){};" {
		t[c] = gccClsOp
	}
	return t
}

func gccSource() string {
	s := "\t.data\n"
	s += byteData("src", gccText())
	s += byteData("cls", gccClassTable())
	s += "htab:\t.space " + itoa(gccHashSize*8) + "\n"
	s += `	.text
	li r11, src
	li r12, cls
	li r13, htab
	li r1, 0           ; position
	li r2, 0           ; ident count
	li r3, 0           ; number count
	li r4, 0           ; op count
	li r5, 0           ; probe count
glex:
	li r9, ` + itoa(gccTextLen) + `
	bge r1, r9, gdone
	add r6, r11, r1
	lbu r6, [r6]
	add r7, r12, r6
	lbu r7, [r7]       ; class
	li r9, ` + itoa(gccClsAlpha) + `
	beq r7, r9, gident
	li r9, ` + itoa(gccClsDigit) + `
	beq r7, r9, gnumber
	li r9, ` + itoa(gccClsOp) + `
	beq r7, r9, gop
	addi r1, r1, 1     ; whitespace
	j glex
gident:
	; hash the identifier run: h = h*31 + c
	li r8, 7
gidloop:
	add r6, r11, r1
	lbu r6, [r6]
	add r7, r12, r6
	lbu r7, [r7]
	li r9, ` + itoa(gccClsAlpha) + `
	beq r7, r9, gidext
	li r9, ` + itoa(gccClsDigit) + `
	bne r7, r9, gidins
gidext:
	muli r8, r8, 31
	add r8, r8, r6
	addi r1, r1, 1
	li r9, ` + itoa(gccTextLen) + `
	blt r1, r9, gidloop
gidins:
	addi r2, r2, 1
	; insert h into the open-addressing table (slot 0 means empty;
	; store h|1 so zero hashes stay distinguishable)
	ori r8, r8, 1
	andi r6, r8, ` + itoa(gccHashSize-1) + `
gprobe:
	addi r5, r5, 1
	slli r7, r6, 3
	add r7, r7, r13
	ld r9, [r7]
	beq r9, r8, glex   ; already present
	li r10, 0
	beq r9, r10, gput
	addi r6, r6, 1
	andi r6, r6, ` + itoa(gccHashSize-1) + `
	j gprobe
gput:
	sd [r7], r8
	j glex
gnumber:
	addi r3, r3, 1
gnumloop:
	add r6, r11, r1
	lbu r6, [r6]
	add r7, r12, r6
	lbu r7, [r7]
	li r9, ` + itoa(gccClsDigit) + `
	bne r7, r9, glex
	addi r1, r1, 1
	li r9, ` + itoa(gccTextLen) + `
	blt r1, r9, gnumloop
	j gdone
gop:
	addi r4, r4, 1
	addi r1, r1, 1
	j glex
gdone:
	; hash-table checksum
	li r8, 1
	li r6, 0
gchk:
	slli r7, r6, 3
	add r7, r7, r13
	ld r9, [r7]
	muli r8, r8, 31
	add r8, r8, r9
	addi r6, r6, 1
	li r9, ` + itoa(gccHashSize) + `
	blt r6, r9, gchk
	out r2
	out r3
	out r4
	out r5
	out r8
	halt
`
	return s
}

func gccRef() []uint64 {
	text := gccText()
	cls := gccClassTable()
	htab := make([]uint64, gccHashSize)
	var idents, numbers, ops, probes uint64
	pos := 0
	for pos < gccTextLen {
		c := text[pos]
		switch cls[c] {
		case gccClsAlpha:
			h := uint64(7)
			for pos < gccTextLen && (cls[text[pos]] == gccClsAlpha || cls[text[pos]] == gccClsDigit) {
				h = mix(h, uint64(text[pos]))
				pos++
			}
			idents++
			h |= 1
			slot := h & (gccHashSize - 1)
			for {
				probes++
				if htab[slot] == h {
					break
				}
				if htab[slot] == 0 {
					htab[slot] = h
					break
				}
				slot = (slot + 1) & (gccHashSize - 1)
			}
		case gccClsDigit:
			numbers++
			for pos < gccTextLen && cls[text[pos]] == gccClsDigit {
				pos++
			}
		case gccClsOp:
			ops++
			pos++
		default:
			pos++
		}
	}
	h := uint64(1)
	for _, v := range htab {
		h = mix(h, v)
	}
	return []uint64{idents, numbers, ops, probes, h}
}

var _ = register(&Workload{
	Name:        "gcc",
	Suite:       "spec",
	Description: "lexer + identifier hash table over 3KB of C-like text",
	source:      gccSource,
	ref:         gccRef,
})
