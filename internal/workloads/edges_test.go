package workloads

import (
	"reflect"
	"strings"
	"testing"

	"merlin/internal/asm"
)

// Degenerate-input audit: the reference models and the shared input/data
// helpers must be total over the edges nobody exercises in the shipped
// kernels — zero-length buffers, single elements, all-equal keys — so a
// future kernel reusing them at a different size cannot hit a panic the
// suite never saw.

func TestGenHelpersDegenerate(t *testing.T) {
	cases := []struct {
		name  string
		check func(t *testing.T)
	}{
		{"genBytes zero length", func(t *testing.T) {
			if got := genBytes(1, 0); len(got) != 0 {
				t.Fatalf("genBytes(1,0) = %v", got)
			}
		}},
		{"genBytes single", func(t *testing.T) {
			if got := genBytes(1, 1); len(got) != 1 {
				t.Fatalf("genBytes(1,1) = %v", got)
			}
		}},
		{"genWords zero length", func(t *testing.T) {
			if got := genWords(1, 0, 0); len(got) != 0 {
				t.Fatalf("genWords(1,0,0) = %v", got)
			}
		}},
		{"genWords limit one", func(t *testing.T) {
			for _, v := range genWords(7, 32, 1) {
				if v != 0 {
					t.Fatalf("limit 1 produced %d", v)
				}
			}
		}},
		{"genWords deterministic", func(t *testing.T) {
			if !reflect.DeepEqual(genWords(42, 8, 0), genWords(42, 8, 0)) {
				t.Fatal("genWords not deterministic")
			}
		}},
		{"mix identity chain", func(t *testing.T) {
			if mix(1, 0) != 31 || mix(0, 5) != 5 {
				t.Fatalf("mix = %d, %d", mix(1, 0), mix(0, 5))
			}
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { c.check(t) })
	}
}

// TestDataRenderersDegenerate: empty and single-element .byte/.word
// blocks must still assemble (a bare label is legal), and the rendered
// data must land byte-exact at the label.
func TestDataRenderersDegenerate(t *testing.T) {
	cases := []struct {
		name     string
		block    string
		wantData []byte
	}{
		{"empty byteData", byteData("d", nil), nil},
		{"empty wordData", wordData("d", nil), nil},
		{"single byteData", byteData("d", []byte{0xab}), []byte{0xab}},
		{"single wordData", wordData("d", []uint64{0x0102}), []byte{2, 1, 0, 0, 0, 0, 0, 0}},
		{"sign-boundary wordData", wordData("d", []uint64{^uint64(0)}),
			[]byte{255, 255, 255, 255, 255, 255, 255, 255}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			src := ".data\n" + c.block + ".text\n\thalt\n"
			prog, err := asm.Assemble("edge", src)
			if err != nil {
				t.Fatalf("assemble: %v\n%s", err, src)
			}
			if !reflect.DeepEqual(prog.Data, c.wantData) && len(prog.Data)+len(c.wantData) > 0 {
				t.Fatalf("data = %v, want %v", prog.Data, c.wantData)
			}
			if prog.Symbol("d") != int64(0x1000) {
				t.Fatalf("label at %#x", prog.Symbol("d"))
			}
		})
	}
}

// TestSortedSignatureDegenerate: the sorting-kernel signature helper over
// the edges a fixed-size kernel never sees.
func TestSortedSignatureDegenerate(t *testing.T) {
	cases := []struct {
		name string
		in   []uint64
		want []uint64
	}{
		{"empty", nil, []uint64{1, 0, 0}},
		{"single", []uint64{9}, []uint64{mix(1, 9), 9, 9}},
		{"two unsorted", []uint64{5, 3}, []uint64{mix(mix(1, 3), 5), 3, 5}},
		{"all equal", []uint64{7, 7, 7}, []uint64{mix(mix(mix(1, 7), 7), 7), 7, 7}},
		{"unsigned order", []uint64{^uint64(0), 0}, []uint64{mix(mix(1, 0), ^uint64(0)), 0, ^uint64(0)}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			in := append([]uint64(nil), c.in...)
			got := sortedSignature(in)
			if !reflect.DeepEqual(got, c.want) {
				t.Fatalf("sortedSignature(%v) = %v, want %v", c.in, got, c.want)
			}
			if !reflect.DeepEqual(in, c.in) && len(c.in) > 0 {
				t.Fatalf("input mutated: %v", in)
			}
		})
	}
}

// TestReferencesTotalAndDeterministic sweeps the whole registry: every
// reference model must return without panicking, produce a non-empty
// signature, and produce it bit-identically on a second call (reference
// models must not mutate shared state).
func TestReferencesTotalAndDeterministic(t *testing.T) {
	for _, name := range Names("") {
		t.Run(name, func(t *testing.T) {
			w := MustGet(name)
			first := func() (out []uint64) {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("reference model panicked: %v", r)
					}
				}()
				return w.Reference()
			}()
			if len(first) == 0 {
				t.Fatal("reference model returned an empty signature")
			}
			if again := w.Reference(); !reflect.DeepEqual(first, again) {
				t.Fatalf("reference model not idempotent:\n first %v\nsecond %v", first, again)
			}
			if !strings.Contains(w.Suite, "mibench") && !strings.Contains(w.Suite, "spec") {
				t.Fatalf("unknown suite %q", w.Suite)
			}
		})
	}
}
