package workloads

// qsort: MiBench automotive/qsort analogue — iterative quicksort with an
// explicit stack over 256 64-bit keys, followed by an order-sensitive
// checksum of the sorted array.

const qsortN = 256

func qsortInput() []uint64 { return genWords(0x9E3779B97F4A7C15, qsortN, 0) }

func qsortSource() string {
	s := "\t.data\n"
	s += wordData("arr", qsortInput())
	s += "stk:\t.space 4096\n"
	s += `	.text
	li r13, arr
	li r12, stk
	li r14, 0          ; constant zero
	; push (0, N-1)
	li r11, 0          ; stack top byte offset
	li r4, 0
	li r5, 255
	add r9, r12, r11
	sd [r9], r4
	sd [r9+8], r5
qloop:
	blt r11, r14, qdone
	add r9, r12, r11
	ld r4, [r9]        ; lo
	ld r5, [r9+8]      ; hi
	addi r11, r11, -16
	bge r4, r5, qloop
	; partition around pivot arr[hi]
	slli r9, r5, 3
	add r9, r9, r13
	ld r6, [r9]        ; pivot
	mv r7, r4          ; i = lo
	mv r8, r4          ; j = lo
qpart:
	bge r8, r5, qpdone
	slli r9, r8, 3
	add r9, r9, r13
	ld r10, [r9]       ; arr[j]
	bgeu r10, r6, qnoswap
	slli r2, r7, 3
	add r2, r2, r13
	ld r3, [r2]
	sd [r2], r10
	sd [r9], r3
	addi r7, r7, 1
qnoswap:
	addi r8, r8, 1
	j qpart
qpdone:
	; swap arr[i] <-> arr[hi]
	slli r2, r7, 3
	add r2, r2, r13
	slli r9, r5, 3
	add r9, r9, r13
	ld r3, [r2]
	ld r10, [r9]
	sd [r2], r10
	sd [r9], r3
	; push (lo, i-1) and (i+1, hi)
	addi r11, r11, 16
	add r3, r12, r11
	sd [r3], r4
	addi r2, r7, -1
	sd [r3+8], r2
	addi r11, r11, 16
	add r3, r12, r11
	addi r2, r7, 1
	sd [r3], r2
	sd [r3+8], r5
	j qloop
qdone:
	; checksum: h = h*31 + arr[k]
	li r1, 1
	li r2, 0
	li r3, 256
	li r5, arr
qchk:
	ld r4, [r5]
	muli r1, r1, 31
	add r1, r1, r4
	addi r5, r5, 8
	addi r2, r2, 1
	blt r2, r3, qchk
	out r1
	li r5, arr
	ld r4, [r5]
	out r4
	ld r4, [r5+2040]
	out r4
	halt
`
	return s
}

func qsortRef() []uint64 { return sortedSignature(qsortInput()) }

var _ = register(&Workload{
	Name:        "qsort",
	Suite:       "mibench",
	Description: "iterative quicksort of 256 64-bit keys + checksum",
	source:      qsortSource,
	ref:         qsortRef,
})
