package workloads

// omnetpp: SPEC 471.omnetpp analogue — a discrete-event simulator core: a
// binary min-heap future-event set, with each processed event scheduling
// pseudo-random follow-up events (the xorshift generator runs inside the
// simulated program).

const (
	omHeapCap = 64
	omEvents  = 2500
	omSeed    = 0x4F4D4E45545050
)

func omSource() string {
	s := "\t.data\n"
	s += "heap:\t.space " + itoa(omHeapCap*8) + "\n"
	s += `	.text
	li r11, heap
	li r12, 0          ; heap size
	li r13, ` + itoa(omSeed) + ` ; xorshift state
	li r0, 1           ; time checksum (r14 is the link register)
	li r10, 0          ; processed count
	; seed 8 initial events: key = (rng%1000)<<16 | id
	li r1, 0
oseed:
	call orand
	li r9, 1000
	rem r2, r2, r9
	slli r2, r2, 16
	or r2, r2, r1
	call opush
	addi r1, r1, 1
	li r9, 8
	blt r1, r9, oseed
oloop:
	li r9, 0
	ble r12, r9, odone ; heap empty
	li r9, ` + itoa(omEvents) + `
	bge r10, r9, odone
	call opop          ; min key in r2
	addi r10, r10, 1
	srli r3, r2, 16    ; event time
	muli r0, r0, 31
	add r0, r0, r2
	; schedule a follow-up: time += 1 + rng%50, id = processed & 0xffff
	mv r4, r3
	call orand
	li r9, 50
	rem r2, r2, r9
	add r4, r4, r2
	addi r4, r4, 1
	slli r2, r4, 16
	andi r5, r10, 0xffff
	or r2, r2, r5
	li r9, ` + itoa(omHeapCap) + `
	bge r12, r9, onopush
	call opush
onopush:
	; occasionally schedule a second event
	call orand
	andi r2, r2, 3
	li r9, 0
	bne r2, r9, oloop
	li r9, ` + itoa(omHeapCap) + `
	bge r12, r9, oloop
	addi r4, r4, 7
	slli r2, r4, 16
	andi r5, r10, 0xffff
	or r2, r2, r5
	ori r2, r2, 32768
	call opush
	j oloop
odone:
	out r10
	out r0
	out r12
	halt

orand:	; xorshift64 on r13 -> r2 (positive 31-bit draw)
	slli r2, r13, 13
	xor r13, r13, r2
	srli r2, r13, 7
	xor r13, r13, r2
	slli r2, r13, 17
	xor r13, r13, r2
	srli r2, r13, 33
	ret

opush:	; insert key r2 (clobbers r5-r9)
	mv r5, r12         ; hole index
	addi r12, r12, 1
opup:
	li r9, 0
	ble r5, r9, opin
	addi r6, r5, -1
	srli r6, r6, 1     ; parent
	slli r7, r6, 3
	add r7, r7, r11
	ld r8, [r7]
	bleu r8, r2, opin  ; parent <= key: done
	slli r9, r5, 3
	add r9, r9, r11
	sd [r9], r8
	mv r5, r6
	j opup
opin:
	slli r9, r5, 3
	add r9, r9, r11
	sd [r9], r2
	ret

opop:	; remove min into r2 (clobbers r3-r9)
	ld r2, [r11]
	addi r12, r12, -1
	slli r9, r12, 3
	add r9, r9, r11
	ld r3, [r9]        ; last element
	li r5, 0           ; hole
opdn:
	slli r6, r5, 1
	addi r6, r6, 1     ; left child
	bge r6, r12, opset
	addi r7, r6, 1     ; right child
	bge r7, r12, opleft
	slli r8, r6, 3
	add r8, r8, r11
	ld r8, [r8]
	slli r9, r7, 3
	add r9, r9, r11
	ld r9, [r9]
	bleu r8, r9, opleft
	mv r6, r7          ; right child smaller
opleft:
	slli r8, r6, 3
	add r8, r8, r11
	ld r8, [r8]
	bleu r3, r8, opset ; last <= child: done
	slli r9, r5, 3
	add r9, r9, r11
	sd [r9], r8
	mv r5, r6
	j opdn
opset:
	slli r9, r5, 3
	add r9, r9, r11
	sd [r9], r3
	ret
`
	return s
}

func omRef() []uint64 {
	var heap []uint64
	push := func(k uint64) {
		heap = append(heap, 0)
		i := len(heap) - 1
		for i > 0 {
			p := (i - 1) / 2
			if heap[p] <= k {
				break
			}
			heap[i] = heap[p]
			i = p
		}
		heap[i] = k
	}
	pop := func() uint64 {
		top := heap[0]
		last := heap[len(heap)-1]
		heap = heap[:len(heap)-1]
		n := len(heap)
		i := 0
		for {
			c := 2*i + 1
			if c >= n {
				break
			}
			if c+1 < n && heap[c+1] < heap[c] {
				c++
			}
			if last <= heap[c] {
				break
			}
			heap[i] = heap[c]
			i = c
		}
		if n > 0 {
			heap[i] = last
		}
		return top
	}
	state := uint64(omSeed)
	rng := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state >> 33
	}
	for i := uint64(0); i < 8; i++ {
		push((rng()%1000)<<16 | i)
	}
	h := uint64(1)
	processed := uint64(0)
	for len(heap) > 0 && processed < omEvents {
		k := pop()
		processed++
		h = mix(h, k)
		t := k >> 16
		t += rng()%50 + 1
		if len(heap) < omHeapCap {
			push(t<<16 | (processed & 0xffff))
		}
		if rng()&3 == 0 && len(heap) < omHeapCap {
			push((t+7)<<16 | (processed & 0xffff) | 32768)
		}
	}
	return []uint64{processed, h, uint64(len(heap))}
}

var _ = register(&Workload{
	Name:        "omnetpp",
	Suite:       "spec",
	Description: "binary-heap discrete-event simulation of 2500 events",
	source:      omSource,
	ref:         omRef,
})
