// Package workloads provides the benchmark programs of the evaluation: ten
// MiBench-like kernels (run to completion, §4.3) and ten SPEC CPU2006-like
// kernels (used for the speedup study of Fig 12 and the truncated-run
// accuracy of Table 4), each written in µx64 assembly with deterministic
// baked-in inputs and paired with a pure-Go reference model that predicts
// the exact committed output stream. The reference models double as
// end-to-end correctness oracles for the simulator.
package workloads

import (
	"fmt"
	"sort"
	"sync"

	"merlin/internal/asm"
	"merlin/internal/cpu"
	"merlin/internal/isa"
)

// Workload is one benchmark kernel.
type Workload struct {
	Name        string
	Suite       string // "mibench" or "spec"
	Description string

	source func() string   // generates the assembly (inputs baked in)
	ref    func() []uint64 // pure-Go model of the expected output

	once sync.Once
	prog *isa.Program
}

// Program assembles the workload (cached; workload sources are static).
func (w *Workload) Program() *isa.Program {
	w.once.Do(func() {
		w.prog = asm.MustAssemble(w.Name, w.source())
	})
	return w.prog
}

// Reference returns the expected committed output stream.
func (w *Workload) Reference() []uint64 { return w.ref() }

// NewCore builds a fresh core running this workload.
func (w *Workload) NewCore(cfg cpu.Config) *cpu.Core {
	return cpu.New(cfg, w.Program())
}

var registry = map[string]*Workload{}

func register(w *Workload) *Workload {
	if _, dup := registry[w.Name]; dup {
		panic("workloads: duplicate " + w.Name)
	}
	//lint:allow globmut001 package-init-time registration only (called from package-level var initializers); the registry is read-only after init
	registry[w.Name] = w
	return w
}

// Get returns a workload by name.
func Get(name string) (*Workload, error) {
	w, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown workload %q (have %v)", name, Names(""))
	}
	return w, nil
}

// MustGet is Get for known-constant names.
func MustGet(name string) *Workload {
	w, err := Get(name)
	if err != nil {
		panic(err)
	}
	return w
}

// Names lists registered workloads for a suite ("" = all), sorted.
func Names(suite string) []string {
	var out []string
	for n, w := range registry {
		if suite == "" || w.Suite == suite {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// MiBench returns the ten MiBench-like workloads in the paper's order.
func MiBench() []*Workload {
	names := []string{"susan_c", "susan_s", "susan_e", "stringsearch", "djpeg",
		"sha", "fft", "qsort", "cjpeg", "caes"}
	out := make([]*Workload, len(names))
	for i, n := range names {
		out[i] = MustGet(n)
	}
	return out
}

// SPEC returns the ten SPEC-like workloads in the paper's order.
func SPEC() []*Workload {
	names := []string{"bzip2", "gcc", "mcf", "gobmk", "hmmer",
		"sjeng", "libquantum", "h264ref", "omnetpp", "astar"}
	out := make([]*Workload, len(names))
	for i, n := range names {
		out[i] = MustGet(n)
	}
	return out
}

// --- input generation helpers (shared by sources and reference models) ---

// xorshift64 is the deterministic input generator; sources bake its output
// into .data sections and reference models regenerate the identical bytes.
func xorshift64(seed uint64) func() uint64 {
	s := seed
	return func() uint64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return s
	}
}

// genBytes produces n pseudo-random bytes from seed.
func genBytes(seed uint64, n int) []byte {
	rng := xorshift64(seed)
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(rng() >> 33)
	}
	return out
}

// genWords produces n pseudo-random 64-bit words from seed, bounded below
// limit when limit > 0.
func genWords(seed uint64, n int, limit uint64) []uint64 {
	rng := xorshift64(seed)
	out := make([]uint64, n)
	for i := range out {
		v := rng()
		if limit > 0 {
			v %= limit
		}
		out[i] = v
	}
	return out
}

// byteData renders a labelled .byte block.
func byteData(label string, vals []byte) string {
	s := label + ":\n"
	for i := 0; i < len(vals); i += 16 {
		end := min(i+16, len(vals))
		s += "\t.byte "
		for j := i; j < end; j++ {
			if j > i {
				s += ", "
			}
			s += fmt.Sprintf("%d", vals[j])
		}
		s += "\n"
	}
	return s
}

// wordData renders a labelled .word block.
func wordData(label string, vals []uint64) string {
	s := label + ":\n"
	for i := 0; i < len(vals); i += 4 {
		end := min(i+4, len(vals))
		s += "\t.word "
		for j := i; j < end; j++ {
			if j > i {
				s += ", "
			}
			s += fmt.Sprintf("%d", int64(vals[j]))
		}
		s += "\n"
	}
	return s
}

// mix is the order-sensitive checksum used by the kernels' output stages:
// h = h*31 + x. The assembly computes it with muli.
func mix(h, x uint64) uint64 { return h*31 + x }

// sortedSignature sorts a copy of vals ascending and returns the output
// signature sorting kernels emit: the mix-checksum over the sorted order,
// then the minimum and maximum element. Degenerate inputs are defined,
// not panics: an empty slice yields zero min/max, a single element is its
// own min and max.
func sortedSignature(vals []uint64) []uint64 {
	a := append([]uint64(nil), vals...)
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	h := uint64(1)
	for _, v := range a {
		h = mix(h, v)
	}
	var lo, hi uint64
	if len(a) > 0 {
		lo, hi = a[0], a[len(a)-1]
	}
	return []uint64{h, lo, hi}
}

// itoa renders a constant for splicing into assembly sources.
func itoa(v int) string { return fmt.Sprintf("%d", v) }
