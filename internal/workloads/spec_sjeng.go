package workloads

// sjeng: SPEC 458.sjeng analogue — recursive negamax alpha-beta search
// over a synthetic game tree (depth 6, branching 4) whose leaf values are
// a deterministic hash of the move path. Exercises deep call/return
// recursion through the simulated stack.

const (
	sjengDepth  = 6
	sjengBranch = 4
	sjengSeed   = 12345
	sjengNegInf = -100000000
)

func sjengSource() string {
	return `	.text
	li r13, 0          ; node counter
	li r1, ` + itoa(sjengDepth) + `
	li r3, ` + itoa(sjengNegInf) + `
	li r4, ` + itoa(-sjengNegInf) + `
	li r5, ` + itoa(sjengSeed) + `
	call nega
	out r2
	out r13
	halt

nega:	; r1=depth r3=alpha r4=beta r5=path-hash -> r2=score
	addi r13, r13, 1
	li r9, 0
	bgt r1, r9, nrec
	; leaf evaluation: Fibonacci-hash the path
	li r9, 2654435761
	mul r2, r5, r9
	srli r2, r2, 20
	andi r2, r2, 0xffff
	li r9, 32768
	sub r2, r2, r9
	ret
nrec:
	addi sp, sp, -56
	sd [sp], lr
	sd [sp+8], r1
	sd [sp+16], r3
	sd [sp+24], r4
	sd [sp+32], r5
	li r9, ` + itoa(sjengNegInf) + `
	sd [sp+40], r9     ; best
	li r9, 0
	sd [sp+48], r9     ; move index
nloop:
	; child hash = h*31 + m + 1
	ld r5, [sp+32]
	muli r5, r5, 31
	ld r9, [sp+48]
	add r5, r5, r9
	addi r5, r5, 1
	; recurse with (depth-1, -beta, -alpha)
	ld r1, [sp+8]
	addi r1, r1, -1
	li r9, 0
	ld r3, [sp+24]
	sub r10, r9, r3
	ld r4, [sp+16]
	sub r4, r9, r4
	mv r3, r10
	call nega
	li r9, 0
	sub r2, r9, r2     ; v = -child
	ld r9, [sp+40]
	ble r2, r9, nb1
	sd [sp+40], r2
	mv r9, r2
nb1:	; alpha = max(alpha, best)
	ld r10, [sp+16]
	ble r9, r10, nb2
	sd [sp+16], r9
	mv r10, r9
nb2:	; beta cutoff
	ld r11, [sp+24]
	bge r10, r11, ncut
	ld r9, [sp+48]
	addi r9, r9, 1
	sd [sp+48], r9
	li r10, ` + itoa(sjengBranch) + `
	blt r9, r10, nloop
ncut:
	ld r2, [sp+40]
	ld lr, [sp]
	addi sp, sp, 56
	ret
`
}

func sjengRef() []uint64 {
	var nodes uint64
	var nega func(depth int, alpha, beta, h int64) int64
	nega = func(depth int, alpha, beta, h int64) int64 {
		nodes++
		if depth <= 0 {
			v := uint64(h) * 2654435761
			return int64((v>>20)&0xffff) - 32768
		}
		best := int64(sjengNegInf)
		for m := int64(0); m < sjengBranch; m++ {
			child := h*31 + m + 1
			v := -nega(depth-1, -beta, -alpha, child)
			if v > best {
				best = v
			}
			if best > alpha {
				alpha = best
			}
			if alpha >= beta {
				break
			}
		}
		return best
	}
	score := nega(sjengDepth, sjengNegInf, -sjengNegInf, sjengSeed)
	return []uint64{uint64(score), nodes}
}

var _ = register(&Workload{
	Name:        "sjeng",
	Suite:       "spec",
	Description: "negamax alpha-beta over a synthetic depth-6 game tree",
	source:      sjengSource,
	ref:         sjengRef,
})
