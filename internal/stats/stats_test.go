package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeansIdentical(t *testing.T) {
	// E(k) == E(k_MeRLiN) is exact for any group structure: verify by
	// construction over random campaigns.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		c := Campaign{F: 60000, Sizes: make([]int, n), Ps: make([]float64, n)}
		for i := range c.Sizes {
			c.Sizes[i] = 1 + rng.Intn(100)
			c.Ps[i] = rng.Float64()
		}
		// Monte-Carlo check of the MeRLiN estimator's mean: pick one rep
		// per group; estimate = sum(s_i * r_i)/F with r_i ~ Bern(p_i).
		const trials = 20000
		var acc float64
		for tr := 0; tr < trials; tr++ {
			var k float64
			for i := range c.Sizes {
				if rng.Float64() < c.Ps[i] {
					k += float64(c.Sizes[i])
				}
			}
			acc += k / float64(c.F)
		}
		mc := acc / trials
		return math.Abs(mc-c.Mean()) < 0.01*c.Mean()+1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestVarianceOrdering(t *testing.T) {
	// Var(k_MeRLiN) >= Var(k) always (s_i^2 >= s_i), with equality iff all
	// groups have size 1 or p in {0,1}.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		c := Campaign{F: 60000, Sizes: make([]int, n), Ps: make([]float64, n)}
		for i := range c.Sizes {
			c.Sizes[i] = 1 + rng.Intn(100)
			c.Ps[i] = rng.Float64()
		}
		return c.VarMerlin() >= c.VarBaseline()-1e-18
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}

	allOnes := Campaign{F: 100, Sizes: []int{1, 1, 1}, Ps: []float64{0.3, 0.6, 0.9}}
	if math.Abs(allOnes.VarMerlin()-allOnes.VarBaseline()) > 1e-18 {
		t.Error("size-1 groups must have equal variances")
	}
}

func TestHomogeneousGroupsZeroVariance(t *testing.T) {
	c := Campaign{F: 60000, Sizes: []int{40, 80, 20}, Ps: []float64{0, 1, 1}}
	if c.VarBaseline() != 0 || c.VarMerlin() != 0 {
		t.Error("perfectly homogeneous groups must have zero variance")
	}
	if got := c.Mean(); math.Abs(got-100.0/60000) > 1e-12 {
		t.Errorf("mean = %v", got)
	}
}

func TestPaperMagnitudes(t *testing.T) {
	// §4.4.5: with F = 60K, group sizes 5-40 (avg < 100), and near-
	// homogeneous groups, Var(k) is 8-10 orders below the mean and
	// Var(k_MeRLiN) 6-8 orders below.
	rng := rand.New(rand.NewSource(1))
	var c Campaign
	c.F = 60000
	remaining := 4000 // post-ACE faults
	for remaining > 0 {
		s := 5 + rng.Intn(36)
		if s > remaining {
			s = remaining
		}
		remaining -= s
		// Homogeneity ~0.97: p_i near 0 or 1 with small noise.
		p := 0.03 * rng.Float64()
		if rng.Float64() < 0.3 {
			p = 1 - 0.03*rng.Float64()
		}
		c.Sizes = append(c.Sizes, s)
		c.Ps = append(c.Ps, p)
	}
	r := c.Analyze()
	if r.OrdersBaseline < 6 || r.OrdersBaseline > 12 {
		t.Errorf("baseline variance orders below mean = %v, want ~8-10", r.OrdersBaseline)
	}
	if r.OrdersMerlin < 4 || r.OrdersMerlin > 10 {
		t.Errorf("MeRLiN variance orders below mean = %v, want ~6-8", r.OrdersMerlin)
	}
	if r.OrdersMerlin > r.OrdersBaseline {
		t.Error("MeRLiN variance must not be smaller than baseline variance")
	}
}

func TestFromObserved(t *testing.T) {
	c := FromObserved(1000, []int{10, 20}, []int{10, 0})
	if c.Ps[0] != 1 || c.Ps[1] != 0 {
		t.Errorf("ps = %v", c.Ps)
	}
	if got := c.Mean(); math.Abs(got-0.01) > 1e-12 {
		t.Errorf("mean = %v", got)
	}
}

// TestCampaignValidate: malformed campaigns are named explicitly instead
// of surfacing as NaN means or index panics.
func TestCampaignValidate(t *testing.T) {
	cases := []struct {
		name    string
		c       Campaign
		wantErr bool
	}{
		{"well-formed", Campaign{F: 100, Sizes: []int{10, 20}, Ps: []float64{0, 1}}, false},
		{"empty groups", Campaign{F: 100}, false},
		{"zero faults", Campaign{F: 0, Sizes: []int{10}, Ps: []float64{0.5}}, true},
		{"negative faults", Campaign{F: -5, Sizes: []int{10}, Ps: []float64{0.5}}, true},
		{"length mismatch", Campaign{F: 100, Sizes: []int{10, 20}, Ps: []float64{0.5}}, true},
		{"negative size", Campaign{F: 100, Sizes: []int{-1}, Ps: []float64{0.5}}, true},
		{"probability above one", Campaign{F: 100, Sizes: []int{10}, Ps: []float64{1.5}}, true},
		{"negative probability", Campaign{F: 100, Sizes: []int{10}, Ps: []float64{-0.1}}, true},
		{"NaN probability", Campaign{F: 100, Sizes: []int{10}, Ps: []float64{math.NaN()}}, true},
		{"groups exceed list", Campaign{F: 25, Sizes: []int{20, 10}, Ps: []float64{0.5, 0.5}}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.c.Validate()
			if (err != nil) != tc.wantErr {
				t.Fatalf("Validate() = %v, wantErr %v", err, tc.wantErr)
			}
		})
	}
}

// TestDegenerateCampaignsYieldZero: the moment accessors are total
// functions — a campaign Validate rejects contributes 0, never NaN, ±Inf
// or an index panic.
func TestDegenerateCampaignsYieldZero(t *testing.T) {
	cases := []struct {
		name string
		c    Campaign
	}{
		{"zero faults", Campaign{F: 0, Sizes: []int{10, 20}, Ps: []float64{0.5, 0.5}}},
		{"length mismatch long sizes", Campaign{F: 100, Sizes: []int{10, 20, 30}, Ps: []float64{0.5}}},
		{"length mismatch long ps", Campaign{F: 100, Sizes: []int{10}, Ps: []float64{0.5, 0.5, 0.5}}},
		{"zero value", Campaign{}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for name, got := range map[string]float64{
				"Mean":        tc.c.Mean(),
				"VarBaseline": tc.c.VarBaseline(),
				"VarMerlin":   tc.c.VarMerlin(),
			} {
				if got != 0 || math.IsNaN(got) {
					t.Fatalf("%s = %v on a degenerate campaign, want 0", name, got)
				}
			}
			r := tc.c.Analyze()
			if r.Mean != 0 || r.VarBaseline != 0 || r.VarMerlin != 0 {
				t.Fatalf("Analyze on a degenerate campaign = %+v, want zeros", r)
			}
		})
	}
}
