// Package stats implements the theoretical analysis of paper §4.4.5: a
// fault-injection campaign as a binomial experiment, and the mean/variance
// of the AVF measured by the comprehensive campaign (k) versus MeRLiN's
// group-extrapolated measurement (k_MeRLiN).
//
// With n groups of sizes s_i, per-group non-masking probability p_i and
// F total faults (Σ s_i = (1-m)F after pruning the m·F guaranteed-masked):
//
//	E(k)          = Σ s_i p_i / F
//	E(k_MeRLiN)   = Σ s_i p_i / F            (identical means)
//	Var(k)        = Σ s_i p_i (1-p_i) / F²
//	Var(k_MeRLiN) = Σ s_i² p_i (1-p_i) / F²  (inflated by group sizes)
//
// Both variances are negligible when groups are homogeneous (p_i near 0 or
// 1) and small relative to F, which §4.4.1 establishes empirically.
package stats

import "math"

// Campaign describes the grouped structure of a fault campaign.
type Campaign struct {
	F     int       // total faults in the initial statistical list
	Sizes []int     // group sizes s_i (pruned faults form no group)
	Ps    []float64 // per-group probability of non-masking p_i
}

// Mean returns E(k) = E(k_MeRLiN).
func (c Campaign) Mean() float64 {
	var sum float64
	for i, s := range c.Sizes {
		sum += float64(s) * c.Ps[i]
	}
	return sum / float64(c.F)
}

// VarBaseline returns Var(k) of the comprehensive campaign.
func (c Campaign) VarBaseline() float64 {
	var sum float64
	for i, s := range c.Sizes {
		sum += float64(s) * c.Ps[i] * (1 - c.Ps[i])
	}
	return sum / (float64(c.F) * float64(c.F))
}

// VarMerlin returns Var(k_MeRLiN) of the one-representative-per-group
// measurement.
func (c Campaign) VarMerlin() float64 {
	var sum float64
	for i, s := range c.Sizes {
		sum += float64(s) * float64(s) * c.Ps[i] * (1 - c.Ps[i])
	}
	return sum / (float64(c.F) * float64(c.F))
}

// Report summarises the statistical equivalence argument.
type Report struct {
	Mean        float64
	VarBaseline float64
	VarMerlin   float64
	// Orders of magnitude separating each variance from the mean
	// (log10(mean/stddev^2) is what the paper argues is 8-10 for the
	// baseline and 6-8 for MeRLiN).
	OrdersBaseline float64
	OrdersMerlin   float64
}

// Analyze builds the report.
func (c Campaign) Analyze() Report {
	r := Report{
		Mean:        c.Mean(),
		VarBaseline: c.VarBaseline(),
		VarMerlin:   c.VarMerlin(),
	}
	if r.VarBaseline > 0 && r.Mean > 0 {
		r.OrdersBaseline = math.Log10(r.Mean / r.VarBaseline)
	}
	if r.VarMerlin > 0 && r.Mean > 0 {
		r.OrdersMerlin = math.Log10(r.Mean / r.VarMerlin)
	}
	return r
}

// FromObserved builds a Campaign from observed group sizes and per-group
// non-masked counts (empirical p_i), e.g. out of a homogeneity experiment.
func FromObserved(f int, sizes, nonMasked []int) Campaign {
	ps := make([]float64, len(sizes))
	for i := range sizes {
		if sizes[i] > 0 {
			ps[i] = float64(nonMasked[i]) / float64(sizes[i])
		}
	}
	return Campaign{F: f, Sizes: sizes, Ps: ps}
}
