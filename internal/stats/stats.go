// Package stats implements the theoretical analysis of paper §4.4.5: a
// fault-injection campaign as a binomial experiment, and the mean/variance
// of the AVF measured by the comprehensive campaign (k) versus MeRLiN's
// group-extrapolated measurement (k_MeRLiN).
//
// With n groups of sizes s_i, per-group non-masking probability p_i and
// F total faults (Σ s_i = (1-m)F after pruning the m·F guaranteed-masked):
//
//	E(k)          = Σ s_i p_i / F
//	E(k_MeRLiN)   = Σ s_i p_i / F            (identical means)
//	Var(k)        = Σ s_i p_i (1-p_i) / F²
//	Var(k_MeRLiN) = Σ s_i² p_i (1-p_i) / F²  (inflated by group sizes)
//
// Both variances are negligible when groups are homogeneous (p_i near 0 or
// 1) and small relative to F, which §4.4.1 establishes empirically.
package stats

import (
	"fmt"
	"math"
)

// Campaign describes the grouped structure of a fault campaign.
type Campaign struct {
	F     int       // total faults in the initial statistical list
	Sizes []int     // group sizes s_i (pruned faults form no group)
	Ps    []float64 // per-group probability of non-masking p_i
}

// Validate reports whether the campaign describes a well-formed binomial
// experiment: a positive fault total, one probability per group, and every
// (size, probability) pair inside its domain. Mean, VarBaseline and
// VarMerlin return 0 for any campaign Validate rejects — callers that need
// to distinguish "zero variance" from "malformed input" (the CLI, the
// daemon's batch aggregation) must call Validate first.
func (c Campaign) Validate() error {
	if c.F <= 0 {
		return fmt.Errorf("stats: campaign F is %d; want > 0 faults", c.F)
	}
	if len(c.Sizes) != len(c.Ps) {
		return fmt.Errorf("stats: campaign has %d group sizes but %d probabilities", len(c.Sizes), len(c.Ps))
	}
	total := 0
	for i, s := range c.Sizes {
		if s < 0 {
			return fmt.Errorf("stats: group %d has negative size %d", i, s)
		}
		total += s
		if p := c.Ps[i]; math.IsNaN(p) || p < 0 || p > 1 {
			return fmt.Errorf("stats: group %d has probability %v outside [0, 1]", i, c.Ps[i])
		}
	}
	if total > c.F {
		return fmt.Errorf("stats: group sizes sum to %d, exceeding the %d-fault list they partition", total, c.F)
	}
	return nil
}

// wellFormed is the internal guard shared by the moment accessors: a
// campaign Validate rejects contributes 0 instead of NaN/±Inf (F == 0) or
// an index panic (len(Sizes) != len(Ps)).
func (c Campaign) wellFormed() bool { return c.Validate() == nil }

// Mean returns E(k) = E(k_MeRLiN), or 0 for a campaign Validate rejects.
func (c Campaign) Mean() float64 {
	if !c.wellFormed() {
		return 0
	}
	var sum float64
	for i, s := range c.Sizes {
		sum += float64(s) * c.Ps[i]
	}
	return sum / float64(c.F)
}

// VarBaseline returns Var(k) of the comprehensive campaign, or 0 for a
// campaign Validate rejects.
func (c Campaign) VarBaseline() float64 {
	if !c.wellFormed() {
		return 0
	}
	var sum float64
	for i, s := range c.Sizes {
		sum += float64(s) * c.Ps[i] * (1 - c.Ps[i])
	}
	return sum / (float64(c.F) * float64(c.F))
}

// VarMerlin returns Var(k_MeRLiN) of the one-representative-per-group
// measurement, or 0 for a campaign Validate rejects.
func (c Campaign) VarMerlin() float64 {
	if !c.wellFormed() {
		return 0
	}
	var sum float64
	for i, s := range c.Sizes {
		sum += float64(s) * float64(s) * c.Ps[i] * (1 - c.Ps[i])
	}
	return sum / (float64(c.F) * float64(c.F))
}

// Report summarises the statistical equivalence argument.
type Report struct {
	Mean        float64
	VarBaseline float64
	VarMerlin   float64
	// Orders of magnitude separating each variance from the mean
	// (log10(mean/stddev^2) is what the paper argues is 8-10 for the
	// baseline and 6-8 for MeRLiN).
	OrdersBaseline float64
	OrdersMerlin   float64
}

// Analyze builds the report.
func (c Campaign) Analyze() Report {
	r := Report{
		Mean:        c.Mean(),
		VarBaseline: c.VarBaseline(),
		VarMerlin:   c.VarMerlin(),
	}
	if r.VarBaseline > 0 && r.Mean > 0 {
		r.OrdersBaseline = math.Log10(r.Mean / r.VarBaseline)
	}
	if r.VarMerlin > 0 && r.Mean > 0 {
		r.OrdersMerlin = math.Log10(r.Mean / r.VarMerlin)
	}
	return r
}

// FromObserved builds a Campaign from observed group sizes and per-group
// non-masked counts (empirical p_i), e.g. out of a homogeneity experiment.
func FromObserved(f int, sizes, nonMasked []int) Campaign {
	ps := make([]float64, len(sizes))
	for i := range sizes {
		if sizes[i] > 0 {
			ps[i] = float64(nonMasked[i]) / float64(sizes[i])
		}
	}
	return Campaign{F: f, Sizes: sizes, Ps: ps}
}
