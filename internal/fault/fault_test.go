package fault

import (
	"testing"

	"merlin/internal/lifetime"
)

func TestBits(t *testing.T) {
	for _, tt := range []struct {
		width uint8
		want  int
	}{{0, 1}, {1, 1}, {2, 2}, {8, 8}} {
		if got := (Fault{Width: tt.width}).Bits(); got != tt.want {
			t.Errorf("Width %d: Bits() = %d, want %d", tt.width, got, tt.want)
		}
	}
}

func TestByte(t *testing.T) {
	for _, tt := range []struct {
		bit  int32
		want int
	}{{0, 0}, {7, 0}, {8, 1}, {63, 7}, {511, 63}} {
		if got := (Fault{Bit: tt.bit}).Byte(); got != tt.want {
			t.Errorf("Bit %d: Byte() = %d, want %d", tt.bit, got, tt.want)
		}
	}
}

func TestString(t *testing.T) {
	single := Fault{Structure: lifetime.StructRF, Entry: 3, Bit: 5, Cycle: 77}
	if got, want := single.String(), "RF[3] bit 5 @ cycle 77"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	multi := Fault{Structure: lifetime.StructSQ, Entry: 1, Bit: 6, Cycle: 9, Width: 3}
	if got, want := multi.String(), "SQ[1] bits 6..8 @ cycle 9"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestEqual(t *testing.T) {
	base := Fault{Structure: lifetime.StructRF, Entry: 2, Bit: 4, Cycle: 10}
	w1 := base
	w1.Width = 1
	if !Equal(base, w1) {
		t.Error("Width 0 and Width 1 encode the same single-bit fault")
	}
	for _, other := range []Fault{
		{Structure: lifetime.StructSQ, Entry: 2, Bit: 4, Cycle: 10},
		{Structure: lifetime.StructRF, Entry: 3, Bit: 4, Cycle: 10},
		{Structure: lifetime.StructRF, Entry: 2, Bit: 5, Cycle: 10},
		{Structure: lifetime.StructRF, Entry: 2, Bit: 4, Cycle: 11},
		{Structure: lifetime.StructRF, Entry: 2, Bit: 4, Cycle: 10, Width: 2},
	} {
		if Equal(base, other) {
			t.Errorf("Equal(%v, %v) = true", base, other)
		}
	}
}

func TestLessIsStrictWeakOrder(t *testing.T) {
	faults := []Fault{
		{Structure: lifetime.StructRF, Entry: 0, Bit: 0, Cycle: 5},
		{Structure: lifetime.StructRF, Entry: 0, Bit: 0, Cycle: 2},
		{Structure: lifetime.StructSQ, Entry: 0, Bit: 0, Cycle: 2},
		{Structure: lifetime.StructRF, Entry: 1, Bit: 0, Cycle: 2},
		{Structure: lifetime.StructRF, Entry: 0, Bit: 3, Cycle: 2},
		{Structure: lifetime.StructRF, Entry: 0, Bit: 0, Cycle: 2, Width: 2},
	}
	for _, a := range faults {
		if Less(a, a) {
			t.Errorf("Less(%v, %v) must be false", a, a)
		}
		for _, b := range faults {
			if Less(a, b) && Less(b, a) {
				t.Errorf("Less is not antisymmetric for %v, %v", a, b)
			}
			if !Equal(a, b) && !Less(a, b) && !Less(b, a) {
				t.Errorf("distinct faults %v, %v are unordered", a, b)
			}
		}
	}
}

func TestSortedIndices(t *testing.T) {
	faults := []Fault{
		{Structure: lifetime.StructRF, Entry: 9, Bit: 1, Cycle: 40},
		{Structure: lifetime.StructRF, Entry: 2, Bit: 3, Cycle: 7},
		{Structure: lifetime.StructRF, Entry: 5, Bit: 2, Cycle: 40},
		{Structure: lifetime.StructRF, Entry: 2, Bit: 3, Cycle: 0},
		{Structure: lifetime.StructRF, Entry: 2, Bit: 3, Cycle: 7},
	}
	orig := append([]Fault(nil), faults...)
	order := SortedIndices(faults)
	if len(order) != len(faults) {
		t.Fatalf("got %d indices for %d faults", len(order), len(faults))
	}
	for i := range faults {
		if faults[i] != orig[i] {
			t.Fatal("SortedIndices mutated the fault list")
		}
	}
	for i := 1; i < len(order); i++ {
		if Less(faults[order[i]], faults[order[i-1]]) {
			t.Errorf("order[%d]=%v precedes order[%d]=%v", i-1, faults[order[i-1]], i, faults[order[i]])
		}
	}
	// Faults 1 and 4 are identical; the stable sort must keep their
	// original relative order so campaigns stay deterministic.
	var identical []int
	for pos, idx := range order {
		if idx == 1 || idx == 4 {
			identical = append(identical, pos)
		}
	}
	if order[identical[0]] != 1 || order[identical[1]] != 4 {
		t.Error("identical faults must keep their original relative order")
	}
}
