// Package fault defines the transient-fault model: a single bit flip in a
// physical storage location (register, store-queue slot, or cache line) at
// a specific execution cycle, matching the GeFIN injector the paper builds
// on.
package fault

import (
	"fmt"
	"sort"

	"merlin/internal/lifetime"
)

// Fault is one transient fault: a flip of Width adjacent bits (Width 0 or
// 1 means the paper's single-bit model; larger widths model multi-bit
// upsets from a single strike, the extension studied by e.g. MACAU [20]).
type Fault struct {
	Structure lifetime.StructureID
	Entry     int32  // physical slot index within the structure
	Bit       int32  // first flipped bit within the entry (0 .. entryBits-1)
	Cycle     uint64 // flip applied at the start of this cycle
	Width     uint8  // number of adjacent bits flipped; 0 means 1
}

// Bits returns the number of flipped bits (at least 1).
func (f Fault) Bits() int {
	if f.Width <= 1 {
		return 1
	}
	return int(f.Width)
}

// Byte returns the byte position of the flipped bit within its entry — the
// sub-grouping key of MeRLiN's second step (§3.2.2).
func (f Fault) Byte() int { return int(f.Bit) / 8 }

// String formats the fault for logs.
func (f Fault) String() string {
	if f.Bits() > 1 {
		return fmt.Sprintf("%s[%d] bits %d..%d @ cycle %d", f.Structure, f.Entry, f.Bit, int(f.Bit)+f.Bits()-1, f.Cycle)
	}
	return fmt.Sprintf("%s[%d] bit %d @ cycle %d", f.Structure, f.Entry, f.Bit, f.Cycle)
}

// Equal reports whether two faults denote the identical flip. Width 0 and
// Width 1 both encode the single-bit model, so they compare equal.
func Equal(a, b Fault) bool {
	if a.Bits() != b.Bits() {
		return false
	}
	a.Width, b.Width = 0, 0
	return a == b
}

// Less orders faults by injection cycle, breaking ties by structure, entry,
// bit and width so any sort over faults is fully deterministic.
func Less(a, b Fault) bool {
	switch {
	case a.Cycle != b.Cycle:
		return a.Cycle < b.Cycle
	case a.Structure != b.Structure:
		return a.Structure < b.Structure
	case a.Entry != b.Entry:
		return a.Entry < b.Entry
	case a.Bit != b.Bit:
		return a.Bit < b.Bit
	default:
		return a.Bits() < b.Bits()
	}
}

// SortedIndices returns the indices of faults in ascending Less order,
// leaving the slice itself untouched: campaign outcomes are indexed by the
// original fault order, so schedulers that sweep in cycle order (the
// fork-on-fault scheduler) reorder indices, never the list.
func SortedIndices(faults []Fault) []int {
	order := make([]int, len(faults))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return Less(faults[order[i]], faults[order[j]])
	})
	return order
}
