package sampling

import (
	"math"
	"testing"
	"testing/quick"

	"merlin/internal/lifetime"
)

func TestZScore(t *testing.T) {
	tests := []struct {
		conf float64
		want float64
	}{
		{0.95, 1.95996},
		{0.99, 2.57583},
		{0.998, 3.09023},
	}
	for _, tt := range tests {
		if got := zScore(tt.conf); math.Abs(got-tt.want) > 1e-3 {
			t.Errorf("zScore(%v) = %v, want %v", tt.conf, got, tt.want)
		}
	}
}

func TestPaperSampleSizes(t *testing.T) {
	// §3.1.2: a 256-entry 64-bit register file over 100M cycles needs
	// ~2,000 faults at (99%, 2.88%) and ~60,000 at (99.8%, 0.63%).
	pop := Population(256, 64, 100_000_000)

	n1 := Params{Confidence: 0.99, ErrorMargin: 0.0288}.SampleSize(pop)
	if n1 < 1900 || n1 > 2100 {
		t.Errorf("(99%%, 2.88%%) sample = %d, want ~2000", n1)
	}
	n2 := Baseline.SampleSize(pop)
	if n2 < 59000 || n2 > 61500 {
		t.Errorf("(99.8%%, 0.63%%) sample = %d, want ~60000", n2)
	}
	n3 := Scaled.SampleSize(pop)
	if n3 < 590000 || n3 > 670000 {
		t.Errorf("(99.8%%, 0.19%%) sample = %d, want ~600000+", n3)
	}
	// For large populations the sample size is population-insensitive
	// (the paper's observation that margin and confidence dominate).
	n4 := Baseline.SampleSize(Population(64, 64, 1_000_000))
	if math.Abs(float64(n4-n2))/float64(n2) > 0.02 {
		t.Errorf("sample size not population-stable: %d vs %d", n4, n2)
	}
}

func TestSampleSizeSmallPopulation(t *testing.T) {
	// With a tiny population the sample approaches the population itself.
	n := Baseline.SampleSize(1000)
	if n > 1000 || n < 900 {
		t.Errorf("small-population sample = %d", n)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(lifetime.StructRF, 128, 64, 50_000, 1000, 42)
	b := Generate(lifetime.StructRF, 128, 64, 50_000, 1000, 42)
	if len(a) != 1000 {
		t.Fatalf("len = %d", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault %d differs across same-seed generations", i)
		}
	}
	c := Generate(lifetime.StructRF, 128, 64, 50_000, 1000, 43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same > 10 {
		t.Errorf("different seeds produced %d identical faults", same)
	}
}

func TestGenerateBounds(t *testing.T) {
	f := func(seed int64) bool {
		faults := Generate(lifetime.StructSQ, 16, 64, 10_000, 200, seed)
		for _, ft := range faults {
			if ft.Entry < 0 || ft.Entry >= 16 || ft.Bit < 0 || ft.Bit >= 64 ||
				ft.Cycle < 1 || ft.Cycle > 10_000 {
				return false
			}
			if ft.Byte() != int(ft.Bit)/8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestGenerateUniformish(t *testing.T) {
	faults := Generate(lifetime.StructL1D, 512, 512, 100_000, 50_000, 7)
	var entrySum, bitSum, cycleSum float64
	for _, f := range faults {
		entrySum += float64(f.Entry)
		bitSum += float64(f.Bit)
		cycleSum += float64(f.Cycle)
	}
	n := float64(len(faults))
	if m := entrySum / n; math.Abs(m-255.5) > 10 {
		t.Errorf("mean entry = %v, want ~255.5", m)
	}
	if m := bitSum / n; math.Abs(m-255.5) > 10 {
		t.Errorf("mean bit = %v, want ~255.5", m)
	}
	if m := cycleSum / n; math.Abs(m-50_000) > 2000 {
		t.Errorf("mean cycle = %v, want ~50000", m)
	}
}

// TestGenerateDegenerateGeometry: a geometry with an empty fault
// population (an instant workload, a zero-sized structure) must yield an
// empty list, not a panic inside the uniform draws.
func TestGenerateDegenerateGeometry(t *testing.T) {
	cases := []struct {
		name          string
		entries, bits int
		cycles        uint64
		n             int
	}{
		{"zero cycles", 256, 512, 0, 100},
		{"zero entries", 0, 512, 1000, 100},
		{"zero entry bits", 256, 0, 1000, 100},
		{"negative entries", -4, 512, 1000, 100},
		{"zero faults", 256, 512, 1000, 0},
		{"negative faults", 256, 512, 1000, -7},
		{"everything zero", 0, 0, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Generate(lifetime.StructRF, tc.entries, tc.bits, tc.cycles, tc.n, 1)
			if len(got) != 0 {
				t.Fatalf("Generate = %d faults, want 0", len(got))
			}
			gotMB := GenerateMultiBit(lifetime.StructRF, tc.entries, tc.bits, tc.cycles, tc.n, 2, 1)
			if len(gotMB) != 0 {
				t.Fatalf("GenerateMultiBit = %d faults, want 0", len(gotMB))
			}
		})
	}
}

// TestGenerateMultiBitWidthClamp: a burst wider than the entry is clamped
// to the entry size (the flip then covers the whole entry from bit 0)
// instead of panicking on the impossible placement.
func TestGenerateMultiBitWidthClamp(t *testing.T) {
	cases := []struct {
		name      string
		entryBits int
		width     int
		wantWidth int
	}{
		{"width equals entry", 8, 8, 8},
		{"width one over", 8, 9, 8},
		{"width far over", 8, 64, 8},
		{"width over uint8", 512, 400, 255},
		{"zero width means one", 8, 0, 1},
		{"negative width means one", 8, -3, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			faults := GenerateMultiBit(lifetime.StructRF, 16, tc.entryBits, 1000, 50, tc.width, 7)
			if len(faults) != 50 {
				t.Fatalf("got %d faults, want 50", len(faults))
			}
			for _, f := range faults {
				if f.Bits() != tc.wantWidth {
					t.Fatalf("fault %v has width %d, want %d", f, f.Bits(), tc.wantWidth)
				}
				if int(f.Bit)+f.Bits() > tc.entryBits {
					t.Fatalf("fault %v overruns the %d-bit entry", f, tc.entryBits)
				}
				if f.Cycle < 1 || f.Cycle > 1000 {
					t.Fatalf("fault %v cycle out of [1, cycles]", f)
				}
			}
		})
	}
}
