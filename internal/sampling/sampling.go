// Package sampling implements the statistical fault sampling of Leveugle et
// al. (DATE 2009, the paper's reference [26]): the initial fault-list size
// for a target confidence level and error margin over the exhaustive
// population of (bit, cycle) flips, and the uniform random generation of
// that list.
package sampling

import (
	"math"
	"math/rand"

	"merlin/internal/fault"
	"merlin/internal/lifetime"
)

// Params describes one statistical sampling configuration.
type Params struct {
	Confidence  float64 // e.g. 0.998
	ErrorMargin float64 // e.g. 0.0063
}

// The two configurations used throughout the paper: 60,000 faults
// (99.8% / 0.63%) for the baseline comprehensive campaigns and 600,000
// (99.8% / 0.19%) for the scaling study of §4.4.2.4.
var (
	//lint:allow globmut002 read-only preset mirroring the paper's Table 2; value type, copied at use sites, conventionally immutable
	Baseline = Params{Confidence: 0.998, ErrorMargin: 0.0063}
	//lint:allow globmut002 read-only preset mirroring the paper's Table 2; value type, copied at use sites, conventionally immutable
	Scaled = Params{Confidence: 0.998, ErrorMargin: 0.0019}
)

// zScore returns the two-sided normal quantile for confidence c, via the
// Acklam rational approximation of the inverse normal CDF (|rel err| < 1e-9
// over the relevant range).
func zScore(c float64) float64 {
	p := 1 - (1-c)/2
	return normInv(p)
}

// normInv computes the standard normal quantile function.
func normInv(p float64) float64 {
	if p <= 0 || p >= 1 {
		return math.NaN()
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	cc := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((cc[0]*q+cc[1])*q+cc[2])*q+cc[3])*q+cc[4])*q + cc[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((cc[0]*q+cc[1])*q+cc[2])*q+cc[3])*q+cc[4])*q + cc[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// SampleSize returns the number of faults required for the given population
// (total bits x total cycles) at the parameters' confidence and margin:
//
//	n = N / (1 + e^2 (N-1) / (t^2 p(1-p))),  p = 0.5
//
// For the paper's populations this yields ~60,000 at (99.8%, 0.63%) and
// ~600,000 at (99.8%, 0.19%).
func (p Params) SampleSize(population float64) int {
	t := zScore(p.Confidence)
	e := p.ErrorMargin
	num := population
	den := 1 + e*e*(population-1)/(t*t*0.25)
	return int(math.Ceil(num / den))
}

// Population returns the exhaustive fault count of a structure over a run:
// entries x bits-per-entry x cycles.
func Population(entries, entryBits int, cycles uint64) float64 {
	return float64(entries) * float64(entryBits) * float64(cycles)
}

// Generate draws n uniform faults over (entry, bit, cycle in [1, cycles])
// for structure s, deterministically from seed.
//
// A degenerate geometry — zero entries, zero entry bits, or a zero-cycle
// run (an empty or instant workload) — has an empty fault population, so
// Generate returns an empty list instead of panicking inside the uniform
// draws. n <= 0 likewise yields an empty list.
func Generate(s lifetime.StructureID, entries, entryBits int, cycles uint64, n int, seed int64) []fault.Fault {
	if n <= 0 || entries <= 0 || entryBits <= 0 || cycles == 0 {
		return []fault.Fault{}
	}
	rng := rand.New(rand.NewSource(seed))
	faults := make([]fault.Fault, n)
	for i := range faults {
		faults[i] = fault.Fault{
			Structure: s,
			Entry:     int32(rng.Intn(entries)),
			Bit:       int32(rng.Intn(entryBits)),
			Cycle:     uint64(rng.Int63n(int64(cycles))) + 1,
		}
	}
	return faults
}

// GenerateMultiBit draws n uniform faults like Generate but flips width
// adjacent bits per fault (multi-bit upset model; width 1 degenerates to
// the paper's single-bit model). The first bit is chosen so the whole
// burst stays within the entry; a width wider than the entry itself is
// clamped to entryBits (the burst then always covers the whole entry,
// starting at bit 0) instead of panicking on the impossible placement.
// Degenerate geometries return an empty list exactly like Generate.
func GenerateMultiBit(s lifetime.StructureID, entries, entryBits int, cycles uint64, n int, width int, seed int64) []fault.Fault {
	if n <= 0 || entries <= 0 || entryBits <= 0 || cycles == 0 {
		return []fault.Fault{}
	}
	if width < 1 {
		width = 1
	}
	if width > entryBits {
		width = entryBits
	}
	if width > 255 {
		width = 255 // Fault.Width is a uint8
	}
	rng := rand.New(rand.NewSource(seed))
	faults := make([]fault.Fault, n)
	for i := range faults {
		faults[i] = fault.Fault{
			Structure: s,
			Entry:     int32(rng.Intn(entries)),
			Bit:       int32(rng.Intn(entryBits - width + 1)),
			Cycle:     uint64(rng.Int63n(int64(cycles))) + 1,
			Width:     uint8(width),
		}
	}
	return faults
}
