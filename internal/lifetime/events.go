// Package lifetime implements MeRLiN's ACE-like analysis (paper §3.1.1):
// it collects the raw write/read/invalidate event streams of the tracked
// hardware structures during a fault-free run and derives the vulnerable
// intervals of every (entry, byte), each annotated with the static
// instruction (RIP) and micro-op (uPC) whose committed read ends it.
package lifetime

import (
	"fmt"
	"strings"
)

// StructureID names a fault-injection / lifetime-tracking target.
type StructureID uint8

// The three structures evaluated in the paper (§4.1).
const (
	StructRF  StructureID = iota // physical integer register file
	StructSQ                     // store queue data field
	StructL1D                    // L1 data cache data array
	NumStructures
)

var structNames = [NumStructures]string{"RF", "SQ", "L1D"}

// String returns the structure's short name.
func (s StructureID) String() string {
	if int(s) < len(structNames) {
		return structNames[s]
	}
	return "?"
}

// ParseStructure maps a structure name ("RF", "SQ", "L1D", in any case) to
// its StructureID. It is the single parser behind every user-facing
// structure knob: CLI flags, daemon requests, and experiment filters.
func ParseStructure(name string) (StructureID, error) {
	for s, n := range structNames {
		if strings.EqualFold(name, n) {
			return StructureID(s), nil
		}
	}
	return 0, fmt.Errorf("unknown structure %q (want RF, SQ, or L1D)", name)
}

// MarshalText renders the structure as its short name, so JSON carrying a
// StructureID reads "RF"/"SQ"/"L1D" instead of a bare int.
func (s StructureID) MarshalText() ([]byte, error) {
	if int(s) >= len(structNames) {
		return nil, fmt.Errorf("cannot marshal unknown structure %d", uint8(s))
	}
	return []byte(structNames[s]), nil
}

// UnmarshalText parses a structure name case-insensitively, round-tripping
// MarshalText.
func (s *StructureID) UnmarshalText(text []byte) error {
	v, err := ParseStructure(string(text))
	if err != nil {
		return err
	}
	*s = v
	return nil
}

// EventKind classifies a lifetime event.
type EventKind uint8

// Event kinds.
const (
	// EvWrite: the masked bytes were (re)written. Opens a lifetime
	// segment; any prior unread segment becomes non-vulnerable.
	EvWrite EventKind = iota
	// EvRead: a committed read consumed the masked bytes; ends a
	// vulnerable interval attributed to (RIP, UPC).
	EvRead
	// EvWBRead: a dirty-line writeback read the bytes on their way to the
	// next memory level; ends a vulnerable interval attributed to the
	// WBRip pseudo-instruction.
	EvWBRead
	// EvInvalidate: the bytes left the structure unread (clean eviction,
	// entry freed); closes the segment non-vulnerably.
	EvInvalidate
)

// WBRip is the pseudo-RIP attributed to dirty-writeback reads, which have no
// associated program instruction.
const WBRip int32 = -1

// InitRip is the pseudo-RIP attributed to the cycle-0 writes that seed the
// architectural register file at reset (AttachTracer): the value was never
// produced by a program instruction.
const InitRip int32 = -3

// Event is one lifetime event of an entry. Seq is the global occurrence
// order (assigned when the bits were physically touched), which breaks ties
// within a cycle deterministically.
//
// RIP/UPC attribute the event to a static program location. For reads they
// name the committed consumer (or WBRip for dirty writebacks); for writes
// they name the producing µop — the register-writeback or store-drain that
// deposited the bytes (InitRip for the reset-time architectural seeds,
// 0/unattributed for L1D fills, which have no single producing µop). The
// static dataflow cross-check (internal/guestflow) keys its governing-write
// liveness argument off these write stamps.
type Event struct {
	Seq       uint64
	Cycle     uint64
	CommitSeq uint64 // program-order seq of the committing reader (EvRead)
	Entry     int32
	Mask      uint64 // byte mask within the entry (bit i = byte i)
	RIP       int32  // reading (EvRead/EvWBRead) or writing (EvWrite) instruction
	Kind      EventKind
	UPC       uint8
}

// Log accumulates the events of one structure.
type Log struct {
	Events []Event
}

// Append adds an event.
func (l *Log) Append(ev Event) { l.Events = append(l.Events, ev) }

// BranchRec is one committed control-flow decision, recorded for the
// Relyzer control-equivalence comparison (§4.4.4).
type BranchRec struct {
	CommitSeq uint64 // program-order seq of the branch µop
	RIP       int32
	Target    int32 // next RIP actually followed
	Taken     bool
}

// Tracer collects the lifetime event logs of the structures tracked during
// one fault-free run, plus the committed branch trace. A nil per-structure
// log disables tracking of that structure.
type Tracer struct {
	seq      uint64
	logs     [NumStructures]*Log
	Branches []BranchRec
	Cycles   uint64 // total run cycles; set by the run harness
}

// NewTracer returns a tracer tracking the listed structures.
func NewTracer(track ...StructureID) *Tracer {
	t := &Tracer{}
	for _, s := range track {
		t.logs[s] = &Log{}
	}
	return t
}

// RehydrateTracer reconstructs a Tracer from a cached golden trace (the
// deserialization path of the artifact cache in internal/store): the event
// log of one structure plus the committed branch trace. The result serves
// every read-side Tracer use — Log, Branches, re-running Build — exactly
// like the tracer that recorded the run.
func RehydrateTracer(s StructureID, log *Log, branches []BranchRec, cycles uint64) *Tracer {
	var logs [NumStructures]*Log
	logs[s] = log
	return RehydrateTracerLogs(logs, branches, cycles)
}

// RehydrateTracerLogs is RehydrateTracer for a multi-structure golden
// trace (a batch campaign's cached artifact): logs is indexed by
// StructureID, and nil entries leave that structure untracked, exactly as
// if NewTracer had omitted it.
func RehydrateTracerLogs(logs [NumStructures]*Log, branches []BranchRec, cycles uint64) *Tracer {
	return &Tracer{logs: logs, Branches: branches, Cycles: cycles}
}

// Log returns the event log for s, or nil if s is untracked.
func (t *Tracer) Log(s StructureID) *Log { return t.logs[s] }

// NextSeq reserves the next global occurrence sequence number. The core
// calls it at the moment bits are physically read or written, even when the
// event itself is only appended later (committed reads are buffered until
// the reader commits).
func (t *Tracer) NextSeq() uint64 {
	t.seq++
	return t.seq
}

// RecordBranch appends a committed branch outcome.
func (t *Tracer) RecordBranch(commitSeq uint64, rip, target int32, taken bool) {
	t.Branches = append(t.Branches, BranchRec{CommitSeq: commitSeq, RIP: rip, Target: target, Taken: taken})
}
