package lifetime

import "testing"

func TestBuildTruncatedEmitsEOFIntervals(t *testing.T) {
	log := mkLog(
		Event{Kind: EvWrite, Entry: 0, Mask: 0xff, Cycle: 10},
		Event{Kind: EvRead, Entry: 0, Mask: 0xff, Cycle: 20, RIP: 3},
		// After the read the bytes stay live until the cut at 100.
		Event{Kind: EvWrite, Entry: 1, Mask: 0x0f, Cycle: 50},
		// Entry 2 written then invalidated: dead at the cut.
		Event{Kind: EvWrite, Entry: 2, Mask: 0xff, Cycle: 30},
		Event{Kind: EvInvalidate, Entry: 2, Mask: 0xff, Cycle: 40},
	)
	a := BuildTruncated(log, StructRF, 4, 8, 100)

	// Entry 0: the real read interval plus an EOF interval (20,100].
	if id, ok := a.Find(0, 0, 15); !ok || a.Intervals[id].RIP != 3 {
		t.Error("read interval missing")
	}
	id, ok := a.Find(0, 0, 60)
	if !ok {
		t.Fatal("EOF interval missing for live entry 0")
	}
	if iv := a.Intervals[id]; iv.RIP != EOFRip || iv.End != 100 || iv.Start != 20 {
		t.Errorf("EOF interval = %+v", iv)
	}
	// Entry 1: open write is live at the cut.
	if id, ok := a.Find(1, 2, 70); !ok || a.Intervals[id].RIP != EOFRip {
		t.Error("EOF interval missing for entry 1")
	}
	// Byte 7 of entry 1 was never written: no interval.
	if _, ok := a.Find(1, 7, 70); ok {
		t.Error("unwritten byte must stay uncovered")
	}
	// Entry 2 was invalidated: masked at the cut.
	if _, ok := a.Find(2, 0, 60); ok {
		t.Error("invalidated entry must have no EOF interval")
	}

	// Plain Build must not emit EOF intervals.
	plain := Build(log, StructRF, 4, 8, 100)
	if _, ok := plain.Find(0, 0, 60); ok {
		t.Error("Build must not cover open segments")
	}
}

func TestBuildTruncatedZeroLengthOpenSkipped(t *testing.T) {
	log := mkLog(Event{Kind: EvWrite, Entry: 0, Mask: 0xff, Cycle: 100})
	a := BuildTruncated(log, StructRF, 1, 8, 100)
	if len(a.Intervals) != 0 {
		t.Errorf("write at the cut produced %d intervals", len(a.Intervals))
	}
}
