package lifetime

import (
	"math/bits"
	"sort"
)

// Interval is one ACE-like vulnerable interval (paper §3.1.1): the bytes in
// Mask of Entry are vulnerable in (Start, End] — a flip strictly after
// Start and no later than End is consumed by the committed read at End.
// The interval is attributed to the reading instruction (RIP, UPC); EndSeq
// is the reader's program-order sequence, identifying the dynamic instance
// (used by grouping step 2 and by the Relyzer comparison).
type Interval struct {
	Entry  int32
	Mask   uint64
	Start  uint64
	End    uint64
	EndSeq uint64
	RIP    int32 // WBRip for dirty-writeback reads
	UPC    uint8
}

// Analysis holds the vulnerable intervals of one structure for one program
// run, with a per-(entry, byte) index for O(log n) fault lookup.
type Analysis struct {
	Structure  StructureID
	Entries    int
	EntryBytes int
	Cycles     uint64
	Intervals  []Interval

	index [][]int32 // (entry*EntryBytes+byte) -> interval ids, End ascending
}

// EOFRip is the pseudo-RIP attributed to lifetimes still open when a
// truncated run is cut (Table 4): a fault inside one is still live at the
// cut, so it groups separately from any real reader.
const EOFRip int32 = -2

// Build derives the vulnerable intervals of structure s from its event log.
// Events are replayed in occurrence order; a per-(entry, byte) state machine
// opens a segment at each write, emits a vulnerable interval at each
// committed read (chaining read-to-read intervals, per the paper's
// modified ACE definition), and discards unread segments at overwrites,
// invalidations and end of run.
func Build(log *Log, s StructureID, entries, entryBytes int, cycles uint64) *Analysis {
	return build(log, s, entries, entryBytes, cycles, false)
}

// BuildTruncated is Build for a run cut at cycles: segments still open at
// the cut become intervals ending at the cut attributed to EOFRip, since a
// fault in them is live (Unknown) rather than provably masked.
func BuildTruncated(log *Log, s StructureID, entries, entryBytes int, cycles uint64) *Analysis {
	return build(log, s, entries, entryBytes, cycles, true)
}

func build(log *Log, s StructureID, entries, entryBytes int, cycles uint64, openAsEOF bool) *Analysis {
	a := &Analysis{
		Structure:  s,
		Entries:    entries,
		EntryBytes: entryBytes,
		Cycles:     cycles,
	}
	events := make([]Event, len(log.Events))
	copy(events, log.Events)
	sort.Slice(events, func(i, j int) bool { return events[i].Seq < events[j].Seq })

	n := entries * entryBytes
	openStart := make([]uint64, n)
	valid := make([]bool, n)

	// Scratch for merging bytes of one read event that share a segment start.
	var starts [64]uint64
	var masks [64]uint64

	for _, ev := range events {
		base := int(ev.Entry) * entryBytes
		switch ev.Kind {
		case EvWrite:
			m := ev.Mask
			for m != 0 {
				b := bits.TrailingZeros64(m)
				m &= m - 1
				openStart[base+b] = ev.Cycle
				valid[base+b] = true
			}
		case EvInvalidate:
			m := ev.Mask
			for m != 0 {
				b := bits.TrailingZeros64(m)
				m &= m - 1
				valid[base+b] = false
			}
		case EvRead, EvWBRead:
			groups := 0
			m := ev.Mask
			for m != 0 {
				b := bits.TrailingZeros64(m)
				m &= m - 1
				i := base + b
				if !valid[i] {
					continue // byte never written; nothing vulnerable
				}
				st := openStart[i]
				openStart[i] = ev.Cycle // chain the next read-to-read interval
				g := -1
				for j := 0; j < groups; j++ {
					if starts[j] == st {
						g = j
						break
					}
				}
				if g < 0 {
					g = groups
					groups++
					starts[g] = st
					masks[g] = 0
				}
				masks[g] |= uint64(1) << b
			}
			for j := 0; j < groups; j++ {
				if starts[j] >= ev.Cycle {
					continue // zero-length (same-cycle write+read); not injectable
				}
				a.Intervals = append(a.Intervals, Interval{
					Entry:  ev.Entry,
					Mask:   masks[j],
					Start:  starts[j],
					End:    ev.Cycle,
					EndSeq: ev.CommitSeq,
					RIP:    ev.RIP,
					UPC:    ev.UPC,
				})
			}
		}
	}
	if openAsEOF {
		for e := 0; e < entries; e++ {
			base := e * entryBytes
			var starts [64]uint64
			var masks [64]uint64
			groups := 0
			for b := 0; b < entryBytes; b++ {
				if !valid[base+b] || openStart[base+b] >= cycles {
					continue
				}
				st := openStart[base+b]
				g := -1
				for j := 0; j < groups; j++ {
					if starts[j] == st {
						g = j
						break
					}
				}
				if g < 0 {
					g = groups
					groups++
					starts[g] = st
					masks[g] = 0
				}
				masks[g] |= uint64(1) << b
			}
			for j := 0; j < groups; j++ {
				a.Intervals = append(a.Intervals, Interval{
					Entry: int32(e), Mask: masks[j], Start: starts[j],
					End: cycles, EndSeq: ^uint64(0), RIP: EOFRip,
				})
			}
		}
	}
	a.buildIndex()
	return a
}

func (a *Analysis) buildIndex() {
	a.index = make([][]int32, a.Entries*a.EntryBytes)
	for id, iv := range a.Intervals {
		base := int(iv.Entry) * a.EntryBytes
		m := iv.Mask
		for m != 0 {
			b := bits.TrailingZeros64(m)
			m &= m - 1
			a.index[base+b] = append(a.index[base+b], int32(id))
		}
	}
	// Events were replayed in occurrence order, so each per-byte list is
	// already End-ascending; verify the invariant in cheap builds.
	for _, lst := range a.index {
		for i := 1; i < len(lst); i++ {
			if a.Intervals[lst[i-1]].End > a.Intervals[lst[i]].End {
				sort.Slice(lst, func(x, y int) bool {
					return a.Intervals[lst[x]].End < a.Intervals[lst[y]].End
				})
				break
			}
		}
	}
}

// Rehydrate reconstructs an Analysis from previously derived intervals —
// the deserialization path of the golden-run artifact cache
// (internal/store). The per-byte lookup index is rebuilt; the result is
// indistinguishable from the Build that originally produced the intervals.
func Rehydrate(s StructureID, entries, entryBytes int, cycles uint64, intervals []Interval) *Analysis {
	a := &Analysis{
		Structure:  s,
		Entries:    entries,
		EntryBytes: entryBytes,
		Cycles:     cycles,
		Intervals:  intervals,
	}
	a.buildIndex()
	return a
}

// Find returns the id of the vulnerable interval covering a flip of the
// given byte of entry at cycle, or ok=false when the flip is provably
// masked (the ACE-like pruning of MeRLiN's first phase).
func (a *Analysis) Find(entry int32, byteIdx int, cycle uint64) (id int32, ok bool) {
	lst := a.index[int(entry)*a.EntryBytes+byteIdx]
	lo := sort.Search(len(lst), func(i int) bool { return a.Intervals[lst[i]].End >= cycle })
	if lo == len(lst) {
		return 0, false
	}
	iv := &a.Intervals[lst[lo]]
	if iv.Start < cycle && cycle <= iv.End {
		return lst[lo], true
	}
	return 0, false
}

// VulnerableByteCycles sums (End-Start) x bytes over all intervals: the
// total vulnerable byte-cycles of the structure.
func (a *Analysis) VulnerableByteCycles() uint64 {
	var total uint64
	for _, iv := range a.Intervals {
		total += (iv.End - iv.Start) * uint64(bits.OnesCount64(iv.Mask))
	}
	return total
}

// AVF returns the ACE-like architectural vulnerability factor: vulnerable
// byte-cycles over total byte-cycles (paper §4.4.3.3, computed as in
// Mukherjee et al. [15]).
func (a *Analysis) AVF() float64 {
	denom := float64(a.Entries) * float64(a.EntryBytes) * float64(a.Cycles)
	if denom == 0 {
		return 0
	}
	return float64(a.VulnerableByteCycles()) / denom
}
