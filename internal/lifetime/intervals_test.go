package lifetime

import (
	"testing"
	"testing/quick"
)

// mkLog builds a log from (kind, entry, mask, cycle, rip, upc) tuples with
// sequential Seq values.
func mkLog(evs ...Event) *Log {
	l := &Log{}
	for i, ev := range evs {
		ev.Seq = uint64(i + 1)
		l.Append(ev)
	}
	return l
}

func TestBuildWriteReadInterval(t *testing.T) {
	log := mkLog(
		Event{Kind: EvWrite, Entry: 3, Mask: 0xff, Cycle: 10},
		Event{Kind: EvRead, Entry: 3, Mask: 0xff, Cycle: 25, RIP: 7, UPC: 1, CommitSeq: 42},
	)
	a := Build(log, StructRF, 8, 8, 100)
	if len(a.Intervals) != 1 {
		t.Fatalf("intervals = %d, want 1", len(a.Intervals))
	}
	iv := a.Intervals[0]
	if iv.Start != 10 || iv.End != 25 || iv.RIP != 7 || iv.UPC != 1 || iv.EndSeq != 42 {
		t.Fatalf("interval = %+v", iv)
	}
}

func TestBuildReadToReadChains(t *testing.T) {
	// Paper Fig 3: consecutive committed reads split the lifetime into
	// separate vulnerable intervals (unlike classic ACE).
	log := mkLog(
		Event{Kind: EvWrite, Entry: 0, Mask: 1, Cycle: 5},
		Event{Kind: EvRead, Entry: 0, Mask: 1, Cycle: 10, RIP: 1},
		Event{Kind: EvRead, Entry: 0, Mask: 1, Cycle: 20, RIP: 2},
		Event{Kind: EvRead, Entry: 0, Mask: 1, Cycle: 30, RIP: 3},
	)
	a := Build(log, StructRF, 1, 8, 100)
	if len(a.Intervals) != 3 {
		t.Fatalf("intervals = %d, want 3", len(a.Intervals))
	}
	bounds := [][2]uint64{{5, 10}, {10, 20}, {20, 30}}
	for i, b := range bounds {
		if a.Intervals[i].Start != b[0] || a.Intervals[i].End != b[1] {
			t.Errorf("interval %d = (%d, %d], want (%d, %d]",
				i, a.Intervals[i].Start, a.Intervals[i].End, b[0], b[1])
		}
	}
	// Total vulnerable time equals the classic ACE single interval (5,30].
	if got := a.VulnerableByteCycles(); got != 25 {
		t.Errorf("vulnerable byte-cycles = %d, want 25", got)
	}
}

func TestDeadWriteNotVulnerable(t *testing.T) {
	log := mkLog(
		Event{Kind: EvWrite, Entry: 0, Mask: 0xff, Cycle: 5},
		Event{Kind: EvWrite, Entry: 0, Mask: 0xff, Cycle: 15}, // overwrites unread
		Event{Kind: EvRead, Entry: 0, Mask: 0xff, Cycle: 20, RIP: 1},
	)
	a := Build(log, StructRF, 1, 8, 100)
	if len(a.Intervals) != 1 {
		t.Fatalf("intervals = %d, want 1", len(a.Intervals))
	}
	if a.Intervals[0].Start != 15 {
		t.Errorf("interval start = %d, want 15 (dead segment excluded)", a.Intervals[0].Start)
	}
}

func TestInvalidateEndsLifetime(t *testing.T) {
	log := mkLog(
		Event{Kind: EvWrite, Entry: 0, Mask: 0xff, Cycle: 5},
		Event{Kind: EvInvalidate, Entry: 0, Mask: 0xff, Cycle: 15},
		Event{Kind: EvRead, Entry: 0, Mask: 0xff, Cycle: 20, RIP: 1}, // stale read: ignored
	)
	a := Build(log, StructRF, 1, 8, 100)
	if len(a.Intervals) != 0 {
		t.Fatalf("intervals = %v, want none after invalidate", a.Intervals)
	}
}

func TestPartialByteMasks(t *testing.T) {
	// Bytes 0-3 written at cycle 5, bytes 4-7 at cycle 12; a read of the
	// whole entry at 20 must produce two intervals with distinct starts.
	log := mkLog(
		Event{Kind: EvWrite, Entry: 0, Mask: 0x0f, Cycle: 5},
		Event{Kind: EvWrite, Entry: 0, Mask: 0xf0, Cycle: 12},
		Event{Kind: EvRead, Entry: 0, Mask: 0xff, Cycle: 20, RIP: 9},
	)
	a := Build(log, StructRF, 1, 8, 100)
	if len(a.Intervals) != 2 {
		t.Fatalf("intervals = %d, want 2", len(a.Intervals))
	}
	var got [2]Interval
	for _, iv := range a.Intervals {
		if iv.Start == 5 {
			got[0] = iv
		} else {
			got[1] = iv
		}
	}
	if got[0].Mask != 0x0f || got[1].Mask != 0xf0 || got[1].Start != 12 {
		t.Fatalf("intervals = %+v", a.Intervals)
	}
}

func TestWBReadAttribution(t *testing.T) {
	log := mkLog(
		Event{Kind: EvWrite, Entry: 2, Mask: ^uint64(0), Cycle: 5},
		Event{Kind: EvWBRead, Entry: 2, Mask: ^uint64(0), Cycle: 30, RIP: WBRip},
	)
	a := Build(log, StructL1D, 4, 64, 100)
	if len(a.Intervals) != 1 || a.Intervals[0].RIP != WBRip {
		t.Fatalf("intervals = %+v, want one WB-attributed", a.Intervals)
	}
	if got := a.VulnerableByteCycles(); got != 25*64 {
		t.Errorf("byte-cycles = %d, want %d", got, 25*64)
	}
}

func TestFind(t *testing.T) {
	log := mkLog(
		Event{Kind: EvWrite, Entry: 1, Mask: 0xff, Cycle: 10},
		Event{Kind: EvRead, Entry: 1, Mask: 0xff, Cycle: 20, RIP: 5},
		Event{Kind: EvRead, Entry: 1, Mask: 0x01, Cycle: 35, RIP: 6},
	)
	a := Build(log, StructRF, 4, 8, 100)

	tests := []struct {
		byteIdx int
		cycle   uint64
		wantOK  bool
		wantRIP int32
	}{
		{0, 10, false, 0}, // at the write cycle: overwritten, masked
		{0, 11, true, 5},  // inside the first interval
		{0, 20, true, 5},  // at the read cycle: consumed
		{0, 21, true, 6},  // read-to-read interval for byte 0
		{0, 35, true, 6},  //
		{0, 36, false, 0}, // after the last read
		{3, 21, false, 0}, // byte 3 has no second read
		{3, 15, true, 5},  //
		{0, 5, false, 0},  // before anything
	}
	for _, tt := range tests {
		id, ok := a.Find(1, tt.byteIdx, tt.cycle)
		if ok != tt.wantOK {
			t.Errorf("Find(byte %d, cycle %d): ok = %v, want %v", tt.byteIdx, tt.cycle, ok, tt.wantOK)
			continue
		}
		if ok && a.Intervals[id].RIP != tt.wantRIP {
			t.Errorf("Find(byte %d, cycle %d): rip = %d, want %d", tt.byteIdx, tt.cycle, a.Intervals[id].RIP, tt.wantRIP)
		}
	}
	// Other entries are unaffected.
	if _, ok := a.Find(0, 0, 15); ok {
		t.Error("entry 0 must have no intervals")
	}
}

func TestAVF(t *testing.T) {
	log := mkLog(
		Event{Kind: EvWrite, Entry: 0, Mask: 0xff, Cycle: 0},
		Event{Kind: EvRead, Entry: 0, Mask: 0xff, Cycle: 50, RIP: 1},
	)
	// 1 entry of 8 bytes vulnerable 50 of 100 cycles out of 2 entries.
	a := Build(log, StructRF, 2, 8, 100)
	if got, want := a.AVF(), 50.0*8/(2*8*100); got != want {
		t.Errorf("AVF = %v, want %v", got, want)
	}
}

// Property: for any fault position, Find agrees with a brute-force interval
// scan.
func TestFindMatchesBruteForce(t *testing.T) {
	log := mkLog(
		Event{Kind: EvWrite, Entry: 0, Mask: 0x3f, Cycle: 3},
		Event{Kind: EvRead, Entry: 0, Mask: 0x0f, Cycle: 9, RIP: 1},
		Event{Kind: EvWrite, Entry: 0, Mask: 0xf0, Cycle: 12},
		Event{Kind: EvRead, Entry: 0, Mask: 0xff, Cycle: 21, RIP: 2},
		Event{Kind: EvInvalidate, Entry: 0, Mask: 0xff, Cycle: 25},
		Event{Kind: EvWrite, Entry: 0, Mask: 0xff, Cycle: 30},
		Event{Kind: EvRead, Entry: 0, Mask: 0x80, Cycle: 40, RIP: 3},
	)
	a := Build(log, StructRF, 1, 8, 100)
	brute := func(b int, cyc uint64) (int32, bool) {
		for id, iv := range a.Intervals {
			if iv.Mask&(1<<uint(b)) != 0 && iv.Start < cyc && cyc <= iv.End {
				return int32(id), true
			}
		}
		return 0, false
	}
	f := func(b uint8, cyc uint16) bool {
		bi := int(b % 8)
		cy := uint64(cyc % 50)
		gotID, gotOK := a.Find(0, bi, cy)
		wantID, wantOK := brute(bi, cy)
		return gotOK == wantOK && (!gotOK || gotID == wantID)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
