// Package asm implements a two-pass assembler for the µx64 ISA.
//
// Source syntax, one statement per line:
//
//	; comment            # comment
//	label:
//	.data                switch to the data segment
//	.text                switch back to the text segment
//	.word 1, 2, label    emit 64-bit little-endian words
//	.byte 1, 2, 3        emit bytes
//	.space 128           reserve zeroed bytes
//	.ascii "text"        emit the bytes of a string
//	add  r1, r2, r3      register ALU
//	addi r1, r2, 42      immediate ALU (also andi/ori/xori/slli/...)
//	li   r1, 0x1234      64-bit immediate (also: li r1, label)
//	ld   r1, [r2+8]      loads; lw/lwu/lh/lhu/lb/lbu likewise
//	sd   [r2+8], r1      stores; sw/sh/sb likewise
//	ldadd r1, r3, [r2+8] r1 = mem[r2+8] + r3
//	stadd [r2+8], r3     mem[r2+8] += r3
//	beq  r1, r2, label   conditional branches (bne/blt/bge/bltu/bgeu
//	                     plus pseudo bgt/ble/bgtu/bleu via operand swap)
//	j    label           unconditional jump
//	jal  r14, label      jump and link
//	call label           jal using the link register r14
//	ret                  jalr to r14
//	jalr r1, r2, 0       indirect jump
//	mv   r1, r2          pseudo: addi r1, r2, 0
//	out  r1              append r1 to the output stream
//	halt / nop
//
// Registers are r0..r15; sp is an alias for r15 and lr for r14.
package asm

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"

	"merlin/internal/isa"
)

// Error describes an assembly failure with its source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

// fixup is a forward label reference to patch after pass one. Text labels
// resolve to instruction indexes and data labels to absolute addresses;
// the symbol table already stores the right value for either.
type fixup struct {
	inst  int // text index to patch
	label string
	line  int
}

type assembler struct {
	text    []isa.Inst
	data    []byte
	symbols map[string]int64 // labels: text index or data address
	inData  bool
	fixups  []fixup
}

// Assemble translates source into a Program named name.
func Assemble(name, source string) (*isa.Program, error) {
	a := &assembler{symbols: make(map[string]int64)}
	for i, raw := range strings.Split(source, "\n") {
		if err := a.line(i+1, raw); err != nil {
			return nil, err
		}
	}
	for _, f := range a.fixups {
		v, ok := a.symbols[f.label]
		if !ok {
			return nil, &Error{f.line, fmt.Sprintf("undefined label %q", f.label)}
		}
		a.text[f.inst].Imm = v
	}
	return &isa.Program{
		Name:    name,
		Text:    a.text,
		Data:    a.data,
		Symbols: a.symbols,
	}, nil
}

// MustAssemble is Assemble for sources known at build time (workloads);
// it panics on error.
func MustAssemble(name, source string) *isa.Program {
	p, err := Assemble(name, source)
	if err != nil {
		panic(err)
	}
	return p
}

func (a *assembler) line(n int, raw string) error {
	s := raw
	if i := strings.IndexAny(s, ";#"); i >= 0 {
		// Keep ; and # inside string literals.
		if j := strings.IndexByte(s, '"'); j < 0 || i < j {
			s = s[:i]
		}
	}
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	// Labels; several may precede a statement on one line.
	for {
		i := strings.IndexByte(s, ':')
		if i < 0 || strings.ContainsAny(s[:i], " \t\",[") {
			break
		}
		label := s[:i]
		if _, dup := a.symbols[label]; dup {
			return &Error{n, fmt.Sprintf("duplicate label %q", label)}
		}
		if a.inData {
			a.symbols[label] = isa.DataBase + int64(len(a.data))
		} else {
			a.symbols[label] = int64(len(a.text))
		}
		s = strings.TrimSpace(s[i+1:])
		if s == "" {
			return nil
		}
	}
	if strings.HasPrefix(s, ".") {
		return a.directive(n, s)
	}
	return a.instruction(n, s)
}

func (a *assembler) directive(n int, s string) error {
	name, rest, _ := strings.Cut(s, " ")
	rest = strings.TrimSpace(rest)
	switch name {
	case ".data":
		a.inData = true
	case ".text":
		a.inData = false
	case ".space":
		v, err := strconv.ParseInt(rest, 0, 64)
		if err != nil || v < 0 {
			return &Error{n, fmt.Sprintf("bad .space size %q", rest)}
		}
		a.data = append(a.data, make([]byte, v)...)
	case ".word":
		for _, f := range splitOperands(rest) {
			v, err := a.constant(f)
			if err != nil {
				return &Error{n, err.Error()}
			}
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], uint64(v))
			a.data = append(a.data, b[:]...)
		}
	case ".byte":
		for _, f := range splitOperands(rest) {
			v, err := a.constant(f)
			if err != nil {
				return &Error{n, err.Error()}
			}
			a.data = append(a.data, byte(v))
		}
	case ".ascii":
		str, err := strconv.Unquote(rest)
		if err != nil {
			return &Error{n, fmt.Sprintf("bad .ascii string %s", rest)}
		}
		a.data = append(a.data, str...)
	default:
		return &Error{n, fmt.Sprintf("unknown directive %s", name)}
	}
	return nil
}

// constant evaluates a numeric literal or an already-defined label.
func (a *assembler) constant(s string) (int64, error) {
	if v, err := strconv.ParseInt(s, 0, 64); err == nil {
		return v, nil
	}
	if v, ok := a.symbols[s]; ok {
		return v, nil
	}
	return 0, fmt.Errorf("bad constant %q (labels used in data must be defined earlier)", s)
}

func splitOperands(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseReg(s string) (int8, bool) {
	switch s {
	case "sp":
		return isa.RegSP, true
	case "lr":
		return isa.RegLR, true
	}
	if len(s) >= 2 && s[0] == 'r' {
		v, err := strconv.Atoi(s[1:])
		if err == nil && v >= 0 && v < isa.NumArchRegs {
			return int8(v), true
		}
	}
	return 0, false
}

// parseMem parses "[rN+off]" / "[rN-off]" / "[rN]" / "[label]".
func (a *assembler) parseMem(s string) (base int8, off int64, label string, ok bool) {
	if len(s) < 3 || s[0] != '[' || s[len(s)-1] != ']' {
		return 0, 0, "", false
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	sep := strings.IndexAny(inner, "+-")
	regPart, offPart := inner, ""
	if sep > 0 {
		regPart, offPart = strings.TrimSpace(inner[:sep]), strings.TrimSpace(inner[sep:])
	}
	r, isReg := parseReg(regPart)
	if !isReg {
		return 0, 0, "", false
	}
	if offPart == "" {
		return r, 0, "", true
	}
	v, err := strconv.ParseInt(offPart, 0, 64)
	if err != nil {
		return 0, 0, "", false
	}
	return r, v, "", true
}

var aluRegOps = map[string]isa.Op{
	"add": isa.ADD, "sub": isa.SUB, "and": isa.AND, "or": isa.OR,
	"xor": isa.XOR, "sll": isa.SLL, "srl": isa.SRL, "sra": isa.SRA,
	"mul": isa.MUL, "div": isa.DIV, "rem": isa.REM, "slt": isa.SLT,
	"sltu": isa.SLTU,
}

var aluImmOps = map[string]isa.Op{
	"addi": isa.ADDI, "andi": isa.ANDI, "ori": isa.ORI, "xori": isa.XORI,
	"slli": isa.SLLI, "srli": isa.SRLI, "srai": isa.SRAI, "slti": isa.SLTI,
	"muli": isa.MULI,
}

var loadOps = map[string]isa.Op{
	"ld": isa.LD, "lw": isa.LW, "lwu": isa.LWU, "lh": isa.LH,
	"lhu": isa.LHU, "lb": isa.LB, "lbu": isa.LBU,
}

var storeOps = map[string]isa.Op{
	"sd": isa.SD, "sw": isa.SW, "sh": isa.SH, "sb": isa.SB,
}

var branchOps = map[string]isa.Op{
	"beq": isa.BEQ, "bne": isa.BNE, "blt": isa.BLT, "bge": isa.BGE,
	"bltu": isa.BLTU, "bgeu": isa.BGEU,
}

// swapped pseudo-branches: "bgt a,b" == "blt b,a" etc.
var swapBranchOps = map[string]isa.Op{
	"bgt": isa.BLT, "ble": isa.BGE, "bgtu": isa.BLTU, "bleu": isa.BGEU,
}

func (a *assembler) emit(in isa.Inst) { a.text = append(a.text, in) }

func (a *assembler) emitFixup(in isa.Inst, label string, line int) {
	a.fixups = append(a.fixups, fixup{inst: len(a.text), label: label, line: line})
	a.text = append(a.text, in)
}

// immOrLabel resolves an immediate operand that may be a label; labels are
// recorded as fixups so forward references work.
func (a *assembler) immOrLabel(s string, in isa.Inst, line int) error {
	if v, err := strconv.ParseInt(s, 0, 64); err == nil {
		in.Imm = v
		a.emit(in)
		return nil
	}
	if strings.HasPrefix(s, "-") || (s[0] >= '0' && s[0] <= '9') {
		return &Error{line, fmt.Sprintf("bad immediate %q", s)}
	}
	a.emitFixup(in, s, line)
	return nil
}

func (a *assembler) instruction(n int, s string) error {
	if a.inData {
		return &Error{n, "instruction in .data segment"}
	}
	mnemonic, rest, _ := strings.Cut(s, " ")
	mnemonic = strings.ToLower(strings.TrimSpace(mnemonic))
	ops := splitOperands(strings.TrimSpace(rest))

	need := func(k int) error {
		if len(ops) != k {
			return &Error{n, fmt.Sprintf("%s expects %d operands, got %d", mnemonic, k, len(ops))}
		}
		return nil
	}
	reg := func(i int) (int8, error) {
		r, ok := parseReg(ops[i])
		if !ok {
			return 0, &Error{n, fmt.Sprintf("bad register %q", ops[i])}
		}
		return r, nil
	}

	switch {
	case mnemonic == "nop":
		a.emit(isa.Inst{Op: isa.NOP, Rd: isa.NoReg, Rs1: isa.NoReg, Rs2: isa.NoReg})
	case mnemonic == "halt":
		a.emit(isa.Inst{Op: isa.HALT, Rd: isa.NoReg, Rs1: isa.NoReg, Rs2: isa.NoReg})
	case mnemonic == "ret":
		a.emit(isa.Inst{Op: isa.JALR, Rd: isa.NoReg, Rs1: isa.RegLR, Rs2: isa.NoReg})
	case mnemonic == "out":
		if err := need(1); err != nil {
			return err
		}
		r, err := reg(0)
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: isa.OUT, Rd: isa.NoReg, Rs1: r, Rs2: isa.NoReg})
	case mnemonic == "mv":
		if err := need(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rs, err := reg(1)
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: isa.ADDI, Rd: rd, Rs1: rs, Rs2: isa.NoReg})
	case mnemonic == "li":
		if err := need(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		return a.immOrLabel(ops[1], isa.Inst{Op: isa.LI, Rd: rd, Rs1: isa.NoReg, Rs2: isa.NoReg}, n)
	case mnemonic == "j":
		if err := need(1); err != nil {
			return err
		}
		return a.immOrLabel(ops[0], isa.Inst{Op: isa.JAL, Rd: isa.NoReg, Rs1: isa.NoReg, Rs2: isa.NoReg}, n)
	case mnemonic == "call":
		if err := need(1); err != nil {
			return err
		}
		return a.immOrLabel(ops[0], isa.Inst{Op: isa.JAL, Rd: isa.RegLR, Rs1: isa.NoReg, Rs2: isa.NoReg}, n)
	case mnemonic == "jal":
		if err := need(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		return a.immOrLabel(ops[1], isa.Inst{Op: isa.JAL, Rd: rd, Rs1: isa.NoReg, Rs2: isa.NoReg}, n)
	case mnemonic == "jalr":
		if err := need(3); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rs, err := reg(1)
		if err != nil {
			return err
		}
		v, perr := strconv.ParseInt(ops[2], 0, 64)
		if perr != nil {
			return &Error{n, fmt.Sprintf("bad jalr offset %q", ops[2])}
		}
		a.emit(isa.Inst{Op: isa.JALR, Rd: rd, Rs1: rs, Rs2: isa.NoReg, Imm: v})
	case aluRegOps[mnemonic] != 0:
		if err := need(3); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		r1, err := reg(1)
		if err != nil {
			return err
		}
		r2, err := reg(2)
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: aluRegOps[mnemonic], Rd: rd, Rs1: r1, Rs2: r2})
	case aluImmOps[mnemonic] != 0:
		if err := need(3); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		r1, err := reg(1)
		if err != nil {
			return err
		}
		v, perr := strconv.ParseInt(ops[2], 0, 64)
		if perr != nil {
			return &Error{n, fmt.Sprintf("bad immediate %q", ops[2])}
		}
		a.emit(isa.Inst{Op: aluImmOps[mnemonic], Rd: rd, Rs1: r1, Rs2: isa.NoReg, Imm: v})
	case loadOps[mnemonic] != 0:
		if err := need(2); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		base, off, _, ok := a.parseMem(ops[1])
		if !ok {
			return &Error{n, fmt.Sprintf("bad memory operand %q", ops[1])}
		}
		a.emit(isa.Inst{Op: loadOps[mnemonic], Rd: rd, Rs1: base, Rs2: isa.NoReg, Imm: off})
	case storeOps[mnemonic] != 0:
		if err := need(2); err != nil {
			return err
		}
		base, off, _, ok := a.parseMem(ops[0])
		if !ok {
			return &Error{n, fmt.Sprintf("bad memory operand %q", ops[0])}
		}
		rs, err := reg(1)
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: storeOps[mnemonic], Rd: isa.NoReg, Rs1: base, Rs2: rs, Imm: off})
	case mnemonic == "ldadd" || mnemonic == "ldxor":
		if err := need(3); err != nil {
			return err
		}
		rd, err := reg(0)
		if err != nil {
			return err
		}
		rs2, err := reg(1)
		if err != nil {
			return err
		}
		base, off, _, ok := a.parseMem(ops[2])
		if !ok {
			return &Error{n, fmt.Sprintf("bad memory operand %q", ops[2])}
		}
		op := isa.LDADD
		if mnemonic == "ldxor" {
			op = isa.LDXOR
		}
		a.emit(isa.Inst{Op: op, Rd: rd, Rs1: base, Rs2: rs2, Imm: off})
	case mnemonic == "stadd":
		if err := need(2); err != nil {
			return err
		}
		base, off, _, ok := a.parseMem(ops[0])
		if !ok {
			return &Error{n, fmt.Sprintf("bad memory operand %q", ops[0])}
		}
		rs, err := reg(1)
		if err != nil {
			return err
		}
		a.emit(isa.Inst{Op: isa.STADD, Rd: isa.NoReg, Rs1: base, Rs2: rs, Imm: off})
	case branchOps[mnemonic] != 0 || swapBranchOps[mnemonic] != 0:
		if err := need(3); err != nil {
			return err
		}
		r1, err := reg(0)
		if err != nil {
			return err
		}
		r2, err := reg(1)
		if err != nil {
			return err
		}
		op := branchOps[mnemonic]
		if op == 0 {
			op = swapBranchOps[mnemonic]
			r1, r2 = r2, r1
		}
		return a.immOrLabel(ops[2], isa.Inst{Op: op, Rd: isa.NoReg, Rs1: r1, Rs2: r2}, n)
	default:
		return &Error{n, fmt.Sprintf("unknown mnemonic %q", mnemonic)}
	}
	return nil
}
