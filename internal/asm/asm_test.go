package asm

import (
	"strings"
	"testing"

	"merlin/internal/isa"
)

func TestAssembleBasic(t *testing.T) {
	p, err := Assemble("t", `
		; comment
		li   r1, 10
		li   r2, 0x20     # hex
		add  r3, r1, r2
		out  r3
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Text) != 5 {
		t.Fatalf("got %d instructions, want 5", len(p.Text))
	}
	if p.Text[0].Op != isa.LI || p.Text[0].Imm != 10 {
		t.Errorf("inst 0 = %v", p.Text[0])
	}
	if p.Text[1].Imm != 0x20 {
		t.Errorf("hex immediate = %d", p.Text[1].Imm)
	}
	if p.Text[2].Op != isa.ADD || p.Text[2].Rd != 3 {
		t.Errorf("inst 2 = %v", p.Text[2])
	}
}

func TestLabelsAndBranches(t *testing.T) {
	p, err := Assemble("t", `
		li r1, 0
		li r2, 5
	loop:
		addi r1, r1, 1
		blt  r1, r2, loop
		j    done
		nop
	done:
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Text[3].Op != isa.BLT || p.Text[3].Imm != 2 {
		t.Errorf("branch = %v, want target 2", p.Text[3])
	}
	if p.Text[4].Op != isa.JAL || p.Text[4].Imm != 6 {
		t.Errorf("jump = %v, want target 6", p.Text[4])
	}
	if p.Symbols["loop"] != 2 || p.Symbols["done"] != 6 {
		t.Errorf("symbols = %v", p.Symbols)
	}
}

func TestDataSegment(t *testing.T) {
	p, err := Assemble("t", `
		.data
	arr:	.word 1, 2, 3
	bytes:	.byte 0xff, 1
	buf:	.space 16
	msg:	.ascii "hi"
		.text
		li r1, arr
		ld r2, [r1+8]
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Symbols["arr"] != isa.DataBase {
		t.Errorf("arr at %#x, want %#x", p.Symbols["arr"], isa.DataBase)
	}
	if p.Symbols["bytes"] != isa.DataBase+24 {
		t.Errorf("bytes at %#x", p.Symbols["bytes"])
	}
	if p.Symbols["buf"] != isa.DataBase+26 {
		t.Errorf("buf at %#x", p.Symbols["buf"])
	}
	if want := isa.DataBase + 42; p.Symbols["msg"] != int64(want) {
		t.Errorf("msg at %#x, want %#x", p.Symbols["msg"], want)
	}
	if len(p.Data) != 44 {
		t.Errorf("data length = %d, want 44", len(p.Data))
	}
	if p.Data[0] != 1 || p.Data[8] != 2 || p.Data[16] != 3 {
		t.Errorf("word data wrong: % x", p.Data[:24])
	}
	if p.Data[24] != 0xff || p.Data[25] != 1 {
		t.Errorf("byte data wrong: % x", p.Data[24:26])
	}
	if string(p.Data[42:44]) != "hi" {
		t.Errorf("ascii data wrong: %q", p.Data[42:44])
	}
	// li of a data label resolves to its absolute address.
	if p.Text[0].Imm != isa.DataBase {
		t.Errorf("li arr = %d", p.Text[0].Imm)
	}
}

func TestMemoryOperands(t *testing.T) {
	p, err := Assemble("t", `
		ld r1, [r2+8]
		ld r1, [r2-8]
		ld r1, [r2]
		sd [sp-16], r1
		sw [r2+4], r3
		ldadd r1, r3, [r2+8]
		stadd [r2+8], r3
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	wantImm := []int64{8, -8, 0, -16, 4, 8, 8}
	for i, w := range wantImm {
		if p.Text[i].Imm != w {
			t.Errorf("inst %d imm = %d, want %d", i, p.Text[i].Imm, w)
		}
	}
	if p.Text[3].Rs1 != isa.RegSP {
		t.Errorf("sp alias: rs1 = %d", p.Text[3].Rs1)
	}
	if p.Text[5].Op != isa.LDADD || p.Text[6].Op != isa.STADD {
		t.Errorf("rmw ops = %v, %v", p.Text[5].Op, p.Text[6].Op)
	}
}

func TestPseudoOps(t *testing.T) {
	p, err := Assemble("t", `
	start:
		mv   r1, r2
		call fn
		bgt  r1, r2, start
		ble  r1, r2, start
		ret
	fn:
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Text[0].Op != isa.ADDI || p.Text[0].Imm != 0 {
		t.Errorf("mv = %v", p.Text[0])
	}
	if p.Text[1].Op != isa.JAL || p.Text[1].Rd != isa.RegLR || p.Text[1].Imm != 5 {
		t.Errorf("call = %v", p.Text[1])
	}
	// bgt r1,r2 swaps to blt r2,r1.
	if p.Text[2].Op != isa.BLT || p.Text[2].Rs1 != 2 || p.Text[2].Rs2 != 1 {
		t.Errorf("bgt = %v", p.Text[2])
	}
	if p.Text[3].Op != isa.BGE || p.Text[3].Rs1 != 2 || p.Text[3].Rs2 != 1 {
		t.Errorf("ble = %v", p.Text[3])
	}
	if p.Text[4].Op != isa.JALR || p.Text[4].Rs1 != isa.RegLR {
		t.Errorf("ret = %v", p.Text[4])
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		src  string
		frag string
	}{
		{"bogus r1, r2", "unknown mnemonic"},
		{"add r1, r2", "expects 3 operands"},
		{"add r1, r2, r99", "bad register"},
		{"ld r1, r2", "bad memory operand"},
		{"j nowhere", "undefined label"},
		{"x: halt\nx: halt", "duplicate label"},
		{".data\nadd r1, r2, r3", "instruction in .data"},
		{".bogus 3", "unknown directive"},
		{"addi r1, r2, xyz", "bad immediate"},
	}
	for _, c := range cases {
		_, err := Assemble("t", c.src)
		if err == nil {
			t.Errorf("source %q: expected error containing %q, got nil", c.src, c.frag)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("source %q: error %q does not contain %q", c.src, err, c.frag)
		}
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble should panic on bad source")
		}
	}()
	MustAssemble("bad", "bogus")
}

func TestCommentsInsideStrings(t *testing.T) {
	p, err := Assemble("t", `
		.data
	s:	.ascii "a;b#c"
	`)
	if err != nil {
		t.Fatal(err)
	}
	if string(p.Data) != "a;b#c" {
		t.Errorf("data = %q", p.Data)
	}
}
