package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolLiveness: heartbeats auto-register, the TTL ages workers out,
// a fresh beat revives them, and Remove forgets them immediately.
func TestPoolLiveness(t *testing.T) {
	now := time.Now()
	p := NewPool(time.Second)
	p.now = func() time.Time { return now }

	if err := p.Heartbeat("w1", "http://a"); err != nil {
		t.Fatal(err)
	}
	if err := p.Heartbeat("", "http://a"); err == nil {
		t.Fatal("heartbeat accepted an empty id")
	}
	if alive := p.Alive(); len(alive) != 1 || alive[0].ID != "w1" || !alive[0].Alive {
		t.Fatalf("alive = %+v", alive)
	}

	now = now.Add(2 * time.Second) // past the TTL
	if alive := p.Alive(); len(alive) != 0 {
		t.Fatalf("stale worker still alive: %+v", alive)
	}
	if all := p.All(); len(all) != 1 || all[0].Alive {
		t.Fatalf("All = %+v, want one dead worker", all)
	}

	// A beat revives it, with a new address.
	p.Heartbeat("w1", "http://b")
	if alive := p.Alive(); len(alive) != 1 || alive[0].Addr != "http://b" {
		t.Fatalf("revived = %+v", alive)
	}
	p.Remove("w1")
	if all := p.All(); len(all) != 0 {
		t.Fatalf("removed worker lingers: %+v", all)
	}
}

// TestPoolHandler: the join/heartbeat/workers endpoints round-trip over
// HTTP, and alive sorting is by id.
func TestPoolHandler(t *testing.T) {
	p := NewPool(time.Minute)
	hs := httptest.NewServer(p.Handler())
	defer hs.Close()

	for _, id := range []string{"w2", "w1"} {
		body := fmt.Sprintf(`{"id":%q,"addr":"http://%s"}`, id, id)
		resp, err := http.Post(hs.URL+"/fleet/join", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var out struct {
			OK    bool  `json:"ok"`
			TTLms int64 `json:"ttl_ms"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || !out.OK {
			t.Fatalf("join: %v ok=%v", err, out.OK)
		}
		resp.Body.Close()
		if out.TTLms != time.Minute.Milliseconds() {
			t.Fatalf("join ttl_ms = %d", out.TTLms)
		}
	}

	resp, err := http.Get(hs.URL + "/fleet/workers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Workers []WorkerInfo `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Workers) != 2 || list.Workers[0].ID != "w1" || !list.Workers[1].Alive {
		t.Fatalf("workers = %+v", list.Workers)
	}

	bad, err := http.Post(hs.URL+"/fleet/join", "application/json", strings.NewReader(`{"id":""}`))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty join = %d, want 400", bad.StatusCode)
	}
}

// fakeWorker serves an Agent-shaped /fleet/run that classifies every rep
// as "Masked". dieAfter > 0 makes it abort the connection after
// streaming that many outcomes — a crash mid-shard, as the coordinator
// sees it.
func fakeWorker(t *testing.T, name string, dieAfter *atomic.Int64, calls *atomic.Int64) *httptest.Server {
	t.Helper()
	agent := &Agent{
		ID: name,
		Run: func(ctx context.Context, job ShardJob, emit func(Outcome)) error {
			if calls != nil {
				calls.Add(1)
			}
			for i, rep := range job.Reps {
				if dieAfter != nil {
					if n := dieAfter.Load(); n >= 0 && int64(i) >= n {
						panic(http.ErrAbortHandler) // kill the stream mid-shard
					}
				}
				emit(Outcome{Rep: rep, Fault: fmt.Sprintf("f%d", rep), Outcome: "Masked"})
			}
			return nil
		},
	}
	hs := httptest.NewServer(agent.Handler())
	t.Cleanup(hs.Close)
	return hs
}

func dispatcherFor(p *Pool, got *sync.Map, localReps *[][]int, localMu *sync.Mutex) *Dispatcher {
	return &Dispatcher{
		Pool: p,
		Job: func(reps []int) ShardJob {
			return ShardJob{Campaign: "c000001", Reps: reps}
		},
		OnOutcome: func(o Outcome) { got.Store(o.Rep, o.Outcome) },
		Local: func(ctx context.Context, reps []int) error {
			localMu.Lock()
			*localReps = append(*localReps, reps)
			localMu.Unlock()
			for _, rep := range reps {
				got.Store(rep, "Masked")
			}
			return nil
		},
		Backoff: 10 * time.Millisecond,
	}
}

func countSyncMap(m *sync.Map) int {
	n := 0
	m.Range(func(_, _ any) bool { n++; return true })
	return n
}

// TestDispatcherSpreadsShards: two healthy workers split the shards and
// every rep is classified exactly once, with no local fallback.
func TestDispatcherSpreadsShards(t *testing.T) {
	var callsA, callsB atomic.Int64
	wA := fakeWorker(t, "wA", nil, &callsA)
	wB := fakeWorker(t, "wB", nil, &callsB)
	p := NewPool(time.Minute)
	p.Heartbeat("wA", wA.URL)
	p.Heartbeat("wB", wB.URL)

	var got sync.Map
	var localReps [][]int
	var localMu sync.Mutex
	d := dispatcherFor(p, &got, &localReps, &localMu)

	shards := [][]int{{0, 1}, {2, 3}, {4}, {5, 6, 7}}
	if err := d.Run(context.Background(), shards); err != nil {
		t.Fatal(err)
	}
	if n := countSyncMap(&got); n != 8 {
		t.Fatalf("classified %d of 8 reps", n)
	}
	if len(localReps) != 0 {
		t.Fatalf("healthy fleet fell back to local: %v", localReps)
	}
	if callsA.Load() == 0 || callsB.Load() == 0 {
		t.Fatalf("shards not spread: wA=%d wB=%d calls", callsA.Load(), callsB.Load())
	}
}

// TestDispatcherStealsFromDeadWorker: a worker that dies mid-stream has
// its unfinished reps requeued onto the survivor; everything still gets
// classified exactly once and the dead worker leaves the pool.
func TestDispatcherStealsFromDeadWorker(t *testing.T) {
	var dieAfter atomic.Int64
	dieAfter.Store(1) // stream one outcome, then break the connection
	wDead := fakeWorker(t, "wDead", &dieAfter, nil)
	wGood := fakeWorker(t, "wGood", nil, nil)
	p := NewPool(time.Minute)
	p.Heartbeat("a-dead", wDead.URL) // sorts first → gets shard 0
	p.Heartbeat("b-good", wGood.URL)

	var got sync.Map
	var localReps [][]int
	var localMu sync.Mutex
	d := dispatcherFor(p, &got, &localReps, &localMu)
	d.Attempts = 1 // first break requeues immediately

	var requeues atomic.Int64
	d.Emit = func(typ, msg string) {
		if typ == "requeue" {
			requeues.Add(1)
		}
	}

	shards := [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}}
	if err := d.Run(context.Background(), shards); err != nil {
		t.Fatal(err)
	}
	if n := countSyncMap(&got); n != 8 {
		t.Fatalf("classified %d of 8 reps after worker loss", n)
	}
	if requeues.Load() == 0 {
		t.Fatal("no requeue event despite a mid-stream death")
	}
	alive := p.Alive()
	if len(alive) != 1 || alive[0].ID != "b-good" {
		t.Fatalf("pool after loss = %+v, want only the survivor", alive)
	}
}

// TestDispatcherLocalFallbackWhenNoWorkers: with an empty pool the
// dispatcher degrades to in-process execution — single-node mode.
func TestDispatcherLocalFallbackWhenNoWorkers(t *testing.T) {
	p := NewPool(time.Minute)
	var got sync.Map
	var localReps [][]int
	var localMu sync.Mutex
	d := dispatcherFor(p, &got, &localReps, &localMu)

	if err := d.Run(context.Background(), [][]int{{0, 1}, {2}}); err != nil {
		t.Fatal(err)
	}
	if len(localReps) != 2 || countSyncMap(&got) != 3 {
		t.Fatalf("local fallback ran %d shards, classified %d reps", len(localReps), countSyncMap(&got))
	}
}

// TestDispatcherExhaustedRoundsFallBack: when every worker keeps dying,
// the dispatcher stops burning rounds and finishes the remainder locally
// rather than looping forever.
func TestDispatcherExhaustedRoundsFallBack(t *testing.T) {
	var dieAfter atomic.Int64 // die immediately, every time
	wDead := fakeWorker(t, "wDead", &dieAfter, nil)
	p := NewPool(time.Minute)

	var got sync.Map
	var localReps [][]int
	var localMu sync.Mutex
	d := dispatcherFor(p, &got, &localReps, &localMu)
	d.Attempts = 1
	d.Rounds = 2

	// The worker re-heartbeats between rounds (Remove would otherwise
	// empty the pool and trigger the no-worker fallback, which is the
	// other test).
	d.Emit = func(typ, _ string) {
		if typ == "requeue" {
			p.Heartbeat("wDead", wDead.URL)
		}
	}
	p.Heartbeat("wDead", wDead.URL)

	if err := d.Run(context.Background(), [][]int{{0, 1, 2}}); err != nil {
		t.Fatal(err)
	}
	if countSyncMap(&got) != 3 {
		t.Fatalf("classified %d of 3 reps", countSyncMap(&got))
	}
	if len(localReps) == 0 {
		t.Fatal("exhausted rounds did not fall back to local execution")
	}
}

// TestDispatcherContextCancel: a cancelled context stops the dispatch
// promptly with ctx.Err().
func TestDispatcherContextCancel(t *testing.T) {
	p := NewPool(time.Minute)
	var got sync.Map
	var localReps [][]int
	var localMu sync.Mutex
	d := dispatcherFor(p, &got, &localReps, &localMu)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := d.Run(ctx, [][]int{{0}}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestAgentJoinAndHeartbeat: the agent joins with retry (coordinator up
// late), then heartbeats on the negotiated interval; the pool sees it
// alive. A coordinator restart (fresh pool) re-learns the worker from
// heartbeats alone.
func TestAgentJoinAndHeartbeat(t *testing.T) {
	var pool atomic.Pointer[Pool] // swapped on simulated coordinator restart
	pool.Store(NewPool(300 * time.Millisecond))
	var flaky atomic.Int64
	flaky.Store(2) // fail the first two joins to exercise the retry path
	mux := http.NewServeMux()
	mux.Handle("/fleet/", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/join") && flaky.Add(-1) >= 0 {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		pool.Load().Handler().ServeHTTP(w, r)
	}))
	hs := httptest.NewServer(mux)
	defer hs.Close()

	agent := &Agent{
		ID:          "w1",
		Coordinator: hs.URL,
		Advertise:   "http://worker-1",
		Interval:    50 * time.Millisecond,
		Run:         func(context.Context, ShardJob, func(Outcome)) error { return nil },
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errc := make(chan error, 1)
	go func() { errc <- agent.Start(ctx) }()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if alive := pool.Load().Alive(); len(alive) == 1 && alive[0].Addr == "http://worker-1" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("agent never became alive in the pool")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Simulate a coordinator restart: new empty pool behind the same URL.
	// Heartbeats auto-register, so the agent reappears without rejoining.
	pool.Store(NewPool(300 * time.Millisecond))
	deadline = time.Now().Add(5 * time.Second)
	for {
		if alive := pool.Load().Alive(); len(alive) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("restarted coordinator never re-learned the worker")
		}
		time.Sleep(10 * time.Millisecond)
	}

	cancel()
	if err := <-errc; err != context.Canceled {
		t.Fatalf("agent exit = %v, want context.Canceled", err)
	}
}

// TestAgentHandlerStreamsDoneMarker: a clean shard ends with the done
// marker; a failing shard carries the error on it.
func TestAgentHandlerStreamsDoneMarker(t *testing.T) {
	agent := &Agent{
		ID: "w1",
		Run: func(ctx context.Context, job ShardJob, emit func(Outcome)) error {
			for _, rep := range job.Reps {
				emit(Outcome{Rep: rep, Outcome: "SDC"})
			}
			if job.Campaign == "boom" {
				return fmt.Errorf("synthetic shard failure")
			}
			return nil
		},
	}
	hs := httptest.NewServer(agent.Handler())
	defer hs.Close()

	stream := func(campaign string) []Outcome {
		t.Helper()
		body, _ := json.Marshal(ShardJob{Campaign: campaign, Reps: []int{3, 5}})
		resp, err := http.Post(hs.URL+"/fleet/run", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var outs []Outcome
		dec := json.NewDecoder(resp.Body)
		for dec.More() {
			var o Outcome
			if err := dec.Decode(&o); err != nil {
				t.Fatal(err)
			}
			outs = append(outs, o)
		}
		return outs
	}

	outs := stream("ok")
	if len(outs) != 3 || outs[0].Rep != 3 || outs[1].Rep != 5 {
		t.Fatalf("stream = %+v", outs)
	}
	if last := outs[2]; !last.Done || last.Err != "" {
		t.Fatalf("done marker = %+v", last)
	}
	outs = stream("boom")
	if last := outs[len(outs)-1]; !last.Done || !strings.Contains(last.Err, "synthetic") {
		t.Fatalf("failure marker = %+v", last)
	}

	bad, err := http.Post(hs.URL+"/fleet/run", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad job = %d, want 400", bad.StatusCode)
	}
}

// stallingWorker streams the first outcome of every shard, then goes
// silent with the connection open — the handler only returns when the
// coordinator abandons the stream (body close → request context cancel).
// Paired with re-heartbeats it models the stalled-but-heartbeating
// worker: alive by every liveness signal the fleet had before the
// watchdog, dead by the only one that matters, progress.
func stallingWorker(t *testing.T, name string) *httptest.Server {
	t.Helper()
	agent := &Agent{
		ID: name,
		Run: func(ctx context.Context, job ShardJob, emit func(Outcome)) error {
			emit(Outcome{Rep: job.Reps[0], Outcome: "Masked"})
			<-ctx.Done()
			return ctx.Err()
		},
	}
	hs := httptest.NewServer(agent.Handler())
	t.Cleanup(hs.Close)
	return hs
}

// TestDispatcherWatchdogStallRequeue is the dedicated stalled-worker
// test: before the progress watchdog, this dispatch hung forever — the
// stream never broke, the worker never stopped heartbeating, and no
// liveness mechanism fired. Now the quiet window trips the watchdog, the
// stream is abandoned with ErrShardStall, the worker is removed, and the
// unclassified reps finish on the healthy worker.
func TestDispatcherWatchdogStallRequeue(t *testing.T) {
	wStall := stallingWorker(t, "a-stall")
	wGood := fakeWorker(t, "b-good", nil, nil)
	p := NewPool(time.Minute)
	p.Heartbeat("a-stall", wStall.URL) // sorts first → gets shard 0
	p.Heartbeat("b-good", wGood.URL)

	var got sync.Map
	var localReps [][]int
	var localMu sync.Mutex
	d := dispatcherFor(p, &got, &localReps, &localMu)
	d.Attempts = 1
	d.StallTimeout = 100 * time.Millisecond

	var stallRequeues atomic.Int64
	d.Emit = func(typ, msg string) {
		if typ == "requeue" && strings.Contains(msg, "stalled") {
			stallRequeues.Add(1)
			// The stalled worker keeps heartbeating: TTL liveness alone
			// must not be what saves this dispatch.
			p.Heartbeat("a-stall", wStall.URL)
		}
	}

	done := make(chan error, 1)
	go func() { done <- d.Run(context.Background(), [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}}) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("dispatch still hung on a stalled worker: watchdog never fired")
	}
	if n := countSyncMap(&got); n != 8 {
		t.Fatalf("classified %d of 8 reps after the stall", n)
	}
	if stallRequeues.Load() == 0 {
		t.Fatal("no requeue event named the stall")
	}
}

// TestDispatcherOversizedOutcomeLine: a worker emitting one absurd line
// fails its shard with the named ErrOversizedOutcome (not a generic
// scanner break) and the reps requeue onto the healthy worker.
func TestDispatcherOversizedOutcomeLine(t *testing.T) {
	huge := &Agent{
		ID: "a-huge",
		Run: func(ctx context.Context, job ShardJob, emit func(Outcome)) error {
			emit(Outcome{Rep: job.Reps[0], Fault: strings.Repeat("x", 4096), Outcome: "Masked"})
			return nil
		},
	}
	hsHuge := httptest.NewServer(huge.Handler())
	defer hsHuge.Close()
	wGood := fakeWorker(t, "b-good", nil, nil)
	p := NewPool(time.Minute)
	p.Heartbeat("a-huge", hsHuge.URL)
	p.Heartbeat("b-good", wGood.URL)

	var got sync.Map
	var localReps [][]int
	var localMu sync.Mutex
	d := dispatcherFor(p, &got, &localReps, &localMu)
	d.Attempts = 1
	d.MaxLine = 1024

	var oversized atomic.Int64
	d.Emit = func(typ, msg string) {
		if typ == "requeue" && strings.Contains(msg, "oversized outcome line") {
			oversized.Add(1)
		}
	}
	if err := d.Run(context.Background(), [][]int{{0, 1, 2}, {3, 4, 5}}); err != nil {
		t.Fatal(err)
	}
	if n := countSyncMap(&got); n != 6 {
		t.Fatalf("classified %d of 6 reps", n)
	}
	if oversized.Load() == 0 {
		t.Fatal("no requeue event named the oversized line")
	}
}

// TestDispatcherPoisonShardFailsLoudly: a shard that fails on
// PoisonBudget distinct workers gets one local run; when that fails too,
// the campaign fails with ErrPoisonShard instead of looping rounds.
func TestDispatcherPoisonShardFailsLoudly(t *testing.T) {
	var dieNow atomic.Int64 // every worker dies immediately, every time
	workers := map[string]*httptest.Server{
		"w1": fakeWorker(t, "w1", &dieNow, nil),
		"w2": fakeWorker(t, "w2", &dieNow, nil),
		"w3": fakeWorker(t, "w3", &dieNow, nil),
	}
	p := NewPool(time.Minute)
	for id, hs := range workers {
		p.Heartbeat(id, hs.URL)
	}

	var got sync.Map
	d := &Dispatcher{
		Pool:      p,
		Job:       func(reps []int) ShardJob { return ShardJob{Campaign: "c1", Reps: reps} },
		OnOutcome: func(o Outcome) { got.Store(o.Rep, o.Outcome) },
		Local: func(ctx context.Context, reps []int) error {
			return fmt.Errorf("injector rejects these reps")
		},
		Attempts:     1,
		Backoff:      time.Millisecond,
		Rounds:       10,
		PoisonBudget: 3,
		Emit: func(typ, _ string) {
			if typ == "requeue" { // failed workers keep heartbeating back in
				for id, hs := range workers {
					p.Heartbeat(id, hs.URL)
				}
			}
		},
	}
	err := d.Run(context.Background(), [][]int{{0, 1, 2}})
	if !errors.Is(err, ErrPoisonShard) {
		t.Fatalf("err = %v, want ErrPoisonShard", err)
	}
	for _, frag := range []string{"3 distinct workers", "local fallback"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("poison diagnostic %q lacks %q", err, frag)
		}
	}
}

// TestDispatcherMismatchedDuplicateFatal: a worker contradicting its own
// classification of a rep fails the dispatch immediately with
// ErrMismatchedOutcome — a determinism violation is never requeued away.
func TestDispatcherMismatchedDuplicateFatal(t *testing.T) {
	byz := &Agent{
		ID: "byz",
		Run: func(ctx context.Context, job ShardJob, emit func(Outcome)) error {
			emit(Outcome{Rep: job.Reps[0], Outcome: "Masked"})
			emit(Outcome{Rep: job.Reps[0], Outcome: "SDC"})
			return nil
		},
	}
	hs := httptest.NewServer(byz.Handler())
	defer hs.Close()
	p := NewPool(time.Minute)
	p.Heartbeat("byz", hs.URL)

	var got sync.Map
	var localReps [][]int
	var localMu sync.Mutex
	d := dispatcherFor(p, &got, &localReps, &localMu)
	d.Attempts = 1

	err := d.Run(context.Background(), [][]int{{0, 1}})
	if !errors.Is(err, ErrMismatchedOutcome) {
		t.Fatalf("err = %v, want ErrMismatchedOutcome", err)
	}
	if len(localReps) != 0 {
		t.Fatal("determinism violation fell back to local instead of failing")
	}
}

// TestDispatcherBenignDuplicateTolerated: re-emitting the same line
// verbatim is dedup'd, not fatal.
func TestDispatcherBenignDuplicateTolerated(t *testing.T) {
	dup := &Agent{
		ID: "dup",
		Run: func(ctx context.Context, job ShardJob, emit func(Outcome)) error {
			for _, rep := range job.Reps {
				o := Outcome{Rep: rep, Outcome: "Masked"}
				emit(o)
				emit(o)
			}
			return nil
		},
	}
	hs := httptest.NewServer(dup.Handler())
	defer hs.Close()
	p := NewPool(time.Minute)
	p.Heartbeat("dup", hs.URL)

	var outcomes atomic.Int64
	d := &Dispatcher{
		Pool:      p,
		Job:       func(reps []int) ShardJob { return ShardJob{Campaign: "c1", Reps: reps} },
		OnOutcome: func(o Outcome) { outcomes.Add(1) },
		Local:     func(ctx context.Context, reps []int) error { return nil },
		Backoff:   time.Millisecond,
	}
	if err := d.Run(context.Background(), [][]int{{0, 1, 2}}); err != nil {
		t.Fatal(err)
	}
	if outcomes.Load() != 3 {
		t.Fatalf("OnOutcome fired %d times for 3 reps with duplicates", outcomes.Load())
	}
}

// TestPoolCircuitBreaker: BreakerThreshold consecutive failures
// quarantine a worker even while it heartbeats; the cooldown half-opens
// it; one more failure re-trips instantly; a success clears everything.
func TestPoolCircuitBreaker(t *testing.T) {
	now := time.Now()
	p := NewPool(time.Second)
	p.now = func() time.Time { return now }
	p.Heartbeat("w1", "http://a")

	for i := 0; i < BreakerThreshold-1; i++ {
		p.NoteShardFailure("w1")
		if len(p.Alive()) != 1 {
			t.Fatalf("worker quarantined after only %d failures", i+1)
		}
	}
	p.NoteShardFailure("w1")
	if len(p.Alive()) != 0 {
		t.Fatal("worker still assignable after tripping the breaker")
	}
	all := p.All()
	if len(all) != 1 || !all[0].Quarantined || !all[0].Alive {
		t.Fatalf("All = %+v, want one alive quarantined worker", all)
	}

	// Quarantine survives Remove + re-heartbeat: a crash-looping worker
	// does not launder its record by rejoining.
	p.Remove("w1")
	p.Heartbeat("w1", "http://a")
	if len(p.Alive()) != 0 {
		t.Fatal("re-heartbeat after Remove cleared the quarantine")
	}

	// Cooldown expiry half-opens: assignable again, but the very next
	// failure re-trips without needing a fresh streak.
	now = now.Add(5 * time.Second) // past the 4×TTL cooldown
	p.Heartbeat("w1", "http://a")
	if len(p.Alive()) != 1 {
		t.Fatal("cooldown expiry did not half-open the breaker")
	}
	p.NoteShardFailure("w1")
	if len(p.Alive()) != 0 {
		t.Fatal("half-open failure did not re-trip the breaker")
	}

	// Success closes the breaker for good.
	now = now.Add(5 * time.Second)
	p.Heartbeat("w1", "http://a")
	p.NoteShardSuccess("w1")
	p.NoteShardFailure("w1")
	if len(p.Alive()) != 1 {
		t.Fatal("one failure after a success re-quarantined: streak was not cleared")
	}
}
