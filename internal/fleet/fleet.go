// Package fleet is the coordinator/worker layer of the campaign service:
// worker registration and heartbeat-based liveness (Pool), the worker
// agent that joins a coordinator and executes shard jobs (Agent), and the
// work-stealing dispatcher that spreads a campaign's fault groups across
// live workers and requeues a lost worker's unfinished groups (Dispatcher).
//
// The protocol is deliberately thin, because MeRLiN's determinism does
// the heavy lifting: a worker re-derives Preprocess and Reduce from the
// campaign request bit-identically (same binary, registered workloads,
// deterministic sampling), so a shard job only needs to carry the request
// JSON plus the global representative indices to inject — not fault
// lists or traces. Golden artifacts travel separately by content address
// so a warm worker skips its golden run entirely. Per-fault outcomes
// stream back as NDJSON with a final done marker; any stream that ends
// without the marker (worker crash, network partition) simply leaves its
// reps pending, and the next dispatch round reassigns them to whoever is
// still alive.
//
// Like internal/server, this package never imports the simulator: the
// shard execution is an injected ShardRunFunc, and the request payload is
// an opaque JSON blob. The root merlin package wires both sides.
package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ShardJob is the wire form of one shard assignment: everything a worker
// needs to execute its slice of a campaign.
type ShardJob struct {
	// Campaign is the coordinator's record id (for logs and idempotence).
	Campaign string `json:"campaign"`
	// Request is the campaign's submission JSON (server.Request); the
	// worker re-derives Preprocess and Reduce from it deterministically.
	Request json.RawMessage `json:"request"`
	// Reps are the global representative indices (positions in the
	// reduction's Reduced() order) this shard must inject.
	Reps []int `json:"reps"`
	// ArtifactID and ArtifactURL let the worker prefetch the campaign's
	// golden-run artifact by content address instead of repeating the
	// golden run; both optional — a worker that cannot fetch recomputes.
	ArtifactID  string `json:"artifact_id,omitempty"`
	ArtifactURL string `json:"artifact_url,omitempty"`
}

// Outcome is one line of a shard job's NDJSON response stream: a
// classified representative, or the final done marker (Done true, Err
// carrying the shard's failure if it did not complete cleanly).
type Outcome struct {
	Rep     int    `json:"rep"`
	Fault   string `json:"fault,omitempty"`
	Outcome string `json:"outcome,omitempty"`
	Done    bool   `json:"done,omitempty"`
	Err     string `json:"error,omitempty"`
}

// ShardRunFunc executes one shard job on a worker, emitting each
// classified representative as it lands. It must observe ctx (the HTTP
// request's context: coordinator gone = stop injecting).
type ShardRunFunc func(ctx context.Context, job ShardJob, emit func(Outcome)) error

// WorkerInfo describes one registered worker.
type WorkerInfo struct {
	ID       string    `json:"id"`
	Addr     string    `json:"addr"`
	LastSeen time.Time `json:"last_seen"`
	Alive    bool      `json:"alive"`
	// Quarantined marks a worker inside its circuit-breaker cooldown:
	// heartbeating, but excluded from shard assignment until the
	// cooldown expires or a successful shard closes the breaker.
	Quarantined bool `json:"quarantined,omitempty"`
}

// DefaultTTL is the heartbeat liveness window: a worker silent for
// longer is considered dead and stops receiving shards (its in-flight
// shards requeue when their streams break).
const DefaultTTL = 10 * time.Second

// BreakerThreshold is the circuit breaker's trip point: a worker whose
// shard dispatches fail this many times in a row is quarantined — it
// stops receiving shards even while its heartbeats keep it registered.
// A heartbeat proves the process is up, not that it can run shards; a
// worker that stalls or crashes every shard while heartbeating would
// otherwise be re-admitted every round and tax each one with a watchdog
// window.
const BreakerThreshold = 3

// Pool tracks registered workers and their liveness on the coordinator.
// Heartbeats auto-register, so a restarted coordinator re-learns its
// fleet within one heartbeat interval without any worker-side logic.
type Pool struct {
	ttl time.Duration
	now func() time.Time // test hook

	mu      sync.Mutex
	workers map[string]*WorkerInfo
	// fails and cooledUntil implement the consecutive-failure circuit
	// breaker. Both are keyed by worker id and deliberately survive
	// Remove: a failing worker that re-registers on its next heartbeat
	// must not start with a clean slate.
	fails       map[string]int
	cooledUntil map[string]time.Time
}

// NewPool creates a worker pool with the given liveness TTL (0 means
// DefaultTTL).
func NewPool(ttl time.Duration) *Pool {
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	return &Pool{ttl: ttl, now: time.Now,
		workers:     make(map[string]*WorkerInfo),
		fails:       make(map[string]int),
		cooledUntil: make(map[string]time.Time),
	}
}

// NoteShardFailure feeds the circuit breaker: one failed shard dispatch
// against id. At BreakerThreshold consecutive failures the worker is
// quarantined for a cooldown of several TTLs, after which it is
// half-open — assignable again, but one more failure re-trips the
// breaker instantly (the counter only resets on success).
func (p *Pool) NoteShardFailure(id string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fails[id]++
	if p.fails[id] >= BreakerThreshold {
		p.cooledUntil[id] = p.now().Add(4 * p.ttl)
	}
}

// NoteShardSuccess closes the breaker for id: a cleanly completed shard
// proves the worker healthy, clearing its failure streak and any
// quarantine.
func (p *Pool) NoteShardSuccess(id string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.fails, id)
	delete(p.cooledUntil, id)
}

// quarantinedLocked reports whether id is inside its breaker cooldown.
// Callers hold p.mu.
func (p *Pool) quarantinedLocked(id string, now time.Time) bool {
	until, ok := p.cooledUntil[id]
	return ok && now.Before(until)
}

// Heartbeat registers or refreshes a worker. Address changes (a worker
// restarted on a new port) take effect immediately.
func (p *Pool) Heartbeat(id, addr string) error {
	if id == "" || addr == "" {
		return fmt.Errorf("fleet: heartbeat requires id and addr")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	w := p.workers[id]
	if w == nil {
		w = &WorkerInfo{ID: id}
		p.workers[id] = w
	}
	w.Addr = addr
	w.LastSeen = p.now()
	return nil
}

// Remove forgets a worker immediately (e.g. after a failed dispatch, so
// the next round does not wait out the TTL to route around it).
func (p *Pool) Remove(id string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.workers, id)
}

// Alive returns the workers seen within the TTL and not quarantined by
// the circuit breaker, sorted by id for deterministic shard assignment.
func (p *Pool) Alive() []WorkerInfo {
	now := p.now()
	cutoff := now.Add(-p.ttl)
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []WorkerInfo
	for _, w := range p.workers {
		if w.LastSeen.After(cutoff) && !p.quarantinedLocked(w.ID, now) {
			wi := *w
			wi.Alive = true
			out = append(out, wi)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// All returns every registered worker with its liveness and quarantine
// flags, sorted by id (the /fleet/workers listing).
func (p *Pool) All() []WorkerInfo {
	now := p.now()
	cutoff := now.Add(-p.ttl)
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]WorkerInfo, 0, len(p.workers))
	for _, w := range p.workers {
		wi := *w
		wi.Alive = w.LastSeen.After(cutoff)
		wi.Quarantined = p.quarantinedLocked(w.ID, now)
		out = append(out, wi)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// joinBody is the wire form of POST /fleet/join and /fleet/heartbeat.
type joinBody struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
}

// Handler serves the coordinator's fleet endpoints over the pool:
//
//	POST /fleet/join       register a worker ({"id","addr"})
//	POST /fleet/heartbeat  refresh liveness (same body; auto-registers)
//	GET  /fleet/workers    list workers with liveness flags
func (p *Pool) Handler() http.Handler {
	mux := http.NewServeMux()
	beat := func(w http.ResponseWriter, r *http.Request) {
		var body joinBody
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			http.Error(w, `{"error":"bad join body"}`, http.StatusBadRequest)
			return
		}
		if err := p.Heartbeat(body.ID, body.Addr); err != nil {
			http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"ok":true,"ttl_ms":%d}`+"\n", p.ttl.Milliseconds())
	}
	mux.HandleFunc("POST /fleet/join", beat)
	mux.HandleFunc("POST /fleet/heartbeat", beat)
	mux.HandleFunc("GET /fleet/workers", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"workers": p.All()})
	})
	return mux
}

// retry runs f up to attempts times, sleeping backoff, 2*backoff, ... in
// between (capped at 10x), until f succeeds or ctx is done. Every
// coordinator↔worker call goes through it.
func retry(ctx context.Context, attempts int, backoff time.Duration, f func() error) error {
	if attempts < 1 {
		attempts = 1
	}
	var err error
	delay := backoff
	for i := 0; i < attempts; i++ {
		if err = ctx.Err(); err != nil {
			return err
		}
		if err = f(); err == nil {
			return nil
		}
		if i == attempts-1 {
			break
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return ctx.Err()
		}
		if delay < 10*backoff {
			delay *= 2
		}
	}
	return err
}

// Agent is the worker side: it joins a coordinator, heartbeats until its
// context ends, and serves shard jobs over HTTP. Run is required;
// everything else defaults.
type Agent struct {
	// ID names this worker in the coordinator's pool (required).
	ID string
	// Coordinator is the coordinator's base URL (required for Start).
	Coordinator string
	// Advertise is the base URL the coordinator uses to reach this
	// worker's handler (required for Start).
	Advertise string
	// Run executes one shard job (required).
	Run ShardRunFunc

	// Interval is the heartbeat period (0 = TTL/3 as reported by the
	// coordinator's join response, falling back to 2s).
	Interval time.Duration
	// Client is the HTTP client for join/heartbeat calls (nil = a client
	// with a 5s timeout).
	Client *http.Client
	// Logf, when non-nil, receives agent lifecycle log lines.
	Logf func(format string, args ...any)
}

func (a *Agent) logf(format string, args ...any) {
	if a.Logf != nil {
		a.Logf(format, args...)
	}
}

func (a *Agent) client() *http.Client {
	if a.Client != nil {
		return a.Client
	}
	return &http.Client{Timeout: 5 * time.Second}
}

// beat posts one join/heartbeat and returns the coordinator's TTL.
func (a *Agent) beat(ctx context.Context, path string) (time.Duration, error) {
	body, _ := json.Marshal(joinBody{ID: a.ID, Addr: a.Advertise})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		a.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := a.client().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("fleet: %s returned %d", path, resp.StatusCode)
	}
	var out struct {
		TTLms int64 `json:"ttl_ms"`
	}
	json.NewDecoder(resp.Body).Decode(&out)
	return time.Duration(out.TTLms) * time.Millisecond, nil
}

// Start joins the coordinator (retrying with backoff until it answers)
// and heartbeats until ctx is cancelled. A coordinator restart is
// absorbed transparently: heartbeats auto-register, so the next
// successful beat re-joins the fresh pool.
func (a *Agent) Start(ctx context.Context) error {
	if a.ID == "" || a.Coordinator == "" || a.Advertise == "" {
		return fmt.Errorf("fleet: Agent needs ID, Coordinator and Advertise")
	}
	var ttl time.Duration
	err := retry(ctx, 30, 500*time.Millisecond, func() error {
		var err error
		ttl, err = a.beat(ctx, "/fleet/join")
		if err != nil {
			a.logf("fleet: join %s: %v (retrying)", a.Coordinator, err)
		}
		return err
	})
	if err != nil {
		return fmt.Errorf("fleet: joining %s: %w", a.Coordinator, err)
	}
	interval := a.Interval
	if interval <= 0 {
		interval = 2 * time.Second
		if ttl > 0 {
			interval = ttl / 3
		}
	}
	a.logf("fleet: worker %s joined %s (heartbeat every %v)", a.ID, a.Coordinator, interval)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
			if _, err := a.beat(ctx, "/fleet/heartbeat"); err != nil && ctx.Err() == nil {
				// Missed beats are survivable: the TTL tolerates a few, and
				// the next success re-registers. Keep beating.
				a.logf("fleet: heartbeat: %v", err)
			}
		}
	}
}

// Handler serves the worker's shard endpoint:
//
//	POST /fleet/run  execute a shard job, streaming Outcome NDJSON with a
//	                 final done marker
//
// The stream is flushed per outcome so the coordinator sees (and
// checkpoints) progress while the shard runs; a worker crash mid-stream
// is therefore visible as a broken stream with no done marker, and only
// the unstreamed reps need requeueing.
func (a *Agent) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /fleet/run", func(w http.ResponseWriter, r *http.Request) {
		var job ShardJob
		if err := json.NewDecoder(r.Body).Decode(&job); err != nil {
			http.Error(w, `{"error":"bad shard job"}`, http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set("Cache-Control", "no-store")
		flusher, _ := w.(http.Flusher)
		enc := json.NewEncoder(w)
		var mu sync.Mutex // emit may be called from the shard's own workers
		emit := func(o Outcome) {
			mu.Lock()
			defer mu.Unlock()
			enc.Encode(o)
			if flusher != nil {
				flusher.Flush()
			}
		}
		a.logf("fleet: shard %s: %d reps", job.Campaign, len(job.Reps))
		err := a.Run(r.Context(), job, emit)
		done := Outcome{Done: true}
		if err != nil {
			done.Err = err.Error()
		}
		emit(done)
	})
	return mux
}

// Dispatcher spreads shard jobs over a pool's live workers and steals
// back the work of workers that die mid-shard. Pool, Job, OnOutcome and
// Local are required.
type Dispatcher struct {
	// Pool supplies live workers each round.
	Pool *Pool
	// Job builds the wire job for a rep set.
	Job func(reps []int) ShardJob
	// OnOutcome receives every classified representative, from any
	// worker's stream (and from Local). It must tolerate duplicates: a
	// rep that streamed just before its worker died may be re-injected
	// elsewhere, and by determinism the duplicate carries the same
	// outcome.
	OnOutcome func(o Outcome)
	// Local runs a rep set in-process: the degradation path when no
	// workers are alive and the last resort for reps whose remote
	// attempts are exhausted. Calls are serialized by the Dispatcher.
	Local func(ctx context.Context, reps []int) error

	// Attempts bounds per-shard remote attempts per round (0 = 2);
	// Backoff is the initial retry backoff (0 = 200ms); Rounds bounds
	// dispatch rounds before falling back to Local (0 = 3).
	Attempts int
	Backoff  time.Duration
	Rounds   int
	// Client executes shard streams. Nil means a hardened default with
	// dial/TLS/response-header timeouts but no overall timeout: shard
	// streams are long-lived, so in-stream liveness comes from the
	// progress watchdog (StallTimeout), not a deadline.
	Client *http.Client
	// StallTimeout is the per-shard progress watchdog: a stream that
	// produces no line for this long is abandoned (its body closed), the
	// worker removed and failure-noted, and the unclassified reps
	// requeued — a stalled-but-heartbeating worker can no longer hold
	// dispatch hostage. 0 = DefaultStallTimeout; negative disables.
	StallTimeout time.Duration
	// PoisonBudget is the per-shard distinct-worker failure budget: a
	// shard that has failed on this many different workers is poison-
	// suspect (the shard kills workers, not the reverse). It runs Local
	// once; a Local failure fails the campaign with ErrPoisonShard
	// instead of looping rounds. 0 = DefaultPoisonBudget.
	PoisonBudget int
	// MaxLine bounds one NDJSON outcome line in bytes (0 = 1 MiB). An
	// oversized line fails the shard with ErrOversizedOutcome — a named
	// diagnostic and a requeue, not a generic scanner break.
	MaxLine int
	// Emit, when non-nil, receives dispatch lifecycle events for the
	// campaign's event log ("shard", "requeue").
	Emit func(typ, msg string)

	localMu sync.Mutex
}

// Defaults for the Dispatcher's hardening knobs.
const (
	// DefaultStallTimeout is deliberately generous: representative
	// injections take milliseconds to seconds, so minutes of total
	// silence on an open stream means a wedged worker, not a slow one.
	DefaultStallTimeout = 2 * time.Minute
	DefaultPoisonBudget = 3
)

// Named dispatch diagnostics. Wrapped (never returned bare) so callers
// can errors.Is against the failure class.
var (
	// ErrShardStall marks a stream abandoned by the progress watchdog.
	ErrShardStall = errors.New("fleet: shard stream stalled")
	// ErrOversizedOutcome marks a single outcome line exceeding MaxLine.
	ErrOversizedOutcome = errors.New("fleet: oversized outcome line")
	// ErrMismatchedOutcome marks a worker contradicting its own
	// classification of a rep within one stream: a determinism violation
	// that fails the dispatch loudly — silently preferring either answer
	// would bias the estimate.
	ErrMismatchedOutcome = errors.New("fleet: mismatched duplicate outcome (determinism violation)")
	// ErrPoisonShard marks a shard that failed on PoisonBudget distinct
	// workers and then in the Local fallback.
	ErrPoisonShard = errors.New("fleet: poison shard")
)

// defaultShardClient hardens the dispatch path that used to inherit
// http.DefaultClient: every pre-stream phase that can hang — dial, TLS,
// waiting for response headers — carries its own timeout. There is still
// deliberately no overall request timeout (streams are long-lived); the
// in-stream analogue is the Dispatcher's progress watchdog.
var defaultShardClient = &http.Client{
	Transport: &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   10 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		TLSHandshakeTimeout:   10 * time.Second,
		ResponseHeaderTimeout: 30 * time.Second,
		ExpectContinueTimeout: time.Second,
		IdleConnTimeout:       90 * time.Second,
		MaxIdleConnsPerHost:   16,
	},
}

func (d *Dispatcher) emit(typ, msg string) {
	if d.Emit != nil {
		d.Emit(typ, msg)
	}
}

func (d *Dispatcher) client() *http.Client {
	if d.Client != nil {
		return d.Client
	}
	return defaultShardClient
}

// runRemote streams one shard job on one worker, feeding OnOutcome per
// line. It returns the reps the stream did not classify — empty on a
// clean done marker, the full remainder when the worker died mid-stream
// — plus the last attempt's error. An ErrMismatchedOutcome is terminal:
// it means the worker contradicted itself, and the caller must fail the
// dispatch rather than requeue.
func (d *Dispatcher) runRemote(ctx context.Context, w WorkerInfo, reps []int) ([]int, error) {
	// seen dedups and cross-checks outcomes across lines and retry
	// attempts: a rep re-streamed by a retried shard must carry the same
	// class (determinism), so a contradiction is detected right here at
	// the stream edge, before first-write-wins could bury it.
	seen := make(map[int]string, len(reps))
	var fatal error
	attempt := func() error {
		job := d.Job(reps)
		body, err := json.Marshal(job)
		if err != nil {
			return err
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			w.Addr+"/fleet/run", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := d.client().Do(req)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("fleet: worker %s returned %d", w.ID, resp.StatusCode)
		}

		// The progress watchdog: armed per line, not per stream, so a
		// slow-but-moving shard never trips it while a stalled-open
		// stream (worker wedged, connection healthy, heartbeats flowing)
		// is abandoned after one quiet window. Closing the body is the
		// only safe cross-goroutine abort: it makes the scanner return.
		// Built on a timer rather than wall-clock reads — there is no
		// time.Now here for merlinvet to object to.
		stall := d.StallTimeout
		if stall == 0 {
			stall = DefaultStallTimeout
		}
		var stalled atomic.Bool
		var dog *time.Timer
		if stall > 0 {
			dog = time.AfterFunc(stall, func() {
				stalled.Store(true)
				resp.Body.Close()
			})
			defer dog.Stop()
		}

		maxLine := d.MaxLine
		if maxLine <= 0 {
			maxLine = 1 << 20
		}
		startBuf := 64 * 1024
		if startBuf > maxLine {
			startBuf = maxLine
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, startBuf), maxLine)
		for sc.Scan() {
			if dog != nil {
				dog.Reset(stall)
			}
			var o Outcome
			if err := json.Unmarshal(sc.Bytes(), &o); err != nil {
				return fmt.Errorf("fleet: bad outcome line from %s: %w", w.ID, err)
			}
			if o.Done {
				if o.Err != "" {
					return fmt.Errorf("fleet: worker %s shard failed: %s", w.ID, o.Err)
				}
				return nil
			}
			if prev, ok := seen[o.Rep]; ok {
				if prev != o.Outcome {
					fatal = fmt.Errorf("%w: worker %s classified rep %d as %q, then %q",
						ErrMismatchedOutcome, w.ID, o.Rep, prev, o.Outcome)
					return fatal
				}
				continue // benign duplicate: same rep, same class
			}
			seen[o.Rep] = o.Outcome
			d.OnOutcome(o)
		}
		if stalled.Load() {
			return fmt.Errorf("%w: worker %s produced no outcome line for %v", ErrShardStall, w.ID, stall)
		}
		if err := sc.Err(); err != nil {
			if errors.Is(err, bufio.ErrTooLong) {
				return fmt.Errorf("%w: worker %s exceeded the %d-byte line limit", ErrOversizedOutcome, w.ID, maxLine)
			}
			return fmt.Errorf("fleet: stream from %s broke: %w", w.ID, err)
		}
		return fmt.Errorf("fleet: stream from %s ended without done marker", w.ID)
	}

	attempts := d.Attempts
	if attempts == 0 {
		attempts = 2
	}
	backoff := d.Backoff
	if backoff == 0 {
		backoff = 200 * time.Millisecond
	}
	err := retry(ctx, attempts, backoff, func() error {
		if fatal != nil {
			return fatal // a determinism violation must not be retried away
		}
		return attempt()
	})
	var missing []int
	for _, rep := range reps {
		if _, ok := seen[rep]; !ok {
			missing = append(missing, rep)
		}
	}
	return missing, err
}

// runLocal executes reps in-process, serialized (the underlying campaign
// Runner parallelizes internally; two concurrent Local calls would race
// on its outcome hook).
func (d *Dispatcher) runLocal(ctx context.Context, reps []int) error {
	d.localMu.Lock()
	defer d.localMu.Unlock()
	return d.Local(ctx, reps)
}

// shardState tracks one shard across dispatch rounds: the reps still
// unclassified and the distinct workers the shard has already failed on
// (the poison-budget evidence).
type shardState struct {
	reps     []int
	failedOn map[string]bool
}

// pickWorker assigns shard i round-robin over alive, skipping workers
// the shard already failed on: a shard that killed worker A must gather
// evidence on B and C, not hammer A until the rounds run out.
func pickWorker(alive []WorkerInfo, failedOn map[string]bool, i int) WorkerInfo {
	for k := 0; k < len(alive); k++ {
		w := alive[(i+k)%len(alive)]
		if !failedOn[w.ID] {
			return w
		}
	}
	return alive[i%len(alive)]
}

// Run drives the shards to completion: each round assigns pending shards
// round-robin over the live workers and streams them concurrently; reps
// lost to a dead worker requeue into the next round, where the surviving
// workers pick them up (work-stealing). With no live workers — nobody
// ever joined, or everybody died or tripped the circuit breaker — the
// pending shards run in-process, so a coordinator alone degrades to
// exactly the single-node pipeline.
//
// Two failure classes cut the loop short, loudly. A shard that fails on
// PoisonBudget distinct workers is poison-suspect: it gets exactly one
// Local run, and a Local failure returns ErrPoisonShard instead of
// burning the remaining rounds. And a worker contradicting its own
// classification of a rep (ErrMismatchedOutcome) is a determinism
// violation: no requeue could be trusted afterwards, so the dispatch
// fails immediately.
func (d *Dispatcher) Run(ctx context.Context, shards [][]int) error {
	rounds := d.Rounds
	if rounds == 0 {
		rounds = 3
	}
	poison := d.PoisonBudget
	if poison <= 0 {
		poison = DefaultPoisonBudget
	}
	pending := make([]*shardState, 0, len(shards))
	for _, reps := range shards {
		if len(reps) > 0 {
			pending = append(pending, &shardState{reps: reps, failedOn: make(map[string]bool)})
		}
	}
	for round := 0; len(pending) > 0; round++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		alive := d.Pool.Alive()
		if len(alive) == 0 || round >= rounds {
			for _, sh := range pending {
				d.emit("shard", fmt.Sprintf("%d reps running locally", len(sh.reps)))
				if err := d.runLocal(ctx, sh.reps); err != nil {
					return err
				}
			}
			return nil
		}
		var mu sync.Mutex
		var next []*shardState
		var fatal error
		setFatal := func(err error) {
			mu.Lock()
			if fatal == nil {
				fatal = err
			}
			mu.Unlock()
		}
		var wg sync.WaitGroup
		for i, sh := range pending {
			w := pickWorker(alive, sh.failedOn, i)
			d.emit("shard", fmt.Sprintf("%d reps -> worker %s (round %d)", len(sh.reps), w.ID, round+1))
			wg.Add(1)
			go func(w WorkerInfo, sh *shardState) {
				defer wg.Done()
				missing, err := d.runRemote(ctx, w, sh.reps)
				if err == nil && len(missing) == 0 {
					d.Pool.NoteShardSuccess(w.ID)
					return
				}
				if errors.Is(err, ErrMismatchedOutcome) {
					setFatal(err)
					return
				}
				if err == nil {
					err = fmt.Errorf("fleet: worker %s sent a done marker with %d reps unclassified", w.ID, len(missing))
				}
				// The worker is suspect: drop it from the pool now instead
				// of waiting out the TTL, and feed the circuit breaker so
				// one that keeps heartbeating through repeated failures is
				// quarantined instead of re-admitted every round.
				d.Pool.NoteShardFailure(w.ID)
				d.Pool.Remove(w.ID)
				if len(missing) == 0 {
					return // everything classified before the stream broke
				}
				d.emit("requeue", fmt.Sprintf("worker %s lost %d reps: %v; requeueing", w.ID, len(missing), err))
				sh.reps = missing
				sh.failedOn[w.ID] = true
				if len(sh.failedOn) >= poison {
					d.emit("shard", fmt.Sprintf("%d reps failed on %d distinct workers; poison-suspect, falling back to local", len(missing), len(sh.failedOn)))
					if lerr := d.runLocal(ctx, missing); lerr != nil {
						if ctx.Err() != nil {
							setFatal(lerr)
						} else {
							setFatal(fmt.Errorf("%w: %d reps failed on %d distinct workers and in the local fallback: %v",
								ErrPoisonShard, len(missing), len(sh.failedOn), lerr))
						}
					}
					return
				}
				mu.Lock()
				next = append(next, sh)
				mu.Unlock()
			}(w, sh)
		}
		wg.Wait()
		if fatal != nil {
			return fatal
		}
		pending = next
	}
	return nil
}
