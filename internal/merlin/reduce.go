// Package merlin implements the paper's contribution: the fault-list
// reduction methodology (§3). Phase 1 prunes faults that land outside
// ACE-like vulnerable intervals (provably masked). Phase 2 groups the
// survivors by the static instruction and micro-op that reads the faulty
// entry at the end of its interval (step 1), sub-groups by the byte
// position of the flipped bit (step 2), and selects one representative per
// final group from diverse dynamic instances. Only representatives are
// injected; their outcomes extrapolate to the whole group.
package merlin

import (
	"sort"

	"merlin/internal/campaign"
	"merlin/internal/fault"
	"merlin/internal/lifetime"
)

// GroupKey identifies a step-1 group: the (RIP, uPC) of the committed read
// ending the vulnerable interval. Path differentiates Relyzer-style
// control-equivalence groups (always 0 for MeRLiN's own grouping).
type GroupKey struct {
	RIP  int32
	UPC  uint8
	Path uint64
}

// Group is one final group after both steps: the faults in Members are
// expected to have the same effect, and only the representatives in Reps
// are injected. Byte is the step-2 sub-key (0xFF when byte sub-grouping is
// disabled, e.g. for the Relyzer comparison).
type Group struct {
	Key     GroupKey
	Byte    uint8
	Members []int32 // indexes into the initial fault list
	Reps    []int32 // indexes into the initial fault list; len >= 1
}

// Reduction is the outcome of MeRLiN's fault-list reduction for one
// structure/run: the bookkeeping needed for injection, extrapolation,
// homogeneity measurement and speedup accounting.
type Reduction struct {
	Structure     lifetime.StructureID
	Faults        []fault.Fault // the initial statistical fault list
	ACEMasked     int           // pruned by phase 1 (provably masked)
	HitFaults     []int32       // indexes of faults inside vulnerable intervals
	IntervalOf    []int32       // per initial fault: interval id, -1 if masked
	StepOneGroups int
	Groups        []Group
}

// Reduced returns the faults to actually inject (all representatives, in
// deterministic group order).
func (r *Reduction) Reduced() []fault.Fault {
	out := make([]fault.Fault, 0, len(r.Groups))
	for _, g := range r.Groups {
		for _, rep := range g.Reps {
			out = append(out, r.Faults[rep])
		}
	}
	return out
}

// ReducedCount returns the number of injection runs MeRLiN needs.
func (r *Reduction) ReducedCount() int {
	n := 0
	for _, g := range r.Groups {
		n += len(g.Reps)
	}
	return n
}

// ShardReps partitions the representative index space (positions in
// Reduced() order, the coordinate system per-fault outcomes are keyed by)
// into at most n shards along group boundaries. Groups are the natural
// shard unit — each group's representatives can be injected anywhere and
// their outcomes extrapolate independently — so a shard is a set of whole
// groups. Assignment is greedy by representative count (each group goes
// to the currently lightest shard), which balances shards even when
// RepsPerGroup varies, and is deterministic: the same reduction always
// shards the same way, on any machine. Empty shards are dropped, so the
// result may have fewer than n entries.
func (r *Reduction) ShardReps(n int) [][]int {
	if n < 1 {
		n = 1
	}
	shards := make([][]int, n)
	pos := 0
	for _, g := range r.Groups {
		// Lightest shard wins; ties break to the lowest index.
		best := 0
		for i := 1; i < n; i++ {
			if len(shards[i]) < len(shards[best]) {
				best = i
			}
		}
		for j := 0; j < len(g.Reps); j++ {
			shards[best] = append(shards[best], pos+j)
		}
		pos += len(g.Reps)
	}
	out := shards[:0]
	for _, s := range shards {
		if len(s) > 0 {
			out = append(out, s)
		}
	}
	return out
}

// ACESpeedup is the fault-list reduction achieved by phase 1 alone
// (the lower segment of the paper's Figs 8-10 bars).
func (r *Reduction) ACESpeedup() float64 {
	if len(r.HitFaults) == 0 {
		return float64(len(r.Faults))
	}
	return float64(len(r.Faults)) / float64(len(r.HitFaults))
}

// FinalSpeedup is the total fault-list reduction of both phases
// (the top-of-bar values of Figs 8-10).
func (r *Reduction) FinalSpeedup() float64 {
	n := r.ReducedCount()
	if n == 0 {
		return float64(len(r.Faults))
	}
	return float64(len(r.Faults)) / float64(n)
}

// Options tunes the reduction.
type Options struct {
	// RepsPerGroup selects how many representatives to inject per final
	// group (1 reproduces the paper; >1 is the accuracy/cost ablation).
	RepsPerGroup int
	// ByteGrouping enables step 2 (on for MeRLiN; off reproduces a pure
	// step-1 grouping for ablations).
	ByteGrouping bool
	// Premasked, when non-nil, marks faults the static pre-pruner
	// (internal/guestflow) already proved masked: phase 1 skips the
	// interval lookup for them and classifies them ACE-masked directly.
	// The caller must guarantee every premasked fault is also dynamically
	// masked (the session pipeline cross-verifies before reducing) — under
	// that invariant the reduction is bit-identical to an unpruned run,
	// just cheaper. Length must match the fault list when non-nil.
	Premasked []bool
}

// DefaultOptions returns the paper's configuration.
func DefaultOptions() Options { return Options{RepsPerGroup: 1, ByteGrouping: true} }

// Prune runs phase 1 only: the ACE-like pruning that classifies faults
// outside vulnerable intervals as Masked without injection. Both MeRLiN's
// grouping and the Relyzer-heuristic comparison start from its output.
func Prune(a *lifetime.Analysis, faults []fault.Fault) *Reduction {
	return prune(a, faults, nil)
}

// prune is Prune with the static pre-pruner's verdicts: premasked faults
// skip the interval lookup and classify masked directly, which is
// bit-identical to the lookup path as long as every premasked fault is
// dynamically masked too (the session pipeline verifies that invariant
// before calling down here).
func prune(a *lifetime.Analysis, faults []fault.Fault, premasked []bool) *Reduction {
	r := &Reduction{
		Structure:  a.Structure,
		Faults:     faults,
		IntervalOf: make([]int32, len(faults)),
	}
	for i, f := range faults {
		if premasked != nil && premasked[i] {
			r.IntervalOf[i] = -1
			r.ACEMasked++
			continue
		}
		if id, ok := a.Find(f.Entry, f.Byte(), f.Cycle); ok {
			r.IntervalOf[i] = id
			r.HitFaults = append(r.HitFaults, int32(i))
		} else {
			r.IntervalOf[i] = -1
			r.ACEMasked++
		}
	}
	return r
}

// Reduce runs both phases of MeRLiN's fault-list reduction over the initial
// fault list, using the vulnerable intervals of the ACE-like analysis.
func Reduce(a *lifetime.Analysis, faults []fault.Fault, opts Options) *Reduction {
	if opts.RepsPerGroup < 1 {
		opts.RepsPerGroup = 1
	}
	r := prune(a, faults, opts.Premasked)

	// Phase 2, step 1: group by the (RIP, uPC) of the interval's reader.
	step1 := make(map[GroupKey][]int32)
	for _, fi := range r.HitFaults {
		iv := &a.Intervals[r.IntervalOf[fi]]
		key := GroupKey{RIP: iv.RIP, UPC: iv.UPC}
		step1[key] = append(step1[key], fi)
	}
	r.StepOneGroups = len(step1)
	keys := make([]GroupKey, 0, len(step1))
	for k := range step1 {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].RIP != keys[j].RIP {
			return keys[i].RIP < keys[j].RIP
		}
		return keys[i].UPC < keys[j].UPC
	})

	// Phase 2, step 2: sub-group by byte position; pick representatives
	// from different dynamic instances across the byte sub-groups.
	for _, key := range keys {
		members := step1[key]
		if !opts.ByteGrouping {
			g := Group{Key: key, Byte: 0xFF, Members: members}
			g.Reps = pickDiverse(a, r, members, 0, opts.RepsPerGroup)
			r.Groups = append(r.Groups, g)
			continue
		}
		byByte := make(map[uint8][]int32)
		for _, fi := range members {
			b := uint8(r.Faults[fi].Byte())
			byByte[b] = append(byByte[b], fi)
		}
		bytesSorted := make([]int, 0, len(byByte))
		for b := range byByte {
			bytesSorted = append(bytesSorted, int(b))
		}
		sort.Ints(bytesSorted)
		for ord, b := range bytesSorted {
			sub := byByte[uint8(b)]
			g := Group{Key: key, Byte: uint8(b), Members: sub}
			g.Reps = pickDiverse(a, r, sub, ord, opts.RepsPerGroup)
			r.Groups = append(r.Groups, g)
		}
	}
	return r
}

// pickDiverse selects k representatives from members, rotating across the
// distinct dynamic instances (interval end sequence numbers) so that
// different byte sub-groups of the same static instruction sample
// different dynamic executions (§3.2.2's time diversity).
func pickDiverse(a *lifetime.Analysis, r *Reduction, members []int32, rotation, k int) []int32 {
	// Sort members by (instance, entry, bit) for determinism.
	sorted := make([]int32, len(members))
	copy(sorted, members)
	sort.Slice(sorted, func(i, j int) bool {
		a1 := a.Intervals[r.IntervalOf[sorted[i]]].EndSeq
		a2 := a.Intervals[r.IntervalOf[sorted[j]]].EndSeq
		if a1 != a2 {
			return a1 < a2
		}
		f1, f2 := r.Faults[sorted[i]], r.Faults[sorted[j]]
		if f1.Entry != f2.Entry {
			return f1.Entry < f2.Entry
		}
		return f1.Bit < f2.Bit
	})
	// Distinct instances in order.
	var instances []uint64
	instanceStart := map[uint64]int{}
	for i, fi := range sorted {
		seq := a.Intervals[r.IntervalOf[fi]].EndSeq
		if _, seen := instanceStart[seq]; !seen {
			instanceStart[seq] = i
			instances = append(instances, seq)
		}
	}
	if k > len(sorted) {
		k = len(sorted)
	}
	reps := make([]int32, 0, k)
	used := make(map[int32]bool, k)
	for j := 0; j < k; j++ {
		inst := instances[(rotation+j)%len(instances)]
		idx := instanceStart[inst]
		// Take the first unused member of that instance, falling back to
		// a global scan if the instance is exhausted.
		rep := int32(-1)
		for i := idx; i < len(sorted); i++ {
			if !used[sorted[i]] {
				rep = sorted[i]
				break
			}
		}
		if rep < 0 {
			for i := 0; i < len(sorted); i++ {
				if !used[sorted[i]] {
					rep = sorted[i]
					break
				}
			}
		}
		reps = append(reps, rep)
		used[rep] = true
	}
	return reps
}

// ExtrapolateGroups walks the groups together with each group's
// extrapolated member distribution: repOutcomes is the concatenation of
// every group's representative outcomes in Groups order (i.e. aligned
// with Reduced()), and each member inherits its representative's outcome,
// cycling through the group's representatives when RepsPerGroup > 1. It
// is the single place that alignment and inheritance rule live;
// Extrapolate and the batch report's per-group variance model both build
// on it.
func (r *Reduction) ExtrapolateGroups(repOutcomes []campaign.Outcome, fn func(g *Group, d campaign.Dist)) {
	pos := 0
	for i := range r.Groups {
		g := &r.Groups[i]
		reps := repOutcomes[pos : pos+len(g.Reps)]
		pos += len(g.Reps)
		var d campaign.Dist
		for j := range g.Members {
			d.Add(reps[j%len(reps)])
		}
		fn(g, d)
	}
}

// Extrapolate builds the fault-effect distribution of the entire initial
// fault list from the outcomes of the injected representatives (aligned
// with Reduced()). Phase-1-pruned faults count as Masked; every group
// member inherits its representative's outcome.
func (r *Reduction) Extrapolate(repOutcomes []campaign.Outcome) campaign.Dist {
	var d campaign.Dist
	d.AddN(campaign.Masked, r.ACEMasked)
	r.ExtrapolateGroups(repOutcomes, func(_ *Group, gd campaign.Dist) {
		for o, n := range gd {
			d.AddN(campaign.Outcome(o), n)
		}
	})
	return d
}

// PostACEExtrapolate is Extrapolate restricted to the post-ACE fault list
// (for the Fig 14 comparison against injecting that whole list).
func (r *Reduction) PostACEExtrapolate(repOutcomes []campaign.Outcome) campaign.Dist {
	d := r.Extrapolate(repOutcomes)
	d.AddN(campaign.Masked, -r.ACEMasked)
	return d
}
