package merlin

import "fmt"

// ExhaustiveModel reproduces Table 3: starting from the exhaustive fault
// list of each abstraction level, how many faults each method actually
// injects, the pruning gain, and the serial evaluation time of both lists.
type ExhaustiveModel struct {
	Cycles float64 // benchmark length in cycles (the paper assumes 1e9)

	// Structure sizes of the §4.2 scenario: L1D 32KB, SQ 16 entries,
	// RF 64 registers.
	RFBits  float64
	SQBits  float64
	L1DBits float64

	// Simulation throughputs (cycles/second): full-system cycle-accurate
	// vs software emulation (the paper quotes 1e5 and 1e6 for Gem5).
	UarchCPS float64
	SWCPS    float64

	// SWFaultBitsPerCycle approximates the software-level exhaustive list
	// density: architectural operand bits exposed per cycle.
	SWFaultBitsPerCycle float64

	// Remaining faults after each method's pruning.
	MerlinRemaining  float64
	RelyzerRemaining float64
}

// DefaultExhaustiveModel returns the Table 3 scenario.
func DefaultExhaustiveModel() ExhaustiveModel {
	return ExhaustiveModel{
		Cycles:              1e9,
		RFBits:              64 * 64,
		SQBits:              16 * 64,
		L1DBits:             32 * 1024 * 8,
		UarchCPS:            1e5,
		SWCPS:               1e6,
		SWFaultBitsPerCycle: 100,
		MerlinRemaining:     1e3,
		RelyzerRemaining:    1e6,
	}
}

// Row is one line of Table 3.
type Row struct {
	Method         string
	Exhaustive     float64 // faults in the exhaustive list
	Remaining      float64 // faults left to inject
	Gain           float64 // Exhaustive / Remaining
	ExhaustiveTime float64 // seconds to inject the exhaustive list serially
	RemainingTime  float64 // seconds to inject the remaining list serially
}

// Years converts seconds to years.
func Years(sec float64) float64 { return sec / (365.25 * 24 * 3600) }

// Months converts seconds to months.
func Months(sec float64) float64 { return sec / (30 * 24 * 3600) }

// Table3 computes both rows of the comparison.
func (m ExhaustiveModel) Table3() [2]Row {
	runSecUarch := m.Cycles / m.UarchCPS
	runSecSW := m.Cycles / m.SWCPS

	merlinExh := (m.RFBits + m.SQBits + m.L1DBits) * m.Cycles
	relyzerExh := m.SWFaultBitsPerCycle * m.Cycles

	return [2]Row{
		{
			Method:         "MeRLiN",
			Exhaustive:     merlinExh,
			Remaining:      m.MerlinRemaining,
			Gain:           merlinExh / m.MerlinRemaining,
			ExhaustiveTime: merlinExh * runSecUarch,
			RemainingTime:  m.MerlinRemaining * runSecUarch,
		},
		{
			Method:         "Relyzer",
			Exhaustive:     relyzerExh,
			Remaining:      m.RelyzerRemaining,
			Gain:           relyzerExh / m.RelyzerRemaining,
			ExhaustiveTime: relyzerExh * runSecSW,
			RemainingTime:  m.RelyzerRemaining * runSecSW,
		},
	}
}

// String renders the table alongside the paper's quoted magnitudes.
func (m ExhaustiveModel) String() string {
	rows := m.Table3()
	s := fmt.Sprintf("%-8s %12s %10s %10s %18s %16s\n",
		"Method", "Exhaustive", "Remaining", "Gain", "ExhaustiveTime", "RemainingTime")
	for _, r := range rows {
		s += fmt.Sprintf("%-8s %12.1e %10.1e %10.1e %15.1e yr %13.1f mo\n",
			r.Method, r.Exhaustive, r.Remaining, r.Gain,
			Years(r.ExhaustiveTime), Months(r.RemainingTime))
	}
	s += "paper:   MeRLiN 1e13 -> 1e3 (gain 1e10), ~3e9 years -> 4 months\n"
	s += "paper:   Relyzer 1e11 -> 1e6 (gain 1e5), ~3e6 years -> 32 years\n"
	return s
}
