package merlin

import "merlin/internal/campaign"

// HomogeneityReport quantifies how uniform fault effects are inside
// MeRLiN's final groups (paper §4.4.1). Fine uses the six classes of
// Table 2 (Fig 6); Coarse collapses them to masked vs non-masked (Fig 7
// top); PerfectShare is the fraction of groups whose members all have the
// same coarse effect (Fig 7 bottom).
type HomogeneityReport struct {
	Fine         float64
	Coarse       float64
	PerfectShare float64
	Groups       int
	TotalFaults  int
	AvgGroupSize float64
	MaxGroupSize int
}

// Homogeneity evaluates equation (1) over the reduction's final groups.
// outcomes must hold the actual injected outcome of every fault in the
// initial list that hit a vulnerable interval (indexes aligned with
// r.Faults; pruned faults' entries are ignored).
func (r *Reduction) Homogeneity(outcomes []campaign.Outcome) HomogeneityReport {
	rep := HomogeneityReport{Groups: len(r.Groups)}
	var fineSum, coarseSum float64
	perfect := 0
	for _, g := range r.Groups {
		var fine [campaign.NumOutcomes]int
		nonMasked := 0
		for _, fi := range g.Members {
			o := outcomes[fi]
			fine[o]++
			if o != campaign.Masked {
				nonMasked++
			}
		}
		n := len(g.Members)
		rep.TotalFaults += n
		if n > rep.MaxGroupSize {
			rep.MaxGroupSize = n
		}
		domFine := 0
		for _, cnt := range fine {
			if cnt > domFine {
				domFine = cnt
			}
		}
		domCoarse := nonMasked
		if n-nonMasked > domCoarse {
			domCoarse = n - nonMasked
		}
		fineSum += float64(domFine)
		coarseSum += float64(domCoarse)
		if domCoarse == n {
			perfect++
		}
	}
	if rep.TotalFaults > 0 {
		rep.Fine = fineSum / float64(rep.TotalFaults)
		rep.Coarse = coarseSum / float64(rep.TotalFaults)
		rep.AvgGroupSize = float64(rep.TotalFaults) / float64(len(r.Groups))
	}
	if len(r.Groups) > 0 {
		rep.PerfectShare = float64(perfect) / float64(len(r.Groups))
	}
	return rep
}

// Inaccuracy returns, per fault-effect class, the absolute difference in
// percentile units between two distributions (paper Fig 17's metric).
func Inaccuracy(a, b campaign.Dist) [campaign.NumOutcomes]float64 {
	var out [campaign.NumOutcomes]float64
	for o := campaign.Outcome(0); o < campaign.NumOutcomes; o++ {
		d := 100 * (a.Share(o) - b.Share(o))
		if d < 0 {
			d = -d
		}
		out[o] = d
	}
	return out
}
