package merlin

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"merlin/internal/campaign"
	"merlin/internal/fault"
	"merlin/internal/lifetime"
)

// synthAnalysis builds intervals for a toy structure of 4 entries x 8
// bytes: entry e has intervals (10,20] read by rip 1 upc 0, (20,30] read by
// rip 2 upc 1, for all bytes; plus entry 3 has a WB interval.
func synthAnalysis(t *testing.T) *lifetime.Analysis {
	t.Helper()
	log := &lifetime.Log{}
	seq := uint64(0)
	add := func(ev lifetime.Event) {
		seq++
		ev.Seq = seq
		log.Append(ev)
	}
	for e := int32(0); e < 3; e++ {
		add(lifetime.Event{Kind: lifetime.EvWrite, Entry: e, Mask: 0xff, Cycle: 10})
		add(lifetime.Event{Kind: lifetime.EvRead, Entry: e, Mask: 0xff, Cycle: 20, RIP: 1, UPC: 0, CommitSeq: uint64(100 + e)})
		add(lifetime.Event{Kind: lifetime.EvRead, Entry: e, Mask: 0xff, Cycle: 30, RIP: 2, UPC: 1, CommitSeq: uint64(200 + e)})
	}
	add(lifetime.Event{Kind: lifetime.EvWrite, Entry: 3, Mask: 0xff, Cycle: 40})
	add(lifetime.Event{Kind: lifetime.EvWBRead, Entry: 3, Mask: 0xff, Cycle: 50, RIP: lifetime.WBRip, CommitSeq: 300})
	return lifetime.Build(log, lifetime.StructRF, 4, 8, 100)
}

func mkFault(entry, bit int32, cycle uint64) fault.Fault {
	return fault.Fault{Structure: lifetime.StructRF, Entry: entry, Bit: bit, Cycle: cycle}
}

func TestPrune(t *testing.T) {
	a := synthAnalysis(t)
	faults := []fault.Fault{
		mkFault(0, 0, 15),  // in (10,20]
		mkFault(0, 0, 5),   // before any write: masked
		mkFault(0, 0, 35),  // after last read: masked
		mkFault(1, 63, 25), // in (20,30]
		mkFault(3, 8, 45),  // in the WB interval
	}
	r := Prune(a, faults)
	if r.ACEMasked != 2 {
		t.Errorf("ACE-masked = %d, want 2", r.ACEMasked)
	}
	if len(r.HitFaults) != 3 {
		t.Errorf("hits = %d, want 3", len(r.HitFaults))
	}
	if got := r.ACESpeedup(); math.Abs(got-5.0/3) > 1e-9 {
		t.Errorf("ACE speedup = %v, want 5/3", got)
	}
}

func TestReduceGrouping(t *testing.T) {
	a := synthAnalysis(t)
	// Four faults in the same (rip 1, upc 0) interval class, two in byte 0
	// and two in byte 7, across entries 0 and 1 (different dynamic
	// instances); plus one fault read by rip 2.
	faults := []fault.Fault{
		mkFault(0, 0, 12),
		mkFault(1, 1, 15),
		mkFault(0, 56, 13),
		mkFault(1, 57, 16),
		mkFault(2, 0, 25),
	}
	r := Reduce(a, faults, DefaultOptions())
	if r.StepOneGroups != 2 {
		t.Fatalf("step-1 groups = %d, want 2", r.StepOneGroups)
	}
	// Step 2 splits (rip1, upc0) into byte 0 and byte 7 groups.
	if len(r.Groups) != 3 {
		t.Fatalf("final groups = %d, want 3", len(r.Groups))
	}
	if got := r.ReducedCount(); got != 3 {
		t.Fatalf("reduced = %d, want 3", got)
	}
	if got := r.FinalSpeedup(); math.Abs(got-5.0/3) > 1e-9 {
		t.Errorf("final speedup = %v", got)
	}
	// Time diversity: the byte-0 and byte-7 representatives of the rip-1
	// group must come from different dynamic instances (entries here).
	var reps []fault.Fault
	for _, g := range r.Groups {
		if g.Key.RIP == 1 {
			reps = append(reps, r.Faults[g.Reps[0]])
		}
	}
	if len(reps) != 2 {
		t.Fatalf("rip-1 groups = %d, want 2", len(reps))
	}
	if reps[0].Entry == reps[1].Entry {
		t.Errorf("representatives lack instance diversity: both from entry %d", reps[0].Entry)
	}
}

func TestReduceMembersPartitionHits(t *testing.T) {
	a := synthAnalysis(t)
	var faults []fault.Fault
	for e := int32(0); e < 3; e++ {
		for b := int32(0); b < 64; b += 9 {
			faults = append(faults, mkFault(e, b, 11+uint64(e)), mkFault(e, b, 22))
		}
	}
	r := Reduce(a, faults, DefaultOptions())
	members := 0
	for _, g := range r.Groups {
		members += len(g.Members)
	}
	if members != len(r.HitFaults) {
		t.Errorf("group members = %d, hits = %d; groups must partition the post-ACE list", members, len(r.HitFaults))
	}
	if r.ReducedCount() >= len(r.HitFaults) {
		t.Errorf("no reduction achieved: %d reps for %d hits", r.ReducedCount(), len(r.HitFaults))
	}
}

func TestExtrapolate(t *testing.T) {
	a := synthAnalysis(t)
	faults := []fault.Fault{
		mkFault(0, 0, 12),  // group A (rip1, byte0) - 2 members
		mkFault(1, 2, 15),  // group A
		mkFault(0, 56, 13), // group B (rip1, byte7)
		mkFault(2, 0, 25),  // group C (rip2, byte0)
		mkFault(0, 0, 99),  // ACE-masked
	}
	r := Reduce(a, faults, DefaultOptions())
	if len(r.Groups) != 3 {
		t.Fatalf("groups = %d, want 3", len(r.Groups))
	}
	reps := r.Reduced()
	if len(reps) != 3 {
		t.Fatalf("reduced = %d", len(reps))
	}
	// Outcomes in deterministic group order: A=SDC, B=Masked, C=Crash.
	d := r.Extrapolate([]campaign.Outcome{campaign.SDC, campaign.Masked, campaign.Crash})
	if d[campaign.SDC] != 2 || d[campaign.Crash] != 1 || d[campaign.Masked] != 2 {
		t.Errorf("extrapolated dist = %v", d)
	}
	if d.Total() != len(faults) {
		t.Errorf("total = %d, want %d", d.Total(), len(faults))
	}
	pa := r.PostACEExtrapolate([]campaign.Outcome{campaign.SDC, campaign.Masked, campaign.Crash})
	if pa.Total() != 4 || pa[campaign.Masked] != 1 {
		t.Errorf("post-ACE dist = %v", pa)
	}
}

func TestRepsPerGroupAblation(t *testing.T) {
	a := synthAnalysis(t)
	var faults []fault.Fault
	for i := 0; i < 20; i++ {
		faults = append(faults, mkFault(int32(i%3), int32(i%8), 12+uint64(i%8)))
	}
	r1 := Reduce(a, faults, Options{RepsPerGroup: 1, ByteGrouping: true})
	r3 := Reduce(a, faults, Options{RepsPerGroup: 3, ByteGrouping: true})
	if r3.ReducedCount() <= r1.ReducedCount() {
		t.Errorf("3 reps (%d) should inject more than 1 rep (%d)", r3.ReducedCount(), r1.ReducedCount())
	}
	for _, g := range r3.Groups {
		if len(g.Reps) > len(g.Members) {
			t.Errorf("group has %d reps for %d members", len(g.Reps), len(g.Members))
		}
		seen := map[int32]bool{}
		for _, rep := range g.Reps {
			if seen[rep] {
				t.Error("duplicate representative in group")
			}
			seen[rep] = true
		}
	}
}

func TestNoByteGroupingAblation(t *testing.T) {
	a := synthAnalysis(t)
	var faults []fault.Fault
	for b := int32(0); b < 64; b += 8 {
		faults = append(faults, mkFault(0, b, 12))
	}
	rOn := Reduce(a, faults, Options{RepsPerGroup: 1, ByteGrouping: true})
	rOff := Reduce(a, faults, Options{RepsPerGroup: 1, ByteGrouping: false})
	if rOn.ReducedCount() != 8 {
		t.Errorf("byte grouping: %d reps, want 8 (one per byte)", rOn.ReducedCount())
	}
	if rOff.ReducedCount() != 1 {
		t.Errorf("no byte grouping: %d reps, want 1", rOff.ReducedCount())
	}
}

func TestHomogeneity(t *testing.T) {
	a := synthAnalysis(t)
	faults := []fault.Fault{
		mkFault(0, 0, 12), mkFault(1, 1, 15), // group A: 2 members
		mkFault(0, 56, 13), mkFault(1, 57, 14), // group B: 2 members
	}
	r := Reduce(a, faults, DefaultOptions())
	outcomes := make([]campaign.Outcome, len(faults))
	// Group A homogeneous SDC; group B split Masked/Crash.
	outcomes[0], outcomes[1] = campaign.SDC, campaign.SDC
	outcomes[2], outcomes[3] = campaign.Masked, campaign.Crash
	h := r.Homogeneity(outcomes)
	if math.Abs(h.Fine-0.75) > 1e-9 { // (2 + 1)/4
		t.Errorf("fine homogeneity = %v, want 0.75", h.Fine)
	}
	if math.Abs(h.Coarse-0.75) > 1e-9 {
		t.Errorf("coarse homogeneity = %v, want 0.75", h.Coarse)
	}
	if math.Abs(h.PerfectShare-0.5) > 1e-9 {
		t.Errorf("perfect share = %v, want 0.5", h.PerfectShare)
	}
}

func TestInaccuracy(t *testing.T) {
	var a, b campaign.Dist
	a.AddN(campaign.Masked, 90)
	a.AddN(campaign.SDC, 10)
	b.AddN(campaign.Masked, 85)
	b.AddN(campaign.SDC, 15)
	in := Inaccuracy(a, b)
	if math.Abs(in[campaign.Masked]-5) > 1e-9 || math.Abs(in[campaign.SDC]-5) > 1e-9 {
		t.Errorf("inaccuracy = %v", in)
	}
}

func TestTable3Magnitudes(t *testing.T) {
	m := DefaultExhaustiveModel()
	rows := m.Table3()
	// The paper quotes ~1e13 exhaustive, 1e10 gain, ~3e9 years, ~4 months
	// for MeRLiN; our computed scenario must land within an order of
	// magnitude of each.
	mer := rows[0]
	if mer.Exhaustive < 1e13 || mer.Exhaustive > 1e15 {
		t.Errorf("MeRLiN exhaustive = %e", mer.Exhaustive)
	}
	if mer.Gain < 1e10 || mer.Gain > 1e12 {
		t.Errorf("MeRLiN gain = %e", mer.Gain)
	}
	if y := Years(mer.ExhaustiveTime); y < 1e9 || y > 1e12 {
		t.Errorf("MeRLiN exhaustive time = %e years", y)
	}
	if mo := Months(mer.RemainingTime); mo < 1 || mo > 12 {
		t.Errorf("MeRLiN remaining time = %v months", mo)
	}
	rel := rows[1]
	if rel.Gain < 1e4 || rel.Gain > 1e6 {
		t.Errorf("Relyzer gain = %e", rel.Gain)
	}
	if y := Years(rel.RemainingTime); y < 3 || y > 300 {
		t.Errorf("Relyzer remaining time = %v years", y)
	}
	if m.String() == "" {
		t.Error("empty render")
	}
}

// TestReduceInvariantsProperty checks the structural invariants of the
// reduction over randomized fault lists: pruning + groups partition the
// initial list, representatives are members of their groups, and
// extrapolation always covers exactly the initial list.
func TestReduceInvariantsProperty(t *testing.T) {
	a := synthAnalysis(t)
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + int(nRaw)%120
		faults := make([]fault.Fault, n)
		for i := range faults {
			faults[i] = mkFault(int32(rng.Intn(4)), int32(rng.Intn(64)), uint64(rng.Intn(110))+1)
		}
		r := Reduce(a, faults, Options{RepsPerGroup: 1 + rng.Intn(3), ByteGrouping: rng.Intn(2) == 0})

		seen := map[int32]bool{}
		members := 0
		for _, g := range r.Groups {
			for _, m := range g.Members {
				if seen[m] {
					return false // fault in two groups
				}
				seen[m] = true
				members++
			}
			inGroup := map[int32]bool{}
			for _, m := range g.Members {
				inGroup[m] = true
			}
			for _, rep := range g.Reps {
				if !inGroup[rep] {
					return false // representative outside its group
				}
			}
			if len(g.Reps) < 1 || len(g.Reps) > len(g.Members) {
				return false
			}
		}
		if members+r.ACEMasked != n || members != len(r.HitFaults) {
			return false
		}
		outcomes := make([]campaign.Outcome, r.ReducedCount())
		for i := range outcomes {
			outcomes[i] = campaign.Outcome(rng.Intn(int(campaign.Assert)))
		}
		d := r.Extrapolate(outcomes)
		return d.Total() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestShardReps: shards are whole groups, together they partition the
// representative index space exactly, assignment is deterministic, and
// degenerate shard counts behave (n<=1 collapses to one shard, n larger
// than the group count drops the empty shards).
func TestShardReps(t *testing.T) {
	a := synthAnalysis(t)
	var faults []fault.Fault
	for e := int32(0); e < 3; e++ {
		for b := int32(0); b < 64; b += 7 {
			faults = append(faults, mkFault(e, b, 11+uint64(e)), mkFault(e, b, 22))
		}
	}
	r := Reduce(a, faults, Options{RepsPerGroup: 2, ByteGrouping: true})
	total := r.ReducedCount()
	if total < 4 {
		t.Fatalf("reduction too small to shard meaningfully: %d reps", total)
	}

	// Group boundaries in rep-index space, for the whole-group check.
	groupOf := make([]int, total)
	pos := 0
	for gi, g := range r.Groups {
		for range g.Reps {
			groupOf[pos] = gi
			pos++
		}
	}

	for _, n := range []int{0, 1, 2, 3, total, total * 3} {
		shards := r.ShardReps(n)
		seen := make(map[int]int)
		for si, shard := range shards {
			if len(shard) == 0 {
				t.Fatalf("n=%d: empty shard survived", n)
			}
			inShard := map[int]bool{}
			for _, rep := range shard {
				if rep < 0 || rep >= total {
					t.Fatalf("n=%d: rep index %d out of range", n, rep)
				}
				if _, dup := seen[rep]; dup {
					t.Fatalf("n=%d: rep %d assigned twice", n, rep)
				}
				seen[rep] = si
				inShard[rep] = true
			}
			// Whole groups: every sibling rep of a shard member is in the
			// same shard.
			for _, rep := range shard {
				for other, g := range groupOf {
					if g == groupOf[rep] && !inShard[other] {
						t.Fatalf("n=%d: group %d split across shards", n, g)
					}
				}
			}
		}
		if len(seen) != total {
			t.Fatalf("n=%d: shards cover %d of %d reps", n, len(seen), total)
		}
		if n <= 1 && len(shards) != 1 {
			t.Fatalf("n=%d: got %d shards, want 1", n, len(shards))
		}
		if len(shards) > len(r.Groups) {
			t.Fatalf("n=%d: %d shards exceed %d groups", n, len(shards), len(r.Groups))
		}
		// Determinism: same reduction, same sharding.
		again := r.ShardReps(n)
		if !reflect.DeepEqual(shards, again) {
			t.Fatalf("n=%d: sharding not deterministic", n)
		}
	}

	// Balance: with 2 shards over many similar groups, neither side should
	// hold nearly everything.
	two := r.ShardReps(2)
	if len(two) == 2 {
		small := len(two[0])
		if len(two[1]) < small {
			small = len(two[1])
		}
		if small == 0 || small*4 < total/2 {
			t.Errorf("2-way shard badly unbalanced: %d/%d of %d", len(two[0]), len(two[1]), total)
		}
	}
}
