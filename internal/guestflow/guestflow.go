// Package guestflow is a static dataflow engine over decoded guest
// programs (internal/isa): CFG recovery, dominator tree, reaching
// definitions, and backward may/must-liveness per architectural register.
//
// It exists as an independent, purely static second opinion on the
// dynamic ACE-like lifetime analysis (internal/lifetime) that every
// AVF/FIT number rests on. Two consumers key off it:
//
//   - CrossCheck: a differential oracle asserting every dynamically
//     observed live interval is explainable under the static may-live
//     bounds. A violation is a tracer bug and fails loudly.
//   - PruneRF: a pre-pruner classifying register-file fault sites whose
//     governing write's architectural value is must-dead (overwritten
//     before any read on all static paths) as masked before any faulty
//     simulation runs.
//
// The analysis is conservative by construction: direct branches are
// resolved exactly, while jalr/indirect jumps are treated as
// may-reach-all-labeled-targets (plus every return site); when a program
// has an indirect jump but no labeled text targets, every instruction is
// a successor. Over-approximating successors over-approximates may-live
// sets, which keeps both consumers sound. All results are deterministic:
// label-derived sets are sorted, and every fixpoint iterates in fixed
// instruction order.
package guestflow

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"merlin/internal/isa"
)

// RegSet is a set of architectural registers (bit r = register r).
type RegSet uint16

// Has reports whether register r is in the set.
func (s RegSet) Has(r int8) bool { return r >= 0 && s&(1<<uint(r)) != 0 }

// Count returns the number of registers in the set.
func (s RegSet) Count() int { return bits.OnesCount16(uint16(s)) }

// String renders the set as {r1,r5,sp}.
func (s RegSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	for r := 0; r < isa.NumArchRegs; r++ {
		if s&(1<<uint(r)) == 0 {
			continue
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		switch r {
		case isa.RegSP:
			b.WriteString("sp")
		case isa.RegLR:
			b.WriteString("lr")
		default:
			fmt.Fprintf(&b, "r%d", r)
		}
	}
	b.WriteByte('}')
	return b.String()
}

// allRegs is the full architectural register set.
const allRegs RegSet = (1 << isa.NumArchRegs) - 1

// Def is one static definition site: instruction RIP writes register Reg.
// The entry pseudo-definitions (the register values live at program entry)
// carry RIP EntryDefRIP.
type Def struct {
	RIP int32
	Reg int8
}

// EntryDefRIP marks the pseudo-definitions seeding every architectural
// register at program entry. It matches lifetime.InitRip so governing-write
// lookups translate directly.
const EntryDefRIP int32 = -3

// Analysis holds the static dataflow results for one program. Build one
// with Analyze; all methods are read-only and safe for concurrent use.
type Analysis struct {
	Prog *isa.Program

	succs [][]int32
	preds [][]int32

	reachable []bool
	idom      []int32 // immediate dominator per instruction; -1 = none/entry

	use []RegSet // arch registers read by any µop of the instruction
	def []RegSet // arch registers written by any µop of the instruction

	mayIn   []RegSet
	mayOut  []RegSet
	mustIn  []RegSet
	mustOut []RegSet

	defs    []Def
	defsOf  [][]int32 // per instruction, indexes into defs (its own defs)
	reachIn []uint64  // n * words bitset backing; reaching defs at entry of i

	words    int     // bitset words per instruction
	indirect []int32 // conservative successor set shared by every jalr
}

// Analyze runs the full static analysis over p. It never fails: an empty
// program yields an empty analysis.
func Analyze(p *isa.Program) *Analysis {
	n := len(p.Text)
	g := &Analysis{
		Prog:      p,
		succs:     make([][]int32, n),
		preds:     make([][]int32, n),
		reachable: make([]bool, n),
		idom:      make([]int32, n),
		use:       make([]RegSet, n),
		def:       make([]RegSet, n),
		mayIn:     make([]RegSet, n),
		mayOut:    make([]RegSet, n),
		mustIn:    make([]RegSet, n),
		mustOut:   make([]RegSet, n),
		defsOf:    make([][]int32, n),
	}
	if n == 0 {
		return g
	}
	g.buildUseDef()
	g.buildCFG()
	g.buildDominators()
	g.buildLiveness()
	g.buildReachingDefs()
	return g
}

// buildUseDef derives per-instruction use/def sets from the cracked µop
// stream, not the macro fields: LDADD's ALU µop reads Rs2 and an
// intra-instruction temp, a store's STD µop reads the macro Rs2 through
// its own Rs1 slot, and temps (TempDst/TempSrc) are invisible at the
// architectural level.
func (g *Analysis) buildUseDef() {
	for i, in := range g.Prog.Text {
		var use, def RegSet
		for _, u := range isa.Crack(in) {
			if u.Rs1 >= 0 {
				use |= 1 << uint(u.Rs1)
			}
			if u.Rs2 >= 0 {
				use |= 1 << uint(u.Rs2)
			}
			if u.Rd >= 0 {
				def |= 1 << uint(u.Rd)
			}
		}
		g.use[i] = use
		g.def[i] = def
	}
}

// buildCFG resolves every instruction's successor set. Branch targets are
// macro-instruction indexes (isa package contract); out-of-range targets
// are dropped rather than faulted — fetch of such a target halts the
// machine, so the static edge does not exist.
func (g *Analysis) buildCFG() {
	n := len(g.Prog.Text)
	g.indirect = indirectTargets(g.Prog)
	for i, in := range g.Prog.Text {
		var ss []int32
		add := func(t int64) {
			if t >= 0 && t < int64(n) {
				ss = append(ss, int32(t))
			}
		}
		switch {
		case in.Op == isa.HALT:
			// no successors
		case in.Op == isa.JAL:
			add(in.Imm)
		case in.Op == isa.JALR:
			ss = append(ss, g.indirect...)
		case isa.IsCondBranch(in.Op):
			add(int64(i) + 1)
			add(in.Imm)
		default:
			add(int64(i) + 1)
		}
		g.succs[i] = ss
	}
	for i, ss := range g.succs {
		for _, s := range ss {
			g.preds[s] = append(g.preds[s], int32(i))
		}
	}
	// Reachability from the entry point, over the conservative edges.
	work := []int32{int32(g.Prog.Entry)}
	if g.Prog.Entry < 0 || g.Prog.Entry >= n {
		work = nil
	}
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		if g.reachable[i] {
			continue
		}
		g.reachable[i] = true
		work = append(work, g.succs[i]...)
	}
}

// indirectTargets computes the conservative jalr successor set: every
// symbol naming a text location (an address-taken label is the only way a
// program can materialize a jump target) plus every return site (the
// instruction after a link-writing call). If the program has a jalr but
// the set comes up empty, every instruction is a may-target.
func indirectTargets(p *isa.Program) []int32 {
	n := len(p.Text)
	hasJALR := false
	for _, in := range p.Text {
		if in.Op == isa.JALR {
			hasJALR = true
			break
		}
	}
	if !hasJALR {
		return nil
	}
	seen := make(map[int32]bool)
	for _, v := range p.Symbols {
		if v >= 0 && v < int64(n) {
			seen[int32(v)] = true
		}
	}
	for i, in := range p.Text {
		if (in.Op == isa.JAL || in.Op == isa.JALR) && in.Rd >= 0 && i+1 < n {
			seen[int32(i+1)] = true
		}
	}
	if len(seen) == 0 {
		all := make([]int32, n)
		for i := range all {
			all[i] = int32(i)
		}
		return all
	}
	ts := make([]int32, 0, len(seen))
	for t := range seen {
		ts = append(ts, t)
	}
	sort.Slice(ts, func(a, b int) bool { return ts[a] < ts[b] })
	return ts
}

// buildDominators computes immediate dominators over the reachable
// subgraph with the Cooper-Harvey-Kennedy iterative algorithm on a
// reverse-postorder numbering.
func (g *Analysis) buildDominators() {
	n := len(g.Prog.Text)
	for i := range g.idom {
		g.idom[i] = -1
	}
	entry := int32(g.Prog.Entry)
	if g.Prog.Entry < 0 || g.Prog.Entry >= n || !g.reachable[entry] {
		return
	}
	// Postorder DFS from entry.
	post := make([]int32, 0, n)
	order := make([]int32, n) // RPO number per node; -1 = unreachable
	for i := range order {
		order[i] = -1
	}
	type frame struct {
		node int32
		next int
	}
	visited := make([]bool, n)
	stack := []frame{{entry, 0}}
	visited[entry] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.next < len(g.succs[f.node]) {
			s := g.succs[f.node][f.next]
			f.next++
			if !visited[s] {
				visited[s] = true
				stack = append(stack, frame{s, 0})
			}
			continue
		}
		post = append(post, f.node)
		stack = stack[:len(stack)-1]
	}
	rpo := make([]int32, len(post))
	for i := range post {
		node := post[len(post)-1-i]
		rpo[i] = node
		order[node] = int32(i)
	}

	intersect := func(a, b int32) int32 {
		for a != b {
			for order[a] > order[b] {
				a = g.idom[a]
			}
			for order[b] > order[a] {
				b = g.idom[b]
			}
		}
		return a
	}

	g.idom[entry] = entry
	for changed := true; changed; {
		changed = false
		for _, node := range rpo {
			if node == entry {
				continue
			}
			var newIdom int32 = -1
			for _, p := range g.preds[node] {
				if g.idom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != -1 && g.idom[node] != newIdom {
				g.idom[node] = newIdom
				changed = true
			}
		}
	}
	g.idom[entry] = -1 // the entry dominates itself trivially; report none
}

// buildLiveness runs the backward may- and must-liveness fixpoints.
// May-live: a register is may-live-out of i if some path from a successor
// reads it before writing it. Must-live: every path reads it before
// writing it (an instruction with no successors has an empty must-out;
// unreachable instructions still get locally consistent sets, but only
// reachable ones matter to the consumers).
func (g *Analysis) buildLiveness() {
	n := len(g.Prog.Text)
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			var may RegSet
			must := allRegs
			if len(g.succs[i]) == 0 {
				must = 0
			}
			for _, s := range g.succs[i] {
				may |= g.mayIn[s]
				must &= g.mustIn[s]
			}
			mayIn := g.use[i] | (may &^ g.def[i])
			mustIn := g.use[i] | (must &^ g.def[i])
			if may != g.mayOut[i] || must != g.mustOut[i] || mayIn != g.mayIn[i] || mustIn != g.mustIn[i] {
				changed = true
			}
			g.mayOut[i], g.mustOut[i] = may, must
			g.mayIn[i], g.mustIn[i] = mayIn, mustIn
		}
	}
}

// buildReachingDefs runs the forward reaching-definitions fixpoint over
// a dense def-site numbering: defs 0..15 are the entry pseudo-definitions
// (initial register values), followed by one def per (instruction,
// written register) in instruction order. The per-instruction IN sets
// share one backing bitset allocation.
func (g *Analysis) buildReachingDefs() {
	n := len(g.Prog.Text)
	g.defs = make([]Def, 0, n+isa.NumArchRegs)
	for r := 0; r < isa.NumArchRegs; r++ {
		g.defs = append(g.defs, Def{RIP: EntryDefRIP, Reg: int8(r)})
	}
	byReg := make([][]int32, isa.NumArchRegs) // def ids per register
	for r := range byReg {
		byReg[r] = []int32{int32(r)}
	}
	for i := range g.Prog.Text {
		for r := 0; r < isa.NumArchRegs; r++ {
			if g.def[i].Has(int8(r)) {
				id := int32(len(g.defs))
				g.defs = append(g.defs, Def{RIP: int32(i), Reg: int8(r)})
				g.defsOf[i] = append(g.defsOf[i], id)
				byReg[r] = append(byReg[r], id)
			}
		}
	}
	nd := len(g.defs)
	g.words = (nd + 63) / 64
	g.reachIn = make([]uint64, n*g.words)
	out := make([]uint64, n*g.words)
	tmp := make([]uint64, g.words)

	// Entry block starts with the pseudo-definitions.
	entry := g.Prog.Entry
	if entry >= 0 && entry < n {
		for r := 0; r < isa.NumArchRegs; r++ {
			g.reachIn[entry*g.words+r/64] |= 1 << uint(r%64)
		}
	}

	transfer := func(i int) bool {
		in := g.reachIn[i*g.words : (i+1)*g.words]
		copy(tmp, in)
		// Kill every other def of the registers this instruction writes,
		// then add its own defs.
		for r := 0; r < isa.NumArchRegs; r++ {
			if !g.def[i].Has(int8(r)) {
				continue
			}
			for _, id := range byReg[r] {
				tmp[id/64] &^= 1 << uint(id%64)
			}
		}
		for _, id := range g.defsOf[i] {
			tmp[id/64] |= 1 << uint(id%64)
		}
		o := out[i*g.words : (i+1)*g.words]
		changed := false
		for w := range tmp {
			if o[w] != tmp[w] {
				o[w] = tmp[w]
				changed = true
			}
		}
		return changed
	}

	for changed := true; changed; {
		changed = false
		for i := 0; i < n; i++ {
			// IN = union of predecessor OUTs (plus the entry seeds).
			in := g.reachIn[i*g.words : (i+1)*g.words]
			for _, p := range g.preds[i] {
				po := out[int(p)*g.words : (int(p)+1)*g.words]
				for w := range in {
					nv := in[w] | po[w]
					if nv != in[w] {
						in[w] = nv
						changed = true
					}
				}
			}
			if transfer(i) {
				changed = true
			}
		}
	}
}

// Succs returns i's CFG successors. The slice is shared; do not mutate.
func (g *Analysis) Succs(i int) []int32 { return g.succs[i] }

// Preds returns i's CFG predecessors. The slice is shared; do not mutate.
func (g *Analysis) Preds(i int) []int32 { return g.preds[i] }

// Reachable reports whether instruction i is reachable from the entry
// point over the (conservative) CFG edges.
func (g *Analysis) Reachable(i int) bool {
	return i >= 0 && i < len(g.reachable) && g.reachable[i]
}

// Idom returns the immediate dominator of instruction i, or -1 for the
// entry point and unreachable instructions.
func (g *Analysis) Idom(i int) int32 { return g.idom[i] }

// Use returns the architectural registers read by instruction i's µops.
func (g *Analysis) Use(i int) RegSet { return g.use[i] }

// Def returns the architectural registers written by instruction i's µops.
func (g *Analysis) Def(i int) RegSet { return g.def[i] }

// MayLiveIn returns the registers that may be read before being written
// on some path starting at instruction i.
func (g *Analysis) MayLiveIn(i int) RegSet { return g.mayIn[i] }

// MayLiveOut returns the registers that may be read before being written
// on some path leaving instruction i.
func (g *Analysis) MayLiveOut(i int) RegSet { return g.mayOut[i] }

// MustLiveIn returns the registers read before being written on every
// path starting at instruction i.
func (g *Analysis) MustLiveIn(i int) RegSet { return g.mustIn[i] }

// MustLiveOut returns the registers read before being written on every
// path leaving instruction i.
func (g *Analysis) MustLiveOut(i int) RegSet { return g.mustOut[i] }

// MustDeadOut returns the registers provably dead leaving instruction i:
// on every static path the value is overwritten before any read. Faults in
// such a value are masked by construction.
func (g *Analysis) MustDeadOut(i int) RegSet { return ^g.mayOut[i] & allRegs }

// Defs returns the static definition-site table (entry pseudo-defs
// first). The slice is shared; do not mutate.
func (g *Analysis) Defs() []Def { return g.defs }

// ReachingIn returns the def ids (indexes into Defs) reaching the entry
// of instruction i, in ascending order.
func (g *Analysis) ReachingIn(i int) []int32 {
	var ids []int32
	in := g.reachIn[i*g.words : (i+1)*g.words]
	for w, b := range in {
		for b != 0 {
			ids = append(ids, int32(w*64+bits.TrailingZeros64(b)))
			b &= b - 1
		}
	}
	return ids
}

// IndirectTargets returns the conservative jalr successor set (nil when
// the program has no indirect jumps). The slice is shared; do not mutate.
func (g *Analysis) IndirectTargets() []int32 { return g.indirect }

// Stats summarises the CFG and dataflow results for reporting.
type Stats struct {
	Instructions int     // text size
	Reachable    int     // instructions reachable from entry
	Branches     int     // conditional branches
	DirectJumps  int     // jal
	IndirectOps  int     // jalr
	IndirectFan  int     // size of the conservative jalr target set
	BackEdges    int     // CFG edges i -> j with j <= i (loops)
	Defs         int     // static definition sites (incl. entry pseudo-defs)
	AvgMayLive   float64 // mean may-live-in registers over reachable instructions
	AvgMustDead  float64 // mean must-dead-out registers over reachable instructions
}

// ComputeStats derives summary statistics from the analysis.
func (g *Analysis) ComputeStats() Stats {
	st := Stats{Instructions: len(g.Prog.Text), Defs: len(g.defs), IndirectFan: len(g.indirect)}
	var live, dead, reach int
	for i, in := range g.Prog.Text {
		switch {
		case isa.IsCondBranch(in.Op):
			st.Branches++
		case in.Op == isa.JAL:
			st.DirectJumps++
		case in.Op == isa.JALR:
			st.IndirectOps++
		}
		for _, s := range g.succs[i] {
			if int(s) <= i {
				st.BackEdges++
			}
		}
		if g.reachable[i] {
			reach++
			live += g.mayIn[i].Count()
			dead += g.MustDeadOut(i).Count()
		}
	}
	st.Reachable = reach
	if reach > 0 {
		st.AvgMayLive = float64(live) / float64(reach)
		st.AvgMustDead = float64(dead) / float64(reach)
	}
	return st
}
