package guestflow

import (
	"testing"

	"merlin/internal/conformance/gen"
	"merlin/internal/cpu"
	"merlin/internal/lifetime"
	"merlin/internal/sampling"
)

// FuzzCrossCheck feeds arbitrary byte strings through the conformance
// generator's stream grammar — every input becomes a valid, terminating
// µx64 program — and asserts the static/dynamic differential oracle never
// fires on a healthy machine. Any counterexample is a real bug in either
// the static analysis (bounds too tight) or the lifetime tracer
// (attribution wrong), minimised to a reproducible program.
func FuzzCrossCheck(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6})
	f.Add([]byte{40, 1, 2, 3, 9, 0, 41, 9, 9, 9, 2, 0})
	f.Add([]byte{35, 1, 11, 2, 8, 0, 36, 2, 11, 3, 16, 0, 37, 3, 11, 1, 24, 0})
	f.Add([]byte{255, 254, 253, 252, 251, 250, 100, 90, 80, 70, 60, 50})

	cfg := cpu.DefaultConfig().WithRF(64).WithSQ(16).WithL1D(16 << 10)
	f.Fuzz(func(t *testing.T, data []byte) {
		p := gen.DecodeStream(data)
		c := cpu.New(cfg, p)
		tr := lifetime.NewTracer(lifetime.StructRF)
		c.AttachTracer(tr)
		res := c.Run(20_000_000)
		if res.Halt != cpu.HaltOK {
			// Architectural crashes (bad memory offsets) are a legal
			// stream outcome; the oracle only covers committed runs.
			t.Skip()
		}
		log := tr.Log(lifetime.StructRF)
		dyn := lifetime.Build(log, lifetime.StructRF, cfg.PhysRegs, 8, res.Cycles)
		g := Analyze(p)
		if vs := CrossCheck(g, dyn, log); len(vs) > 0 {
			t.Fatalf("%s: static/dynamic disagreement on a healthy machine: %v", p.Name, &vs[0])
		}

		// The pre-pruner must stay inside the dynamic masked set on every
		// generated program, not just the curated corpus.
		sites := sampling.Generate(lifetime.StructRF, cfg.PhysRegs, 64, res.Cycles, 200, 1)
		premasked, _ := PruneRF(g, log, sites)
		for i, pm := range premasked {
			if !pm {
				continue
			}
			if id, ok := dyn.Find(sites[i].Entry, sites[i].Byte(), sites[i].Cycle); ok {
				t.Fatalf("%s: fault %v statically pruned but dynamically vulnerable (interval #%d)",
					p.Name, sites[i], id)
			}
		}
	})
}
