package guestflow

import (
	"strings"
	"testing"

	"merlin/internal/conformance/gen"
	"merlin/internal/cpu"
	"merlin/internal/fault"
	"merlin/internal/isa"
	"merlin/internal/lifetime"
	"merlin/internal/sampling"
	"merlin/internal/workloads"
)

// goldenRF runs p fault-free with the RF tracer attached and returns the
// static analysis, the dynamic interval analysis and the raw event log.
// Programs that do not halt cleanly fail the test: the differential
// oracle is only meaningful over a committed golden run.
func goldenRF(t testing.TB, p *isa.Program, cfg cpu.Config) (*Analysis, *lifetime.Analysis, *lifetime.Log) {
	t.Helper()
	c := cpu.New(cfg, p)
	tr := lifetime.NewTracer(lifetime.StructRF)
	c.AttachTracer(tr)
	res := c.Run(100_000_000)
	if res.Halt != cpu.HaltOK {
		t.Fatalf("%s: golden run ended with %v after %d cycles", p.Name, res.Halt, res.Cycles)
	}
	log := tr.Log(lifetime.StructRF)
	dyn := lifetime.Build(log, lifetime.StructRF, cfg.PhysRegs, 8, res.Cycles)
	return Analyze(p), dyn, log
}

// TestCrossCheckBuiltins: the static may-live bounds must contain every
// dynamic vulnerable interval of every registered workload — zero
// disagreements is the contract that lets the pre-pruner skip dynamic
// lookups.
func TestCrossCheckBuiltins(t *testing.T) {
	if testing.Short() {
		t.Skip("full workload sweep in short mode")
	}
	cfg := cpu.DefaultConfig()
	for _, name := range workloads.Names("") {
		w := workloads.MustGet(name)
		g, dyn, log := goldenRF(t, w.Program(), cfg)
		if vs := CrossCheck(g, dyn, log); len(vs) > 0 {
			t.Errorf("%s: %d cross-check violations; first: %v", name, len(vs), &vs[0])
		}
	}
}

// TestCrossCheckGeneratedKernels runs the oracle over seeded stress
// kernels from every generator class.
func TestCrossCheckGeneratedKernels(t *testing.T) {
	cfg := cpu.DefaultConfig().WithRF(64).WithSQ(16).WithL1D(16 << 10)
	for _, class := range gen.Classes() {
		for seed := uint64(1); seed <= 4; seed++ {
			p := gen.Kernel(class, seed)
			g, dyn, log := goldenRF(t, p, cfg)
			if vs := CrossCheck(g, dyn, log); len(vs) > 0 {
				t.Errorf("%s: %d violations; first: %v", p.Name, len(vs), &vs[0])
			}
		}
	}
}

// TestCrossCheckSabotage corrupts dynamic intervals one failure mode at a
// time and requires the oracle to catch each with the right violation
// code and an instruction-addressed diagnostic. An oracle that stays
// silent on corrupted tracer output is worse than none.
func TestCrossCheckSabotage(t *testing.T) {
	cfg := cpu.DefaultConfig()
	w := workloads.MustGet("qsort")
	g, dyn, log := goldenRF(t, w.Program(), cfg)
	if vs := CrossCheck(g, dyn, log); len(vs) > 0 {
		t.Fatalf("clean run not clean: %v", &vs[0])
	}

	// Pick a victim interval attributed to a real text RIP.
	victim := -1
	for id, iv := range dyn.Intervals {
		if iv.RIP >= 0 {
			victim = id
			break
		}
	}
	if victim < 0 {
		t.Fatal("no text-attributed interval to sabotage")
	}

	sabotage := []struct {
		name, code string
		mutate     func(iv *lifetime.Interval)
	}{
		{"rip past text", "reader-rip-out-of-range", func(iv *lifetime.Interval) {
			iv.RIP = int32(len(w.Program().Text)) + 7
		}},
		{"negative pseudo-rip", "reader-rip-negative", func(iv *lifetime.Interval) {
			iv.RIP = -9
		}},
		{"wbread on RF", "wbread-wrong-structure", func(iv *lifetime.Interval) {
			iv.RIP = lifetime.WBRip
		}},
		{"upc past crack", "reader-upc-out-of-range", func(iv *lifetime.Interval) {
			iv.UPC = 250
		}},
	}
	for _, s := range sabotage {
		t.Run(s.name, func(t *testing.T) {
			saved := dyn.Intervals[victim]
			defer func() { dyn.Intervals[victim] = saved }()
			s.mutate(&dyn.Intervals[victim])

			vs := CrossCheck(g, dyn, log)
			if len(vs) == 0 {
				t.Fatalf("sabotage %q not caught", s.name)
			}
			v := vs[0]
			if v.Code != s.code {
				t.Errorf("caught as %q, want %q", v.Code, s.code)
			}
			if v.IntervalID != victim {
				t.Errorf("blamed interval #%d, want #%d", v.IntervalID, victim)
			}
			msg := v.Error()
			if !strings.Contains(msg, s.code) || !strings.Contains(msg, "rip=") {
				t.Errorf("diagnostic lacks code or instruction address:\n%s", msg)
			}
		})
	}

	// Reader-shape sabotage needs a reader retargeted onto an instruction
	// whose µop reads no register at all (an LI): find one in the text.
	li := int32(-1)
	for i, in := range w.Program().Text {
		if in.Op == isa.LI && g.Reachable(i) {
			li = int32(i)
			break
		}
	}
	if li < 0 {
		t.Fatal("qsort has no reachable LI to retarget onto")
	}
	t.Run("reader shape", func(t *testing.T) {
		saved := dyn.Intervals[victim]
		defer func() { dyn.Intervals[victim] = saved }()
		dyn.Intervals[victim].RIP = li
		dyn.Intervals[victim].UPC = 0

		vs := CrossCheck(g, dyn, log)
		if len(vs) == 0 {
			t.Fatal("shape sabotage not caught")
		}
		if vs[0].Code != "reader-shape" {
			t.Errorf("caught as %q, want reader-shape", vs[0].Code)
		}
		if !strings.Contains(vs[0].Error(), "->") {
			t.Errorf("diagnostic lacks the marked disassembly window:\n%s", vs[0].Error())
		}
	})

	// Writer-side sabotage: rewrite one governing write event to claim an
	// impossible µPC, so the writer checks must fire.
	t.Run("writer upc", func(t *testing.T) {
		iv := dyn.Intervals[victim]
		var savedIdx int
		var saved lifetime.Event
		found := false
		for i, ev := range log.Events {
			if ev.Kind == lifetime.EvWrite && ev.Entry == iv.Entry && ev.Cycle <= iv.Start && ev.RIP >= 0 {
				savedIdx, saved, found = i, ev, true
			}
		}
		if !found {
			t.Skip("victim interval fed by a reset-time write")
		}
		defer func() { log.Events[savedIdx] = saved }()
		log.Events[savedIdx].UPC = 200

		vs := CrossCheck(g, dyn, log)
		if len(vs) == 0 {
			t.Fatal("writer µPC sabotage not caught")
		}
		if vs[0].Code != "writer-upc-out-of-range" {
			t.Errorf("caught as %q, want writer-upc-out-of-range", vs[0].Code)
		}
	})
}

// TestPruneRFSoundness: every fault site the static pre-pruner classifies
// masked must also be dynamically masked (no vulnerable interval covers
// it) — the exact invariant the session re-verifies before trusting a
// pruned campaign.
func TestPruneRFSoundness(t *testing.T) {
	cfg := cpu.DefaultConfig().WithRF(64).WithSQ(16).WithL1D(16 << 10)
	progs := []*isa.Program{
		workloads.MustGet("qsort").Program(),
		workloads.MustGet("sha").Program(),
		gen.Kernel("mixed", 3),
		gen.Kernel("rf", 9),
	}
	for _, p := range progs {
		g, dyn, log := goldenRF(t, p, cfg)
		sites := sampling.Generate(lifetime.StructRF, cfg.PhysRegs, 64, dyn.Cycles, 2000, 5)
		premasked, ps := PruneRF(g, log, sites)
		if ps.Pruned() == 0 {
			t.Errorf("%s: pruner found nothing over %d sites — suspicious for a %d-entry RF",
				p.Name, len(sites), cfg.PhysRegs)
		}
		for i, pm := range premasked {
			if !pm {
				continue
			}
			f := sites[i]
			if id, ok := dyn.Find(f.Entry, f.Byte(), f.Cycle); ok {
				t.Fatalf("%s: fault %v statically pruned but dynamically vulnerable (interval #%d)",
					p.Name, f, id)
			}
		}
		if ps.NeverWritten+ps.MustDead != ps.Pruned() || ps.Faults != len(sites) {
			t.Errorf("%s: inconsistent PruneStats %+v", p.Name, ps)
		}
	}
}

// TestPruneRFEmptyLog: with no write events every fault is trivially
// masked (nothing was ever read), and the pruner must say so rather than
// crash.
func TestPruneRFEmptyLog(t *testing.T) {
	p := prog("empty", halt())
	g := Analyze(p)
	faults := []fault.Fault{{Structure: lifetime.StructRF, Entry: 3, Bit: 7, Cycle: 10}}
	premasked, ps := PruneRF(g, &lifetime.Log{}, faults)
	if !premasked[0] || ps.NeverWritten != 1 {
		t.Errorf("never-written entry not pruned: %v %+v", premasked, ps)
	}
}
