package guestflow

import (
	"fmt"
	"sort"
	"strings"

	"merlin/internal/isa"
	"merlin/internal/lifetime"
)

// Violation is one static/dynamic disagreement found by CrossCheck: a
// dynamically observed interval the static analysis says cannot exist.
// Every violation means a bug — in the lifetime tracer, in the core's
// event plumbing, or in the static analysis itself — and must fail the
// run loudly.
type Violation struct {
	// Code names the broken invariant:
	//
	//	reader-rip-out-of-range   reader RIP outside the text segment
	//	reader-rip-negative       reader RIP a pseudo-RIP not legal here
	//	wbread-wrong-structure    WBRip reader outside L1D
	//	unreachable-reader        reader statically unreachable from entry
	//	reader-upc-out-of-range   reader UPC >= NumUops(op)
	//	reader-shape              reader µop cannot read this structure
	//	read-without-write        interval with no governing write event
	//	writer-upc-out-of-range   governing write UPC >= NumUops(op)
	//	init-write-bad-entry      reset-time write outside the arch registers
	//	dead-def-read             governing write's register is statically
	//	                          dead at the writer, yet it was read
	Code       string
	Structure  lifetime.StructureID
	IntervalID int
	Interval   lifetime.Interval
	// Writer locates the governing write for writer-side codes (RIP,
	// UPC); Reg is the architectural register whose liveness the
	// dead-def-read argument is about.
	WriterRIP int32
	WriterUPC uint8
	Reg       int8
	Detail    string
	window    string
}

// Error renders the violation with an instruction-addressed diagnostic
// window, conformance-report style.
func (v *Violation) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "guestflow cross-check: %s: %s interval #%d entry=%d mask=%#x (%d,%d] reader rip=%d upc=%d: %s",
		v.Code, v.Structure, v.IntervalID, v.Interval.Entry, v.Interval.Mask,
		v.Interval.Start, v.Interval.End, v.Interval.RIP, v.Interval.UPC, v.Detail)
	if v.window != "" {
		b.WriteByte('\n')
		b.WriteString(v.window)
	}
	return b.String()
}

// instWindow renders the instructions around rip (±3) with the focal line
// marked, so a violation pinpoints the guest code it is about.
func instWindow(p *isa.Program, rip int32) string {
	if rip < 0 || int(rip) >= len(p.Text) {
		return ""
	}
	lo := int(rip) - 3
	if lo < 0 {
		lo = 0
	}
	hi := int(rip) + 3
	if hi >= len(p.Text) {
		hi = len(p.Text) - 1
	}
	var b strings.Builder
	for i := lo; i <= hi; i++ {
		marker := "  "
		if i == int(rip) {
			marker = "->"
		}
		fmt.Fprintf(&b, "  %s %4d  %s\n", marker, i, p.Text[i].String())
	}
	return strings.TrimRight(b.String(), "\n")
}

// writeRec is one write event of the governing-write index: who wrote an
// entry, and when.
type writeRec struct {
	cycle uint64
	seq   uint64
	rip   int32
	upc   uint8
}

// writeIndex maps structure entries to their write events in (cycle, seq)
// order, built once per cross-check / prune pass from the golden event log.
type writeIndex struct {
	byEntry map[int32][]writeRec
}

func buildWriteIndex(log *lifetime.Log) *writeIndex {
	ix := &writeIndex{byEntry: make(map[int32][]writeRec)}
	if log == nil {
		return ix
	}
	for _, ev := range log.Events {
		if ev.Kind != lifetime.EvWrite {
			continue
		}
		ix.byEntry[ev.Entry] = append(ix.byEntry[ev.Entry], writeRec{cycle: ev.Cycle, seq: ev.Seq, rip: ev.RIP, upc: ev.UPC})
	}
	for _, ws := range ix.byEntry {
		sort.Slice(ws, func(a, b int) bool {
			if ws[a].cycle != ws[b].cycle {
				return ws[a].cycle < ws[b].cycle
			}
			return ws[a].seq < ws[b].seq
		})
	}
	return ix
}

// governing returns the last write to entry with cycle <= bound (ties by
// highest seq), which is the write that produced the value a segment
// starting at cycle bound holds.
func (ix *writeIndex) governing(entry int32, bound uint64) (writeRec, bool) {
	ws := ix.byEntry[entry]
	// First index with cycle > bound; the record before it governs.
	i := sort.Search(len(ws), func(k int) bool { return ws[k].cycle > bound })
	if i == 0 {
		return writeRec{}, false
	}
	return ws[i-1], true
}

// CrossCheck differentially validates the dynamic ACE-like analysis
// against the static dataflow bounds: every vulnerable interval must be
// attributed to a µop that statically exists, is reachable, and can read
// the structure — and for the register file, the architectural value it
// consumed must be may-live out of its producing write. log is the
// structure's golden event log (used for the RF governing-write argument;
// nil skips the writer-side checks). The returned slice is empty when the
// two analyses agree; every element is an independent tracer bug.
func CrossCheck(g *Analysis, dyn *lifetime.Analysis, log *lifetime.Log) []Violation {
	var vs []Violation
	n := int32(len(g.Prog.Text))
	report := func(v Violation) {
		v.Structure = dyn.Structure
		if v.window == "" {
			v.window = instWindow(g.Prog, v.Interval.RIP)
		}
		vs = append(vs, v)
	}

	var ix *writeIndex
	if dyn.Structure == lifetime.StructRF && log != nil {
		ix = buildWriteIndex(log)
	}

	for id := range dyn.Intervals {
		iv := &dyn.Intervals[id]
		switch {
		case iv.RIP == lifetime.EOFRip:
			// Truncated-run cut: no reader to validate.
			continue
		case iv.RIP == lifetime.WBRip:
			if dyn.Structure != lifetime.StructL1D {
				report(Violation{Code: "wbread-wrong-structure", IntervalID: id, Interval: *iv,
					Detail: "dirty-writeback reads exist only in the L1D"})
			}
			continue
		case iv.RIP < 0:
			report(Violation{Code: "reader-rip-negative", IntervalID: id, Interval: *iv,
				Detail: fmt.Sprintf("pseudo-RIP %d is not a legal reader attribution", iv.RIP)})
			continue
		case iv.RIP >= n:
			report(Violation{Code: "reader-rip-out-of-range", IntervalID: id, Interval: *iv,
				Detail: fmt.Sprintf("reader RIP %d outside text [0,%d)", iv.RIP, n)})
			continue
		}
		in := g.Prog.Text[iv.RIP]
		if !g.Reachable(int(iv.RIP)) {
			report(Violation{Code: "unreachable-reader", IntervalID: id, Interval: *iv,
				Detail: fmt.Sprintf("instruction %d (%s) is statically unreachable from entry %d", iv.RIP, in, g.Prog.Entry)})
			continue
		}
		if int(iv.UPC) >= isa.NumUops(in.Op) {
			report(Violation{Code: "reader-upc-out-of-range", IntervalID: id, Interval: *iv,
				Detail: fmt.Sprintf("µPC %d but %s cracks into %d µop(s)", iv.UPC, in.Op, isa.NumUops(in.Op))})
			continue
		}
		u := isa.Crack(in)[iv.UPC]
		if !readerShapeOK(dyn.Structure, u) {
			report(Violation{Code: "reader-shape", IntervalID: id, Interval: *iv,
				Detail: fmt.Sprintf("µop %d of %s cannot read the %s", iv.UPC, in, dyn.Structure)})
			continue
		}
		if ix != nil {
			if v, bad := checkRFWriter(g, ix, id, iv); bad {
				report(v)
			}
		}
	}
	return vs
}

// readerShapeOK reports whether µop u can end a vulnerable interval of
// structure s: RF reads need a register or temp source, SQ reads are
// store-data drains or load forwarding, L1D reads are loads (WBRip is
// handled before cracking).
func readerShapeOK(s lifetime.StructureID, u isa.Uop) bool {
	switch s {
	case lifetime.StructRF:
		return u.Rs1 >= 0 || u.Rs2 >= 0 || u.TempSrc >= 0
	case lifetime.StructSQ:
		return u.Kind == isa.UopLoad || u.Kind == isa.UopSTD
	case lifetime.StructL1D:
		return u.Kind == isa.UopLoad
	}
	return false
}

// checkRFWriter validates the register-file inclusion property: the
// governing write of the interval (the write that produced the value the
// committed reader consumed) must have an architectural destination that
// is may-live out of the writing instruction — a committed read of a
// statically must-dead definition is impossible on a correct machine.
func checkRFWriter(g *Analysis, ix *writeIndex, id int, iv *lifetime.Interval) (Violation, bool) {
	w, ok := ix.governing(iv.Entry, iv.Start)
	if !ok {
		return Violation{Code: "read-without-write", IntervalID: id, Interval: *iv,
			Detail: fmt.Sprintf("no write event precedes the interval on entry %d", iv.Entry)}, true
	}
	n := int32(len(g.Prog.Text))
	switch {
	case w.rip == lifetime.InitRip:
		// Reset seeds map architectural register r to physical entry r.
		if iv.Entry >= isa.NumArchRegs {
			return Violation{Code: "init-write-bad-entry", IntervalID: id, Interval: *iv,
				WriterRIP: w.rip, Detail: fmt.Sprintf("reset-time write to physical entry %d (arch file is 0..%d)", iv.Entry, isa.NumArchRegs-1)}, true
		}
		r := int8(iv.Entry)
		if !g.MayLiveIn(g.Prog.Entry).Has(r) {
			return Violation{Code: "dead-def-read", IntervalID: id, Interval: *iv,
				WriterRIP: w.rip, Reg: r,
				Detail: fmt.Sprintf("initial value of r%d is statically dead at entry (may-live-in %s), yet a committed read consumed it", r, g.MayLiveIn(g.Prog.Entry)),
				window: instWindow(g.Prog, int32(g.Prog.Entry))}, true
		}
	case w.rip >= 0 && w.rip < n:
		in := g.Prog.Text[w.rip]
		if int(w.upc) >= isa.NumUops(in.Op) {
			return Violation{Code: "writer-upc-out-of-range", IntervalID: id, Interval: *iv,
				WriterRIP: w.rip, WriterUPC: w.upc,
				Detail: fmt.Sprintf("governing write µPC %d but %s cracks into %d µop(s)", w.upc, in.Op, isa.NumUops(in.Op)),
				window: instWindow(g.Prog, w.rip)}, true
		}
		u := isa.Crack(in)[w.upc]
		if u.Rd < 0 {
			// Intra-instruction temp: consumed by a sibling µop of the same
			// macro-instruction, invisible to architectural liveness.
			return Violation{}, false
		}
		if !g.MayLiveOut(int(w.rip)).Has(u.Rd) {
			return Violation{Code: "dead-def-read", IntervalID: id, Interval: *iv,
				WriterRIP: w.rip, WriterUPC: w.upc, Reg: u.Rd,
				Detail: fmt.Sprintf("write of r%d at instruction %d (%s) is statically must-dead (may-live-out %s), yet a committed read consumed it", u.Rd, w.rip, in, g.MayLiveOut(int(w.rip))),
				window: instWindow(g.Prog, w.rip)}, true
		}
	}
	// Out-of-range writer RIPs cannot occur (bad fetches never allocate a
	// destination); if one slips through, the reader-side checks above
	// already cover the interval, so stay silent rather than guess.
	return Violation{}, false
}
