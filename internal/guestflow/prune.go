package guestflow

import (
	"merlin/internal/fault"
	"merlin/internal/isa"
	"merlin/internal/lifetime"
)

// PruneStats breaks down what the static pre-pruner classified masked.
type PruneStats struct {
	// Faults is the input fault-site count.
	Faults int
	// NeverWritten counts fault sites on entries with no write event at
	// or before the fault cycle (free-list registers never yet allocated):
	// trivially masked, no liveness argument needed.
	NeverWritten int
	// MustDead counts fault sites whose governing write's architectural
	// destination is statically must-dead at the writer — overwritten
	// before any read on every static path.
	MustDead int
}

// Pruned returns the total number of statically masked fault sites.
func (s PruneStats) Pruned() int { return s.NeverWritten + s.MustDead }

// PruneRF classifies register-file fault sites that are provably masked
// by the static must-dead analysis, before any faulty simulation runs.
// For each fault (entry, byte, cycle C) it finds the governing write — the
// last write event on the entry strictly before C — and prunes the fault
// when the architectural value that write produced can never be read:
//
//   - no governing write exists: the physical register was never
//     allocated, so nothing can consume the flipped bits;
//   - the governing write is the reset-time seed of architectural
//     register r and r is not may-live-in at the program entry point;
//   - the governing write is µop (RIP, UPC) with architectural
//     destination r, and r is not may-live-out of RIP.
//
// The bound is strict (cycle < C, not <=) because a flip in the same
// cycle as a write may still land in the previous value when the entry's
// committed read of that value shares the cycle. Writes of
// intra-instruction temps (Rd < 0) are never pruned — temp lifetimes are
// invisible to architectural liveness. log must be the golden RF event
// log the dynamic analysis was built from; premasked[i] is true when
// faults[i] is statically masked.
func PruneRF(g *Analysis, log *lifetime.Log, faults []fault.Fault) ([]bool, PruneStats) {
	premasked := make([]bool, len(faults))
	st := PruneStats{Faults: len(faults)}
	ix := buildWriteIndex(log)
	n := int32(len(g.Prog.Text))
	entryLiveIn := g.MayLiveIn(g.Prog.Entry)
	for i, f := range faults {
		var bound uint64
		if f.Cycle > 0 {
			bound = f.Cycle - 1
		}
		w, ok := ix.governing(f.Entry, bound)
		if !ok {
			premasked[i] = true
			st.NeverWritten++
			continue
		}
		switch {
		case w.rip == lifetime.InitRip:
			if f.Entry < isa.NumArchRegs && !entryLiveIn.Has(int8(f.Entry)) {
				premasked[i] = true
				st.MustDead++
			}
		case w.rip >= 0 && w.rip < n:
			in := g.Prog.Text[w.rip]
			if int(w.upc) >= isa.NumUops(in.Op) {
				continue // malformed stamp: leave it to the dynamic analysis
			}
			u := isa.Crack(in)[w.upc]
			if u.Rd >= 0 && !g.MayLiveOut(int(w.rip)).Has(u.Rd) {
				premasked[i] = true
				st.MustDead++
			}
		}
	}
	return premasked, st
}
