package guestflow

import (
	"fmt"
	"testing"

	"merlin/internal/conformance/gen"
	"merlin/internal/isa"
)

// inst builders for hand-written test programs. The Inst zero value has
// Rs1/Rs2 = 0 (= r0, a real register), so every unused operand must be
// NoReg explicitly.
func li(rd int8, imm int64) isa.Inst {
	return isa.Inst{Op: isa.LI, Rd: rd, Rs1: isa.NoReg, Rs2: isa.NoReg, Imm: imm}
}
func add(rd, rs1, rs2 int8) isa.Inst {
	return isa.Inst{Op: isa.ADD, Rd: rd, Rs1: rs1, Rs2: rs2}
}
func beq(rs1, rs2 int8, target int64) isa.Inst {
	return isa.Inst{Op: isa.BEQ, Rd: isa.NoReg, Rs1: rs1, Rs2: rs2, Imm: target}
}
func jal(rd int8, target int64) isa.Inst {
	return isa.Inst{Op: isa.JAL, Rd: rd, Rs1: isa.NoReg, Rs2: isa.NoReg, Imm: target}
}
func jalr(rd, rs1 int8) isa.Inst {
	return isa.Inst{Op: isa.JALR, Rd: rd, Rs1: rs1, Rs2: isa.NoReg}
}
func out(rs1 int8) isa.Inst {
	return isa.Inst{Op: isa.OUT, Rd: isa.NoReg, Rs1: rs1, Rs2: isa.NoReg}
}
func halt() isa.Inst {
	return isa.Inst{Op: isa.HALT, Rd: isa.NoReg, Rs1: isa.NoReg, Rs2: isa.NoReg}
}

func prog(name string, text ...isa.Inst) *isa.Program {
	return &isa.Program{Name: name, Text: text}
}

func set(regs ...int8) RegSet {
	var s RegSet
	for _, r := range regs {
		s |= 1 << uint(r)
	}
	return s
}

// refMayLiveIn is the independent liveness reference: r is may-live-in at
// i iff a use of r is reachable from i in the CFG restricted so that
// nodes defining r (without first using it) have no out-edges. Plain
// graph reachability — no dataflow fixpoint shared with the unit under
// test.
func refMayLiveIn(g *Analysis, i int, r int8) bool {
	seen := make([]bool, len(g.Prog.Text))
	var dfs func(n int) bool
	dfs = func(n int) bool {
		if seen[n] {
			return false
		}
		seen[n] = true
		if g.Use(n).Has(r) {
			return true
		}
		if g.Def(n).Has(r) {
			return false
		}
		for _, s := range g.Succs(n) {
			if dfs(int(s)) {
				return true
			}
		}
		return false
	}
	return dfs(i)
}

// refNotMustLiveIn witnesses the complement of must-liveness: a maximal
// path from i (terminating, or cycling forever) that defines r or ends
// without ever using r. Re-entering a node on the in-progress DFS stack
// means a use-free cycle — an infinite path avoiding r — so must-liveness
// fails. Memoised three-state DFS, again structurally unlike the bitset
// fixpoint it checks.
func refNotMustLiveIn(g *Analysis, i int, r int8) bool {
	const (
		unknown = iota
		inProgress
		yes
		no
	)
	state := make([]int, len(g.Prog.Text))
	var dfs func(n int) bool
	dfs = func(n int) bool {
		switch state[n] {
		case inProgress:
			return true // use-free cycle reached
		case yes:
			return true
		case no:
			return false
		}
		state[n] = inProgress
		res := false
		switch {
		case g.Use(n).Has(r):
			res = false // every extension of this path used r first
		case g.Def(n).Has(r):
			res = true
		case len(g.Succs(n)) == 0:
			res = true // terminated without using r
		default:
			for _, s := range g.Succs(n) {
				if dfs(int(s)) {
					res = true
					break
				}
			}
		}
		if res {
			state[n] = yes
		} else {
			state[n] = no
		}
		return res
	}
	return dfs(i)
}

// refReachesIn: definition d reaches the entry of target iff target is
// reachable from d's def site (or the program entry for pseudo-defs)
// without crossing another def of the same register.
func refReachesIn(g *Analysis, d Def, target int) bool {
	seen := make([]bool, len(g.Prog.Text))
	var dfs func(n int) bool
	dfs = func(n int) bool {
		if seen[n] {
			return false
		}
		seen[n] = true
		if n == target {
			return true
		}
		if g.Def(n).Has(d.Reg) {
			return false
		}
		for _, s := range g.Succs(n) {
			if dfs(int(s)) {
				return true
			}
		}
		return false
	}
	if d.RIP == EntryDefRIP {
		return dfs(g.Prog.Entry)
	}
	if !g.Reachable(int(d.RIP)) {
		// The fixpoint never propagates a def the program cannot execute.
		return false
	}
	if int(d.RIP) == target {
		// A def at target kills at the instruction, after its entry: it
		// reaches target's entry only around a cycle.
		for _, s := range g.Succs(int(d.RIP)) {
			if dfs(int(s)) {
				return true
			}
		}
		return false
	}
	for _, s := range g.Succs(int(d.RIP)) {
		if dfs(int(s)) {
			return true
		}
	}
	return false
}

// checkAgainstReference compares the fixpoint liveness and reaching-defs
// products against the path-based references on every reachable
// instruction and register.
func checkAgainstReference(t *testing.T, g *Analysis, reachingDefs bool) {
	t.Helper()
	for i := range g.Prog.Text {
		if !g.Reachable(i) {
			continue
		}
		for r := int8(0); r < isa.NumArchRegs; r++ {
			if got, want := g.MayLiveIn(i).Has(r), refMayLiveIn(g, i, r); got != want {
				t.Errorf("%s: may-live-in(%d, r%d) = %v, reference says %v", g.Prog.Name, i, r, got, want)
			}
			if got, want := g.MustLiveIn(i).Has(r), !refNotMustLiveIn(g, i, r); got != want {
				t.Errorf("%s: must-live-in(%d, r%d) = %v, reference says %v", g.Prog.Name, i, r, got, want)
			}
		}
		if !reachingDefs {
			continue
		}
		got := make(map[int32]bool)
		for _, id := range g.ReachingIn(i) {
			got[id] = true
		}
		for id, d := range g.Defs() {
			want := refReachesIn(g, d, i)
			if got[int32(id)] != want {
				t.Errorf("%s: reaching-in(%d) def #%d (rip=%d r%d) = %v, reference says %v",
					g.Prog.Name, i, id, d.RIP, d.Reg, got[int32(id)], want)
			}
		}
	}
}

// TestLivenessHandWritten pins exact live sets on a diamond CFG:
//
//	0  li   r1, 5
//	1  li   r2, 7
//	2  beq  r1, r2 -> 5
//	3  add  r3, r1, r2     (fallthrough arm: r3 := r1+r2)
//	4  jal  -> 6
//	5  add  r3, r2, r2     (taken arm: r1 dead here)
//	6  out  r3
//	7  halt
func TestLivenessHandWritten(t *testing.T) {
	p := prog("diamond",
		li(1, 5), li(2, 7), beq(1, 2, 5),
		add(3, 1, 2), jal(isa.NoReg, 6),
		add(3, 2, 2), out(3), halt(),
	)
	g := Analyze(p)

	cases := []struct {
		i             int
		mayIn, mayOut RegSet
	}{
		{0, set(), set(1)},
		{1, set(1), set(1, 2)},
		{2, set(1, 2), set(1, 2)},
		{3, set(1, 2), set(3)},
		{4, set(3), set(3)},
		{5, set(2), set(3)},
		{6, set(3), set()},
		{7, set(), set()},
	}
	for _, c := range cases {
		if g.MayLiveIn(c.i) != c.mayIn || g.MayLiveOut(c.i) != c.mayOut {
			t.Errorf("inst %d: may-live in/out = %s/%s, want %s/%s",
				c.i, g.MayLiveIn(c.i), g.MayLiveOut(c.i), c.mayIn, c.mayOut)
		}
		// The diamond has no cycles and both arms agree on r3, so must-
		// and may-liveness coincide everywhere here.
		if g.MustLiveIn(c.i) != c.mayIn {
			t.Errorf("inst %d: must-live-in = %s, want %s", c.i, g.MustLiveIn(c.i), c.mayIn)
		}
	}
	// r1 is may-live but NOT must-live out of the branch arm split point:
	// it dies on the taken arm. Out of instruction 2 the arms diverge on
	// nothing (both still read r2), but r1 is used only on the
	// fallthrough arm... which is instruction 3's use, making r1 may-live
	// out of 2 via one arm only. Both sets above already assert the
	// union; assert the intersection difference explicitly:
	if got := g.MustLiveOut(2); got != set(2) {
		t.Errorf("must-live-out(2) = %s, want %s (r1 dies on the taken arm)", got, set(2))
	}
	if got := g.MustDeadOut(6); !got.Has(3) {
		t.Errorf("must-dead-out(6) = %s: r3 must be dead after its last read", got)
	}
	checkAgainstReference(t, g, true)
}

// TestLivenessLoop: a counted loop keeps its counter and accumulator
// may- and must-live around the back edge.
//
//	0  li   r1, 10        counter
//	1  li   r2, 0         accumulator
//	2  add  r2, r2, r1    loop body
//	3  add  r1, r1, r3    r3 never defined: entry pseudo-def feeds it
//	4  bne  r1, r0 -> 2
//	5  out  r2
//	6  halt
func TestLivenessLoop(t *testing.T) {
	p := prog("loop",
		li(1, 10), li(2, 0),
		add(2, 2, 1),
		add(1, 1, 3),
		isa.Inst{Op: isa.BNE, Rd: isa.NoReg, Rs1: 1, Rs2: 0, Imm: 2},
		out(2), halt(),
	)
	g := Analyze(p)
	if in := g.MayLiveIn(2); in != set(0, 1, 2, 3) {
		t.Errorf("loop head may-live-in = %s, want %s", in, set(0, 1, 2, 3))
	}
	// r3 is live-in at entry (read but never written): the entry
	// pseudo-def must reach the reader and r3 must be may-live-in at the
	// program entry.
	if !g.MayLiveIn(p.Entry).Has(3) {
		t.Errorf("r3 read-before-write not live-in at entry: %s", g.MayLiveIn(p.Entry))
	}
	checkAgainstReference(t, g, true)
}

// TestCFGShape pins successor sets: taken+fallthrough for conditional
// branches, target only for JAL, none for HALT, and out-of-range branch
// targets dropped rather than crashing.
func TestCFGShape(t *testing.T) {
	p := prog("cfg",
		beq(0, 0, 3),
		jal(isa.NoReg, 0),
		halt(),
		beq(0, 0, 99), // target outside text: edge dropped
		halt(),
	)
	g := Analyze(p)
	want := [][]int32{{1, 3}, {0}, {}, {4}, {}}
	for i, w := range want {
		got := g.Succs(i)
		if fmt.Sprint(got) != fmt.Sprint([]int32(w)) && !(len(got) == 0 && len(w) == 0) {
			t.Errorf("succs(%d) = %v, want %v", i, got, w)
		}
	}
	if !g.Reachable(0) || !g.Reachable(1) {
		t.Error("loop 0<->1 must be reachable")
	}
	if g.Reachable(2) {
		t.Error("instruction 2 is unreachable (jal 1 loops back to 0)")
	}
}

// TestJALRConservatism: an indirect jump's static successors are the
// labeled text targets plus every call-return site; with no labels at
// all, the fallback is every instruction.
func TestJALRConservatism(t *testing.T) {
	p := prog("jalr",
		li(1, 4),
		jalr(14, 1), // link in lr: instruction 2 is a return site
		out(2),
		halt(),
		li(2, 1),
		jalr(isa.NoReg, 14), // plain indirect jump, no link
		halt(),
	)
	p.Symbols = map[string]int64{
		"fn":   4,
		"data": 0x1000, // outside text: must be ignored
	}
	g := Analyze(p)
	want := []int32{2, 4}
	if fmt.Sprint(g.Succs(1)) != fmt.Sprint(want) {
		t.Errorf("jalr succs = %v, want labeled target + return site %v", g.Succs(1), want)
	}
	if fmt.Sprint(g.Succs(5)) != fmt.Sprint(want) {
		t.Errorf("second jalr succs = %v, want %v", g.Succs(5), want)
	}
	if fmt.Sprint(g.IndirectTargets()) != fmt.Sprint(want) {
		t.Errorf("IndirectTargets = %v, want %v", g.IndirectTargets(), want)
	}

	// No labels, no calls: the only sound answer is "anywhere".
	p2 := prog("jalr-blind", jalr(isa.NoReg, 1), halt(), halt())
	g2 := Analyze(p2)
	if fmt.Sprint(g2.Succs(0)) != fmt.Sprint([]int32{0, 1, 2}) {
		t.Errorf("blind jalr succs = %v, want every instruction", g2.Succs(0))
	}
}

// TestDominators: on the diamond, the branch dominates both arms and the
// join; neither arm dominates the join.
func TestDominators(t *testing.T) {
	p := prog("dom",
		li(1, 0),
		beq(1, 1, 3),
		jal(isa.NoReg, 4), // fallthrough arm
		jal(isa.NoReg, 4), // taken arm
		halt(),            // join
	)
	g := Analyze(p)
	wantIdom := []int32{-1, 0, 1, 1, 1}
	for i, w := range wantIdom {
		if g.Idom(i) != w {
			t.Errorf("idom(%d) = %d, want %d", i, g.Idom(i), w)
		}
	}
}

// TestGeneratedKernelsAgainstReference runs the path-based references
// over every generator class: real-sized programs with loops, stores,
// atomics and forward-branch DAG bodies.
func TestGeneratedKernelsAgainstReference(t *testing.T) {
	for _, class := range gen.Classes() {
		for seed := uint64(1); seed <= 3; seed++ {
			p := gen.Kernel(class, seed)
			g := Analyze(p)
			// Reaching-defs reference is O(defs * n^2); keep it to the
			// smaller kernels.
			checkAgainstReference(t, g, len(p.Text) <= 96)
		}
	}
}

// TestStreamProgramsAgainstReference covers the fuzz grammar's shapes
// deterministically.
func TestStreamProgramsAgainstReference(t *testing.T) {
	inputs := [][]byte{
		{},
		{1, 2, 3, 4, 5, 6},
		{40, 1, 2, 3, 9, 0, 41, 9, 9, 9, 2, 0, 7, 7, 7, 7, 7, 7},
		{255, 254, 253, 252, 251, 250, 0, 1, 2, 3, 4, 5, 100, 90, 80, 70, 60, 50},
	}
	for _, in := range inputs {
		p := gen.DecodeStream(in)
		g := Analyze(p)
		checkAgainstReference(t, g, len(p.Text) <= 96)
	}
}

// TestAnalyzeDeterministic: two analyses of the same program must agree
// on every exported product (the session cross-verifies static against
// dynamic per fault, so any nondeterminism here would poison campaign
// reproducibility).
func TestAnalyzeDeterministic(t *testing.T) {
	p := gen.Kernel("mixed", 7)
	a, b := Analyze(p), Analyze(p)
	for i := range p.Text {
		if a.MayLiveIn(i) != b.MayLiveIn(i) || a.MustLiveOut(i) != b.MustLiveOut(i) ||
			fmt.Sprint(a.Succs(i)) != fmt.Sprint(b.Succs(i)) ||
			fmt.Sprint(a.ReachingIn(i)) != fmt.Sprint(b.ReachingIn(i)) {
			t.Fatalf("analysis of %s not deterministic at instruction %d", p.Name, i)
		}
	}
	if fmt.Sprint(a.ComputeStats()) != fmt.Sprint(b.ComputeStats()) {
		t.Fatal("stats not deterministic")
	}
}

func TestRegSetString(t *testing.T) {
	if got := set(1, 14, 15).String(); got != "{r1,lr,sp}" {
		t.Errorf("RegSet.String() = %q", got)
	}
	if got := RegSet(0).String(); got != "{}" {
		t.Errorf("empty RegSet.String() = %q", got)
	}
}
