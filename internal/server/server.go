// Package server implements the campaign service behind cmd/merlind: an
// HTTP+JSON API that accepts fault-injection campaigns, runs them on a
// sharded worker pool over bounded job queues, and streams per-fault
// progress to clients while campaigns execute.
//
// The package is deliberately pipeline-agnostic: it knows how to queue,
// schedule, observe and serve campaigns, but the campaign itself is an
// injected RunFunc (the root merlin package wires in Preprocess → Reduce →
// Inject, plus the golden-run artifact cache). That keeps the dependency
// direction clean — server never imports the simulator — and makes the
// scheduling and streaming machinery testable with synthetic pipelines.
//
// Endpoints:
//
//	POST   /campaigns             submit a campaign: 202 + {"id": ...}, or
//	                              429 when the target shard's queue is full
//	GET    /campaigns             list campaigns, most recent first
//	GET    /campaigns/{id}        status, plus the report once finished
//	DELETE /campaigns/{id}        cancel a queued or running campaign
//	                              (200; 409 once it already finished): a
//	                              queued campaign turns "cancelled"
//	                              immediately, a running one has its
//	                              context cancelled and turns "cancelled"
//	                              when its worker observes it, freeing the
//	                              shard for the next queued campaign
//	GET    /campaigns/{id}/events the campaign's event log as NDJSON,
//	                              following live progress until the
//	                              campaign finishes (?from=N resumes after
//	                              event N-1)
//	POST   /batches               submit a multi-structure batch campaign
//	                              (a "structures" list instead of a single
//	                              "structure"): one shared golden run, one
//	                              worker slot, one event log interleaving
//	                              every structure
//	GET    /batches               list batches, most recent first
//	GET    /batches/{id}          status, plus the batch report once done
//	DELETE /batches/{id}          cancel the whole batch (all structures)
//	GET    /batches/{id}/events   the batch's event log as NDJSON; fault
//	                              and phase events carry a "structure" tag
//	GET    /healthz               liveness + campaign/batch counts
//	GET    /statsz                queue depths, campaign counts, cache stats
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Request is the wire form of one campaign submission (the JSON body of
// POST /campaigns and POST /batches). Zero fields mean "use the pipeline
// default"; negative values are rejected at submission time by the
// injected Validate hook.
type Request struct {
	// Workload is the registered benchmark name (required).
	Workload string `json:"workload"`
	// Structure is the injection target: "RF", "SQ" or "L1D" (required
	// for POST /campaigns; forbidden for batches).
	Structure string `json:"structure,omitempty"`
	// Structures is the batch target list (required for POST /batches;
	// forbidden for single campaigns). The batch shares one golden run
	// across all of them and reports each separately.
	Structures []string `json:"structures,omitempty"`

	// Faults sets the initial statistical fault list size; 0 derives it
	// from Confidence and ErrorMargin.
	Faults      int     `json:"faults,omitempty"`
	Confidence  float64 `json:"confidence,omitempty"`
	ErrorMargin float64 `json:"error_margin,omitempty"`
	// Seed drives fault sampling.
	Seed int64 `json:"seed,omitempty"`

	// RepsPerGroup injects extra representatives per final group;
	// DisableByteGrouping turns off grouping step 2 (ablations).
	RepsPerGroup        int  `json:"reps_per_group,omitempty"`
	DisableByteGrouping bool `json:"disable_byte_grouping,omitempty"`

	// StaticPrune enables the guestflow static pre-pruner: provably
	// masked register-file fault sites are classified before reduction,
	// cross-verified against the dynamic analysis so reports stay
	// bit-identical to unpruned runs.
	StaticPrune bool `json:"static_prune,omitempty"`

	// Workers bounds the campaign's injection parallelism.
	Workers int `json:"workers,omitempty"`
	// Strategy is "replay", "checkpointed" or "forked"; Checkpoints sets
	// the snapshot count of "checkpointed".
	Strategy    string `json:"strategy,omitempty"`
	Checkpoints int    `json:"checkpoints,omitempty"`

	// Core configuration knobs (paper Table 1 sweep points); 0 keeps the
	// baseline configuration.
	PhysRegs  int `json:"phys_regs,omitempty"`
	SQEntries int `json:"sq_entries,omitempty"`
	L1DBytes  int `json:"l1d_bytes,omitempty"`

	// DeadlineMS, when > 0, bounds the campaign's execution time: its
	// context is cancelled DeadlineMS milliseconds after it starts
	// running (queue wait does not count), and the campaign fails with a
	// deadline-exceeded error. 0 means no deadline.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
}

// Event is one entry of a campaign's progress log. Seq is dense and
// per-campaign, so streams resume exactly with ?from=N.
type Event struct {
	Seq  int       `json:"seq"`
	Time time.Time `json:"time"`
	// Type is "queued", "started", "preprocess", "reduce", "fault",
	// "inject", "batch", "done", "failed", "cancelled" — plus the
	// durability and fleet lifecycle markers: "resumed" (re-enqueued from
	// the registry after a restart), "restored" (terminal record reloaded
	// from the registry), "interrupted" (shutdown left the record
	// resumable), "truncated" (synthetic: the stream's ?from fell into the
	// ring buffer's dropped range), and the coordinator's "shard" /
	// "requeue" markers for distributed campaigns.
	Type string `json:"type"`
	// Structure tags the event with the structure it belongs to ("RF",
	// "SQ", "L1D"). Batch campaigns interleave several structures in one
	// event log, so per-fault and per-structure phase events carry it;
	// batch-level events (the shared preprocess, the batch summary) and
	// lifecycle events do not.
	Structure string `json:"structure,omitempty"`
	// Msg is a human-readable summary (phase events).
	Msg string `json:"msg,omitempty"`

	// Fault events: the fault's index in the reduced list, its
	// description, and its outcome class. Index is always serialized
	// (index 0 is a valid fault, not an absent field).
	Index   int    `json:"index"`
	Fault   string `json:"fault,omitempty"`
	Outcome string `json:"outcome,omitempty"`

	// Preprocess events: whether the golden-run artifact cache served
	// this campaign.
	CacheHit *bool `json:"cache_hit,omitempty"`

	// Inject events: whether the shared snapshot cache served the
	// checkpoint ladder (skipping its rebuild), and the campaign's
	// effective simulation throughput in cycles per wall-clock second.
	SnapshotHit  *bool   `json:"snapshot_hit,omitempty"`
	CyclesPerSec float64 `json:"cycles_per_sec,omitempty"`

	// Reduce events: how many fault sites the guestflow static pre-pruner
	// classified masked without a dynamic interval lookup (0 unless the
	// request asked for static_prune).
	StaticPruned int `json:"static_pruned,omitempty"`
}

// Job is one unit of work handed to the RunFunc: the submitted request
// plus the durable-execution context a resumable pipeline needs.
type Job struct {
	// ID and Kind identify the record (KindCampaign or KindBatch).
	ID   string
	Kind string
	// Request is the submission being executed.
	Request Request

	// Resume carries the outcomes already classified by a previous
	// incarnation of this campaign (representative index → fault-effect
	// class name), checkpointed through Checkpoint before a restart or
	// worker loss. Empty on a fresh campaign. Pipelines that cannot skip
	// finished work may ignore it — re-deriving the same outcomes is
	// correct by determinism, just slower.
	Resume map[int]string

	// Checkpoint, never nil, merges newly classified outcomes into the
	// record's durable state. The server persists them (throttled) through
	// its registry when one is configured, so a crashed or restarted
	// coordinator resumes from the last checkpoint instead of restarting.
	// Safe for concurrent use.
	Checkpoint func(outcomes map[int]string)
}

// RunFunc executes one campaign: it returns the JSON-marshalable report,
// emitting progress events along the way. emit is safe for concurrent use
// and may be called from any goroutine until RunFunc returns. ctx is the
// campaign's own context: it is cancelled when the server shuts down,
// when the campaign is cancelled via DELETE, or when its per-request
// deadline expires — a RunFunc should observe it and return ctx.Err()
// promptly (cancelled campaigns whose RunFunc returns a context error are
// recorded with the "cancelled" terminal status; a non-nil report
// returned together with that error is retained as the record's partial
// report).
type RunFunc func(ctx context.Context, job Job, emit func(Event)) (any, error)

// Record is the durable wire form of one campaign: everything a
// restarted server needs to restore a finished record or resume an
// interrupted one. Request and Report are the JSON encodings of the
// in-memory forms; Outcomes is the per-representative checkpoint. The
// field set is deliberately struct-identical to store.CampaignRecord so
// the daemon's adapter is a plain Go struct conversion.
type Record struct {
	ID        string
	Kind      string
	Status    string
	Request   []byte
	Report    []byte
	Error     string
	Submitted time.Time
	Started   time.Time
	Finished  time.Time
	Outcomes  map[int]string
}

// Registry persists campaign records across server restarts. Put
// replaces the record of the same ID; List returns every readable record;
// Delete is idempotent. Implementations must be safe for concurrent use.
// The server treats the registry as best-effort: a persistence failure
// never fails the campaign it records.
type Registry interface {
	Put(Record) error
	List() ([]Record, error)
	Delete(id string) error
}

// Config configures a Server. Run is required; everything else defaults.
type Config struct {
	// Run executes campaigns (required).
	Run RunFunc
	// Validate, when non-nil, vets a request at submission time so
	// malformed campaigns are rejected with 400 instead of failing
	// asynchronously in the queue.
	Validate func(Request) error
	// CacheStats, when non-nil, is folded into GET /statsz (the daemon
	// passes the artifact cache's stats).
	CacheStats func() any
	// SnapshotStats, when non-nil, is folded into GET /statsz (the daemon
	// passes the in-memory snapshot cache's stats).
	SnapshotStats func() any
	// RegistryStats, when non-nil, is folded into GET /statsz (the daemon
	// passes the durable registry's stats).
	RegistryStats func() any
	// PruneStats, when non-nil, is folded into GET /statsz (the daemon
	// passes the static pre-pruner's running counters).
	PruneStats func() any

	// Routes, when non-nil, is called with the service mux so the daemon
	// can mount extra endpoint trees — the fleet coordinator's /fleet/*
	// registration routes and the /artifacts/* content-address transfer —
	// on the same listener. The server stays pipeline-agnostic: it only
	// lends out the mux.
	Routes func(mux *http.ServeMux)

	// Registry, when non-nil, makes campaign state durable: every record
	// transition (queued, running, checkpointed outcomes, terminal) is
	// persisted, and New restores the registry's contents — finished
	// records become queryable again, interrupted ones are re-enqueued
	// with their checkpointed outcomes so they resume instead of
	// restarting. Without it the server keeps today's in-memory-only
	// behavior, including marking shutdown-interrupted campaigns failed.
	Registry Registry

	// Shards is the number of independent worker pools; campaigns are
	// assigned by hash of their id. 0 means DefaultShards. Negative
	// values are rejected by New.
	Shards int
	// WorkersPerShard is the number of campaigns one shard runs
	// concurrently (each campaign additionally parallelizes its own
	// injections). 0 means DefaultWorkersPerShard; negative values are
	// rejected by New.
	WorkersPerShard int
	// QueueDepth is the pending-campaign bound per shard; submissions
	// beyond it are refused with 429 so load sheds at the edge instead
	// of accumulating unbounded memory. 0 means DefaultQueueDepth;
	// negative values are rejected by New.
	QueueDepth int
	// RetainFinished bounds how many finished (done or failed) campaigns
	// — records, reports and event logs — stay queryable: the oldest are
	// evicted on submission once the bound is exceeded, keeping a
	// long-running daemon's memory proportional to its active load, not
	// its lifetime. Clients already streaming an evicted campaign's
	// events are unaffected. 0 means DefaultRetainFinished; negative
	// values are rejected by New.
	RetainFinished int
	// MaxEventsPerCampaign caps one record's in-memory event log: beyond
	// it the oldest quarter is dropped (a ring buffer, so a million-fault
	// campaign does not pin a million events in RAM), streamers resuming
	// into the dropped range receive an explicit "truncated" marker, and
	// the status reports how many events were dropped. 0 means
	// DefaultMaxEvents; negative values are rejected by New.
	MaxEventsPerCampaign int
}

// Defaults for Config. Small shard counts keep per-shard FIFO fairness
// while letting unrelated campaigns overtake each other across shards.
const (
	DefaultShards          = 4
	DefaultWorkersPerShard = 1
	DefaultQueueDepth      = 64
	DefaultRetainFinished  = 1024
	DefaultMaxEvents       = 8192
)

// checkpointInterval throttles durable checkpoint writes: the first
// checkpoint of a campaign persists immediately (so short campaigns are
// resumable at all), later ones at most this often.
const checkpointInterval = 500 * time.Millisecond

// status values of a campaign.
const (
	StatusQueued    = "queued"
	StatusRunning   = "running"
	StatusDone      = "done"
	StatusFailed    = "failed"
	StatusCancelled = "cancelled"
)

// terminal reports whether a status is final (no worker will touch the
// campaign again and its event log is complete).
func terminalStatus(status string) bool {
	return status == StatusDone || status == StatusFailed || status == StatusCancelled
}

// Kinds of submission the service runs. Both flow through the same
// queues, workers, event logs and cancellation; they differ only in which
// endpoints serve them and in what the injected RunFunc does with the
// request (a batch request carries Structures and returns a batch
// report).
const (
	KindCampaign = "campaign"
	KindBatch    = "batch"
)

// campaign is the server-side record of one submission (single campaign
// or batch).
type campaign struct {
	id        string
	kind      string
	shard     int
	req       Request
	submitted time.Time

	mu       sync.Mutex
	status   string
	started  time.Time
	finished time.Time
	// events is the retained tail of the log: entry i carries sequence
	// number firstSeq+i. Once the log exceeds maxEvents the oldest
	// quarter is dropped (dropped counts them), so a million-fault
	// campaign does not pin a million events in RAM.
	events    []Event
	firstSeq  int
	dropped   int
	maxEvents int
	report    any
	errMsg    string
	// outcomes is the durable per-representative checkpoint (index in the
	// reduced fault list → fault-effect class name), merged by the
	// RunFunc's Job.Checkpoint and persisted through the registry.
	outcomes map[int]string
	notify   chan struct{} // closed and replaced on every event append
	// cancel aborts the running campaign's context; set by the worker
	// while the campaign runs. cancelRequested records that a DELETE
	// asked for cancellation, distinguishing a user-cancelled campaign
	// from one interrupted by server shutdown.
	cancel          context.CancelFunc
	cancelRequested bool
}

// appendLocked stamps and stores one event, rotates the ring when the log
// exceeds its cap, and wakes all streamers. The caller holds c.mu.
func (c *campaign) appendLocked(ev Event) {
	ev.Seq = c.firstSeq + len(c.events)
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	c.events = append(c.events, ev)
	if c.maxEvents > 0 && len(c.events) > c.maxEvents {
		// Drop the oldest quarter in one slide so the amortized cost per
		// append stays O(1); zero the vacated tail so dropped events
		// release whatever they reference.
		drop := len(c.events) / 4
		if drop < 1 {
			drop = 1
		}
		n := copy(c.events, c.events[drop:])
		for i := n; i < len(c.events); i++ {
			c.events[i] = Event{}
		}
		c.events = c.events[:n]
		c.firstSeq += drop
		c.dropped += drop
	}
	close(c.notify)
	c.notify = make(chan struct{})
}

// append is appendLocked behind the campaign's own lock.
func (c *campaign) append(ev Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.appendLocked(ev)
}

// finishLocked records the campaign's terminal state and its final event
// as one transition: streamers that observe a terminal status are
// guaranteed the event log is already complete. The caller holds c.mu.
func (c *campaign) finishLocked(status string, report any, errMsg string, ev Event) {
	c.finished = time.Now()
	c.status = status
	c.report = report
	c.errMsg = errMsg
	c.appendLocked(ev)
}

// finish is finishLocked behind the campaign's own lock.
func (c *campaign) finish(status string, report any, errMsg string, ev Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.finishLocked(status, report, errMsg, ev)
}

// snapshot returns the events from sequence number `from` on, the cursor
// to resume from next, the current status, and a channel closed at the
// next append (for blocking streamers). A `from` that falls into the
// ring's dropped range yields a synthetic "truncated" event naming the
// gap, then the retained tail — a resuming client learns it missed
// events instead of silently skipping them.
func (c *campaign) snapshot(from int) ([]Event, int, string, <-chan struct{}) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var evs []Event
	if from < c.firstSeq {
		evs = append(evs, Event{
			Seq:  from,
			Time: time.Now(),
			Type: "truncated",
			Msg:  fmt.Sprintf("events %d..%d dropped (log capped at %d)", from, c.firstSeq-1, c.maxEvents),
		})
		from = c.firstSeq
	}
	if idx := from - c.firstSeq; idx < len(c.events) {
		evs = append(evs, c.events[idx:]...)
	}
	next := c.firstSeq + len(c.events)
	if next < from {
		next = from // asked beyond the end: nothing to skip yet
	}
	return evs, next, c.status, c.notify
}

// Server is the campaign service. Create with New, expose via Handler,
// stop with Close.
type Server struct {
	cfg    Config
	start  time.Time
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	queues []chan *campaign

	mu        sync.Mutex
	campaigns map[string]*campaign
	order     []string // submission order, for listing
	nextID    uint64
}

// New validates cfg, applies defaults, and starts the shard worker pools.
func New(cfg Config) (*Server, error) {
	if cfg.Run == nil {
		return nil, fmt.Errorf("server: Config.Run is required")
	}
	switch {
	case cfg.Shards < 0:
		return nil, fmt.Errorf("server: Shards is %d; want >= 0 (0 = %d)", cfg.Shards, DefaultShards)
	case cfg.WorkersPerShard < 0:
		return nil, fmt.Errorf("server: WorkersPerShard is %d; want >= 0 (0 = %d)", cfg.WorkersPerShard, DefaultWorkersPerShard)
	case cfg.QueueDepth < 0:
		return nil, fmt.Errorf("server: QueueDepth is %d; want >= 0 (0 = %d)", cfg.QueueDepth, DefaultQueueDepth)
	case cfg.RetainFinished < 0:
		return nil, fmt.Errorf("server: RetainFinished is %d; want >= 0 (0 = %d)", cfg.RetainFinished, DefaultRetainFinished)
	case cfg.MaxEventsPerCampaign < 0:
		return nil, fmt.Errorf("server: MaxEventsPerCampaign is %d; want >= 0 (0 = %d)", cfg.MaxEventsPerCampaign, DefaultMaxEvents)
	}
	if cfg.Shards == 0 {
		cfg.Shards = DefaultShards
	}
	if cfg.WorkersPerShard == 0 {
		cfg.WorkersPerShard = DefaultWorkersPerShard
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.RetainFinished == 0 {
		cfg.RetainFinished = DefaultRetainFinished
	}
	if cfg.MaxEventsPerCampaign == 0 {
		cfg.MaxEventsPerCampaign = DefaultMaxEvents
	}

	//lint:allow ctxflow002 server root ctx: the daemon owns campaign lifetimes; DELETE cancels via the stored CancelFunc
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		start:     time.Now(),
		ctx:       ctx,
		cancel:    cancel,
		queues:    make([]chan *campaign, cfg.Shards),
		campaigns: make(map[string]*campaign),
	}
	for i := range s.queues {
		s.queues[i] = make(chan *campaign, cfg.QueueDepth)
	}
	// Restore before the workers start, so re-enqueued campaigns cannot
	// race a worker observing a half-restored map.
	if cfg.Registry != nil {
		s.restore()
	}
	for i := range s.queues {
		for w := 0; w < cfg.WorkersPerShard; w++ {
			s.wg.Add(1)
			go s.worker(s.queues[i])
		}
	}
	return s, nil
}

// recSeq extracts the numeric suffix of a record id ("c000042" → 42) so
// restore can continue the id sequence and rebuild submission order; 0
// for ids the server did not mint.
func recSeq(id string) uint64 {
	if len(id) < 2 {
		return 0
	}
	n, err := strconv.ParseUint(id[1:], 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// restore reloads the durable registry into the in-memory map: terminal
// records become queryable again (report and error intact, a synthetic
// "restored" event standing in for the log), queued and running records
// are re-enqueued as queued with their checkpointed outcomes — a
// coordinator restart resumes in-flight campaigns instead of forgetting
// them. Unreadable records were already skipped by the registry; a
// record that no longer fits its shard queue fails visibly rather than
// silently vanishing.
func (s *Server) restore() {
	recs, err := s.cfg.Registry.List()
	if err != nil {
		return
	}
	// Ids are minted from one shared counter, so numeric suffix order is
	// submission order across kinds.
	sort.Slice(recs, func(i, j int) bool { return recSeq(recs[i].ID) < recSeq(recs[j].ID) })
	for _, rec := range recs {
		if rec.ID == "" || (rec.Kind != KindCampaign && rec.Kind != KindBatch) {
			continue
		}
		if n := recSeq(rec.ID); n > s.nextID {
			s.nextID = n
		}
		var req Request
		json.Unmarshal(rec.Request, &req) // a zero request still restores the record shell
		c := &campaign{
			id:        rec.ID,
			kind:      rec.Kind,
			shard:     s.shardOf(rec.ID),
			req:       req,
			submitted: rec.Submitted,
			started:   rec.Started,
			maxEvents: s.cfg.MaxEventsPerCampaign,
			errMsg:    rec.Error,
			notify:    make(chan struct{}),
		}
		if len(rec.Outcomes) > 0 {
			c.outcomes = make(map[int]string, len(rec.Outcomes))
			for k, v := range rec.Outcomes {
				c.outcomes[k] = v
			}
		}
		s.campaigns[rec.ID] = c
		s.order = append(s.order, rec.ID)
		if terminalStatus(rec.Status) {
			c.status = rec.Status
			c.finished = rec.Finished
			if len(rec.Report) > 0 {
				c.report = json.RawMessage(rec.Report)
			}
			c.appendLocked(Event{Type: "restored",
				Msg: fmt.Sprintf("restored from registry (%s)", rec.Status)})
			continue
		}
		// Queued or interrupted mid-run: back to the queue, carrying the
		// checkpoint so the rerun resumes where the old process stopped.
		c.status = StatusQueued
		c.appendLocked(Event{Type: "resumed",
			Msg: fmt.Sprintf("resumed after restart (%d outcomes checkpointed)", len(c.outcomes))})
		select {
		case s.queues[c.shard] <- c:
		default:
			c.finishLocked(StatusFailed, nil, "restore: shard queue full",
				Event{Type: "failed", Msg: "restore: shard queue full"})
			s.persist(c)
		}
	}
}

// persist writes the campaign's current state through the registry,
// best-effort: a persistence failure must never fail the campaign it
// records. No-op without a registry.
func (s *Server) persist(c *campaign) {
	if s.cfg.Registry == nil {
		return
	}
	c.mu.Lock()
	rec := Record{
		ID:        c.id,
		Kind:      c.kind,
		Status:    c.status,
		Error:     c.errMsg,
		Submitted: c.submitted,
		Started:   c.started,
		Finished:  c.finished,
	}
	if b, err := json.Marshal(c.req); err == nil {
		rec.Request = b
	}
	if c.report != nil {
		if raw, ok := c.report.(json.RawMessage); ok {
			rec.Report = raw
		} else if b, err := json.Marshal(c.report); err == nil {
			rec.Report = b
		}
	}
	if len(c.outcomes) > 0 {
		rec.Outcomes = make(map[int]string, len(c.outcomes))
		for k, v := range c.outcomes {
			rec.Outcomes[k] = v
		}
	}
	c.mu.Unlock()
	s.cfg.Registry.Put(rec)
}

// Close stops accepting campaigns, cancels the run context, and waits for
// the workers to drain. Queued-but-unstarted campaigns stay "queued".
func (s *Server) Close() {
	s.cancel()
	s.wg.Wait()
}

// worker runs campaigns from one shard queue until shutdown.
func (s *Server) worker(queue <-chan *campaign) {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case c := <-queue:
			s.run(c)
		}
	}
}

// run executes one campaign, converting RunFunc panics into failures so a
// pipeline bug cannot take down the whole service. Each campaign gets its
// own context derived from the server's: DELETE cancels it, and a
// per-request deadline bounds it from the moment execution starts.
func (s *Server) run(c *campaign) {
	ctx, cancel := context.WithCancel(s.ctx)
	defer cancel()
	if ms := c.req.DeadlineMS; ms > 0 {
		ctx, cancel = context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
		defer cancel()
	}

	c.mu.Lock()
	if c.status != StatusQueued { // cancelled while queued
		c.mu.Unlock()
		return
	}
	c.status = StatusRunning
	c.started = time.Now()
	c.cancel = cancel
	var resume map[int]string
	if len(c.outcomes) > 0 {
		resume = make(map[int]string, len(c.outcomes))
		for k, v := range c.outcomes {
			resume[k] = v
		}
	}
	c.mu.Unlock()
	c.append(Event{Type: "started", Msg: fmt.Sprintf("campaign %s running on shard %d", c.id, c.shard)})
	s.persist(c)

	// Checkpoint merges classified outcomes into the record and persists
	// them, throttled so a fast campaign does not turn every fault into a
	// disk write; the first checkpoint lands immediately so even short
	// campaigns are resumable.
	var ckptMu sync.Mutex
	var lastPersist time.Time
	job := Job{
		ID:      c.id,
		Kind:    c.kind,
		Request: c.req,
		Resume:  resume,
		Checkpoint: func(outcomes map[int]string) {
			if len(outcomes) == 0 {
				return
			}
			c.mu.Lock()
			if c.outcomes == nil {
				c.outcomes = make(map[int]string, len(outcomes))
			}
			for k, v := range outcomes {
				c.outcomes[k] = v
			}
			c.mu.Unlock()
			if s.cfg.Registry == nil {
				return
			}
			ckptMu.Lock()
			now := time.Now()
			if !lastPersist.IsZero() && now.Sub(lastPersist) < checkpointInterval {
				ckptMu.Unlock()
				return
			}
			lastPersist = now
			ckptMu.Unlock()
			s.persist(c)
		},
	}

	report, err := func() (report any, err error) {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("campaign panicked: %v", p)
			}
		}()
		return s.cfg.Run(ctx, job, c.append)
	}()

	c.mu.Lock()
	cancelled := c.cancelRequested
	c.cancel = nil
	c.mu.Unlock()

	ctxErr := errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
	switch {
	case err == nil:
		// A cancel that raced with completion loses: the report exists.
		c.finish(StatusDone, report, "", Event{Type: "done"})
	case cancelled && ctxErr:
		// Only a genuine context error counts as the requested
		// cancellation; a pipeline failure that raced with the DELETE
		// must still surface as "failed" below. A partial report returned
		// alongside the context error is kept — for a batch, the finished
		// structures' results survive the DELETE.
		c.finish(StatusCancelled, report, err.Error(),
			Event{Type: "cancelled", Msg: "campaign cancelled: " + err.Error()})
	case !cancelled && ctxErr && s.ctx.Err() != nil && s.cfg.Registry != nil:
		// Server shutdown with a durable registry: no terminal
		// transition. The record stays "running" on disk with its latest
		// checkpoint, so the next incarnation re-enqueues and resumes it.
		c.append(Event{Type: "interrupted",
			Msg: "server shutting down; campaign resumes on restart"})
	case !cancelled && errors.Is(err, context.DeadlineExceeded) && c.req.DeadlineMS > 0:
		msg := fmt.Sprintf("deadline of %dms exceeded", c.req.DeadlineMS)
		c.finish(StatusFailed, nil, msg, Event{Type: "failed", Msg: msg})
	default:
		c.finish(StatusFailed, nil, err.Error(), Event{Type: "failed", Msg: err.Error()})
	}
	s.persist(c)
}

// shardOf maps a campaign id to its worker pool.
func (s *Server) shardOf(id string) int {
	h := fnv.New32a()
	h.Write([]byte(id))
	return int(h.Sum32() % uint32(len(s.queues)))
}

// Submit enqueues a single-structure campaign and returns its id. It
// fails fast with ErrQueueFull when the target shard's queue is at
// capacity.
func (s *Server) Submit(req Request) (string, error) {
	if len(req.Structures) > 0 {
		return "", &badRequestError{fmt.Errorf("structures is a batch field; submit via POST /batches (or set structure)")}
	}
	return s.submit(req, KindCampaign)
}

// SubmitBatch enqueues a multi-structure batch campaign and returns its
// id. The batch runs as one cancellable unit: a single worker slot, a
// single event log interleaving every structure, and one DELETE cancels
// all of it.
func (s *Server) SubmitBatch(req Request) (string, error) {
	if len(req.Structures) == 0 {
		return "", &badRequestError{fmt.Errorf("batch submissions require a non-empty structures list")}
	}
	if req.Structure != "" {
		return "", &badRequestError{fmt.Errorf("structure is a single-campaign field; batches take structures")}
	}
	return s.submit(req, KindBatch)
}

// submit is the shared enqueue path of Submit and SubmitBatch.
func (s *Server) submit(req Request, kind string) (string, error) {
	if req.DeadlineMS < 0 {
		return "", &badRequestError{fmt.Errorf("deadline_ms is %d; want >= 0 (0 = no deadline)", req.DeadlineMS)}
	}
	if s.cfg.Validate != nil {
		if err := s.cfg.Validate(req); err != nil {
			return "", &badRequestError{err}
		}
	}
	if s.ctx.Err() != nil {
		return "", fmt.Errorf("server: shutting down")
	}

	prefix := "c"
	if kind == KindBatch {
		prefix = "b"
	}
	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("%s%06d", prefix, s.nextID)
	c := &campaign{
		id:        id,
		kind:      kind,
		shard:     s.shardOf(id),
		req:       req,
		submitted: time.Now(),
		status:    StatusQueued,
		maxEvents: s.cfg.MaxEventsPerCampaign,
		notify:    make(chan struct{}),
	}
	s.campaigns[id] = c
	s.order = append(s.order, id)
	evicted := s.evictFinishedLocked()
	s.mu.Unlock()
	s.unregister(evicted)

	// The queued event precedes the enqueue so no worker can emit
	// "started" ahead of it.
	c.append(Event{Type: "queued", Msg: fmt.Sprintf("queued on shard %d", c.shard)})
	select {
	case s.queues[c.shard] <- c:
	default:
		s.mu.Lock()
		delete(s.campaigns, id)
		for i := len(s.order) - 1; i >= 0; i-- {
			if s.order[i] == id {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		return "", ErrQueueFull
	}
	// Persisted only after the enqueue succeeded: a 429'd submission must
	// not reappear on restart.
	s.persist(c)
	return id, nil
}

// unregister removes evicted records from the durable registry so disk
// usage tracks the retention bound like memory does.
func (s *Server) unregister(ids []string) {
	if s.cfg.Registry == nil {
		return
	}
	for _, id := range ids {
		s.cfg.Registry.Delete(id)
	}
}

// evictFinishedLocked drops the oldest finished campaigns beyond the
// RetainFinished bound, keeping a long-running daemon's memory bounded,
// and returns the evicted ids so the caller can drop their registry
// records too. Queued and running campaigns are never evicted; streamers
// holding an evicted campaign's pointer keep reading it unaffected.
// Caller holds s.mu.
func (s *Server) evictFinishedLocked() []string {
	terminal := func(c *campaign) bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		return terminalStatus(c.status)
	}
	finished := 0
	for _, c := range s.campaigns {
		if terminal(c) {
			finished++
		}
	}
	excess := finished - s.cfg.RetainFinished
	if excess <= 0 {
		return nil
	}
	var evicted []string
	kept := s.order[:0]
	for _, id := range s.order {
		if c := s.campaigns[id]; excess > 0 && c != nil && terminal(c) {
			delete(s.campaigns, id)
			evicted = append(evicted, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
	return evicted
}

// ErrQueueFull is returned (and served as 429) when the target shard's
// bounded queue cannot take another campaign.
var ErrQueueFull = fmt.Errorf("server: campaign queue full, retry later")

// badRequestError marks a submission-time validation failure (served 400).
type badRequestError struct{ err error }

func (e *badRequestError) Error() string { return e.err.Error() }
func (e *badRequestError) Unwrap() error { return e.err }

// get looks up a campaign by id.
func (s *Server) get(id string) (*campaign, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.campaigns[id]
	return c, ok
}

// getKind looks up a record by id, visible only through its own kind's
// endpoint tree (a batch id 404s under /campaigns and vice versa).
func (s *Server) getKind(id, kind string) (*campaign, bool) {
	c, ok := s.get(id)
	if !ok || c.kind != kind {
		return nil, false
	}
	return c, true
}

// statusJSON is the wire form of GET /campaigns/{id} (and the per-entry
// form of GET /campaigns).
type statusJSON struct {
	ID        string    `json:"id"`
	Kind      string    `json:"kind"`
	Status    string    `json:"status"`
	Shard     int       `json:"shard"`
	Request   Request   `json:"request"`
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started"`
	Finished  time.Time `json:"finished"`
	Events    int       `json:"events"`
	// DroppedEvents counts log entries the ring buffer discarded; a
	// streamer resuming into that range receives a "truncated" marker.
	DroppedEvents int `json:"dropped_events,omitempty"`
	// Checkpointed counts the per-representative outcomes persisted so
	// far (nonzero only while a distributed or resumed campaign runs).
	Checkpointed int    `json:"checkpointed,omitempty"`
	Report       any    `json:"report,omitempty"`
	Error        string `json:"error,omitempty"`
}

func (c *campaign) statusJSON(withReport bool) statusJSON {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := statusJSON{
		ID:            c.id,
		Kind:          c.kind,
		Status:        c.status,
		Shard:         c.shard,
		Request:       c.req,
		Submitted:     c.submitted,
		Started:       c.started,
		Finished:      c.finished,
		Events:        c.firstSeq + len(c.events),
		DroppedEvents: c.dropped,
		Checkpointed:  len(c.outcomes),
		Error:         c.errMsg,
	}
	if withReport {
		st.Report = c.report
	}
	return st
}

// Handler returns the service's HTTP handler. The /batches tree mirrors
// /campaigns — submit, list, status, cancel, event streaming — over the
// same queues and workers; each tree only serves records of its own kind.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	mux.HandleFunc("POST /campaigns", s.handleSubmit)
	mux.HandleFunc("GET /campaigns", s.handleList(KindCampaign))
	mux.HandleFunc("GET /campaigns/{id}", s.handleStatus(KindCampaign))
	mux.HandleFunc("DELETE /campaigns/{id}", s.handleCancel(KindCampaign))
	mux.HandleFunc("GET /campaigns/{id}/events", s.handleEvents(KindCampaign))
	mux.HandleFunc("POST /batches", s.handleSubmitBatch)
	mux.HandleFunc("GET /batches", s.handleList(KindBatch))
	mux.HandleFunc("GET /batches/{id}", s.handleStatus(KindBatch))
	mux.HandleFunc("DELETE /batches/{id}", s.handleCancel(KindBatch))
	mux.HandleFunc("GET /batches/{id}/events", s.handleEvents(KindBatch))
	if s.cfg.Routes != nil {
		s.cfg.Routes(mux)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// countByStatus snapshots how many records of each kind sit in each
// state, in one pass over the records (healthz/statsz scrapers should
// not double the lock churn of the submit path).
func (s *Server) countByStatus() map[string]map[string]int {
	counts := map[string]map[string]int{KindCampaign: {}, KindBatch: {}}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.campaigns {
		c.mu.Lock()
		counts[c.kind][c.status]++
		c.mu.Unlock()
	}
	return counts
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	counts := s.countByStatus()
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":             true,
		"uptime_seconds": time.Since(s.start).Seconds(),
		"campaigns":      counts[KindCampaign],
		"batches":        counts[KindBatch],
	})
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	depths := make([]int, len(s.queues))
	for i, q := range s.queues {
		depths[i] = len(q)
	}
	counts := s.countByStatus()
	stats := map[string]any{
		"uptime_seconds":    time.Since(s.start).Seconds(),
		"shards":            len(s.queues),
		"workers_per_shard": s.cfg.WorkersPerShard,
		"queue_capacity":    s.cfg.QueueDepth,
		"queue_depths":      depths,
		"campaigns":         counts[KindCampaign],
		"batches":           counts[KindBatch],
	}
	if s.cfg.CacheStats != nil {
		stats["cache"] = s.cfg.CacheStats()
	}
	if s.cfg.SnapshotStats != nil {
		stats["snapshots"] = s.cfg.SnapshotStats()
	}
	if s.cfg.RegistryStats != nil {
		stats["registry"] = s.cfg.RegistryStats()
	}
	if s.cfg.PruneStats != nil {
		stats["static_prune"] = s.cfg.PruneStats()
	}
	writeJSON(w, http.StatusOK, stats)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	s.serveSubmit(w, r, s.Submit)
}

func (s *Server) handleSubmitBatch(w http.ResponseWriter, r *http.Request) {
	s.serveSubmit(w, r, s.SubmitBatch)
}

func (s *Server) serveSubmit(w http.ResponseWriter, r *http.Request, submit func(Request) (string, error)) {
	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
		return
	}
	id, err := submit(req)
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, map[string]string{"id": id})
	case err == ErrQueueFull:
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": err.Error()})
	default:
		code := http.StatusInternalServerError
		var bad *badRequestError
		if errors.As(err, &bad) {
			code = http.StatusBadRequest
		}
		writeJSON(w, code, map[string]string{"error": err.Error()})
	}
}

func (s *Server) handleList(kind string) http.HandlerFunc {
	listKey := "campaigns"
	if kind == KindBatch {
		listKey = "batches"
	}
	return func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		ids := append([]string(nil), s.order...)
		s.mu.Unlock()
		sort.Sort(sort.Reverse(sort.StringSlice(ids))) // ids are zero-padded: reverse-lexicographic = newest first per kind
		out := make([]statusJSON, 0, len(ids))
		for _, id := range ids {
			if c, ok := s.getKind(id, kind); ok {
				out = append(out, c.statusJSON(false))
			}
		}
		writeJSON(w, http.StatusOK, map[string]any{listKey: out})
	}
}

func (s *Server) handleStatus(kind string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		c, ok := s.getKind(r.PathValue("id"), kind)
		if !ok {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown " + kind})
			return
		}
		writeJSON(w, http.StatusOK, c.statusJSON(true))
	}
}

// ErrFinished is returned by Cancel (and served as 409) when the campaign
// already reached a terminal state.
var ErrFinished = fmt.Errorf("server: campaign already finished")

// ErrUnknownCampaign is returned by Cancel (and served as 404) for ids
// the server does not know.
var ErrUnknownCampaign = fmt.Errorf("server: unknown campaign")

// Cancel cancels a campaign. A queued campaign becomes "cancelled"
// immediately (its worker will skip it); a running campaign has its
// context cancelled and reaches "cancelled" once its RunFunc observes the
// cancellation and returns, freeing the worker shard. Cancelling an
// already-finished campaign returns ErrFinished.
func (s *Server) Cancel(id string) (status string, err error) {
	c, ok := s.get(id)
	if !ok {
		return "", ErrUnknownCampaign
	}
	c.mu.Lock()
	switch {
	case terminalStatus(c.status):
		c.mu.Unlock()
		return "", ErrFinished
	case c.status == StatusQueued:
		// Terminal immediately: the worker checks the status on dequeue
		// and skips cancelled campaigns, so no run will start.
		c.cancelRequested = true
		c.finishLocked(StatusCancelled, nil, "cancelled while queued",
			Event{Type: "cancelled", Msg: "campaign cancelled before start"})
		c.mu.Unlock()
		s.persist(c)
		return StatusCancelled, nil
	default: // running
		c.cancelRequested = true
		if c.cancel != nil {
			c.cancel()
		}
		c.mu.Unlock()
		return "cancelling", nil
	}
}

// handleCancel serves DELETE /campaigns/{id} and DELETE /batches/{id}:
// 200 with the resulting status for queued ("cancelled") and running
// ("cancelling", terminal "cancelled" follows once the worker unwinds)
// records, 409 for finished ones, 404 for unknown or wrong-kind ids.
// Cancelling a batch cancels the whole batch: its one context covers
// every structure, so finished structures keep their reports and the
// rest never inject.
func (s *Server) handleCancel(kind string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if _, ok := s.getKind(id, kind); !ok {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown " + kind})
			return
		}
		status, err := s.Cancel(id)
		switch err {
		case nil:
			writeJSON(w, http.StatusOK, map[string]string{"id": id, "status": status})
		case ErrUnknownCampaign:
			writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown " + kind})
		case ErrFinished:
			writeJSON(w, http.StatusConflict, map[string]string{"error": err.Error()})
		default:
			writeJSON(w, http.StatusInternalServerError, map[string]string{"error": err.Error()})
		}
	}
}

// handleEvents streams a record's event log as NDJSON: everything
// already recorded, then live events as they happen, closing once the
// record reaches a terminal state (or the client goes away). Batch logs
// interleave all structures; each fault/phase event carries its
// "structure" tag so clients can demultiplex.
func (s *Server) handleEvents(kind string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		c, ok := s.getKind(r.PathValue("id"), kind)
		if !ok {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown " + kind})
			return
		}
		s.streamEvents(w, r, c)
	}
}

func (s *Server) streamEvents(w http.ResponseWriter, r *http.Request, c *campaign) {
	from := 0
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "from must be a non-negative integer"})
			return
		}
		from = n
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)

	for {
		evs, next, status, more := c.snapshot(from)
		for _, ev := range evs {
			if err := enc.Encode(ev); err != nil {
				return // client went away
			}
		}
		from = next
		if flusher != nil && len(evs) > 0 {
			flusher.Flush()
		}
		// finish() records the terminal status and the final event
		// atomically, so a drained log plus terminal status means the
		// stream is complete.
		if terminalStatus(status) {
			return
		}
		select {
		case <-more:
		case <-r.Context().Done():
			return
		case <-s.ctx.Done():
			return
		}
	}
}
