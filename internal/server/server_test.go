package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakePipeline is a controllable RunFunc: each campaign emits a fault
// event per entry of faults, optionally blocking on gate between events so
// tests can observe mid-campaign streaming.
type fakePipeline struct {
	mu   sync.Mutex
	gate map[string]chan struct{} // workload -> step gate (nil = free-running)
}

func (p *fakePipeline) run(ctx context.Context, job Job, emit func(Event)) (any, error) {
	req := job.Request
	if req.Workload == "explode" {
		return nil, fmt.Errorf("synthetic failure")
	}
	if req.Workload == "panic" {
		panic("synthetic panic")
	}
	hit := false
	emit(Event{Type: "preprocess", Msg: "golden loaded", CacheHit: &hit})
	p.mu.Lock()
	gate := p.gate[req.Workload]
	p.mu.Unlock()
	// Batch requests fan the faults out per structure, tagging each event,
	// mirroring the real pipeline's interleaved batch log.
	structures := req.Structures
	if len(structures) == 0 {
		structures = []string{""}
	}
	for _, structure := range structures {
		for i := 0; i < req.Faults; i++ {
			if gate != nil {
				select {
				case <-gate:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			emit(Event{Type: "fault", Structure: structure, Index: i,
				Fault: fmt.Sprintf("%s-fault-%d", req.Workload, i), Outcome: "Masked"})
		}
	}
	if len(req.Structures) > 0 {
		emit(Event{Type: "batch", Msg: "batch done"})
	}
	return map[string]any{"workload": req.Workload, "injected": req.Faults}, nil
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() { hs.Close(); s.Close() })
	return s, hs
}

// The *At helpers take the endpoint tree ("/campaigns" or "/batches");
// the plain wrappers keep the single-campaign tests readable.
func submitAt(t *testing.T, base, tree string, req Request) string {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+tree, "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: status %d: %s", resp.StatusCode, raw)
	}
	var out struct{ ID string }
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.ID
}

func submit(t *testing.T, base string, req Request) string {
	t.Helper()
	return submitAt(t, base, "/campaigns", req)
}

func getStatusAt(t *testing.T, base, tree, id string) statusJSON {
	t.Helper()
	resp, err := http.Get(base + tree + "/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statusJSON
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func getStatus(t *testing.T, base, id string) statusJSON {
	t.Helper()
	return getStatusAt(t, base, "/campaigns", id)
}

// waitDoneAt polls until the record reaches any terminal status and
// returns it — callers assert which terminal state they expected, and an
// unexpected "cancelled" surfaces immediately instead of timing out.
func waitDoneAt(t *testing.T, base, tree, id string) statusJSON {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatusAt(t, base, tree, id)
		if terminalStatus(st.Status) {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("record %s did not finish", id)
	return statusJSON{}
}

func waitDone(t *testing.T, base, id string) statusJSON {
	t.Helper()
	return waitDoneAt(t, base, "/campaigns", id)
}

// streamEventsAt collects a record's full event stream (blocking until it
// finishes and the server closes the stream).
func streamEventsAt(t *testing.T, base, tree, id string) []Event {
	t.Helper()
	resp, err := http.Get(base + tree + "/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events content type = %q", ct)
	}
	var evs []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		evs = append(evs, ev)
	}
	return evs
}

func streamEvents(t *testing.T, base, id string) []Event {
	t.Helper()
	return streamEventsAt(t, base, "/campaigns", id)
}

func TestSubmitRunAndReport(t *testing.T) {
	p := &fakePipeline{}
	_, hs := newTestServer(t, Config{Run: p.run})

	id := submit(t, hs.URL, Request{Workload: "sha", Structure: "RF", Faults: 3})
	st := waitDone(t, hs.URL, id)
	if st.Status != StatusDone {
		t.Fatalf("status = %q, err = %q", st.Status, st.Error)
	}
	rep, ok := st.Report.(map[string]any)
	if !ok || rep["workload"] != "sha" {
		t.Fatalf("report = %#v", st.Report)
	}

	evs := streamEvents(t, hs.URL, id)
	types := make([]string, len(evs))
	for i, ev := range evs {
		types[i] = ev.Type
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d; stream must be dense and ordered", i, ev.Seq)
		}
	}
	want := []string{"queued", "started", "preprocess", "fault", "fault", "fault", "done"}
	if strings.Join(types, ",") != strings.Join(want, ",") {
		t.Fatalf("event types = %v, want %v", types, want)
	}
}

func TestFailureAndPanicAreIsolated(t *testing.T) {
	p := &fakePipeline{}
	_, hs := newTestServer(t, Config{Run: p.run})

	for _, wl := range []string{"explode", "panic"} {
		id := submit(t, hs.URL, Request{Workload: wl, Structure: "RF"})
		st := waitDone(t, hs.URL, id)
		if st.Status != StatusFailed || st.Error == "" {
			t.Fatalf("%s: status = %q err = %q, want failed with message", wl, st.Status, st.Error)
		}
		evs := streamEvents(t, hs.URL, id)
		if evs[len(evs)-1].Type != "failed" {
			t.Fatalf("%s: last event = %+v, want failed", wl, evs[len(evs)-1])
		}
	}

	// The pool survives: a healthy campaign still runs to completion.
	id := submit(t, hs.URL, Request{Workload: "ok", Structure: "RF", Faults: 1})
	if st := waitDone(t, hs.URL, id); st.Status != StatusDone {
		t.Fatalf("post-panic campaign: %q", st.Status)
	}
}

// TestConcurrentCampaignStreaming runs two gated campaigns at once and
// asserts (a) both streams deliver per-fault events while both campaigns
// are mid-flight, and (b) each stream only carries its own campaign's
// events — the isolation clause of the acceptance criteria.
func TestConcurrentCampaignStreaming(t *testing.T) {
	gateA := make(chan struct{})
	gateB := make(chan struct{})
	p := &fakePipeline{gate: map[string]chan struct{}{"alpha": gateA, "beta": gateB}}
	// Two shards, each with a worker, so both campaigns can run
	// concurrently regardless of the ids' shard hash... use one shard
	// with two workers to make concurrency certain.
	_, hs := newTestServer(t, Config{Run: p.run, Shards: 1, WorkersPerShard: 2})

	idA := submit(t, hs.URL, Request{Workload: "alpha", Structure: "RF", Faults: 2})
	idB := submit(t, hs.URL, Request{Workload: "beta", Structure: "SQ", Faults: 2})

	type streamResult struct {
		id  string
		evs []Event
	}
	results := make(chan streamResult, 2)
	for _, id := range []string{idA, idB} {
		go func(id string) {
			resp, err := http.Get(hs.URL + "/campaigns/" + id + "/events")
			if err != nil {
				t.Error(err)
				results <- streamResult{id: id}
				return
			}
			defer resp.Body.Close()
			var evs []Event
			sc := bufio.NewScanner(resp.Body)
			for sc.Scan() {
				var ev Event
				if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
					t.Error(err)
					break
				}
				evs = append(evs, ev)
			}
			results <- streamResult{id: id, evs: evs}
		}(id)
	}

	// Interleave: one fault from A while B is stalled, one from B while A
	// is stalled, then release the rest.
	gateA <- struct{}{}
	gateB <- struct{}{}
	gateA <- struct{}{}
	gateB <- struct{}{}

	byID := map[string][]Event{}
	for i := 0; i < 2; i++ {
		r := <-results
		byID[r.id] = r.evs
	}

	for id, wl := range map[string]string{idA: "alpha", idB: "beta"} {
		evs := byID[id]
		var faults int
		for _, ev := range evs {
			if ev.Type != "fault" {
				continue
			}
			faults++
			if !strings.HasPrefix(ev.Fault, wl+"-fault-") {
				t.Fatalf("campaign %s stream leaked foreign event %+v", id, ev)
			}
		}
		if faults != 2 {
			t.Fatalf("campaign %s stream carried %d fault events, want 2", id, faults)
		}
		if evs[len(evs)-1].Type != "done" {
			t.Fatalf("campaign %s stream ended with %+v", id, evs[len(evs)-1])
		}
	}
}

// TestEventStreamResume: ?from=N replays only the suffix.
func TestEventStreamResume(t *testing.T) {
	p := &fakePipeline{}
	_, hs := newTestServer(t, Config{Run: p.run})
	id := submit(t, hs.URL, Request{Workload: "sha", Structure: "RF", Faults: 3})
	waitDone(t, hs.URL, id)

	all := streamEvents(t, hs.URL, id)
	resp, err := http.Get(hs.URL + "/campaigns/" + id + "/events?from=4")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	lines := strings.Count(strings.TrimSpace(string(raw)), "\n") + 1
	if want := len(all) - 4; lines != want {
		t.Fatalf("resumed stream has %d events, want %d", lines, want)
	}
}

// TestBoundedQueueSheds: submissions past the per-shard bound are refused
// with 429 and leave no campaign record behind.
func TestBoundedQueueSheds(t *testing.T) {
	gate := make(chan struct{})
	p := &fakePipeline{gate: map[string]chan struct{}{"slow": gate}}
	s, hs := newTestServer(t, Config{Run: p.run, Shards: 1, WorkersPerShard: 1, QueueDepth: 2})
	defer close(gate)

	// One running (pulled off the queue) + two queued = at capacity.
	ids := []string{
		submit(t, hs.URL, Request{Workload: "slow", Structure: "RF", Faults: 1}),
	}
	waitRunning(t, hs.URL, ids[0])
	ids = append(ids,
		submit(t, hs.URL, Request{Workload: "slow", Structure: "RF", Faults: 1}),
		submit(t, hs.URL, Request{Workload: "slow", Structure: "RF", Faults: 1}),
	)

	body, _ := json.Marshal(Request{Workload: "slow", Structure: "RF", Faults: 1})
	resp, err := http.Post(hs.URL+"/campaigns", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overload submit: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	s.mu.Lock()
	n := len(s.campaigns)
	s.mu.Unlock()
	if n != len(ids) {
		t.Fatalf("%d campaign records after shed, want %d (rejected submission must leave no residue)", n, len(ids))
	}

	// Queue depth is observable on /statsz.
	var stats struct {
		QueueDepths []int `json:"queue_depths"`
	}
	sresp, err := http.Get(hs.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.QueueDepths) != 1 || stats.QueueDepths[0] != 2 {
		t.Fatalf("queue_depths = %v, want [2]", stats.QueueDepths)
	}
}

func waitRunning(t *testing.T, base, id string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if getStatus(t, base, id).Status == StatusRunning {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("campaign %s never started", id)
}

func TestValidationRejectsAtSubmit(t *testing.T) {
	p := &fakePipeline{}
	_, hs := newTestServer(t, Config{
		Run: p.run,
		Validate: func(r Request) error {
			if r.Workload == "" {
				return fmt.Errorf("workload required")
			}
			return nil
		},
	})
	body, _ := json.Marshal(Request{Structure: "RF"})
	resp, err := http.Post(hs.URL+"/campaigns", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid submit: status %d, want 400", resp.StatusCode)
	}

	// Unknown JSON fields are also rejected, not silently dropped.
	resp2, err := http.Post(hs.URL+"/campaigns", "application/json",
		strings.NewReader(`{"workload":"sha","structure":"RF","fautls":3}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown-field submit: status %d, want 400", resp2.StatusCode)
	}
}

func TestHealthzAndListAndNotFound(t *testing.T) {
	p := &fakePipeline{}
	_, hs := newTestServer(t, Config{Run: p.run, CacheStats: func() any { return map[string]int{"hits": 7} }})

	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		OK bool `json:"ok"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil || !health.OK {
		t.Fatalf("healthz: %v ok=%v", err, health.OK)
	}

	id1 := submit(t, hs.URL, Request{Workload: "a", Structure: "RF"})
	id2 := submit(t, hs.URL, Request{Workload: "b", Structure: "RF"})
	waitDone(t, hs.URL, id1)
	waitDone(t, hs.URL, id2)

	lresp, err := http.Get(hs.URL + "/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var list struct{ Campaigns []statusJSON }
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Campaigns) != 2 || list.Campaigns[0].ID != id2 {
		t.Fatalf("list = %+v, want 2 campaigns newest first", list.Campaigns)
	}

	nf, err := http.Get(hs.URL + "/campaigns/nope")
	if err != nil {
		t.Fatal(err)
	}
	defer nf.Body.Close()
	if nf.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown campaign: status %d, want 404", nf.StatusCode)
	}

	// statsz carries the injected cache stats.
	sresp, err := http.Get(hs.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats struct {
		Cache map[string]int `json:"cache"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Cache["hits"] != 7 {
		t.Fatalf("statsz cache = %v", stats.Cache)
	}
}

// TestFinishedCampaignEviction: a long-running daemon keeps at most
// RetainFinished finished campaigns; the oldest are evicted on submission
// while unfinished campaigns are never touched.
func TestFinishedCampaignEviction(t *testing.T) {
	p := &fakePipeline{}
	s, hs := newTestServer(t, Config{Run: p.run, Shards: 1, RetainFinished: 2})

	var ids []string
	for i := 0; i < 4; i++ {
		id := submit(t, hs.URL, Request{Workload: "ok", Structure: "RF", Faults: 1})
		waitDone(t, hs.URL, id)
		ids = append(ids, id)
	}
	// Evictions happen at submission time; this fifth campaign triggers
	// one that sees four finished records.
	last := submit(t, hs.URL, Request{Workload: "ok", Structure: "RF", Faults: 1})
	waitDone(t, hs.URL, last)

	s.mu.Lock()
	n := len(s.campaigns)
	s.mu.Unlock()
	if n > 3 { // 2 retained finished + the (possibly finished) last
		t.Fatalf("%d campaign records retained, want <= 3", n)
	}

	// The oldest campaigns are gone from the API; the newest survive.
	resp, err := http.Get(hs.URL + "/campaigns/" + ids[0])
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted campaign: status %d, want 404", resp.StatusCode)
	}
	if st := getStatus(t, hs.URL, last); st.Status != StatusDone {
		t.Fatalf("latest campaign lost: %+v", st)
	}
}

func TestConfigValidation(t *testing.T) {
	p := &fakePipeline{}
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted a Config without Run")
	}
	for name, cfg := range map[string]Config{
		"negative shards":  {Run: p.run, Shards: -1},
		"negative workers": {Run: p.run, WorkersPerShard: -2},
		"negative queue":   {Run: p.run, QueueDepth: -3},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: New accepted invalid config", name)
		}
	}
}

// waitStatus polls until the campaign reaches want.
func waitStatus(t *testing.T, base, id, want string) statusJSON {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, base, id)
		if st.Status == want {
			return st
		}
		if terminalStatus(st.Status) && st.Status != want {
			t.Fatalf("campaign %s reached terminal %q, want %q (err %q)", id, st.Status, want, st.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("campaign %s never reached %q", id, want)
	return statusJSON{}
}

func del(t *testing.T, base, id string) (int, map[string]string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, base+"/campaigns/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body := map[string]string{}
	json.NewDecoder(resp.Body).Decode(&body)
	return resp.StatusCode, body
}

// TestCancelQueuedRunningAndFinished is the DELETE differential: a queued
// campaign cancels instantly (200), a running one is cancelled through
// its context (200) and frees the worker shard for the next queued
// campaign, and a finished one refuses with 409. Attached streamers
// receive the terminal "cancelled" NDJSON event in every cancelled case.
func TestCancelQueuedRunningAndFinished(t *testing.T) {
	gate := make(chan struct{})
	p := &fakePipeline{gate: map[string]chan struct{}{"slow": gate}}
	_, hs := newTestServer(t, Config{Run: p.run, Shards: 1, WorkersPerShard: 1})

	running := submit(t, hs.URL, Request{Workload: "slow", Structure: "RF", Faults: 100})
	waitRunning(t, hs.URL, running)
	queued := submit(t, hs.URL, Request{Workload: "slow", Structure: "RF", Faults: 100})

	// Attach streamers before cancelling so the terminal event is pushed
	// to live clients.
	streams := make(chan []Event, 2)
	for _, id := range []string{running, queued} {
		go func(id string) { streams <- streamEvents(t, hs.URL, id) }(id)
	}
	time.Sleep(10 * time.Millisecond) // let the streamers attach

	// Queued: terminal immediately.
	if code, body := del(t, hs.URL, queued); code != http.StatusOK || body["status"] != StatusCancelled {
		t.Fatalf("DELETE queued: %d %v, want 200 cancelled", code, body)
	}
	if st := getStatus(t, hs.URL, queued); st.Status != StatusCancelled {
		t.Fatalf("queued campaign status = %q after DELETE", st.Status)
	}

	// Running: 200, then terminal once the worker observes the context.
	if code, body := del(t, hs.URL, running); code != http.StatusOK || body["status"] != "cancelling" {
		t.Fatalf("DELETE running: %d %v, want 200 cancelling", code, body)
	}
	waitStatus(t, hs.URL, running, StatusCancelled)

	// Both streams terminate with the cancelled event.
	for i := 0; i < 2; i++ {
		evs := <-streams
		if len(evs) == 0 || evs[len(evs)-1].Type != "cancelled" {
			t.Fatalf("stream ended without terminal cancelled event: %+v", evs)
		}
	}

	// The shard is free again: a fresh campaign runs to completion.
	free := submit(t, hs.URL, Request{Workload: "ok", Structure: "RF", Faults: 1})
	if st := waitDone(t, hs.URL, free); st.Status != StatusDone {
		t.Fatalf("post-cancel campaign: %q (worker shard not freed?)", st.Status)
	}

	// Finished: 409, status untouched.
	if code, _ := del(t, hs.URL, free); code != http.StatusConflict {
		t.Fatalf("DELETE finished: %d, want 409", code)
	}
	if st := getStatus(t, hs.URL, free); st.Status != StatusDone {
		t.Fatalf("finished campaign status mutated by DELETE: %q", st.Status)
	}
	// Already-cancelled: also 409 (terminal), and unknown ids 404.
	if code, _ := del(t, hs.URL, queued); code != http.StatusConflict {
		t.Fatalf("DELETE cancelled: want 409")
	}
	if code, _ := del(t, hs.URL, "nope"); code != http.StatusNotFound {
		t.Fatalf("DELETE unknown: want 404")
	}
}

// TestDeadlineMS: a per-request deadline bounds a stuck campaign, failing
// it with a deadline error while the shard moves on; negative deadlines
// are rejected at submission.
func TestDeadlineMS(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	p := &fakePipeline{gate: map[string]chan struct{}{"slow": gate}}
	_, hs := newTestServer(t, Config{Run: p.run, Shards: 1, WorkersPerShard: 1})

	id := submit(t, hs.URL, Request{Workload: "slow", Structure: "RF", Faults: 100, DeadlineMS: 30})
	st := waitDone(t, hs.URL, id)
	if st.Status != StatusFailed || !strings.Contains(st.Error, "deadline") {
		t.Fatalf("deadlined campaign: status %q err %q, want failed with deadline message", st.Status, st.Error)
	}

	// The shard survived the deadline.
	ok := submit(t, hs.URL, Request{Workload: "ok", Structure: "RF", Faults: 1})
	if st := waitDone(t, hs.URL, ok); st.Status != StatusDone {
		t.Fatalf("post-deadline campaign: %q", st.Status)
	}

	body, _ := json.Marshal(Request{Workload: "ok", Structure: "RF", DeadlineMS: -1})
	resp, err := http.Post(hs.URL+"/campaigns", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative deadline: status %d, want 400", resp.StatusCode)
	}
}

// TestBatchSubmitRunAndEvents: the /batches tree runs a multi-structure
// submission through the same machinery — status carries kind "batch",
// the report arrives, and the event stream interleaves structure-tagged
// fault events.
func TestBatchSubmitRunAndEvents(t *testing.T) {
	p := &fakePipeline{}
	_, hs := newTestServer(t, Config{Run: p.run})

	id := submitAt(t, hs.URL, "/batches", Request{
		Workload: "sha", Structures: []string{"RF", "SQ"}, Faults: 2})
	if !strings.HasPrefix(id, "b") {
		t.Fatalf("batch id = %q, want b-prefixed", id)
	}
	st := waitDoneAt(t, hs.URL, "/batches", id)
	if st.Status != StatusDone || st.Kind != KindBatch {
		t.Fatalf("status = %q kind = %q, want done/batch (err %q)", st.Status, st.Kind, st.Error)
	}
	if st.Report == nil {
		t.Fatal("finished batch has no report")
	}

	evs := streamEventsAt(t, hs.URL, "/batches", id)
	perStructure := map[string]int{}
	var batchEvent bool
	for _, ev := range evs {
		switch ev.Type {
		case "fault":
			perStructure[ev.Structure]++
		case "batch":
			batchEvent = true
		}
	}
	if perStructure["RF"] != 2 || perStructure["SQ"] != 2 {
		t.Fatalf("structure-tagged fault events = %v, want 2 per structure", perStructure)
	}
	if !batchEvent {
		t.Fatal("stream carried no batch summary event")
	}
}

// TestBatchAndCampaignTreesAreSeparate: a batch id is invisible under
// /campaigns (status, events, cancel, list) and vice versa.
func TestBatchAndCampaignTreesAreSeparate(t *testing.T) {
	p := &fakePipeline{}
	_, hs := newTestServer(t, Config{Run: p.run})

	bid := submitAt(t, hs.URL, "/batches", Request{Workload: "sha", Structures: []string{"RF"}, Faults: 1})
	cid := submit(t, hs.URL, Request{Workload: "sha", Structure: "RF", Faults: 1})
	waitDoneAt(t, hs.URL, "/batches", bid)
	waitDone(t, hs.URL, cid)

	for _, probe := range []string{
		"/campaigns/" + bid, "/campaigns/" + bid + "/events",
		"/batches/" + cid, "/batches/" + cid + "/events",
	} {
		resp, err := http.Get(hs.URL + probe)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s = %d, want 404 (kind separation)", probe, resp.StatusCode)
		}
	}

	var lists struct {
		Campaigns []statusJSON `json:"campaigns"`
		Batches   []statusJSON `json:"batches"`
	}
	for _, tree := range []string{"/campaigns", "/batches"} {
		resp, err := http.Get(hs.URL + tree)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&lists); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if len(lists.Campaigns) != 1 || lists.Campaigns[0].ID != cid {
		t.Fatalf("campaign list = %+v, want just %s", lists.Campaigns, cid)
	}
	if len(lists.Batches) != 1 || lists.Batches[0].ID != bid {
		t.Fatalf("batch list = %+v, want just %s", lists.Batches, bid)
	}
}

// TestBatchSubmitValidation: the structures list is required on /batches,
// forbidden on /campaigns, and exclusive with the single structure field.
func TestBatchSubmitValidation(t *testing.T) {
	p := &fakePipeline{}
	_, hs := newTestServer(t, Config{Run: p.run})

	post := func(tree string, req Request) int {
		t.Helper()
		body, _ := json.Marshal(req)
		resp, err := http.Post(hs.URL+tree, "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("/batches", Request{Workload: "sha"}); code != http.StatusBadRequest {
		t.Fatalf("batch without structures = %d, want 400", code)
	}
	if code := post("/batches", Request{Workload: "sha", Structure: "RF", Structures: []string{"RF"}}); code != http.StatusBadRequest {
		t.Fatalf("batch with both structure fields = %d, want 400", code)
	}
	if code := post("/campaigns", Request{Workload: "sha", Structures: []string{"RF"}}); code != http.StatusBadRequest {
		t.Fatalf("campaign with structures list = %d, want 400", code)
	}
}

// TestBatchCancelCancelsWholeBatch: one DELETE on a mid-flight batch
// stops every structure — the terminal status is "cancelled" and the
// stream ends with the cancelled event.
func TestBatchCancelCancelsWholeBatch(t *testing.T) {
	gate := make(chan struct{})
	p := &fakePipeline{gate: map[string]chan struct{}{"gated": gate}}
	_, hs := newTestServer(t, Config{Run: p.run})

	id := submitAt(t, hs.URL, "/batches", Request{
		Workload: "gated", Structures: []string{"RF", "SQ", "L1D"}, Faults: 100})
	gate <- struct{}{} // first fault of the first structure is in flight

	req, _ := http.NewRequest(http.MethodDelete, hs.URL+"/batches/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE batch = %d, want 200", resp.StatusCode)
	}

	st := waitDoneAt(t, hs.URL, "/batches", id)
	if st.Status != StatusCancelled {
		t.Fatalf("cancelled batch status = %q, want cancelled", st.Status)
	}
	evs := streamEventsAt(t, hs.URL, "/batches", id)
	if last := evs[len(evs)-1]; last.Type != "cancelled" {
		t.Fatalf("last event = %+v, want cancelled", last)
	}
}

// TestEventLogRingBuffer: the per-campaign log is capped — old events are
// dropped, sequence numbers stay dense and monotonic, the status reports
// the drop count, and a streamer resuming into the dropped range gets an
// explicit "truncated" marker instead of a silent skip.
func TestEventLogRingBuffer(t *testing.T) {
	p := &fakePipeline{}
	_, hs := newTestServer(t, Config{Run: p.run, MaxEventsPerCampaign: 16})

	// queued + started + preprocess + 100 faults + done ≫ 16.
	id := submit(t, hs.URL, Request{Workload: "big", Structure: "RF", Faults: 100})
	st := waitDone(t, hs.URL, id)
	if st.Status != StatusDone {
		t.Fatalf("status = %q err %q", st.Status, st.Error)
	}
	if st.Events != 104 {
		t.Fatalf("events total = %d, want 104 (dense numbering across drops)", st.Events)
	}
	if st.DroppedEvents == 0 || st.DroppedEvents >= st.Events {
		t.Fatalf("dropped_events = %d of %d, want 0 < dropped < total", st.DroppedEvents, st.Events)
	}

	// A full stream from 0 starts with the truncated marker naming the gap,
	// then the retained tail with monotonic seqs ending in "done".
	evs := streamEvents(t, hs.URL, id)
	if evs[0].Type != "truncated" || evs[0].Seq != 0 {
		t.Fatalf("first event = %+v, want truncated marker at seq 0", evs[0])
	}
	if !strings.Contains(evs[0].Msg, "dropped") {
		t.Fatalf("truncated marker msg = %q", evs[0].Msg)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("seqs not monotonic at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
	if last := evs[len(evs)-1]; last.Type != "done" || last.Seq != st.Events-1 {
		t.Fatalf("last event = %+v, want done at seq %d", last, st.Events-1)
	}

	// Resuming from a seq inside the retained window gets no marker.
	tail := evs[len(evs)-1].Seq
	resp, err := http.Get(hs.URL + "/campaigns/" + id + "/events?from=" + fmt.Sprint(tail))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if strings.Contains(string(raw), "truncated") {
		t.Fatalf("in-window resume produced a truncated marker: %s", raw)
	}
	// Resuming from beyond the end of a finished log yields nothing.
	resp2, err := http.Get(hs.URL + "/campaigns/" + id + "/events?from=" + fmt.Sprint(st.Events))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	raw2, _ := io.ReadAll(resp2.Body)
	if strings.TrimSpace(string(raw2)) != "" {
		t.Fatalf("past-the-end resume produced events: %s", raw2)
	}
}

// fakeRegistry is an in-memory Registry for exercising the durability
// paths without the store package (the server must stay pipeline- and
// storage-agnostic).
type fakeRegistry struct {
	mu   sync.Mutex
	recs map[string]Record
	puts int
}

func newFakeRegistry() *fakeRegistry {
	return &fakeRegistry{recs: make(map[string]Record)}
}

func (r *fakeRegistry) Put(rec Record) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recs[rec.ID] = rec
	r.puts++
	return nil
}

func (r *fakeRegistry) List() ([]Record, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Record, 0, len(r.recs))
	for _, rec := range r.recs {
		out = append(out, rec)
	}
	return out, nil
}

func (r *fakeRegistry) Delete(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.recs, id)
	return nil
}

func (r *fakeRegistry) get(id string) (Record, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rec, ok := r.recs[id]
	return rec, ok
}

// TestRegistryPersistsLifecycle: with a registry configured, a campaign's
// record is durable at every stage and ends terminal with the report
// JSON; evicted campaigns leave the registry too.
func TestRegistryPersistsLifecycle(t *testing.T) {
	reg := newFakeRegistry()
	p := &fakePipeline{}
	_, hs := newTestServer(t, Config{Run: p.run, Shards: 1, Registry: reg, RetainFinished: 2})

	id := submit(t, hs.URL, Request{Workload: "sha", Structure: "RF", Faults: 2})
	waitDone(t, hs.URL, id)
	rec, ok := reg.get(id)
	if !ok {
		t.Fatal("finished campaign missing from registry")
	}
	if rec.Status != StatusDone || rec.Kind != KindCampaign {
		t.Fatalf("record = %+v, want done campaign", rec)
	}
	var rep map[string]any
	if err := json.Unmarshal(rec.Report, &rep); err != nil || rep["workload"] != "sha" {
		t.Fatalf("persisted report = %s (%v)", rec.Report, err)
	}
	var req Request
	if err := json.Unmarshal(rec.Request, &req); err != nil || req.Workload != "sha" {
		t.Fatalf("persisted request = %s (%v)", rec.Request, err)
	}

	// Eviction drops registry records alongside memory.
	var last string
	for i := 0; i < 4; i++ {
		last = submit(t, hs.URL, Request{Workload: "ok", Structure: "RF", Faults: 1})
		waitDone(t, hs.URL, last)
	}
	if _, ok := reg.get(id); ok {
		t.Fatal("evicted campaign still in registry")
	}
	if _, ok := reg.get(last); !ok {
		t.Fatal("retained campaign missing from registry")
	}
}

// TestRegistryRestore: a new server over an existing registry restores
// terminal records (report intact, queryable, with a "restored" event)
// and re-enqueues interrupted ones as queued with their checkpointed
// outcomes — the resumed run sees them in Job.Resume. Id minting
// continues after the restored maximum.
func TestRegistryRestore(t *testing.T) {
	reg := newFakeRegistry()
	doneReq, _ := json.Marshal(Request{Workload: "sha", Structure: "RF", Faults: 2})
	reg.Put(Record{
		ID: "c000003", Kind: KindCampaign, Status: StatusDone,
		Request: doneReq, Report: []byte(`{"workload":"sha","injected":2}`),
		Submitted: time.Now().Add(-time.Hour),
	})
	runReq, _ := json.Marshal(Request{Workload: "resume-me", Structure: "RF", Faults: 3})
	reg.Put(Record{
		ID: "c000007", Kind: KindCampaign, Status: StatusRunning,
		Request: runReq, Submitted: time.Now().Add(-time.Minute),
		Outcomes: map[int]string{0: "Masked", 1: "SDC"},
	})

	var gotResume map[int]string
	var resumeMu sync.Mutex
	p := &fakePipeline{}
	run := func(ctx context.Context, job Job, emit func(Event)) (any, error) {
		if job.Request.Workload == "resume-me" {
			resumeMu.Lock()
			gotResume = job.Resume
			resumeMu.Unlock()
		}
		return p.run(ctx, job, emit)
	}
	_, hs := newTestServer(t, Config{Run: run, Shards: 1, Registry: reg})

	// The terminal record is queryable with its report and restored marker.
	st := getStatus(t, hs.URL, "c000003")
	if st.Status != StatusDone {
		t.Fatalf("restored campaign status = %q", st.Status)
	}
	rep, ok := st.Report.(map[string]any)
	if !ok || rep["workload"] != "sha" {
		t.Fatalf("restored report = %#v", st.Report)
	}
	evs := streamEvents(t, hs.URL, "c000003")
	if len(evs) != 1 || evs[0].Type != "restored" {
		t.Fatalf("restored events = %+v, want single restored marker", evs)
	}

	// The interrupted record re-runs and completes; its rerun saw the
	// checkpoint.
	st = waitDone(t, hs.URL, "c000007")
	if st.Status != StatusDone {
		t.Fatalf("resumed campaign: status %q err %q", st.Status, st.Error)
	}
	resumeMu.Lock()
	resume := gotResume
	resumeMu.Unlock()
	if resume[0] != "Masked" || resume[1] != "SDC" {
		t.Fatalf("Job.Resume = %v, want the checkpointed outcomes", resume)
	}
	evs = streamEvents(t, hs.URL, "c000007")
	if evs[0].Type != "resumed" {
		t.Fatalf("resumed campaign's first event = %+v", evs[0])
	}

	// Fresh ids continue past the restored maximum.
	id := submit(t, hs.URL, Request{Workload: "ok", Structure: "RF", Faults: 1})
	if id != "c000008" {
		t.Fatalf("next id = %q, want c000008 (minting continues after restore)", id)
	}
}

// TestCheckpointPersistsOutcomes: Job.Checkpoint merges outcomes into the
// record and persists them promptly (first write immediate), so a crash
// right after leaves a resumable record.
func TestCheckpointPersistsOutcomes(t *testing.T) {
	reg := newFakeRegistry()
	gate := make(chan struct{})
	ckpt := make(chan struct{}, 1)
	run := func(ctx context.Context, job Job, emit func(Event)) (any, error) {
		job.Checkpoint(map[int]string{0: "Masked"})
		select {
		case ckpt <- struct{}{}:
		default:
		}
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		job.Checkpoint(map[int]string{1: "SDC"})
		return map[string]any{"ok": true}, nil
	}
	_, hs := newTestServer(t, Config{Run: run, Shards: 1, Registry: reg})

	id := submit(t, hs.URL, Request{Workload: "sha", Structure: "RF", Faults: 2})
	<-ckpt
	rec, ok := reg.get(id)
	if !ok || rec.Outcomes[0] != "Masked" {
		t.Fatalf("mid-run record = %+v, want checkpointed outcome 0", rec)
	}
	if rec.Status != StatusRunning {
		t.Fatalf("mid-run status = %q, want running", rec.Status)
	}
	if st := getStatus(t, hs.URL, id); st.Checkpointed != 1 {
		t.Fatalf("status checkpointed = %d, want 1", st.Checkpointed)
	}

	close(gate)
	waitDone(t, hs.URL, id)
	rec, _ = reg.get(id)
	if rec.Status != StatusDone || rec.Outcomes[1] != "SDC" {
		t.Fatalf("final record = %+v, want done with both outcomes", rec)
	}
}

// TestShutdownLeavesResumableRecord: Close during a run with a registry
// configured must NOT mark the campaign failed — the durable record stays
// "running" with its checkpoint so the next incarnation resumes it. The
// same shutdown without a registry keeps the old failed behavior.
func TestShutdownLeavesResumableRecord(t *testing.T) {
	reg := newFakeRegistry()
	started := make(chan struct{}, 1)
	run := func(ctx context.Context, job Job, emit func(Event)) (any, error) {
		job.Checkpoint(map[int]string{0: "Masked"})
		select {
		case started <- struct{}{}:
		default:
		}
		<-ctx.Done()
		return nil, ctx.Err()
	}
	s, err := New(Config{Run: run, Shards: 1, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	id, err := s.Submit(Request{Workload: "sha", Structure: "RF", Faults: 1})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	s.Close()

	rec, ok := reg.get(id)
	if !ok {
		t.Fatal("record missing after shutdown")
	}
	if rec.Status != StatusRunning {
		t.Fatalf("shutdown record status = %q, want running (resumable)", rec.Status)
	}
	if rec.Outcomes[0] != "Masked" {
		t.Fatalf("shutdown record lost its checkpoint: %+v", rec.Outcomes)
	}

	// A second server over the same registry resumes and finishes it.
	done := func(ctx context.Context, job Job, emit func(Event)) (any, error) {
		if job.Resume[0] != "Masked" {
			t.Errorf("resumed job lost checkpoint: %v", job.Resume)
		}
		return map[string]any{"resumed": true}, nil
	}
	s2, err := New(Config{Run: done, Shards: 1, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		rec, _ = reg.get(id)
		if rec.Status == StatusDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("resumed campaign never finished: %+v", rec)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
