package experiments

import (
	"context"
	"fmt"
	"time"

	"merlin"

	"merlin/internal/cpu"
	"merlin/internal/lifetime"
	"merlin/internal/workloads"
)

// SpeedupCell is one bar of Figs 8-10/12: the fault-list reduction achieved
// for one workload on one structure size.
type SpeedupCell struct {
	Workload string
	Size     string
	Initial  int
	PostACE  int
	Injected int
	ACE      float64 // speedup from the ACE-like step alone
	Final    float64 // total speedup after grouping
}

// SpeedupResult is one speedup figure.
type SpeedupResult struct {
	Figure string
	Title  string
	Cells  []SpeedupCell
}

// Render formats the figure as a table with per-size averages, matching
// the paper's bar-chart content.
func (r *SpeedupResult) Render() string {
	t := &table{header: []string{"size", "workload", "initial", "postACE", "injected", "ACE-like x", "final x"}}
	bySize := map[string][]SpeedupCell{}
	var order []string
	for _, c := range r.Cells {
		if len(bySize[c.Size]) == 0 {
			order = append(order, c.Size)
		}
		bySize[c.Size] = append(bySize[c.Size], c)
	}
	for _, size := range order {
		var aces, finals []float64
		for _, c := range bySize[size] {
			t.add(c.Size, c.Workload, fmt.Sprint(c.Initial), fmt.Sprint(c.PostACE),
				fmt.Sprint(c.Injected), f1(c.ACE), f1(c.Final))
			aces = append(aces, c.ACE)
			finals = append(finals, c.Final)
		}
		t.add(size, "average", "", "", "", f1(mean(aces)), f1(mean(finals)))
	}
	return fmt.Sprintf("%s: %s\n%s", r.Figure, r.Title, t)
}

// reduceOnly runs phases 1-2 for one campaign (speedups need no
// injection), via a Session so the sweep is cancellable between phases.
func reduceOnly(ctx context.Context, o Options, wl string, z StructSize, faults int) (SpeedupCell, error) {
	s, err := merlin.Start(ctx, wl, o.sessionOptions(z.Configure(defaultCPU()), z.Structure, faults)...)
	if err != nil {
		return SpeedupCell{}, err
	}
	if err := s.Preprocess(ctx); err != nil {
		return SpeedupCell{}, err
	}
	red, err := s.Reduce()
	if err != nil {
		return SpeedupCell{}, err
	}
	return SpeedupCell{
		Workload: wl,
		Size:     z.Label,
		Initial:  len(s.Artifacts().Faults),
		PostACE:  len(red.HitFaults),
		Injected: red.ReducedCount(),
		ACE:      red.ACESpeedup(),
		Final:    red.FinalSpeedup(),
	}, nil
}

func (o Options) workloadSet(suite string) []string {
	if len(o.Workloads) > 0 {
		return o.Workloads
	}
	var names []string
	var set []*workloads.Workload
	if suite == "spec" {
		set = workloads.SPEC()
	} else {
		set = workloads.MiBench()
	}
	for _, w := range set {
		names = append(names, w.Name)
	}
	return names
}

func (o Options) speedupFigure(ctx context.Context, fig, title string, sizes []StructSize, suite string) (*SpeedupResult, error) {
	o = o.withDefaults()
	res := &SpeedupResult{Figure: fig, Title: title}
	for _, z := range o.filterSizes(sizes) {
		for _, wl := range o.workloadSet(suite) {
			cell, err := reduceOnly(ctx, o, wl, z, o.Faults)
			if err != nil {
				return nil, fmt.Errorf("%s %s/%s: %w", fig, wl, z.Label, err)
			}
			o.logf("%s %-14s %-10s ACE %6.1fx final %7.1fx", fig, wl, z.Label, cell.ACE, cell.Final)
			res.Cells = append(res.Cells, cell)
		}
	}
	return res, nil
}

// Fig8 reproduces the register-file speedups (256/128/64 regs, MiBench).
func Fig8(ctx context.Context, o Options) (*SpeedupResult, error) {
	return o.speedupFigure(ctx, "Fig 8", "MeRLiN speedup, physical register file, 10 MiBench",
		sizesFor(lifetime.StructRF), "mibench")
}

// Fig9 reproduces the store-queue speedups (64/32/16 entries, MiBench).
func Fig9(ctx context.Context, o Options) (*SpeedupResult, error) {
	return o.speedupFigure(ctx, "Fig 9", "MeRLiN speedup, store queue, 10 MiBench",
		sizesFor(lifetime.StructSQ), "mibench")
}

// Fig10 reproduces the L1 data cache speedups (64/32/16KB, MiBench).
func Fig10(ctx context.Context, o Options) (*SpeedupResult, error) {
	return o.speedupFigure(ctx, "Fig 10", "MeRLiN speedup, L1 data cache, 10 MiBench",
		sizesFor(lifetime.StructL1D), "mibench")
}

// Fig12 reproduces the SPEC speedups on the 128-reg / 16-entry / 32KB
// configuration, for all three structures.
func Fig12(ctx context.Context, o Options) (*SpeedupResult, error) {
	o = o.withDefaults()
	res := &SpeedupResult{Figure: "Fig 12", Title: "MeRLiN speedup, RF/SQ/L1D, 10 SPEC (128regs/16entries/32KB)"}
	targets := o.filterSizes([]StructSize{
		{lifetime.StructRF, "RF", nil},
		{lifetime.StructSQ, "SQ", nil},
		{lifetime.StructL1D, "L1D", nil},
	})
	for _, wl := range o.workloadSet("spec") {
		for _, z := range targets {
			s, err := merlin.Start(ctx, wl, o.sessionOptions(specConfig(), z.Structure, o.Faults)...)
			if err == nil {
				err = s.Preprocess(ctx)
			}
			if err != nil {
				return nil, fmt.Errorf("Fig 12 %s/%s: %w", wl, z.Label, err)
			}
			red, err := s.Reduce()
			if err != nil {
				return nil, fmt.Errorf("Fig 12 %s/%s: %w", wl, z.Label, err)
			}
			o.logf("Fig 12 %-12s %-4s ACE %6.1fx final %7.1fx", wl, z.Label, red.ACESpeedup(), red.FinalSpeedup())
			res.Cells = append(res.Cells, SpeedupCell{
				Workload: wl, Size: z.Label,
				Initial: len(s.Artifacts().Faults), PostACE: len(red.HitFaults),
				Injected: red.ReducedCount(),
				ACE:      red.ACESpeedup(), Final: red.FinalSpeedup(),
			})
		}
	}
	return res, nil
}

// ScalingRow is one bar pair of Fig 13.
type ScalingRow struct {
	Size                string
	BaseACE, BaseFinal  float64
	BigACE, BigFinal    float64
	SpeedupScale        float64 // BigFinal / BaseFinal
	InjectedScale       float64 // how many more faults MeRLiN injects
	BaseFaults, BigList int
}

// ScalingResult is Fig 13: how speedup scales with a larger initial list.
type ScalingResult struct {
	Rows       []ScalingRow
	AvgScaleUp float64
	AvgInject  float64
}

// Render formats Fig 13.
func (r *ScalingResult) Render() string {
	t := &table{header: []string{"config", "F", "final x", "10F", "final x", "speedup scale", "injected scale"}}
	for _, row := range r.Rows {
		t.add(row.Size, fmt.Sprint(row.BaseFaults), f1(row.BaseFinal),
			fmt.Sprint(row.BigList), f1(row.BigFinal), f2(row.SpeedupScale), f2(row.InjectedScale))
	}
	return fmt.Sprintf("Fig 13: speedup scaling with initial list size (10 MiBench avg)\n%s"+
		"average speedup scale %.2fx (paper: 3.46x), injected scale %.2fx (paper: 2.89x)\n",
		t, r.AvgScaleUp, r.AvgInject)
}

// Fig13 reproduces the scaling study: the same campaigns with a
// ScaleFactor-times larger initial fault list.
func Fig13(ctx context.Context, o Options) (*ScalingResult, error) {
	o = o.withDefaults()
	res := &ScalingResult{}
	var scales, injects []float64
	for _, z := range o.filterSizes(allSizes()) {
		var baseACE, baseFin, bigACE, bigFin []float64
		var baseInj, bigInj int
		for _, wl := range o.workloadSet("mibench") {
			base, err := reduceOnly(ctx, o, wl, z, o.Faults)
			if err != nil {
				return nil, err
			}
			big, err := reduceOnly(ctx, o, wl, z, o.Faults*o.ScaleFactor)
			if err != nil {
				return nil, err
			}
			baseACE = append(baseACE, base.ACE)
			baseFin = append(baseFin, base.Final)
			bigACE = append(bigACE, big.ACE)
			bigFin = append(bigFin, big.Final)
			baseInj += base.Injected
			bigInj += big.Injected
		}
		row := ScalingRow{
			Size:       z.Label,
			BaseACE:    mean(baseACE),
			BaseFinal:  mean(baseFin),
			BigACE:     mean(bigACE),
			BigFinal:   mean(bigFin),
			BaseFaults: o.Faults,
			BigList:    o.Faults * o.ScaleFactor,
		}
		row.SpeedupScale = row.BigFinal / row.BaseFinal
		row.InjectedScale = float64(bigInj) / float64(baseInj)
		o.logf("Fig 13 %-10s final %6.1fx -> %7.1fx (scale %.2f)", z.Label, row.BaseFinal, row.BigFinal, row.SpeedupScale)
		res.Rows = append(res.Rows, row)
		scales = append(scales, row.SpeedupScale)
		injects = append(injects, row.InjectedScale)
	}
	res.AvgScaleUp = mean(scales)
	res.AvgInject = mean(injects)
	return res, nil
}

// Fig11Result is the estimation-time comparison.
type Fig11Result struct {
	Rows []Fig11Row
}

// Fig11Row aggregates one structure's campaigns across all sizes and
// MiBench workloads: serial injection time of the comprehensive baseline
// vs MeRLiN, extrapolated from measured per-injection cost.
type Fig11Row struct {
	Structure       string
	BaselineRuns    int
	MerlinRuns      int
	SecPerRun       float64
	BaselineSeconds float64
	MerlinSeconds   float64
}

// Render formats Fig 11 in the paper's "months" unit.
func (r *Fig11Result) Render() string {
	t := &table{header: []string{"structure", "baseline runs", "merlin runs", "s/run", "baseline", "merlin"}}
	var bTot, mTot float64
	for _, row := range r.Rows {
		t.add(row.Structure, fmt.Sprint(row.BaselineRuns), fmt.Sprint(row.MerlinRuns),
			fmt.Sprintf("%.4f", row.SecPerRun),
			fmtDur(row.BaselineSeconds), fmtDur(row.MerlinSeconds))
		bTot += row.BaselineSeconds
		mTot += row.MerlinSeconds
	}
	t.add("total", "", "", "", fmtDur(bTot), fmtDur(mTot))
	return "Fig 11: serial estimation time, comprehensive baseline vs MeRLiN\n" + t.String() +
		fmt.Sprintf("(paper, at 60K faults x full Gem5 runs: 40.7/77.1/82.1 months baseline vs 0.65/0.49/1.28 MeRLiN)\n")
}

func fmtDur(sec float64) string {
	d := time.Duration(sec * float64(time.Second))
	switch {
	case d > 48*time.Hour:
		return fmt.Sprintf("%.1fd", sec/86400)
	case d > 2*time.Hour:
		return fmt.Sprintf("%.1fh", sec/3600)
	case d > 2*time.Minute:
		return fmt.Sprintf("%.1fm", sec/60)
	default:
		return fmt.Sprintf("%.1fs", sec)
	}
}

// Fig11 measures per-injection cost on a sample and extrapolates the
// serial wall-clock of baseline vs MeRLiN campaigns over all MiBench
// workloads and sizes of each structure.
func Fig11(ctx context.Context, o Options) (*Fig11Result, error) {
	o = o.withDefaults()
	res := &Fig11Result{}
	for _, s := range []lifetime.StructureID{lifetime.StructRF, lifetime.StructSQ, lifetime.StructL1D} {
		if !o.wantStructure(s) {
			continue
		}
		row := Fig11Row{Structure: s.String()}
		var secSamples []float64
		for _, z := range sizesFor(s) {
			for _, wl := range o.workloadSet("mibench") {
				cell, err := reduceOnly(ctx, o, wl, z, o.Faults)
				if err != nil {
					return nil, err
				}
				row.BaselineRuns += cell.Initial
				row.MerlinRuns += cell.Injected
			}
		}
		// Measure injection cost on one representative campaign.
		sess, err := merlin.Start(ctx, o.workloadSet("mibench")[0],
			o.sessionOptions(sizesFor(s)[1].Configure(defaultCPU()), s, 60)...)
		if err != nil {
			return nil, err
		}
		br, err := sess.Baseline(ctx)
		if err != nil {
			return nil, err
		}
		secSamples = append(secSamples, br.Serial.Seconds()/float64(br.Faults))
		row.SecPerRun = mean(secSamples)
		row.BaselineSeconds = row.SecPerRun * float64(row.BaselineRuns)
		row.MerlinSeconds = row.SecPerRun * float64(row.MerlinRuns)
		o.logf("Fig 11 %-4s: %d vs %d runs at %.4fs", row.Structure, row.BaselineRuns, row.MerlinRuns, row.SecPerRun)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// defaultCPU returns the Table 1 baseline configuration.
func defaultCPU() cpu.Config { return cpu.DefaultConfig() }
