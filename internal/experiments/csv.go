package experiments

import (
	"fmt"
	"strings"

	"merlin/internal/campaign"
)

// CSV renders the speedup cells as comma-separated values for plotting.
func (r *SpeedupResult) CSV() string {
	var b strings.Builder
	b.WriteString("size,workload,initial,post_ace,injected,ace_speedup,final_speedup\n")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%s,%s,%d,%d,%d,%.3f,%.3f\n",
			c.Size, c.Workload, c.Initial, c.PostACE, c.Injected, c.ACE, c.Final)
	}
	return b.String()
}

// CSV renders every accuracy campaign as comma-separated values: one row
// per (workload, size) with the ground-truth and extrapolated class
// shares, homogeneity and injection counts.
func (r *AccuracyResult) CSV() string {
	var b strings.Builder
	b.WriteString("size,workload,structure,initial,ace_masked,post_ace,merlin_injected," +
		"homog_fine,homog_coarse,perfect_share")
	for _, m := range []string{"full", "merlin", "relyzer"} {
		for o := campaign.Outcome(0); o < campaign.Unknown; o++ {
			fmt.Fprintf(&b, ",%s_%s", m, strings.ToLower(o.String()))
		}
	}
	b.WriteString(",baseline_fit,merlin_fit,acelike_fit\n")
	for _, c := range r.Campaigns {
		fmt.Fprintf(&b, "%s,%s,%s,%d,%d,%d,%d,%.4f,%.4f,%.4f",
			c.Size, c.Workload, c.Struct, c.InitialFaults, c.ACEMasked, c.PostACE,
			c.MerlinInjected, c.Homog.Fine, c.Homog.Coarse, c.Homog.PerfectShare)
		for _, d := range []campaign.Dist{c.FullPostACE, c.MerlinPostACE, c.RelyzerPostACE} {
			for o := campaign.Outcome(0); o < campaign.Unknown; o++ {
				fmt.Fprintf(&b, ",%.5f", d.Share(o))
			}
		}
		fmt.Fprintf(&b, ",%.4f,%.4f,%.4f\n", c.BaselineFIT, c.MerlinFIT, c.ACELikeFIT)
	}
	return b.String()
}

// CSV renders the scaling study rows.
func (r *ScalingResult) CSV() string {
	var b strings.Builder
	b.WriteString("size,base_faults,base_ace,base_final,big_faults,big_ace,big_final,speedup_scale,injected_scale\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%s,%d,%.3f,%.3f,%d,%.3f,%.3f,%.3f,%.3f\n",
			row.Size, row.BaseFaults, row.BaseACE, row.BaseFinal,
			row.BigList, row.BigACE, row.BigFinal, row.SpeedupScale, row.InjectedScale)
	}
	return b.String()
}
