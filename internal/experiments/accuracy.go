package experiments

import (
	"context"
	"fmt"

	"merlin"

	"merlin/internal/campaign"
	"merlin/internal/lifetime"
	reduction "merlin/internal/merlin"
	"merlin/internal/relyzer"
	"merlin/internal/stats"
)

// AccuracyCampaign holds everything one (workload, structure-size)
// campaign contributes to Figs 6, 7, 14, 15, 16 and 17: the full post-ACE
// injection ground truth plus the MeRLiN and Relyzer-heuristic
// reductions evaluated on it.
type AccuracyCampaign struct {
	Workload string
	Size     string
	Struct   lifetime.StructureID

	InitialFaults int
	ACEMasked     int
	PostACE       int

	// Ground truth: every post-ACE fault injected.
	FullPostACE campaign.Dist
	// MeRLiN: representatives only, extrapolated.
	MerlinPostACE  campaign.Dist
	MerlinInjected int
	Homog          reduction.HomogeneityReport

	// Full-list (Fig 15) distributions: ACE-pruned faults count as
	// Masked (their soundness is verified by injection elsewhere),
	// unless Options.FullBaseline re-injects them.
	BaselineFull campaign.Dist
	MerlinFull   campaign.Dist

	// FIT accounting (Fig 16).
	StructBits  int
	BaselineFIT float64
	MerlinFIT   float64
	ACELikeFIT  float64

	// Relyzer control-equivalence heuristic (Fig 17).
	RelyzerPostACE      campaign.Dist
	RelyzerInjected     int
	RelyzerLargeGroups  int
	RelyzerSinglePilots int
	MerlinLargeGroups   int
	MerlinSinglePilots  int

	// Theoretical analysis inputs (§4.4.5).
	GroupSizes     []int
	GroupNonMasked []int
}

// runAccuracy executes one campaign: golden+trace, reduce, inject the whole
// post-ACE list once, and evaluate every method against it.
func runAccuracy(ctx context.Context, o Options, wl string, z StructSize) (*AccuracyCampaign, error) {
	s, err := merlin.Start(ctx, wl, o.sessionOptions(z.Configure(defaultCPU()), z.Structure, o.Faults)...)
	if err != nil {
		return nil, err
	}
	if err := s.Preprocess(ctx); err != nil {
		return nil, err
	}
	red, err := s.Reduce()
	if err != nil {
		return nil, err
	}
	a := s.Artifacts()

	// Ground truth: inject every fault that hit a vulnerable interval.
	full := make([]merlin.Fault, len(red.HitFaults))
	for i, fi := range red.HitFaults {
		full[i] = a.Faults[fi]
	}
	fullRes, err := a.Runner.RunAllWith(ctx, o.Strategy, full, &a.Golden.Result, 0)
	if err != nil {
		return nil, err
	}

	// Outcomes indexed by the initial fault list.
	outcomes := make([]campaign.Outcome, len(a.Faults))
	for i, fi := range red.HitFaults {
		outcomes[fi] = fullRes.Outcomes[i]
	}

	ac := &AccuracyCampaign{
		Workload:      wl,
		Size:          z.Label,
		Struct:        z.Structure,
		InitialFaults: len(a.Faults),
		ACEMasked:     red.ACEMasked,
		PostACE:       len(red.HitFaults),
		FullPostACE:   fullRes.Dist,
	}

	// MeRLiN's view: representatives' outcomes extrapolated.
	repOutcomes := make([]campaign.Outcome, 0, red.ReducedCount())
	for _, g := range red.Groups {
		for _, rep := range g.Reps {
			repOutcomes = append(repOutcomes, outcomes[rep])
		}
	}
	ac.MerlinPostACE = red.PostACEExtrapolate(repOutcomes)
	ac.MerlinInjected = red.ReducedCount()
	ac.Homog = red.Homogeneity(outcomes)

	// Full-list distributions (Fig 15): pruned faults are Masked.
	if o.FullBaseline {
		pruned := make([]merlin.Fault, 0, red.ACEMasked)
		for i, iv := range red.IntervalOf {
			if iv < 0 {
				pruned = append(pruned, a.Faults[i])
			}
		}
		prunedRes, err := a.Runner.RunAllWith(ctx, o.Strategy, pruned, &a.Golden.Result, 0)
		if err != nil {
			return nil, err
		}
		ac.BaselineFull = fullRes.Dist
		for _, oc := range prunedRes.Outcomes {
			ac.BaselineFull.Add(oc)
		}
	} else {
		ac.BaselineFull = fullRes.Dist
		ac.BaselineFull.AddN(campaign.Masked, red.ACEMasked)
	}
	ac.MerlinFull = red.Extrapolate(repOutcomes)

	core := a.Runner.NewCore()
	ac.StructBits = core.StructureEntries(z.Structure) * core.StructureEntryBits(z.Structure)
	ac.BaselineFIT = ac.BaselineFull.FIT(ac.StructBits, merlin.RawFITPerBit)
	ac.MerlinFIT = ac.MerlinFull.FIT(ac.StructBits, merlin.RawFITPerBit)
	ac.ACELikeFIT = a.Analysis.AVF() * merlin.RawFITPerBit * float64(ac.StructBits)

	// Relyzer heuristic on the identical post-ACE list.
	rel := relyzer.Reduce(a.Analysis, a.Faults, a.Golden.Tracer.Branches, relyzer.DefaultDepth, o.Seed)
	relOutcomes := make([]campaign.Outcome, 0, rel.ReducedCount())
	for _, g := range rel.Groups {
		for _, rep := range g.Reps {
			relOutcomes = append(relOutcomes, outcomes[rep])
		}
	}
	ac.RelyzerPostACE = rel.PostACEExtrapolate(relOutcomes)
	ac.RelyzerInjected = rel.ReducedCount()
	ac.RelyzerLargeGroups, ac.RelyzerSinglePilots = relyzer.SinglePilotLargeGroups(rel, 20)
	ac.MerlinLargeGroups, ac.MerlinSinglePilots = relyzer.SinglePilotLargeGroups(red, 20)

	// Group statistics for the theoretical analysis.
	for _, g := range red.Groups {
		nm := 0
		for _, fi := range g.Members {
			if outcomes[fi] != campaign.Masked {
				nm++
			}
		}
		ac.GroupSizes = append(ac.GroupSizes, len(g.Members))
		ac.GroupNonMasked = append(ac.GroupNonMasked, nm)
	}
	return ac, nil
}

// AccuracyResult holds all accuracy campaigns plus the figure renderers.
type AccuracyResult struct {
	Faults    int
	Campaigns []*AccuracyCampaign
}

// RunAccuracy executes the accuracy campaigns: every MiBench workload on
// every structure size, each with a full post-ACE injection. This is the
// heavyweight experiment; Figs 6, 7, 14, 15, 16, 17 and the §4.4.5 report
// all render from its result.
func RunAccuracy(ctx context.Context, o Options) (*AccuracyResult, error) {
	o = o.withDefaults()
	res := &AccuracyResult{Faults: o.Faults}
	for _, z := range o.filterSizes(allSizes()) {
		for _, wl := range o.workloadSet("mibench") {
			ac, err := runAccuracy(ctx, o, wl, z)
			if err != nil {
				return nil, fmt.Errorf("accuracy %s/%s: %w", wl, z.Label, err)
			}
			o.logf("accuracy %-14s %-10s postACE %4d -> %3d injected, homog %.3f/%.3f, worst diff %.2fpp",
				wl, z.Label, ac.PostACE, ac.MerlinInjected, ac.Homog.Fine, ac.Homog.Coarse,
				inaccuracyMax(ac.MerlinPostACE, ac.FullPostACE))
			res.Campaigns = append(res.Campaigns, ac)
		}
	}
	return res, nil
}

func (r *AccuracyResult) bySize() (order []string, m map[string][]*AccuracyCampaign) {
	m = map[string][]*AccuracyCampaign{}
	for _, c := range r.Campaigns {
		if len(m[c.Size]) == 0 {
			order = append(order, c.Size)
		}
		m[c.Size] = append(m[c.Size], c)
	}
	return order, m
}

// RenderFig6 formats the fine-grained homogeneity figure.
func (r *AccuracyResult) RenderFig6() string {
	t := &table{header: []string{"size", "workload", "groups", "avg size", "homogeneity (6-class)"}}
	order, m := r.bySize()
	for _, size := range order {
		var hs []float64
		for _, c := range m[size] {
			t.add(size, c.Workload, fmt.Sprint(c.Homog.Groups), f1(c.Homog.AvgGroupSize), f3(c.Homog.Fine))
			hs = append(hs, c.Homog.Fine)
		}
		t.add(size, "average", "", "", f3(mean(hs)))
	}
	return "Fig 6: fine-grained homogeneity (paper averages: RF 0.94, SQ 0.98, L1D 0.92)\n" + t.String()
}

// RenderFig7 formats the coarse homogeneity / perfect-group figure.
func (r *AccuracyResult) RenderFig7() string {
	t := &table{header: []string{"size", "coarse homogeneity", "% groups perfect"}}
	order, m := r.bySize()
	for _, size := range order {
		var hs, ps []float64
		for _, c := range m[size] {
			hs = append(hs, c.Homog.Coarse)
			ps = append(ps, c.Homog.PerfectShare)
		}
		t.add(size, f3(mean(hs)), pc(mean(ps)))
	}
	return "Fig 7: coarse-grained homogeneity (paper: 0.93-0.98, 88-92% perfect groups)\n" + t.String()
}

// RenderFig14 formats the post-ACE accuracy comparison.
func (r *AccuracyResult) RenderFig14() string {
	s := "Fig 14: classification on the post-ACE-like fault list, full injection vs MeRLiN\n"
	order, m := r.bySize()
	for _, size := range order {
		var full, mer campaign.Dist
		for _, c := range m[size] {
			for o := campaign.Outcome(0); o < campaign.NumOutcomes; o++ {
				full.AddN(o, c.FullPostACE[o])
				mer.AddN(o, c.MerlinPostACE[o])
			}
		}
		t := &table{header: append([]string{size}, classHeaders...)}
		t.add(append([]string{"full post-ACE"}, distRow(full)...)...)
		t.add(append([]string{"MeRLiN"}, distRow(mer)...)...)
		s += t.String()
	}
	return s
}

// RenderFig15 formats the comprehensive-baseline accuracy comparison.
func (r *AccuracyResult) RenderFig15() string {
	s := fmt.Sprintf("Fig 15: final classification, comprehensive baseline (%d faults) vs MeRLiN\n", r.Faults)
	order, m := r.bySize()
	for _, size := range order {
		var base, mer campaign.Dist
		for _, c := range m[size] {
			for o := campaign.Outcome(0); o < campaign.NumOutcomes; o++ {
				base.AddN(o, c.BaselineFull[o])
				mer.AddN(o, c.MerlinFull[o])
			}
		}
		t := &table{header: append([]string{size}, classHeaders...)}
		t.add(append([]string{"baseline"}, distRow(base)...)...)
		t.add(append([]string{"MeRLiN"}, distRow(mer)...)...)
		s += t.String()
	}
	return s
}

// RenderFig16 formats the FIT-rate comparison.
func (r *AccuracyResult) RenderFig16() string {
	t := &table{header: []string{"size", "baseline FIT", "MeRLiN FIT", "ACE-like FIT"}}
	order, m := r.bySize()
	for _, size := range order {
		var b, mm, a []float64
		for _, c := range m[size] {
			b = append(b, c.BaselineFIT)
			mm = append(mm, c.MerlinFIT)
			a = append(a, c.ACELikeFIT)
		}
		t.add(size, f3(mean(b)), f3(mean(mm)), f3(mean(a)))
	}
	return "Fig 16: FIT rates, baseline vs MeRLiN vs ACE-like bound (0.01 FIT/bit; MiBench avg)\n" +
		t.String() + "(shape check: MeRLiN ~= baseline; ACE-like pessimistically higher)\n"
}

// RenderFig17 formats the Relyzer-heuristic comparison.
func (r *AccuracyResult) RenderFig17() string {
	s := "Fig 17: per-class inaccuracy (percentile units) vs full post-ACE injection\n"
	byStruct := map[lifetime.StructureID][]*AccuracyCampaign{}
	for _, c := range r.Campaigns {
		byStruct[c.Struct] = append(byStruct[c.Struct], c)
	}
	for _, st := range []lifetime.StructureID{lifetime.StructRF, lifetime.StructSQ, lifetime.StructL1D} {
		var relWorst, merWorst []float64
		var relInj, merInj, large, single, mlarge, msingle int
		for _, c := range byStruct[st] {
			relWorst = append(relWorst, inaccuracyMax(c.RelyzerPostACE, c.FullPostACE))
			merWorst = append(merWorst, inaccuracyMax(c.MerlinPostACE, c.FullPostACE))
			relInj += c.RelyzerInjected
			merInj += c.MerlinInjected
			large += c.RelyzerLargeGroups
			single += c.RelyzerSinglePilots
			mlarge += c.MerlinLargeGroups
			msingle += c.MerlinSinglePilots
		}
		s += fmt.Sprintf("%-4s worst-class inaccuracy: Relyzer %.2fpp vs MeRLiN %.2fpp"+
			" (injected %d vs %d; large groups w/ 1 pilot: %d/%d vs %d/%d)\n",
			st, mean(relWorst), mean(merWorst), relInj, merInj, single, large, msingle, mlarge)
	}
	return s
}

// RenderTheory formats the §4.4.5 statistical analysis computed from the
// observed groups.
func (r *AccuracyResult) RenderTheory() string {
	t := &table{header: []string{"size", "mean AVF", "Var(k)", "Var(kMeRLiN)", "orders below mean", "orders (MeRLiN)"}}
	order, m := r.bySize()
	for _, size := range order {
		var sizes, nonMasked []int
		total := 0
		for _, c := range m[size] {
			sizes = append(sizes, c.GroupSizes...)
			nonMasked = append(nonMasked, c.GroupNonMasked...)
			total += c.InitialFaults
		}
		c := stats.FromObserved(total, sizes, nonMasked)
		rep := c.Analyze()
		t.add(size, fmt.Sprintf("%.5f", rep.Mean), fmt.Sprintf("%.3e", rep.VarBaseline),
			fmt.Sprintf("%.3e", rep.VarMerlin), f1(rep.OrdersBaseline), f1(rep.OrdersMerlin))
	}
	return "Theory (§4.4.5): E(k)=E(kMeRLiN); variances orders of magnitude below the mean\n" + t.String()
}
