package experiments

import (
	"context"
	"strings"
	"testing"

	"merlin/internal/campaign"
)

// Small options keep the experiment tests quick; the real scale is driven
// from cmd/experiments and recorded in EXPERIMENTS.md.
func quick() Options {
	return Options{Faults: 300, ScaleFactor: 4, Workloads: []string{"sha", "fft"}, Seed: 5}
}

func TestFig8Speedups(t *testing.T) {
	r, err := Fig8(context.Background(), quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 6 { // 3 sizes x 2 workloads
		t.Fatalf("cells = %d", len(r.Cells))
	}
	for _, c := range r.Cells {
		if c.Final < c.ACE {
			t.Errorf("%s/%s: final %.1f < ACE %.1f", c.Workload, c.Size, c.Final, c.ACE)
		}
		if c.ACE < 1 {
			t.Errorf("%s/%s: ACE speedup %.1f < 1", c.Workload, c.Size, c.ACE)
		}
	}
	if !strings.Contains(r.Render(), "average") {
		t.Error("render missing averages")
	}
}

func TestRFSpeedupGrowsWithRegisters(t *testing.T) {
	// More physical registers -> lower AVF -> stronger ACE pruning
	// (paper Fig 8: 93x for 256 regs vs 44x for 64).
	r, err := Fig8(context.Background(), Options{Faults: 1500, Workloads: []string{"qsort"}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	bySize := map[string]float64{}
	for _, c := range r.Cells {
		bySize[c.Size] = c.ACE
	}
	if bySize["256regs"] <= bySize["64regs"] {
		t.Errorf("ACE speedup should grow with RF size: 256regs %.1f vs 64regs %.1f",
			bySize["256regs"], bySize["64regs"])
	}
}

func TestFig12SPEC(t *testing.T) {
	r, err := Fig12(context.Background(), Options{Faults: 300, Workloads: []string{"mcf", "astar"}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Cells) != 6 {
		t.Fatalf("cells = %d", len(r.Cells))
	}
}

func TestFig13Scaling(t *testing.T) {
	// The §4.4.2.4 effect needs an initial list large enough to start
	// saturating the (RIP, uPC, byte) groups: a 4x larger list should
	// then grow the injected set sub-linearly and the speedup
	// super-linearly.
	r, err := Fig13(context.Background(), Options{Faults: 2000, ScaleFactor: 4, Workloads: []string{"qsort"}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 9 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.InjectedScale >= 4 {
			t.Errorf("%s: injected scaled %.2fx for a 4x list (no group reuse)", row.Size, row.InjectedScale)
		}
	}
	if r.AvgScaleUp <= 1.0 {
		t.Errorf("average speedup scale %.2f, want > 1 at saturating list sizes", r.AvgScaleUp)
	}
	if !strings.Contains(r.Render(), "Fig 13") {
		t.Error("render")
	}
}

func TestAccuracySmall(t *testing.T) {
	o := Options{Faults: 250, Workloads: []string{"sha"}, Seed: 4}
	r, err := RunAccuracy(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Campaigns) != 9 { // 9 sizes x 1 workload
		t.Fatalf("campaigns = %d", len(r.Campaigns))
	}
	for _, c := range r.Campaigns {
		if c.Homog.Fine < 0.5 {
			t.Errorf("%s/%s: homogeneity %.2f implausibly low", c.Workload, c.Size, c.Homog.Fine)
		}
		if got := c.MerlinPostACE.Total(); got != c.PostACE {
			t.Errorf("%s/%s: extrapolated %d of %d post-ACE faults", c.Workload, c.Size, got, c.PostACE)
		}
		if got := c.BaselineFull.Total(); got != c.InitialFaults {
			t.Errorf("%s/%s: baseline dist covers %d of %d", c.Workload, c.Size, got, c.InitialFaults)
		}
		if c.MerlinInjected > c.PostACE {
			t.Errorf("%s/%s: injected more than post-ACE", c.Workload, c.Size)
		}
	}
	for _, render := range []string{r.RenderFig6(), r.RenderFig7(), r.RenderFig14(),
		r.RenderFig15(), r.RenderFig16(), r.RenderFig17(), r.RenderTheory()} {
		if render == "" {
			t.Error("empty render")
		}
	}
}

func TestFullBaselineAgreesWithAssumedACE(t *testing.T) {
	// Injecting the pruned faults must produce the same distribution as
	// assuming them Masked (the soundness the fast path relies on).
	base := Options{Faults: 200, Workloads: []string{"fft"}, Seed: 6}
	fullOpt := base
	fullOpt.FullBaseline = true

	z := allSizes()[1] // RF 128
	a, err := runAccuracy(context.Background(), base, "fft", z)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runAccuracy(context.Background(), fullOpt, "fft", z)
	if err != nil {
		t.Fatal(err)
	}
	if a.BaselineFull != b.BaselineFull {
		t.Errorf("assumed %v vs injected %v", a.BaselineFull, b.BaselineFull)
	}
}

func TestTable3(t *testing.T) {
	s := Table3()
	if !strings.Contains(s, "MeRLiN") || !strings.Contains(s, "Relyzer") {
		t.Error("table 3 render incomplete")
	}
}

func TestTable4Small(t *testing.T) {
	r, err := Table4(context.Background(), Options{Faults: 120, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Dist[campaign.SDC] != 0 || row.Dist[campaign.Timeout] != 0 {
			t.Errorf("%s/%s: truncated scheme has no SDC/Timeout: %v", row.Workload, row.Method, row.Dist)
		}
	}
	// Baseline vs MeRLiN per workload: distributions must be close.
	for i := 0; i < len(r.Rows); i += 2 {
		if worst := inaccuracyMax(r.Rows[i].Dist, r.Rows[i+1].Dist); worst > 15 {
			t.Errorf("%s: baseline vs MeRLiN differ by %.1fpp", r.Rows[i].Workload, worst)
		}
	}
	if !strings.Contains(r.Render(), "Table 4") {
		t.Error("render")
	}
}

func TestTable1(t *testing.T) {
	if !strings.Contains(Table1(), "256") {
		t.Error("table 1 render")
	}
}

func TestFig11Timing(t *testing.T) {
	r, err := Fig11(context.Background(), Options{Faults: 150, Workloads: []string{"sha"}, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.BaselineSeconds <= row.MerlinSeconds {
			t.Errorf("%s: baseline %.1fs not slower than MeRLiN %.1fs",
				row.Structure, row.BaselineSeconds, row.MerlinSeconds)
		}
	}
}

func TestAblation(t *testing.T) {
	r, err := Ablation(context.Background(), Options{Faults: 600, Workloads: []string{"sha"}, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	step1, paper := r.Rows[0], r.Rows[1]
	if step1.Injected >= paper.Injected {
		t.Errorf("step-1-only must inject fewer: %d vs %d", step1.Injected, paper.Injected)
	}
	// More representatives must never hurt accuracy on the same faults.
	if r.Rows[3].WorstDiff > paper.WorstDiff+1e-9 {
		t.Errorf("4 reps worst diff %.2f exceeds paper config %.2f", r.Rows[3].WorstDiff, paper.WorstDiff)
	}
	if !strings.Contains(r.Render(), "Ablation") {
		t.Error("render")
	}
}
