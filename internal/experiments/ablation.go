package experiments

import (
	"context"
	"fmt"

	"merlin"

	"merlin/internal/campaign"
	reduction "merlin/internal/merlin"
)

// AblationRow is one grouping-policy variant evaluated against the full
// post-ACE injection ground truth.
type AblationRow struct {
	Variant   string
	Injected  int
	PostACE   int
	Speedup   float64
	WorstDiff float64 // worst per-class difference vs ground truth, pp
	AvgDiff   float64
}

// AblationResult quantifies the contribution of MeRLiN's design choices:
// step-2 byte sub-grouping (§3.2.2) and the number of representatives
// injected per final group.
type AblationResult struct {
	Workloads []string
	Rows      []AblationRow
}

// Render formats the ablation table.
func (r *AblationResult) Render() string {
	t := &table{header: []string{"variant", "postACE", "injected", "speedup", "worst diff (pp)", "avg diff (pp)"}}
	for _, row := range r.Rows {
		t.add(row.Variant, fmt.Sprint(row.PostACE), fmt.Sprint(row.Injected),
			f1(row.Speedup), f2(row.WorstDiff), f2(row.AvgDiff))
	}
	return fmt.Sprintf("Ablation: grouping design choices (RF, 128 regs, workloads %v)\n%s",
		r.Workloads, t)
}

// Ablation evaluates grouping variants on the register file: step 1 only
// (no byte sub-grouping), the paper's configuration, and 2/4
// representatives per group.
func Ablation(ctx context.Context, o Options) (*AblationResult, error) {
	o = o.withDefaults()
	variants := []struct {
		name string
		opts reduction.Options
	}{
		{"step1-only (no byte grouping)", reduction.Options{RepsPerGroup: 1, ByteGrouping: false}},
		{"paper (byte grouping, 1 rep)", reduction.Options{RepsPerGroup: 1, ByteGrouping: true}},
		{"2 reps per group", reduction.Options{RepsPerGroup: 2, ByteGrouping: true}},
		{"4 reps per group", reduction.Options{RepsPerGroup: 4, ByteGrouping: true}},
	}
	res := &AblationResult{Workloads: o.workloadSet("mibench")}
	agg := make([]AblationRow, len(variants))
	for i, v := range variants {
		agg[i].Variant = v.name
	}
	var totalInitial int

	for _, wl := range res.Workloads {
		s, err := merlin.Start(ctx, wl, o.sessionOptions(defaultCPU().WithRF(128), merlin.RF, o.Faults)...)
		if err != nil {
			return nil, err
		}
		if err := s.Preprocess(ctx); err != nil {
			return nil, err
		}
		a := s.Artifacts()
		base := reduction.Prune(a.Analysis, a.Faults)
		full := make([]merlin.Fault, len(base.HitFaults))
		for i, fi := range base.HitFaults {
			full[i] = a.Faults[fi]
		}
		fullRes, err := a.Runner.RunAllWith(ctx, o.Strategy, full, &a.Golden.Result, 0)
		if err != nil {
			return nil, err
		}
		outcomes := make([]campaign.Outcome, len(a.Faults))
		for i, fi := range base.HitFaults {
			outcomes[fi] = fullRes.Outcomes[i]
		}
		totalInitial += len(a.Faults)

		for i, v := range variants {
			red := reduction.Reduce(a.Analysis, a.Faults, v.opts)
			var reps []campaign.Outcome
			for _, g := range red.Groups {
				for _, rep := range g.Reps {
					reps = append(reps, outcomes[rep])
				}
			}
			dist := red.PostACEExtrapolate(reps)
			in := reduction.Inaccuracy(dist, fullRes.Dist)
			worst, sum := 0.0, 0.0
			for _, d := range in {
				if d > worst {
					worst = d
				}
				sum += d
			}
			agg[i].Injected += red.ReducedCount()
			agg[i].PostACE += len(red.HitFaults)
			if worst > agg[i].WorstDiff {
				agg[i].WorstDiff = worst
			}
			agg[i].AvgDiff += sum / float64(len(in))
			o.logf("ablation %-14s %-30s injected %4d worst %.2fpp", wl, v.name, red.ReducedCount(), worst)
		}
	}
	for i := range agg {
		agg[i].Speedup = float64(totalInitial) / float64(agg[i].Injected)
		agg[i].AvgDiff /= float64(len(res.Workloads))
	}
	res.Rows = agg
	return res, nil
}
