// Package experiments regenerates every table and figure of the paper's
// evaluation (§4) on the simulated substrate: speedups (Figs 8-10, 12, 13),
// homogeneity (Figs 6-7), accuracy (Figs 14-15, Table 4), FIT rates
// (Fig 16), estimation-time extrapolation (Fig 11), the Relyzer-heuristic
// comparison (Fig 17), the analytic exhaustive-list comparison (Table 3)
// and the §4.4.5 statistical analysis.
//
// Campaign scale is configurable: the paper's 60,000-fault lists are
// supported but default to smaller lists so the full suite reproduces in
// minutes; EXPERIMENTS.md records the scale used for the committed runs.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"merlin"

	"merlin/internal/campaign"
	"merlin/internal/cpu"
	"merlin/internal/lifetime"
	reduction "merlin/internal/merlin"
)

// Options tunes an experiment run.
type Options struct {
	// Faults is the initial statistical fault list size per campaign
	// (the paper's comprehensive baseline uses 60,000).
	Faults int
	// ScaleFactor multiplies Faults for the Fig 13 scaling study
	// (the paper uses 10x: 600,000).
	ScaleFactor int
	// Workloads restricts the benchmark set (nil = the suite's ten).
	Workloads []string
	// Structures restricts the structure sweep (nil = RF, SQ and L1D):
	// figures iterating structure sizes only evaluate the listed targets.
	Structures []lifetime.StructureID
	// Workers bounds injection parallelism (0 = GOMAXPROCS).
	Workers int
	// Strategy selects the injection scheduler every campaign of every
	// table/figure uses: Replay (default), Checkpointed, or Forked.
	// Outcomes are bit-identical across strategies, so any strategy
	// reproduces the same tables; only wall-clock differs.
	Strategy campaign.Strategy
	// Seed drives fault sampling.
	Seed int64
	// FullBaseline injects even the ACE-pruned faults in accuracy
	// experiments instead of relying on the (separately verified)
	// soundness of the pruning. Much slower.
	FullBaseline bool
	// Log receives progress lines (nil = quiet).
	Log io.Writer
}

func (o Options) withDefaults() Options {
	if o.Faults == 0 {
		o.Faults = 2000
	}
	if o.ScaleFactor == 0 {
		o.ScaleFactor = 10
	}
	return o
}

func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// sessionOptions maps experiment Options onto the v2 functional options
// for one (core config, structure, fault budget) campaign.
func (o Options) sessionOptions(cpuCfg cpu.Config, s lifetime.StructureID, faults int) []merlin.Option {
	return []merlin.Option{
		merlin.WithCPU(cpuCfg),
		merlin.WithStructure(s),
		merlin.WithFaults(faults),
		merlin.WithSeed(o.Seed),
		merlin.WithWorkers(o.Workers),
		merlin.WithStrategy(o.Strategy),
	}
}

// wantStructure applies the Structures filter (nil = everything).
func (o Options) wantStructure(s lifetime.StructureID) bool {
	if len(o.Structures) == 0 {
		return true
	}
	for _, want := range o.Structures {
		if want == s {
			return true
		}
	}
	return false
}

// filterSizes drops the structure sizes excluded by Options.Structures.
func (o Options) filterSizes(sizes []StructSize) []StructSize {
	if len(o.Structures) == 0 {
		return sizes
	}
	var out []StructSize
	for _, z := range sizes {
		if o.wantStructure(z.Structure) {
			out = append(out, z)
		}
	}
	return out
}

// StructSize is one (structure, size) configuration of Table 1.
type StructSize struct {
	Structure lifetime.StructureID
	Label     string
	Configure func(cpu.Config) cpu.Config
}

// The nine configurations evaluated for MiBench (Figs 6-11, 13-16).
func allSizes() []StructSize {
	return []StructSize{
		{lifetime.StructRF, "256regs", func(c cpu.Config) cpu.Config { return c.WithRF(256) }},
		{lifetime.StructRF, "128regs", func(c cpu.Config) cpu.Config { return c.WithRF(128) }},
		{lifetime.StructRF, "64regs", func(c cpu.Config) cpu.Config { return c.WithRF(64) }},
		{lifetime.StructSQ, "64entries", func(c cpu.Config) cpu.Config { return c.WithSQ(64) }},
		{lifetime.StructSQ, "32entries", func(c cpu.Config) cpu.Config { return c.WithSQ(32) }},
		{lifetime.StructSQ, "16entries", func(c cpu.Config) cpu.Config { return c.WithSQ(16) }},
		{lifetime.StructL1D, "64KB", func(c cpu.Config) cpu.Config { return c.WithL1D(64 << 10) }},
		{lifetime.StructL1D, "32KB", func(c cpu.Config) cpu.Config { return c.WithL1D(32 << 10) }},
		{lifetime.StructL1D, "16KB", func(c cpu.Config) cpu.Config { return c.WithL1D(16 << 10) }},
	}
}

func sizesFor(s lifetime.StructureID) []StructSize {
	var out []StructSize
	for _, z := range allSizes() {
		if z.Structure == s {
			out = append(out, z)
		}
	}
	return out
}

// specConfig is the §4.4.2.3 / §4.4.3.4 configuration: 128 physical
// registers, 16+16 LSQ entries, 32KB L1D.
func specConfig() cpu.Config {
	return cpu.DefaultConfig().WithRF(128).WithSQ(16).WithL1D(32 << 10)
}

// --- small text-table renderer ---

type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func pc(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }

func mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

// distRow renders the six classes of a distribution as percentages.
func distRow(d campaign.Dist) []string {
	out := make([]string, 0, int(campaign.Unknown))
	for o := campaign.Outcome(0); o < campaign.Unknown; o++ {
		out = append(out, pc(d.Share(o)))
	}
	return out
}

var classHeaders = []string{"Masked", "SDC", "DUE", "Timeout", "Crash", "Assert"}

// inaccuracyMax returns the largest per-class percentile difference.
func inaccuracyMax(a, b campaign.Dist) float64 {
	in := reduction.Inaccuracy(a, b)
	worst := 0.0
	for o := campaign.Outcome(0); o < campaign.NumOutcomes; o++ {
		if in[o] > worst {
			worst = in[o]
		}
	}
	return worst
}
