package experiments

import (
	"context"
	"fmt"

	"merlin/internal/campaign"
	"merlin/internal/cpu"
	"merlin/internal/lifetime"
	reduction "merlin/internal/merlin"
	"merlin/internal/sampling"
	"merlin/internal/workloads"
)

// Table3 renders the analytic exhaustive-list comparison of MeRLiN vs
// Relyzer (§4.2).
func Table3() string {
	return "Table 3: methods vs the exhaustive fault list (1e9-cycle benchmark, L1D 32KB + SQ 16 + RF 64)\n" +
		reduction.DefaultExhaustiveModel().String()
}

// Table4Row is one method's classification in the truncated-run scheme.
type Table4Row struct {
	Workload string
	Method   string
	Injected int
	Dist     campaign.Dist
}

// Table4Result reproduces the truncated-Simpoint accuracy study.
type Table4Result struct {
	Rows []Table4Row
	Cut  map[string]uint64
}

// Render formats Table 4.
func (r *Table4Result) Render() string {
	t := &table{header: []string{"workload", "method", "injected", "Masked", "DUE", "Crash", "Assert", "Unknown"}}
	for _, row := range r.Rows {
		t.add(row.Workload, row.Method, fmt.Sprint(row.Injected),
			pc(row.Dist.Share(campaign.Masked)), pc(row.Dist.Share(campaign.DUE)),
			pc(row.Dist.Share(campaign.Crash)), pc(row.Dist.Share(campaign.Assert)),
			pc(row.Dist.Share(campaign.Unknown)))
	}
	return "Table 4: truncated-interval accuracy, gcc & bzip2, RF, 128regs/16entries/32KB\n" +
		t.String() +
		"(paper: gcc 85.08/0.06-0.07/3.1-3.7/0.01/11.2-11.7; bzip2 84.98/0.3-0.8/3.5-4.1/0.02-0.03/10.1-11.2)\n"
}

// Table4 runs the truncated-run experiment: gcc and bzip2 cut mid-execution
// (standing in for the Simpoint interval end), register-file faults,
// comparing the comprehensive truncated baseline against MeRLiN with the
// truncated classification {Masked, DUE, Crash, Assert, Unknown}.
func Table4(ctx context.Context, o Options) (*Table4Result, error) {
	o = o.withDefaults()
	res := &Table4Result{Cut: map[string]uint64{}}
	for _, wl := range []string{"gcc", "bzip2"} {
		w, err := workloads.Get(wl)
		if err != nil {
			return nil, err
		}
		runner := campaign.NewRunner(campaign.Target{Cfg: specConfig(), Prog: w.Program()})
		runner.Workers = o.Workers
		full, err := runner.RunGolden()
		if err != nil {
			return nil, err
		}
		cut := full.Result.Cycles / 2
		res.Cut[wl] = cut
		tg, err := runner.RunGoldenTruncated(cut, lifetime.StructRF)
		if err != nil {
			return nil, err
		}

		core := runner.NewCore()
		entries := core.StructureEntries(lifetime.StructRF)
		analysis := lifetime.BuildTruncated(tg.Tracer.Log(lifetime.StructRF),
			lifetime.StructRF, entries, 8, cut)
		faults := sampling.Generate(lifetime.StructRF, entries, 64, cut, o.Faults, o.Seed)

		baseRes, err := runner.RunAllTruncated(ctx, faults, tg)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Table4Row{
			Workload: wl, Method: "baseline", Injected: len(faults), Dist: baseRes.Dist,
		})

		red := reduction.Reduce(analysis, faults, reduction.DefaultOptions())
		repRes, err := runner.RunAllTruncated(ctx, red.Reduced(), tg)
		if err != nil {
			return nil, err
		}
		merDist := red.Extrapolate(repRes.Outcomes)
		res.Rows = append(res.Rows, Table4Row{
			Workload: wl, Method: "MeRLiN", Injected: red.ReducedCount(), Dist: merDist,
		})
		o.logf("Table 4 %-6s cut %d: baseline %v", wl, cut, baseRes.Dist)
		o.logf("Table 4 %-6s          MeRLiN (%d inj) %v", wl, red.ReducedCount(), merDist)
	}
	return res, nil
}

// Table1 renders the baseline core configuration for reference.
func Table1() string {
	c := cpu.DefaultConfig()
	t := &table{header: []string{"parameter", "value"}}
	t.add("pipeline", "out-of-order")
	t.add("physical int registers", fmt.Sprintf("%d (also 128/64 in sweeps)", c.PhysRegs))
	t.add("issue queue", fmt.Sprint(c.IQEntries))
	t.add("load/store queue", fmt.Sprintf("%d load + %d store (also 32/16)", c.LQEntries, c.SQEntries))
	t.add("ROB", fmt.Sprint(c.ROBEntries))
	t.add("functional units", fmt.Sprintf("%d int ALU, %d complex, %d ld, %d st ports",
		c.IntALUs, c.IntMulDiv, c.LoadPorts, c.StorePorts))
	t.add("L1I", fmt.Sprintf("%dKB %d-way %dB lines", c.L1I.Size>>10, c.L1I.Ways, c.L1I.LineSize))
	t.add("L1D", fmt.Sprintf("%dKB %d-way %dB lines (also 64/16KB)", c.L1D.Size>>10, c.L1D.Ways, c.L1D.LineSize))
	t.add("L2", fmt.Sprintf("%dMB %d-way %dB lines", c.L2.Size>>20, c.L2.Ways, c.L2.LineSize))
	t.add("branch predictor", "tournament (local+gshare+chooser), 4K BTB, 16 RAS")
	return "Table 1: baseline core configuration\n" + t.String()
}
