package chaos

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"merlin/internal/fleet"
	"merlin/internal/store"
)

// TestRandDeterminism: equal seeds yield equal draw sequences, and
// Derive gives scenario i the same child seed on every run — the whole
// point of a *seeded* chaos engine.
func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("draw %d diverged for equal seeds", i)
		}
	}
	if NewRand(42).Uint64() == NewRand(43).Uint64() {
		t.Error("adjacent seeds collide on the first draw")
	}
	if Derive(7, 3) != Derive(7, 3) {
		t.Error("Derive is not a function of (seed, i)")
	}
	if Derive(7, 3) == Derive(7, 4) {
		t.Error("Derive gives adjacent scenarios the same stream")
	}
}

func TestRandChanceBounds(t *testing.T) {
	r := NewRand(1)
	for i := 0; i < 100; i++ {
		if r.Chance(0) {
			t.Fatal("Chance(0) fired")
		}
		if !r.Chance(1) {
			t.Fatal("Chance(1) did not fire")
		}
	}
}

func chaosBackend(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(strings.Repeat("x", 8192)))
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestTransportDrop(t *testing.T) {
	srv := chaosBackend(t)
	client := &http.Client{Transport: &Transport{R: NewRand(1), Rules: []Faults{{Drop: 1}}}}
	if _, err := client.Get(srv.URL); err == nil || !strings.Contains(err.Error(), "injected connection drop") {
		t.Fatalf("dropped request err = %v, want injected connection drop", err)
	}
}

func TestTransportHTTP500(t *testing.T) {
	srv := chaosBackend(t)
	client := &http.Client{Transport: &Transport{R: NewRand(1), Rules: []Faults{{HTTP500: 1}}}}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
}

func TestTransportTruncate(t *testing.T) {
	srv := chaosBackend(t)
	client := &http.Client{Transport: &Transport{R: NewRand(1), Rules: []Faults{{Truncate: 1}}}}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("truncation must read as a clean EOF, got %v", err)
	}
	if len(body) == 0 || len(body) >= 8192 {
		t.Fatalf("truncated body = %d bytes, want a strict non-empty prefix of 8192", len(body))
	}
}

func TestTransportCorrupt(t *testing.T) {
	srv := chaosBackend(t)
	client := &http.Client{Transport: &Transport{R: NewRand(1), Rules: []Faults{{Corrupt: 1}}}}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(body) != 8192 {
		t.Fatalf("corrupt body = %d bytes, want full length", len(body))
	}
	flipped := 0
	for _, c := range body {
		if c != 'x' {
			flipped++
		}
	}
	if flipped != 1 {
		t.Fatalf("%d bytes differ, want exactly one flipped bit", flipped)
	}
}

// TestTransportStall: the stalled body blocks without closing, and
// closing it from the reader side (the watchdog's move) unblocks it.
func TestTransportStall(t *testing.T) {
	srv := chaosBackend(t)
	client := &http.Client{Transport: &Transport{
		R:     NewRand(1),
		Rules: []Faults{{Stall: 1, StallFor: 10 * time.Second}},
	}}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	read := make(chan error, 1)
	go func() {
		_, err := io.ReadAll(resp.Body)
		read <- err
	}()
	select {
	case err := <-read:
		t.Fatalf("stalled body returned early: %v", err)
	case <-time.After(100 * time.Millisecond):
	}
	resp.Body.Close()
	select {
	case err := <-read:
		if err == nil {
			t.Fatal("closed stalled body read as a clean EOF")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stalled body still blocked after Close")
	}
}

// TestTransportPathScope: rules only perturb their PathPrefix; other
// routes pass through untouched.
func TestTransportPathScope(t *testing.T) {
	srv := chaosBackend(t)
	client := &http.Client{Transport: &Transport{
		R:     NewRand(1),
		Rules: []Faults{{PathPrefix: "/fleet/run", Drop: 1}},
	}}
	resp, err := client.Get(srv.URL + "/artifacts/abc")
	if err != nil {
		t.Fatalf("out-of-scope request perturbed: %v", err)
	}
	resp.Body.Close()
	if _, err := client.Get(srv.URL + "/fleet/run"); err == nil {
		t.Fatal("in-scope request not dropped")
	}
}

func TestFSFaults(t *testing.T) {
	dir := t.TempDir()
	payload := []byte(strings.Repeat("payload", 100))
	path := filepath.Join(dir, "rec")

	torn := &FS{R: NewRand(1), Faults: FSFaults{TornWrite: 1}}
	if err := torn.WriteFileAtomic(path, payload); err != nil {
		t.Fatalf("torn write must report success, got %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || len(got) >= len(payload) {
		t.Fatalf("torn write landed %d bytes, want a strict non-empty prefix of %d", len(got), len(payload))
	}

	rename := &FS{R: NewRand(1), Faults: FSFaults{RenameFail: 1}}
	if err := rename.WriteFileAtomic(filepath.Join(dir, "r2"), payload); err == nil {
		t.Fatal("rename failure reported success")
	}
	if _, err := os.Stat(filepath.Join(dir, "r2")); !os.IsNotExist(err) {
		t.Fatal("rename failure still produced the file")
	}

	enospc := &FS{R: NewRand(1), Faults: FSFaults{ENOSPC: 1}}
	if err := enospc.WriteFileAtomic(filepath.Join(dir, "r3"), payload); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("err = %v, want ENOSPC", err)
	}

	flip := &FS{R: NewRand(1), Faults: FSFaults{BitFlip: 1}}
	p4 := filepath.Join(dir, "r4")
	if err := flip.WriteFileAtomic(p4, payload); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(p4)
	diff := 0
	for i := range got {
		if got[i] != payload[i] {
			diff++
		}
	}
	if len(got) != len(payload) || diff != 1 {
		t.Fatalf("bit flip changed %d bytes of %d, want exactly 1 of %d", diff, len(got), len(payload))
	}

	// A chaos registry quarantines its own damage: the torn record from
	// above reads as absent and moves aside.
	reg, err := store.OpenRegistryOn(torn, dir)
	if err != nil {
		t.Fatal(err)
	}
	_ = reg
}

// TestBehaviorDuplicateAndMismatch: the benign duplicate repeats the
// line verbatim; the Byzantine one contradicts it.
func TestBehaviorDuplicateAndMismatch(t *testing.T) {
	run := func(ctx context.Context, job fleet.ShardJob, emit func(fleet.Outcome)) error {
		for _, rep := range job.Reps {
			emit(fleet.Outcome{Rep: rep, Outcome: "Masked"})
		}
		return nil
	}
	b := &Behavior{R: NewRand(1), Duplicate: 1, MismatchDuplicate: 1}
	var got []fleet.Outcome
	err := b.Wrap(run)(context.Background(), fleet.ShardJob{Reps: []int{0, 1, 2}},
		func(o fleet.Outcome) { got = append(got, o) })
	if err != nil {
		t.Fatal(err)
	}
	dup, forged := 0, 0
	seen := map[int]string{}
	for _, o := range got {
		if prev, ok := seen[o.Rep]; ok {
			if prev == o.Outcome {
				dup++
			} else {
				forged++
			}
			continue
		}
		seen[o.Rep] = o.Outcome
	}
	if dup == 0 {
		t.Error("Duplicate=1 emitted no verbatim duplicates")
	}
	if forged == 0 {
		t.Error("MismatchDuplicate=1 emitted no contradicting duplicate")
	}
}

// TestBehaviorCrashAborts: the crash fate panics http.ErrAbortHandler on
// the caller's goroutine (the HTTP handler), after run has unwound — the
// connection-reset crash, not a process crash from an injection worker.
func TestBehaviorCrashAborts(t *testing.T) {
	run := func(ctx context.Context, job fleet.ShardJob, emit func(fleet.Outcome)) error {
		for _, rep := range job.Reps {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			emit(fleet.Outcome{Rep: rep, Outcome: "Masked"})
		}
		return nil
	}
	b := &Behavior{R: NewRand(1), Crash: 1}
	var emitted int
	defer func() {
		if r := recover(); r != http.ErrAbortHandler {
			t.Fatalf("recover = %v, want http.ErrAbortHandler", r)
		}
		if emitted >= 8 {
			t.Errorf("crash emitted all %d outcomes first", emitted)
		}
	}()
	b.Wrap(run)(context.Background(), fleet.ShardJob{Reps: []int{0, 1, 2, 3, 4, 5, 6, 7}},
		func(o fleet.Outcome) { emitted++ })
	t.Fatal("crash behavior returned instead of aborting")
}

// TestBehaviorStallHoldsUntilClosed: the stalled shard emits nothing
// more, holds the stream open, and aborts only once the request context
// ends — the coordinator-side watchdog's body-close.
func TestBehaviorStallHoldsUntilClosed(t *testing.T) {
	run := func(ctx context.Context, job fleet.ShardJob, emit func(fleet.Outcome)) error {
		for _, rep := range job.Reps {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			emit(fleet.Outcome{Rep: rep, Outcome: "Masked"})
		}
		return nil
	}
	b := &Behavior{R: NewRand(1), Stall: 1, StallFor: 10 * time.Second}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		b.Wrap(run)(ctx, fleet.ShardJob{Reps: []int{0, 1, 2, 3}}, func(o fleet.Outcome) {})
		done <- nil
	}()
	select {
	case v := <-done:
		t.Fatalf("stalled shard finished early: %v", v)
	case <-time.After(100 * time.Millisecond):
	}
	cancel() // the watchdog closing the response body cancels r.Context()
	select {
	case v := <-done:
		if v != http.ErrAbortHandler {
			t.Fatalf("stalled shard ended with %v, want http.ErrAbortHandler", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stalled shard still blocked after context cancel")
	}
}
