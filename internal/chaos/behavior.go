package chaos

import (
	"context"
	"net/http"
	"sync"
	"time"

	"merlin/internal/fleet"
)

// Behavior perturbs a worker's shard execution: the worker-side chaos
// injection point. Crash and Stall are drawn once per shard (with a
// uniformly random trigger outcome), Duplicate per outcome, Straggle and
// MismatchDuplicate once per shard.
//
// Crash, Stall and Straggle are sub-lethal: the dispatcher's watchdog,
// requeue and circuit-breaker machinery must absorb them with a
// bit-identical merged report. MismatchDuplicate is lethal by design —
// a Byzantine worker contradicting its own classification — and the
// campaign must fail loudly, never silently prefer either answer.
type Behavior struct {
	R *Rand

	// Crash aborts the shard stream (connection reset, no done marker)
	// after a random prefix of outcomes.
	Crash float64
	// Stall stops emitting at a random outcome while the connection
	// stays open and the worker's heartbeat loop keeps it looking alive
	// — the livelock only a progress watchdog breaks.
	Stall float64
	// StallFor bounds how long a stalled handler lingers after the
	// trigger before aborting on its own (0 = 30s); the watchdog is
	// expected to fire far earlier.
	StallFor time.Duration
	// Straggle delays every outcome of the shard by a random lag up to
	// MaxLag — the slow-but-correct worker hedging exists for.
	Straggle float64
	MaxLag   time.Duration
	// Duplicate re-emits an outcome line verbatim: benign, the ledger
	// dedups it.
	Duplicate float64
	// MismatchDuplicate re-emits one rep with a different class.
	MismatchDuplicate float64
}

// Wrap returns run perturbed by the receiver's fault distribution.
func (b *Behavior) Wrap(run fleet.ShardRunFunc) fleet.ShardRunFunc {
	return func(ctx context.Context, job fleet.ShardJob, emit func(fleet.Outcome)) error {
		n := len(job.Reps)
		if n == 0 {
			return run(ctx, job, emit)
		}
		crashAt, stallAt, mismatchAt := -1, -1, -1
		if b.R.Chance(b.Crash) {
			crashAt = b.R.Intn(n)
		}
		if b.R.Chance(b.Stall) {
			stallAt = b.R.Intn(n)
		}
		if b.R.Chance(b.MismatchDuplicate) {
			mismatchAt = b.R.Intn(n)
		}
		var lag time.Duration
		if b.MaxLag > 0 && b.R.Chance(b.Straggle) {
			lag = time.Duration(b.R.Intn(int(b.MaxLag))) + 1
		}

		// The wrapped emit runs on the shard's own injection goroutines,
		// where a panic would kill the process instead of the stream. So
		// the triggers only cancel the shard's context and stop
		// forwarding; the handler goroutine (below, after run returns)
		// does the actual aborting.
		cctx, cancel := context.WithCancel(ctx)
		defer cancel()
		var (
			mu      sync.Mutex
			emitted int
			fate    string // "", "crash", "stall"
		)
		wrapped := func(o fleet.Outcome) {
			mu.Lock()
			i := emitted
			emitted++
			if fate != "" {
				mu.Unlock() // a triggered shard emits nothing further
				return
			}
			if i == crashAt {
				fate = "crash"
				mu.Unlock()
				cancel()
				return
			}
			if i == stallAt {
				fate = "stall"
				mu.Unlock()
				cancel()
				return
			}
			mu.Unlock()
			if lag > 0 {
				sleepCtx(ctx, lag)
			}
			emit(o)
			if b.R.Chance(b.Duplicate) {
				emit(o)
			}
			if i == mismatchAt {
				forged := o
				forged.Outcome = otherClass(o.Outcome)
				emit(forged)
			}
		}

		err := run(cctx, job, wrapped)
		mu.Lock()
		f := fate
		mu.Unlock()
		switch f {
		case "crash":
			// Handler goroutine: net/http turns this into a connection
			// abort — a broken stream with no done marker.
			panic(http.ErrAbortHandler)
		case "stall":
			// Hold the stream open, emitting nothing, until the
			// coordinator's watchdog closes it (cancelling ctx) or the
			// safety bound elapses; then abort without a done marker.
			stallFor := b.StallFor
			if stallFor == 0 {
				stallFor = 30 * time.Second
			}
			sleepCtx(ctx, stallFor)
			panic(http.ErrAbortHandler)
		}
		return err
	}
}

// otherClass returns a fault-effect class different from c: the forged
// half of a mismatched duplicate.
func otherClass(c string) string {
	if c == "Masked" {
		return "SDC"
	}
	return "Masked"
}

// sleepCtx sleeps for d or until ctx ends, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
	case <-timer.C:
	}
}
