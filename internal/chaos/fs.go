package chaos

import (
	"fmt"
	"os"
	"syscall"

	"merlin/internal/store"
)

// FSFaults is the per-write fault distribution of a chaos filesystem.
// At most one fault fires per write, drawn in declaration order.
type FSFaults struct {
	// TornWrite persists only a prefix of the payload and reports
	// success — the power-cut-mid-checkpoint a journal cannot help with
	// once the application skipped its fsync. The registry's read-side
	// checksum must turn this into "record absent", never a wedge.
	TornWrite float64
	// RenameFail fails the write at the rename step, after the data is
	// durable in the temp file. The caller sees an error; the previous
	// version of the record must survive untouched.
	RenameFail float64
	// ENOSPC fails the write with syscall.ENOSPC before any byte lands.
	ENOSPC float64
	// BitFlip persists the full payload with one bit flipped and
	// reports success — at-rest corruption; the read-side checksum must
	// quarantine it.
	BitFlip float64
}

// FS is a chaos store.FS: reads and scans pass through to Inner
// (store.OSFS when nil), writes are perturbed per Faults.
type FS struct {
	Inner  store.FS
	R      *Rand
	Faults FSFaults
	// OnFault, when set, observes every injected fault (kind, path).
	// Must be safe for concurrent use.
	OnFault func(kind, path string)
}

var _ store.FS = (*FS)(nil)

func (f *FS) inner() store.FS {
	if f.Inner != nil {
		return f.Inner
	}
	return store.OSFS{}
}

func (f *FS) note(kind, path string) {
	if f.OnFault != nil {
		f.OnFault(kind, path)
	}
}

func (f *FS) ReadFile(path string) ([]byte, error)      { return f.inner().ReadFile(path) }
func (f *FS) Rename(old, new string) error              { return f.inner().Rename(old, new) }
func (f *FS) Remove(path string) error                  { return f.inner().Remove(path) }
func (f *FS) ReadDir(dir string) ([]os.DirEntry, error) { return f.inner().ReadDir(dir) }
func (f *FS) Stat(path string) (os.FileInfo, error)     { return f.inner().Stat(path) }

// WriteFileAtomic perturbs the write per the fault distribution; the
// undisturbed path delegates to the inner FS.
func (f *FS) WriteFileAtomic(path string, data []byte) error {
	switch {
	case f.R.Chance(f.Faults.TornWrite):
		f.note("torn-write", path)
		n := 0
		if len(data) > 1 {
			n = 1 + f.R.Intn(len(data)-1)
		}
		// The tear lands on the final path (the rename happened; the
		// data blocks did not) and the caller is told all is well.
		f.inner().WriteFileAtomic(path, data[:n])
		return nil
	case f.R.Chance(f.Faults.RenameFail):
		f.note("rename-fail", path)
		return fmt.Errorf("chaos: injected rename failure on %s", path)
	case f.R.Chance(f.Faults.ENOSPC):
		f.note("enospc", path)
		return fmt.Errorf("chaos: %w", syscall.ENOSPC)
	case f.R.Chance(f.Faults.BitFlip):
		f.note("bit-flip", path)
		flipped := make([]byte, len(data))
		copy(flipped, data)
		if len(flipped) > 0 {
			flipped[f.R.Intn(len(flipped))] ^= 1 << f.R.Intn(8)
		}
		return f.inner().WriteFileAtomic(path, flipped)
	}
	return f.inner().WriteFileAtomic(path, data)
}
