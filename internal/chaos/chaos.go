// Package chaos is the fault-plan engine for the campaign fleet: seeded,
// deterministic-by-construction fault injection into the injector itself.
// MeRLiN's statistical guarantees only hold if huge campaigns complete,
// and the project's determinism invariant gives the perfect oracle — under
// any sub-lethal chaos schedule the merged report must be bit-identical to
// the undisturbed run. This package supplies the schedule: a splitmix64
// stream of fault draws feeding three pluggable injection points —
//
//   - Transport: a chaos http.RoundTripper that drops, delays, truncates
//     and bit-flips responses, breaks NDJSON streams mid-line, injects
//     5xx, and stalls response bodies without closing them;
//   - FS: a chaos store.FS that tears writes, fails renames, reports
//     ENOSPC and flips payload bytes on the way to disk;
//   - Behavior: worker-side perturbations of a fleet.ShardRunFunc —
//     crash mid-shard, stall while the heartbeat loop keeps the worker
//     looking alive, straggle, and emit duplicate or mismatched-duplicate
//     outcomes.
//
// All randomness is drawn from the seeded Rand below; the package never
// touches global math/rand or the wall clock for decisions (delays and
// stalls use timers, never time.Now), so merlinvet's determinism
// analyzers hold over it like any other package. Note the scope of the
// guarantee: the *draws* are a deterministic function of the seed, but
// goroutine interleaving decides which request meets which draw, so a
// chaos schedule is reproducible in distribution, not placement — which
// is exactly what the bit-identity oracle requires, and why it is the
// oracle rather than any property of the chaos itself.
package chaos

import "sync"

// Rand is a seeded splitmix64 stream, safe for concurrent draws. It is
// deliberately tiny: the fleet's chaos decisions need uniform integers,
// coin flips and bounded durations, nothing more.
type Rand struct {
	mu    sync.Mutex
	state uint64
}

// NewRand returns a stream seeded with seed. Equal seeds yield equal
// draw sequences (under equal draw orders).
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next draw (splitmix64: Steele et al., "Fast
// splittable pseudorandom number generators").
func (r *Rand) Uint64() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.state += 0x9e37_79b9_7f4a_7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58_476d_1ce4_e5b9
	z = (z ^ (z >> 27)) * 0x94d0_49bb_1331_11eb
	return z ^ (z >> 31)
}

// Intn returns a draw in [0, n); n must be positive.
func (r *Rand) Intn(n int) int { return int(r.Uint64() % uint64(n)) }

// Chance reports true with probability p (clamped to [0, 1]).
func (r *Rand) Chance(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return float64(r.Uint64()>>11)/(1<<53) < p
}

// Derive returns a child seed for stream i: scenario i of a suite gets
// its own independent Rand without the suite consuming draws from a
// shared one in a concurrency-dependent order.
func Derive(seed uint64, i int) uint64 {
	r := Rand{state: seed}
	var s uint64
	for k := 0; k <= i; k++ {
		s = r.Uint64()
	}
	return s
}
