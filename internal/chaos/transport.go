package chaos

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Faults is one rule's per-request fault probabilities. Draws happen in
// the order the fields are declared; at most one fault fires per request
// (plus an independent delay), which keeps intensities interpretable.
//
// Fault classes split by what the receiver can detect. Drop, HTTP500,
// Stall and Truncate are detectable failures — the dispatcher's retry,
// watchdog and requeue machinery must absorb them. Corrupt flips a bit
// in the payload and is only safe to aim at responses whose receiver
// verifies content (the artifact endpoint's digest + embedded checksum);
// aimed at an NDJSON outcome stream it could forge a *valid* line with a
// wrong rep or class, which no transport-level defense can detect — that
// Byzantine case is Behavior.MismatchDuplicate's job, where the ledger
// can see it.
type Faults struct {
	// PathPrefix scopes the rule: only requests whose URL path starts
	// with it are perturbed. Empty matches every request.
	PathPrefix string

	// Drop fails the request outright with a synthetic connection error.
	Drop float64
	// HTTP500 answers with a synthetic 503 without reaching the peer.
	HTTP500 float64
	// Stall lets the response through, then blocks the body mid-read
	// without closing it — the failure TCP keepalives never surface and
	// only a progress watchdog catches.
	Stall float64
	// StallFor bounds how long a stalled body blocks before erroring out
	// (so an unwatched harness still terminates). Zero means 30s.
	StallFor time.Duration
	// StallAfter is the byte budget served before the stall (the draw is
	// in [0, StallAfter]); zero stalls immediately after the headers.
	StallAfter int
	// Truncate cuts the body after a random prefix: a clean EOF mid-
	// stream, mid-NDJSON-line more often than not.
	Truncate float64
	// Corrupt flips one random bit somewhere in the first 4 KiB of the
	// body (any flip breaks an end-to-end digest, wherever it lands).
	// See the type comment for where this is safe to aim.
	Corrupt float64
	// Delay holds the request for a random duration up to MaxDelay
	// before sending it; drawn independently of the faults above.
	Delay    float64
	MaxDelay time.Duration
}

// Transport is a chaos http.RoundTripper: it forwards requests to Inner
// (http.DefaultTransport when nil) and perturbs them according to the
// first matching rule, drawing every decision from R.
type Transport struct {
	Inner http.RoundTripper
	R     *Rand
	Rules []Faults
	// OnFault, when set, observes every injected fault (kind, request
	// path) — the harness's log line. Must be safe for concurrent use.
	OnFault func(kind, path string)
}

func (t *Transport) inner() http.RoundTripper {
	if t.Inner != nil {
		return t.Inner
	}
	return http.DefaultTransport
}

func (t *Transport) rule(path string) *Faults {
	for i := range t.Rules {
		if strings.HasPrefix(path, t.Rules[i].PathPrefix) {
			return &t.Rules[i]
		}
	}
	return nil
}

func (t *Transport) note(kind, path string) {
	if t.OnFault != nil {
		t.OnFault(kind, path)
	}
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	f := t.rule(req.URL.Path)
	if f == nil {
		return t.inner().RoundTrip(req)
	}
	if f.Delay > 0 && t.R.Chance(f.Delay) {
		t.note("delay", req.URL.Path)
		d := time.Duration(t.R.Intn(int(f.MaxDelay) + 1))
		timer := time.NewTimer(d)
		select {
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		case <-timer.C:
		}
	}
	if t.R.Chance(f.Drop) {
		t.note("drop", req.URL.Path)
		return nil, fmt.Errorf("chaos: injected connection drop on %s", req.URL.Path)
	}
	if t.R.Chance(f.HTTP500) {
		t.note("http500", req.URL.Path)
		return &http.Response{
			Status:     "503 chaos",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      "HTTP/1.1",
			ProtoMajor: 1,
			ProtoMinor: 1,
			Header:     http.Header{},
			Body:       io.NopCloser(strings.NewReader("chaos: injected 503\n")),
			Request:    req,
		}, nil
	}
	resp, err := t.inner().RoundTrip(req)
	if err != nil || resp == nil || resp.Body == nil {
		return resp, err
	}
	switch {
	case t.R.Chance(f.Stall):
		t.note("stall", req.URL.Path)
		stallFor := f.StallFor
		if stallFor == 0 {
			stallFor = 30 * time.Second
		}
		after := 0
		if f.StallAfter > 0 {
			after = t.R.Intn(f.StallAfter + 1)
		}
		resp.Body = &stallBody{
			inner:  resp.Body,
			after:  after,
			d:      stallFor,
			ctx:    req.Context(),
			closed: make(chan struct{}),
		}
	case t.R.Chance(f.Truncate):
		t.note("truncate", req.URL.Path)
		resp.Body = &truncateBody{inner: resp.Body, left: t.R.Intn(4096) + 1}
	case t.R.Chance(f.Corrupt):
		t.note("corrupt", req.URL.Path)
		resp.Body = &corruptBody{inner: resp.Body, at: t.R.Intn(4 << 10), bit: byte(1 << t.R.Intn(8))}
	}
	return resp, nil
}

// stallBody passes through up to `after` bytes, then blocks: the peer is
// gone for all practical purposes, but the connection never closes, so
// nothing short of a progress watchdog notices. It unblocks when the
// reader closes the body (the watchdog's move), the request context
// ends, or the safety bound d elapses.
type stallBody struct {
	inner  io.ReadCloser
	after  int
	served int
	d      time.Duration
	ctx    context.Context
	closed chan struct{}
	once   sync.Once
}

func (b *stallBody) Read(p []byte) (int, error) {
	if b.served < b.after {
		if max := b.after - b.served; len(p) > max {
			p = p[:max]
		}
		n, err := b.inner.Read(p)
		b.served += n
		if n > 0 || err != nil {
			return n, err
		}
	}
	timer := time.NewTimer(b.d)
	defer timer.Stop()
	select {
	case <-b.ctx.Done():
		return 0, b.ctx.Err()
	case <-b.closed:
		return 0, fmt.Errorf("chaos: stalled body closed by reader")
	case <-timer.C:
		return 0, fmt.Errorf("chaos: stall bound elapsed")
	}
}

func (b *stallBody) Close() error {
	b.once.Do(func() { close(b.closed) })
	return b.inner.Close()
}

// truncateBody serves a prefix of the stream, then reports a clean EOF:
// the mid-line NDJSON break, indistinguishable at the transport from a
// peer that crashed between flushes.
type truncateBody struct {
	inner io.ReadCloser
	left  int
}

func (b *truncateBody) Read(p []byte) (int, error) {
	if b.left <= 0 {
		return 0, io.EOF
	}
	if len(p) > b.left {
		p = p[:b.left]
	}
	n, err := b.inner.Read(p)
	b.left -= n
	return n, err
}

func (b *truncateBody) Close() error { return b.inner.Close() }

// corruptBody flips one bit at stream offset `at` (or never, if the body
// is shorter) — the in-transit corruption an end-to-end digest exists to
// catch.
type corruptBody struct {
	inner io.ReadCloser
	at    int
	off   int
	bit   byte
}

func (b *corruptBody) Read(p []byte) (int, error) {
	n, err := b.inner.Read(p)
	if n > 0 && b.at >= b.off && b.at < b.off+n {
		p[b.at-b.off] ^= b.bit
	}
	b.off += n
	return n, err
}

func (b *corruptBody) Close() error { return b.inner.Close() }
