package interp_test

import (
	"encoding/binary"
	"fmt"
	"testing"

	"merlin/internal/interp"
	"merlin/internal/isa"
)

// This file is the per-opcode conformance table for the architectural
// reference itself: every µx64 opcode crossed with edge operands (zero,
// one, all-ones, the signed min/max of every operand width, and sign
// boundaries like 0x7f/0x80), checked against a golden model written
// independently in the test — plain Go expressions per case, never the
// interpreter's own helpers. The detailed core is then held to the
// interpreter by the lockstep oracle, so these tables anchor the whole
// conformance chain.

// edges are the interesting 64-bit operand values: identities, all-ones,
// and both sides of every width's sign boundary.
var edges = []uint64{
	0, 1, 2, 63, 64,
	0x7f, 0x80, 0xff, 0x100,
	0x7fff, 0x8000, 0xffff,
	0x7fffffff, 0x80000000, 0xffffffff,
	1<<63 - 1, 1 << 63, ^uint64(0),
	0xdeadbeefcafebabe,
}

// immEdges are the interesting immediate values (immediates are int64s in
// the text, not register-width-truncated).
var immEdges = []int64{0, 1, -1, 127, -128, 255, 4095, -4096, 1<<31 - 1, -(1 << 31), 1<<63 - 1, -(1 << 63)}

// runProg executes a hand-built instruction sequence and returns the
// architectural result.
func runProg(t *testing.T, text []isa.Inst) interp.Result {
	t.Helper()
	res := interp.Run(&isa.Program{Name: "optable", Text: text}, 100_000)
	return res
}

// expectOut runs text and requires a clean halt with exactly want on the
// output stream.
func expectOut(t *testing.T, label string, text []isa.Inst, want uint64) {
	t.Helper()
	res := runProg(t, text)
	if res.Halt != interp.HaltOK {
		t.Fatalf("%s: halt = %v, want clean halt", label, res.Halt)
	}
	if len(res.Output) != 1 || res.Output[0] != want {
		t.Fatalf("%s: output = %#x, want %#x", label, res.Output, want)
	}
}

func li(rd int8, v uint64) isa.Inst {
	return isa.Inst{Op: isa.LI, Rd: rd, Rs1: isa.NoReg, Rs2: isa.NoReg, Imm: int64(v)}
}

func out(rs int8) isa.Inst {
	return isa.Inst{Op: isa.OUT, Rd: isa.NoReg, Rs1: rs, Rs2: isa.NoReg}
}

var halt = isa.Inst{Op: isa.HALT, Rd: isa.NoReg, Rs1: isa.NoReg, Rs2: isa.NoReg}

// TestRegisterALUOps: every three-register ALU opcode × edge × edge.
func TestRegisterALUOps(t *testing.T) {
	bool64 := func(b bool) uint64 {
		if b {
			return 1
		}
		return 0
	}
	ops := []struct {
		op     isa.Op
		golden func(a, b uint64) uint64
	}{
		{isa.ADD, func(a, b uint64) uint64 { return a + b }},
		{isa.SUB, func(a, b uint64) uint64 { return a - b }},
		{isa.AND, func(a, b uint64) uint64 { return a & b }},
		{isa.OR, func(a, b uint64) uint64 { return a | b }},
		{isa.XOR, func(a, b uint64) uint64 { return a ^ b }},
		{isa.SLL, func(a, b uint64) uint64 { return a << (b & 63) }},
		{isa.SRL, func(a, b uint64) uint64 { return a >> (b & 63) }},
		{isa.SRA, func(a, b uint64) uint64 { return uint64(int64(a) >> (b & 63)) }},
		{isa.MUL, func(a, b uint64) uint64 { return a * b }},
		{isa.SLT, func(a, b uint64) uint64 { return bool64(int64(a) < int64(b)) }},
		{isa.SLTU, func(a, b uint64) uint64 { return bool64(a < b) }},
		// DIV/REM: Go's int64 division has the same semantics µx64
		// specifies (truncation toward zero; MinInt64/-1 wraps), so the
		// golden expressions below are still independent of interp's code
		// path. The b == 0 crash case has its own test.
		{isa.DIV, func(a, b uint64) uint64 { return uint64(int64(a) / int64(b)) }},
		{isa.REM, func(a, b uint64) uint64 { return uint64(int64(a) % int64(b)) }},
	}
	for _, op := range ops {
		t.Run(op.op.String(), func(t *testing.T) {
			for _, a := range edges {
				for _, b := range edges {
					if (op.op == isa.DIV || op.op == isa.REM) && b == 0 {
						continue
					}
					text := []isa.Inst{
						li(1, a), li(2, b),
						{Op: op.op, Rd: 3, Rs1: 1, Rs2: 2},
						out(3), halt,
					}
					expectOut(t, fmt.Sprintf("%v %#x %#x", op.op, a, b), text, op.golden(a, b))
				}
			}
		})
	}
}

// TestImmediateALUOps: every immediate ALU opcode × register edge ×
// immediate edge.
func TestImmediateALUOps(t *testing.T) {
	bool64 := func(b bool) uint64 {
		if b {
			return 1
		}
		return 0
	}
	ops := []struct {
		op     isa.Op
		golden func(a uint64, imm int64) uint64
	}{
		{isa.ADDI, func(a uint64, imm int64) uint64 { return a + uint64(imm) }},
		{isa.ANDI, func(a uint64, imm int64) uint64 { return a & uint64(imm) }},
		{isa.ORI, func(a uint64, imm int64) uint64 { return a | uint64(imm) }},
		{isa.XORI, func(a uint64, imm int64) uint64 { return a ^ uint64(imm) }},
		{isa.SLLI, func(a uint64, imm int64) uint64 { return a << (uint64(imm) & 63) }},
		{isa.SRLI, func(a uint64, imm int64) uint64 { return a >> (uint64(imm) & 63) }},
		{isa.SRAI, func(a uint64, imm int64) uint64 { return uint64(int64(a) >> (uint64(imm) & 63)) }},
		{isa.SLTI, func(a uint64, imm int64) uint64 { return bool64(int64(a) < imm) }},
		{isa.MULI, func(a uint64, imm int64) uint64 { return a * uint64(imm) }},
	}
	for _, op := range ops {
		t.Run(op.op.String(), func(t *testing.T) {
			for _, a := range edges {
				for _, imm := range immEdges {
					text := []isa.Inst{
						li(1, a),
						{Op: op.op, Rd: 2, Rs1: 1, Rs2: isa.NoReg, Imm: imm},
						out(2), halt,
					}
					expectOut(t, fmt.Sprintf("%v %#x %d", op.op, a, imm), text, op.golden(a, imm))
				}
			}
		})
	}
}

// TestLIAndNop: LI round-trips every immediate edge bit-exactly; NOP
// changes nothing.
func TestLIAndNop(t *testing.T) {
	for _, imm := range immEdges {
		text := []isa.Inst{
			li(1, uint64(imm)),
			{Op: isa.NOP, Rd: isa.NoReg, Rs1: isa.NoReg, Rs2: isa.NoReg},
			out(1), halt,
		}
		expectOut(t, fmt.Sprintf("li %d", imm), text, uint64(imm))
	}
}

// TestLoadExtension: every load width × offset inside a known 8-byte
// pattern, including misaligned offsets; expected values are assembled
// from the raw bytes in the test, with sign/zero extension per opcode.
func TestLoadExtension(t *testing.T) {
	pattern := []byte{0x81, 0x7f, 0x80, 0x01, 0xff, 0x00, 0xc3, 0x3c}
	loads := []struct {
		op     isa.Op
		size   int
		signed bool
	}{
		{isa.LD, 8, false},
		{isa.LW, 4, true}, {isa.LWU, 4, false},
		{isa.LH, 2, true}, {isa.LHU, 2, false},
		{isa.LB, 1, true}, {isa.LBU, 1, false},
	}
	for _, l := range loads {
		for off := 0; off+l.size <= len(pattern); off++ {
			var want uint64
			for i := 0; i < l.size; i++ {
				want |= uint64(pattern[off+i]) << (8 * i)
			}
			if l.signed && pattern[off+l.size-1]&0x80 != 0 {
				want |= ^uint64(0) << (8 * l.size)
			}
			text := []isa.Inst{
				li(1, isa.DataBase),
				{Op: l.op, Rd: 2, Rs1: 1, Rs2: isa.NoReg, Imm: int64(off)},
				out(2), halt,
			}
			prog := &isa.Program{Name: "load", Text: text, Data: pattern}
			res := interp.Run(prog, 1000)
			if res.Halt != interp.HaltOK || len(res.Output) != 1 || res.Output[0] != want {
				t.Fatalf("%v off %d: got %#x (halt %v), want %#x", l.op, off, res.Output, res.Halt, want)
			}
			wantExc := 0
			if off%l.size != 0 {
				wantExc = 1
			}
			if len(res.ExcLog) != wantExc {
				t.Fatalf("%v off %d: %d misalign exceptions, want %d", l.op, off, len(res.ExcLog), wantExc)
			}
		}
	}
}

// TestPartialWidthStores: narrow stores punched into a wider slot must
// merge bytewise; the golden image is maintained as a Go byte slice.
func TestPartialWidthStores(t *testing.T) {
	stores := []struct {
		op   isa.Op
		size int
	}{
		{isa.SD, 8}, {isa.SW, 4}, {isa.SH, 2}, {isa.SB, 1},
	}
	base := uint64(0x0123456789abcdef)
	for _, s := range stores {
		for off := 0; off+s.size <= 8; off += s.size {
			for _, v := range edges {
				var golden [8]byte
				binary.LittleEndian.PutUint64(golden[:], base)
				for i := 0; i < s.size; i++ {
					golden[off+i] = byte(v >> (8 * i))
				}
				text := []isa.Inst{
					li(1, isa.DataBase), li(2, base), li(3, v),
					{Op: isa.SD, Rd: isa.NoReg, Rs1: 1, Rs2: 2},
					{Op: s.op, Rd: isa.NoReg, Rs1: 1, Rs2: 3, Imm: int64(off)},
					{Op: isa.LD, Rd: 4, Rs1: 1, Rs2: isa.NoReg},
					out(4), halt,
				}
				expectOut(t, fmt.Sprintf("%v off %d v %#x", s.op, off, v), text,
					binary.LittleEndian.Uint64(golden[:]))
			}
		}
	}
}

// TestReadModifyOps: ldadd/ldxor/stadd against golden arithmetic over the
// memory value, including each one's misalign exception count.
func TestReadModifyOps(t *testing.T) {
	memVal := uint64(0x1122334455667788)
	var data [16]byte
	binary.LittleEndian.PutUint64(data[:], memVal)
	for _, v := range edges {
		// ldadd: rd = mem + v, memory unchanged.
		text := []isa.Inst{
			li(1, isa.DataBase), li(2, v),
			{Op: isa.LDADD, Rd: 3, Rs1: 1, Rs2: 2},
			{Op: isa.LD, Rd: 4, Rs1: 1, Rs2: isa.NoReg},
			out(3), out(4), halt,
		}
		res := interp.Run(&isa.Program{Name: "ldadd", Text: text, Data: data[:]}, 1000)
		if res.Halt != interp.HaltOK || res.Output[0] != memVal+v || res.Output[1] != memVal {
			t.Fatalf("ldadd %#x: %+v", v, res)
		}
		// ldxor: rd = mem ^ v.
		text[2] = isa.Inst{Op: isa.LDXOR, Rd: 3, Rs1: 1, Rs2: 2}
		res = interp.Run(&isa.Program{Name: "ldxor", Text: text, Data: data[:]}, 1000)
		if res.Halt != interp.HaltOK || res.Output[0] != memVal^v || res.Output[1] != memVal {
			t.Fatalf("ldxor %#x: %+v", v, res)
		}
		// stadd: mem += v.
		text = []isa.Inst{
			li(1, isa.DataBase), li(2, v),
			{Op: isa.STADD, Rd: isa.NoReg, Rs1: 1, Rs2: 2},
			{Op: isa.LD, Rd: 4, Rs1: 1, Rs2: isa.NoReg},
			out(4), halt,
		}
		res = interp.Run(&isa.Program{Name: "stadd", Text: text, Data: data[:]}, 1000)
		if res.Halt != interp.HaltOK || res.Output[0] != memVal+v {
			t.Fatalf("stadd %#x: %+v", v, res)
		}
	}
	// Misaligned read-modify: ldadd logs one exception (its load µop),
	// stadd logs two (load and store-address µops).
	for _, c := range []struct {
		op      isa.Op
		rd      int8
		wantExc int
	}{{isa.LDADD, 3, 1}, {isa.STADD, isa.NoReg, 2}} {
		text := []isa.Inst{
			li(1, isa.DataBase), li(2, 1),
			{Op: c.op, Rd: c.rd, Rs1: 1, Rs2: 2, Imm: 1},
			halt,
		}
		res := interp.Run(&isa.Program{Name: "rm-misalign", Text: text, Data: data[:]}, 1000)
		if res.Halt != interp.HaltOK || len(res.ExcLog) != c.wantExc {
			t.Fatalf("%v misaligned: halt %v, %d exceptions, want %d", c.op, res.Halt, len(res.ExcLog), c.wantExc)
		}
	}
}

// TestConditionalBranches: every branch opcode × edge × edge against
// golden comparisons.
func TestConditionalBranches(t *testing.T) {
	ops := []struct {
		op     isa.Op
		golden func(a, b uint64) bool
	}{
		{isa.BEQ, func(a, b uint64) bool { return a == b }},
		{isa.BNE, func(a, b uint64) bool { return a != b }},
		{isa.BLT, func(a, b uint64) bool { return int64(a) < int64(b) }},
		{isa.BGE, func(a, b uint64) bool { return int64(a) >= int64(b) }},
		{isa.BLTU, func(a, b uint64) bool { return a < b }},
		{isa.BGEU, func(a, b uint64) bool { return a >= b }},
	}
	for _, op := range ops {
		t.Run(op.op.String(), func(t *testing.T) {
			for _, a := range edges {
				for _, b := range edges {
					text := []isa.Inst{
						li(1, a), li(2, b),
						{Op: op.op, Rd: isa.NoReg, Rs1: 1, Rs2: 2, Imm: 5}, // → taken
						li(3, 0),
						{Op: isa.JAL, Rd: isa.NoReg, Rs1: isa.NoReg, Rs2: isa.NoReg, Imm: 6},
						li(3, 1), // taken target
						out(3), halt,
					}
					want := uint64(0)
					if op.golden(a, b) {
						want = 1
					}
					expectOut(t, fmt.Sprintf("%v %#x %#x", op.op, a, b), text, want)
				}
			}
		})
	}
}

// TestJumpLinks: JAL and JALR write the return address and transfer
// control; JALR to every invalid target class crashes.
func TestJumpLinks(t *testing.T) {
	// JAL: link = RIP+1.
	text := []isa.Inst{
		{Op: isa.JAL, Rd: 1, Rs1: isa.NoReg, Rs2: isa.NoReg, Imm: 1},
		out(1), halt,
	}
	expectOut(t, "jal link", text, 1)

	// JALR: target rs1+imm, link = RIP+1.
	text = []isa.Inst{
		li(1, 4),
		{Op: isa.JALR, Rd: 2, Rs1: 1, Rs2: isa.NoReg, Imm: -1}, // → 3
		halt, // skipped
		out(2), halt,
	}
	expectOut(t, "jalr link", text, 2)

	for _, target := range []uint64{100, ^uint64(0), 1 << 62} {
		text = []isa.Inst{
			li(1, target),
			{Op: isa.JALR, Rd: 2, Rs1: 1, Rs2: isa.NoReg},
			halt,
		}
		res := runProg(t, text)
		if res.Halt != interp.CrashBadFetch {
			t.Fatalf("jalr to %#x: halt = %v, want bad fetch", target, res.Halt)
		}
	}
}

// TestPageFaultBoundaries: accesses straddling both ends of mapped memory
// fault; the last fully-mapped access of each width does not.
func TestPageFaultBoundaries(t *testing.T) {
	sizes := []struct {
		ld, st isa.Op
		n      uint64
	}{
		{isa.LD, isa.SD, 8}, {isa.LW, isa.SW, 4}, {isa.LH, isa.SH, 2}, {isa.LB, isa.SB, 1},
	}
	for _, s := range sizes {
		// Last mapped address for this width: clean (possibly misaligned).
		ok := []isa.Inst{
			li(1, isa.MemTop-s.n),
			{Op: s.ld, Rd: 2, Rs1: 1, Rs2: isa.NoReg},
			{Op: s.st, Rd: isa.NoReg, Rs1: 1, Rs2: 2},
			out(2), halt,
		}
		if res := runProg(t, ok); res.Halt != interp.HaltOK {
			t.Fatalf("%v at MemTop-%d: halt = %v", s.ld, s.n, res.Halt)
		}
		// One byte further straddles the top: page fault.
		bad := []isa.Inst{
			li(1, isa.MemTop-s.n+1),
			{Op: s.ld, Rd: 2, Rs1: 1, Rs2: isa.NoReg},
			halt,
		}
		if res := runProg(t, bad); res.Halt != interp.CrashPageFault {
			t.Fatalf("%v straddling MemTop: halt = %v, want page fault", s.ld, res.Halt)
		}
		// Just below DataBase: page fault.
		low := []isa.Inst{
			li(1, isa.DataBase-1),
			{Op: s.ld, Rd: 2, Rs1: 1, Rs2: isa.NoReg},
			halt,
		}
		if res := runProg(t, low); res.Halt != interp.CrashPageFault {
			t.Fatalf("%v below DataBase: halt = %v, want page fault", s.ld, res.Halt)
		}
		// Address-wrap: base + imm overflowing 64 bits must fault, not
		// alias low memory.
		wrap := []isa.Inst{
			li(1, ^uint64(0)),
			{Op: s.ld, Rd: 2, Rs1: 1, Rs2: isa.NoReg, Imm: 16},
			halt,
		}
		if res := runProg(t, wrap); res.Halt != interp.CrashPageFault {
			t.Fatalf("%v wrapping address: halt = %v, want page fault", s.ld, res.Halt)
		}
	}
}

// TestDivRemEdges pins the division corner cases architecturally:
// MinInt64/-1 wraps (no trap), division by zero crashes for both DIV and
// REM.
func TestDivRemEdges(t *testing.T) {
	text := []isa.Inst{
		li(1, 1<<63), li(2, ^uint64(0)),
		{Op: isa.DIV, Rd: 3, Rs1: 1, Rs2: 2},
		{Op: isa.REM, Rd: 4, Rs1: 1, Rs2: 2},
		out(3), out(4), halt,
	}
	res := runProg(t, text)
	if res.Halt != interp.HaltOK || res.Output[0] != 1<<63 || res.Output[1] != 0 {
		t.Fatalf("MinInt64/-1: %+v", res)
	}
	for _, op := range []isa.Op{isa.DIV, isa.REM} {
		text := []isa.Inst{
			li(1, 7), li(2, 0),
			{Op: op, Rd: 3, Rs1: 1, Rs2: 2},
			halt,
		}
		if res := runProg(t, text); res.Halt != interp.CrashDivZero {
			t.Fatalf("%v by zero: halt = %v, want div-zero crash", op, res.Halt)
		}
	}
}

// TestSteppableAccessors covers the Machine surface the lockstep engine
// depends on: per-step PC/Regs/LastStore evolution and page visibility.
func TestSteppableAccessors(t *testing.T) {
	text := []isa.Inst{
		li(1, isa.DataBase), li(2, 0xabcd),
		{Op: isa.SH, Rd: isa.NoReg, Rs1: 1, Rs2: 2, Imm: 4},
		out(2), halt,
	}
	m := interp.NewMachine(&isa.Program{Name: "step", Text: text})
	if m.PC() != 0 || m.Done() {
		t.Fatalf("fresh machine: pc %d done %v", m.PC(), m.Done())
	}
	if !m.Step() || m.Regs()[1] != isa.DataBase {
		t.Fatalf("after step 1: regs %v", m.Regs())
	}
	m.Step()
	if _, _, _, ok := m.LastStore(); ok {
		t.Fatal("LI reported a store effect")
	}
	m.Step() // the SH
	addr, size, data, ok := m.LastStore()
	if !ok || addr != isa.DataBase+4 || size != 2 || data != 0xabcd {
		t.Fatalf("store effect = %#x/%d/%#x/%v", addr, size, data, ok)
	}
	m.Step() // OUT
	if len(m.Output()) != 1 || m.Output()[0] != 0xabcd {
		t.Fatalf("output = %#x", m.Output())
	}
	if m.Step() { // HALT: returns false, does not count
		t.Fatal("HALT step returned true")
	}
	if !m.Done() || m.Halt() != interp.HaltOK || m.Steps() != 4 {
		t.Fatalf("end state: done %v halt %v steps %d", m.Done(), m.Halt(), m.Steps())
	}
	page := m.PageData(isa.DataBase)
	if page == nil || page[4] != 0xcd || page[5] != 0xab {
		t.Fatalf("page data = %v", page[:8])
	}
	if m.PageData(isa.DataBase+4096) != nil {
		t.Fatal("untouched page is resident")
	}
}
