package interp

import (
	"reflect"
	"testing"

	"merlin/internal/asm"
)

func run(t *testing.T, src string) Result {
	t.Helper()
	p, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	return Run(p, 1_000_000)
}

func TestBasicExecution(t *testing.T) {
	res := run(t, `
		li r1, 6
		li r2, 7
		mul r3, r1, r2
		out r3
		halt
	`)
	if res.Halt != HaltOK || !reflect.DeepEqual(res.Output, []uint64{42}) {
		t.Fatalf("res = %+v", res)
	}
}

func TestMemoryAndLoop(t *testing.T) {
	res := run(t, `
		.data
	buf:	.space 64
		.text
		li r1, buf
		li r2, 0
		li r3, 8
	fill:	sd [r1], r2
		addi r1, r1, 8
		addi r2, r2, 1
		blt r2, r3, fill
		li r1, buf
		li r2, 0
		li r4, 0
	sum:	ld r5, [r1]
		add r4, r4, r5
		addi r1, r1, 8
		addi r2, r2, 1
		blt r2, r3, sum
		out r4
		halt
	`)
	if res.Halt != HaltOK || res.Output[0] != 28 {
		t.Fatalf("res = %+v", res)
	}
}

func TestCrashes(t *testing.T) {
	cases := []struct {
		src  string
		want HaltReason
	}{
		{"li r1, 0\nld r2, [r1]\nhalt", CrashPageFault},
		{"li r1, 99999\njalr r2, r1, 0\nhalt", CrashBadFetch},
		{"li r1, 5\nli r2, 0\ndiv r3, r1, r2\nhalt", CrashDivZero},
		{"spin: j spin", StepLimit},
	}
	for _, c := range cases {
		if got := run(t, c.src); got.Halt != c.want {
			t.Errorf("%q: halt = %v, want %v", c.src, got.Halt, c.want)
		}
	}
}

func TestMisalignLogged(t *testing.T) {
	res := run(t, `
		.data
	buf:	.space 16
		.text
		li r1, buf
		li r2, 0xbeef
		sw [r1+1], r2
		lw r3, [r1+1]
		out r3
		halt
	`)
	if res.Halt != HaltOK || len(res.ExcLog) != 2 {
		t.Fatalf("res = %+v", res)
	}
	if res.Output[0] != 0xbeef {
		t.Errorf("misaligned round trip = %#x", res.Output[0])
	}
}

func TestCallRet(t *testing.T) {
	res := run(t, `
		li r1, 20
		call inc
		out r1
		halt
	inc:	addi r1, r1, 1
		ret
	`)
	if res.Halt != HaltOK || res.Output[0] != 21 {
		t.Fatalf("res = %+v", res)
	}
}
