// Package interp is a functional (architectural) interpreter for µx64: it
// executes programs in order with no microarchitecture at all. Its purpose
// is differential testing — the out-of-order core must produce the same
// committed outputs, exceptions and halt cause for every program — and it
// is the per-instruction reference the lockstep conformance engine
// (internal/conformance) diffs the detailed core against at every retire
// boundary.
package interp

import (
	"merlin/internal/isa"
)

// HaltReason mirrors the architectural subset of cpu.HaltReason.
type HaltReason uint8

// Architectural run outcomes.
const (
	HaltOK HaltReason = iota
	CrashPageFault
	CrashBadFetch
	CrashDivZero
	StepLimit
)

var haltNames = [...]string{"halt", "crash-pagefault", "crash-badfetch", "crash-divzero", "step-limit"}

func (h HaltReason) String() string {
	if int(h) < len(haltNames) {
		return haltNames[h]
	}
	return "?"
}

// Result is the architectural outcome of a run.
type Result struct {
	Halt   HaltReason
	Output []uint64
	ExcLog []uint32 // recoverable exceptions: kind | rip<<3 (same encoding as cpu)
	Steps  uint64
}

// pageBits matches mem.PageSize (4KB) so conformance memory diffs can walk
// both machines' resident pages with one stride.
const pageBits = 12
const pageSize = 1 << pageBits

// Machine is the architectural state, steppable one instruction at a time.
// The zero value is not usable; use NewMachine.
type Machine struct {
	prog  *isa.Program
	regs  [isa.NumArchRegs]uint64
	pages map[uint64]*[pageSize]byte
	out   []uint64
	exc   []uint32
	pc    int64
	steps uint64
	halt  HaltReason
	done  bool

	// Last-step store effect, for retire-boundary comparison.
	lastStore bool
	lastAddr  uint64
	lastSize  uint8
	lastData  uint64
}

// NewMachine loads prog: data segment at isa.DataBase, stack pointer at
// isa.StackTop, PC at the entry point.
func NewMachine(prog *isa.Program) *Machine {
	m := &Machine{prog: prog, pages: make(map[uint64]*[pageSize]byte), pc: int64(prog.Entry)}
	for i, b := range prog.Data {
		m.storeByte(isa.DataBase+uint64(i), b)
	}
	m.regs[isa.RegSP] = isa.StackTop
	return m
}

// PC returns the index of the next instruction to execute.
func (m *Machine) PC() int64 { return m.pc }

// Done reports whether the machine has halted or crashed.
func (m *Machine) Done() bool { return m.done }

// Halt returns the halt cause; meaningful only once Done.
func (m *Machine) Halt() HaltReason { return m.halt }

// Regs returns the architectural register file.
func (m *Machine) Regs() [isa.NumArchRegs]uint64 { return m.regs }

// Output returns the committed OUT stream so far (live slice, do not
// mutate).
func (m *Machine) Output() []uint64 { return m.out }

// ExcLog returns the recoverable-exception log so far (live slice, do not
// mutate).
func (m *Machine) ExcLog() []uint32 { return m.exc }

// Steps returns the number of instructions executed.
func (m *Machine) Steps() uint64 { return m.steps }

// LastStore returns the memory write performed by the most recent Step:
// ok is false when that instruction did not store.
func (m *Machine) LastStore() (addr uint64, size uint8, data uint64, ok bool) {
	return m.lastAddr, m.lastSize, m.lastData, m.lastStore
}

// PageData returns the 4KB page at the page-aligned base addr read-only,
// or nil when it was never written (reads as zeros).
func (m *Machine) PageData(addr uint64) []byte {
	p := m.pages[addr>>pageBits]
	if p == nil {
		return nil
	}
	return p[:]
}

// Result snapshots the architectural outcome so far. If the machine is
// still running, the halt cause reads StepLimit.
func (m *Machine) Result() Result {
	h := m.halt
	if !m.done {
		h = StepLimit
	}
	return Result{Halt: h, Output: m.out, ExcLog: m.exc, Steps: m.steps}
}

func (m *Machine) page(addr uint64) *[pageSize]byte {
	p := m.pages[addr>>pageBits]
	if p == nil {
		p = new([pageSize]byte)
		m.pages[addr>>pageBits] = p
	}
	return p
}

func (m *Machine) storeByte(addr uint64, b byte) {
	m.page(addr)[addr&(pageSize-1)] = b
}

func (m *Machine) load(addr uint64, size int, signed bool) uint64 {
	var v uint64
	for i := 0; i < size; i++ {
		a := addr + uint64(i)
		if p := m.pages[a>>pageBits]; p != nil {
			v |= uint64(p[a&(pageSize-1)]) << (8 * i)
		}
	}
	if signed && v&(1<<(uint(size)*8-1)) != 0 {
		v |= ^uint64(0) << (uint(size) * 8)
	}
	return v
}

func (m *Machine) store(addr uint64, size int, v uint64) {
	for i := 0; i < size; i++ {
		m.storeByte(addr+uint64(i), byte(v>>(8*i)))
	}
	m.lastStore, m.lastAddr, m.lastSize, m.lastData = true, addr, uint8(size), v
}

func inRange(addr uint64, size int) bool {
	return addr >= isa.DataBase && addr+uint64(size) <= isa.MemTop && addr+uint64(size) >= addr
}

// reg reads architectural register r, treating isa.NoReg as zero so that
// fuzz-generated instruction streams cannot index out of range.
func (m *Machine) reg(r int8) uint64 {
	if r < 0 {
		return 0
	}
	return m.regs[r]
}

// setReg writes rd, ignoring isa.NoReg destinations (matching the core,
// which allocates no physical register for them).
func (m *Machine) setReg(rd int8, v uint64) {
	if rd >= 0 {
		m.regs[rd] = v
	}
}

func (m *Machine) crash(h HaltReason) bool {
	m.halt = h
	m.done = true
	return false
}

// Step executes one instruction. It returns false once the machine is done
// (halted or crashed); the step that discovers the crash does not count as
// an executed instruction, mirroring the core, where a crashing
// instruction never retires.
func (m *Machine) Step() bool {
	if m.done {
		return false
	}
	m.lastStore = false
	if m.pc < 0 || m.pc >= int64(len(m.prog.Text)) {
		return m.crash(CrashBadFetch)
	}
	in := m.prog.Text[m.pc]
	next := m.pc + 1
	switch {
	case in.Op == isa.HALT:
		return m.crash(HaltOK)
	case in.Op == isa.NOP:
	case in.Op == isa.OUT:
		m.out = append(m.out, m.reg(in.Rs1))
	case in.Op == isa.LI:
		m.setReg(in.Rd, uint64(in.Imm))
	case in.Op == isa.DIV || in.Op == isa.REM:
		s1, s2 := m.reg(in.Rs1), m.reg(in.Rs2)
		if s2 == 0 {
			return m.crash(CrashDivZero)
		}
		if in.Op == isa.DIV {
			m.setReg(in.Rd, uint64(int64(s1)/int64(s2)))
		} else {
			m.setReg(in.Rd, uint64(int64(s1)%int64(s2)))
		}
	case isa.IsCondBranch(in.Op):
		if condTaken(in.Op, m.reg(in.Rs1), m.reg(in.Rs2)) {
			next = in.Imm
		}
	case in.Op == isa.JAL:
		m.setReg(in.Rd, uint64(m.pc+1))
		next = in.Imm
	case in.Op == isa.JALR:
		target := int64(m.reg(in.Rs1)) + in.Imm
		m.setReg(in.Rd, uint64(m.pc+1))
		next = target
	case isa.IsStore(in.Op) && in.Op != isa.STADD:
		size := int(isa.MemSizeOf(in.Op))
		addr := m.reg(in.Rs1) + uint64(in.Imm)
		if !inRange(addr, size) {
			return m.crash(CrashPageFault)
		}
		if addr%uint64(size) != 0 {
			m.exc = append(m.exc, uint32(m.pc)<<3|1) // ExcMisalign
		}
		m.store(addr, size, m.reg(in.Rs2))
	case in.Op == isa.STADD:
		addr := m.reg(in.Rs1) + uint64(in.Imm)
		if !inRange(addr, 8) {
			return m.crash(CrashPageFault)
		}
		if addr%8 != 0 {
			// load µop then STA µop both fault; two log entries.
			m.exc = append(m.exc, uint32(m.pc)<<3|1, uint32(m.pc)<<3|1)
		}
		m.store(addr, 8, m.load(addr, 8, false)+m.reg(in.Rs2))
	case in.Op == isa.LDADD || in.Op == isa.LDXOR:
		addr := m.reg(in.Rs1) + uint64(in.Imm)
		if !inRange(addr, 8) {
			return m.crash(CrashPageFault)
		}
		if addr%8 != 0 {
			m.exc = append(m.exc, uint32(m.pc)<<3|1)
		}
		v := m.load(addr, 8, false)
		if in.Op == isa.LDADD {
			m.setReg(in.Rd, v+m.reg(in.Rs2))
		} else {
			m.setReg(in.Rd, v^m.reg(in.Rs2))
		}
	case isa.IsLoad(in.Op):
		size := int(isa.MemSizeOf(in.Op))
		addr := m.reg(in.Rs1) + uint64(in.Imm)
		if !inRange(addr, size) {
			return m.crash(CrashPageFault)
		}
		if addr%uint64(size) != 0 {
			m.exc = append(m.exc, uint32(m.pc)<<3|1)
		}
		signed := in.Op == isa.LW || in.Op == isa.LH || in.Op == isa.LB
		m.setReg(in.Rd, m.load(addr, size, signed))
	default:
		m.setReg(in.Rd, alu(in.Op, m.reg(in.Rs1), m.reg(in.Rs2), in.Imm))
	}
	m.pc = next
	m.steps++
	return true
}

// Run executes prog architecturally for at most maxSteps instructions.
func Run(prog *isa.Program, maxSteps uint64) Result {
	m := NewMachine(prog)
	for m.steps < maxSteps && m.Step() {
	}
	return m.Result()
}

func alu(op isa.Op, s1, s2 uint64, imm int64) uint64 {
	switch op {
	case isa.ADD:
		return s1 + s2
	case isa.ADDI:
		return s1 + uint64(imm)
	case isa.SUB:
		return s1 - s2
	case isa.AND:
		return s1 & s2
	case isa.ANDI:
		return s1 & uint64(imm)
	case isa.OR:
		return s1 | s2
	case isa.ORI:
		return s1 | uint64(imm)
	case isa.XOR:
		return s1 ^ s2
	case isa.XORI:
		return s1 ^ uint64(imm)
	case isa.SLL:
		return s1 << (s2 & 63)
	case isa.SLLI:
		return s1 << (uint64(imm) & 63)
	case isa.SRL:
		return s1 >> (s2 & 63)
	case isa.SRLI:
		return s1 >> (uint64(imm) & 63)
	case isa.SRA:
		return uint64(int64(s1) >> (s2 & 63))
	case isa.SRAI:
		return uint64(int64(s1) >> (uint64(imm) & 63))
	case isa.MUL:
		return s1 * s2
	case isa.MULI:
		return s1 * uint64(imm)
	case isa.SLT:
		if int64(s1) < int64(s2) {
			return 1
		}
		return 0
	case isa.SLTI:
		if int64(s1) < imm {
			return 1
		}
		return 0
	case isa.SLTU:
		if s1 < s2 {
			return 1
		}
		return 0
	}
	return 0
}

func condTaken(op isa.Op, s1, s2 uint64) bool {
	switch op {
	case isa.BEQ:
		return s1 == s2
	case isa.BNE:
		return s1 != s2
	case isa.BLT:
		return int64(s1) < int64(s2)
	case isa.BGE:
		return int64(s1) >= int64(s2)
	case isa.BLTU:
		return s1 < s2
	case isa.BGEU:
		return s1 >= s2
	}
	return false
}
